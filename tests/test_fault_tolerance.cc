// Fault-tolerance tests: real attempt retries (TaskError), deterministic
// FaultPlan chaos (attempt crashes, mid-job datanode kills), Hadoop skip
// mode, job-level failure tolerance, structured JobError reporting, and the
// checkpoint/resume behaviour of the k-means driver.
#include <gtest/gtest.h>

#include <map>
#include <string>

#include "geo/geolife.h"
#include "gepeto/kmeans.h"
#include "mapreduce/engine.h"

namespace gepeto::mr {
namespace {

ClusterConfig chaos_cluster(std::size_t chunk = 8, int nodes = 4) {
  ClusterConfig c;
  c.num_worker_nodes = nodes;
  c.nodes_per_rack = 2;
  c.chunk_size = chunk;
  c.execution_threads = 2;
  c.seed = 99;
  return c;
}

/// Map-only: pass every line through (identity), counting records.
struct EchoMapper {
  void map(std::int64_t, std::string_view line, MapOnlyContext& ctx) {
    ctx.write(line);
    ctx.increment("echoed");
  }
};

/// Map-only: throws TaskError on lines equal to "bad".
struct BadRecordMapper {
  void map(std::int64_t, std::string_view line, MapOnlyContext& ctx) {
    if (line == "bad") throw TaskError("poison record");
    ctx.write(line);
  }
};

/// Word count (reduce path), with a reducer that poisons one key.
struct WcMapper {
  using OutKey = std::string;
  using OutValue = std::int64_t;
  void map(std::int64_t, std::string_view line,
           MapContext<OutKey, OutValue>& ctx) {
    std::size_t i = 0;
    while (i < line.size()) {
      while (i < line.size() && line[i] == ' ') ++i;
      std::size_t j = i;
      while (j < line.size() && line[j] != ' ') ++j;
      if (j > i) ctx.emit(std::string(line.substr(i, j - i)), 1);
      i = j;
    }
  }
};

struct WcReducer {
  std::string poison;  ///< reduce() throws TaskError on this key
  void reduce(const std::string& key, std::span<const std::int64_t> values,
              ReduceContext& ctx) {
    if (!poison.empty() && key == poison) throw TaskError("poison key");
    std::int64_t sum = 0;
    for (auto v : values) sum += v;
    ctx.write(key + "\t" + std::to_string(sum));
  }
};

std::string read_all(const Dfs& dfs, const std::string& dir) {
  std::string all;
  for (const auto& p : dfs.list(dir + "/")) all += dfs.read(p);
  return all;
}

JobConfig echo_job(const std::string& out = "/out") {
  JobConfig job;
  job.name = "echo";
  job.input = "/in";
  job.output = out;
  return job;
}

const char* kLines = "aa\nbb\ncc\ndd\nee\nff\ngg\nhh\n";

// --- attempt retries ---------------------------------------------------------

TEST(Retries, CrashedAttemptIsReExecutedAndOutputPreserved) {
  const auto c = chaos_cluster();
  Dfs dfs(c);
  dfs.put("/in/data", kLines);
  const auto clean = run_map_only_job(dfs, c, echo_job("/clean"),
                                      [] { return EchoMapper{}; });

  auto job = echo_job();
  job.fault_plan.crashes = {{/*phase=*/1, /*task=*/0, /*attempt=*/0}};
  const auto r = run_map_only_job(dfs, c, job, [] { return EchoMapper{}; });
  // The attempt crashed after writing its first record; that partial output
  // must have been discarded, not duplicated.
  EXPECT_EQ(read_all(dfs, "/out"), read_all(dfs, "/clean"));
  EXPECT_EQ(r.failed_task_attempts, 1);
  EXPECT_EQ(r.failed_tasks, 0);
  EXPECT_EQ(r.output_records, clean.output_records);
  EXPECT_EQ(r.counters.at("echoed"), clean.counters.at("echoed"));
}

TEST(Retries, ProbabilisticChaosIsDeterministicAndHarmless) {
  auto run = [](std::uint64_t chaos_seed) {
    const auto c = chaos_cluster();
    Dfs dfs(c);
    dfs.put("/in/data", kLines);
    auto job = echo_job();
    job.fault_plan.seed = chaos_seed;
    job.fault_plan.attempt_crash_prob = 0.5;
    const auto r = run_map_only_job(dfs, c, job, [] { return EchoMapper{}; });
    return std::pair{read_all(dfs, "/out"), r.failed_task_attempts};
  };
  const auto [out_a, attempts_a] = run(7);
  const auto [out_b, attempts_b] = run(7);
  EXPECT_EQ(out_a, out_b);  // byte-identical for the same seed
  EXPECT_EQ(attempts_a, attempts_b);
  EXPECT_EQ(out_a, kLines);  // and identical to the fault-free output
  EXPECT_GT(attempts_a, 0);
}

TEST(Retries, ExhaustingMaxAttemptsRaisesJobError) {
  const auto c = chaos_cluster();
  Dfs dfs(c);
  dfs.put("/in/data", kLines);
  auto job = echo_job();
  job.fault_plan.crashes = {{1, 0, 0}, {1, 0, 1}, {1, 0, 2}, {1, 0, 3}};
  try {
    run_map_only_job(dfs, c, job, [] { return EchoMapper{}; });
    FAIL() << "expected JobError";
  } catch (const JobError& e) {
    EXPECT_EQ(e.kind(), JobError::Kind::kAttemptsExhausted);
    EXPECT_EQ(e.phase(), 1);
    EXPECT_EQ(e.task_index(), 0);
    EXPECT_EQ(e.attempts(), 4);
    EXPECT_NE(std::string(e.what()).find("echo"), std::string::npos);
  }
}

TEST(Retries, MaxAttemptsBoundsInjectedFailures) {
  // The legacy probabilistic injection (FailurePolicy::task_failure_prob)
  // now drives the same real-retry machinery; with fewer injected failures
  // than max_attempts the job must succeed with identical output.
  const auto c = chaos_cluster();
  Dfs dfs(c);
  dfs.put("/in/data", kLines);
  auto job = echo_job();
  job.failures.task_failure_prob = 0.8;
  const auto r = run_map_only_job(dfs, c, job, [] { return EchoMapper{}; });
  EXPECT_EQ(read_all(dfs, "/out"), kLines);
  EXPECT_GT(r.failed_task_attempts, 0);
}

// --- skip mode ---------------------------------------------------------------

TEST(SkipMode, BadRecordsArePinpointedAndSkipped) {
  const auto c = chaos_cluster(/*chunk=*/64);  // one split
  Dfs dfs(c);
  dfs.put("/in/data", "aa\nbad\ncc\n");
  auto job = echo_job();
  job.failures.max_skipped_records = 4;
  const auto r =
      run_map_only_job(dfs, c, job, [] { return BadRecordMapper{}; });
  EXPECT_EQ(read_all(dfs, "/out"), "aa\ncc\n");
  EXPECT_EQ(r.skipped_records, 1u);
  EXPECT_EQ(r.counters.at("SkippedRecords"), 1);
  // Pinpointing takes two crashed attempts before the third succeeds.
  EXPECT_EQ(r.failed_task_attempts, 2);
  EXPECT_EQ(r.failed_tasks, 0);
}

TEST(SkipMode, MultipleBadRecordsWithinBudget) {
  const auto c = chaos_cluster(/*chunk=*/64);
  Dfs dfs(c);
  dfs.put("/in/data", "bad\naa\nbad\nbb\nbad\n");
  auto job = echo_job();
  job.failures.max_skipped_records = 3;
  const auto r =
      run_map_only_job(dfs, c, job, [] { return BadRecordMapper{}; });
  EXPECT_EQ(read_all(dfs, "/out"), "aa\nbb\n");
  EXPECT_EQ(r.skipped_records, 3u);
}

TEST(SkipMode, DisabledByDefaultSoBadRecordSinksTheJob) {
  const auto c = chaos_cluster(/*chunk=*/64);
  Dfs dfs(c);
  dfs.put("/in/data", "aa\nbad\ncc\n");
  try {
    run_map_only_job(dfs, c, echo_job(), [] { return BadRecordMapper{}; });
    FAIL() << "expected JobError";
  } catch (const JobError& e) {
    EXPECT_EQ(e.kind(), JobError::Kind::kAttemptsExhausted);
    EXPECT_NE(std::string(e.what()).find("poison record"), std::string::npos);
  }
}

TEST(SkipMode, ExhaustedBudgetRaisesJobError) {
  const auto c = chaos_cluster(/*chunk=*/64);
  Dfs dfs(c);
  dfs.put("/in/data", "bad\naa\nbad\n");  // two bad records, budget of one
  auto job = echo_job();
  job.failures.max_skipped_records = 1;
  try {
    run_map_only_job(dfs, c, job, [] { return BadRecordMapper{}; });
    FAIL() << "expected JobError";
  } catch (const JobError& e) {
    EXPECT_EQ(e.kind(), JobError::Kind::kSkipBudgetExhausted);
    EXPECT_EQ(e.phase(), 1);
  }
}

// --- job-level tolerance -----------------------------------------------------

TEST(Tolerance, FailedMapTasksWithinFractionAreTolerated) {
  const auto c = chaos_cluster(/*chunk=*/8);
  Dfs dfs(c);
  dfs.put("/in/data", kLines);  // 24 bytes -> 3 splits of 8
  const int tasks = static_cast<int>(dfs.chunks("/in/data").size());
  ASSERT_GE(tasks, 2);
  // A clean run establishes what each task's part file holds.
  run_map_only_job(dfs, c, echo_job("/clean"), [] { return EchoMapper{}; });
  const std::string task0_output(dfs.read(dfs.list("/clean/").front()));

  auto job = echo_job();
  job.failures.max_failed_task_fraction = 0.5;
  job.fault_plan.crashes = {{1, 0, 0}, {1, 0, 1}, {1, 0, 2}, {1, 0, 3}};
  const auto r = run_map_only_job(dfs, c, job, [] { return EchoMapper{}; });
  EXPECT_EQ(r.failed_tasks, 1);
  // Task 0's split contributed nothing; the rest of the input survived.
  EXPECT_EQ(task0_output + read_all(dfs, "/out"), read_all(dfs, "/clean"));
  EXPECT_EQ(r.num_map_tasks, tasks);
}

TEST(Tolerance, TooManyFailedTasksRaiseJobError) {
  const auto c = chaos_cluster(/*chunk=*/8);
  Dfs dfs(c);
  dfs.put("/in/data", kLines);
  auto job = echo_job();
  job.failures.max_failed_task_fraction = 0.4;  // 3 splits -> 1 tolerated
  job.fault_plan.crashes = {{1, 0, 0}, {1, 0, 1}, {1, 0, 2}, {1, 0, 3},
                            {1, 1, 0}, {1, 1, 1}, {1, 1, 2}, {1, 1, 3}};
  try {
    run_map_only_job(dfs, c, job, [] { return EchoMapper{}; });
    FAIL() << "expected JobError";
  } catch (const JobError& e) {
    EXPECT_EQ(e.kind(), JobError::Kind::kTooManyFailedTasks);
  }
}

// --- mid-job datanode death --------------------------------------------------

TEST(NodeKill, MidJobDeathRecoversFromReplicasWithIdenticalOutput) {
  auto run = [] {
    const auto c = chaos_cluster(/*chunk=*/8);  // replication 3 (default)
    Dfs dfs(c);
    dfs.put("/in/data", kLines);
    auto job = echo_job();
    job.fault_plan.node_kills = {{/*node=*/1, /*after_map_tasks=*/1}};
    const auto r = run_map_only_job(dfs, c, job, [] { return EchoMapper{}; });
    return std::pair{read_all(dfs, "/out"), r};
  };
  const auto [out_a, r_a] = run();
  const auto [out_b, r_b] = run();
  EXPECT_EQ(out_a, kLines);  // no data lost: replicas survived elsewhere
  EXPECT_EQ(out_a, out_b);   // same seed -> byte-identical
  EXPECT_EQ(r_a.lost_chunks, 0);
  EXPECT_GT(r_a.sim_recovery_seconds, 0.0);
  EXPECT_DOUBLE_EQ(r_a.sim_recovery_seconds, r_b.sim_recovery_seconds);
  EXPECT_DOUBLE_EQ(r_a.sim_seconds,
                   r_a.sim_startup_seconds + r_a.sim_map_seconds +
                       r_a.sim_recovery_seconds);
}

TEST(NodeKill, LosingEveryReplicaIsDataLoss) {
  auto c = chaos_cluster(/*chunk=*/8);
  c.replication = 1;  // every chunk lives on exactly one node
  Dfs dfs(c);
  dfs.put("/in/data", kLines);
  // Kill the node holding the *last* split before any map wave runs: with
  // replication 1 that split is unrecoverable.
  const auto& chunks = dfs.chunks("/in/data");
  const int victim = chunks.back().replicas.at(0);
  auto job = echo_job();
  job.fault_plan.node_kills = {{victim, /*after_map_tasks=*/0}};
  try {
    run_map_only_job(dfs, c, job, [] { return EchoMapper{}; });
    FAIL() << "expected JobError";
  } catch (const JobError& e) {
    EXPECT_EQ(e.kind(), JobError::Kind::kDataLoss);
  }
}

TEST(NodeKill, DataLossIsTolerableUnderFailureFraction) {
  auto c = chaos_cluster(/*chunk=*/8);
  c.replication = 1;
  Dfs dfs(c);
  dfs.put("/in/data", kLines);
  const auto& chunks = dfs.chunks("/in/data");
  const int victim = chunks.back().replicas.at(0);
  int victim_chunks = 0;
  for (const auto& ci : chunks) victim_chunks += (ci.replicas.at(0) == victim);
  auto job = echo_job();
  job.failures.max_failed_task_fraction = 1.0;  // tolerate anything
  job.fault_plan.node_kills = {{victim, 0}};
  const auto r = run_map_only_job(dfs, c, job, [] { return EchoMapper{}; });
  EXPECT_EQ(r.failed_tasks, victim_chunks);
  EXPECT_EQ(r.lost_chunks, victim_chunks);
  EXPECT_LT(read_all(dfs, "/out").size(), std::string(kLines).size());
}

TEST(NodeKill, KillingTheLastLiveDatanodeIsRefused) {
  const auto c = chaos_cluster(/*chunk=*/64, /*nodes=*/1);
  Dfs dfs(c);
  dfs.put("/in/data", kLines);
  auto job = echo_job();
  job.fault_plan.node_kills = {{0, 0}};
  try {
    run_map_only_job(dfs, c, job, [] { return EchoMapper{}; });
    FAIL() << "expected JobError";
  } catch (const JobError& e) {
    EXPECT_EQ(e.kind(), JobError::Kind::kDataLoss);
    EXPECT_NE(std::string(e.what()).find("last live datanode"),
              std::string::npos);
  }
}

// --- reduce-phase faults -----------------------------------------------------

std::map<std::string, std::int64_t> parse_wc(const Dfs& dfs,
                                             const std::string& dir) {
  std::map<std::string, std::int64_t> counts;
  for (const auto& part : dfs.list(dir + "/")) {
    const std::string_view data = dfs.read(part);
    std::size_t start = 0;
    while (start < data.size()) {
      std::size_t end = data.find('\n', start);
      if (end == std::string_view::npos) end = data.size();
      const std::string_view line = data.substr(start, end - start);
      const auto tab = line.find('\t');
      counts[std::string(line.substr(0, tab))] +=
          std::stoll(std::string(line.substr(tab + 1)));
      start = end + 1;
    }
  }
  return counts;
}

const char* kCorpus = "the quick fox\nthe lazy dog\nthe dog barks\n";

TEST(ReduceFaults, CrashedReduceAttemptIsRetried) {
  const auto c = chaos_cluster(/*chunk=*/16);
  Dfs dfs(c);
  dfs.put("/in/data", kCorpus);
  JobConfig clean;
  clean.name = "wc";
  clean.input = "/in";
  clean.output = "/clean";
  clean.num_reducers = 2;
  run_mapreduce_job(dfs, c, clean, [] { return WcMapper{}; },
                    [] { return WcReducer{}; });

  auto job = clean;
  job.output = "/out";
  job.fault_plan.crashes = {{/*phase=*/2, /*task=*/0, /*attempt=*/0},
                            {/*phase=*/2, /*task=*/1, /*attempt=*/0}};
  const auto r = run_mapreduce_job(dfs, c, job, [] { return WcMapper{}; },
                                   [] { return WcReducer{}; });
  EXPECT_EQ(parse_wc(dfs, "/out"), parse_wc(dfs, "/clean"));
  EXPECT_EQ(r.failed_task_attempts, 2);
}

TEST(ReduceFaults, ExhaustedReducerAlwaysSinksTheJob) {
  const auto c = chaos_cluster(/*chunk=*/16);
  Dfs dfs(c);
  dfs.put("/in/data", kCorpus);
  JobConfig job;
  job.name = "wc";
  job.input = "/in";
  job.output = "/out";
  job.num_reducers = 1;
  // Reduce exhaustion is fatal even with a generous map-failure fraction.
  job.failures.max_failed_task_fraction = 1.0;
  job.fault_plan.crashes = {{2, 0, 0}, {2, 0, 1}, {2, 0, 2}, {2, 0, 3}};
  try {
    run_mapreduce_job(dfs, c, job, [] { return WcMapper{}; },
                      [] { return WcReducer{}; });
    FAIL() << "expected JobError";
  } catch (const JobError& e) {
    EXPECT_EQ(e.kind(), JobError::Kind::kAttemptsExhausted);
    EXPECT_EQ(e.phase(), 2);
    EXPECT_EQ(e.task_index(), 0);
  }
}

TEST(ReduceFaults, SkipModeDropsPoisonedGroup) {
  const auto c = chaos_cluster(/*chunk=*/16);
  Dfs dfs(c);
  dfs.put("/in/data", kCorpus);
  JobConfig job;
  job.name = "wc";
  job.input = "/in";
  job.output = "/out";
  job.num_reducers = 1;
  job.failures.max_skipped_records = 1;
  const auto r = run_mapreduce_job(dfs, c, job, [] { return WcMapper{}; },
                                   [] { return WcReducer{/*poison=*/"dog"}; });
  auto counts = parse_wc(dfs, "/out");
  EXPECT_EQ(counts.count("dog"), 0u);  // the poisoned group was skipped
  EXPECT_EQ(counts.at("the"), 3);      // everything else survived
  EXPECT_EQ(r.skipped_records, 1u);
  EXPECT_EQ(r.counters.at("SkippedRecords"), 1);
}

// --- combined chaos ----------------------------------------------------------

TEST(Chaos, EverythingAtOnceStillReproducesTheCleanOutput) {
  // Crashing mapper attempts (planned + probabilistic), a reducer crash, a
  // mid-job datanode death, skip-mode headroom and blacklisting enabled: the
  // output must equal the fault-free run, twice over (determinism).
  auto run = [](bool chaos) {
    auto c = chaos_cluster(/*chunk=*/16);
    c.blacklist_after_failures = 6;
    Dfs dfs(c);
    dfs.put("/in/data", kCorpus);
    JobConfig job;
    job.name = "wc-chaos";
    job.input = "/in";
    job.output = "/out";
    job.num_reducers = 2;
    if (chaos) {
      job.failures.max_skipped_records = 2;
      job.fault_plan.seed = 1234;
      job.fault_plan.attempt_crash_prob = 0.3;
      job.fault_plan.crashes = {{1, 0, 0}, {2, 1, 0}};
      job.fault_plan.node_kills = {{2, 1}};
    }
    const auto r = run_mapreduce_job(dfs, c, job, [] { return WcMapper{}; },
                                     [] { return WcReducer{}; });
    return std::pair{read_all(dfs, "/out"), r};
  };
  const auto [clean_out, clean_r] = run(false);
  const auto [chaos_a, r_a] = run(true);
  const auto [chaos_b, r_b] = run(true);
  EXPECT_EQ(chaos_a, clean_out);
  EXPECT_EQ(chaos_a, chaos_b);
  EXPECT_GT(r_a.failed_task_attempts, 0);
  EXPECT_EQ(r_a.failed_task_attempts, r_b.failed_task_attempts);
  EXPECT_EQ(r_a.output_records, clean_r.output_records);
  // The recovery charge is purely modeled (moved bytes / bandwidth), so it
  // is bit-identical across reruns; total sim_seconds also folds in measured
  // host CPU time and is only approximately reproducible.
  EXPECT_GT(r_a.sim_recovery_seconds, 0.0);
  EXPECT_DOUBLE_EQ(r_a.sim_recovery_seconds, r_b.sim_recovery_seconds);
}

}  // namespace
}  // namespace gepeto::mr

// --- k-means checkpoint / resume ---------------------------------------------

namespace gepeto::core {
namespace {

geo::GeolocatedDataset two_blob_dataset() {
  gepeto::Rng rng(11);
  geo::GeolocatedDataset ds;
  std::int64_t ts = 1'222'819'200;
  geo::Trail trail;
  for (int b = 0; b < 2; ++b)
    for (int i = 0; i < 40; ++i)
      trail.push_back({0, 39.9 + 0.2 * b + rng.gaussian(0, 0.001),
                       116.4 + 0.2 * b + rng.gaussian(0, 0.001), 150.0, ts++});
  ds.add_trail(0, std::move(trail));
  return ds;
}

mr::ClusterConfig kmeans_cluster() {
  mr::ClusterConfig c;
  c.num_worker_nodes = 4;
  c.nodes_per_rack = 2;
  c.chunk_size = 1 << 16;
  c.execution_threads = 2;
  return c;
}

TEST(KMeansResume, RestartsFromTheLastCheckpointAfterAJobError) {
  const auto ds = two_blob_dataset();
  const auto cluster = kmeans_cluster();
  KMeansConfig config;
  config.k = 2;
  config.seed = 3;
  config.max_iterations = 10;

  // Clean reference run.
  mr::Dfs clean_dfs(cluster);
  geo::dataset_to_dfs(clean_dfs, "/in", ds, 2);
  const auto clean = kmeans_mapreduce(clean_dfs, cluster, "/in/", "/clusters",
                                      config);
  ASSERT_GE(clean.iterations, 2);

  // Same run, but iteration 1 dies (all four attempts of map task 0 crash).
  mr::Dfs dfs(cluster);
  geo::dataset_to_dfs(dfs, "/in", ds, 2);
  auto faulty = config;
  faulty.fault_iteration = 1;
  faulty.fault_plan.crashes = {{1, 0, 0}, {1, 0, 1}, {1, 0, 2}, {1, 0, 3}};
  EXPECT_THROW(kmeans_mapreduce(dfs, cluster, "/in/", "/clusters", faulty),
               mr::JobError);
  // Iteration 0 completed, so checkpoints iter-000 and iter-001 exist.
  EXPECT_TRUE(dfs.exists("/clusters/iter-001"));

  // Resume with the fault gone (a transient failure): the driver picks up
  // from iter-001, re-runs only iterations 1.., and lands on the exact same
  // centroids as the uninterrupted run.
  auto resumed_config = config;
  resumed_config.resume = true;
  const auto resumed =
      kmeans_mapreduce(dfs, cluster, "/in/", "/clusters", resumed_config);
  EXPECT_EQ(resumed.iterations, clean.iterations - 1);
  EXPECT_EQ(resumed.converged, clean.converged);
  ASSERT_EQ(resumed.centroids.size(), clean.centroids.size());
  for (std::size_t i = 0; i < clean.centroids.size(); ++i) {
    EXPECT_DOUBLE_EQ(resumed.centroids[i].latitude,
                     clean.centroids[i].latitude);
    EXPECT_DOUBLE_EQ(resumed.centroids[i].longitude,
                     clean.centroids[i].longitude);
  }
  EXPECT_EQ(resumed.cluster_sizes, clean.cluster_sizes);
}

TEST(KMeansResume, ResumeWithoutCheckpointsStartsFresh) {
  // With nothing checkpointed under the clusters path, resume degrades to a
  // normal run (initialize, write iter-000, iterate) — same result as a
  // fresh invocation.
  const auto ds = two_blob_dataset();
  const auto cluster = kmeans_cluster();
  KMeansConfig config;
  config.k = 2;
  config.seed = 3;
  config.max_iterations = 10;

  mr::Dfs fresh_dfs(cluster);
  geo::dataset_to_dfs(fresh_dfs, "/in", ds, 2);
  const auto fresh =
      kmeans_mapreduce(fresh_dfs, cluster, "/in/", "/clusters", config);

  mr::Dfs dfs(cluster);
  geo::dataset_to_dfs(dfs, "/in", ds, 2);
  auto resuming = config;
  resuming.resume = true;  // nothing was ever checkpointed under /clusters
  const auto r = kmeans_mapreduce(dfs, cluster, "/in/", "/clusters", resuming);
  EXPECT_EQ(r.iterations, fresh.iterations);
  ASSERT_EQ(r.centroids.size(), fresh.centroids.size());
  for (std::size_t i = 0; i < r.centroids.size(); ++i)
    EXPECT_DOUBLE_EQ(r.centroids[i].latitude, fresh.centroids[i].latitude);
}

}  // namespace
}  // namespace gepeto::core
