// Tests for the GeoJSON / heatmap exports: structural validity (balanced
// JSON, expected feature counts) and content checks.
#include <gtest/gtest.h>

#include <algorithm>

#include "common/check.h"
#include "geo/generator.h"
#include "gepeto/export.h"

namespace gepeto::core {
namespace {

/// A tiny structural JSON check: balanced braces/brackets, no trailing
/// commas before closers.
void expect_balanced_json(const std::string& s) {
  int braces = 0, brackets = 0;
  char prev = 0;
  for (char c : s) {
    if (c == '{') ++braces;
    if (c == '}') {
      --braces;
      EXPECT_NE(prev, ',') << "trailing comma before }";
    }
    if (c == '[') ++brackets;
    if (c == ']') {
      --brackets;
      EXPECT_NE(prev, ',') << "trailing comma before ]";
    }
    ASSERT_GE(braces, 0);
    ASSERT_GE(brackets, 0);
    prev = c;
  }
  EXPECT_EQ(braces, 0);
  EXPECT_EQ(brackets, 0);
}

std::size_t count_occurrences(const std::string& s, const std::string& sub) {
  std::size_t n = 0, pos = 0;
  while ((pos = s.find(sub, pos)) != std::string::npos) {
    ++n;
    pos += sub.size();
  }
  return n;
}

geo::SyntheticDataset world() {
  geo::GeneratorConfig cfg;
  cfg.num_users = 3;
  cfg.duration_days = 8;
  cfg.trajectories_per_user_min = 8;
  cfg.trajectories_per_user_max = 12;
  cfg.seed = 801;
  return geo::generate_dataset(cfg);
}

TEST(Export, DatasetGeoJsonHasOneFeaturePerUser) {
  const auto w = world();
  const auto json = dataset_to_geojson(w.data);
  expect_balanced_json(json);
  EXPECT_EQ(count_occurrences(json, "\"type\":\"Feature\""), 3u);
  EXPECT_EQ(count_occurrences(json, "MultiLineString"), 3u);
  EXPECT_NE(json.find("\"user\":0"), std::string::npos);
}

TEST(Export, DatasetGeoJsonThinsLongSegments) {
  const auto w = world();
  GeoJsonOptions opts;
  opts.max_points_per_segment = 10;
  const auto thin = dataset_to_geojson(w.data, opts);
  opts.max_points_per_segment = 0;
  const auto full = dataset_to_geojson(w.data, opts);
  expect_balanced_json(thin);
  EXPECT_LT(thin.size(), full.size() / 3);
}

TEST(Export, EmptyDataset) {
  const auto json = dataset_to_geojson(geo::GeolocatedDataset{});
  expect_balanced_json(json);
  EXPECT_EQ(count_occurrences(json, "Feature\""), 0u);
}

TEST(Export, ClustersGeoJson) {
  DjClusterResult r;
  DjCluster c;
  c.centroid_lat = 39.9;
  c.centroid_lon = 116.4;
  c.members = {1, 2, 3};
  r.clusters.push_back(c);
  r.clusters.push_back(c);
  const auto json = clusters_to_geojson(r);
  expect_balanced_json(json);
  EXPECT_EQ(count_occurrences(json, "\"type\":\"Point\""), 2u);
  EXPECT_NE(json.find("\"size\":3"), std::string::npos);
}

TEST(Export, PoisGeoJsonMarksHomeAndWork) {
  ExtractedPois pois;
  PoiCandidate p;
  p.latitude = 39.9;
  p.longitude = 116.4;
  p.num_traces = 10;
  pois.pois = {p, p, p};
  pois.home_index = 0;
  pois.work_index = 2;
  const auto json = pois_to_geojson(pois);
  expect_balanced_json(json);
  EXPECT_EQ(count_occurrences(json, "\"role\":\"home\""), 1u);
  EXPECT_EQ(count_occurrences(json, "\"role\":\"work\""), 1u);
  EXPECT_EQ(count_occurrences(json, "\"role\":\"poi\""), 1u);
}

TEST(Export, GroundTruthGeoJson) {
  const auto w = world();
  const auto json = ground_truth_to_geojson(w.profiles);
  expect_balanced_json(json);
  std::size_t pois = 0;
  for (const auto& p : w.profiles) pois += p.pois.size();
  EXPECT_EQ(count_occurrences(json, "\"type\":\"Point\""), pois);
  EXPECT_EQ(count_occurrences(json, "\"kind\":\"home\""), 3u);
}

TEST(Export, ZonesGeoJsonAreClosedPolygons) {
  const auto json = zones_to_geojson({{39.9, 116.4, 300.0}});
  expect_balanced_json(json);
  EXPECT_EQ(count_occurrences(json, "Polygon"), 1u);
  // 24 sides + closing vertex.
  EXPECT_EQ(count_occurrences(json, "["), 2u + 1u + 25u);
}

TEST(Export, SocialLinksGeoJson) {
  const auto w = world();
  std::vector<SocialEdge> edges{{0, 1, 4, 3600}, {1, 2, 3, 1800}};
  const auto json = social_links_to_geojson(edges, w.profiles);
  expect_balanced_json(json);
  EXPECT_EQ(count_occurrences(json, "LineString"), 2u);
  EXPECT_NE(json.find("\"meetings\":4"), std::string::npos);
}

TEST(Export, HeatmapCsv) {
  const auto w = world();
  const auto csv = heatmap_csv(w.data, 500.0);
  EXPECT_EQ(csv.rfind("lat,lon,count\n", 0), 0u);
  const auto lines = count_occurrences(csv, "\n");
  EXPECT_GT(lines, 5u);
  EXPECT_LT(lines, w.data.num_traces());
  // Total counts across cells must equal the trace count.
  std::uint64_t total = 0;
  std::size_t pos = csv.find('\n') + 1;
  while (pos < csv.size()) {
    const auto c2 = csv.rfind(',', csv.find('\n', pos));
    total += std::stoull(csv.substr(c2 + 1));
    pos = csv.find('\n', pos) + 1;
  }
  EXPECT_EQ(total, w.data.num_traces());
  EXPECT_THROW(heatmap_csv(w.data, 0.0), gepeto::CheckFailure);
}

}  // namespace
}  // namespace gepeto::core
