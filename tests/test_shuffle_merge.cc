// Tests of the shuffle hot path: the loser-tree k-way merge (merge.h), the
// zero-copy group layout, emit-time partitioning, and — most importantly —
// golden-output tests pinning job outputs to the exact bytes the previous
// concat-and-stable-sort shuffle produced at the same seed. The shuffle may
// be rearchitected freely as long as these bytes never move.
#include <gtest/gtest.h>

#include <cstdint>
#include <map>
#include <random>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "mapreduce/engine.h"
#include "mapreduce/merge.h"

namespace gepeto::mr {
namespace {

ClusterConfig test_cluster(std::size_t chunk = 64) {
  ClusterConfig c;
  c.num_worker_nodes = 4;
  c.nodes_per_rack = 2;
  c.chunk_size = chunk;
  c.execution_threads = 2;
  c.seed = 99;
  return c;
}

// --- merge.h unit tests ------------------------------------------------------

using IntRun = SortedRun<int, int>;

IntRun make_run(std::vector<std::pair<int, int>> pairs) {
  detail::sort_pairs(pairs);
  return detail::split_pairs(std::move(pairs));
}

/// Reference semantics the loser tree must reproduce: concatenate the runs
/// in order and stable-sort by key.
IntRun reference_merge(const std::vector<IntRun>& runs) {
  std::vector<std::pair<int, int>> all;
  for (const auto& r : runs)
    for (std::size_t i = 0; i < r.size(); ++i)
      all.emplace_back(r.keys[i], r.values[i]);
  detail::sort_pairs(all);
  return detail::split_pairs(std::move(all));
}

IntRun merge_copies(std::vector<IntRun> runs) {
  std::vector<IntRun*> ptrs;
  for (auto& r : runs) ptrs.push_back(&r);
  return detail::merge_sorted_runs<int, int>(
      std::span<IntRun* const>(ptrs.data(), ptrs.size()));
}

TEST(LoserTreeMerge, EmptyAndSingleRun) {
  EXPECT_TRUE(merge_copies({}).empty());

  IntRun only = merge_copies({make_run({{3, 30}, {1, 10}, {2, 20}})});
  EXPECT_EQ(only.keys, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(only.values, (std::vector<int>{10, 20, 30}));
}

TEST(LoserTreeMerge, StableAcrossRunsOnEqualKeys) {
  // Every run carries key 5; values encode (run, position). The merged value
  // order must be run 0's values in order, then run 1's, then run 2's.
  std::vector<IntRun> runs;
  runs.push_back(make_run({{5, 1}, {5, 2}, {1, 0}}));
  runs.push_back(make_run({{5, 3}, {9, 9}}));
  runs.push_back(make_run({{5, 4}, {5, 5}}));
  const IntRun expect = reference_merge(runs);
  const IntRun got = merge_copies(std::move(runs));
  EXPECT_EQ(got.keys, expect.keys);
  EXPECT_EQ(got.values, expect.values);
  EXPECT_EQ(got.values, (std::vector<int>{0, 1, 2, 3, 4, 5, 9}));
}

TEST(LoserTreeMerge, HandlesEmptyRunsInTheMiddle) {
  std::vector<IntRun> runs;
  runs.push_back(make_run({{2, 1}}));
  runs.push_back(make_run({}));
  runs.push_back(make_run({{1, 2}, {2, 3}}));
  runs.push_back(make_run({}));
  const IntRun expect = reference_merge(runs);
  const IntRun got = merge_copies(std::move(runs));
  EXPECT_EQ(got.keys, expect.keys);
  EXPECT_EQ(got.values, expect.values);
}

TEST(LoserTreeMerge, MatchesReferenceOnRandomRuns) {
  std::mt19937 rng(4242);
  for (int trial = 0; trial < 50; ++trial) {
    const int num_runs = 1 + static_cast<int>(rng() % 9);  // 1..9 incl. non-pow2
    std::vector<IntRun> runs;
    for (int m = 0; m < num_runs; ++m) {
      std::vector<std::pair<int, int>> pairs;
      const int n = static_cast<int>(rng() % 20);
      for (int i = 0; i < n; ++i) {
        // Few distinct keys: plenty of cross-run duplicates to stress the
        // stability tie-break.
        pairs.emplace_back(static_cast<int>(rng() % 7), m * 1000 + i);
      }
      runs.push_back(make_run(std::move(pairs)));
    }
    const IntRun expect = reference_merge(runs);
    const IntRun got = merge_copies(std::move(runs));
    EXPECT_EQ(got.keys, expect.keys) << "trial " << trial;
    EXPECT_EQ(got.values, expect.values) << "trial " << trial;
  }
}

TEST(ZeroCopyGroups, SpansAliasTheRunStorageWithNoCopies) {
  const IntRun run = make_run({{1, 10}, {2, 20}, {2, 21}, {2, 22}, {3, 30}});
  std::vector<std::pair<int, std::size_t>> groups;  // (key, count)
  detail::for_each_group(run, [&](const int& key, std::span<const int> vals) {
    // The span must point straight into run.values — zero-copy contract.
    EXPECT_GE(vals.data(), run.values.data());
    EXPECT_LE(vals.data() + vals.size(), run.values.data() + run.values.size());
    groups.emplace_back(key, vals.size());
  });
  ASSERT_EQ(groups.size(), 3u);
  EXPECT_EQ(groups[1], (std::pair<int, std::size_t>{2, 3}));
}

TEST(Partitioning, SingleReducerSkipsHashing) {
  // With one reducer every key lands in partition 0, including key types
  // whose std::hash would otherwise scatter.
  for (int k = -100; k <= 100; ++k)
    EXPECT_EQ(detail::partition_of(k, 1), 0u);
  EXPECT_EQ(detail::partition_of(std::string("anything"), 1), 0u);
}

// --- golden job outputs ------------------------------------------------------
//
// These bytes were captured from the engine *before* the shuffle rework
// (per-pair redistribution + concat + stable_sort) at the same cluster
// config and seed. The rearchitected shuffle must reproduce them exactly.

struct WcMapper {
  using OutKey = std::string;
  using OutValue = std::int64_t;
  void map(std::int64_t, std::string_view line,
           MapContext<OutKey, OutValue>& ctx) {
    std::size_t i = 0;
    while (i < line.size()) {
      while (i < line.size() && line[i] == ' ') ++i;
      std::size_t j = i;
      while (j < line.size() && line[j] != ' ') ++j;
      if (j > i) ctx.emit(std::string(line.substr(i, j - i)), 1);
      i = j;
    }
  }
};

struct WcReducer {
  void reduce(const std::string& key, std::span<const std::int64_t> values,
              ReduceContext& ctx) {
    std::int64_t sum = 0;
    for (auto v : values) sum += v;
    ctx.write(key + "\t" + std::to_string(sum));
  }
};

struct WcCombiner {
  void combine(const std::string& key, std::span<const std::int64_t> values,
               MapContext<std::string, std::int64_t>& ctx) {
    std::int64_t sum = 0;
    for (auto v : values) sum += v;
    ctx.emit(key, sum);
  }
};

/// Value-order sensitive reducer: concatenates the value sequence, so the
/// output is a fingerprint of the exact merged order, not just group sums.
struct SeqMapper {
  using OutKey = std::int32_t;
  using OutValue = std::int64_t;
  void map(std::int64_t offset, std::string_view line,
           MapContext<OutKey, OutValue>& ctx) {
    ctx.emit(static_cast<std::int32_t>(line.size() % 3), offset);
  }
};

struct SeqReducer {
  void reduce(const std::int32_t& key, std::span<const std::int64_t> values,
              ReduceContext& ctx) {
    std::string out = std::to_string(key) + ":";
    for (auto v : values) out += std::to_string(v) + ",";
    ctx.write(out);
  }
};

const char* kCorpus =
    "the quick brown fox\n"
    "jumps over the lazy dog\n"
    "the dog barks\n"
    "fox and dog\n";

TEST(GoldenOutput, WordcountMatchesPreReworkBytes) {
  Dfs dfs(test_cluster(16));
  dfs.put("/in/corpus", kCorpus);
  JobConfig job;
  job.name = "wc";
  job.input = "/in";
  job.output = "/out";
  job.num_reducers = 3;
  const JobResult r = run_mapreduce_job(
      dfs, test_cluster(16), job, [] { return WcMapper{}; },
      [] { return WcReducer{}; });
  EXPECT_EQ(dfs.read("/out/part-r-00000"),
            "and\t1\nbarks\t1\nbrown\t1\nlazy\t1\n");
  EXPECT_EQ(dfs.read("/out/part-r-00001"), "dog\t3\nfox\t2\nthe\t3\n");
  EXPECT_EQ(dfs.read("/out/part-r-00002"), "jumps\t1\nover\t1\nquick\t1\n");
  // Each reducer merged one non-empty run per map task that had output
  // for its partition; the total is bounded by maps x reducers.
  EXPECT_GT(r.spill_runs, 0u);
  EXPECT_LE(r.spill_runs, static_cast<std::uint64_t>(r.num_map_tasks) *
                              static_cast<std::uint64_t>(r.num_reduce_tasks));
  EXPECT_GE(r.sort_seconds, 0.0);
  EXPECT_GE(r.merge_seconds, 0.0);
}

TEST(GoldenOutput, CombinerRunMatchesPreReworkBytes) {
  Dfs dfs(test_cluster(8));
  dfs.put("/in/corpus", kCorpus);
  JobConfig job;
  job.name = "wc-comb";
  job.input = "/in";
  job.output = "/out";
  job.num_reducers = 2;
  job.use_combiner = true;
  run_mapreduce_job(dfs, test_cluster(8), job, [] { return WcMapper{}; },
                    [] { return WcReducer{}; }, [] { return WcCombiner{}; });
  EXPECT_EQ(dfs.read("/out/part-r-00000"),
            "brown\t1\ndog\t3\nfox\t2\njumps\t1\nthe\t3\n");
  EXPECT_EQ(dfs.read("/out/part-r-00001"),
            "and\t1\nbarks\t1\nlazy\t1\nover\t1\nquick\t1\n");
}

TEST(GoldenOutput, ValueOrderMatchesPreReworkBytes) {
  // SeqReducer's output encodes the exact value order inside each group —
  // the strictest possible probe of the merge's stability rule.
  Dfs dfs(test_cluster(8));
  dfs.put("/in/corpus", kCorpus);
  JobConfig job;
  job.name = "seq";
  job.input = "/in";
  job.output = "/out";
  job.num_reducers = 2;
  run_mapreduce_job(dfs, test_cluster(8), job, [] { return SeqMapper{}; },
                    [] { return SeqReducer{}; });
  EXPECT_EQ(dfs.read("/out/part-r-00000"), "1:0,44,\n");
  EXPECT_EQ(dfs.read("/out/part-r-00001"), "2:20,58,\n");
}

// --- combiner equivalence through the zero-copy layout -----------------------

std::map<std::string, std::int64_t> parse_wordcount(const Dfs& dfs,
                                                    const std::string& dir) {
  std::map<std::string, std::int64_t> counts;
  for (const auto& part : dfs.list(dir + "/")) {
    std::istringstream in{std::string(dfs.read(part))};
    std::string line;
    while (std::getline(in, line)) {
      const auto tab = line.find('\t');
      counts[line.substr(0, tab)] += std::stoll(line.substr(tab + 1));
    }
  }
  return counts;
}

TEST(CombinerEquivalence, OnAndOffProduceIdenticalPartFiles) {
  // chunk=64 gives map tasks with repeated words, so the combiner really
  // collapses pairs (at tiny chunks every task holds one line and it can't).
  auto run_wc = [](bool combine) {
    Dfs dfs(test_cluster(64));
    dfs.put("/in/corpus", kCorpus);
    JobConfig job;
    job.name = "wc";
    job.input = "/in";
    job.output = "/out";
    job.num_reducers = 2;
    job.use_combiner = combine;
    const JobResult r = run_mapreduce_job(
        dfs, test_cluster(64), job, [] { return WcMapper{}; },
        [] { return WcReducer{}; }, [] { return WcCombiner{}; });
    std::vector<std::string> parts;
    for (const auto& p : dfs.list("/out/"))
      parts.emplace_back(dfs.read(p));
    return std::make_tuple(parts, parse_wordcount(dfs, "/out"), r);
  };
  const auto [parts_off, counts_off, r_off] = run_wc(false);
  const auto [parts_on, counts_on, r_on] = run_wc(true);
  EXPECT_EQ(parts_on, parts_off);  // byte-identical through both layouts
  EXPECT_EQ(counts_on, counts_off);
  EXPECT_EQ(counts_on.at("dog"), 3);
  // The combiner shrank the shuffle but merged the same partitions.
  EXPECT_LT(r_on.shuffle_bytes, r_off.shuffle_bytes);
  EXPECT_LT(r_on.combine_output_records, r_off.combine_output_records);
}

// --- retried reduce attempts re-iterate the same merged run ------------------

TEST(ReduceRetry, CrashedAttemptReiteratesTheSameMergedRun) {
  auto run_seq = [](FaultPlan plan) {
    Dfs dfs(test_cluster(8));
    dfs.put("/in/corpus", kCorpus);
    JobConfig job;
    job.name = "seq";
    job.input = "/in";
    job.output = "/out";
    job.num_reducers = 2;
    job.fault_plan = std::move(plan);
    const JobResult r = run_mapreduce_job(
        dfs, test_cluster(8), job, [] { return SeqMapper{}; },
        [] { return SeqReducer{}; });
    std::vector<std::string> parts;
    for (const auto& p : dfs.list("/out/"))
      parts.emplace_back(dfs.read(p));
    return std::make_pair(parts, r);
  };

  const auto [clean_parts, clean_r] = run_seq({});
  ASSERT_EQ(clean_r.failed_task_attempts, 0);

  // Crash the first attempt of both reduce tasks mid-iteration: the retry
  // must re-walk the *same* merged run (groups are non-consuming spans) and
  // reproduce the exact same bytes.
  FaultPlan plan;
  plan.crashes.push_back({/*phase=*/2, /*task=*/0, /*attempt=*/0});
  plan.crashes.push_back({/*phase=*/2, /*task=*/1, /*attempt=*/0});
  const auto [chaos_parts, chaos_r] = run_seq(plan);
  EXPECT_GE(chaos_r.failed_task_attempts, 2);
  EXPECT_EQ(chaos_parts, clean_parts);
  EXPECT_EQ(chaos_parts[0], "1:0,44,\n");
  // Shuffle accounting is independent of reduce-side retries.
  EXPECT_EQ(chaos_r.shuffle_bytes, clean_r.shuffle_bytes);
  EXPECT_EQ(chaos_r.spill_runs, clean_r.spill_runs);
}

}  // namespace
}  // namespace gepeto::mr
