// Engine edge cases: empty files, empty map outputs, single-record inputs,
// reducer counts exceeding keys, and speculation flowing through a real job.
#include <gtest/gtest.h>

#include <string>

#include "mapreduce/engine.h"

namespace gepeto::mr {
namespace {

ClusterConfig tiny() {
  ClusterConfig c;
  c.num_worker_nodes = 3;
  c.nodes_per_rack = 2;
  c.chunk_size = 64;
  c.execution_threads = 2;
  return c;
}

struct NullMapper {
  void map(std::int64_t, std::string_view, MapOnlyContext&) {}
};

struct CountMapper {
  using OutKey = int;
  using OutValue = std::int64_t;
  void map(std::int64_t, std::string_view, MapContext<int, std::int64_t>& ctx) {
    ctx.emit(0, 1);
  }
};

struct SumReducer {
  void reduce(const int&, std::span<const std::int64_t> values,
              ReduceContext& ctx) {
    std::int64_t sum = 0;
    for (auto v : values) sum += v;
    ctx.write(std::to_string(sum));
  }
};

TEST(EngineEdge, EmptyInputFileProducesEmptyOutput) {
  Dfs dfs(tiny());
  dfs.put("/in/empty", "");
  JobConfig job;
  job.input = "/in";
  job.output = "/out";
  const auto r = run_map_only_job(dfs, tiny(), job, [] { return NullMapper{}; });
  EXPECT_EQ(r.map_input_records, 0u);
  EXPECT_EQ(r.output_records, 0u);
  EXPECT_EQ(r.num_map_tasks, 1);  // the empty chunk still becomes a task
}

TEST(EngineEdge, MapperEmittingNothingStillWritesEmptyParts) {
  Dfs dfs(tiny());
  dfs.put("/in/data", "a\nb\nc\n");
  JobConfig job;
  job.input = "/in";
  job.output = "/out";
  const auto r = run_map_only_job(dfs, tiny(), job, [] { return NullMapper{}; });
  EXPECT_EQ(r.map_input_records, 3u);
  EXPECT_EQ(r.output_records, 0u);
  EXPECT_FALSE(dfs.list("/out/").empty());
}

TEST(EngineEdge, ReduceJobWithNoMapOutput) {
  Dfs dfs(tiny());
  dfs.put("/in/data", "\n\n");
  JobConfig job;
  job.input = "/in";
  job.output = "/out";
  job.num_reducers = 2;
  struct SilentMapper {
    using OutKey = int;
    using OutValue = int;
    void map(std::int64_t, std::string_view, MapContext<int, int>&) {}
  };
  struct NeverReducer {
    void reduce(const int&, std::span<const int>, ReduceContext& ctx) {
      ctx.write("should not happen");
    }
  };
  const auto r = run_mapreduce_job(dfs, tiny(), job,
                                   [] { return SilentMapper{}; },
                                   [] { return NeverReducer{}; });
  EXPECT_EQ(r.reduce_input_groups, 0u);
  EXPECT_EQ(r.output_records, 0u);
  EXPECT_EQ(r.shuffle_bytes, 0u);
}

TEST(EngineEdge, MoreReducersThanKeys) {
  Dfs dfs(tiny());
  dfs.put("/in/data", "x\ny\nz\n");
  JobConfig job;
  job.input = "/in";
  job.output = "/out";
  job.num_reducers = 8;  // only one key exists
  const auto r = run_mapreduce_job(dfs, tiny(), job,
                                   [] { return CountMapper{}; },
                                   [] { return SumReducer{}; });
  EXPECT_EQ(r.reduce_input_groups, 1u);
  std::string all;
  for (const auto& p : dfs.list("/out/")) all += dfs.read(p);
  EXPECT_EQ(all, "3\n");
}

TEST(EngineEdge, SingleByteChunksStillExact) {
  auto c = tiny();
  c.chunk_size = 1;
  Dfs dfs(c);
  dfs.put("/in/data", "q\nr\n");
  JobConfig job;
  job.input = "/in";
  job.output = "/out";
  const auto r = run_mapreduce_job(dfs, c, job, [] { return CountMapper{}; },
                                   [] { return SumReducer{}; });
  EXPECT_EQ(r.map_input_records, 2u);
  std::string all;
  for (const auto& p : dfs.list("/out/")) all += dfs.read(p);
  EXPECT_EQ(all, "2\n");
}

TEST(EngineEdge, SpeculationFlowsThroughJobResult) {
  auto c = tiny();
  c.chunk_size = 2;
  c.speculative_execution = true;
  c.node_speed_factor = {5.0, 1.0, 1.0};
  Dfs dfs(c);
  dfs.put("/in/data", "a\nb\nc\nd\ne\nf\n");
  JobConfig job;
  job.input = "/in";
  job.output = "/out";
  const auto r = run_map_only_job(dfs, c, job, [] { return NullMapper{}; });
  EXPECT_GE(r.speculative_copies, 0);
  EXPECT_EQ(r.map_input_records, 6u);
}

TEST(EngineEdge, JobNamePropagates) {
  Dfs dfs(tiny());
  dfs.put("/in/data", "a\n");
  JobConfig job;
  job.name = "my-job";
  job.input = "/in";
  job.output = "/out";
  const auto r = run_map_only_job(dfs, tiny(), job, [] { return NullMapper{}; });
  EXPECT_EQ(r.job_name, "my-job");
}

}  // namespace
}  // namespace gepeto::mr
