// End-to-end tests of the MapReduce engine: map-only jobs, full map-reduce
// jobs (the canonical word count), combiners, partitioning, distributed
// cache, counters, failure injection, and determinism.
#include <gtest/gtest.h>

#include <charconv>
#include <map>
#include <sstream>
#include <string>

#include "mapreduce/engine.h"

namespace gepeto::mr {
namespace {

ClusterConfig test_cluster(std::size_t chunk = 64) {
  ClusterConfig c;
  c.num_worker_nodes = 4;
  c.nodes_per_rack = 2;
  c.chunk_size = chunk;
  c.execution_threads = 2;
  c.seed = 99;
  return c;
}

// --- toy jobs ---------------------------------------------------------------

/// Map-only: keep lines containing the letter 'x'.
struct KeepXMapper {
  void map(std::int64_t, std::string_view line, MapOnlyContext& ctx) {
    if (line.find('x') != std::string_view::npos) {
      ctx.write(line);
      ctx.increment("kept");
    }
  }
};

/// Word count mapper/reducer/combiner.
struct WcMapper {
  using OutKey = std::string;
  using OutValue = std::int64_t;
  void map(std::int64_t, std::string_view line, MapContext<OutKey, OutValue>& ctx) {
    std::size_t i = 0;
    while (i < line.size()) {
      while (i < line.size() && line[i] == ' ') ++i;
      std::size_t j = i;
      while (j < line.size() && line[j] != ' ') ++j;
      if (j > i) ctx.emit(std::string(line.substr(i, j - i)), 1);
      i = j;
    }
  }
};

struct WcReducer {
  void reduce(const std::string& key, std::span<const std::int64_t> values,
              ReduceContext& ctx) {
    std::int64_t sum = 0;
    for (auto v : values) sum += v;
    ctx.write(key + "\t" + std::to_string(sum));
  }
};

struct WcCombiner {
  void combine(const std::string& key, std::span<const std::int64_t> values,
               MapContext<std::string, std::int64_t>& ctx) {
    std::int64_t sum = 0;
    for (auto v : values) sum += v;
    ctx.emit(key, sum);
  }
};

std::map<std::string, std::int64_t> parse_wordcount(const Dfs& dfs,
                                                    const std::string& dir) {
  std::map<std::string, std::int64_t> counts;
  for (const auto& part : dfs.list(dir + "/")) {
    std::istringstream in{std::string(dfs.read(part))};
    std::string line;
    while (std::getline(in, line)) {
      const auto tab = line.find('\t');
      counts[line.substr(0, tab)] += std::stoll(line.substr(tab + 1));
    }
  }
  return counts;
}

const char* kCorpus =
    "the quick brown fox\n"
    "jumps over the lazy dog\n"
    "the dog barks\n"
    "fox and dog\n";

// --- map-only ---------------------------------------------------------------

TEST(MapOnlyJob, FiltersLinesAcrossChunks) {
  Dfs dfs(test_cluster(/*chunk=*/8));  // tiny chunks: many map tasks
  dfs.put("/in/data", "axe\nbob\nxen\nyyy\nmax\n");
  JobConfig job;
  job.name = "keepx";
  job.input = "/in";
  job.output = "/out";
  const auto r = run_map_only_job(dfs, test_cluster(8), job,
                                  [] { return KeepXMapper{}; });
  // Concatenate the part files in order.
  std::string all;
  for (const auto& p : dfs.list("/out/")) all += dfs.read(p);
  EXPECT_EQ(all, "axe\nxen\nmax\n");
  EXPECT_EQ(r.map_input_records, 5u);
  EXPECT_EQ(r.output_records, 3u);
  EXPECT_EQ(r.counters.at("kept"), 3);
  EXPECT_GT(r.num_map_tasks, 1);
}

TEST(MapOnlyJob, OnePartFilePerMapTask) {
  Dfs dfs(test_cluster(8));
  dfs.put("/in/data", "axe\nbob\nxen\nyyy\nmax\n");
  JobConfig job;
  job.input = "/in";
  job.output = "/out";
  const auto r = run_map_only_job(dfs, test_cluster(8), job,
                                  [] { return KeepXMapper{}; });
  EXPECT_EQ(dfs.list("/out/").size(),
            static_cast<std::size_t>(r.num_map_tasks));
}

TEST(MapOnlyJob, MultipleInputFiles) {
  Dfs dfs(test_cluster(64));
  dfs.put("/in/a", "x1\n");
  dfs.put("/in/b", "no\n");
  dfs.put("/in/c", "x2\n");
  JobConfig job;
  job.input = "/in";
  job.output = "/out";
  const auto r = run_map_only_job(dfs, test_cluster(64), job,
                                  [] { return KeepXMapper{}; });
  EXPECT_EQ(r.num_map_tasks, 3);
  std::string all;
  for (const auto& p : dfs.list("/out/")) all += dfs.read(p);
  EXPECT_EQ(all, "x1\nx2\n");
}

TEST(MapOnlyJob, MissingInputThrows) {
  Dfs dfs(test_cluster());
  JobConfig job;
  job.input = "/does-not-exist";
  job.output = "/out";
  EXPECT_THROW(run_map_only_job(dfs, test_cluster(), job,
                                [] { return KeepXMapper{}; }),
               gepeto::CheckFailure);
}

TEST(MapOnlyJob, ReportsSimAndRealTime) {
  Dfs dfs(test_cluster(8));
  dfs.put("/in/data", "x\n");
  JobConfig job;
  job.input = "/in";
  job.output = "/out";
  const auto r = run_map_only_job(dfs, test_cluster(8), job,
                                  [] { return KeepXMapper{}; });
  EXPECT_GT(r.sim_seconds, 0.0);
  EXPECT_GE(r.real_seconds, 0.0);
  EXPECT_EQ(r.sim_seconds,
            r.sim_startup_seconds + r.sim_map_seconds + r.sim_reduce_seconds);
}

TEST(MapOnlyJob, OutputDirectoryIsReplaced) {
  Dfs dfs(test_cluster());
  dfs.put("/in/data", "x\n");
  dfs.put("/out/stale", "old stuff");
  JobConfig job;
  job.input = "/in";
  job.output = "/out";
  run_map_only_job(dfs, test_cluster(), job, [] { return KeepXMapper{}; });
  EXPECT_FALSE(dfs.exists("/out/stale"));
}

// --- full map-reduce ---------------------------------------------------------

TEST(MapReduceJob, WordCountSingleReducer) {
  Dfs dfs(test_cluster(16));
  dfs.put("/in/corpus", kCorpus);
  JobConfig job;
  job.name = "wc";
  job.input = "/in";
  job.output = "/out";
  job.num_reducers = 1;
  const auto r = run_mapreduce_job(dfs, test_cluster(16), job,
                                   [] { return WcMapper{}; },
                                   [] { return WcReducer{}; });
  const auto counts = parse_wordcount(dfs, "/out");
  EXPECT_EQ(counts.at("the"), 3);
  EXPECT_EQ(counts.at("dog"), 3);
  EXPECT_EQ(counts.at("fox"), 2);
  EXPECT_EQ(counts.at("barks"), 1);
  EXPECT_EQ(r.num_reduce_tasks, 1);
  EXPECT_EQ(r.reduce_input_groups, counts.size());
}

TEST(MapReduceJob, ResultsIdenticalForAnyReducerCount) {
  for (int reducers : {1, 2, 3, 7}) {
    Dfs dfs(test_cluster(16));
    dfs.put("/in/corpus", kCorpus);
    JobConfig job;
    job.input = "/in";
    job.output = "/out";
    job.num_reducers = reducers;
    run_mapreduce_job(dfs, test_cluster(16), job, [] { return WcMapper{}; },
                      [] { return WcReducer{}; });
    const auto counts = parse_wordcount(dfs, "/out");
    EXPECT_EQ(counts.at("the"), 3) << reducers;
    EXPECT_EQ(counts.size(), 10u) << reducers;
  }
}

TEST(MapReduceJob, ResultsIdenticalForAnyChunkSize) {
  std::map<std::string, std::int64_t> reference;
  for (std::size_t chunk : {4, 9, 16, 1024}) {
    Dfs dfs(test_cluster(chunk));
    dfs.put("/in/corpus", kCorpus);
    JobConfig job;
    job.input = "/in";
    job.output = "/out";
    job.num_reducers = 2;
    run_mapreduce_job(dfs, test_cluster(chunk), job, [] { return WcMapper{}; },
                      [] { return WcReducer{}; });
    const auto counts = parse_wordcount(dfs, "/out");
    if (reference.empty()) reference = counts;
    EXPECT_EQ(counts, reference) << "chunk=" << chunk;
  }
}

TEST(MapReduceJob, CombinerPreservesResultAndShrinksShuffle) {
  auto run = [&](bool combine) {
    Dfs dfs(test_cluster(8));
    dfs.put("/in/corpus", kCorpus);
    JobConfig job;
    job.input = "/in";
    job.output = "/out";
    job.num_reducers = 2;
    job.use_combiner = combine;
    const auto r = run_mapreduce_job(dfs, test_cluster(8), job,
                                     [] { return WcMapper{}; },
                                     [] { return WcReducer{}; },
                                     [] { return WcCombiner{}; });
    return std::make_pair(parse_wordcount(dfs, "/out"), r);
  };
  const auto [plain_counts, plain] = run(false);
  const auto [comb_counts, comb] = run(true);
  EXPECT_EQ(plain_counts, comb_counts);
  EXPECT_LE(comb.combine_output_records, plain.combine_output_records);
  EXPECT_LE(comb.shuffle_bytes, plain.shuffle_bytes);
  EXPECT_EQ(comb.map_output_records, plain.map_output_records);
}

TEST(MapReduceJob, CountersMergeAcrossPhases) {
  struct CountingMapper : WcMapper {
    void map(std::int64_t off, std::string_view line,
             MapContext<std::string, std::int64_t>& ctx) {
      ctx.increment("map.lines");
      WcMapper::map(off, line, ctx);
    }
  };
  struct CountingReducer : WcReducer {
    void reduce(const std::string& key, std::span<const std::int64_t> values,
                ReduceContext& ctx) {
      ctx.increment("reduce.groups");
      WcReducer::reduce(key, values, ctx);
    }
  };
  Dfs dfs(test_cluster(16));
  dfs.put("/in/corpus", kCorpus);
  JobConfig job;
  job.input = "/in";
  job.output = "/out";
  job.num_reducers = 2;
  const auto r = run_mapreduce_job(dfs, test_cluster(16), job,
                                   [] { return CountingMapper{}; },
                                   [] { return CountingReducer{}; });
  EXPECT_EQ(r.counters.at("map.lines"), 4);
  EXPECT_EQ(r.counters.at("reduce.groups"),
            static_cast<std::int64_t>(r.reduce_input_groups));
}

TEST(MapReduceJob, DistributedCacheIsReadable) {
  struct CacheMapper {
    using OutKey = std::string;
    using OutValue = std::int64_t;
    std::string prefix;
    void setup(TaskContext& ctx) {
      prefix = std::string(ctx.cache_file("/cache/prefix"));
    }
    void map(std::int64_t, std::string_view line,
             MapContext<OutKey, OutValue>& ctx) {
      ctx.emit(prefix + std::string(line), 1);
    }
  };
  Dfs dfs(test_cluster());
  dfs.put("/in/data", "a\nb\n");
  dfs.put("/cache/prefix", ">>");
  JobConfig job;
  job.input = "/in";
  job.output = "/out";
  job.cache_files = {"/cache/prefix"};
  run_mapreduce_job(dfs, test_cluster(), job, [] { return CacheMapper{}; },
                    [] { return WcReducer{}; });
  const auto counts = parse_wordcount(dfs, "/out");
  EXPECT_EQ(counts.at(">>a"), 1);
  EXPECT_EQ(counts.at(">>b"), 1);
}

TEST(MapReduceJob, CacheFileNotDeclaredThrows) {
  struct BadMapper {
    using OutKey = std::string;
    using OutValue = std::int64_t;
    void setup(TaskContext& ctx) { (void)ctx.cache_file("/cache/undeclared"); }
    void map(std::int64_t, std::string_view, MapContext<OutKey, OutValue>&) {}
  };
  Dfs dfs(test_cluster());
  dfs.put("/in/data", "a\n");
  dfs.put("/cache/undeclared", "x");
  JobConfig job;
  job.input = "/in";
  job.output = "/out";
  EXPECT_THROW(run_mapreduce_job(dfs, test_cluster(), job,
                                 [] { return BadMapper{}; },
                                 [] { return WcReducer{}; }),
               gepeto::CheckFailure);
}

TEST(MapReduceJob, FailureInjectionRecordsAttemptsButPreservesOutput) {
  Dfs dfs(test_cluster(8));
  dfs.put("/in/corpus", kCorpus);
  JobConfig job;
  job.input = "/in";
  job.output = "/out";
  job.num_reducers = 2;
  job.failures.task_failure_prob = 0.5;
  const auto r = run_mapreduce_job(dfs, test_cluster(8), job,
                                   [] { return WcMapper{}; },
                                   [] { return WcReducer{}; });
  EXPECT_GT(r.failed_task_attempts, 0);
  const auto counts = parse_wordcount(dfs, "/out");
  EXPECT_EQ(counts.at("the"), 3);
}

TEST(MapReduceJob, FailureInjectionIsDeterministic) {
  auto run = [&] {
    Dfs dfs(test_cluster(8));
    dfs.put("/in/corpus", kCorpus);
    JobConfig job;
    job.input = "/in";
    job.output = "/out";
    job.failures.task_failure_prob = 0.3;
    return run_mapreduce_job(dfs, test_cluster(8), job,
                             [] { return WcMapper{}; },
                             [] { return WcReducer{}; })
        .failed_task_attempts;
  };
  EXPECT_EQ(run(), run());
}

TEST(MapReduceJob, LocalityCountersCoverAllMapTasks) {
  Dfs dfs(test_cluster(8));
  dfs.put("/in/corpus", kCorpus);
  JobConfig job;
  job.input = "/in";
  job.output = "/out";
  const auto r = run_mapreduce_job(dfs, test_cluster(8), job,
                                   [] { return WcMapper{}; },
                                   [] { return WcReducer{}; });
  EXPECT_EQ(r.data_local_maps + r.rack_local_maps + r.remote_maps,
            r.num_map_tasks);
}

TEST(MapReduceJob, UseCombinerWithoutFactoryThrows) {
  Dfs dfs(test_cluster());
  dfs.put("/in/data", "a\n");
  JobConfig job;
  job.input = "/in";
  job.output = "/out";
  job.use_combiner = true;
  EXPECT_THROW(run_mapreduce_job(dfs, test_cluster(), job,
                                 [] { return WcMapper{}; },
                                 [] { return WcReducer{}; }),
               gepeto::CheckFailure);
}

TEST(MapReduceJob, PipelinedJobsChainThroughDfs) {
  // Job 1: word count; job 2: filter counts >= 2 (map-only over job 1 output).
  struct FilterMapper {
    void map(std::int64_t, std::string_view line, MapOnlyContext& ctx) {
      const auto tab = line.find('\t');
      std::int64_t n = 0;
      const auto* first = line.data() + tab + 1;
      std::from_chars(first, line.data() + line.size(), n);
      if (n >= 2) ctx.write(line);
    }
  };
  Dfs dfs(test_cluster(16));
  dfs.put("/in/corpus", kCorpus);
  JobConfig j1;
  j1.input = "/in";
  j1.output = "/wc";
  auto r1 = run_mapreduce_job(dfs, test_cluster(16), j1,
                              [] { return WcMapper{}; },
                              [] { return WcReducer{}; });
  JobConfig j2;
  j2.input = "/wc";
  j2.output = "/filtered";
  auto r2 = run_map_only_job(dfs, test_cluster(16), j2,
                             [] { return FilterMapper{}; });
  r1.absorb(r2);
  // The two groupings sum the same terms in different order; allow for
  // floating-point non-associativity.
  EXPECT_NEAR(r1.sim_seconds,
              r1.sim_startup_seconds + r1.sim_map_seconds +
                  r1.sim_reduce_seconds,
              1e-9);

  const auto counts = parse_wordcount(dfs, "/filtered");
  EXPECT_EQ(counts.size(), 3u);  // the, dog, fox
  EXPECT_EQ(counts.at("the"), 3);
}

TEST(MapReduceJob, TypedNumericKeysSortNumerically) {
  // Keys are ints: reduce order must be numeric (2 before 10), proving we do
  // not stringify keys for the sort.
  struct IntKeyMapper {
    using OutKey = int;
    using OutValue = int;
    void map(std::int64_t, std::string_view line,
             MapContext<int, int>& ctx) {
      ctx.emit(static_cast<int>(std::stoi(std::string(line))), 1);
    }
  };
  struct OrderRecordingReducer {
    void reduce(const int& key, std::span<const int> values,
                ReduceContext& ctx) {
      (void)values;
      ctx.write(std::to_string(key));
    }
  };
  Dfs dfs(test_cluster());
  dfs.put("/in/nums", "10\n2\n33\n2\n");
  JobConfig job;
  job.input = "/in";
  job.output = "/out";
  job.num_reducers = 1;
  run_mapreduce_job(dfs, test_cluster(), job, [] { return IntKeyMapper{}; },
                    [] { return OrderRecordingReducer{}; });
  EXPECT_EQ(dfs.read("/out/part-r-00000"), "2\n10\n33\n");
}

}  // namespace
}  // namespace gepeto::mr
