// Tests for the MapReduce spatial-cloaking pipeline: census correctness and
// semantic agreement with the sequential spatial_cloaking().
#include <gtest/gtest.h>

#include <algorithm>

#include "common/check.h"
#include "geo/generator.h"
#include "geo/geolife.h"
#include "gepeto/sanitize.h"
#include "mapreduce/dfs.h"

namespace gepeto::core {
namespace {

mr::ClusterConfig small_cluster() {
  mr::ClusterConfig c;
  c.num_worker_nodes = 4;
  c.nodes_per_rack = 2;
  c.chunk_size = 1 << 15;
  c.execution_threads = 2;
  return c;
}

geo::SyntheticDataset make_world(std::uint64_t seed) {
  geo::GeneratorConfig cfg;
  cfg.num_users = 5;
  cfg.duration_days = 12;
  cfg.trajectories_per_user_min = 20;
  cfg.trajectories_per_user_max = 30;
  cfg.seed = seed;
  return geo::generate_dataset(cfg);
}

TEST(CloakingMr, MatchesSequentialCloaking) {
  const auto world = make_world(701);
  mr::Dfs dfs(small_cluster());
  geo::dataset_to_dfs(dfs, "/in", world.data, 3);
  const auto round_tripped = geo::dataset_from_dfs(dfs, "/in/");

  const int k = 2;
  const double base = 200.0;
  const int doublings = 5;
  const auto seq = spatial_cloaking(round_tripped, k, base, doublings);
  const auto mr_result =
      run_cloaking_jobs(dfs, small_cluster(), "/in/", "/cloak", k, base,
                        doublings);

  EXPECT_EQ(mr_result.suppressed, seq.suppressed);
  auto got = geo::dataset_from_dfs(dfs, "/cloak/cloaked/");
  ASSERT_EQ(got.num_traces(), seq.data.num_traces());
  for (auto uid : seq.data.users()) {
    const auto& w = seq.data.trail(uid);
    auto g = got.trail(uid);
    std::sort(g.begin(), g.end(), [](const auto& a, const auto& b) {
      return a.timestamp < b.timestamp;
    });
    ASSERT_EQ(g.size(), w.size()) << "user " << uid;
    for (std::size_t i = 0; i < g.size(); ++i) {
      EXPECT_EQ(g[i].timestamp, w[i].timestamp);
      EXPECT_NEAR(g[i].latitude, w[i].latitude, 1e-6);
      EXPECT_NEAR(g[i].longitude, w[i].longitude, 1e-6);
    }
  }
}

TEST(CloakingMr, CombinerShrinksCensusShuffle) {
  const auto world = make_world(702);
  mr::Dfs dfs(small_cluster());
  geo::dataset_to_dfs(dfs, "/in", world.data, 3);
  const auto r =
      run_cloaking_jobs(dfs, small_cluster(), "/in/", "/cloak", 2, 200.0, 4);
  // Raw map output = traces x levels; the combiner collapses it to
  // (cell, user) pairs, far fewer on dwell-heavy data.
  EXPECT_LT(r.census_job.combine_output_records,
            r.census_job.map_output_records / 2);
}

TEST(CloakingMr, KOneKeepsEverything) {
  const auto world = make_world(703);
  mr::Dfs dfs(small_cluster());
  geo::dataset_to_dfs(dfs, "/in", world.data, 2);
  const auto r =
      run_cloaking_jobs(dfs, small_cluster(), "/in/", "/cloak", 1, 300.0, 3);
  EXPECT_EQ(r.suppressed, 0u);
  EXPECT_EQ(geo::count_dfs_records(dfs, "/cloak/cloaked/"),
            world.data.num_traces());
}

TEST(CloakingMr, ImpossibleKSuppressesEverything) {
  const auto world = make_world(704);
  mr::Dfs dfs(small_cluster());
  geo::dataset_to_dfs(dfs, "/in", world.data, 2);
  const auto r = run_cloaking_jobs(dfs, small_cluster(), "/in/", "/cloak",
                                   /*k=*/99, 200.0, 2);
  EXPECT_EQ(r.suppressed, world.data.num_traces());
  EXPECT_EQ(geo::count_dfs_records(dfs, "/cloak/cloaked/"), 0u);
}

TEST(CloakingMr, RejectsBadArguments) {
  mr::Dfs dfs(small_cluster());
  EXPECT_THROW(run_cloaking_jobs(dfs, small_cluster(), "/in/", "/c", 0, 100.0),
               gepeto::CheckFailure);
}

}  // namespace
}  // namespace gepeto::core
