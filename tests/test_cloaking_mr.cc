// Tests for the MapReduce spatial-cloaking pipeline: census correctness and
// semantic agreement with the sequential spatial_cloaking().
#include <gtest/gtest.h>

#include <algorithm>

#include "common/check.h"
#include "geo/generator.h"
#include "geo/geolife.h"
#include "gepeto/attacks/privacy_verifier.h"
#include "gepeto/sanitize.h"
#include "mapreduce/dfs.h"

namespace gepeto::core {
namespace {

mr::ClusterConfig small_cluster() {
  mr::ClusterConfig c;
  c.num_worker_nodes = 4;
  c.nodes_per_rack = 2;
  c.chunk_size = 1 << 15;
  c.execution_threads = 2;
  return c;
}

geo::SyntheticDataset make_world(std::uint64_t seed) {
  geo::GeneratorConfig cfg;
  cfg.num_users = 5;
  cfg.duration_days = 12;
  cfg.trajectories_per_user_min = 20;
  cfg.trajectories_per_user_max = 30;
  cfg.seed = seed;
  return geo::generate_dataset(cfg);
}

TEST(CloakingMr, MatchesSequentialCloaking) {
  const auto world = make_world(701);
  mr::Dfs dfs(small_cluster());
  geo::dataset_to_dfs(dfs, "/in", world.data, 3);
  const auto round_tripped = geo::dataset_from_dfs(dfs, "/in/");

  const int k = 2;
  const double base = 200.0;
  const int doublings = 5;
  const auto seq = spatial_cloaking(round_tripped, k, base, doublings);
  const auto mr_result =
      run_cloaking_jobs(dfs, small_cluster(), "/in/", "/cloak", k, base,
                        doublings);

  EXPECT_EQ(mr_result.suppressed, seq.suppressed);
  auto got = geo::dataset_from_dfs(dfs, "/cloak/cloaked/");
  ASSERT_EQ(got.num_traces(), seq.data.num_traces());
  for (auto uid : seq.data.users()) {
    const auto& w = seq.data.trail(uid);
    auto g = got.trail(uid);
    std::sort(g.begin(), g.end(), [](const auto& a, const auto& b) {
      return a.timestamp < b.timestamp;
    });
    ASSERT_EQ(g.size(), w.size()) << "user " << uid;
    for (std::size_t i = 0; i < g.size(); ++i) {
      EXPECT_EQ(g[i].timestamp, w[i].timestamp);
      EXPECT_NEAR(g[i].latitude, w[i].latitude, 1e-6);
      EXPECT_NEAR(g[i].longitude, w[i].longitude, 1e-6);
    }
  }
}

TEST(CloakingMr, CombinerShrinksCensusShuffle) {
  const auto world = make_world(702);
  mr::Dfs dfs(small_cluster());
  geo::dataset_to_dfs(dfs, "/in", world.data, 3);
  const auto r =
      run_cloaking_jobs(dfs, small_cluster(), "/in/", "/cloak", 2, 200.0, 4);
  // Raw map output = traces x levels; the combiner collapses it to
  // (cell, user) pairs, far fewer on dwell-heavy data.
  EXPECT_LT(r.census_job.combine_output_records,
            r.census_job.map_output_records / 2);
}

TEST(CloakingMr, KOneKeepsEverything) {
  const auto world = make_world(703);
  mr::Dfs dfs(small_cluster());
  geo::dataset_to_dfs(dfs, "/in", world.data, 2);
  const auto r =
      run_cloaking_jobs(dfs, small_cluster(), "/in/", "/cloak", 1, 300.0, 3);
  EXPECT_EQ(r.suppressed, 0u);
  EXPECT_EQ(geo::count_dfs_records(dfs, "/cloak/cloaked/"),
            world.data.num_traces());
}

TEST(CloakingMr, ImpossibleKSuppressesEverything) {
  const auto world = make_world(704);
  mr::Dfs dfs(small_cluster());
  geo::dataset_to_dfs(dfs, "/in", world.data, 2);
  const auto r = run_cloaking_jobs(dfs, small_cluster(), "/in/", "/cloak",
                                   /*k=*/99, 200.0, 2);
  EXPECT_EQ(r.suppressed, world.data.num_traces());
  EXPECT_EQ(geo::count_dfs_records(dfs, "/cloak/cloaked/"), 0u);
}

// --- k-anonymity counting regressions on the MR path (ISSUE 10 sat. 1) -------

TEST(CloakingMr, CountsDistinctUsersNotTraces) {
  // The distributed census must count distinct user ids, not traces: a
  // chatty user alone in a cell stays suppressed no matter how many traces
  // they log (and the combiner's local dedup must not break that).
  geo::GeolocatedDataset data;
  for (int i = 0; i < 50; ++i) data.add({1, 40.0, 116.0, 0, 1000 + i * 60});
  data.add({2, 41.0, 117.0, 0, 500});
  mr::Dfs dfs(small_cluster());
  geo::dataset_to_dfs(dfs, "/in", data, 2);
  const auto r = run_cloaking_jobs(dfs, small_cluster(), "/in/", "/cloak",
                                   /*k=*/2, 100.0, /*max_doublings=*/0);
  EXPECT_EQ(r.suppressed, data.num_traces());
  EXPECT_EQ(geo::count_dfs_records(dfs, "/cloak/cloaked/"), 0u);
}

TEST(CloakingMr, ExactlyKUsersReleasedAtBaseCell) {
  // count == k boundary: exactly k distinct users in a cell release at the
  // base level — no extra doubling, no suppression.
  geo::GeolocatedDataset data;
  for (std::int32_t u = 1; u <= 3; ++u) data.add({u, 40.0, 116.0, 0, 100 * u});
  mr::Dfs dfs(small_cluster());
  geo::dataset_to_dfs(dfs, "/in", data, 1);
  const auto r = run_cloaking_jobs(dfs, small_cluster(), "/in/", "/cloak",
                                   /*k=*/3, 250.0, 4);
  EXPECT_EQ(r.suppressed, 0u);
  const auto got = geo::dataset_from_dfs(dfs, "/cloak/cloaked/");
  double clat = 0, clon = 0;
  grid_cell_center(grid_cell_of(40.0, 116.0, 250.0), 250.0, clat, clon);
  ASSERT_EQ(got.num_users(), 3u);
  const auto& first = got.trail(1).front();
  for (const auto& [uid, trail] : got)
    for (const auto& t : trail) {
      // Released at the *base* cell's center (to codec precision), and
      // bit-identically for every user — the pure-function-of-the-cell fix.
      EXPECT_NEAR(t.latitude, clat, 1e-6);
      EXPECT_NEAR(t.longitude, clon, 1e-6);
      EXPECT_EQ(t.latitude, first.latitude);
      EXPECT_EQ(t.longitude, first.longitude);
    }
}

TEST(CloakingMr, ReleaseSatisfiesCloakingContract) {
  // The adversarial oracle itself: the MR release passes the declared
  // privacy contract on generated data.
  const auto world = make_world(705);
  mr::Dfs dfs(small_cluster());
  geo::dataset_to_dfs(dfs, "/in", world.data, 3);
  const auto original = geo::dataset_from_dfs(dfs, "/in/");
  run_cloaking_jobs(dfs, small_cluster(), "/in/", "/cloak", 3, 200.0, 4);
  const auto released = geo::dataset_from_dfs(dfs, "/cloak/cloaked/");
  const auto report =
      verify_cloaking(original, released, CloakingContract{3, 200.0, 4});
  EXPECT_TRUE(report.ok()) << report.summary();
  // One merge-walk check per distinct (user, timestamp) released/expected.
  EXPECT_GT(report.checks, original.num_users());
}

TEST(MixZoneMr, MatchesSequentialAndPassesContract) {
  const auto world = make_world(706);
  mr::Dfs dfs(small_cluster());
  geo::dataset_to_dfs(dfs, "/in", world.data, 3);
  const auto original = geo::dataset_from_dfs(dfs, "/in/");
  const auto zones = pick_mix_zones(original, 2, 300.0);
  ASSERT_EQ(zones.size(), 2u);

  const auto seq = apply_mix_zones(original, zones, kPseudonymSeed);
  const auto r = run_mix_zone_jobs(dfs, small_cluster(), "/in/", "/mz", zones,
                                   kPseudonymSeed);
  EXPECT_EQ(r.suppressed_traces, seq.suppressed_traces);
  EXPECT_EQ(r.pseudonym_changes, seq.pseudonym_changes);

  const auto got = geo::dataset_from_dfs(dfs, "/mz/mixed/");
  ASSERT_EQ(got.num_traces(), seq.data.num_traces());
  for (auto uid : seq.data.users()) {
    ASSERT_TRUE(got.has_user(uid)) << "pseudonym " << uid;
    EXPECT_EQ(got.trail(uid).size(), seq.data.trail(uid).size());
  }
  // Both realizations pass the mix-zone contract, including the released-
  // dataset variant that re-derives pseudonym owners adversarially.
  EXPECT_TRUE(verify_mix_zones(original, seq, zones).ok());
  const auto report = verify_mix_zones_release(original, got, zones);
  EXPECT_TRUE(report.ok()) << report.summary();
}

TEST(CloakingMr, RejectsBadArguments) {
  mr::Dfs dfs(small_cluster());
  EXPECT_THROW(run_cloaking_jobs(dfs, small_cluster(), "/in/", "/c", 0, 100.0),
               gepeto::CheckFailure);
}

}  // namespace
}  // namespace gepeto::core
