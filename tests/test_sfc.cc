// Tests for the space-filling curves: bijectivity, locality, and the
// ScalarMapper used by the MapReduce R-Tree partitioning phase.
#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "common/check.h"
#include "common/random.h"
#include "index/sfc.h"

namespace gepeto::index {
namespace {

TEST(ZOrder, KnownSmallValues) {
  EXPECT_EQ(zorder_encode(0, 0), 0u);
  EXPECT_EQ(zorder_encode(1, 0), 1u);
  EXPECT_EQ(zorder_encode(0, 1), 2u);
  EXPECT_EQ(zorder_encode(1, 1), 3u);
  EXPECT_EQ(zorder_encode(2, 0), 4u);
  EXPECT_EQ(zorder_encode(7, 7), 63u);
}

TEST(ZOrder, RoundTripRandom) {
  gepeto::Rng rng(71);
  for (int i = 0; i < 5000; ++i) {
    const auto x = static_cast<std::uint32_t>(rng.next());
    const auto y = static_cast<std::uint32_t>(rng.next());
    std::uint32_t bx, by;
    zorder_decode(zorder_encode(x, y), bx, by);
    ASSERT_EQ(bx, x);
    ASSERT_EQ(by, y);
  }
}

TEST(ZOrder, MonotoneInEachCoordinateAtPowerOfTwoBlocks) {
  // Z-order preserves order within quadrants: (x,y) < (x+2^k, y) whenever
  // coordinates are below 2^k.
  for (std::uint32_t x = 0; x < 8; ++x)
    for (std::uint32_t y = 0; y < 8; ++y)
      EXPECT_LT(zorder_encode(x, y), zorder_encode(x + 8, y));
}

TEST(Hilbert, FirstOrderCurve) {
  // Order-1 Hilbert: (0,0) -> 0, (0,1) -> 1, (1,1) -> 2, (1,0) -> 3.
  EXPECT_EQ(hilbert_encode(0, 0, 1), 0u);
  EXPECT_EQ(hilbert_encode(0, 1, 1), 1u);
  EXPECT_EQ(hilbert_encode(1, 1, 1), 2u);
  EXPECT_EQ(hilbert_encode(1, 0, 1), 3u);
}

TEST(Hilbert, BijectiveOnSmallGrid) {
  const int order = 4;
  const std::uint32_t n = 1u << order;
  std::set<std::uint64_t> seen;
  for (std::uint32_t x = 0; x < n; ++x)
    for (std::uint32_t y = 0; y < n; ++y) {
      const auto d = hilbert_encode(x, y, order);
      EXPECT_LT(d, static_cast<std::uint64_t>(n) * n);
      EXPECT_TRUE(seen.insert(d).second) << "collision at d=" << d;
    }
  EXPECT_EQ(seen.size(), static_cast<std::size_t>(n) * n);
}

TEST(Hilbert, RoundTripRandom) {
  gepeto::Rng rng(72);
  const int order = 16;
  for (int i = 0; i < 5000; ++i) {
    const auto x = static_cast<std::uint32_t>(rng.uniform_u64(1u << order));
    const auto y = static_cast<std::uint32_t>(rng.uniform_u64(1u << order));
    std::uint32_t bx, by;
    hilbert_decode(hilbert_encode(x, y, order), bx, by, order);
    ASSERT_EQ(bx, x);
    ASSERT_EQ(by, y);
  }
}

TEST(Hilbert, ConsecutiveCurvePositionsAreGridNeighbors) {
  // The defining property of the Hilbert curve: successive positions are
  // adjacent cells (Manhattan distance 1). Z-order does NOT satisfy this.
  const int order = 5;
  const std::uint32_t n = 1u << order;
  for (std::uint64_t d = 1; d < static_cast<std::uint64_t>(n) * n; ++d) {
    std::uint32_t x0, y0, x1, y1;
    hilbert_decode(d - 1, x0, y0, order);
    hilbert_decode(d, x1, y1, order);
    const int dist = std::abs(static_cast<int>(x1) - static_cast<int>(x0)) +
                     std::abs(static_cast<int>(y1) - static_cast<int>(y0));
    ASSERT_EQ(dist, 1) << "jump at d=" << d;
  }
}

TEST(Hilbert, RejectsOutOfRangeCoordinates) {
  EXPECT_THROW(hilbert_encode(4, 0, 2), gepeto::CheckFailure);
  EXPECT_THROW(hilbert_encode(0, 0, 0), gepeto::CheckFailure);
}

double avg_scalar_jump(CurveKind kind) {
  // Average |scalar(p) - scalar(q)| over pairs of nearby points: a locality
  // proxy. Hilbert should not be (much) worse than Z-order.
  const Rect box = Rect::of(39.8, 116.2, 40.0, 116.6);
  const ScalarMapper m(kind, box, 8);
  gepeto::Rng rng(73);
  double total = 0;
  const int trials = 3000;
  for (int i = 0; i < trials; ++i) {
    const double lat = rng.uniform(39.81, 39.99);
    const double lon = rng.uniform(116.21, 116.59);
    const auto a = m.scalar(lat, lon);
    const auto b = m.scalar(lat + 0.002, lon + 0.002);
    total += std::fabs(static_cast<double>(a) - static_cast<double>(b));
  }
  return total / trials;
}

TEST(ScalarMapper, BothCurvesPreserveLocality) {
  const double z = avg_scalar_jump(CurveKind::kZOrder);
  const double h = avg_scalar_jump(CurveKind::kHilbert);
  // Nearby points should map to nearby scalars, far from the worst case
  // (the curve length is 2^16).
  EXPECT_LT(z, 6000.0);
  EXPECT_LT(h, 6000.0);
}

TEST(ScalarMapper, ClampsOutOfBoundsPoints) {
  const Rect box = Rect::of(0, 0, 1, 1);
  const ScalarMapper m(CurveKind::kZOrder, box, 4);
  EXPECT_EQ(m.scalar(-5, -5), m.scalar(0, 0));
  EXPECT_EQ(m.scalar(9, 9), m.scalar(1, 1));
}

TEST(ScalarMapper, DeterministicAndWithinRange) {
  const Rect box = Rect::of(39.8, 116.2, 40.0, 116.6);
  const ScalarMapper m(CurveKind::kHilbert, box, 10);
  gepeto::Rng rng(74);
  for (int i = 0; i < 1000; ++i) {
    const double lat = rng.uniform(39.8, 40.0);
    const double lon = rng.uniform(116.2, 116.6);
    const auto s = m.scalar(lat, lon);
    EXPECT_EQ(s, m.scalar(lat, lon));
    EXPECT_LT(s, (1ull << 10) * (1ull << 10));
  }
}

TEST(ScalarMapper, DegenerateBoxMapsToCellZero) {
  const ScalarMapper m(CurveKind::kZOrder, Rect::point(5, 5), 4);
  EXPECT_EQ(m.scalar(5, 5), 0u);
  EXPECT_EQ(m.scalar(6, 6), 0u);
}

TEST(CurveNames, AreStable) {
  EXPECT_EQ(curve_name(CurveKind::kZOrder), "Z-order");
  EXPECT_EQ(curve_name(CurveKind::kHilbert), "Hilbert");
}

}  // namespace
}  // namespace gepeto::index
