// Tests for the geo-query serving layer: STR-packed R-Tree vs brute force,
// deterministic tie-breaking, the QueryEngine's cache + epoch-swap
// semantics under concurrency, the snapshot builders (including columnar
// block pruning), and the rebuild flow.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cmath>
#include <span>
#include <thread>
#include <vector>

#include "common/check.h"
#include "common/random.h"
#include "geo/generator.h"
#include "geo/geolife.h"
#include "mapreduce/dfs.h"
#include "serving/builders.h"
#include "serving/packed_rtree.h"
#include "serving/query_engine.h"
#include "serving/rebuild.h"
#include "storage/colfile.h"

namespace gepeto::serving {
namespace {

mr::ClusterConfig small_cluster() {
  mr::ClusterConfig c;
  c.num_worker_nodes = 4;
  c.nodes_per_rack = 2;
  c.chunk_size = 1 << 26;
  c.execution_threads = 2;
  return c;
}

std::vector<ServingPoint> random_points(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<ServingPoint> pts;
  pts.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    pts.push_back({39.0 + rng.uniform() * 2.0, 115.5 + rng.uniform() * 2.0,
                   static_cast<std::uint64_t>(i), 0.0, 1});
  }
  return pts;
}

/// The same ordering the tree promises: (dist2, id, lat, lon).
bool neighbor_less(const PackedRTree::Neighbor& a,
                   const PackedRTree::Neighbor& b) {
  if (a.dist2 != b.dist2) return a.dist2 < b.dist2;
  if (a.point.id != b.point.id) return a.point.id < b.point.id;
  if (a.point.lat != b.point.lat) return a.point.lat < b.point.lat;
  return a.point.lon < b.point.lon;
}

std::vector<PackedRTree::Neighbor> brute_knn(
    std::span<const ServingPoint> pts, double lat, double lon,
    std::uint32_t k) {
  std::vector<PackedRTree::Neighbor> all;
  all.reserve(pts.size());
  for (const auto& p : pts) {
    const double dlat = p.lat - lat, dlon = p.lon - lon;
    all.push_back({dlat * dlat + dlon * dlon, p});
  }
  std::sort(all.begin(), all.end(), neighbor_less);
  if (all.size() > k) all.resize(k);
  return all;
}

std::vector<ServingPoint> brute_range(std::span<const ServingPoint> pts,
                                      const index::Rect& box) {
  std::vector<ServingPoint> out;
  for (const auto& p : pts)
    if (box.contains(p.lat, p.lon)) out.push_back(p);
  std::sort(out.begin(), out.end(),
            [](const ServingPoint& a, const ServingPoint& b) {
              if (a.id != b.id) return a.id < b.id;
              if (a.lat != b.lat) return a.lat < b.lat;
              return a.lon < b.lon;
            });
  return out;
}

void expect_same_neighbors(const std::vector<PackedRTree::Neighbor>& got,
                           const std::vector<PackedRTree::Neighbor>& want) {
  ASSERT_EQ(got.size(), want.size());
  for (std::size_t i = 0; i < got.size(); ++i) {
    EXPECT_EQ(got[i].point.id, want[i].point.id) << "rank " << i;
    EXPECT_DOUBLE_EQ(got[i].dist2, want[i].dist2) << "rank " << i;
  }
}

TEST(PackedRTree, EmptyTree) {
  const PackedRTree t = PackedRTree::build({});
  EXPECT_TRUE(t.empty());
  EXPECT_EQ(t.size(), 0u);
  EXPECT_TRUE(t.knn(39.9, 116.4, 5).empty());
  EXPECT_TRUE(t.range(index::Rect::of(-90, -180, 90, 180)).empty());
  EXPECT_EQ(t.nearest(39.9, 116.4), nullptr);
  t.check_invariants();
}

TEST(PackedRTree, RejectsNonFiniteCoordinates) {
  const double nan = std::nan("");
  EXPECT_THROW(PackedRTree::build({{nan, 116.4, 1, 0.0, 1}}), CheckFailure);
  EXPECT_THROW(PackedRTree::build(
                   {{39.9, std::numeric_limits<double>::infinity(), 1, 0.0, 1}}),
               CheckFailure);
  EXPECT_THROW(PackedRTree::build({{39.9, 116.4, 1, nan, 1}}), CheckFailure);
}

TEST(PackedRTree, MatchesBruteForceAcrossSizesAndCapacities) {
  Rng rng(7);
  for (const std::size_t n : {1u, 15u, 16u, 17u, 333u, 2000u}) {
    for (const int cap : {4, 16}) {
      const auto pts = random_points(n, 1000 + n);
      const PackedRTree t = PackedRTree::build(pts, cap);
      t.check_invariants();
      EXPECT_EQ(t.size(), n);
      for (int q = 0; q < 25; ++q) {
        const double lat = 38.5 + rng.uniform() * 3.0;
        const double lon = 115.0 + rng.uniform() * 3.0;
        expect_same_neighbors(t.knn(lat, lon, 8), brute_knn(pts, lat, lon, 8));
        const auto box = index::Rect::of(lat, lon, lat + rng.uniform(),
                                         lon + rng.uniform());
        const auto got = t.range(box);
        const auto want = brute_range(pts, box);
        ASSERT_EQ(got.size(), want.size());
        for (std::size_t i = 0; i < got.size(); ++i)
          EXPECT_EQ(got[i].id, want[i].id);
        const ServingPoint* nearest = t.nearest(lat, lon);
        ASSERT_NE(nearest, nullptr);
        EXPECT_EQ(nearest->id, brute_knn(pts, lat, lon, 1)[0].point.id);
      }
    }
  }
}

TEST(PackedRTree, KnnTiesBreakDeterministically) {
  // Four points equidistant from the origin of the query: ids decide.
  std::vector<ServingPoint> pts = {{40.0, 116.0, 7, 0, 1},
                                   {40.0, 117.0, 3, 0, 1},
                                   {41.0, 116.0, 9, 0, 1},
                                   {41.0, 117.0, 1, 0, 1}};
  const PackedRTree t = PackedRTree::build(pts, 2);
  const auto got = t.knn(40.5, 116.5, 3);
  ASSERT_EQ(got.size(), 3u);
  EXPECT_EQ(got[0].point.id, 1u);
  EXPECT_EQ(got[1].point.id, 3u);
  EXPECT_EQ(got[2].point.id, 7u);
}

TEST(PackedRTree, KnnWithKLargerThanSize) {
  const auto pts = random_points(5, 3);
  const PackedRTree t = PackedRTree::build(pts);
  EXPECT_EQ(t.knn(39.9, 116.4, 50).size(), 5u);
}

TEST(QueryEngine, EmptyEngineAnswersNothing) {
  QueryEngine engine;
  EXPECT_EQ(engine.epoch(), 0u);
  const auto knn = engine.knn(39.9, 116.4, 5);
  EXPECT_EQ(knn.epoch, 0u);
  EXPECT_TRUE(knn.neighbors.empty());
  EXPECT_FALSE(engine.locate(39.9, 116.4).found);
}

TEST(QueryEngine, CacheHitsAreByteIdenticalAndCounted) {
  telemetry::MetricsRegistry metrics;
  ServingConfig config;
  config.metrics = &metrics;
  QueryEngine engine(config);
  auto snap = std::make_shared<IndexSnapshot>();
  snap->tree = PackedRTree::build(random_points(500, 42));
  EXPECT_EQ(engine.publish(snap), 1u);

  const auto first = engine.knn(39.5, 116.2, 8);
  EXPECT_FALSE(first.cache_hit);
  const auto second = engine.knn(39.5, 116.2, 8);
  EXPECT_TRUE(second.cache_hit);
  ASSERT_EQ(second.neighbors.size(), first.neighbors.size());
  for (std::size_t i = 0; i < first.neighbors.size(); ++i) {
    EXPECT_EQ(second.neighbors[i].point.id, first.neighbors[i].point.id);
    EXPECT_EQ(second.neighbors[i].dist2, first.neighbors[i].dist2);
  }
  // A different k is a different key.
  EXPECT_FALSE(engine.knn(39.5, 116.2, 9).cache_hit);

  EXPECT_EQ(metrics.find_counter("serving_queries_total")->value(), 3);
  EXPECT_EQ(metrics.find_counter("serving_cache_hits_total")->value(), 1);
  EXPECT_EQ(metrics.find_counter("serving_cache_misses_total")->value(), 2);
  EXPECT_GE(metrics.find_histogram("serving_query_seconds")->count(), 3u);
}

TEST(QueryEngine, EpochSwapInvalidatesCache) {
  QueryEngine engine;
  auto a = std::make_shared<IndexSnapshot>();
  a->tree = PackedRTree::build(random_points(100, 1));
  auto b = std::make_shared<IndexSnapshot>();
  b->tree = PackedRTree::build(random_points(100, 2));

  engine.publish(a);
  const auto before = engine.knn(39.5, 116.2, 4);
  EXPECT_TRUE(engine.knn(39.5, 116.2, 4).cache_hit);

  EXPECT_EQ(engine.publish(b), 2u);
  const auto after = engine.knn(39.5, 116.2, 4);
  EXPECT_FALSE(after.cache_hit);  // stale-epoch entry must not serve
  EXPECT_EQ(after.epoch, 2u);
  // And the fresh answer matches a brute force over snapshot b.
  expect_same_neighbors(after.neighbors,
                        brute_knn(b->tree.points(), 39.5, 116.2, 4));
  EXPECT_NE(before.epoch, after.epoch);
}

TEST(QueryEngine, RangeAndLocateSemantics) {
  QueryEngine engine;
  auto snap = std::make_shared<IndexSnapshot>();
  // One "cluster POI" with a 500 m radius at the city center.
  snap->tree = PackedRTree::build({{39.9042, 116.4074, 77, 500.0, 10}});
  engine.publish(snap);

  const auto in = engine.locate(39.905, 116.408);  // ~120 m away
  EXPECT_TRUE(in.found);
  EXPECT_TRUE(in.contained);
  EXPECT_EQ(in.point.id, 77u);
  EXPECT_GT(in.distance_m, 0.0);
  EXPECT_LT(in.distance_m, 500.0);

  const auto out = engine.locate(40.0, 116.5);  // ~13 km away
  EXPECT_TRUE(out.found);
  EXPECT_FALSE(out.contained);

  const auto hit = engine.range(index::Rect::of(39.9, 116.4, 39.91, 116.41));
  ASSERT_EQ(hit.points.size(), 1u);
  EXPECT_EQ(hit.points[0].id, 77u);
  EXPECT_TRUE(
      engine.range(index::Rect::of(0.0, 0.0, 1.0, 1.0)).points.empty());
}

TEST(QueryEngine, ConcurrentReadersSurviveEpochSwaps) {
  QueryEngine engine;
  std::vector<std::shared_ptr<const IndexSnapshot>> snaps;
  for (int e = 0; e < 4; ++e) {
    auto s = std::make_shared<IndexSnapshot>();
    s->tree = PackedRTree::build(random_points(400, 100 + e));
    snaps.push_back(std::move(s));
  }
  engine.publish(snaps[0]);

  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> failures{0};
  std::atomic<std::uint64_t> answered{0};
  const int num_threads = 4;
  std::vector<std::thread> readers;
  for (int t = 0; t < num_threads; ++t) {
    readers.emplace_back([&, t] {
      Rng rng(900 + static_cast<std::uint64_t>(t));
      while (!stop.load(std::memory_order_relaxed)) {
        const double lat = 39.0 + rng.uniform() * 2.0;
        const double lon = 115.5 + rng.uniform() * 2.0;
        const auto r = engine.knn(lat, lon, 6);
        if (r.epoch == 0 || r.epoch > snaps.size()) {
          failures.fetch_add(1);
          continue;
        }
        // Verify against the snapshot matching the answering epoch.
        const auto want =
            brute_knn(snaps[r.epoch - 1]->tree.points(), lat, lon, 6);
        if (r.neighbors.size() != want.size()) {
          failures.fetch_add(1);
          continue;
        }
        for (std::size_t i = 0; i < want.size(); ++i) {
          if (r.neighbors[i].point.id != want[i].point.id ||
              r.neighbors[i].dist2 != want[i].dist2) {
            failures.fetch_add(1);
            break;
          }
        }
        answered.fetch_add(1);
      }
    });
  }
  for (std::size_t e = 1; e < snaps.size(); ++e) {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    engine.publish(snaps[e]);
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  stop.store(true);
  for (auto& th : readers) th.join();
  EXPECT_EQ(failures.load(), 0u);
  EXPECT_GT(answered.load(), 0u);
  EXPECT_EQ(engine.epoch(), snaps.size());
}

TEST(Builders, DatasetSnapshotIndexesEveryTrace) {
  geo::GeneratorConfig gc;
  gc.num_users = 4;
  gc.duration_days = 2;
  gc.trajectories_per_user_min = 2;
  gc.trajectories_per_user_max = 3;
  const auto ds = geo::generate_dataset(gc).data;
  const auto snap = snapshot_from_dataset(ds);
  EXPECT_EQ(snap->tree.size(), ds.num_traces());
  snap->tree.check_invariants();

  // Every indexed id unpacks to a real (user, timestamp) pair.
  const auto r = snap->tree.knn(gc.city_latitude, gc.city_longitude, 3);
  ASSERT_FALSE(r.empty());
  std::int32_t user;
  std::int64_t ts;
  core::unpack_trace_id(r[0].point.id, user, ts);
  EXPECT_TRUE(ds.has_user(user));
}

TEST(Builders, ClusterSummariesBecomePois) {
  // Two tight sites, far apart; every member within radius of its centroid.
  geo::GeolocatedDataset ds;
  for (std::int32_t u = 0; u < 6; ++u) {
    geo::Trail trail;
    for (int i = 0; i < 12; ++i) {
      const double base_lat = u < 3 ? 39.90 : 39.95;
      trail.push_back({u, base_lat + 1e-5 * i, 116.40 + 1e-5 * i, 0.0,
                       1000 + i * 60});
    }
    ds.add_trail(u, std::move(trail));
  }
  core::DjClusterConfig config;
  config.radius_m = 100;
  config.min_pts = 5;
  const auto pre = core::preprocess(ds, config);
  const auto result = core::dj_cluster(pre, config);
  ASSERT_GE(result.clusters.size(), 2u);

  const auto summaries = core::summarize_clusters(result, pre);
  ASSERT_EQ(summaries.size(), result.clusters.size());
  for (const auto& s : summaries) {
    EXPECT_GT(s.size, 0u);
    EXPECT_GT(s.radius_m, 0.0);
    EXPECT_LT(s.radius_m, 200.0);  // tight sites -> small radii
  }

  const auto snap = snapshot_from_clusters(summaries);
  EXPECT_EQ(snap->tree.size(), summaries.size());
  const auto loc = snap->tree.nearest(39.90, 116.40);
  ASSERT_NE(loc, nullptr);
  EXPECT_NEAR(loc->lat, 39.90, 0.01);
}

TEST(Builders, ColumnarRegionBuildPrunesBlocks) {
  // Two spatially-disjoint user populations written in separate blocks:
  // a region covering only the first must prune the second's blocks.
  geo::GeolocatedDataset ds;
  for (std::int32_t u = 0; u < 2; ++u) {
    geo::Trail trail;
    const double lat = u == 0 ? 39.9 : 45.0;
    for (int i = 0; i < 300; ++i)
      trail.push_back({u, lat + 1e-6 * i, 116.4, 0.0, 1000 + i});
    ds.add_trail(u, std::move(trail));
  }
  mr::Dfs dfs(small_cluster());
  storage::ColumnarWriterOptions opts;
  opts.block_records = 128;  // several blocks per user file
  storage::dataset_to_dfs_columnar(dfs, "/col", ds, 2, opts);

  ColumnarScanStats stats;
  const auto region = index::Rect::of(39.0, 116.0, 40.0, 117.0);
  const auto snap = snapshot_from_columnar(dfs, "/col", region, 16, &stats);
  EXPECT_EQ(snap->tree.size(), 300u);  // only user 0
  EXPECT_EQ(stats.records, 300u);
  EXPECT_GT(stats.blocks_pruned, 0u);
  EXPECT_LT(stats.blocks_pruned, stats.blocks_total);

  // No region: everything survives, nothing pruned.
  ColumnarScanStats all;
  const auto full = snapshot_from_columnar(dfs, "/col", std::nullopt, 16, &all);
  EXPECT_EQ(full->tree.size(), 600u);
  EXPECT_EQ(all.blocks_pruned, 0u);
}

TEST(Rebuild, PointsFlowPublishes) {
  geo::GeneratorConfig gc;
  gc.num_users = 3;
  gc.duration_days = 2;
  gc.trajectories_per_user_min = 2;
  gc.trajectories_per_user_max = 3;
  const auto ds = geo::generate_dataset(gc).data;
  mr::Dfs dfs(small_cluster());
  geo::dataset_to_dfs(dfs, "/in", ds, 2);

  QueryEngine engine;
  RebuildConfig config;
  config.kind = SnapshotKind::kPoints;
  const auto r =
      rebuild_and_publish(dfs, small_cluster(), "/in/", "/work", config, engine);
  EXPECT_EQ(r.epoch, 1u);
  EXPECT_EQ(r.entries, ds.num_traces());
  EXPECT_EQ(engine.epoch(), 1u);
  EXPECT_FALSE(engine.knn(gc.city_latitude, gc.city_longitude, 5)
                   .neighbors.empty());
}

TEST(Rebuild, ClustersFlowPublishesAndSwaps) {
  geo::GeolocatedDataset ds;
  for (std::int32_t u = 0; u < 6; ++u) {
    geo::Trail trail;
    for (int i = 0; i < 12; ++i)
      trail.push_back({u, 39.90 + 1e-5 * i, 116.40 + 1e-5 * i, 0.0,
                       1000 + i * 60});
    ds.add_trail(u, std::move(trail));
  }
  mr::Dfs dfs(small_cluster());
  geo::dataset_to_dfs(dfs, "/in", ds, 1);

  QueryEngine engine;
  RebuildConfig points;
  points.kind = SnapshotKind::kPoints;
  rebuild_and_publish(dfs, small_cluster(), "/in/", "/w1", points, engine);

  RebuildConfig clusters;
  clusters.kind = SnapshotKind::kClusters;
  clusters.djcluster.radius_m = 100;
  clusters.djcluster.min_pts = 5;
  const auto r = rebuild_and_publish(dfs, small_cluster(), "/in/", "/w2",
                                     clusters, engine);
  EXPECT_EQ(r.epoch, 2u);
  EXPECT_GE(r.entries, 1u);
  EXPECT_EQ(engine.epoch(), 2u);

  const auto loc = engine.locate(39.90, 116.40);
  EXPECT_TRUE(loc.found);
  EXPECT_TRUE(loc.contained);
  EXPECT_EQ(loc.epoch, 2u);
}

}  // namespace
}  // namespace gepeto::serving
