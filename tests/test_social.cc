// Tests for social-link discovery (paper Section II's "discover social
// relations" attack goal): co-location detection, meeting aggregation,
// scoring against the generator's friendship ground truth, and the
// sequential/MapReduce agreement.
#include <gtest/gtest.h>

#include "common/check.h"
#include "geo/generator.h"
#include "geo/geolife.h"
#include "gepeto/social.h"
#include "mapreduce/dfs.h"

namespace gepeto::core {
namespace {

geo::MobilityTrace at(std::int32_t uid, std::int64_t ts, double lat,
                      double lon) {
  return {uid, lat, lon, 150.0, ts};
}

/// Two users together at a cafe for `minutes`, starting at `t0`.
void meet(geo::GeolocatedDataset& ds, std::int32_t a, std::int32_t b,
          std::int64_t t0, int minutes, double lat = 39.91,
          double lon = 116.41) {
  for (int m = 0; m < minutes; ++m) {
    ds.add(at(a, t0 + m * 60, lat, lon + 1e-5));
    ds.add(at(b, t0 + m * 60 + 5, lat + 1e-5, lon));
  }
}

CoLocationConfig config() {
  CoLocationConfig c;
  c.radius_m = 50;
  c.time_bucket_s = 300;
  c.min_meetings = 2;
  c.min_contact_s = 600;
  return c;
}

TEST(SocialLinks, RepeatedMeetingsProduceAnEdge) {
  geo::GeolocatedDataset ds;
  meet(ds, 1, 2, 1'000'000, 20);
  meet(ds, 1, 2, 2'000'000, 20);
  meet(ds, 1, 2, 3'000'000, 20);
  const auto edges = discover_social_links(ds, config());
  ASSERT_EQ(edges.size(), 1u);
  EXPECT_EQ(edges[0].a, 1);
  EXPECT_EQ(edges[0].b, 2);
  EXPECT_EQ(edges[0].meetings, 3u);
  EXPECT_GE(edges[0].contact_seconds, 3000.0);
}

TEST(SocialLinks, OneMeetingIsNotEnough) {
  geo::GeolocatedDataset ds;
  meet(ds, 1, 2, 1'000'000, 30);
  EXPECT_TRUE(discover_social_links(ds, config()).empty());
}

TEST(SocialLinks, BriefContactIsNotEnough) {
  geo::GeolocatedDataset ds;
  // Three 2-minute encounters: meetings >= 2 but contact < 600 s.
  meet(ds, 1, 2, 1'000'000, 2);
  meet(ds, 1, 2, 2'000'000, 2);
  meet(ds, 1, 2, 3'000'000, 2);
  auto c = config();
  c.min_contact_s = 1200;
  EXPECT_TRUE(discover_social_links(ds, c).empty());
}

TEST(SocialLinks, SamePlaceDifferentTimeIsNoContact) {
  geo::GeolocatedDataset ds;
  for (int m = 0; m < 20; ++m) ds.add(at(1, 1'000'000 + m * 60, 39.91, 116.41));
  for (int m = 0; m < 20; ++m) ds.add(at(2, 5'000'000 + m * 60, 39.91, 116.41));
  EXPECT_TRUE(discover_social_links(ds, config()).empty());
}

TEST(SocialLinks, SameTimeDifferentPlaceIsNoContact) {
  geo::GeolocatedDataset ds;
  for (int m = 0; m < 20; ++m) ds.add(at(1, 1'000'000 + m * 60, 39.91, 116.41));
  for (int m = 0; m < 20; ++m) ds.add(at(2, 1'000'000 + m * 60, 39.95, 116.48));
  EXPECT_TRUE(discover_social_links(ds, config()).empty());
}

TEST(SocialLinks, CellBoundaryPairsAreFound) {
  // Two users ~20 m apart, straddling a grid-cell boundary: the envelope
  // emission must still pair them.
  geo::GeolocatedDataset ds;
  const double lat = 39.91;
  for (int meeting = 0; meeting < 3; ++meeting) {
    const std::int64_t t0 = 1'000'000 + meeting * 1'000'000;
    for (int m = 0; m < 15; ++m) {
      ds.add(at(1, t0 + m * 60, lat, 116.4100));
      ds.add(at(2, t0 + m * 60 + 7, lat, 116.4102));  // ~17 m east
    }
  }
  const auto edges = discover_social_links(ds, config());
  ASSERT_EQ(edges.size(), 1u);
  EXPECT_GE(edges[0].meetings, 3u);
}

TEST(SocialLinks, ThreeWayMeetingYieldsAllPairs) {
  geo::GeolocatedDataset ds;
  for (int meeting = 0; meeting < 3; ++meeting) {
    const std::int64_t t0 = 1'000'000 + meeting * 1'000'000;
    for (int m = 0; m < 15; ++m) {
      ds.add(at(1, t0 + m * 60, 39.91, 116.41));
      ds.add(at(2, t0 + m * 60 + 3, 39.9101, 116.41));
      ds.add(at(3, t0 + m * 60 + 6, 39.91, 116.4101));
    }
  }
  const auto edges = discover_social_links(ds, config());
  EXPECT_EQ(edges.size(), 3u);  // (1,2), (1,3), (2,3)
}

TEST(SocialLinks, ScoreComputesPrecisionRecall) {
  std::vector<SocialEdge> edges{{1, 2, 3, 1800}, {3, 4, 3, 1800}};
  const auto score = score_social_attack(edges, {{1, 2}, {5, 6}});
  EXPECT_DOUBLE_EQ(score.precision, 0.5);
  EXPECT_DOUBLE_EQ(score.recall, 0.5);
  EXPECT_DOUBLE_EQ(score.f1, 0.5);
}

TEST(SocialLinks, GeneratorGroundTruthIsRecovered) {
  geo::GeneratorConfig cfg;
  cfg.num_users = 8;
  cfg.duration_days = 20;
  cfg.trajectories_per_user_min = 30;
  cfg.trajectories_per_user_max = 40;
  cfg.friends_per_user = 1;
  cfg.seed = 601;
  const auto world = geo::generate_dataset(cfg);
  ASSERT_FALSE(world.friendships.empty());

  CoLocationConfig c;
  c.radius_m = 60;
  c.time_bucket_s = 300;
  c.min_meetings = 2;
  c.min_contact_s = 1200;
  const auto edges = discover_social_links(world.data, c);
  const auto score = score_social_attack(edges, world.friendships);
  EXPECT_GE(score.recall, 0.7);
  EXPECT_GE(score.precision, 0.7);
}

TEST(SocialLinks, NoFriendsMeansFewFalsePositives) {
  geo::GeneratorConfig cfg;
  cfg.num_users = 8;
  cfg.duration_days = 20;
  cfg.trajectories_per_user_min = 30;
  cfg.trajectories_per_user_max = 40;
  cfg.friends_per_user = 0;
  cfg.seed = 602;
  const auto world = geo::generate_dataset(cfg);
  CoLocationConfig c;
  c.radius_m = 60;
  c.time_bucket_s = 300;
  c.min_meetings = 2;
  c.min_contact_s = 1200;
  const auto edges = discover_social_links(world.data, c);
  EXPECT_LE(edges.size(), 2u);  // random POIs rarely coincide in space+time
}

TEST(SocialLinks, MapReduceMatchesSequential) {
  geo::GeneratorConfig cfg;
  cfg.num_users = 6;
  cfg.duration_days = 15;
  cfg.trajectories_per_user_min = 25;
  cfg.trajectories_per_user_max = 35;
  cfg.friends_per_user = 1;
  cfg.seed = 603;
  const auto world = geo::generate_dataset(cfg);

  mr::ClusterConfig cc;
  cc.num_worker_nodes = 4;
  cc.nodes_per_rack = 2;
  cc.chunk_size = 1 << 15;
  cc.execution_threads = 2;
  mr::Dfs dfs(cc);
  geo::dataset_to_dfs(dfs, "/in", world.data, 3);

  CoLocationConfig c;
  c.radius_m = 60;
  c.time_bucket_s = 300;
  c.min_meetings = 2;
  c.min_contact_s = 1200;
  const auto mr_result = run_colocation_job(dfs, cc, "/in/", "/pairs", c);
  const auto seq = discover_social_links(geo::dataset_from_dfs(dfs, "/in/"), c);
  EXPECT_EQ(mr_result.edges, seq);
  EXPECT_GT(mr_result.job.num_reduce_tasks, 1);
}

TEST(SocialLinks, RejectsBadConfig) {
  CoLocationConfig c;
  c.radius_m = 0;
  EXPECT_THROW(discover_social_links({}, c), gepeto::CheckFailure);
}

TEST(GeneratorSocial, FriendshipsFormARing) {
  geo::GeneratorConfig cfg;
  cfg.num_users = 5;
  cfg.duration_days = 10;
  cfg.trajectories_per_user_min = 10;
  cfg.trajectories_per_user_max = 15;
  cfg.friends_per_user = 1;
  cfg.seed = 604;
  const auto world = geo::generate_dataset(cfg);
  EXPECT_EQ(world.friendships.size(), 5u);  // ring over 5 users
  for (const auto& [a, b] : world.friendships) EXPECT_LT(a, b);
}

TEST(GeneratorSocial, FriendsShareALeisurePoi) {
  geo::GeneratorConfig cfg;
  cfg.num_users = 4;
  cfg.duration_days = 10;
  cfg.trajectories_per_user_min = 10;
  cfg.trajectories_per_user_max = 15;
  cfg.friends_per_user = 1;
  cfg.seed = 605;
  const auto world = geo::generate_dataset(cfg);
  for (const auto& [a, b] : world.friendships) {
    bool shared = false;
    for (const auto& pa : world.profiles[static_cast<std::size_t>(a)].pois)
      for (const auto& pb : world.profiles[static_cast<std::size_t>(b)].pois)
        shared |= (pa.latitude == pb.latitude && pa.longitude == pb.longitude);
    EXPECT_TRUE(shared) << a << "-" << b;
  }
}

}  // namespace
}  // namespace gepeto::core
