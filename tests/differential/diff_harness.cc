#include "diff_harness.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <map>
#include <mutex>
#include <sstream>
#include <utility>

#include "geo/geolife.h"
#include "telemetry/bench_report.h"

namespace gepeto::difftest {

const char* chaos_name(Chaos c) {
  switch (c) {
    case Chaos::kNone: return "none";
    case Chaos::kRetries: return "retries";
    case Chaos::kNodeDeath: return "nodedeath";
    case Chaos::kSkip: return "skip";
    case Chaos::kProcKill: return "prockill";
  }
  return "?";
}

mr::ClusterConfig SweepConfig::cluster() const {
  mr::ClusterConfig c;
  c.num_worker_nodes = 4;
  c.nodes_per_rack = 2;
  c.chunk_size = chunk_size;
  c.execution_threads = 2;
  // CI's process-backend leg re-runs the whole suite with tasks in real
  // worker processes; every sweep must hold unchanged. Short heartbeats so
  // record-indexed kill faults land promptly, generous timeout so loaded CI
  // machines never misread a slow worker as hung.
  const char* backend = std::getenv("GEPETO_DIFF_BACKEND");
  if (backend != nullptr && std::strcmp(backend, "process") == 0) {
    c.backend = mr::ExecutionBackend::kProcess;
    c.process_workers = 2;
    c.worker_heartbeat_interval_s = 0.02;
    c.worker_heartbeat_timeout_s = 10.0;
    c.worker_respawn_backoff_base_s = 0.01;
    c.worker_respawn_backoff_cap_s = 0.1;
  }
  return c;
}

bool columnar_format() {
  const char* format = std::getenv("GEPETO_DIFF_FORMAT");
  return format != nullptr && std::strcmp(format, "columnar") == 0;
}

mr::FailurePolicy SweepConfig::failures() const {
  mr::FailurePolicy f;
  if (chaos == Chaos::kSkip) f.max_skipped_records = 64;
  return f;
}

mr::FaultPlan SweepConfig::fault_plan() const {
  mr::FaultPlan plan;
  plan.seed = chaos_seed;
  switch (chaos) {
    case Chaos::kNone:
      break;
    case Chaos::kRetries:
      // One guaranteed crash of map task 0's first attempt plus a sprinkle
      // of seeded random attempt crashes; retries must hide all of it.
      plan.crashes.push_back({/*phase=*/1, /*task=*/0, /*attempt=*/0});
      plan.attempt_crash_prob = 0.1;
      break;
    case Chaos::kNodeDeath:
      // Kill a datanode after the first map wave started; replication 3
      // keeps every chunk readable, so the output must be unchanged.
      plan.node_kills.push_back({/*node=*/1, /*after_map_tasks=*/1});
      break;
    case Chaos::kSkip:
      plan.poison_modulus = kPoisonModulus;
      break;
    case Chaos::kProcKill: {
      // Real process chaos: map task 0's first attempt takes a SIGKILL a few
      // records in, map task 1's first attempt corrupts its result frame, and
      // a reduce attempt dies too (inert on map-only jobs). Under the thread
      // backend none of these fire; either way the output must match.
      using PF = mr::FaultPlan::ProcessFault;
      plan.process_faults.push_back(
          {/*phase=*/1, /*task=*/0, /*attempt=*/0,
           PF::Kind::kSigkillAtRecord, /*record=*/2});
      plan.process_faults.push_back({/*phase=*/1, /*task=*/1, /*attempt=*/0,
                                     PF::Kind::kGarbledFrame, /*record=*/0});
      plan.process_faults.push_back(
          {/*phase=*/2, /*task=*/0, /*attempt=*/0,
           PF::Kind::kSigkillAtRecord, /*record=*/1});
      break;
    }
  }
  return plan;
}

std::string SweepConfig::label() const {
  std::ostringstream os;
  os << "chunk=" << chunk_size << " files=" << num_files
     << " reducers=" << num_reducers << " combiner=" << (use_combiner ? 1 : 0)
     << " chaos=" << chaos_name(chaos) << " flow=" << (via_flow ? 1 : 0);
  return os.str();
}

int SweepConfig::complexity() const {
  const SweepConfig base;
  int score = 0;
  if (chunk_size != base.chunk_size) ++score;
  if (num_files != base.num_files) ++score;
  if (num_reducers != base.num_reducers) ++score;
  if (use_combiner) ++score;
  if (chaos != Chaos::kNone) ++score;
  if (via_flow) ++score;
  return score;
}

// --- adversarial datasets ----------------------------------------------------

namespace {

// Tiny deterministic generator (splitmix64) — independent of the engine's
// RNG so harness datasets can't drift when the engine seeds change.
std::uint64_t mix64(std::uint64_t& state) {
  std::uint64_t z = (state += 0x9E3779B97F4A7C15ULL);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

double uniform(std::uint64_t& state, double lo, double hi) {
  return lo + (hi - lo) * (static_cast<double>(mix64(state) >> 11) /
                           9007199254740992.0);
}

}  // namespace

geo::GeolocatedDataset adversarial_dataset(const AdversarialOptions& options) {
  geo::GeolocatedDataset dataset;
  std::uint64_t state = options.seed * 0x9E3779B97F4A7C15ULL + 1;
  const std::int64_t t0 = 1222819200;  // generator epoch
  for (int u = 0; u < options.num_users; ++u) {
    const std::int32_t uid = 1 + u;
    // Per-user home area: mostly Beijing-like; with extreme_coords, user 1
    // lives at the antimeridian and user 2 near the north pole.
    double base_lat = 39.9 + 0.02 * u;
    double base_lon = 116.4 + 0.02 * u;
    if (options.extreme_coords && u % 3 == 1) {
      base_lat = 12.0;
      base_lon = 179.9995;  // straddles the ±180 seam under noise
    } else if (options.extreme_coords && u % 3 == 2) {
      base_lat = 89.9;  // near-polar: longitude degenerates
      base_lon = 45.0;
    }
    geo::Trail trail;
    std::int64_t t = t0 + u * 13;
    for (int w = 0; w < options.num_windows; ++w) {
      // Dense same-window runs: every trace of this window shares
      // (user, window), so the group straddles chunks when chunks are small.
      const std::int64_t window_start =
          (t / options.window_s) * options.window_s;
      for (int i = 0; i < options.traces_per_window; ++i) {
        geo::MobilityTrace trace;
        trace.user_id = uid;
        trace.timestamp = t;
        if (options.duplicate_points && i % 2 == 0) {
          trace.latitude = base_lat;  // byte-identical coordinate runs
          trace.longitude = base_lon;
        } else {
          trace.latitude = base_lat + uniform(state, -0.005, 0.005);
          double lon = base_lon + uniform(state, -0.005, 0.005);
          if (lon >= 180.0) lon -= 360.0;  // wrap across the antimeridian
          trace.longitude = lon;
        }
        trace.altitude_ft = 160.0;
        trail.push_back(trace);
        t += 1 + static_cast<std::int64_t>(mix64(state) %
                                           static_cast<std::uint64_t>(
                                               std::max(1, options.window_s /
                                                               (options
                                                                    .traces_per_window +
                                                                1))));
        if (t >= window_start + options.window_s &&
            i + 1 < options.traces_per_window) {
          t = window_start + options.window_s - 1;  // stay inside the window
        }
      }
      // Jump to the next window (sometimes skipping one: empty windows).
      t = (t / options.window_s + 1 + static_cast<std::int64_t>(mix64(state) % 2)) *
          options.window_s;
    }
    dataset.add_trail(uid, std::move(trail));
  }
  return dataset;
}

geo::GeolocatedDataset drop_poisoned(const geo::GeolocatedDataset& dataset,
                                     const mr::FaultPlan& plan) {
  geo::GeolocatedDataset out;
  for (const auto& [uid, trail] : dataset) {
    geo::Trail kept;
    for (const auto& trace : trail)
      if (!plan.poisons_record(geo::dataset_line(trace))) kept.push_back(trace);
    if (!kept.empty()) out.add_trail(uid, std::move(kept));
  }
  return out;
}

std::uint64_t count_poisoned(const geo::GeolocatedDataset& dataset,
                             const mr::FaultPlan& plan) {
  std::uint64_t n = 0;
  for (const auto& [uid, trail] : dataset)
    for (const auto& trace : trail)
      if (plan.poisons_record(geo::dataset_line(trace))) ++n;
  return n;
}

// --- canonical forms ---------------------------------------------------------

std::vector<std::string> canonical_lines(const mr::Dfs& dfs,
                                         const std::string& prefix) {
  std::vector<std::string> lines;
  for (const auto& path : dfs.list(prefix)) {
    const std::string_view data = dfs.read(path);
    std::size_t start = 0;
    while (start < data.size()) {
      std::size_t end = data.find('\n', start);
      if (end == std::string_view::npos) end = data.size();
      if (end > start) lines.emplace_back(data.substr(start, end - start));
      start = end + 1;
    }
  }
  std::sort(lines.begin(), lines.end());
  return lines;
}

std::vector<std::string> canonical_lines(
    const geo::GeolocatedDataset& dataset) {
  std::vector<std::string> lines;
  lines.reserve(dataset.num_traces());
  for (const auto& [uid, trail] : dataset)
    for (const auto& trace : trail) lines.push_back(geo::dataset_line(trace));
  std::sort(lines.begin(), lines.end());
  return lines;
}

// --- divergence recording ----------------------------------------------------

namespace {

struct Entry {
  std::string algorithm;
  SweepConfig config;
  bool pass = false;
  std::string detail;
};

class Recorder {
 public:
  static Recorder& instance() {
    static Recorder* r = new Recorder;
    return *r;
  }

  void record(const std::string& algorithm, const SweepConfig& config,
              bool pass, const std::string& detail) {
    std::lock_guard<std::mutex> lock(mu_);
    entries_.push_back({algorithm, config, pass, detail});
  }

  void write_reports() {
    std::lock_guard<std::mutex> lock(mu_);
    if (entries_.empty()) return;
    write_bench();
    write_divergence();
  }

 private:
  void write_bench() {
    telemetry::BenchReporter report("differential",
                                    std::to_string(entries_.size()) +
                                        "-comparisons");
    std::map<std::string, std::pair<std::int64_t, std::int64_t>> tally;
    std::map<std::string, std::map<std::string, std::int64_t>> chaos_tally;
    for (const auto& e : entries_) {
      auto& [passes, failures] = tally[e.algorithm];
      (e.pass ? passes : failures)++;
      chaos_tally[e.algorithm][chaos_name(e.config.chaos)]++;
    }
    for (const auto& [algorithm, counts] : tally) {
      auto& row = report.add_row(algorithm);
      row.add_counter("configs", counts.first + counts.second);
      row.add_counter("passes", counts.first);
      row.add_counter("failures", counts.second);
      for (const auto& [chaos, n] : chaos_tally[algorithm])
        row.add_counter("chaos." + chaos, n);
    }
    report.write();
  }

  void write_divergence() {
    std::vector<const Entry*> failures;
    for (const auto& e : entries_)
      if (!e.pass) failures.push_back(&e);
    if (failures.empty()) return;
    // The minimal failing configuration: fewest knobs away from the default
    // config, ties broken by the sweep order. This is the repro to chase.
    std::stable_sort(failures.begin(), failures.end(),
                     [](const Entry* a, const Entry* b) {
                       return a->config.complexity() < b->config.complexity();
                     });
    std::string dir;
    if (const char* env = std::getenv("GEPETO_BENCH_DIR")) dir = env;
    const std::string path =
        (dir.empty() ? std::string() : dir + "/") + "DIVERGENCE_differential.txt";
    std::ofstream out(path);
    if (!out) return;
    out << failures.size() << " of " << entries_.size()
        << " differential comparisons diverged.\n\n";
    out << "Minimal failing config (fewest knobs from default):\n"
        << "  algorithm: " << failures.front()->algorithm << "\n"
        << "  config:    " << failures.front()->config.label() << "\n"
        << "  detail:    " << failures.front()->detail << "\n\n";
    out << "All failures, minimal first:\n";
    for (const Entry* e : failures)
      out << "  [" << e->algorithm << "] " << e->config.label() << " — "
          << e->detail << "\n";
  }

  std::mutex mu_;
  std::vector<Entry> entries_;
};

class DiffEnvironment : public ::testing::Environment {
 public:
  void TearDown() override { Recorder::instance().write_reports(); }
};

const auto* const g_diff_environment =
    ::testing::AddGlobalTestEnvironment(new DiffEnvironment);

}  // namespace

void record_result(const std::string& algorithm, const SweepConfig& config,
                   bool pass, const std::string& detail) {
  Recorder::instance().record(algorithm, config, pass, detail);
}

::testing::AssertionResult expect_same_lines(
    const std::string& algorithm, const SweepConfig& config,
    const std::vector<std::string>& oracle,
    const std::vector<std::string>& job) {
  std::string detail;
  if (oracle.size() != job.size()) {
    std::ostringstream os;
    os << "line counts differ: oracle=" << oracle.size()
       << " job=" << job.size();
    detail = os.str();
  } else {
    for (std::size_t i = 0; i < oracle.size(); ++i) {
      if (oracle[i] != job[i]) {
        std::ostringstream os;
        os << "first divergence at canonical line " << i << ": oracle=\""
           << oracle[i] << "\" job=\"" << job[i] << "\"";
        detail = os.str();
        break;
      }
    }
  }
  const bool pass = detail.empty();
  record_result(algorithm, config, pass, pass ? "ok" : detail);
  if (pass) return ::testing::AssertionSuccess();
  return ::testing::AssertionFailure()
         << "[" << algorithm << "] " << config.label() << ": " << detail;
}

::testing::AssertionResult expect_near_sequence(
    const std::string& algorithm, const SweepConfig& config,
    const std::string& what, const std::vector<double>& oracle,
    const std::vector<double>& job, double abs_tolerance) {
  std::string detail;
  if (oracle.size() != job.size()) {
    std::ostringstream os;
    os << what << " lengths differ: oracle=" << oracle.size()
       << " job=" << job.size();
    detail = os.str();
  } else {
    double worst = 0.0;
    std::size_t worst_i = 0;
    for (std::size_t i = 0; i < oracle.size(); ++i) {
      const double d = std::fabs(oracle[i] - job[i]);
      if (d > worst) {
        worst = d;
        worst_i = i;
      }
    }
    if (worst > abs_tolerance) {
      std::ostringstream os;
      os << what << "[" << worst_i << "] deviates by " << worst
         << " (tolerance " << abs_tolerance << "): oracle=" << oracle[worst_i]
         << " job=" << job[worst_i];
      detail = os.str();
    }
  }
  const bool pass = detail.empty();
  record_result(algorithm, config, pass, pass ? "ok" : detail);
  if (pass) return ::testing::AssertionSuccess();
  return ::testing::AssertionFailure()
         << "[" << algorithm << "] " << config.label() << ": " << detail;
}

::testing::AssertionResult expect_condition(const std::string& algorithm,
                                            const SweepConfig& config,
                                            bool pass,
                                            const std::string& detail) {
  record_result(algorithm, config, pass, pass ? "ok" : detail);
  if (pass) return ::testing::AssertionSuccess();
  return ::testing::AssertionFailure()
         << "[" << algorithm << "] " << config.label() << ": " << detail;
}

}  // namespace gepeto::difftest
