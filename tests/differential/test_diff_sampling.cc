// Differential tests for down-sampling (paper Section V): the sequential
// downsample() oracle vs both MapReduce realizations (map-only with the
// group-aware split protocol, and the exact map+reduce variant), swept over
// chunk size, file count, reducer count, representative technique, chaos
// kind, and JobFlow-vs-direct execution. Equality is exact: canonical
// (sorted) dataset lines must be byte-identical.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "diff_harness.h"
#include "geo/geolife.h"
#include "gepeto/sampling.h"
#include "mapreduce/dfs.h"
#include "storage/colfile.h"
#include "workflow/flow.h"

namespace gepeto::difftest {
namespace {

using core::SamplingConfig;
using core::SamplingTechnique;

enum class Variant { kMapOnly, kExact };

const char* variant_name(Variant v) {
  return v == Variant::kMapOnly ? "maponly" : "exact";
}

// One sweep point: load an adversarial dataset, run oracle and job, compare.
void run_diff(const SweepConfig& sweep, SamplingTechnique technique,
              Variant variant) {
  // Under the columnar leg only the exact variant has a columnar
  // realization (map-only exactness rests on the text group-aware split
  // protocol), and kSkip poison sets are text-specific — see diff_harness.h.
  if (columnar_format() &&
      (variant == Variant::kMapOnly || sweep.chaos == Chaos::kSkip))
    return;

  AdversarialOptions options;
  options.num_users = 3;
  options.traces_per_window = 14;
  options.num_windows = 5;
  options.window_s = 600;
  options.extreme_coords = true;
  const auto dataset = adversarial_dataset(options);

  mr::Dfs dfs(sweep.cluster());
  if (columnar_format())
    storage::dataset_to_dfs_columnar(dfs, "/in", dataset, sweep.num_files);
  else
    geo::dataset_to_dfs(dfs, "/in", dataset, sweep.num_files);
  // The oracle consumes the *re-parsed* DFS dataset: text dataset lines
  // round coordinates to 1e-6 degrees (columnar files are lossless, so
  // there the re-read is the identity), and both sides must see those bytes.
  const geo::GeolocatedDataset parsed =
      columnar_format() ? storage::dataset_from_dfs_columnar(dfs, "/in")
                        : geo::dataset_from_dfs(dfs, "/in");
  const mr::FaultPlan plan = sweep.fault_plan();
  const geo::GeolocatedDataset oracle_input =
      sweep.chaos == Chaos::kSkip ? drop_poisoned(parsed, plan) : parsed;
  if (sweep.chaos == Chaos::kSkip) {
    // The sweep is only meaningful if the plan actually poisons something.
    ASSERT_GT(count_poisoned(parsed, plan), 0u) << sweep.label();
  }

  SamplingConfig config;
  config.window_s = options.window_s;
  config.technique = technique;
  const auto oracle = canonical_lines(core::downsample(oracle_input, config));

  auto run_job = [&](mr::Dfs& d) {
    if (columnar_format())
      return core::run_sampling_job_exact_columnar(
          d, sweep.cluster(), "/in/", "/out", config, sweep.num_reducers,
          sweep.failures(), plan);
    if (variant == Variant::kExact)
      return core::run_sampling_job_exact(d, sweep.cluster(), "/in/", "/out",
                                          config, sweep.num_reducers,
                                          sweep.failures(), plan);
    return core::run_sampling_job(d, sweep.cluster(), "/in/", "/out", config,
                                  sweep.failures(), plan);
  };
  if (sweep.via_flow) {
    flow::Flow f("diff-sampling");
    f.add_map_only("sample",
                   [&](flow::FlowEngine& e) { return run_job(e.dfs()); })
        .reads("/in")
        .keep("/out");
    f.run(dfs, sweep.cluster());
  } else {
    run_job(dfs);
  }

  const std::string algorithm =
      std::string("sampling/") + variant_name(variant) +
      (technique == SamplingTechnique::kMiddle ? "/middle" : "/upper");
  EXPECT_TRUE(expect_same_lines(algorithm, sweep, oracle,
                                canonical_lines(dfs, "/out")));
}

TEST(DiffSampling, MapOnlyMatchesOracleAcrossChunkingsAndFiles) {
  for (const std::size_t chunk : {std::size_t{512}, std::size_t{4096},
                                  std::size_t{1} << 15}) {
    for (const int files : {1, 3}) {
      for (const auto technique :
           {SamplingTechnique::kUpperLimit, SamplingTechnique::kMiddle}) {
        SweepConfig sweep;
        sweep.chunk_size = chunk;
        sweep.num_files = files;
        run_diff(sweep, technique, Variant::kMapOnly);
      }
    }
  }
}

TEST(DiffSampling, ExactVariantMatchesOracleAcrossReducers) {
  for (const int reducers : {1, 3}) {
    for (const std::size_t chunk : {std::size_t{1024}, std::size_t{1} << 15}) {
      SweepConfig sweep;
      sweep.chunk_size = chunk;
      sweep.num_reducers = reducers;
      run_diff(sweep, SamplingTechnique::kUpperLimit, Variant::kExact);
    }
  }
}

TEST(DiffSampling, RetriesAndNodeDeathLeaveOutputUnchanged) {
  for (const Chaos chaos : {Chaos::kRetries, Chaos::kNodeDeath}) {
    for (const Variant variant : {Variant::kMapOnly, Variant::kExact}) {
      SweepConfig sweep;
      sweep.chunk_size = 2048;
      sweep.chaos = chaos;
      run_diff(sweep, SamplingTechnique::kUpperLimit, variant);
    }
  }
}

TEST(DiffSampling, SkipModeDropsExactlyThePoisonedRecords) {
  for (const Variant variant : {Variant::kMapOnly, Variant::kExact}) {
    for (const std::size_t chunk : {std::size_t{1024}, std::size_t{8192}}) {
      SweepConfig sweep;
      sweep.chunk_size = chunk;
      sweep.chaos = Chaos::kSkip;
      run_diff(sweep, SamplingTechnique::kUpperLimit, variant);
    }
  }
}

TEST(DiffSampling, RealWorkerKillsLeaveOutputUnchanged) {
  // Seeded SIGKILL / garbled-frame sweep: only bites under the process
  // backend (GEPETO_DIFF_BACKEND=process), where workers really die and the
  // jobtracker must reap, respawn and retry to the same bytes.
  for (const Variant variant : {Variant::kMapOnly, Variant::kExact}) {
    SweepConfig sweep;
    sweep.chunk_size = 2048;
    sweep.chaos = Chaos::kProcKill;
    run_diff(sweep, SamplingTechnique::kUpperLimit, variant);
  }
}

TEST(DiffSampling, FlowExecutionMatchesDirectDriver) {
  for (const Variant variant : {Variant::kMapOnly, Variant::kExact}) {
    SweepConfig sweep;
    sweep.chunk_size = 4096;
    sweep.via_flow = true;
    run_diff(sweep, SamplingTechnique::kMiddle, variant);
  }
}

}  // namespace
}  // namespace gepeto::difftest
