// Differential tests for DJ-Cluster (paper Section VII): the sequential
// preprocess()/dj_cluster() pipeline is the oracle for the three MapReduce
// jobs, swept over chunk size, file count, clustering parameters, and chaos.
//
// Preprocessing semantics depend on chunking by design (the map-only filter
// computes one-sided speeds at chunk boundaries), so the sweep asserts
// *exact* equality when each file is a single chunk and the documented
// bounded divergence otherwise. Phases 2+3 are exact for any chunking given
// the same preprocessed input, so the full pipeline is compared against the
// oracle run on the MapReduce pipeline's own preprocessed dataset.
#include <gtest/gtest.h>

#include <cmath>
#include <sstream>
#include <string>
#include <vector>

#include "diff_harness.h"
#include "geo/geolife.h"
#include "gepeto/djcluster.h"
#include "mapreduce/dfs.h"

namespace gepeto::difftest {
namespace {

using core::DjClusterConfig;
using core::DjClusterResult;

geo::GeolocatedDataset diff_dataset() {
  AdversarialOptions options;
  options.num_users = 3;
  options.traces_per_window = 10;
  options.num_windows = 6;
  options.window_s = 600;
  options.duplicate_points = true;  // redundant runs exercise phase 1b
  return adversarial_dataset(options);
}

DjClusterConfig base_config() {
  DjClusterConfig config;
  // The adversarial jitter (~550 m hops at ~50 s spacing) straddles this
  // threshold, so phase 1a both keeps and drops traces.
  config.speed_threshold_ms = 10.0;
  config.duplicate_radius_m = 1.0;
  config.radius_m = 400.0;
  config.min_pts = 4;
  return config;
}

// Compare a parsed MapReduce clustering against the sequential result:
// membership and noise counts exactly, centroids within "%.10f" noise.
void compare_clusters(const std::string& algorithm, const SweepConfig& sweep,
                      const DjClusterResult& oracle,
                      const DjClusterResult& job) {
  {
    std::ostringstream os;
    os << "cluster/noise counts: oracle=" << oracle.clusters.size() << "/"
       << oracle.noise << "/" << oracle.clustered
       << " job=" << job.clusters.size() << "/" << job.noise << "/"
       << job.clustered;
    EXPECT_TRUE(expect_condition(algorithm, sweep,
                                 oracle.clusters.size() == job.clusters.size() &&
                                     oracle.noise == job.noise &&
                                     oracle.clustered == job.clustered,
                                 os.str()));
  }
  const std::size_t n = std::min(oracle.clusters.size(), job.clusters.size());
  bool members_equal = true;
  std::ostringstream detail;
  std::vector<double> oracle_centroids, job_centroids;
  for (std::size_t i = 0; i < n; ++i) {
    if (oracle.clusters[i].members != job.clusters[i].members) {
      members_equal = false;
      detail << "cluster " << i << " membership differs (oracle "
             << oracle.clusters[i].members.size() << " vs job "
             << job.clusters[i].members.size() << " members)";
      break;
    }
    oracle_centroids.push_back(oracle.clusters[i].centroid_lat);
    oracle_centroids.push_back(oracle.clusters[i].centroid_lon);
    job_centroids.push_back(job.clusters[i].centroid_lat);
    job_centroids.push_back(job.clusters[i].centroid_lon);
  }
  EXPECT_TRUE(expect_condition(algorithm, sweep, members_equal, detail.str()));
  EXPECT_TRUE(expect_near_sequence(algorithm, sweep, "centroid",
                                   oracle_centroids, job_centroids, 1e-7));
}

TEST(DiffDjCluster, PreprocessingIsExactWhenFilesAreSingleChunks) {
  for (const int files : {1, 3}) {
    SweepConfig sweep;
    sweep.chunk_size = std::size_t{1} << 15;  // every file fits one chunk
    sweep.num_files = files;
    mr::Dfs dfs(sweep.cluster());
    geo::dataset_to_dfs(dfs, "/in", diff_dataset(), sweep.num_files);
    const geo::GeolocatedDataset parsed = geo::dataset_from_dfs(dfs, "/in");

    const DjClusterConfig config = base_config();
    core::run_preprocess_jobs(dfs, sweep.cluster(), "/in/", "/dj", config);
    EXPECT_TRUE(expect_same_lines(
        "djcluster/preprocess", sweep,
        canonical_lines(core::preprocess(parsed, config)),
        canonical_lines(dfs, "/dj/preprocessed")));
  }
}

TEST(DiffDjCluster, PreprocessingDivergenceIsBoundedAcrossChunks) {
  // Small chunks: the map-only filter sees one-sided speeds at each chunk
  // edge — at most 2 traces per map task may differ from the oracle.
  for (const std::size_t chunk : {std::size_t{512}, std::size_t{2048}}) {
    SweepConfig sweep;
    sweep.chunk_size = chunk;
    mr::Dfs dfs(sweep.cluster());
    geo::dataset_to_dfs(dfs, "/in", diff_dataset(), sweep.num_files);
    const geo::GeolocatedDataset parsed = geo::dataset_from_dfs(dfs, "/in");

    const DjClusterConfig config = base_config();
    const auto stats =
        core::run_preprocess_jobs(dfs, sweep.cluster(), "/in/", "/dj", config);
    const auto oracle = core::preprocess(parsed, config);
    const std::int64_t oracle_kept =
        static_cast<std::int64_t>(oracle.num_traces());
    const std::int64_t job_kept = static_cast<std::int64_t>(
        geo::count_dfs_records(dfs, "/dj/preprocessed"));
    const std::int64_t bound = 2 * stats.filter_job.num_map_tasks;
    std::ostringstream os;
    os << "preprocessed trace counts: oracle=" << oracle_kept
       << " job=" << job_kept << " allowed divergence=" << bound;
    EXPECT_TRUE(expect_condition("djcluster/preprocess-bounded", sweep,
                                 std::llabs(oracle_kept - job_kept) <= bound,
                                 os.str()));
  }
}

TEST(DiffDjCluster, ClusteringPhasesMatchOracleOnTheSamePreprocessedData) {
  // Phases 2+3 (neighborhood + merge) are exact for any chunking: compare
  // the MapReduce clusters against dj_cluster() run on the pipeline's own
  // preprocessed output.
  for (const std::size_t chunk : {std::size_t{1024}, std::size_t{1} << 15}) {
    for (const int min_pts : {3, 6}) {
      SweepConfig sweep;
      sweep.chunk_size = chunk;
      mr::Dfs dfs(sweep.cluster());
      geo::dataset_to_dfs(dfs, "/in", diff_dataset(), sweep.num_files);

      DjClusterConfig config = base_config();
      config.min_pts = min_pts;
      config.keep_intermediates = true;  // pin /dj/preprocessed for the oracle
      const auto result =
          core::run_djcluster_jobs(dfs, sweep.cluster(), "/in/", "/dj", config);
      const DjClusterResult oracle = core::dj_cluster(
          geo::dataset_from_dfs(dfs, "/dj/preprocessed"), config);
      compare_clusters("djcluster/phases23", sweep, oracle, result.clusters);
    }
  }
}

TEST(DiffDjCluster, RetriesAndNodeDeathLeaveTheClusteringUnchanged) {
  for (const Chaos chaos : {Chaos::kRetries, Chaos::kNodeDeath}) {
    SweepConfig sweep;
    sweep.chunk_size = std::size_t{1} << 15;
    sweep.chaos = chaos;
    mr::Dfs dfs(sweep.cluster());
    geo::dataset_to_dfs(dfs, "/in", diff_dataset(), sweep.num_files);
    const geo::GeolocatedDataset parsed = geo::dataset_from_dfs(dfs, "/in");

    DjClusterConfig config = base_config();
    config.failures = sweep.failures();
    config.fault_plan = sweep.fault_plan();
    const auto result =
        core::run_djcluster_jobs(dfs, sweep.cluster(), "/in/", "/dj", config);
    const DjClusterResult oracle =
        core::dj_cluster(core::preprocess(parsed, config), config);
    compare_clusters("djcluster/chaos", sweep, oracle, result.clusters);
  }
}

TEST(DiffDjCluster, SkipModeDropsExactlyThePoisonedRecords) {
  // Poison applies to the filter job only (single-chunk files keep
  // preprocessing exact): the oracle runs on the dataset minus the poisoned
  // raw records.
  SweepConfig sweep;
  sweep.chunk_size = std::size_t{1} << 15;
  sweep.chaos = Chaos::kSkip;
  mr::Dfs dfs(sweep.cluster());
  geo::dataset_to_dfs(dfs, "/in", diff_dataset(), sweep.num_files);
  const geo::GeolocatedDataset parsed = geo::dataset_from_dfs(dfs, "/in");

  DjClusterConfig config = base_config();
  config.failures = sweep.failures();
  config.fault_plan = sweep.fault_plan();
  ASSERT_GT(count_poisoned(parsed, config.fault_plan), 0u);

  const auto result =
      core::run_djcluster_jobs(dfs, sweep.cluster(), "/in/", "/dj", config);
  const DjClusterResult oracle = core::dj_cluster(
      core::preprocess(drop_poisoned(parsed, config.fault_plan), config),
      config);
  compare_clusters("djcluster/skip", sweep, oracle, result.clusters);
}

}  // namespace
}  // namespace gepeto::difftest
