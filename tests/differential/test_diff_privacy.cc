// Differential tests for the privacy pipelines (ISSUE 10): the sequential
// sanitizers and attacks are the oracles for their MapReduce/JobFlow
// realizations, swept over chunk size and file count (and, via the
// differential_privacy ctest leg, the multi-process worker backend).
//
// Two properties are asserted at every sweep point:
//   * equivalence — the job output is byte-identical (canonical lines /
//     exact structs) to the sequential oracle; in particular the seeded
//     mix-zone pseudonym allocation must not depend on chunking, task
//     scheduling, or worker backend;
//   * contract — the release passes the privacy-contract verifier, so every
//     sweep point also exercises the adversarial oracle itself.
#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "diff_harness.h"
#include "geo/geolife.h"
#include "gepeto/attacks/fingerprint.h"
#include "gepeto/attacks/od_matrix.h"
#include "gepeto/attacks/privacy_verifier.h"
#include "gepeto/sanitize.h"
#include "mapreduce/dfs.h"

namespace gepeto::difftest {
namespace {

using core::CloakingContract;
using core::FingerprintConfig;
using core::MixZone;
using core::OdConfig;

geo::GeolocatedDataset diff_dataset() {
  AdversarialOptions options;
  options.num_users = 4;
  options.traces_per_window = 10;
  options.num_windows = 6;
  options.window_s = 600;
  options.duplicate_points = true;  // identical observations stress censuses
  return adversarial_dataset(options);
}

const std::vector<std::size_t> kChunks = {512, 2048, std::size_t{1} << 15};

TEST(DiffPrivacy, CloakingMatchesOracleAndContractOnAnyChunking) {
  const int k = 2;
  const double base_cell_m = 200.0;
  const int doublings = 3;
  for (const std::size_t chunk : kChunks) {
    for (const int files : {1, 3}) {
      SweepConfig sweep;
      sweep.chunk_size = chunk;
      sweep.num_files = files;
      mr::Dfs dfs(sweep.cluster());
      geo::dataset_to_dfs(dfs, "/in", diff_dataset(), sweep.num_files);
      const auto parsed = geo::dataset_from_dfs(dfs, "/in/");

      const auto oracle = core::spatial_cloaking(parsed, k, base_cell_m,
                                                 doublings);
      const auto job = core::run_cloaking_jobs(dfs, sweep.cluster(), "/in/",
                                               "/cloak", k, base_cell_m,
                                               doublings);
      EXPECT_TRUE(expect_condition(
          "privacy/cloaking", sweep, job.suppressed == oracle.suppressed,
          "suppressed: oracle=" + std::to_string(oracle.suppressed) +
              " job=" + std::to_string(job.suppressed)));
      EXPECT_TRUE(expect_same_lines("privacy/cloaking", sweep,
                                    canonical_lines(oracle.data),
                                    canonical_lines(dfs, "/cloak/cloaked")));

      const auto report = core::verify_cloaking(
          parsed, geo::dataset_from_dfs(dfs, "/cloak/cloaked/"),
          CloakingContract{k, base_cell_m, doublings});
      EXPECT_TRUE(expect_condition("privacy/cloaking-contract", sweep,
                                   report.ok(), report.summary()));
    }
  }
}

TEST(DiffPrivacy, MixZonePseudonymsAreByteIdenticalOnAnyChunking) {
  const auto data = diff_dataset();
  for (const std::uint64_t seed : {core::kPseudonymSeed, std::uint64_t{42}}) {
    for (const std::size_t chunk : kChunks) {
      SweepConfig sweep;
      sweep.chunk_size = chunk;
      mr::Dfs dfs(sweep.cluster());
      geo::dataset_to_dfs(dfs, "/in", data, sweep.num_files);
      const auto parsed = geo::dataset_from_dfs(dfs, "/in/");
      const auto zones = core::pick_mix_zones(parsed, 2, 300.0);
      ASSERT_EQ(zones.size(), 2u);

      const auto oracle = core::apply_mix_zones(parsed, zones, seed);
      // The sweep is only meaningful when pseudonyms are actually allocated.
      ASSERT_GT(oracle.pseudonym_changes, 0u);
      const auto job = core::run_mix_zone_jobs(dfs, sweep.cluster(), "/in/",
                                               "/mz", zones, seed);
      EXPECT_TRUE(expect_condition(
          "privacy/mixzones", sweep,
          job.suppressed_traces == oracle.suppressed_traces &&
              job.pseudonym_changes == oracle.pseudonym_changes,
          "counters: oracle=" + std::to_string(oracle.suppressed_traces) +
              "/" + std::to_string(oracle.pseudonym_changes) + " job=" +
              std::to_string(job.suppressed_traces) + "/" +
              std::to_string(job.pseudonym_changes)));
      // Byte-identity of the release — same pseudonym for every trace no
      // matter how the input was chunked or which backend ran the tasks.
      EXPECT_TRUE(expect_same_lines("privacy/mixzones", sweep,
                                    canonical_lines(oracle.data),
                                    canonical_lines(dfs, "/mz/mixed")));

      const auto report = core::verify_mix_zones(parsed, oracle, zones);
      EXPECT_TRUE(expect_condition("privacy/mixzones-contract", sweep,
                                   report.ok(), report.summary()));
    }
  }
}

TEST(DiffPrivacy, LinkAttackFlowMatchesSequentialAttack) {
  const auto data = diff_dataset();
  for (const std::size_t chunk : {std::size_t{2048}, std::size_t{1} << 15}) {
    SweepConfig sweep;
    sweep.chunk_size = chunk;
    mr::Dfs dfs(sweep.cluster());
    geo::dataset_to_dfs(dfs, "/probe", data, sweep.num_files);
    geo::dataset_to_dfs(dfs, "/gallery", data, sweep.num_files);
    const auto probe = geo::dataset_from_dfs(dfs, "/probe/");
    const auto gallery = geo::dataset_from_dfs(dfs, "/gallery/");

    FingerprintConfig config;
    config.cluster.radius_m = 400.0;
    config.cluster.min_pts = 4;
    const auto oracle = core::run_link_attack(probe, gallery, config);
    const auto job = core::run_link_attack_flow(dfs, sweep.cluster(),
                                                "/probe/", "/gallery/",
                                                "/attack", config);
    bool links_equal = job.report.links.size() == oracle.links.size() &&
                       job.report.correct == oracle.correct;
    for (std::size_t i = 0; links_equal && i < oracle.links.size(); ++i)
      links_equal = job.report.links[i].probe_id == oracle.links[i].probe_id &&
                    job.report.links[i].gallery_id ==
                        oracle.links[i].gallery_id &&
                    job.report.links[i].distance == oracle.links[i].distance;
    std::ostringstream os;
    os << "links: oracle=" << oracle.links.size() << " (" << oracle.correct
       << " correct) job=" << job.report.links.size() << " ("
       << job.report.correct << " correct)";
    EXPECT_TRUE(
        expect_condition("privacy/link-attack", sweep, links_equal, os.str()));
  }
}

TEST(DiffPrivacy, OdMatrixFlowMatchesSequentialMatrix) {
  const auto data = diff_dataset();
  OdConfig config;
  config.cell_m = 500.0;
  config.trip_gap_s = 1200;
  config.k = 2;
  for (const std::size_t chunk : {std::size_t{1024}, std::size_t{1} << 15}) {
    SweepConfig sweep;
    sweep.chunk_size = chunk;
    mr::Dfs dfs(sweep.cluster());
    geo::dataset_to_dfs(dfs, "/in", data, sweep.num_files);
    const auto parsed = geo::dataset_from_dfs(dfs, "/in/");

    const auto oracle =
        core::build_od_matrix(core::extract_trips(parsed, config), config);
    const auto job =
        core::run_od_matrix_flow(dfs, sweep.cluster(), "/in/", "/od", config);
    std::ostringstream os;
    os << "entries: oracle=" << oracle.entries.size()
       << " job=" << job.matrix.entries.size() << " totals " << oracle.total_trips
       << "/" << oracle.suppressed_trips << " vs " << job.matrix.total_trips
       << "/" << job.matrix.suppressed_trips;
    EXPECT_TRUE(expect_condition(
        "privacy/od-matrix", sweep,
        job.matrix.entries == oracle.entries &&
            job.matrix.total_trips == oracle.total_trips &&
            job.matrix.suppressed_trips == oracle.suppressed_trips &&
            job.matrix.suppressed_pairs == oracle.suppressed_pairs,
        os.str()));

    const auto report = core::verify_od_matrix(parsed, job.matrix, config);
    EXPECT_TRUE(expect_condition("privacy/od-contract", sweep, report.ok(),
                                 report.summary()));
  }
}

}  // namespace
}  // namespace gepeto::difftest
