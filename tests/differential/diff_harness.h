// Differential correctness harness: every paper algorithm is run through a
// sequential in-process oracle and through the MapReduce engine, and the two
// outputs are asserted semantically equal while sweeping execution knobs
// that must not change the answer — chunk size (number of splits), number of
// input files, reducer count, combiner on/off, deterministic chaos
// (mr::FaultPlan), and JobFlow-vs-direct-driver execution.
//
// The harness is a small library, not a framework: test files build their
// own sweep grids from SweepConfig, run oracle and job, and feed both sides
// through the comparison helpers below. Every comparison is recorded; a
// gtest global environment writes the sweep matrix with pass/fail counts to
// BENCH_differential.json (telemetry::BenchReporter) and, when anything
// diverged, a DIVERGENCE_differential.txt report naming the *minimal*
// failing configuration — the one with the fewest knobs away from the
// simplest config — so a red CI run points straight at the culprit axis.
//
// Semantic equality is per algorithm (DESIGN.md Section 10):
//   * down-sampling   — byte-identical canonical (sorted) dataset lines;
//   * k-means         — centroids within a tolerance, SSE within a relative
//                       tolerance, same convergence outcome (the MapReduce
//                       path round-trips centroids through "%.10f" text);
//   * DJ-Cluster      — identical cluster membership and noise counts,
//                       centroids within tolerance;
//   * R-Tree          — query-result equivalence on seeded probes plus
//                       global invariants (size, partition-size sum).
//
// Chaos kinds and their oracles:
//   * kRetries    — injected attempt crashes; retried work must leave the
//                   output identical to the fault-free run.
//   * kNodeDeath  — a datanode dies mid-job; replication hides it, output
//                   identical.
//   * kSkip       — content-addressed poison records (FaultPlan::
//                   poison_modulus) are pinpointed and skipped by Hadoop
//                   skip mode; the oracle runs on the dataset minus exactly
//                   those records (drop_poisoned), which is well-defined
//                   because the poison decision hashes record *bytes*, not
//                   task coordinates.
//   * kProcKill   — process-level faults (FaultPlan::process_faults): under
//                   the process worker backend a tasktracker really takes a
//                   SIGKILL mid-record / corrupts its result frame, and the
//                   jobtracker's reap-and-retry machinery must hide it; under
//                   the thread backend the faults are inert and the sweep
//                   degenerates to kNone. Output identical either way.
//
// Backend: setting GEPETO_DIFF_BACKEND=process in the environment makes
// every sweep point run its job through the multi-process worker backend
// (ClusterConfig::backend = kProcess) — the CI leg that proves the wire
// shuffle and crash recovery are byte-exact against the same oracles.
//
// Input format: setting GEPETO_DIFF_FORMAT=columnar makes the format-aware
// test files (sampling, k-means) load the dataset as binary columnar files
// (storage/colfile.h) and run the columnar job variants against the same
// oracles. Sweep points without a columnar equivalent degrade gracefully:
// map-only down-sampling (its exactness rests on the text group-aware split
// protocol) and Chaos::kSkip (poison decisions hash record *bytes*, which
// differ between text lines and binary records) are no-ops under this leg.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "geo/trace.h"
#include "mapreduce/cluster.h"
#include "mapreduce/dfs.h"
#include "mapreduce/job.h"

namespace gepeto::difftest {

// --- sweep configuration -----------------------------------------------------

enum class Chaos { kNone, kRetries, kNodeDeath, kSkip, kProcKill };

const char* chaos_name(Chaos c);

/// One point of the sweep grid. Every knob defaults to the simplest value;
/// complexity() counts how far a config is from that baseline, which is what
/// "minimal failing config" minimizes.
struct SweepConfig {
  std::size_t chunk_size = 1 << 15;  ///< bytes per DFS chunk (= map split)
  int num_files = 2;                 ///< input files written by dataset_to_dfs
  int num_reducers = 1;              ///< ignored by map-only jobs
  bool use_combiner = false;
  Chaos chaos = Chaos::kNone;
  bool via_flow = false;  ///< wrap the job in a flow::Flow instead of driving
  std::uint64_t chaos_seed = 7;

  /// 4 worker nodes, 2 per rack, 2 execution threads, this chunk size.
  mr::ClusterConfig cluster() const;
  /// Failure policy matching the chaos kind (skip budget only for kSkip).
  mr::FailurePolicy failures() const;
  /// Fault plan matching the chaos kind (empty for kNone).
  mr::FaultPlan fault_plan() const;

  std::string label() const;
  int complexity() const;
};

/// Poison modulus used by every kSkip sweep point: ~2.5% of records are
/// poisoned — enough that every small test dataset has a few, small enough
/// that the pinpoint-and-retry cost (two extra attempts per bad record)
/// stays bounded.
inline constexpr std::uint64_t kPoisonModulus = 41;

/// True when GEPETO_DIFF_FORMAT=columnar: format-aware tests should write
/// their input with storage::dataset_to_dfs_columnar and run the columnar
/// job variants.
bool columnar_format();

// --- adversarial dataset generators ------------------------------------------

/// Knobs for datasets crafted to hit the bugs this harness exists to catch.
struct AdversarialOptions {
  int num_users = 3;
  std::uint64_t seed = 1;
  /// Traces per (user, window) group; large groups straddle chunk
  /// boundaries at small chunk sizes, exercising the group-aware split
  /// protocol of map-only down-sampling.
  int traces_per_window = 12;
  int num_windows = 6;
  int window_s = 600;
  /// Emit runs of byte-identical coordinates (duplicate points) — duplicate
  /// initial k-means centroids produce empty clusters.
  bool duplicate_points = false;
  /// Include users near the antimeridian (lon ±179.99…) and near the poles
  /// (lat ±89.9) — coordinates where naive distance/curve math degrades.
  bool extreme_coords = false;
};

/// Deterministic dataset from the options above; traces are (user, time)
/// ordered per user as the parsers require.
geo::GeolocatedDataset adversarial_dataset(const AdversarialOptions& options);

/// The oracle-side counterpart of FaultPlan poison records: the dataset
/// minus every trace whose dataset line the plan poisons. Exactly the
/// records Hadoop skip mode drops under the same plan, for any chunking.
geo::GeolocatedDataset drop_poisoned(const geo::GeolocatedDataset& dataset,
                                     const mr::FaultPlan& plan);

/// Number of traces the plan poisons (to size skip budgets in tests).
std::uint64_t count_poisoned(const geo::GeolocatedDataset& dataset,
                             const mr::FaultPlan& plan);

// --- canonical output normalizers --------------------------------------------

/// All lines of every file under `prefix`, sorted — the order-insensitive
/// canonical form of a text job output (part files are concatenated in an
/// engine-defined order; line order across reducers is not semantic).
std::vector<std::string> canonical_lines(const mr::Dfs& dfs,
                                         const std::string& prefix);

/// The oracle-side canonical form: a dataset rendered to sorted dataset
/// lines (geo::dataset_line per trace).
std::vector<std::string> canonical_lines(const geo::GeolocatedDataset& dataset);

// --- divergence recording ----------------------------------------------------

/// Records one comparison under (algorithm, config); every record feeds the
/// BENCH_differential.json matrix, failures additionally feed the
/// divergence report. Thread-safe.
void record_result(const std::string& algorithm, const SweepConfig& config,
                   bool pass, const std::string& detail);

/// Compare two canonical line vectors, record the outcome, and return a
/// gtest AssertionResult whose message names the first differing line:
///   EXPECT_TRUE(expect_same_lines("sampling", config, oracle, job));
::testing::AssertionResult expect_same_lines(
    const std::string& algorithm, const SweepConfig& config,
    const std::vector<std::string>& oracle,
    const std::vector<std::string>& job);

/// Compare two scalar sequences within an absolute tolerance (centroid
/// coordinates), record, and report the worst deviation on failure.
::testing::AssertionResult expect_near_sequence(
    const std::string& algorithm, const SweepConfig& config,
    const std::string& what, const std::vector<double>& oracle,
    const std::vector<double>& job, double abs_tolerance);

/// Record an arbitrary pass/fail comparison and return it as an
/// AssertionResult carrying `detail` on failure.
::testing::AssertionResult expect_condition(const std::string& algorithm,
                                            const SweepConfig& config,
                                            bool pass,
                                            const std::string& detail);

}  // namespace gepeto::difftest
