// Differential tests for the MapReduce R-Tree build (paper Section VII-C):
// the oracle is a sequentially STR-bulk-loaded tree over the same entries.
// Partition boundaries depend on phase-1 sampling, so tree *shape* is not
// comparable — the criterion is query-result equivalence (seeded radius and
// range probes) plus global invariants (entry count, partition-size sum),
// swept over curve kind, partition count, chunk size, and chaos.
#include <gtest/gtest.h>

#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "common/random.h"
#include "diff_harness.h"
#include "geo/geolife.h"
#include "gepeto/djcluster.h"
#include "gepeto/rtree_mr.h"
#include "index/rtree.h"
#include "mapreduce/dfs.h"

namespace gepeto::difftest {
namespace {

using core::RTreeMrConfig;

std::set<std::uint64_t> ids_of(const std::vector<index::RTreeEntry>& entries) {
  std::set<std::uint64_t> ids;
  for (const auto& e : entries) ids.insert(e.id);
  return ids;
}

void run_diff(const SweepConfig& sweep, index::CurveKind curve,
              int num_partitions) {
  AdversarialOptions options;
  options.num_users = 4;
  options.traces_per_window = 12;
  options.num_windows = 6;
  options.extreme_coords = true;  // antimeridian + near-polar entries
  const auto dataset = adversarial_dataset(options);

  mr::Dfs dfs(sweep.cluster());
  geo::dataset_to_dfs(dfs, "/in", dataset, sweep.num_files);
  const geo::GeolocatedDataset parsed = geo::dataset_from_dfs(dfs, "/in");
  const mr::FaultPlan plan = sweep.fault_plan();
  const geo::GeolocatedDataset oracle_input =
      sweep.chaos == Chaos::kSkip ? drop_poisoned(parsed, plan) : parsed;
  if (sweep.chaos == Chaos::kSkip) {
    ASSERT_GT(count_poisoned(parsed, plan), 0u) << sweep.label();
  }

  RTreeMrConfig config;
  config.curve = curve;
  config.num_partitions = num_partitions;
  config.failures = sweep.failures();
  config.fault_plan = plan;
  const auto r = core::build_rtree_mapreduce(dfs, sweep.cluster(), "/in/",
                                             "/rtree", config);

  index::RTree direct(config.rtree_max_entries);
  std::vector<index::RTreeEntry> entries;
  for (const auto& [uid, trail] : oracle_input)
    for (const auto& t : trail)
      entries.push_back({t.latitude, t.longitude,
                         core::pack_trace_id(t.user_id, t.timestamp)});
  direct.bulk_load_str(entries);

  const std::string algorithm =
      std::string("rtree/") +
      (curve == index::CurveKind::kZOrder ? "zorder" : "hilbert");

  r.tree.check_invariants();
  {
    std::uint64_t partition_total = 0;
    for (const auto s : r.partition_sizes) partition_total += s;
    std::ostringstream os;
    os << "size/partition invariants: tree=" << r.tree.size()
       << " partitions-sum=" << partition_total
       << " oracle=" << entries.size();
    EXPECT_TRUE(expect_condition(algorithm, sweep,
                                 r.tree.size() == entries.size() &&
                                     partition_total == entries.size(),
                                 os.str()));
  }

  // Seeded probes: radius queries around dataset hot spots (including the
  // antimeridian and near-polar users) and rectangle queries.
  gepeto::Rng rng(2024 + static_cast<std::uint64_t>(num_partitions));
  bool queries_equal = true;
  std::ostringstream detail;
  for (int q = 0; q < 12 && queries_equal; ++q) {
    const auto& trail = parsed.trail(
        static_cast<std::int32_t>(1 + q % static_cast<int>(parsed.num_users())));
    const auto& probe = trail[static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(trail.size()) - 1))];
    const double radius = rng.uniform(50, 2000);
    if (ids_of(r.tree.radius_search_meters(probe.latitude, probe.longitude,
                                           radius)) !=
        ids_of(direct.radius_search_meters(probe.latitude, probe.longitude,
                                           radius))) {
      queries_equal = false;
      detail << "radius query diverged at (" << probe.latitude << ", "
             << probe.longitude << ") r=" << radius << "m";
    }
    const index::Rect rect = index::Rect::of(
        probe.latitude - 0.004, probe.longitude - 0.004, probe.latitude + 0.004,
        probe.longitude + 0.004);
    if (queries_equal && ids_of(r.tree.search(rect)) != ids_of(direct.search(rect))) {
      queries_equal = false;
      detail << "rect query diverged around (" << probe.latitude << ", "
             << probe.longitude << ")";
    }
  }
  EXPECT_TRUE(
      expect_condition(algorithm, sweep, queries_equal, detail.str()));
}

TEST(DiffRTree, QueriesMatchOracleAcrossCurvesAndPartitions) {
  for (const auto curve :
       {index::CurveKind::kZOrder, index::CurveKind::kHilbert}) {
    for (const int partitions : {1, 4}) {
      SweepConfig sweep;
      sweep.num_reducers = partitions;  // phase 2 runs one reducer per partition
      run_diff(sweep, curve, partitions);
    }
  }
}

TEST(DiffRTree, ChunkSizeDoesNotChangeQueryResults) {
  for (const std::size_t chunk : {std::size_t{1024}, std::size_t{8192}}) {
    SweepConfig sweep;
    sweep.chunk_size = chunk;
    sweep.num_reducers = 3;
    run_diff(sweep, index::CurveKind::kHilbert, 3);
  }
}

TEST(DiffRTree, RetriesAndNodeDeathLeaveQueryResultsUnchanged) {
  for (const Chaos chaos : {Chaos::kRetries, Chaos::kNodeDeath}) {
    SweepConfig sweep;
    sweep.chunk_size = 4096;
    sweep.chaos = chaos;
    sweep.num_reducers = 3;
    run_diff(sweep, index::CurveKind::kZOrder, 3);
  }
}

TEST(DiffRTree, SkipModeIndexesExactlyTheUnpoisonedRecords) {
  // Poison changes the phase-1 sample (hence boundaries — load balance
  // only), and must drop exactly the poisoned records from the index.
  SweepConfig sweep;
  sweep.chunk_size = 4096;
  sweep.chaos = Chaos::kSkip;
  sweep.num_reducers = 3;
  run_diff(sweep, index::CurveKind::kHilbert, 3);
}

}  // namespace
}  // namespace gepeto::difftest
