// Differential tests for k-means (paper Section VI): kmeans_sequential() is
// the oracle for kmeans_mapreduce(), swept over chunk size, distance kind
// (squared-Euclidean and Haversine), combiner on/off, chaos, and a
// crash-then-resume axis. Equality is tolerance-based (DESIGN.md Section
// 10): the MapReduce path round-trips centroids through "%.10f" text every
// iteration, so centroids match within kCentroidTolDeg and SSE within a
// relative tolerance; iteration count and convergence outcome must match
// exactly.
#include <gtest/gtest.h>

#include <cmath>
#include <numeric>
#include <sstream>
#include <string>
#include <vector>

#include "diff_harness.h"
#include "geo/geolife.h"
#include "gepeto/kmeans.h"
#include "mapreduce/dfs.h"
#include "storage/colfile.h"

namespace gepeto::difftest {
namespace {

using core::Centroid;
using core::KMeansConfig;
using core::KMeansResult;

// ~1e-6 degrees is ~0.1 m — far above the per-iteration "%.10f" round-trip
// error (~5e-11 degrees) and far below any centroid separation we generate.
constexpr double kCentroidTolDeg = 1e-6;
constexpr double kSseRelTol = 1e-6;

std::vector<double> flatten(const std::vector<Centroid>& centroids) {
  std::vector<double> out;
  out.reserve(centroids.size() * 2);
  for (const auto& c : centroids) {
    out.push_back(c.latitude);
    out.push_back(c.longitude);
  }
  return out;
}

void compare_results(const std::string& algorithm, const SweepConfig& sweep,
                     const KMeansResult& oracle, const KMeansResult& job,
                     bool compare_iterations) {
  EXPECT_TRUE(expect_near_sequence(algorithm, sweep, "centroid",
                                   flatten(oracle.centroids),
                                   flatten(job.centroids), kCentroidTolDeg));
  {
    const double scale = std::max(1.0, std::fabs(oracle.sse));
    std::ostringstream os;
    os << "sse: oracle=" << oracle.sse << " job=" << job.sse;
    EXPECT_TRUE(expect_condition(
        algorithm, sweep,
        std::fabs(oracle.sse - job.sse) <= kSseRelTol * scale, os.str()));
  }
  if (compare_iterations) {
    std::ostringstream os;
    os << "iterations/convergence: oracle=" << oracle.iterations << "/"
       << oracle.converged << " job=" << job.iterations << "/"
       << job.converged;
    EXPECT_TRUE(expect_condition(algorithm, sweep,
                                 oracle.iterations == job.iterations &&
                                     oracle.converged == job.converged,
                                 os.str()));
  }
  // Cluster sizes have different semantics on the two paths (final
  // assignment pass vs last iteration's reduce counts) but both partition
  // the whole dataset.
  const auto sum = [](const std::vector<std::uint64_t>& v) {
    return std::accumulate(v.begin(), v.end(), std::uint64_t{0});
  };
  std::ostringstream os;
  os << "cluster-size sums: oracle=" << sum(oracle.cluster_sizes)
     << " job=" << sum(job.cluster_sizes);
  EXPECT_TRUE(expect_condition(
      algorithm, sweep, sum(oracle.cluster_sizes) == sum(job.cluster_sizes),
      os.str()));
}

geo::GeolocatedDataset diff_dataset(bool duplicate_points) {
  AdversarialOptions options;
  options.num_users = 3;
  options.traces_per_window = 12;
  options.num_windows = 6;
  options.duplicate_points = duplicate_points;
  return adversarial_dataset(options);
}

KMeansConfig base_config(geo::DistanceKind distance, bool use_combiner) {
  KMeansConfig config;
  config.k = 5;
  config.distance = distance;
  config.convergence_delta_m = 5.0;
  config.max_iterations = 6;
  config.seed = 11;
  config.use_combiner = use_combiner;
  return config;
}

void run_diff(const SweepConfig& sweep, geo::DistanceKind distance,
              bool duplicate_points) {
  mr::Dfs dfs(sweep.cluster());
  if (columnar_format())
    storage::dataset_to_dfs_columnar(dfs, "/in", diff_dataset(duplicate_points),
                                     sweep.num_files);
  else
    geo::dataset_to_dfs(dfs, "/in", diff_dataset(duplicate_points),
                        sweep.num_files);
  const geo::GeolocatedDataset parsed =
      columnar_format() ? storage::dataset_from_dfs_columnar(dfs, "/in")
                        : geo::dataset_from_dfs(dfs, "/in");

  KMeansConfig config = base_config(distance, sweep.use_combiner);
  config.columnar_input = columnar_format();
  config.failures = sweep.failures();
  config.fault_plan = sweep.fault_plan();

  const KMeansResult oracle = core::kmeans_sequential(parsed, config);
  const KMeansResult job =
      core::kmeans_mapreduce(dfs, sweep.cluster(), "/in/", "/clusters", config);

  const std::string algorithm =
      std::string("kmeans/") +
      (distance == geo::DistanceKind::kHaversine ? "haversine" : "sqeuclid") +
      (duplicate_points ? "/dupes" : "");
  compare_results(algorithm, sweep, oracle, job, /*compare_iterations=*/true);
}

TEST(DiffKMeans, MatchesOracleAcrossChunkingsAndDistances) {
  for (const std::size_t chunk : {std::size_t{2048}, std::size_t{1} << 15}) {
    for (const auto distance : {geo::DistanceKind::kSquaredEuclidean,
                                geo::DistanceKind::kHaversine}) {
      SweepConfig sweep;
      sweep.chunk_size = chunk;
      run_diff(sweep, distance, /*duplicate_points=*/false);
    }
  }
}

TEST(DiffKMeans, CombinerDoesNotChangeTheAnswer) {
  for (const std::size_t chunk : {std::size_t{2048}, std::size_t{1} << 15}) {
    SweepConfig sweep;
    sweep.chunk_size = chunk;
    sweep.use_combiner = true;
    run_diff(sweep, geo::DistanceKind::kSquaredEuclidean,
             /*duplicate_points=*/false);
  }
}

TEST(DiffKMeans, DuplicatePointsAndEmptyClustersMatchOracle) {
  // Duplicate coordinates make duplicate initial centroids likely; ties
  // assign every point to the lowest index, starving the duplicates — both
  // paths must agree on carrying the empty centroid forward.
  for (const bool combiner : {false, true}) {
    SweepConfig sweep;
    sweep.chunk_size = 4096;
    sweep.use_combiner = combiner;
    run_diff(sweep, geo::DistanceKind::kSquaredEuclidean,
             /*duplicate_points=*/true);
  }
}

TEST(DiffKMeans, RetriesAndNodeDeathLeaveTheAnswerUnchanged) {
  for (const Chaos chaos : {Chaos::kRetries, Chaos::kNodeDeath}) {
    SweepConfig sweep;
    sweep.chunk_size = 4096;
    sweep.chaos = chaos;
    run_diff(sweep, geo::DistanceKind::kSquaredEuclidean,
             /*duplicate_points=*/false);
  }
}

TEST(DiffKMeans, CrashedIterationResumesToTheOracleAnswer) {
  // Chaos axis unique to k-means: exhaust every attempt of one map task in
  // iteration 1 (JobError), then resume from the iter-001 checkpoint with
  // the plan cleared; the resumed run must land on the oracle's answer.
  SweepConfig sweep;
  sweep.chunk_size = 4096;
  sweep.chaos = Chaos::kRetries;  // recorded label; the plan below is custom

  mr::Dfs dfs(sweep.cluster());
  geo::dataset_to_dfs(dfs, "/in", diff_dataset(false), sweep.num_files);
  const geo::GeolocatedDataset parsed = geo::dataset_from_dfs(dfs, "/in");

  KMeansConfig config =
      base_config(geo::DistanceKind::kSquaredEuclidean, false);
  const KMeansResult oracle = core::kmeans_sequential(parsed, config);

  KMeansConfig crashing = config;
  for (int attempt = 0; attempt < crashing.failures.max_attempts; ++attempt)
    crashing.fault_plan.crashes.push_back({/*phase=*/1, /*task=*/0, attempt});
  crashing.fault_iteration = 1;
  EXPECT_THROW(core::kmeans_mapreduce(dfs, sweep.cluster(), "/in/",
                                      "/clusters", crashing),
               mr::JobError);

  KMeansConfig resumed = config;
  resumed.resume = true;
  const KMeansResult job = core::kmeans_mapreduce(dfs, sweep.cluster(), "/in/",
                                                  "/clusters", resumed);
  // Iteration counts differ by construction (resume re-runs only the tail).
  compare_results("kmeans/resume", sweep, oracle, job,
                  /*compare_iterations=*/false);
}

}  // namespace
}  // namespace gepeto::difftest
