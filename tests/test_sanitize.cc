// Tests for the geo-sanitization mechanisms and the privacy/utility
// metrics: Gaussian masks, spatial rounding, cloaking, mix zones, and the
// privacy-vs-utility trade-off they create against the POI attack.
#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <set>

#include "common/check.h"
#include "geo/distance.h"
#include "geo/generator.h"
#include "geo/geolife.h"
#include "gepeto/metrics.h"
#include "gepeto/poi.h"
#include "gepeto/sanitize.h"
#include "mapreduce/dfs.h"

namespace gepeto::core {
namespace {

geo::SyntheticDataset make_world(int users = 4, std::uint64_t seed = 301) {
  geo::GeneratorConfig cfg;
  cfg.num_users = users;
  cfg.duration_days = 20;
  cfg.trajectories_per_user_min = 60;
  cfg.trajectories_per_user_max = 90;
  cfg.seed = seed;
  return geo::generate_dataset(cfg);
}

TEST(GaussianMask, PerturbsByRoughlySigma) {
  const auto world = make_world();
  const auto masked = gaussian_mask(world.data, 50.0, 7);
  const auto m = location_error(world.data, masked);
  EXPECT_EQ(m.dropped_traces, 0u);
  // Mean 2D displacement of N(0, sigma) per axis is sigma * sqrt(pi/2).
  EXPECT_NEAR(m.mean_error_m, 50.0 * std::sqrt(M_PI / 2.0), 8.0);
}

TEST(GaussianMask, DeterministicPerSeed) {
  const auto world = make_world(2, 302);
  const auto a = gaussian_mask(world.data, 30.0, 7);
  const auto b = gaussian_mask(world.data, 30.0, 7);
  const auto c = gaussian_mask(world.data, 30.0, 8);
  EXPECT_EQ(a.trail(0), b.trail(0));
  EXPECT_NE(a.trail(0), c.trail(0));
}

TEST(GaussianMask, ZeroSigmaIsIdentity) {
  const auto world = make_world(2, 303);
  const auto masked = gaussian_mask(world.data, 0.0, 7);
  EXPECT_EQ(masked.trail(0), world.data.trail(0));
}

TEST(GaussianMask, MrJobMatchesSequential) {
  const auto world = make_world(2, 304);
  mr::ClusterConfig cc;
  cc.num_worker_nodes = 4;
  cc.chunk_size = 1 << 15;
  cc.execution_threads = 2;
  mr::Dfs dfs(cc);
  geo::dataset_to_dfs(dfs, "/in", world.data, 2);
  run_gaussian_mask_job(dfs, cc, "/in/", "/out", 40.0, 9);
  const auto got = geo::dataset_from_dfs(dfs, "/out/");
  const auto want = gaussian_mask(geo::dataset_from_dfs(dfs, "/in/"), 40.0, 9);
  ASSERT_EQ(got.num_traces(), want.num_traces());
  // Compare to line precision (the job writes dataset lines).
  for (auto uid : want.users()) {
    const auto& g = got.trail(uid);
    const auto& w = want.trail(uid);
    ASSERT_EQ(g.size(), w.size());
    for (std::size_t i = 0; i < g.size(); ++i) {
      EXPECT_EQ(g[i].timestamp, w[i].timestamp);
      EXPECT_NEAR(g[i].latitude, w[i].latitude, 1e-6);
      EXPECT_NEAR(g[i].longitude, w[i].longitude, 1e-6);
    }
  }
}

TEST(SpatialRounding, SnapsToCellCenters) {
  const auto world = make_world(2, 305);
  const auto rounded = spatial_rounding(world.data, 500.0);
  // All rounded positions live on a coarse lattice: distinct latitudes are
  // far fewer than traces.
  std::set<double> lats;
  for (const auto& [uid, trail] : rounded)
    for (const auto& t : trail) lats.insert(t.latitude);
  EXPECT_LT(lats.size(), rounded.num_traces() / 10);
  const auto m = location_error(world.data, rounded);
  EXPECT_LT(m.max_error_m, 500.0);  // within half a cell diagonal-ish
  EXPECT_GT(m.mean_error_m, 50.0);
}

TEST(SpatialRounding, MrJobMatchesSequential) {
  const auto world = make_world(2, 306);
  mr::ClusterConfig cc;
  cc.num_worker_nodes = 2;
  cc.execution_threads = 2;
  mr::Dfs dfs(cc);
  geo::dataset_to_dfs(dfs, "/in", world.data, 1);
  run_rounding_job(dfs, cc, "/in/", "/out", 250.0);
  const auto got = geo::dataset_from_dfs(dfs, "/out/");
  const auto want =
      spatial_rounding(geo::dataset_from_dfs(dfs, "/in/"), 250.0);
  ASSERT_EQ(got.num_traces(), want.num_traces());
  for (auto uid : want.users()) {
    const auto& g = got.trail(uid);
    const auto& w = want.trail(uid);
    for (std::size_t i = 0; i < g.size(); ++i) {
      EXPECT_NEAR(g[i].latitude, w[i].latitude, 1e-6);
      EXPECT_NEAR(g[i].longitude, w[i].longitude, 1e-6);
    }
  }
}

TEST(SpatialCloaking, EveryOutputCellHasKUsersOrSuppressed) {
  const auto world = make_world(5, 307);
  const auto r = spatial_cloaking(world.data, 2, 200.0, 5);
  EXPECT_EQ(r.data.num_traces() + r.suppressed, world.data.num_traces());
  EXPECT_GE(r.avg_cell_m, 200.0);
}

TEST(SpatialCloaking, KOneIsPlainRounding) {
  const auto world = make_world(2, 308);
  const auto r = spatial_cloaking(world.data, 1, 300.0, 3);
  EXPECT_EQ(r.suppressed, 0u);
  EXPECT_DOUBLE_EQ(r.avg_cell_m, 300.0);  // every cell trivially has 1 user
}

TEST(SpatialCloaking, LargerKCoarsensOrSuppresses) {
  const auto world = make_world(5, 309);
  const auto k2 = spatial_cloaking(world.data, 2, 100.0, 6);
  const auto k4 = spatial_cloaking(world.data, 4, 100.0, 6);
  EXPECT_GE(k4.avg_cell_m + 1e-9, k2.avg_cell_m);
  EXPECT_GE(k4.suppressed, k2.suppressed);
}

TEST(SpatialCloaking, ValidatesArguments) {
  EXPECT_THROW(spatial_cloaking({}, 0, 100.0), gepeto::CheckFailure);
  EXPECT_THROW(spatial_cloaking({}, 2, -5.0), gepeto::CheckFailure);
}

// --- the k-anonymity counting regressions (ISSUE 10 satellite 1) -------------

TEST(SpatialCloaking, CountsDistinctUsersNotTraces) {
  // One chatty user logs 50 traces in a single cell; nobody else is near.
  // Counting traces would declare the cell 50-anonymous and release the
  // user's exact haunt — the census must count distinct user ids.
  geo::GeolocatedDataset data;
  for (int i = 0; i < 50; ++i) data.add({1, 40.0, 116.0, 0, 1000 + i * 60});
  data.add({2, 41.0, 117.0, 0, 500});  // far away, alone in its cell
  const auto r = spatial_cloaking(data, 2, 100.0, /*max_doublings=*/0);
  EXPECT_EQ(r.data.num_traces(), 0u);
  EXPECT_EQ(r.suppressed, data.num_traces());
}

TEST(SpatialCloaking, ExactlyKUsersSatisfiesKAtBaseCell) {
  // count == k must release at the *base* cell (>= k, not > k): no spurious
  // extra doubling, no suppression, on the boundary.
  geo::GeolocatedDataset data;
  for (std::int32_t u = 1; u <= 3; ++u) data.add({u, 40.0, 116.0, 0, 100 * u});
  const auto r = spatial_cloaking(data, 3, 250.0, 4);
  EXPECT_EQ(r.suppressed, 0u);
  EXPECT_DOUBLE_EQ(r.avg_cell_m, 250.0);
  const auto r4 = spatial_cloaking(data, 4, 250.0, 4);  // k just above
  EXPECT_EQ(r4.suppressed, data.num_traces());          // terminates, no stall
}

TEST(SpatialCloaking, ReleasedCentersArePureFunctionOfCell) {
  // The fingerprint regression: two users in the same base cell must be
  // released at the bit-identical cell center. (Deriving the longitude step
  // from each trace's own latitude makes the "aggregated" release a
  // near-unique fingerprint of the original point.)
  const GridCell cell = grid_cell_of(40.0001, 116.0001, 100.0);
  double clat = 0, clon = 0;
  grid_cell_center(cell, 100.0, clat, clon);
  geo::GeolocatedDataset data;
  data.add({1, 40.0001, 116.0001, 0, 100});
  data.add({2, clat, clon, 0, 200});  // elsewhere in the same cell
  ASSERT_EQ(grid_cell_of(clat, clon, 100.0), cell);
  const auto r = spatial_cloaking(data, 2, 100.0, 0);
  ASSERT_EQ(r.suppressed, 0u);
  const auto& a = r.data.trail(1)[0];
  const auto& b = r.data.trail(2)[0];
  EXPECT_EQ(a.latitude, b.latitude);    // bit-identical, not just near
  EXPECT_EQ(a.longitude, b.longitude);
  // And the released value is the declared center of that cell.
  EXPECT_EQ(a.latitude, clat);
  EXPECT_EQ(a.longitude, clon);
}

TEST(SpatialCloaking, FullySuppressedUserAbsentFromRelease) {
  // A user whose every trace is suppressed must not appear in the release at
  // all — an empty trail would still leak that the user exists.
  geo::GeolocatedDataset data;
  data.add({1, 40.0, 116.0, 0, 100});
  data.add({2, 40.0, 116.0, 0, 200});
  data.add({3, 45.0, 100.0, 0, 300});  // alone, far away: fully suppressed
  const auto r = spatial_cloaking(data, 2, 100.0, 0);
  EXPECT_TRUE(r.data.has_user(1));
  EXPECT_TRUE(r.data.has_user(2));
  EXPECT_FALSE(r.data.has_user(3));
  EXPECT_EQ(r.suppressed, 1u);
}

TEST(MixZones, SuppressesInsideAndChangesPseudonyms) {
  const auto world = make_world(4, 310);
  const auto zones = pick_mix_zones(world.data, 3, 300.0);
  ASSERT_EQ(zones.size(), 3u);
  const auto r = apply_mix_zones(world.data, zones);
  EXPECT_GT(r.suppressed_traces, 0u);
  EXPECT_GT(r.pseudonym_changes, 0u);
  EXPECT_EQ(r.data.num_traces() + r.suppressed_traces,
            world.data.num_traces());
  // No surviving trace is inside a zone.
  for (const auto& [uid, trail] : r.data) {
    for (const auto& t : trail) {
      for (const auto& z : zones) {
        EXPECT_GT(geo::haversine_meters(t.latitude, t.longitude, z.latitude,
                                        z.longitude),
                  z.radius_m);
      }
    }
  }
  // More pseudonyms than original users.
  EXPECT_GT(r.data.num_users(), world.data.num_users());
  // Every pseudonym maps back to a real user.
  for (const auto& [pseud, owner] : r.pseudonym_owner) {
    EXPECT_TRUE(world.data.has_user(owner));
  }
}

TEST(MixZones, NoZonesIsIdentity) {
  const auto world = make_world(2, 311);
  const auto r = apply_mix_zones(world.data, {});
  EXPECT_EQ(r.suppressed_traces, 0u);
  EXPECT_EQ(r.pseudonym_changes, 0u);
  EXPECT_EQ(r.data.num_traces(), world.data.num_traces());
}

TEST(PickMixZones, ReturnsBusiestAreasDeterministically) {
  const auto world = make_world(4, 312);
  const auto a = pick_mix_zones(world.data, 2, 250.0);
  const auto b = pick_mix_zones(world.data, 2, 250.0);
  ASSERT_EQ(a.size(), 2u);
  EXPECT_DOUBLE_EQ(a[0].latitude, b[0].latitude);
  EXPECT_DOUBLE_EQ(a[1].longitude, b[1].longitude);
}

// --- seeded pseudonym allocation (ISSUE 10 satellite 2) ----------------------

TEST(PseudonymAllocation, CollisionFreeAgainstLiveIdsAndEachOther) {
  // Dense low ids (the counter allocator's favorite collision targets) plus
  // INT32_MAX (signed overflow in a `max_uid + 1` scheme — UB).
  std::vector<std::pair<std::int32_t, int>> crossings;
  std::set<std::int32_t> originals;
  for (std::int32_t u = 0; u < 64; ++u) {
    crossings.emplace_back(u, u % 4);
    originals.insert(u);
  }
  crossings.emplace_back(std::numeric_limits<std::int32_t>::max(), 3);
  originals.insert(std::numeric_limits<std::int32_t>::max());

  const auto alloc = allocate_pseudonyms(crossings, kPseudonymSeed);
  std::set<std::int32_t> pseudonyms;
  for (const auto& [key, p] : alloc) {
    EXPECT_GE(p, 0);                       // 31-bit: no overflow artifacts
    EXPECT_EQ(originals.count(p), 0u);     // never a live user id
    EXPECT_TRUE(pseudonyms.insert(p).second) << "pseudonym reused: " << p;
  }
  EXPECT_EQ(alloc.size(), pseudonyms.size());
}

TEST(PseudonymAllocation, SeededAndOrderIndependent) {
  const std::vector<std::pair<std::int32_t, int>> a = {{1, 2}, {7, 1}, {3, 0}};
  const std::vector<std::pair<std::int32_t, int>> b = {{3, 0}, {1, 2}, {7, 1}};
  EXPECT_EQ(allocate_pseudonyms(a, 42), allocate_pseudonyms(b, 42));
  EXPECT_NE(allocate_pseudonyms(a, 42), allocate_pseudonyms(a, 43));
}

TEST(MixZones, SeededApplyIsDeterministicAndOverflowSafe) {
  // A user with id INT32_MAX crosses a zone: the old `max(uid) + 1` counter
  // overflows (UB / negative pseudonyms); the seeded allocator must hand out
  // a fresh non-negative id that collides with nobody.
  const std::int32_t big = std::numeric_limits<std::int32_t>::max();
  geo::GeolocatedDataset data;
  data.add({big, 40.01, 116.01, 0, 100});  // outside
  data.add({big, 40.00, 116.00, 0, 200});  // zone center: suppressed
  data.add({big, 40.01, 116.01, 0, 300});  // outside again: new pseudonym
  data.add({7, 40.02, 116.02, 0, 150});    // bystander, never crosses
  const std::vector<MixZone> zones = {{40.0, 116.0, 250.0}};

  const auto r1 = apply_mix_zones(data, zones, 99);
  const auto r2 = apply_mix_zones(data, zones, 99);
  EXPECT_EQ(r1.pseudonym_owner, r2.pseudonym_owner);  // seeded: reproducible
  EXPECT_EQ(r1.suppressed_traces, 1u);
  EXPECT_EQ(r1.pseudonym_changes, 1u);
  for (const auto& [uid, trail] : r1.data) {
    EXPECT_GE(uid, 0);
    if (uid != big && uid != 7) {
      EXPECT_FALSE(data.has_user(uid));
    }
  }
}

TEST(ZoneIndex, BoundaryDistanceIsInside) {
  const std::vector<MixZone> zones = {{40.0, 116.0, 300.0}};
  const ZoneIndex index(zones);
  // Dead center, just inside, just outside (the contract: d <= radius is
  // suppressed, so a release may only contain strictly-outside traces).
  EXPECT_TRUE(index.contains({1, 40.0, 116.0, 0, 0}));
  EXPECT_TRUE(index.contains({1, 40.0026, 116.0, 0, 0}));   // ~289 m north
  EXPECT_FALSE(index.contains({1, 40.0028, 116.0, 0, 0}));  // ~311 m north
}

// --- metrics & the privacy/utility trade-off ---------------------------------

TEST(LocationError, PairsByUserAndTimestamp) {
  geo::GeolocatedDataset original, sanitized;
  original.add({1, 39.9, 116.4, 0, 100});
  original.add({1, 39.9, 116.4, 0, 200});
  sanitized.add({1, 39.9009, 116.4, 0, 100});  // ~100 m north
  // ts 200 dropped.
  const auto m = location_error(original, sanitized);
  EXPECT_EQ(m.paired_traces, 1u);
  EXPECT_EQ(m.dropped_traces, 1u);
  EXPECT_NEAR(m.retention, 0.5, 1e-9);
  EXPECT_NEAR(m.mean_error_m, 100.0, 3.0);
}

TEST(LocationError, EmptyDatasets) {
  const auto m = location_error({}, {});
  EXPECT_EQ(m.paired_traces, 0u);
  EXPECT_DOUBLE_EQ(m.retention, 0.0);
}

TEST(Tradeoff, StrongerMaskDegradesAttackAndUtility) {
  const auto world = make_world(4, 313);
  DjClusterConfig attack;
  attack.radius_m = 60;
  attack.min_pts = 10;

  const auto clean = run_poi_attack(world.data, world.profiles, attack);
  const auto weak = gaussian_mask(world.data, 30.0, 5);
  const auto strong = gaussian_mask(world.data, 400.0, 5);
  const auto weak_attack = run_poi_attack(weak, world.profiles, attack);
  const auto strong_attack = run_poi_attack(strong, world.profiles, attack);

  // Privacy: recall of the POI attack collapses under a strong mask.
  EXPECT_GT(clean.avg_recall, 0.3);
  EXPECT_LT(strong_attack.avg_recall, clean.avg_recall * 0.5);
  // A weak mask barely helps the defender.
  EXPECT_GT(weak_attack.avg_recall, strong_attack.avg_recall);
  // Utility: the strong mask distorts locations much more.
  const auto weak_util = location_error(world.data, weak);
  const auto strong_util = location_error(world.data, strong);
  EXPECT_GT(strong_util.mean_error_m, 5 * weak_util.mean_error_m);
}

TEST(Tradeoff, PoiPreservationMatchesAttackRecall) {
  const auto world = make_world(3, 314);
  DjClusterConfig attack;
  attack.radius_m = 60;
  attack.min_pts = 10;
  const auto report = run_poi_attack(world.data, world.profiles, attack);
  EXPECT_NEAR(poi_preservation(world.data, world.profiles, attack),
              report.avg_recall, 1e-12);
}

}  // namespace
}  // namespace gepeto::core
