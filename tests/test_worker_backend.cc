// Tests for the multi-process worker backend: the ipc::WorkerPool machinery
// (real fork()ed tasktrackers, heartbeats, kill-driven chaos, reaping and
// respawn backoff) and its integration behind the engine API — outputs must
// be byte-identical to the thread backend, with worker deaths mapped onto
// the ordinary retry logic.
#include <gtest/gtest.h>

#include <cerrno>
#include <csignal>
#include <cstdint>
#include <filesystem>
#include <future>
#include <map>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include <unistd.h>

#include "ipc/worker_pool.h"
#include "mapreduce/engine.h"

namespace gepeto {
namespace {

// --- ipc::WorkerPool ---------------------------------------------------------

/// A runner with a few scripted behaviors keyed on the request payload:
///   "spin"  — heartbeat forever-ish (killable from outside mid-heartbeat)
///   "hang"  — heartbeat once, then hang (flushed its work, never returns)
///   "fail"  — report a task-level failure at record 5
///   else    — echo the payload after driving 8 records of progress
ipc::TaskRunner test_runner() {
  return [](const ipc::TaskRequest& req, ipc::WorkerTaskContext& ctx) {
    ipc::TaskOutcome out;
    if (req.payload == "spin") {
      for (std::int64_t i = 0; i < 2000; ++i) {
        ctx.progress(i);
        ::usleep(5 * 1000);
      }
    } else if (req.payload == "hang") {
      ctx.progress(0);
      for (;;) ::pause();
    } else if (req.payload == "fail") {
      out.ok = false;
      out.failed_record = 5;
      out.error = "scripted task failure";
      return out;
    } else {
      for (std::int64_t i = 0; i < 8; ++i) ctx.progress(i);
    }
    out.ok = true;
    out.payload = "echo:" + req.payload;
    return out;
  };
}

ipc::WorkerPoolOptions fast_options(int workers = 1) {
  ipc::WorkerPoolOptions o;
  o.num_workers = workers;
  o.heartbeat_interval_s = 0.01;
  o.heartbeat_timeout_s = 5.0;
  o.respawn_backoff_base_s = 0.01;
  o.respawn_backoff_cap_s = 0.05;
  o.seed = 42;
  o.name = "wbtest";
  return o;
}

ipc::TaskRequest request(std::string payload,
                         ipc::ProcFaultKind fault = ipc::ProcFaultKind::kNone,
                         std::int64_t fault_record = -1) {
  ipc::TaskRequest req;
  req.phase = 1;
  req.payload = std::move(payload);
  req.fault = fault;
  req.fault_record = fault_record;
  return req;
}

TEST(WorkerPool, EchoRoundTripAndTaskFailures) {
  ipc::WorkerPool pool(fast_options(2), test_runner());
  const auto ok = pool.execute(request("ping"));
  ASSERT_TRUE(ok.worker_ok);
  ASSERT_TRUE(ok.outcome.ok);
  EXPECT_EQ(ok.outcome.payload, "echo:ping");

  // A task-level failure comes back structured, without killing the worker.
  const auto fail = pool.execute(request("fail"));
  ASSERT_TRUE(fail.worker_ok);
  EXPECT_FALSE(fail.outcome.ok);
  EXPECT_EQ(fail.outcome.failed_record, 5);
  EXPECT_EQ(fail.outcome.error, "scripted task failure");

  const auto st = pool.stats();
  EXPECT_EQ(st.tasks_completed, 2);
  EXPECT_EQ(st.deaths(), 0);
  EXPECT_EQ(pool.live_workers(), 2);
}

TEST(WorkerPool, SigkillAtRecordIsASignalDeathAndThePoolRecovers) {
  ipc::WorkerPool pool(fast_options(1), test_runner());
  const auto dead = pool.execute(
      request("boom", ipc::ProcFaultKind::kSigkillAtRecord, /*record=*/3));
  EXPECT_FALSE(dead.worker_ok);
  EXPECT_EQ(dead.category, ipc::ExitCategory::kSignal);

  // The replacement worker (respawned after backoff) serves the next task.
  const auto ok = pool.execute(request("after"));
  ASSERT_TRUE(ok.worker_ok);
  EXPECT_EQ(ok.outcome.payload, "echo:after");

  const auto st = pool.stats();
  EXPECT_GE(st.deaths_signal, 1);
  EXPECT_GE(st.respawns, 1);
  EXPECT_GE(st.tasks_failed, 1);
  EXPECT_GE(st.recoveries, 1);
  EXPECT_GE(st.total_recovery_s, 0.0);
}

TEST(WorkerPool, GarbledResultFrameIsDetectedByCrcAndKilled) {
  ipc::WorkerPool pool(fast_options(1), test_runner());
  const auto dead =
      pool.execute(request("x", ipc::ProcFaultKind::kGarbledFrame));
  EXPECT_FALSE(dead.worker_ok);
  EXPECT_EQ(dead.category, ipc::ExitCategory::kGarbled);
  EXPECT_GE(pool.stats().deaths_garbled, 1);

  const auto ok = pool.execute(request("after"));
  EXPECT_TRUE(ok.worker_ok);
}

TEST(WorkerPool, HangBeforeFirstHeartbeatHitsTheDeadline) {
  auto options = fast_options(1);
  options.heartbeat_timeout_s = 0.3;
  ipc::WorkerPool pool(options, test_runner());
  const auto dead =
      pool.execute(request("x", ipc::ProcFaultKind::kHangBeforeHeartbeat));
  EXPECT_FALSE(dead.worker_ok);
  EXPECT_EQ(dead.category, ipc::ExitCategory::kTimeout);
  const auto st = pool.stats();
  EXPECT_GE(st.heartbeat_timeouts, 1);
  EXPECT_GE(st.deaths_timeout, 1);
}

TEST(WorkerPool, WorkerHangingAfterFinalFlushTimesOut) {
  // The worker heartbeats once (its work is flushed), then wedges without
  // ever returning: the deadline machinery must SIGKILL it and classify the
  // death as a timeout, not a signal.
  auto options = fast_options(1);
  options.heartbeat_timeout_s = 0.3;
  ipc::WorkerPool pool(options, test_runner());
  const auto dead = pool.execute(request("hang"));
  EXPECT_FALSE(dead.worker_ok);
  EXPECT_EQ(dead.category, ipc::ExitCategory::kTimeout);
  EXPECT_GE(pool.stats().heartbeats, 1);
}

TEST(WorkerPool, WorkerKilledMidHeartbeatWhileBusy) {
  ipc::WorkerPool pool(fast_options(1), test_runner());
  auto fut = std::async(std::launch::async,
                        [&] { return pool.execute(request("spin")); });
  ::usleep(100 * 1000);  // let the task start and heartbeat
  pool.kill_worker(0, SIGKILL);
  const auto dead = fut.get();
  EXPECT_FALSE(dead.worker_ok);
  EXPECT_EQ(dead.category, ipc::ExitCategory::kSignal);
  EXPECT_GE(pool.stats().heartbeats, 1);

  const auto ok = pool.execute(request("after"));
  EXPECT_TRUE(ok.worker_ok);
}

TEST(WorkerPool, RespawnBackoffGrowsAndIsCapped) {
  ipc::WorkerPool pool(fast_options(1), test_runner());
  for (int i = 0; i < 5; ++i) {
    const auto dead = pool.execute(
        request("boom", ipc::ProcFaultKind::kSigkillAtRecord, /*record=*/0));
    EXPECT_FALSE(dead.worker_ok) << "kill " << i;
  }
  const auto ok = pool.execute(request("after"));
  EXPECT_TRUE(ok.worker_ok);

  const auto st = pool.stats();
  EXPECT_GE(st.respawns, 5);
  // Jittered exponential backoff: every delay must respect the cap, and five
  // consecutive deaths must accumulate more delay than any single one.
  EXPECT_LE(st.max_backoff_s, 0.05 + 1e-9);
  EXPECT_GT(st.max_backoff_s, 0.0);
  EXPECT_GT(st.total_backoff_s, st.max_backoff_s);
}

TEST(WorkerPool, DoubleReapIsIdempotent) {
  auto options = fast_options(1);
  options.respawn_backoff_base_s = 30.0;  // no respawn during the test
  options.respawn_backoff_cap_s = 60.0;
  ipc::WorkerPool pool(options, test_runner());
  ASSERT_EQ(pool.live_workers(), 1);

  EXPECT_TRUE(pool.debug_reap(0));
  EXPECT_EQ(pool.live_workers(), 0);
  // Second reap of the same slot: no waitpid, no double-count, no crash.
  EXPECT_FALSE(pool.debug_reap(0));
  EXPECT_FALSE(pool.debug_reap(0));

  const auto st = pool.stats();
  EXPECT_EQ(st.reaps, 1);
  EXPECT_EQ(st.deaths_signal, 1);
}

TEST(WorkerPool, DestructionLeavesNoOrphansAndNoScratch) {
  std::vector<pid_t> pids;
  std::string scratch;
  {
    ipc::WorkerPool pool(fast_options(2), test_runner());
    EXPECT_TRUE(pool.execute(request("warm")).worker_ok);
    pids = pool.worker_pids();
    scratch = pool.scratch_root();
    ASSERT_EQ(pids.size(), 2u);
    EXPECT_TRUE(std::filesystem::exists(scratch));
  }
  // The destructor waits every child: nothing may survive it (not even as a
  // zombie — they were waitpid()ed), and the scratch tree must be gone.
  for (const pid_t pid : pids) {
    errno = 0;
    EXPECT_EQ(::kill(pid, 0), -1) << "worker " << pid << " survived the pool";
    EXPECT_EQ(errno, ESRCH);
  }
  EXPECT_FALSE(std::filesystem::exists(scratch));
}

// --- engine integration ------------------------------------------------------

mr::ClusterConfig thread_cluster(std::size_t chunk = 64) {
  mr::ClusterConfig c;
  c.num_worker_nodes = 4;
  c.nodes_per_rack = 2;
  c.chunk_size = chunk;
  c.execution_threads = 2;
  c.seed = 99;
  return c;
}

mr::ClusterConfig process_cluster(std::size_t chunk = 64) {
  mr::ClusterConfig c = thread_cluster(chunk);
  c.backend = mr::ExecutionBackend::kProcess;
  c.process_workers = 2;
  c.worker_heartbeat_interval_s = 0.01;
  c.worker_heartbeat_timeout_s = 5.0;
  c.worker_respawn_backoff_base_s = 0.01;
  c.worker_respawn_backoff_cap_s = 0.1;
  return c;
}

const char* kCorpus =
    "the quick brown fox\n"
    "jumps over the lazy dog\n"
    "the dog barks at the fox\n"
    "fox and dog and fox\n"
    "a lazy brown dog naps\n"
    "the fox naps too\n";

void put_corpus(mr::Dfs& dfs) {
  dfs.put("/in/a", kCorpus);
  dfs.put("/in/b", "more fox\nmore dog\nquick quick quick\n");
}

/// Every part file under `prefix`, path -> bytes.
std::map<std::string, std::string> outputs(const mr::Dfs& dfs,
                                           const std::string& prefix) {
  std::map<std::string, std::string> m;
  for (const auto& p : dfs.list(prefix)) m[p] = std::string(dfs.read(p));
  return m;
}

struct KeepMapper {
  void map(std::int64_t, std::string_view line, mr::MapOnlyContext& ctx) {
    if (line.find('x') != std::string_view::npos) {
      ctx.write(line);
      ctx.increment("kept");
    }
  }
};

struct WcMapper {
  using OutKey = std::string;
  using OutValue = std::int64_t;
  void map(std::int64_t, std::string_view line,
           mr::MapContext<OutKey, OutValue>& ctx) {
    std::size_t i = 0;
    while (i < line.size()) {
      while (i < line.size() && line[i] == ' ') ++i;
      std::size_t j = i;
      while (j < line.size() && line[j] != ' ') ++j;
      if (j > i) ctx.emit(std::string(line.substr(i, j - i)), 1);
      i = j;
    }
  }
};

struct WcReducer {
  void reduce(const std::string& key, std::span<const std::int64_t> values,
              mr::ReduceContext& ctx) {
    std::int64_t sum = 0;
    for (auto v : values) sum += v;
    ctx.write(key + "\t" + std::to_string(sum));
  }
};

struct WcCombiner {
  void combine(const std::string& key, std::span<const std::int64_t> values,
               mr::MapContext<std::string, std::int64_t>& ctx) {
    std::int64_t sum = 0;
    for (auto v : values) sum += v;
    ctx.emit(key, sum);
  }
};

TEST(ProcessBackend, MapOnlyOutputIsByteIdenticalToThreadBackend) {
  mr::JobConfig job;
  job.name = "keepx";
  job.input = "/in";
  job.output = "/out";

  mr::Dfs tdfs(thread_cluster());
  put_corpus(tdfs);
  const auto tr = mr::run_map_only_job(tdfs, thread_cluster(), job,
                                       [] { return KeepMapper{}; });

  mr::Dfs pdfs(process_cluster());
  put_corpus(pdfs);
  const auto pr = mr::run_map_only_job(pdfs, process_cluster(), job,
                                       [] { return KeepMapper{}; });

  EXPECT_EQ(outputs(tdfs, "/out/"), outputs(pdfs, "/out/"));
  EXPECT_EQ(tr.map_input_records, pr.map_input_records);
  EXPECT_EQ(tr.output_records, pr.output_records);
  EXPECT_EQ(tr.counters, pr.counters);
  EXPECT_EQ(tr.worker_deaths, 0);
  EXPECT_EQ(pr.worker_deaths, 0);
}

TEST(ProcessBackend, WordCountIsByteIdenticalToThreadBackend) {
  mr::JobConfig job;
  job.name = "wc";
  job.input = "/in";
  job.output = "/out";
  job.num_reducers = 2;
  job.use_combiner = true;

  mr::Dfs tdfs(thread_cluster());
  put_corpus(tdfs);
  const auto tr = mr::run_mapreduce_job(
      tdfs, thread_cluster(), job, [] { return WcMapper{}; },
      [] { return WcReducer{}; }, [] { return WcCombiner{}; });

  mr::Dfs pdfs(process_cluster());
  put_corpus(pdfs);
  const auto pr = mr::run_mapreduce_job(
      pdfs, process_cluster(), job, [] { return WcMapper{}; },
      [] { return WcReducer{}; }, [] { return WcCombiner{}; });

  EXPECT_EQ(outputs(tdfs, "/out/"), outputs(pdfs, "/out/"));
  EXPECT_EQ(tr.map_output_records, pr.map_output_records);
  EXPECT_EQ(tr.combine_output_records, pr.combine_output_records);
  EXPECT_EQ(tr.reduce_input_groups, pr.reduce_input_groups);
  EXPECT_EQ(tr.output_records, pr.output_records);
  EXPECT_EQ(tr.shuffle_bytes, pr.shuffle_bytes);
  EXPECT_EQ(tr.spill_runs, pr.spill_runs);
}

TEST(ProcessBackend, RealKillsRecoverToTheSameBytes) {
  using PF = mr::FaultPlan::ProcessFault;
  mr::JobConfig job;
  job.name = "wc-chaos";
  job.input = "/in";
  job.output = "/out";
  job.num_reducers = 2;
  job.fault_plan.process_faults.push_back(
      {/*phase=*/1, /*task=*/0, /*attempt=*/0, PF::Kind::kSigkillAtRecord,
       /*record=*/1});
  job.fault_plan.process_faults.push_back({/*phase=*/1, /*task=*/1,
                                           /*attempt=*/0,
                                           PF::Kind::kGarbledFrame,
                                           /*record=*/0});
  job.fault_plan.process_faults.push_back(
      {/*phase=*/2, /*task=*/0, /*attempt=*/0, PF::Kind::kSigkillAtRecord,
       /*record=*/0});

  // Thread backend: process faults are inert, this is the reference run.
  mr::Dfs tdfs(thread_cluster());
  put_corpus(tdfs);
  const auto tr = mr::run_mapreduce_job(
      tdfs, thread_cluster(), job, [] { return WcMapper{}; },
      [] { return WcReducer{}; });
  EXPECT_EQ(tr.worker_deaths, 0);
  EXPECT_EQ(tr.failed_task_attempts, 0);

  // Process backend: two workers really take SIGKILLs and one corrupts its
  // result frame; reap + respawn + retry must land on identical bytes.
  mr::Dfs pdfs(process_cluster());
  put_corpus(pdfs);
  const auto pr = mr::run_mapreduce_job(
      pdfs, process_cluster(), job, [] { return WcMapper{}; },
      [] { return WcReducer{}; });

  EXPECT_EQ(outputs(tdfs, "/out/"), outputs(pdfs, "/out/"));
  EXPECT_GE(pr.worker_deaths, 3);
  EXPECT_GE(pr.failed_task_attempts, 3);
  EXPECT_GE(pr.worker_respawns, 1);
  EXPECT_GE(pr.worker_recovery_seconds, 0.0);
}

TEST(ProcessBackend, PersistentKillsExhaustAttemptsIntoJobError) {
  using PF = mr::FaultPlan::ProcessFault;
  mr::JobConfig job;
  job.name = "doomed";
  job.input = "/in";
  job.output = "/out";
  job.failures.max_attempts = 3;
  for (int a = 0; a < 3; ++a)
    job.fault_plan.process_faults.push_back(
        {/*phase=*/1, /*task=*/0, /*attempt=*/a, PF::Kind::kSigkillAtRecord,
         /*record=*/0});

  mr::Dfs dfs(process_cluster());
  put_corpus(dfs);
  try {
    mr::run_map_only_job(dfs, process_cluster(), job,
                         [] { return KeepMapper{}; });
    FAIL() << "expected JobError";
  } catch (const mr::JobError& e) {
    EXPECT_NE(e.kind(), mr::JobError::Kind::kInvalidConfig);
    EXPECT_EQ(e.phase(), 1);
  }
}

// --- submission validation (satellite: knob validation) ----------------------

mr::JobError::Kind submit_kind(const mr::ClusterConfig& bad,
                               mr::FailurePolicy failures = {}) {
  mr::Dfs dfs(thread_cluster());
  dfs.put("/in/data", "ax\nbx\n");
  mr::JobConfig job;
  job.name = "validate";
  job.input = "/in";
  job.output = "/out";
  job.failures = failures;
  try {
    mr::run_map_only_job(dfs, bad, job, [] { return KeepMapper{}; });
  } catch (const mr::JobError& e) {
    return e.kind();
  }
  ADD_FAILURE() << "submission was accepted";
  return mr::JobError::Kind::kAttemptsExhausted;
}

TEST(SubmissionValidation, GarbageKnobsAreAStructuredJobError) {
  using Kind = mr::JobError::Kind;
  {
    auto c = thread_cluster();
    c.map_slots_per_node = -2;
    EXPECT_EQ(submit_kind(c), Kind::kInvalidConfig);
  }
  {
    auto c = thread_cluster();
    c.replication = 0;
    EXPECT_EQ(submit_kind(c), Kind::kInvalidConfig);
  }
  {
    auto c = thread_cluster();
    c.disk_bandwidth_Bps = 0.0;
    EXPECT_EQ(submit_kind(c), Kind::kInvalidConfig);
  }
  {
    auto c = thread_cluster();
    c.compute_scale = -1.0;
    EXPECT_EQ(submit_kind(c), Kind::kInvalidConfig);
  }
  {
    auto c = process_cluster();
    c.worker_heartbeat_timeout_s = c.worker_heartbeat_interval_s;  // too tight
    EXPECT_EQ(submit_kind(c), Kind::kInvalidConfig);
  }
  {
    auto c = process_cluster();
    c.worker_respawn_backoff_base_s = 0.0;
    EXPECT_EQ(submit_kind(c), Kind::kInvalidConfig);
  }
  {
    mr::FailurePolicy f;
    f.max_attempts = 0;
    EXPECT_EQ(submit_kind(thread_cluster(), f), Kind::kInvalidConfig);
  }
  {
    mr::FailurePolicy f;
    f.max_failed_task_fraction = 1.5;
    EXPECT_EQ(submit_kind(thread_cluster(), f), Kind::kInvalidConfig);
  }
  {
    mr::FailurePolicy f;
    f.task_failure_prob = -0.25;
    EXPECT_EQ(submit_kind(thread_cluster(), f), Kind::kInvalidConfig);
  }
}

// --- wire-serializability gate ----------------------------------------------

/// An intermediate value the wire codec cannot ship (non-trivially-copyable,
/// no wire hooks): allowed on the thread backend, structured error on the
/// process backend.
struct OpaqueValue {
  std::vector<int> v;
  std::uint64_t serialized_size() const { return 4 * v.size() + 8; }
};

struct OpaqueMapper {
  using OutKey = std::int32_t;
  using OutValue = OpaqueValue;
  void map(std::int64_t, std::string_view line,
           mr::MapContext<OutKey, OutValue>& ctx) {
    ctx.emit(0, OpaqueValue{{static_cast<int>(line.size())}});
  }
};

struct OpaqueReducer {
  void reduce(const std::int32_t&, std::span<const OpaqueValue> values,
              mr::ReduceContext& ctx) {
    std::size_t n = 0;
    for (const auto& v : values) n += v.v.size();
    ctx.write(std::to_string(n));
  }
};

TEST(ProcessBackend, NonWireableIntermediatesAreRejectedUpFront) {
  mr::JobConfig job;
  job.name = "opaque";
  job.input = "/in";
  job.output = "/out";

  // Thread backend: fine.
  mr::Dfs tdfs(thread_cluster());
  put_corpus(tdfs);
  EXPECT_NO_THROW(mr::run_mapreduce_job(tdfs, thread_cluster(), job,
                                        [] { return OpaqueMapper{}; },
                                        [] { return OpaqueReducer{}; }));

  // Process backend: structured kInvalidConfig before any work happens.
  mr::Dfs pdfs(process_cluster());
  put_corpus(pdfs);
  try {
    mr::run_mapreduce_job(pdfs, process_cluster(), job,
                          [] { return OpaqueMapper{}; },
                          [] { return OpaqueReducer{}; });
    FAIL() << "expected JobError";
  } catch (const mr::JobError& e) {
    EXPECT_EQ(e.kind(), mr::JobError::Kind::kInvalidConfig);
  }
}

}  // namespace
}  // namespace gepeto
