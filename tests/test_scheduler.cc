// Tests for the virtual-time jobtracker: locality preference, slot
// utilisation, makespan arithmetic, failure re-execution, and the scaling
// behaviours the paper relies on (more nodes -> shorter map phase; smaller
// chunks -> more parallelism).
#include <gtest/gtest.h>

#include "common/random.h"
#include "mapreduce/cluster.h"
#include "mapreduce/scheduler.h"

namespace gepeto::mr {
namespace {

ClusterConfig cluster(int nodes, int map_slots = 2) {
  ClusterConfig c;
  c.num_worker_nodes = nodes;
  c.nodes_per_rack = 4;
  c.map_slots_per_node = map_slots;
  c.reduce_slots_per_node = 2;
  c.task_startup_seconds = 0.0;  // keep arithmetic easy in unit tests
  c.job_startup_seconds = 0.0;
  c.disk_bandwidth_Bps = 100.0;  // 100 bytes/second: easy numbers
  c.intra_rack_Bps = 100.0;
  c.inter_rack_Bps = 10.0;
  c.compute_scale = 1.0;
  return c;
}

MapTaskCost map_task(std::uint64_t bytes, double cpu, std::vector<int> reps) {
  MapTaskCost t;
  t.input_bytes = bytes;
  t.cpu_seconds = cpu;
  t.replica_nodes = std::move(reps);
  return t;
}

TEST(Locality, Classification) {
  auto c = cluster(8);
  EXPECT_EQ(locality_of(c, {1, 2}, 1), Locality::kDataLocal);
  EXPECT_EQ(locality_of(c, {1, 2}, 3), Locality::kRackLocal);   // same rack 0
  EXPECT_EQ(locality_of(c, {1, 2}, 5), Locality::kRemote);      // rack 1
}

TEST(MapAttempt, DataLocalCostIsDiskPlusCpu) {
  auto c = cluster(8);
  const auto t = map_task(200, 1.5, {0});
  // 200 bytes / 100 Bps = 2 s disk + 1.5 s cpu.
  EXPECT_DOUBLE_EQ(map_attempt_seconds(c, t, 0), 3.5);
}

TEST(MapAttempt, RackLocalAddsIntraRackTransfer) {
  auto c = cluster(8);
  const auto t = map_task(200, 0.0, {0});
  EXPECT_DOUBLE_EQ(map_attempt_seconds(c, t, 1), 2.0 + 2.0);
}

TEST(MapAttempt, RemoteAddsInterRackTransfer) {
  auto c = cluster(8);
  const auto t = map_task(200, 0.0, {0});
  EXPECT_DOUBLE_EQ(map_attempt_seconds(c, t, 5), 2.0 + 20.0);
}

TEST(MapAttempt, StartupAndComputeScaleApply) {
  auto c = cluster(8);
  c.task_startup_seconds = 1.0;
  c.compute_scale = 3.0;
  const auto t = map_task(100, 2.0, {0});
  EXPECT_DOUBLE_EQ(map_attempt_seconds(c, t, 0), 1.0 + 1.0 + 6.0);
}

TEST(MapAttempt, OutputSpillChargesLocalDisk) {
  auto c = cluster(8);
  auto t = map_task(100, 0.0, {0});
  t.output_bytes = 300;
  EXPECT_DOUBLE_EQ(map_attempt_seconds(c, t, 0), 1.0 + 3.0);
}

TEST(MapSchedule, SingleTaskMakespanEqualsAttemptTime) {
  auto c = cluster(8);
  const auto s = schedule_map_phase(c, {map_task(100, 1.0, {2})});
  EXPECT_DOUBLE_EQ(s.makespan, 2.0);
  EXPECT_EQ(s.assigned_node[0], 2);
  EXPECT_EQ(s.data_local, 1);
}

TEST(MapSchedule, PrefersDataLocalNodes) {
  auto c = cluster(8);
  std::vector<MapTaskCost> tasks;
  for (int n = 0; n < 8; ++n) tasks.push_back(map_task(100, 0.5, {n}));
  const auto s = schedule_map_phase(c, tasks);
  EXPECT_EQ(s.data_local, 8);
  EXPECT_EQ(s.rack_local, 0);
  EXPECT_EQ(s.remote, 0);
  // All 8 tasks run in parallel on their own nodes.
  EXPECT_DOUBLE_EQ(s.makespan, 1.5);
}

TEST(MapSchedule, SlotsLimitParallelism) {
  auto c = cluster(1, /*map_slots=*/1);
  std::vector<MapTaskCost> tasks(4, map_task(100, 0.0, {0}));
  const auto s = schedule_map_phase(c, tasks);
  // 4 tasks x 1 s serialized on a single slot.
  EXPECT_DOUBLE_EQ(s.makespan, 4.0);
}

TEST(MapSchedule, MoreNodesShortenMakespan) {
  std::vector<MapTaskCost> tasks;
  for (int i = 0; i < 32; ++i)
    tasks.push_back(map_task(100, 1.0, {i % 4, (i + 1) % 4, (i + 2) % 4}));
  // Replicas only live on nodes 0..3, so larger clusters see remote reads,
  // but still finish sooner thanks to more slots — provided the network is
  // not absurdly slower than disk (use a balanced cost model here).
  auto balanced = [](int nodes) {
    auto c = cluster(nodes);
    c.inter_rack_Bps = c.intra_rack_Bps;
    return c;
  };
  const auto s4 = schedule_map_phase(balanced(4), tasks);
  const auto s8 = schedule_map_phase(balanced(8), tasks);
  const auto s16 = schedule_map_phase(balanced(16), tasks);
  EXPECT_GT(s4.makespan, s8.makespan);
  EXPECT_GE(s8.makespan, s16.makespan);
}

TEST(MapSchedule, ExtremeNetworkPenaltyMakesRemoteSlotsUnhelpful) {
  // With a 10x slower cross-rack network (this file's default toy model),
  // adding rack-1 nodes can lengthen the makespan: remote attempts take 12 s
  // while the 4 data-local nodes would have finished in 8 s. The scheduler
  // must still complete, and all work lands somewhere.
  std::vector<MapTaskCost> tasks;
  for (int i = 0; i < 32; ++i)
    tasks.push_back(map_task(100, 1.0, {i % 4, (i + 1) % 4, (i + 2) % 4}));
  const auto s8 = schedule_map_phase(cluster(8), tasks);
  EXPECT_EQ(static_cast<int>(s8.assigned_node.size()), 32);
  EXPECT_GT(s8.remote, 0);
  EXPECT_DOUBLE_EQ(s8.makespan, 12.0);
}

TEST(MapSchedule, SmallerChunksIncreaseParallelism) {
  // Same total volume: 4 big tasks vs 16 small tasks on a 16-slot cluster.
  auto c = cluster(8);  // 16 map slots
  std::vector<MapTaskCost> big(4, map_task(1600, 4.0, {0, 1, 4}));
  std::vector<MapTaskCost> small(16, map_task(400, 1.0, {0, 1, 4}));
  const auto sb = schedule_map_phase(c, big);
  const auto ss = schedule_map_phase(c, small);
  EXPECT_GT(sb.makespan, ss.makespan);
}

TEST(MapSchedule, FailedAttemptsDelayCompletion) {
  auto c = cluster(1, 1);
  auto ok = map_task(100, 1.0, {0});
  auto failing = ok;
  failing.failed_attempts = 2;
  const auto s_ok = schedule_map_phase(c, {ok});
  const auto s_fail = schedule_map_phase(c, {failing});
  EXPECT_GT(s_fail.makespan, s_ok.makespan);
  // Each failed attempt burns half the attempt duration: 2 * 1.0 + 2.0.
  EXPECT_DOUBLE_EQ(s_fail.makespan, 4.0);
}

TEST(MapSchedule, EmptyTaskListIsZero) {
  const auto s = schedule_map_phase(cluster(4), {});
  EXPECT_DOUBLE_EQ(s.makespan, 0.0);
  EXPECT_TRUE(s.assigned_node.empty());
}

TEST(MapSchedule, DeterministicAcrossRuns) {
  auto c = cluster(8);
  std::vector<MapTaskCost> tasks;
  for (int i = 0; i < 20; ++i)
    tasks.push_back(map_task(100 + 7 * i, 0.1 * i, {i % 8, (i + 3) % 8}));
  const auto a = schedule_map_phase(c, tasks);
  const auto b = schedule_map_phase(c, tasks);
  EXPECT_EQ(a.assigned_node, b.assigned_node);
  EXPECT_DOUBLE_EQ(a.makespan, b.makespan);
}

TEST(ReduceAttempt, ShuffleCostDependsOnTopology) {
  auto c = cluster(8);
  ReduceTaskCost t;
  t.shuffle_from = {{0, 100}};  // 1 s spill read
  // Local fetch: disk only.
  EXPECT_DOUBLE_EQ(reduce_attempt_seconds(c, t, 0), 1.0);
  // Same rack: + 1 s intra-rack.
  EXPECT_DOUBLE_EQ(reduce_attempt_seconds(c, t, 1), 2.0);
  // Other rack: + 10 s inter-rack.
  EXPECT_DOUBLE_EQ(reduce_attempt_seconds(c, t, 5), 11.0);
}

TEST(ReduceAttempt, OutputWritePipelineCharged) {
  auto c = cluster(8);
  ReduceTaskCost t;
  t.output_bytes = 100;
  EXPECT_DOUBLE_EQ(reduce_attempt_seconds(c, t, 0), 1.0 + 1.0);
}

TEST(ReduceSchedule, SingleReducerSerializesAllShuffle) {
  auto c = cluster(8);
  ReduceTaskCost t;
  for (int m = 0; m < 4; ++m) t.shuffle_from.emplace_back(m, 100);
  const auto s = schedule_reduce_phase(c, {t});
  EXPECT_EQ(s.assigned_node.size(), 1u);
  EXPECT_GT(s.makespan, 0.0);
}

TEST(ReduceSchedule, ManyReducersRunInParallel) {
  auto c = cluster(8);  // 16 reduce slots
  ReduceTaskCost t;
  t.shuffle_from = {{0, 100}};
  t.cpu_seconds = 1.0;
  const auto one = schedule_reduce_phase(c, {t});
  const auto sixteen =
      schedule_reduce_phase(c, std::vector<ReduceTaskCost>(16, t));
  // 16 reducers across 16 slots should not be 16x slower than one.
  EXPECT_LT(sixteen.makespan, 16 * one.makespan * 0.9);
}

TEST(NodeSpeed, SlowNodeInflatesAttempts) {
  auto c = cluster(4);
  c.node_speed_factor = {1.0, 3.0, 1.0, 1.0};
  const auto t = map_task(100, 1.0, {1});
  EXPECT_DOUBLE_EQ(map_attempt_seconds(c, t, 0), 2.0 + 1.0);  // rack transfer
  EXPECT_DOUBLE_EQ(map_attempt_seconds(c, t, 1), 3.0 * 2.0);  // local but slow
}

TEST(NodeSpeed, ValidationRejectsWrongSize) {
  auto c = cluster(4);
  c.node_speed_factor = {1.0, 2.0};
  EXPECT_THROW(c.validate(), gepeto::CheckFailure);
  c.node_speed_factor = {1.0, 1.0, 0.0, 1.0};
  EXPECT_THROW(c.validate(), gepeto::CheckFailure);
}

TEST(Speculation, BackupCopyRescuesStraggler) {
  // 4 tasks on 4 single-slot nodes; node 0 is 10x slower. Without
  // speculation the makespan is node 0's attempt; with it, an idle fast
  // node re-runs the straggler.
  auto c = cluster(4, /*map_slots=*/1);
  c.node_speed_factor = {10.0, 1.0, 1.0, 1.0};
  std::vector<MapTaskCost> tasks;
  for (int i = 0; i < 4; ++i) tasks.push_back(map_task(100, 1.0, {i}));

  const auto plain = schedule_map_phase(c, tasks);
  EXPECT_DOUBLE_EQ(plain.makespan, 20.0);  // (1 s disk + 1 s cpu) x 10

  c.speculative_execution = true;
  const auto spec = schedule_map_phase(c, tasks);
  EXPECT_GT(spec.speculative_copies, 0);
  EXPECT_GT(spec.speculative_wins, 0);
  // The backup runs on a fast node after its own task (2 s): 2 s start +
  // ~3 s remote attempt beats 20 s.
  EXPECT_LT(spec.makespan, plain.makespan / 2);
}

TEST(Speculation, NeverIncreasesMakespan) {
  gepeto::Rng rng(99);
  for (int trial = 0; trial < 10; ++trial) {
    auto c = cluster(6);
    c.node_speed_factor = {1.0, 1.0, 4.0, 1.0, 2.0, 1.0};
    std::vector<MapTaskCost> tasks;
    const int n = 5 + static_cast<int>(rng.uniform_u64(20));
    for (int i = 0; i < n; ++i)
      tasks.push_back(map_task(50 + rng.uniform_u64(200),
                               rng.uniform(0.1, 2.0),
                               {static_cast<int>(rng.uniform_u64(6))}));
    const auto plain = schedule_map_phase(c, tasks);
    c.speculative_execution = true;
    const auto spec = schedule_map_phase(c, tasks);
    EXPECT_LE(spec.makespan, plain.makespan + 1e-9) << "trial " << trial;
  }
}

TEST(Speculation, NoCopiesOnHomogeneousIdleCluster) {
  // One task per slot: every slot is busy until the end, so no slot is idle
  // while another attempt runs longer -> at most harmless copies, and the
  // makespan matches the plain schedule.
  auto c = cluster(2, 1);
  std::vector<MapTaskCost> tasks(2, map_task(100, 1.0, {0, 1}));
  const auto plain = schedule_map_phase(c, tasks);
  c.speculative_execution = true;
  const auto spec = schedule_map_phase(c, tasks);
  EXPECT_DOUBLE_EQ(spec.makespan, plain.makespan);
  EXPECT_EQ(spec.speculative_wins, 0);
}

TEST(Blacklist, NodeWithTooManyFailuresIsNeverAssignedAgain) {
  // Node 0 hosts a task whose first attempt fails; with a threshold of one
  // failure the tracker is blacklisted and every task (including the retry)
  // lands on node 1.
  auto c = cluster(2, /*map_slots=*/1);
  c.blacklist_after_failures = 1;
  std::vector<MapTaskCost> tasks;
  auto failing = map_task(100, 1.0, {0});
  failing.failed_attempts = 1;
  tasks.push_back(failing);
  for (int i = 0; i < 4; ++i) tasks.push_back(map_task(100, 1.0, {0}));
  const auto s = schedule_map_phase(c, tasks);
  EXPECT_EQ(s.blacklisted_nodes, 1);
  for (std::size_t i = 0; i < tasks.size(); ++i)
    EXPECT_EQ(s.assigned_node[i], 1) << "task " << i;
}

TEST(Blacklist, LastUsableNodeIsNeverBlacklisted) {
  // A single-node cluster must finish the phase even when attempts keep
  // failing there — Hadoop likewise refuses to blacklist its whole cluster.
  auto c = cluster(1, 1);
  c.blacklist_after_failures = 1;
  auto t = map_task(100, 1.0, {0});
  t.failed_attempts = 3;
  const auto s = schedule_map_phase(c, {t});
  EXPECT_EQ(s.blacklisted_nodes, 0);
  EXPECT_EQ(s.assigned_node[0], 0);
}

TEST(Blacklist, ExcludedNodesNeverReceiveWork) {
  // Dead datanodes (passed as excluded) get no attempts at all, even for
  // tasks whose only replica lives there (the read turns remote).
  auto c = cluster(4, 2);
  std::vector<MapTaskCost> tasks;
  for (int i = 0; i < 8; ++i) tasks.push_back(map_task(100, 0.5, {i % 4}));
  const auto s = schedule_map_phase(c, tasks, /*excluded_nodes=*/{0, 2});
  for (int n : s.assigned_node) {
    EXPECT_NE(n, 0);
    EXPECT_NE(n, 2);
  }
  EXPECT_EQ(s.blacklisted_nodes, 0);  // excluded != blacklisted
}

TEST(Blacklist, DisabledByDefault) {
  auto c = cluster(2, 1);
  ASSERT_EQ(c.blacklist_after_failures, 0);
  auto t = map_task(100, 1.0, {0});
  t.failed_attempts = 5;
  const auto s = schedule_map_phase(c, {t});
  EXPECT_EQ(s.blacklisted_nodes, 0);
}

TEST(Blacklist, ComposesWithSpeculationDeterministically) {
  // Failures, blacklisting and speculative execution together must still
  // yield a reproducible schedule: same inputs -> same makespan, same
  // assignments, and no double-counted blacklisting.
  auto c = cluster(6, 2);
  c.blacklist_after_failures = 2;
  c.speculative_execution = true;
  c.node_speed_factor = {1.0, 3.0, 1.0, 1.0, 2.0, 1.0};
  std::vector<MapTaskCost> tasks;
  for (int i = 0; i < 24; ++i) {
    auto t = map_task(100 + 13 * i, 0.2 + 0.05 * i, {i % 6, (i + 2) % 6});
    if (i % 5 == 0) t.failed_attempts = 1 + i % 3;
    tasks.push_back(t);
  }
  const auto a = schedule_map_phase(c, tasks);
  const auto b = schedule_map_phase(c, tasks);
  EXPECT_DOUBLE_EQ(a.makespan, b.makespan);
  EXPECT_EQ(a.assigned_node, b.assigned_node);
  EXPECT_EQ(a.blacklisted_nodes, b.blacklisted_nodes);
  EXPECT_EQ(a.speculative_copies, b.speculative_copies);
  EXPECT_LE(a.blacklisted_nodes, 5);  // at least one node always survives
  for (int n : a.assigned_node) EXPECT_NE(n, -1);
}

TEST(Blacklist, ReducePhaseAlsoBlacklists) {
  auto c = cluster(2, 1);
  c.reduce_slots_per_node = 1;
  c.blacklist_after_failures = 1;
  ReduceTaskCost failing;
  failing.cpu_seconds = 1.0;
  failing.failed_attempts = 1;
  ReduceTaskCost ok;
  ok.cpu_seconds = 1.0;
  const auto s = schedule_reduce_phase(c, {failing, ok, ok, ok});
  EXPECT_EQ(s.blacklisted_nodes, 1);
  // Whichever node hosted the failure is out; the rest serialize on the
  // survivor.
  const int survivor = s.assigned_node[0];
  for (int n : s.assigned_node) EXPECT_EQ(n, survivor);
}

TEST(ReduceSchedule, FailedReducerRetries) {
  auto c = cluster(1, 1);
  c.reduce_slots_per_node = 1;
  ReduceTaskCost t;
  t.cpu_seconds = 2.0;
  auto failing = t;
  failing.failed_attempts = 1;
  const auto ok = schedule_reduce_phase(c, {t});
  const auto fail = schedule_reduce_phase(c, {failing});
  EXPECT_DOUBLE_EQ(ok.makespan, 2.0);
  EXPECT_DOUBLE_EQ(fail.makespan, 3.0);
}

}  // namespace
}  // namespace gepeto::mr
