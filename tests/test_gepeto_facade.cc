// Integration tests of the Gepeto facade: the full toolkit driven through
// the public API, chaining sampling -> preprocessing -> clustering ->
// sanitization on one simulated cluster.
#include <gtest/gtest.h>

#include "geo/generator.h"
#include "gepeto/gepeto.h"
#include "gepeto/metrics.h"

namespace gepeto::core {
namespace {

mr::ClusterConfig paper_cluster() {
  // The paper's deployment: 7 worker nodes (plus dedicated namenode and
  // jobtracker, which are implicit in the engine).
  mr::ClusterConfig c;
  c.num_worker_nodes = 7;
  c.chunk_size = 1 << 16;
  c.execution_threads = 2;
  return c;
}

TEST(GepetoFacade, EndToEndPipeline) {
  const auto world = geo::generate_dataset([] {
    geo::GeneratorConfig cfg;
    cfg.num_users = 4;
    cfg.duration_days = 10;
    cfg.seed = 401;
    return cfg;
  }());

  Gepeto gepeto(paper_cluster());
  gepeto.load_dataset(world.data, "/geolife", 3);
  const auto initial = gepeto.count_records("/geolife/");
  EXPECT_EQ(initial, world.data.num_traces());

  // 1-minute down-sampling.
  const auto sample_job = gepeto.sample("/geolife/", "/sampled",
                                        {60, SamplingTechnique::kUpperLimit});
  EXPECT_LT(sample_job.output_records, initial / 5);

  // DJ-Cluster over the sampled data.
  DjClusterConfig dj;
  dj.radius_m = 60;
  dj.min_pts = 5;
  const auto dj_result = gepeto.djcluster("/sampled/", "/dj", dj);
  EXPECT_GT(dj_result.clusters.clusters.size(), 0u);
  EXPECT_LE(dj_result.preprocess.after_dedup,
            dj_result.preprocess.input_traces);

  // k-means over the sampled data.
  KMeansConfig km;
  km.k = 5;
  km.max_iterations = 10;
  km.seed = 2;
  const auto km_result = gepeto.kmeans("/sampled/", "/kmeans", km);
  EXPECT_EQ(km_result.centroids.size(), 5u);
  EXPECT_GT(km_result.iterations, 0);

  // R-Tree over the preprocessed data.
  RTreeMrConfig rt;
  rt.num_partitions = 4;
  const auto rt_result =
      gepeto.build_rtree("/dj/preprocessed/", "/rtree", rt);
  EXPECT_EQ(rt_result.tree.size(), dj_result.preprocess.after_dedup);

  // Sanitize and measure utility.
  gepeto.mask("/sampled/", "/masked", 100.0, 3);
  const auto masked = gepeto.read_dataset("/masked/");
  const auto sampled = gepeto.read_dataset("/sampled/");
  const auto util = location_error(sampled, masked);
  EXPECT_EQ(util.dropped_traces, 0u);
  EXPECT_GT(util.mean_error_m, 50.0);

  gepeto.round("/sampled/", "/rounded", 500.0);
  EXPECT_EQ(gepeto.count_records("/rounded/"),
            sample_job.output_records);
}

TEST(GepetoFacade, DfsIsSharedAcrossOperations) {
  const auto world = geo::generate_dataset([] {
    geo::GeneratorConfig cfg;
    cfg.num_users = 2;
    cfg.duration_days = 5;
    cfg.seed = 402;
    return cfg;
  }());
  Gepeto gepeto(paper_cluster());
  gepeto.load_dataset(world.data, "/a", 1);
  gepeto.sample("/a/", "/b", {300, SamplingTechnique::kMiddle});
  gepeto.sample("/b/", "/c", {600, SamplingTechnique::kMiddle});
  EXPECT_LE(gepeto.count_records("/c/"), gepeto.count_records("/b/"));
  EXPECT_GT(gepeto.dfs().stats().files, 3u);
}

}  // namespace
}  // namespace gepeto::core
