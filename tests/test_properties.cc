// Cross-cutting property tests: invariants that must hold across modules
// regardless of configuration — idempotence, permutation invariance,
// determinism, and the on-disk GeoLife layout round-trip.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>

#include "common/random.h"
#include "geo/generator.h"
#include "geo/geolife.h"
#include "gepeto/djcluster.h"
#include "gepeto/kmeans.h"
#include "gepeto/mmc.h"
#include "gepeto/sampling.h"
#include "gepeto/sanitize.h"
#include "mapreduce/dfs.h"

namespace gepeto::core {
namespace {

geo::SyntheticDataset small_world(std::uint64_t seed = 501) {
  geo::GeneratorConfig cfg;
  cfg.num_users = 5;
  cfg.duration_days = 12;
  cfg.trajectories_per_user_min = 20;
  cfg.trajectories_per_user_max = 30;
  cfg.seed = seed;
  return geo::generate_dataset(cfg);
}

// --- sampling -----------------------------------------------------------------

class SamplingIdempotence : public ::testing::TestWithParam<int> {};

TEST_P(SamplingIdempotence, DownsamplingTwiceEqualsOnce) {
  // Each representative stays inside its window, so re-sampling with the
  // same window must be the identity on a sampled dataset.
  const auto world = small_world();
  const SamplingConfig config{GetParam(), SamplingTechnique::kUpperLimit};
  const auto once = downsample(world.data, config);
  const auto twice = downsample(once, config);
  ASSERT_EQ(once.num_traces(), twice.num_traces());
  for (auto uid : once.users()) EXPECT_EQ(once.trail(uid), twice.trail(uid));
}

TEST_P(SamplingIdempotence, CoarserWindowOfSampledEqualsCoarserOfRaw) {
  // Windows nest (60 | 300 | 600): sampling at 10x window picks, within each
  // coarse window, among the survivors of the fine pass... this only holds
  // for counts, not identity — verify the count property.
  const auto world = small_world(502);
  const SamplingConfig fine{GetParam(), SamplingTechnique::kUpperLimit};
  const SamplingConfig coarse{GetParam() * 10, SamplingTechnique::kUpperLimit};
  const auto direct = downsample(world.data, coarse);
  const auto staged = downsample(downsample(world.data, fine), coarse);
  EXPECT_EQ(staged.num_traces(), direct.num_traces());
}

INSTANTIATE_TEST_SUITE_P(Windows, SamplingIdempotence,
                         ::testing::Values(60, 300, 600),
                         [](const auto& info) {
                           return "w" + std::to_string(info.param);
                         });

// --- DJ-Cluster -----------------------------------------------------------------

TEST(DjClusterProperty, InvariantToUserRelabeling) {
  // Clustering is spatial: relabeling users (which shifts packed ids) must
  // produce the same cluster geometry (sizes and centroids).
  const auto world = small_world(503);
  DjClusterConfig config;
  config.radius_m = 80;
  config.min_pts = 6;
  const auto pre = preprocess(world.data, config);
  const auto base = dj_cluster(pre, config);

  geo::GeolocatedDataset relabeled;
  for (const auto& [uid, trail] : pre) {
    geo::Trail copy = trail;
    for (auto& t : copy) t.user_id = uid + 1000;
    relabeled.add_trail(uid + 1000, std::move(copy));
  }
  const auto shifted = dj_cluster(relabeled, config);
  ASSERT_EQ(shifted.clusters.size(), base.clusters.size());
  EXPECT_EQ(shifted.noise, base.noise);
  for (std::size_t i = 0; i < base.clusters.size(); ++i) {
    EXPECT_EQ(shifted.clusters[i].members.size(),
              base.clusters[i].members.size());
    EXPECT_NEAR(shifted.clusters[i].centroid_lat,
                base.clusters[i].centroid_lat, 1e-12);
    EXPECT_NEAR(shifted.clusters[i].centroid_lon,
                base.clusters[i].centroid_lon, 1e-12);
  }
}

TEST(DjClusterProperty, GrowingRadiusNeverIncreasesNoise) {
  const auto world = small_world(504);
  DjClusterConfig config;
  config.min_pts = 6;
  const auto pre = preprocess(world.data, config);
  std::uint64_t prev_noise = ~0ull;
  for (double r : {30.0, 60.0, 120.0, 240.0}) {
    config.radius_m = r;
    const auto result = dj_cluster(pre, config);
    EXPECT_LE(result.noise, prev_noise) << "radius " << r;
    prev_noise = result.noise;
  }
}

TEST(DjClusterProperty, GrowingMinPtsNeverDecreasesNoise) {
  const auto world = small_world(505);
  DjClusterConfig config;
  config.radius_m = 80;
  const auto pre = preprocess(world.data, config);
  std::uint64_t prev_noise = 0;
  for (int m : {2, 4, 8, 16, 32}) {
    config.min_pts = m;
    const auto result = dj_cluster(pre, config);
    EXPECT_GE(result.noise, prev_noise) << "min_pts " << m;
    prev_noise = result.noise;
  }
}

// --- k-means ----------------------------------------------------------------------

TEST(KMeansProperty, CentroidsStayInsideDataBoundingBox) {
  const auto world = small_world(506);
  KMeansConfig config;
  config.k = 6;
  config.seed = 2;
  config.max_iterations = 15;
  const auto r = kmeans_sequential(world.data, config);
  const auto stats = [&] {
    double min_lat = 90, max_lat = -90, min_lon = 180, max_lon = -180;
    for (const auto& [uid, trail] : world.data)
      for (const auto& t : trail) {
        min_lat = std::min(min_lat, t.latitude);
        max_lat = std::max(max_lat, t.latitude);
        min_lon = std::min(min_lon, t.longitude);
        max_lon = std::max(max_lon, t.longitude);
      }
    return std::array<double, 4>{min_lat, max_lat, min_lon, max_lon};
  }();
  for (const auto& c : r.centroids) {
    EXPECT_GE(c.latitude, stats[0]);
    EXPECT_LE(c.latitude, stats[1]);
    EXPECT_GE(c.longitude, stats[2]);
    EXPECT_LE(c.longitude, stats[3]);
  }
}

TEST(KMeansProperty, MoreClustersNeverIncreaseSse) {
  const auto world = small_world(507);
  double prev_sse = std::numeric_limits<double>::max();
  for (int k : {1, 2, 4, 8, 16}) {
    KMeansConfig config;
    config.k = k;
    config.seed = 3;
    config.kmeanspp_init = true;  // spread seeds: SSE decreases in k
    config.max_iterations = 25;
    const auto r = kmeans_sequential(world.data, config);
    EXPECT_LE(r.sse, prev_sse * 1.05) << "k=" << k;
    prev_sse = std::min(prev_sse, r.sse);
  }
}

// --- engine determinism ---------------------------------------------------------

TEST(EngineProperty, WholePipelineIsDeterministic) {
  auto run = [] {
    const auto world = small_world(508);
    mr::ClusterConfig cc;
    cc.num_worker_nodes = 5;
    cc.chunk_size = 1 << 14;
    cc.execution_threads = 3;
    cc.seed = 77;
    mr::Dfs dfs(cc);
    geo::dataset_to_dfs(dfs, "/in", world.data, 3);
    run_sampling_job(dfs, cc, "/in/", "/s",
                     {60, SamplingTechnique::kUpperLimit});
    DjClusterConfig dj;
    dj.radius_m = 80;
    dj.min_pts = 5;
    const auto result = run_djcluster_jobs(dfs, cc, "/s/", "/dj", dj);
    std::string digest;
    for (const auto& part : dfs.list("/dj/clusters/"))
      digest += dfs.read(part);
    // Outputs, record counts and shuffle byte accounting are deterministic.
    // (Virtual-schedule locality counts are NOT included: task placement
    // depends on *measured* task durations, which vary between runs.)
    digest += '|' + std::to_string(result.cluster_job.shuffle_bytes);
    digest += '|' + std::to_string(result.cluster_job.map_output_records);
    digest += '|' + std::to_string(result.preprocess.after_dedup);
    return digest;
  };
  EXPECT_EQ(run(), run());
}

// --- sanitization --------------------------------------------------------------

TEST(SanitizeProperty, MaskThenMaskComposesVariances) {
  // Masking twice with sigma is statistically like once with sigma*sqrt(2):
  // check the realized mean displacement tracks that.
  const auto world = small_world(509);
  const auto once = gaussian_mask(world.data, 50.0, 1);
  const auto twice = gaussian_mask(once, 50.0, 2);
  double err_once = 0, err_twice = 0;
  std::size_t n = 0;
  for (auto uid : world.data.users()) {
    const auto& a = world.data.trail(uid);
    const auto& b = once.trail(uid);
    const auto& c = twice.trail(uid);
    for (std::size_t i = 0; i < a.size(); ++i) {
      err_once += geo::haversine_meters(a[i].latitude, a[i].longitude,
                                        b[i].latitude, b[i].longitude);
      err_twice += geo::haversine_meters(a[i].latitude, a[i].longitude,
                                         c[i].latitude, c[i].longitude);
      ++n;
    }
  }
  err_once /= static_cast<double>(n);
  err_twice /= static_cast<double>(n);
  EXPECT_NEAR(err_twice / err_once, std::sqrt(2.0), 0.08);
}

// --- GeoLife on-disk layout -------------------------------------------------------

TEST(GeolifeDirectory, WriteReadRoundTrip) {
  const auto world = small_world(510);
  const auto root = std::filesystem::temp_directory_path() /
                    "gepeto_geolife_roundtrip";
  std::filesystem::remove_all(root);
  const auto files = geo::write_geolife_directory(world.data, root.string());
  EXPECT_GT(files, world.data.num_users());  // several trajectories per user

  const auto back = geo::read_geolife_directory(root.string());
  ASSERT_EQ(back.num_users(), world.data.num_users());
  ASSERT_EQ(back.num_traces(), world.data.num_traces());
  for (auto uid : world.data.users()) {
    const auto& a = world.data.trail(uid);
    const auto& b = back.trail(uid);
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
      EXPECT_EQ(b[i].timestamp, a[i].timestamp);
      EXPECT_NEAR(b[i].latitude, a[i].latitude, 1e-6);
      EXPECT_NEAR(b[i].longitude, a[i].longitude, 1e-6);
    }
  }
  std::filesystem::remove_all(root);
}

TEST(GeolifeDirectory, ReaderSkipsGarbageLinesAndForeignDirs) {
  namespace fs = std::filesystem;
  const auto root = fs::temp_directory_path() / "gepeto_geolife_garbage";
  fs::remove_all(root);
  fs::create_directories(root / "Data" / "007" / "Trajectory");
  fs::create_directories(root / "Data" / "not-a-user" / "Trajectory");
  {
    std::ofstream out(root / "Data" / "007" / "Trajectory" / "x.plt");
    out << geo::plt_header();
    out << "39.9,116.4,0,150,39722.0,2008-10-01,00:00:00\n";
    out << "this line is garbage\n";
    out << "39.91,116.41,0,150,39722.0,2008-10-01,00:00:05\n";
  }
  const auto ds = geo::read_geolife_directory(root.string());
  EXPECT_EQ(ds.num_users(), 1u);
  EXPECT_EQ(ds.num_traces(), 2u);
  fs::remove_all(root);
}

TEST(GeolifeDirectory, MissingRootThrows) {
  EXPECT_THROW(geo::read_geolife_directory("/definitely/not/here"),
               gepeto::CheckFailure);
}

// --- MMC fixed point -------------------------------------------------------------

TEST(MmcProperty, StationaryDistributionIsFixedPoint) {
  const auto world = small_world(511);
  MmcConfig config;
  config.clustering.radius_m = 80;
  config.clustering.min_pts = 6;
  const auto mmc = learn_mmc(world.data.trail(0), config);
  if (mmc.states.empty()) GTEST_SKIP() << "no POIs extracted";
  const std::size_t n = mmc.states.size();
  std::vector<double> next(n, 0.0);
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = 0; j < n; ++j)
      next[j] += mmc.stationary[i] * mmc.transitions[i][j];
  for (std::size_t j = 0; j < n; ++j)
    EXPECT_NEAR(next[j], mmc.stationary[j], 1e-6);
}

}  // namespace
}  // namespace gepeto::core
