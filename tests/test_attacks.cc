// Tests for the inference-attack layer: POI extraction + home/work
// identification, Mobility Markov Chains (learning, prediction,
// de-anonymization) — the paper's Section VIII extensions.
#include <gtest/gtest.h>

#include <cmath>

#include "common/check.h"
#include "geo/distance.h"
#include "geo/generator.h"
#include "gepeto/mmc.h"
#include "gepeto/poi.h"

namespace gepeto::core {
namespace {

geo::SyntheticDataset make_world(int users = 5, std::uint64_t seed = 201) {
  geo::GeneratorConfig cfg;
  cfg.num_users = users;
  cfg.duration_days = 25;
  cfg.trajectories_per_user_min = 90;
  cfg.trajectories_per_user_max = 130;
  cfg.seed = seed;
  return geo::generate_dataset(cfg);
}

DjClusterConfig attack_config() {
  DjClusterConfig config;
  config.radius_m = 60;
  config.min_pts = 10;
  return config;
}

TEST(PoiExtraction, FindsVisitedPois) {
  const auto world = make_world();
  const auto& profile = world.profiles[0];
  const auto extracted =
      extract_pois(world.data.trail(0), attack_config());
  ASSERT_FALSE(extracted.pois.empty());
  // Most extracted POIs should sit on true POIs.
  std::size_t near = 0;
  for (const auto& p : extracted.pois) {
    for (const auto& t : profile.pois) {
      if (geo::haversine_meters(p.latitude, p.longitude, t.latitude,
                                t.longitude) < 100) {
        ++near;
        break;
      }
    }
  }
  EXPECT_GE(near * 2, extracted.pois.size());
}

TEST(PoiExtraction, EmptyTrail) {
  const auto extracted = extract_pois({}, attack_config());
  EXPECT_TRUE(extracted.pois.empty());
  EXPECT_EQ(extracted.home_index, -1);
  EXPECT_EQ(extracted.work_index, -1);
}

TEST(PoiExtraction, PoisOrderedBySupport) {
  const auto world = make_world();
  const auto extracted = extract_pois(world.data.trail(1), attack_config());
  for (std::size_t i = 1; i < extracted.pois.size(); ++i)
    EXPECT_GE(extracted.pois[i - 1].num_traces, extracted.pois[i].num_traces);
}

TEST(PoiExtraction, HourHistogramSumsToTraces) {
  const auto world = make_world();
  const auto extracted = extract_pois(world.data.trail(2), attack_config());
  for (const auto& p : extracted.pois) {
    std::uint64_t sum = 0;
    for (auto h : p.hour_histogram) sum += h;
    EXPECT_EQ(sum, p.num_traces);
  }
}

TEST(PoiAttack, ReportAggregatesAcrossUsers) {
  const auto world = make_world(4, 202);
  const auto report =
      run_poi_attack(world.data, world.profiles, attack_config());
  EXPECT_EQ(report.per_user.size(), 4u);
  EXPECT_GT(report.avg_recall, 0.3);     // finds a good share of true POIs
  EXPECT_GT(report.avg_precision, 0.5);  // few spurious POIs
  EXPECT_GE(report.home_identification_rate, 0.0);
  EXPECT_LE(report.home_identification_rate, 1.0);
}

TEST(PoiAttack, ScoreIsPerfectOnIdealInput) {
  // Synthesize a trail that dwells exactly at two POIs.
  geo::UserProfile truth;
  truth.user_id = 0;
  truth.pois.push_back({39.90, 116.40, geo::PoiKind::kHome});
  truth.pois.push_back({39.95, 116.50, geo::PoiKind::kWork});
  geo::Trail trail;
  std::int64_t night = 1'222'819'200;                    // 2008-10-01 00:00 UTC
  std::int64_t office = 1'222'819'200 + 7 * 86400 + 10 * 3600;  // Wed 10:00
  for (int i = 0; i < 30; ++i) {
    trail.push_back({0, 39.90, 116.40, 150, night + i * 60});
    trail.push_back({0, 39.95, 116.50, 150, office + i * 60});
  }
  std::sort(trail.begin(), trail.end(),
            [](const auto& a, const auto& b) { return a.timestamp < b.timestamp; });
  DjClusterConfig config;
  config.radius_m = 40;
  config.min_pts = 5;
  config.duplicate_radius_m = 0.0;  // identical points must survive dedup
  const auto extracted = extract_pois(trail, config);
  const auto score = score_poi_attack(extracted, truth);
  EXPECT_DOUBLE_EQ(score.recall, 1.0);
  EXPECT_DOUBLE_EQ(score.precision, 1.0);
  EXPECT_TRUE(score.home_identified);
  EXPECT_TRUE(score.work_identified);
  EXPECT_LT(score.home_error_m, 10.0);
}

// --- MMC ---------------------------------------------------------------------

TEST(Mmc, TransitionsAreRowStochastic) {
  const auto world = make_world();
  MmcConfig config;
  config.clustering = attack_config();
  const auto mmc = learn_mmc(world.data.trail(0), config);
  ASSERT_FALSE(mmc.states.empty());
  for (std::size_t i = 0; i < mmc.transitions.size(); ++i) {
    double sum = 0;
    for (double p : mmc.transitions[i]) {
      EXPECT_GE(p, 0.0);
      sum += p;
    }
    EXPECT_NEAR(sum, 1.0, 1e-9);
    EXPECT_DOUBLE_EQ(mmc.transitions[i][i], 0.0);
  }
}

TEST(Mmc, StationaryDistributionSumsToOne) {
  const auto world = make_world();
  MmcConfig config;
  config.clustering = attack_config();
  const auto mmc = learn_mmc(world.data.trail(1), config);
  double sum = 0;
  for (double p : mmc.stationary) sum += p;
  EXPECT_NEAR(sum, 1.0, 1e-9);
}

TEST(Mmc, VisitSequenceCollapsesConsecutiveDuplicates) {
  std::vector<PoiCandidate> states(2);
  states[0].latitude = 39.90;
  states[0].longitude = 116.40;
  states[1].latitude = 39.95;
  states[1].longitude = 116.50;
  geo::Trail trail;
  // Dwell at state 0 (3 traces), then state 1 (2 traces), then state 0.
  for (int i = 0; i < 3; ++i) trail.push_back({0, 39.90, 116.40, 0, i});
  for (int i = 3; i < 5; ++i) trail.push_back({0, 39.95, 116.50, 0, i});
  trail.push_back({0, 39.90, 116.40, 0, 6});
  // A far-away point attaches to nothing.
  trail.push_back({0, 45.0, 100.0, 0, 7});
  const auto visits = visit_sequence(trail, states, 100.0);
  EXPECT_EQ(visits, (std::vector<int>{0, 1, 0}));
}

TEST(Mmc, PredictNextReturnsArgmaxRow) {
  MobilityMarkovChain mmc;
  mmc.states.resize(3);
  mmc.transitions = {{0.0, 0.7, 0.3}, {0.9, 0.0, 0.1}, {0.5, 0.5, 0.0}};
  EXPECT_EQ(predict_next(mmc, 0), 1);
  EXPECT_EQ(predict_next(mmc, 1), 0);
  EXPECT_EQ(predict_next(mmc, 2), 0);  // tie -> lowest index
  EXPECT_EQ(predict_next(mmc, -1), -1);
  EXPECT_EQ(predict_next(mmc, 3), -1);
}

TEST(Mmc, PredictionBeatsChanceOnSyntheticUsers) {
  const auto world = make_world(4, 203);
  MmcConfig config;
  config.clustering = attack_config();
  int evaluated = 0;
  double total = 0;
  for (std::int32_t u = 0; u < 4; ++u) {
    const double acc = prediction_accuracy(world.data.trail(u), config);
    if (acc < 0) continue;
    ++evaluated;
    total += acc;
  }
  ASSERT_GT(evaluated, 0);
  // Users have 4-8 POIs; uniform guessing would score ~1/(k-1) < 0.35. The
  // generator's MMC is strongly structured (home<->work dominate).
  EXPECT_GT(total / evaluated, 0.35);
}

TEST(Mmc, DistanceIsSymmetricAndSmallForSelf) {
  const auto world = make_world(3, 204);
  MmcConfig config;
  config.clustering = attack_config();
  const auto a = learn_mmc(world.data.trail(0), config);
  const auto b = learn_mmc(world.data.trail(1), config);
  EXPECT_NEAR(mmc_distance(a, b), mmc_distance(b, a), 1e-9);
  EXPECT_LT(mmc_distance(a, a), 1.0);
  EXPECT_GT(mmc_distance(a, b), mmc_distance(a, a));
}

TEST(Mmc, DeanonymizationLinksSplitTrails) {
  // Split each user's trail in half: learn gallery MMCs from the first
  // halves (identities known) and probe MMCs from the second halves
  // (anonymized). The attack should re-identify most users.
  const auto world = make_world(6, 205);
  MmcConfig config;
  config.clustering = attack_config();

  std::vector<MobilityMarkovChain> gallery, probes;
  std::vector<int> truth;
  for (std::int32_t u = 0; u < 6; ++u) {
    const auto& trail = world.data.trail(u);
    const std::size_t half = trail.size() / 2;
    geo::Trail first(trail.begin(), trail.begin() + static_cast<std::ptrdiff_t>(half));
    geo::Trail second(trail.begin() + static_cast<std::ptrdiff_t>(half), trail.end());
    gallery.push_back(learn_mmc(first, config));
    probes.push_back(learn_mmc(second, config));
    truth.push_back(u);
  }
  const auto result = deanonymization_attack(gallery, probes, truth);
  EXPECT_EQ(result.predicted.size(), 6u);
  EXPECT_GE(result.accuracy, 5.0 / 6.0);
}

TEST(Mmc, DeanonymizationValidatesInput) {
  EXPECT_THROW(deanonymization_attack({}, {MobilityMarkovChain{}}, {}),
               gepeto::CheckFailure);
}

TEST(Mmc, DeanonymizationTieBreakLowestGalleryIndex) {
  // The documented tie-break contract (mmc.h): equidistant gallery MMCs
  // resolve to the lowest gallery index, so attack accuracy is reproducible
  // across kernel backends and gallery chunkings.
  MobilityMarkovChain mmc;
  mmc.states.resize(2);
  mmc.states[0].latitude = 40.0;
  mmc.states[0].longitude = 116.0;
  mmc.states[1].latitude = 40.01;
  mmc.states[1].longitude = 116.01;
  mmc.states[0].num_traces = mmc.states[1].num_traces = 10;
  mmc.transitions = {{0.0, 1.0}, {1.0, 0.0}};
  mmc.stationary = {0.5, 0.5};

  // Three identical gallery entries: every one is exactly equidistant from
  // the probe, so the attack must pick index 0 — not 1 or 2, and not
  // whichever a hash-ordered scan happens to visit last.
  const std::vector<MobilityMarkovChain> gallery = {mmc, mmc, mmc};
  const std::vector<MobilityMarkovChain> probes = {mmc};
  const auto result = deanonymization_attack(gallery, probes, {2});
  ASSERT_EQ(result.predicted.size(), 1u);
  EXPECT_EQ(result.predicted[0], 0);
  EXPECT_EQ(result.correct, 0u);  // truth said 2; the contract says 0 wins
}

}  // namespace
}  // namespace gepeto::core
