// Property-style tests for the privacy-contract verifier (ISSUE 10
// satellite 4): the verifier must pass on everything the sanitizers produce
// — including adversarial populations (duplicate twins, single-trace users,
// all-points-one-cell crowds, exact zone-boundary straddlers) — and fail on
// deliberately corrupted releases, naming the violated contract.
#include <gtest/gtest.h>

#include <string_view>

#include "common/check.h"
#include "gepeto/attacks/privacy_verifier.h"
#include "gepeto/sanitize.h"

namespace gepeto::core {
namespace {

bool has_contract(const PrivacyReport& r, std::string_view contract) {
  for (const auto& v : r.violations)
    if (v.contract == contract) return true;
  return false;
}

// Adversarial population: identical twins, a single-trace user, an
// all-points-one-cell crowd, and a far-away loner (suppression bait).
geo::GeolocatedDataset adversarial_world() {
  geo::GeolocatedDataset d;
  for (int i = 0; i < 6; ++i) {
    d.add({1, 40.001, 116.001, 0, 1000 + i * 600});
    d.add({2, 40.001, 116.001, 0, 1000 + i * 600});  // byte-identical twin
  }
  d.add({3, 40.0012, 116.0012, 0, 4000});  // single-trace user
  for (std::int32_t u = 4; u <= 6; ++u)    // every point in one cell
    for (int i = 0; i < 4; ++i)
      d.add({u, 40.0505, 116.0505, 0, 2000 + u * 5000 + i * 300});
  for (int i = 0; i < 3; ++i) d.add({7, 41.5, 117.5, 0, 1500 + i * 900});
  return d;
}

// One zone; user 10 crosses it twice, user 11 straddles the boundary
// (~289 m is inside a 300 m zone, ~311 m is outside), user 12 never enters.
std::vector<MixZone> boundary_zones() { return {{40.0, 116.0, 300.0}}; }

geo::GeolocatedDataset mix_world(bool with_twins) {
  geo::GeolocatedDataset d;
  d.add({10, 40.01, 116.01, 0, 100});
  d.add({10, 40.0, 116.0, 0, 200});  // zone center: suppressed
  d.add({10, 40.02, 116.02, 0, 300});
  d.add({10, 40.0001, 116.0001, 0, 400});  // ~16 m from center: suppressed
  d.add({10, 40.03, 116.03, 0, 500});
  d.add({11, 40.0026, 116.0, 0, 150});  // ~289 m: inside, suppressed
  d.add({11, 40.0028, 116.0, 0, 250});  // ~311 m: outside, kept
  d.add({11, 40.0026, 116.0, 0, 350});
  d.add({11, 40.0028, 116.0, 0, 450});
  d.add({12, 40.05, 116.05, 0, 120});
  d.add({12, 40.06, 116.06, 0, 220});
  if (with_twins) {
    d.add({13, 40.07, 116.07, 0, 130});
    d.add({14, 40.07, 116.07, 0, 130});  // indistinguishable observation
  }
  return d;
}

// --- cloaking: sanitizer output always satisfies its contract ---------------

TEST(PrivacyVerifier, CloakingPassesOnAdversarialWorld) {
  const auto original = adversarial_world();
  for (const int k : {1, 2, 3}) {
    const auto r = spatial_cloaking(original, k, 200.0, 3);
    const auto report =
        verify_cloaking(original, r.data, CloakingContract{k, 200.0, 3});
    EXPECT_TRUE(report.ok()) << "k=" << k << ": " << report.summary();
    EXPECT_GT(report.checks, 0u);
  }
}

TEST(PrivacyVerifier, CloakingDetectsNudgedCenter) {
  const auto original = adversarial_world();
  const auto r = spatial_cloaking(original, 2, 200.0, 3);
  geo::GeolocatedDataset corrupted;
  bool nudged = false;
  for (const auto& [uid, trail] : r.data) {
    geo::Trail t = trail;
    if (!nudged && !t.empty()) {
      t.front().latitude += 1e-5;  // off the mandated cell center by ~1 m
      nudged = true;
    }
    corrupted.add_trail(uid, std::move(t));
  }
  ASSERT_TRUE(nudged);
  const auto report =
      verify_cloaking(original, corrupted, CloakingContract{2, 200.0, 3});
  EXPECT_FALSE(report.ok());
  EXPECT_TRUE(has_contract(report, "cloak.k_anonymity")) << report.summary();
}

TEST(PrivacyVerifier, CloakingDetectsResurrectedSuppressedTrace) {
  const auto original = adversarial_world();
  const auto r = spatial_cloaking(original, 2, 200.0, 3);
  ASSERT_FALSE(r.data.has_user(7));  // the loner is fully suppressed
  auto corrupted = r.data;
  corrupted.add(original.trail(7).front());  // leak a suppressed trace
  const auto report =
      verify_cloaking(original, corrupted, CloakingContract{2, 200.0, 3});
  EXPECT_FALSE(report.ok());
  EXPECT_TRUE(has_contract(report, "cloak.suppression")) << report.summary();
}

TEST(PrivacyVerifier, CloakingDetectsDeletedTrace) {
  const auto original = adversarial_world();
  const auto r = spatial_cloaking(original, 2, 200.0, 3);
  geo::GeolocatedDataset corrupted;
  for (const auto& [uid, trail] : r.data) {
    geo::Trail t = trail;
    if (uid == 1) t.pop_back();
    corrupted.add_trail(uid, std::move(t));
  }
  const auto report =
      verify_cloaking(original, corrupted, CloakingContract{2, 200.0, 3});
  EXPECT_FALSE(report.ok());
  EXPECT_TRUE(has_contract(report, "cloak.missing")) << report.summary();
}

TEST(PrivacyVerifier, CloakingDetectsFabricatedUser) {
  const auto original = adversarial_world();
  const auto r = spatial_cloaking(original, 2, 200.0, 3);
  auto corrupted = r.data;
  corrupted.add({999, 40.001, 116.001, 0, 1234});
  const auto report =
      verify_cloaking(original, corrupted, CloakingContract{2, 200.0, 3});
  EXPECT_FALSE(report.ok());
  EXPECT_TRUE(has_contract(report, "cloak.fabricated")) << report.summary();
}

TEST(PrivacyVerifier, CloakingRejectsBadContract) {
  EXPECT_THROW(verify_cloaking({}, {}, CloakingContract{0, 200.0, 3}),
               gepeto::CheckFailure);
}

// --- mix zones: boundary semantics and both verification flavors ------------

TEST(PrivacyVerifier, MixZonesPassOnBoundaryStraddlers) {
  const auto original = mix_world(/*with_twins=*/true);
  const auto zones = boundary_zones();
  const auto result = apply_mix_zones(original, zones, 7);
  // 2 in-zone traces of user 10 + the straddler's 2 just-inside points.
  EXPECT_EQ(result.suppressed_traces, 4u);
  // Each user re-emerges from the zone twice.
  EXPECT_EQ(result.pseudonym_changes, 4u);
  const auto report = verify_mix_zones(original, result, zones);
  EXPECT_TRUE(report.ok()) << report.summary();
}

TEST(PrivacyVerifier, MixZoneReleasePassesWithoutOwnerMap) {
  // The adversarial flavor — owners re-derived from observations alone —
  // agrees with the owner-map flavor on a twin-free release.
  const auto original = mix_world(/*with_twins=*/false);
  const auto zones = boundary_zones();
  const auto result = apply_mix_zones(original, zones, 7);
  const auto report = verify_mix_zones_release(original, result.data, zones);
  EXPECT_TRUE(report.ok()) << report.summary();
}

TEST(PrivacyVerifier, MixZoneReleaseFlagsIndistinguishableTwins) {
  // Twins who logged the exact same observation cannot be attributed from
  // the release alone: the verifier must say "unverifiable", never guess.
  const auto original = mix_world(/*with_twins=*/true);
  const auto zones = boundary_zones();
  const auto result = apply_mix_zones(original, zones, 7);
  const auto report = verify_mix_zones_release(original, result.data, zones);
  EXPECT_FALSE(report.ok());
  EXPECT_TRUE(has_contract(report, "mixzone.unverifiable"))
      << report.summary();
}

TEST(PrivacyVerifier, MixZonesDetectInZoneInjection) {
  const auto original = mix_world(/*with_twins=*/false);
  const auto zones = boundary_zones();
  const auto result = apply_mix_zones(original, zones, 7);
  auto corrupted = result.data;
  corrupted.add({12, 40.0, 116.0, 0, 999});  // inside the zone
  const auto report = verify_mix_zones_release(original, corrupted, zones);
  EXPECT_FALSE(report.ok());
  EXPECT_TRUE(has_contract(report, "mixzone.zone_leak")) << report.summary();
}

TEST(PrivacyVerifier, MixZonesDetectPseudonymMerge) {
  // Rename one post-crossing pseudonym back to its owner's id — exactly the
  // linkage a mix zone exists to prevent.
  const auto original = mix_world(/*with_twins=*/false);
  const auto zones = boundary_zones();
  const auto result = apply_mix_zones(original, zones, 7);
  std::int32_t pid = -1, owner = -1;
  for (const auto& [p, o] : result.pseudonym_owner)
    if (p != o) {
      pid = p;
      owner = o;
      break;
    }
  ASSERT_NE(pid, -1);
  geo::GeolocatedDataset corrupted;
  for (const auto& [uid, trail] : result.data) {
    if (uid != pid) {
      corrupted.add_trail(uid, trail);
      continue;
    }
    for (geo::MobilityTrace t : trail) {
      t.user_id = owner;
      corrupted.add(t);
    }
  }
  const auto report = verify_mix_zones_release(original, corrupted, zones);
  EXPECT_FALSE(report.ok());
  EXPECT_TRUE(has_contract(report, "mixzone.pseudonym_reuse"))
      << report.summary();
}

TEST(PrivacyVerifier, MixZonesDetectDeletedTrace) {
  const auto original = mix_world(/*with_twins=*/false);
  const auto zones = boundary_zones();
  const auto result = apply_mix_zones(original, zones, 7);
  geo::GeolocatedDataset corrupted;
  bool dropped = false;
  for (const auto& [uid, trail] : result.data) {
    geo::Trail t = trail;
    if (!dropped && !t.empty()) {
      t.pop_back();
      dropped = true;
    }
    corrupted.add_trail(uid, std::move(t));
  }
  ASSERT_TRUE(dropped);
  const auto report = verify_mix_zones_release(original, corrupted, zones);
  EXPECT_FALSE(report.ok());
  EXPECT_TRUE(has_contract(report, "mixzone.missing") ||
              has_contract(report, "mixzone.conservation"))
      << report.summary();
}

TEST(PrivacyVerifier, ReportMergeAndSummaryCapViolations) {
  PrivacyReport a;
  for (int i = 0; i < 40; ++i)
    a.add_violation("test.contract", "violation " + std::to_string(i));
  EXPECT_EQ(a.violation_count, 40u);
  EXPECT_EQ(a.violations.size(), PrivacyReport::kMaxRecordedViolations);
  PrivacyReport b;
  b.checks = 5;
  b.add_violation("test.other", "x");
  a.merge(b);
  EXPECT_EQ(a.violation_count, 41u);
  EXPECT_EQ(a.violations.size(), PrivacyReport::kMaxRecordedViolations);
  EXPECT_NE(a.summary().find("41 violations"), std::string::npos);
}

}  // namespace
}  // namespace gepeto::core
