// Tests for the out-of-core shuffle (storage/spill.h + engine integration):
// under any sort_memory_budget_bytes the job output must be byte-identical
// to the fully in-memory run on both the thread and process backends, spill
// telemetry must reflect the disk runs, scratch files must never outlive the
// job, and budgets on non-wireable intermediates must be rejected up front.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdlib>
#include <filesystem>
#include <map>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include <unistd.h>

#include "geo/generator.h"
#include "geo/geolife.h"
#include "gepeto/kmeans.h"
#include "gepeto/sampling.h"
#include "mapreduce/engine.h"
#include "storage/colfile.h"
#include "storage/spill.h"

namespace gepeto {
namespace {

namespace fs = std::filesystem;

mr::ClusterConfig thread_cluster(std::size_t chunk = 64) {
  mr::ClusterConfig c;
  c.num_worker_nodes = 4;
  c.nodes_per_rack = 2;
  c.chunk_size = chunk;
  c.execution_threads = 2;
  c.seed = 7;
  return c;
}

mr::ClusterConfig process_cluster(std::size_t chunk = 64) {
  mr::ClusterConfig c = thread_cluster(chunk);
  c.backend = mr::ExecutionBackend::kProcess;
  c.process_workers = 2;
  c.worker_heartbeat_interval_s = 0.01;
  c.worker_heartbeat_timeout_s = 5.0;
  c.worker_respawn_backoff_base_s = 0.01;
  c.worker_respawn_backoff_cap_s = 0.1;
  return c;
}

void put_corpus(mr::Dfs& dfs) {
  std::string big;
  for (int i = 0; i < 40; ++i) {
    big += "alpha beta gamma delta epsilon zeta\n";
    big += "beta beta gamma word" + std::to_string(i % 7) + "\n";
  }
  dfs.put("/in/a", big);
  dfs.put("/in/b", "omega alpha omega\nzeta zeta zeta word3\n");
}

std::map<std::string, std::string> outputs(const mr::Dfs& dfs,
                                           const std::string& prefix) {
  std::map<std::string, std::string> m;
  for (const auto& p : dfs.list(prefix)) m[p] = std::string(dfs.read(p));
  return m;
}

struct WcMapper {
  using OutKey = std::string;
  using OutValue = std::int64_t;
  void map(std::int64_t, std::string_view line,
           mr::MapContext<OutKey, OutValue>& ctx) {
    std::size_t i = 0;
    while (i < line.size()) {
      while (i < line.size() && line[i] == ' ') ++i;
      std::size_t j = i;
      while (j < line.size() && line[j] != ' ') ++j;
      if (j > i) ctx.emit(std::string(line.substr(i, j - i)), 1);
      i = j;
    }
  }
};

struct WcReducer {
  void reduce(const std::string& key, std::span<const std::int64_t> values,
              mr::ReduceContext& ctx) {
    std::int64_t sum = 0;
    for (auto v : values) sum += v;
    ctx.write(key + "\t" + std::to_string(sum));
  }
};

struct WcCombiner {
  void combine(const std::string& key, std::span<const std::int64_t> values,
               mr::MapContext<std::string, std::int64_t>& ctx) {
    std::int64_t sum = 0;
    for (auto v : values) sum += v;
    ctx.emit(key, sum);
  }
};

mr::JobConfig wc_job(std::uint64_t budget, bool combiner = false) {
  mr::JobConfig job;
  job.name = "wc-oocore";
  job.input = "/in";
  job.output = "/out";
  job.num_reducers = 3;
  job.use_combiner = combiner;
  job.sort_memory_budget_bytes = budget;
  return job;
}

mr::JobResult run_wc(mr::Dfs& dfs, const mr::ClusterConfig& cluster,
                     const mr::JobConfig& job) {
  if (job.use_combiner)
    return mr::run_mapreduce_job(
        dfs, cluster, job, [] { return WcMapper{}; }, [] { return WcReducer{}; },
        [] { return WcCombiner{}; });
  return mr::run_mapreduce_job(dfs, cluster, job, [] { return WcMapper{}; },
                               [] { return WcReducer{}; });
}

/// RAII scratch dir + env override so every spill file of the test lands in
/// a directory we can inspect for leftovers.
class ScopedScratchDir {
 public:
  ScopedScratchDir() {
    dir_ = fs::temp_directory_path() /
           ("oocore-test-" + std::to_string(::getpid()) + "-" +
            std::to_string(counter_++));
    fs::create_directories(dir_);
    ::setenv("GEPETO_SCRATCH_DIR", dir_.c_str(), 1);
  }
  ~ScopedScratchDir() {
    ::unsetenv("GEPETO_SCRATCH_DIR");
    std::error_code ec;
    fs::remove_all(dir_, ec);
  }

  const fs::path& dir() const { return dir_; }

  std::vector<std::string> leftovers() const {
    std::vector<std::string> out;
    for (const auto& e : fs::directory_iterator(dir_))
      out.push_back(e.path().filename().string());
    return out;
  }

 private:
  static inline int counter_ = 0;
  fs::path dir_;
};

// --- byte identity across budgets -------------------------------------------

TEST(OocoreSpill, ThreadBackendTinyBudgetMatchesInMemory) {
  ScopedScratchDir scratch;

  mr::Dfs ref_dfs(thread_cluster());
  put_corpus(ref_dfs);
  const auto ref = run_wc(ref_dfs, thread_cluster(), wc_job(0));
  EXPECT_EQ(ref.disk_spill_runs, 0u);
  EXPECT_EQ(ref.disk_spill_bytes, 0u);

  for (std::uint64_t budget : {1ull, 64ull, 4096ull}) {
    mr::Dfs dfs(thread_cluster());
    put_corpus(dfs);
    const auto r = run_wc(dfs, thread_cluster(), wc_job(budget));
    EXPECT_EQ(outputs(dfs, "/out/"), outputs(ref_dfs, "/out/"))
        << "budget " << budget;
    // Emit-time shuffle accounting is independent of where the runs live.
    EXPECT_EQ(r.map_output_records, ref.map_output_records);
    EXPECT_EQ(r.shuffle_bytes, ref.shuffle_bytes);
    // Tighter budgets flush more often, so the run count only grows.
    EXPECT_GE(r.spill_runs, ref.spill_runs);
    EXPECT_EQ(r.reduce_input_groups, ref.reduce_input_groups);
    if (budget <= 64) {
      EXPECT_GT(r.disk_spill_runs, 0u) << "budget " << budget;
      EXPECT_GT(r.disk_spill_bytes, 0u) << "budget " << budget;
    }
  }
  EXPECT_TRUE(scratch.leftovers().empty())
      << "scratch leftovers: " << scratch.leftovers().front();
}

TEST(OocoreSpill, CombinerRunsOverSpilledRunsIdentically) {
  ScopedScratchDir scratch;

  mr::Dfs ref_dfs(thread_cluster());
  put_corpus(ref_dfs);
  const auto ref = run_wc(ref_dfs, thread_cluster(),
                          wc_job(0, /*combiner=*/true));

  mr::Dfs dfs(thread_cluster());
  put_corpus(dfs);
  const auto r = run_wc(dfs, thread_cluster(), wc_job(32, /*combiner=*/true));

  EXPECT_EQ(outputs(dfs, "/out/"), outputs(ref_dfs, "/out/"));
  EXPECT_EQ(r.combine_output_records, ref.combine_output_records);
  EXPECT_EQ(r.reduce_input_groups, ref.reduce_input_groups);
  EXPECT_GT(r.disk_spill_runs, 0u);
  EXPECT_TRUE(scratch.leftovers().empty());
}

TEST(OocoreSpill, ProcessBackendTinyBudgetMatchesInMemory) {
  ScopedScratchDir scratch;

  mr::Dfs ref_dfs(thread_cluster());
  put_corpus(ref_dfs);
  run_wc(ref_dfs, thread_cluster(), wc_job(0));

  mr::Dfs dfs(process_cluster());
  put_corpus(dfs);
  const auto r = run_wc(dfs, process_cluster(), wc_job(48));

  EXPECT_EQ(outputs(dfs, "/out/"), outputs(ref_dfs, "/out/"));
  EXPECT_GT(r.disk_spill_runs, 0u);
  EXPECT_TRUE(scratch.leftovers().empty())
      << "scratch leftovers: " << scratch.leftovers().front();
}

TEST(OocoreSpill, RetriedMapTasksUnderBudgetStillMatch) {
  ScopedScratchDir scratch;

  mr::Dfs ref_dfs(thread_cluster());
  put_corpus(ref_dfs);
  run_wc(ref_dfs, thread_cluster(), wc_job(0));

  // Crash the first attempt of two map tasks and one reduce task: the retry
  // re-spills under a fresh attempt stem and must converge to the same bytes.
  mr::JobConfig job = wc_job(32);
  job.fault_plan.crashes.push_back({/*phase=*/1, /*task=*/0, /*attempt=*/0});
  job.fault_plan.crashes.push_back({/*phase=*/1, /*task=*/2, /*attempt=*/0});
  job.fault_plan.crashes.push_back({/*phase=*/2, /*task=*/1, /*attempt=*/0});

  mr::Dfs dfs(thread_cluster());
  put_corpus(dfs);
  const auto r = run_wc(dfs, thread_cluster(), job);

  EXPECT_EQ(outputs(dfs, "/out/"), outputs(ref_dfs, "/out/"));
  EXPECT_GE(r.failed_task_attempts, 3);
  EXPECT_GT(r.disk_spill_runs, 0u);
  EXPECT_TRUE(scratch.leftovers().empty());
}

TEST(OocoreSpill, EnvBudgetAppliesWhenJobDoesNotSetOne) {
  ScopedScratchDir scratch;
  ::setenv("GEPETO_SORT_MEMORY_BUDGET", "32", 1);

  mr::Dfs dfs(thread_cluster());
  put_corpus(dfs);
  const auto r = run_wc(dfs, thread_cluster(), wc_job(0));
  ::unsetenv("GEPETO_SORT_MEMORY_BUDGET");

  EXPECT_GT(r.disk_spill_runs, 0u);
  EXPECT_TRUE(scratch.leftovers().empty());
}

// --- telemetry ---------------------------------------------------------------

TEST(OocoreSpill, TelemetryReportsRunsBytesAndMergeTime) {
  mr::Dfs dfs(thread_cluster());
  put_corpus(dfs);
  const auto r = run_wc(dfs, thread_cluster(), wc_job(1));
  EXPECT_GT(r.disk_spill_runs, 0u);
  EXPECT_GT(r.disk_spill_bytes, 0u);
  EXPECT_GE(r.external_merge_seconds, 0.0);
}

// --- budgets on non-wireable intermediates -----------------------------------

struct OpaqueValue {
  std::vector<int> v;
  std::uint64_t serialized_size() const { return 4 * v.size() + 8; }
};

struct OpaqueMapper {
  using OutKey = std::int32_t;
  using OutValue = OpaqueValue;
  void map(std::int64_t, std::string_view line,
           mr::MapContext<OutKey, OutValue>& ctx) {
    ctx.emit(0, OpaqueValue{{static_cast<int>(line.size())}});
  }
};

struct OpaqueReducer {
  void reduce(const std::int32_t&, std::span<const OpaqueValue> values,
              mr::ReduceContext& ctx) {
    std::size_t n = 0;
    for (const auto& v : values) n += v.v.size();
    ctx.write(std::to_string(n));
  }
};

TEST(OocoreSpill, BudgetOnNonWireableIntermediatesIsInvalidConfig) {
  mr::Dfs dfs(thread_cluster());
  put_corpus(dfs);
  mr::JobConfig job;
  job.name = "opaque-budget";
  job.input = "/in";
  job.output = "/out";
  job.sort_memory_budget_bytes = 1024;
  try {
    mr::run_mapreduce_job(dfs, thread_cluster(), job,
                          [] { return OpaqueMapper{}; },
                          [] { return OpaqueReducer{}; });
    FAIL() << "expected JobError";
  } catch (const mr::JobError& e) {
    EXPECT_EQ(e.kind(), mr::JobError::Kind::kInvalidConfig);
  }
  // Without a budget the same job runs on the thread backend.
  job.name = "opaque-ok";
  job.output = "/out2";
  job.sort_memory_budget_bytes = 0;
  EXPECT_NO_THROW(mr::run_mapreduce_job(dfs, thread_cluster(), job,
                                        [] { return OpaqueMapper{}; },
                                        [] { return OpaqueReducer{}; }));
}

// --- driver-level identity ---------------------------------------------------

TEST(OocoreSpill, ExactSamplingIsByteIdenticalAtAnyBudget) {
  ScopedScratchDir scratch;
  const auto world = geo::generate_dataset(
      geo::scaled_config(/*num_users=*/5, /*target_traces=*/3000, /*seed=*/3));
  const core::SamplingConfig sconfig{60, core::SamplingTechnique::kUpperLimit};

  mr::Dfs ref_dfs(thread_cluster(4096));
  geo::dataset_to_dfs(ref_dfs, "/geolife", world.data, 4);
  core::run_sampling_job_exact(ref_dfs, thread_cluster(4096), "/geolife/",
                               "/sampled", sconfig);

  mr::Dfs dfs(thread_cluster(4096));
  geo::dataset_to_dfs(dfs, "/geolife", world.data, 4);
  core::run_sampling_job_exact(dfs, thread_cluster(4096), "/geolife/",
                               "/sampled", sconfig, /*num_reducers=*/4,
                               /*failures=*/{}, /*fault_plan=*/{},
                               /*sort_memory_budget_bytes=*/512);

  EXPECT_EQ(outputs(dfs, "/sampled/"), outputs(ref_dfs, "/sampled/"));
  EXPECT_TRUE(scratch.leftovers().empty());
}

TEST(OocoreSpill, ColumnarKMeansCentroidsMatchAtAnyBudget) {
  ScopedScratchDir scratch;
  const auto world = geo::generate_dataset(
      geo::scaled_config(/*num_users=*/4, /*target_traces=*/2000, /*seed=*/5));

  core::KMeansConfig config;
  config.k = 4;
  config.max_iterations = 3;
  config.seed = 17;
  config.columnar_input = true;

  mr::Dfs ref_dfs(thread_cluster(4096));
  storage::dataset_to_dfs_columnar(ref_dfs, "/col", world.data, 3);
  const auto ref = core::kmeans_mapreduce(ref_dfs, thread_cluster(4096),
                                          "/col/", "/clusters", config);

  config.sort_memory_budget_bytes = 256;
  mr::Dfs dfs(thread_cluster(4096));
  storage::dataset_to_dfs_columnar(dfs, "/col", world.data, 3);
  const auto r = core::kmeans_mapreduce(dfs, thread_cluster(4096), "/col/",
                                        "/clusters", config);

  ASSERT_EQ(r.centroids.size(), ref.centroids.size());
  for (std::size_t i = 0; i < r.centroids.size(); ++i) {
    EXPECT_EQ(r.centroids[i].latitude, ref.centroids[i].latitude) << i;
    EXPECT_EQ(r.centroids[i].longitude, ref.centroids[i].longitude) << i;
  }
  EXPECT_EQ(r.cluster_sizes, ref.cluster_sizes);
  EXPECT_EQ(r.sse, ref.sse);
  EXPECT_GT(r.totals.disk_spill_runs, 0u);
  EXPECT_TRUE(scratch.leftovers().empty());
}

}  // namespace
}  // namespace gepeto
