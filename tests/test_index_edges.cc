// Edge cases of the spatial primitives the indexes are built on:
// degenerate and invalid rectangles, antimeridian-adjacent boxes (the Rect
// model is planar — boxes never wrap, so both sides of the 180th meridian
// behave as ordinary far-apart boxes), NaN handling in the scalar mapper,
// and monotonicity/identity sweeps of the space-filling curves.
#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <vector>

#include "index/bbox.h"
#include "index/sfc.h"

namespace gepeto::index {
namespace {

constexpr double kNan = std::numeric_limits<double>::quiet_NaN();
constexpr double kInf = std::numeric_limits<double>::infinity();

TEST(RectEdge, DefaultIsInvalidAndAbsorbsFirstExpand) {
  Rect r;
  EXPECT_FALSE(r.valid());
  EXPECT_EQ(r.area(), 0.0);
  r.expand(Rect::point(39.9, 116.4));
  EXPECT_TRUE(r.valid());
  EXPECT_EQ(r, Rect::point(39.9, 116.4));
}

TEST(RectEdge, DegeneratePointAndLineBoxes) {
  const Rect p = Rect::point(10.0, 20.0);
  EXPECT_TRUE(p.valid());
  EXPECT_EQ(p.area(), 0.0);
  EXPECT_TRUE(p.contains(10.0, 20.0));
  EXPECT_TRUE(p.intersects(p));
  EXPECT_EQ(p.min_dist2(10.0, 20.0), 0.0);

  // A zero-height line box still intersects and contains correctly.
  const Rect line = Rect::of(10.0, 20.0, 10.0, 25.0);
  EXPECT_TRUE(line.valid());
  EXPECT_EQ(line.area(), 0.0);
  EXPECT_TRUE(line.contains(10.0, 22.0));
  EXPECT_FALSE(line.contains(10.1, 22.0));
  EXPECT_TRUE(line.intersects(p));
  EXPECT_DOUBLE_EQ(line.min_dist2(11.0, 22.0), 1.0);
}

TEST(RectEdge, InvertedBoxIsInvalidButInert) {
  const Rect inv = Rect::of(5.0, 5.0, -5.0, -5.0);
  EXPECT_FALSE(inv.valid());
  EXPECT_EQ(inv.area(), 0.0);
  // enlargement() on an invalid box degenerates to the other box's area.
  const Rect unit = Rect::of(0.0, 0.0, 1.0, 1.0);
  EXPECT_DOUBLE_EQ(inv.enlargement(unit), unit.expanded(inv).area());
}

TEST(RectEdge, AntimeridianAdjacentBoxesDoNotWrap) {
  // The planar Rect model: a box ending at lon 180 and one starting at
  // -180 are far apart, not neighbors. Callers that need wrap-around must
  // split their query; these assertions pin that contract.
  const Rect east = Rect::of(-10.0, 170.0, 10.0, 180.0);
  const Rect west = Rect::of(-10.0, -180.0, 10.0, -170.0);
  EXPECT_FALSE(east.intersects(west));
  EXPECT_TRUE(east.contains(0.0, 180.0));
  EXPECT_TRUE(west.contains(0.0, -180.0));
  // Distance from a point just west of the antimeridian to the west box is
  // the long way around in degree space.
  EXPECT_DOUBLE_EQ(east.min_dist2(0.0, 180.0), 0.0);
  EXPECT_NEAR(west.min_dist2(0.0, 179.0), 349.0 * 349.0, 1e-6);
  // Both merge into one (over-wide) box, as planar expand promises.
  const Rect merged = east.expanded(west);
  EXPECT_DOUBLE_EQ(merged.min_lon, -180.0);
  EXPECT_DOUBLE_EQ(merged.max_lon, 180.0);
}

TEST(RectEdge, NanCoordinatesNeverSatisfyContains) {
  const Rect r = Rect::of(0.0, 0.0, 10.0, 10.0);
  EXPECT_FALSE(r.contains(kNan, 5.0));
  EXPECT_FALSE(r.contains(5.0, kNan));
  // A NaN-cornered box is invalid and intersects nothing.
  const Rect bad = Rect::of(kNan, 0.0, 10.0, 10.0);
  EXPECT_FALSE(bad.valid());
  EXPECT_FALSE(bad.intersects(r) && r.intersects(bad));
}

TEST(ScalarMapperEdge, NanAndInfiniteCoordinatesAreDeterministic) {
  const ScalarMapper m(CurveKind::kZOrder, Rect::of(0, 0, 10, 10), 8);
  // NaN lands in cell 0 of its axis; infinities clamp to the edges.
  EXPECT_EQ(m.scalar(kNan, kNan), m.scalar(0.0, 0.0));
  EXPECT_EQ(m.scalar(kNan, 5.0), m.scalar(0.0, 5.0));
  EXPECT_EQ(m.scalar(kInf, 5.0), m.scalar(10.0, 5.0));
  EXPECT_EQ(m.scalar(-kInf, 5.0), m.scalar(0.0, 5.0));
  EXPECT_EQ(m.scalar(5.0, kInf), m.scalar(5.0, 10.0));
}

TEST(ScalarMapperEdge, DegenerateBoundsCollapseToOneCell) {
  const ScalarMapper m(CurveKind::kHilbert, Rect::point(39.9, 116.4), 8);
  EXPECT_EQ(m.scalar(39.9, 116.4), 0u);
  EXPECT_EQ(m.scalar(0.0, 0.0), 0u);
  EXPECT_EQ(m.scalar(90.0, 180.0), 0u);
}

TEST(ZOrderEdge, PerCoordinateMonotonicityGridSweep) {
  // Fixing one coordinate, the Z-order key is strictly monotone in the
  // other (interleaving preserves per-axis order). Sweep a 64x64 grid.
  const int order = 6;
  for (std::uint32_t y = 0; y < 64; ++y) {
    std::uint64_t prev = zorder_encode(0, y, order);
    for (std::uint32_t x = 1; x < 64; ++x) {
      const std::uint64_t cur = zorder_encode(x, y, order);
      ASSERT_GT(cur, prev) << "x=" << x << " y=" << y;
      prev = cur;
    }
  }
  for (std::uint32_t x = 0; x < 64; ++x) {
    std::uint64_t prev = zorder_encode(x, 0, order);
    for (std::uint32_t y = 1; y < 64; ++y) {
      const std::uint64_t cur = zorder_encode(x, y, order);
      ASSERT_GT(cur, prev) << "x=" << x << " y=" << y;
      prev = cur;
    }
  }
}

TEST(ZOrderEdge, EncodeDecodeIdentityGridSweep) {
  const int order = 6;
  for (std::uint32_t x = 0; x < 64; ++x) {
    for (std::uint32_t y = 0; y < 64; ++y) {
      std::uint32_t dx, dy;
      zorder_decode(zorder_encode(x, y, order), dx, dy, order);
      ASSERT_EQ(dx, x);
      ASSERT_EQ(dy, y);
    }
  }
  // Full 32-bit corners round-trip too.
  for (const std::uint32_t v : {0u, 1u, 0x7FFFFFFFu, 0xFFFFFFFFu}) {
    std::uint32_t dx, dy;
    zorder_decode(zorder_encode(v, ~v, 32), dx, dy, 32);
    EXPECT_EQ(dx, v);
    EXPECT_EQ(dy, ~v);
  }
}

TEST(HilbertEdge, EncodeDecodeIdentityAndBijectionGridSweep) {
  // The Hilbert curve of order k is a bijection between cells and
  // [0, 4^k): every distance must decode back, and all must be distinct.
  const int order = 5;  // 32x32 grid
  std::vector<bool> seen(1u << (2 * order), false);
  for (std::uint32_t x = 0; x < 32; ++x) {
    for (std::uint32_t y = 0; y < 32; ++y) {
      const std::uint64_t d = hilbert_encode(x, y, order);
      ASSERT_LT(d, seen.size());
      ASSERT_FALSE(seen[d]) << "collision at x=" << x << " y=" << y;
      seen[d] = true;
      std::uint32_t dx, dy;
      hilbert_decode(d, dx, dy, order);
      ASSERT_EQ(dx, x);
      ASSERT_EQ(dy, y);
    }
  }
}

TEST(HilbertEdge, ConsecutiveDistancesAreAdjacentCells) {
  // The defining locality property: walking the curve moves one cell per
  // step (Manhattan distance exactly 1).
  const int order = 5;
  std::uint32_t px, py;
  hilbert_decode(0, px, py, order);
  for (std::uint64_t d = 1; d < (1u << (2 * order)); ++d) {
    std::uint32_t x, y;
    hilbert_decode(d, x, y, order);
    const std::uint32_t manhattan =
        (x > px ? x - px : px - x) + (y > py ? y - py : py - y);
    ASSERT_EQ(manhattan, 1u) << "d=" << d;
    px = x;
    py = y;
  }
}

}  // namespace
}  // namespace gepeto::index
