// Tests for k-means (paper Section VI): initialization, assignment, the
// sequential/MapReduce agreement, combiner behaviour, distance metrics, and
// convergence properties (SSE non-increasing).
#include <gtest/gtest.h>

#include <cmath>

#include "common/check.h"
#include "geo/generator.h"
#include "geo/geolife.h"
#include "gepeto/kmeans.h"
#include "mapreduce/dfs.h"

namespace gepeto::core {
namespace {

using geo::GeolocatedDataset;

mr::ClusterConfig small_cluster(std::size_t chunk = 1 << 16) {
  mr::ClusterConfig c;
  c.num_worker_nodes = 4;
  c.nodes_per_rack = 2;
  c.chunk_size = chunk;
  c.execution_threads = 2;
  return c;
}

/// Three well-separated blobs of points.
GeolocatedDataset blob_dataset(int per_blob = 50, std::uint64_t seed = 5) {
  gepeto::Rng rng(seed);
  const double centers[3][2] = {{39.90, 116.40}, {39.95, 116.50}, {40.00, 116.30}};
  GeolocatedDataset ds;
  std::int64_t ts = 1'222'819'200;
  geo::Trail trail;
  for (int b = 0; b < 3; ++b)
    for (int i = 0; i < per_blob; ++i)
      trail.push_back({0, centers[b][0] + rng.gaussian(0, 0.001),
                       centers[b][1] + rng.gaussian(0, 0.001), 150.0, ts++});
  ds.add_trail(0, std::move(trail));
  return ds;
}

TEST(InitialCentroids, DeterministicAndWithinData) {
  const auto ds = blob_dataset();
  const auto a = initial_centroids(ds, 5, 1);
  const auto b = initial_centroids(ds, 5, 1);
  ASSERT_EQ(a.size(), 5u);
  for (std::size_t i = 0; i < 5; ++i) {
    EXPECT_DOUBLE_EQ(a[i].latitude, b[i].latitude);
    EXPECT_DOUBLE_EQ(a[i].longitude, b[i].longitude);
    EXPECT_GE(a[i].latitude, 39.8);
    EXPECT_LE(a[i].latitude, 40.1);
  }
  const auto c = initial_centroids(ds, 5, 2);
  bool any_diff = false;
  for (std::size_t i = 0; i < 5; ++i)
    any_diff |= (a[i].latitude != c[i].latitude);
  EXPECT_TRUE(any_diff);
}

TEST(InitialCentroids, RequiresEnoughTraces) {
  GeolocatedDataset ds;
  ds.add({0, 39.9, 116.4, 0, 1});
  EXPECT_THROW(initial_centroids(ds, 2, 1), gepeto::CheckFailure);
}

TEST(NearestCentroid, TiesGoToLowestIndex) {
  const std::vector<Centroid> cs{{0.0, 0.0}, {0.0, 2.0}};
  // Point equidistant from both.
  EXPECT_EQ(nearest_centroid(cs, geo::DistanceKind::kSquaredEuclidean, 0.0,
                             1.0),
            0u);
}

TEST(NearestCentroid, RespectsMetric) {
  // Manhattan and Euclidean can disagree: point (0.9, 0.9) vs centroids
  // (1.5, 0) and (1.1, 1.1).
  const std::vector<Centroid> cs{{1.5, 0.0}, {1.1, 1.1}};
  EXPECT_EQ(nearest_centroid(cs, geo::DistanceKind::kEuclidean, 0.9, 0.9), 1u);
  EXPECT_EQ(nearest_centroid(cs, geo::DistanceKind::kSquaredEuclidean, 0.9,
                             0.9),
            1u);
}

TEST(CentroidLines, RoundTrip) {
  const std::vector<Centroid> cs{{39.9, 116.4}, {40.0, 116.5}};
  const auto back = centroids_from_lines(centroids_to_lines(cs));
  ASSERT_EQ(back.size(), 2u);
  EXPECT_DOUBLE_EQ(back[1].longitude, 116.5);
  EXPECT_THROW(centroids_from_lines("not,a,centroid,line,x"),
               gepeto::CheckFailure);
}

TEST(KMeansSequential, RecoversWellSeparatedBlobs) {
  const auto ds = blob_dataset(80);
  KMeansConfig config;
  config.k = 3;
  config.seed = 3;
  config.kmeanspp_init = true;  // uniform init can collapse two blobs
  config.max_iterations = 50;
  const auto r = kmeans_sequential(ds, config);
  EXPECT_TRUE(r.converged);
  // Every blob center should be within ~300 m of some centroid.
  for (const auto& center :
       {std::pair{39.90, 116.40}, {39.95, 116.50}, {40.00, 116.30}}) {
    double best = 1e18;
    for (const auto& c : r.centroids)
      best = std::min(best, geo::haversine_meters(center.first, center.second,
                                                  c.latitude, c.longitude));
    EXPECT_LT(best, 300.0);
  }
  std::uint64_t total = 0;
  for (auto s : r.cluster_sizes) total += s;
  EXPECT_EQ(total, ds.num_traces());
}

TEST(KMeansSequential, SseNonIncreasingWithIterations) {
  const auto ds = blob_dataset(60, 9);
  double prev_sse = 1e18;
  for (int iters = 1; iters <= 6; ++iters) {
    KMeansConfig config;
    config.k = 3;
    config.seed = 4;
    config.max_iterations = iters;
    config.convergence_delta_m = 0.0;  // never early-stop
    const auto r = kmeans_sequential(ds, config);
    EXPECT_LE(r.sse, prev_sse * (1 + 1e-9)) << "at iteration " << iters;
    prev_sse = r.sse;
  }
}

TEST(KMeansSequential, KmeansPpInitConverges) {
  const auto ds = blob_dataset(60, 10);
  KMeansConfig config;
  config.k = 3;
  config.seed = 5;
  config.kmeanspp_init = true;
  const auto r = kmeans_sequential(ds, config);
  EXPECT_TRUE(r.converged);
  EXPECT_GT(r.iterations, 0);
}

TEST(KMeansSequential, KEqualsOneAveragesEverything) {
  const auto ds = blob_dataset(20, 11);
  KMeansConfig config;
  config.k = 1;
  config.max_iterations = 10;
  const auto r = kmeans_sequential(ds, config);
  EXPECT_TRUE(r.converged);
  EXPECT_EQ(r.cluster_sizes[0], ds.num_traces());
}

TEST(KMeansMapReduce, MatchesSequentialTrajectory) {
  const auto ds = blob_dataset(60, 12);
  KMeansConfig config;
  config.k = 3;
  config.seed = 6;
  config.max_iterations = 8;
  config.convergence_delta_m = 0.0;  // run all 8 iterations in both paths

  const auto seq = kmeans_sequential(ds, config);

  mr::Dfs dfs(small_cluster(4096));
  geo::dataset_to_dfs(dfs, "/in", ds, 2);
  const auto mr_r = kmeans_mapreduce(dfs, small_cluster(4096), "/in/",
                                     "/clusters", config);

  EXPECT_EQ(mr_r.iterations, seq.iterations);
  ASSERT_EQ(mr_r.centroids.size(), seq.centroids.size());
  for (std::size_t i = 0; i < seq.centroids.size(); ++i) {
    EXPECT_NEAR(mr_r.centroids[i].latitude, seq.centroids[i].latitude, 1e-7);
    EXPECT_NEAR(mr_r.centroids[i].longitude, seq.centroids[i].longitude, 1e-7);
  }
  EXPECT_NEAR(mr_r.sse, seq.sse, seq.sse * 1e-6 + 1e-12);
}

TEST(KMeansMapReduce, CombinerDoesNotChangeResultButShrinksShuffle) {
  const auto ds = blob_dataset(60, 13);
  KMeansConfig config;
  config.k = 3;
  config.seed = 7;
  config.max_iterations = 4;
  config.convergence_delta_m = 0.0;

  mr::Dfs dfs1(small_cluster(4096));
  geo::dataset_to_dfs(dfs1, "/in", ds, 2);
  const auto plain = kmeans_mapreduce(dfs1, small_cluster(4096), "/in/",
                                      "/clusters", config);

  config.use_combiner = true;
  mr::Dfs dfs2(small_cluster(4096));
  geo::dataset_to_dfs(dfs2, "/in", ds, 2);
  const auto combined = kmeans_mapreduce(dfs2, small_cluster(4096), "/in/",
                                         "/clusters", config);

  ASSERT_EQ(plain.centroids.size(), combined.centroids.size());
  for (std::size_t i = 0; i < plain.centroids.size(); ++i) {
    EXPECT_NEAR(plain.centroids[i].latitude, combined.centroids[i].latitude,
                1e-9);
    EXPECT_NEAR(plain.centroids[i].longitude, combined.centroids[i].longitude,
                1e-9);
  }
  EXPECT_LT(combined.totals.shuffle_bytes, plain.totals.shuffle_bytes / 4);
}

TEST(KMeansMapReduce, HaversineAndEuclideanBothCluster) {
  const auto ds = blob_dataset(40, 14);
  for (auto kind : {geo::DistanceKind::kSquaredEuclidean,
                    geo::DistanceKind::kHaversine}) {
    KMeansConfig config;
    config.k = 3;
    config.seed = 8;
    config.distance = kind;
    config.max_iterations = 20;
    mr::Dfs dfs(small_cluster());
    geo::dataset_to_dfs(dfs, "/in", ds, 1);
    const auto r =
        kmeans_mapreduce(dfs, small_cluster(), "/in/", "/clusters", config);
    std::uint64_t total = 0;
    for (auto s : r.cluster_sizes) total += s;
    EXPECT_EQ(total, ds.num_traces()) << geo::distance_name(kind);
  }
}

TEST(KMeansMapReduce, PerIterationStatsRecorded) {
  const auto ds = blob_dataset(30, 15);
  KMeansConfig config;
  config.k = 2;
  config.seed = 9;
  config.max_iterations = 3;
  config.convergence_delta_m = 0.0;
  mr::Dfs dfs(small_cluster());
  geo::dataset_to_dfs(dfs, "/in", ds, 1);
  const auto r =
      kmeans_mapreduce(dfs, small_cluster(), "/in/", "/clusters", config);
  ASSERT_EQ(r.per_iteration.size(), 3u);
  for (const auto& it : r.per_iteration) {
    EXPECT_GT(it.sim_seconds, 0.0);
    EXPECT_GT(it.shuffle_bytes, 0u);
  }
  // Clusters files written per iteration: iter-000 .. iter-003.
  EXPECT_EQ(dfs.list("/clusters/iter-").size(), 4u);
}

TEST(KMeansMapReduce, ConvergenceStopsEarly) {
  const auto ds = blob_dataset(50, 16);
  KMeansConfig config;
  config.k = 3;
  config.seed = 10;
  config.max_iterations = 100;
  config.convergence_delta_m = 50.0;  // generous: converges quickly
  mr::Dfs dfs(small_cluster());
  geo::dataset_to_dfs(dfs, "/in", ds, 1);
  const auto r =
      kmeans_mapreduce(dfs, small_cluster(), "/in/", "/clusters", config);
  EXPECT_TRUE(r.converged);
  EXPECT_LT(r.iterations, 100);
}

TEST(KMeansConfigValidation, RejectsBadArguments) {
  const auto ds = blob_dataset(10, 17);
  KMeansConfig config;
  config.k = 0;
  EXPECT_THROW(kmeans_sequential(ds, config), gepeto::CheckFailure);
  config.k = 2;
  config.max_iterations = 0;
  EXPECT_THROW(kmeans_sequential(ds, config), gepeto::CheckFailure);
}

}  // namespace
}  // namespace gepeto::core
