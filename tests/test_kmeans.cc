// Tests for k-means (paper Section VI): initialization, assignment, the
// sequential/MapReduce agreement, combiner behaviour, distance metrics, and
// convergence properties (SSE non-increasing).
#include <gtest/gtest.h>

#include <cmath>

#include "common/check.h"
#include "geo/generator.h"
#include "geo/geolife.h"
#include "gepeto/kmeans.h"
#include "mapreduce/dfs.h"

namespace gepeto::core {
namespace {

using geo::GeolocatedDataset;

mr::ClusterConfig small_cluster(std::size_t chunk = 1 << 16) {
  mr::ClusterConfig c;
  c.num_worker_nodes = 4;
  c.nodes_per_rack = 2;
  c.chunk_size = chunk;
  c.execution_threads = 2;
  return c;
}

/// Three well-separated blobs of points.
GeolocatedDataset blob_dataset(int per_blob = 50, std::uint64_t seed = 5) {
  gepeto::Rng rng(seed);
  const double centers[3][2] = {{39.90, 116.40}, {39.95, 116.50}, {40.00, 116.30}};
  GeolocatedDataset ds;
  std::int64_t ts = 1'222'819'200;
  geo::Trail trail;
  for (int b = 0; b < 3; ++b)
    for (int i = 0; i < per_blob; ++i)
      trail.push_back({0, centers[b][0] + rng.gaussian(0, 0.001),
                       centers[b][1] + rng.gaussian(0, 0.001), 150.0, ts++});
  ds.add_trail(0, std::move(trail));
  return ds;
}

TEST(InitialCentroids, DeterministicAndWithinData) {
  const auto ds = blob_dataset();
  const auto a = initial_centroids(ds, 5, 1);
  const auto b = initial_centroids(ds, 5, 1);
  ASSERT_EQ(a.size(), 5u);
  for (std::size_t i = 0; i < 5; ++i) {
    EXPECT_DOUBLE_EQ(a[i].latitude, b[i].latitude);
    EXPECT_DOUBLE_EQ(a[i].longitude, b[i].longitude);
    EXPECT_GE(a[i].latitude, 39.8);
    EXPECT_LE(a[i].latitude, 40.1);
  }
  const auto c = initial_centroids(ds, 5, 2);
  bool any_diff = false;
  for (std::size_t i = 0; i < 5; ++i)
    any_diff |= (a[i].latitude != c[i].latitude);
  EXPECT_TRUE(any_diff);
}

TEST(InitialCentroids, RequiresEnoughTraces) {
  GeolocatedDataset ds;
  ds.add({0, 39.9, 116.4, 0, 1});
  EXPECT_THROW(initial_centroids(ds, 2, 1), gepeto::CheckFailure);
}

TEST(NearestCentroid, TiesGoToLowestIndex) {
  const std::vector<Centroid> cs{{0.0, 0.0}, {0.0, 2.0}};
  // Point equidistant from both.
  EXPECT_EQ(nearest_centroid(cs, geo::DistanceKind::kSquaredEuclidean, 0.0,
                             1.0),
            0u);
}

TEST(NearestCentroid, RespectsMetric) {
  // Manhattan and Euclidean can disagree: point (0.9, 0.9) vs centroids
  // (1.5, 0) and (1.1, 1.1).
  const std::vector<Centroid> cs{{1.5, 0.0}, {1.1, 1.1}};
  EXPECT_EQ(nearest_centroid(cs, geo::DistanceKind::kEuclidean, 0.9, 0.9), 1u);
  EXPECT_EQ(nearest_centroid(cs, geo::DistanceKind::kSquaredEuclidean, 0.9,
                             0.9),
            1u);
}

TEST(CentroidLines, RoundTrip) {
  const std::vector<Centroid> cs{{39.9, 116.4}, {40.0, 116.5}};
  const auto back = centroids_from_lines(centroids_to_lines(cs));
  ASSERT_EQ(back.size(), 2u);
  EXPECT_DOUBLE_EQ(back[1].longitude, 116.5);
  EXPECT_THROW(centroids_from_lines("not,a,centroid,line,x"),
               gepeto::CheckFailure);
}

TEST(KMeansSequential, RecoversWellSeparatedBlobs) {
  const auto ds = blob_dataset(80);
  KMeansConfig config;
  config.k = 3;
  config.seed = 3;
  config.kmeanspp_init = true;  // uniform init can collapse two blobs
  config.max_iterations = 50;
  const auto r = kmeans_sequential(ds, config);
  EXPECT_TRUE(r.converged);
  // Every blob center should be within ~300 m of some centroid.
  for (const auto& center :
       {std::pair{39.90, 116.40}, {39.95, 116.50}, {40.00, 116.30}}) {
    double best = 1e18;
    for (const auto& c : r.centroids)
      best = std::min(best, geo::haversine_meters(center.first, center.second,
                                                  c.latitude, c.longitude));
    EXPECT_LT(best, 300.0);
  }
  std::uint64_t total = 0;
  for (auto s : r.cluster_sizes) total += s;
  EXPECT_EQ(total, ds.num_traces());
}

TEST(KMeansSequential, SseNonIncreasingWithIterations) {
  const auto ds = blob_dataset(60, 9);
  double prev_sse = 1e18;
  for (int iters = 1; iters <= 6; ++iters) {
    KMeansConfig config;
    config.k = 3;
    config.seed = 4;
    config.max_iterations = iters;
    config.convergence_delta_m = 0.0;  // never early-stop
    const auto r = kmeans_sequential(ds, config);
    EXPECT_LE(r.sse, prev_sse * (1 + 1e-9)) << "at iteration " << iters;
    prev_sse = r.sse;
  }
}

TEST(KMeansSequential, KmeansPpInitConverges) {
  const auto ds = blob_dataset(60, 10);
  KMeansConfig config;
  config.k = 3;
  config.seed = 5;
  config.kmeanspp_init = true;
  const auto r = kmeans_sequential(ds, config);
  EXPECT_TRUE(r.converged);
  EXPECT_GT(r.iterations, 0);
}

TEST(KMeansSequential, KEqualsOneAveragesEverything) {
  const auto ds = blob_dataset(20, 11);
  KMeansConfig config;
  config.k = 1;
  config.max_iterations = 10;
  const auto r = kmeans_sequential(ds, config);
  EXPECT_TRUE(r.converged);
  EXPECT_EQ(r.cluster_sizes[0], ds.num_traces());
}

TEST(KMeansMapReduce, MatchesSequentialTrajectory) {
  const auto ds = blob_dataset(60, 12);
  KMeansConfig config;
  config.k = 3;
  config.seed = 6;
  config.max_iterations = 8;
  config.convergence_delta_m = 0.0;  // run all 8 iterations in both paths

  const auto seq = kmeans_sequential(ds, config);

  mr::Dfs dfs(small_cluster(4096));
  geo::dataset_to_dfs(dfs, "/in", ds, 2);
  const auto mr_r = kmeans_mapreduce(dfs, small_cluster(4096), "/in/",
                                     "/clusters", config);

  EXPECT_EQ(mr_r.iterations, seq.iterations);
  ASSERT_EQ(mr_r.centroids.size(), seq.centroids.size());
  for (std::size_t i = 0; i < seq.centroids.size(); ++i) {
    EXPECT_NEAR(mr_r.centroids[i].latitude, seq.centroids[i].latitude, 1e-7);
    EXPECT_NEAR(mr_r.centroids[i].longitude, seq.centroids[i].longitude, 1e-7);
  }
  EXPECT_NEAR(mr_r.sse, seq.sse, seq.sse * 1e-6 + 1e-12);
}

TEST(KMeansMapReduce, CombinerDoesNotChangeResultButShrinksShuffle) {
  const auto ds = blob_dataset(60, 13);
  KMeansConfig config;
  config.k = 3;
  config.seed = 7;
  config.max_iterations = 4;
  config.convergence_delta_m = 0.0;

  mr::Dfs dfs1(small_cluster(4096));
  geo::dataset_to_dfs(dfs1, "/in", ds, 2);
  const auto plain = kmeans_mapreduce(dfs1, small_cluster(4096), "/in/",
                                      "/clusters", config);

  config.use_combiner = true;
  mr::Dfs dfs2(small_cluster(4096));
  geo::dataset_to_dfs(dfs2, "/in", ds, 2);
  const auto combined = kmeans_mapreduce(dfs2, small_cluster(4096), "/in/",
                                         "/clusters", config);

  ASSERT_EQ(plain.centroids.size(), combined.centroids.size());
  for (std::size_t i = 0; i < plain.centroids.size(); ++i) {
    EXPECT_NEAR(plain.centroids[i].latitude, combined.centroids[i].latitude,
                1e-9);
    EXPECT_NEAR(plain.centroids[i].longitude, combined.centroids[i].longitude,
                1e-9);
  }
  EXPECT_LT(combined.totals.shuffle_bytes, plain.totals.shuffle_bytes / 4);
}

TEST(KMeansMapReduce, HaversineAndEuclideanBothCluster) {
  const auto ds = blob_dataset(40, 14);
  for (auto kind : {geo::DistanceKind::kSquaredEuclidean,
                    geo::DistanceKind::kHaversine}) {
    KMeansConfig config;
    config.k = 3;
    config.seed = 8;
    config.distance = kind;
    config.max_iterations = 20;
    mr::Dfs dfs(small_cluster());
    geo::dataset_to_dfs(dfs, "/in", ds, 1);
    const auto r =
        kmeans_mapreduce(dfs, small_cluster(), "/in/", "/clusters", config);
    std::uint64_t total = 0;
    for (auto s : r.cluster_sizes) total += s;
    EXPECT_EQ(total, ds.num_traces()) << geo::distance_name(kind);
  }
}

TEST(KMeansMapReduce, PerIterationStatsRecorded) {
  const auto ds = blob_dataset(30, 15);
  KMeansConfig config;
  config.k = 2;
  config.seed = 9;
  config.max_iterations = 3;
  config.convergence_delta_m = 0.0;
  mr::Dfs dfs(small_cluster());
  geo::dataset_to_dfs(dfs, "/in", ds, 1);
  const auto r =
      kmeans_mapreduce(dfs, small_cluster(), "/in/", "/clusters", config);
  ASSERT_EQ(r.per_iteration.size(), 3u);
  for (const auto& it : r.per_iteration) {
    EXPECT_GT(it.sim_seconds, 0.0);
    EXPECT_GT(it.shuffle_bytes, 0u);
  }
  // Clusters files written per iteration: iter-000 .. iter-003.
  EXPECT_EQ(dfs.list("/clusters/iter-").size(), 4u);
}

TEST(KMeansMapReduce, ConvergenceStopsEarly) {
  const auto ds = blob_dataset(50, 16);
  KMeansConfig config;
  config.k = 3;
  config.seed = 10;
  config.max_iterations = 100;
  config.convergence_delta_m = 50.0;  // generous: converges quickly
  mr::Dfs dfs(small_cluster());
  geo::dataset_to_dfs(dfs, "/in", ds, 1);
  const auto r =
      kmeans_mapreduce(dfs, small_cluster(), "/in/", "/clusters", config);
  EXPECT_TRUE(r.converged);
  EXPECT_LT(r.iterations, 100);
}

TEST(KMeansConfigValidation, RejectsBadArguments) {
  const auto ds = blob_dataset(10, 17);
  KMeansConfig config;
  config.k = 0;
  EXPECT_THROW(kmeans_sequential(ds, config), gepeto::CheckFailure);
  config.k = 2;
  config.max_iterations = 0;
  EXPECT_THROW(kmeans_sequential(ds, config), gepeto::CheckFailure);
}

// Regression: a centroid that receives zero points must be carried forward
// (one output line per centroid, every iteration), not silently dropped —
// dropping it truncated the next iteration's centroids file. Three traces
// with a duplicated coordinate and k = 3 make the duplicate initial centroid
// lose every tie, so cluster 1 is empty from iteration one.
TEST(KMeansEmptyClusters, CarriedForwardNotDropped) {
  GeolocatedDataset ds;
  ds.add_trail(1, {{1, 39.90, 116.40, 150.0, 1'222'819'200},
                   {1, 39.90, 116.40, 150.0, 1'222'819'260}});
  ds.add_trail(2, {{2, 39.95, 116.50, 150.0, 1'222'819'200}});

  KMeansConfig config;
  config.k = 3;
  config.seed = 9;
  config.max_iterations = 3;
  mr::Dfs dfs(small_cluster());
  geo::dataset_to_dfs(dfs, "/in", ds, 1);
  const auto r =
      kmeans_mapreduce(dfs, small_cluster(), "/in/", "/clusters", config);

  ASSERT_EQ(r.centroids.size(), 3u);
  EXPECT_GE(r.totals.counters.at("kmeans.empty_clusters"), 1);
  // The starved duplicate keeps its previous position.
  EXPECT_NEAR(r.centroids[1].latitude, 39.90, 1e-8);
  EXPECT_NEAR(r.centroids[1].longitude, 116.40, 1e-8);
  // And the MapReduce path agrees with the sequential one, which keeps
  // empty-cluster centroids in place too.
  const auto seq = kmeans_sequential(geo::dataset_from_dfs(dfs, "/in"), config);
  ASSERT_EQ(seq.centroids.size(), 3u);
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_NEAR(r.centroids[i].latitude, seq.centroids[i].latitude, 1e-9);
    EXPECT_NEAR(r.centroids[i].longitude, seq.centroids[i].longitude, 1e-9);
  }
}

TEST(CentroidLines, TryParseReportsStructuredErrors) {
  std::string err;
  EXPECT_FALSE(try_centroids_from_lines("0,39.9,116.4", &err).has_value());
  EXPECT_NE(err.find("truncated"), std::string::npos) << err;
  EXPECT_FALSE(try_centroids_from_lines("0,39.9\n", &err).has_value());
  EXPECT_NE(err.find("bad centroid line"), std::string::npos) << err;
  EXPECT_FALSE(try_centroids_from_lines("0,1,2\n0,3,4\n", &err).has_value());
  EXPECT_NE(err.find("duplicate"), std::string::npos) << err;
  EXPECT_FALSE(try_centroids_from_lines("1,1,2\n", &err).has_value());
  EXPECT_NE(err.find("missing centroid index 0"), std::string::npos) << err;
  const auto ok = try_centroids_from_lines("0,39.9,116.4\n1,40.0,116.5\n", &err);
  ASSERT_TRUE(ok.has_value());
  ASSERT_EQ(ok->size(), 2u);
  EXPECT_NEAR((*ok)[1].longitude, 116.5, 1e-12);
}

// A driver that crashes mid-write leaves a truncated newest checkpoint;
// resume must fall back to the previous valid one instead of CHECK-failing.
TEST(KMeansCheckpoint, ResumeFallsBackPastCorruptLatestCheckpoint) {
  const auto ds = blob_dataset(40, 21);
  KMeansConfig config;
  config.k = 3;
  config.seed = 5;
  config.max_iterations = 3;
  config.convergence_delta_m = 0.001;  // run all iterations
  mr::Dfs dfs(small_cluster());
  geo::dataset_to_dfs(dfs, "/in", ds, 1);
  const auto first =
      kmeans_mapreduce(dfs, small_cluster(), "/in/", "/clusters", config);
  ASSERT_GE(first.iterations, 1);

  const auto checkpoints = dfs.list("/clusters/iter-");
  ASSERT_GE(checkpoints.size(), 2u);
  const std::string latest = checkpoints.back();
  const std::string contents(dfs.read(latest));
  dfs.remove(latest);
  // Cut mid-line, dropping the trailing newline — the shape a crashed
  // writer leaves behind.
  dfs.put(latest, contents.substr(0, contents.size() - 3));

  KMeansConfig resumed = config;
  resumed.resume = true;
  const auto r =
      kmeans_mapreduce(dfs, small_cluster(), "/in/", "/clusters", resumed);
  ASSERT_EQ(r.centroids.size(), 3u);
  // It re-ran at least the iteration whose checkpoint was damaged.
  EXPECT_GE(r.iterations, 1);
}

TEST(KMeansCheckpoint, AllCorruptCheckpointsRaiseCorruptCheckpointError) {
  const auto ds = blob_dataset(20, 22);
  KMeansConfig config;
  config.k = 3;
  config.resume = true;
  mr::Dfs dfs(small_cluster());
  geo::dataset_to_dfs(dfs, "/in", ds, 1);
  dfs.put("/clusters/iter-000", "garbage that is not a centroids file");
  try {
    kmeans_mapreduce(dfs, small_cluster(), "/in/", "/clusters", config);
    FAIL() << "expected JobError";
  } catch (const mr::JobError& e) {
    EXPECT_EQ(e.kind(), mr::JobError::Kind::kCorruptCheckpoint);
    EXPECT_NE(std::string(e.what()).find("truncated"), std::string::npos)
        << e.what();
  }
}

}  // namespace
}  // namespace gepeto::core
