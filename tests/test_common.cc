// Tests for src/common: RNG determinism and statistics, check macros,
// thread pool, table formatting.
#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <set>
#include <sstream>

#include "common/check.h"
#include "common/random.h"
#include "common/stopwatch.h"
#include "common/table.h"
#include "common/thread_pool.h"

namespace gepeto {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) equal += (a.next() == b.next());
  EXPECT_LT(equal, 5);
}

TEST(Rng, ReseedRestartsSequence) {
  Rng a(7);
  const auto first = a.next();
  a.next();
  a.reseed(7);
  EXPECT_EQ(a.next(), first);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(3);
  double sum = 0;
  for (int i = 0; i < 100000; ++i) {
    const double u = rng.uniform();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / 100000, 0.5, 0.01);
}

TEST(Rng, UniformRangeRespectsBounds) {
  Rng rng(4);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform(-3.0, 5.0);
    ASSERT_GE(u, -3.0);
    ASSERT_LT(u, 5.0);
  }
}

TEST(Rng, UniformU64Unbiased) {
  Rng rng(5);
  std::array<int, 3> counts{};
  for (int i = 0; i < 90000; ++i) counts[rng.uniform_u64(3)]++;
  for (int c : counts) EXPECT_NEAR(c, 30000, 1000);
}

TEST(Rng, UniformIntInclusiveBounds) {
  Rng rng(6);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    const auto v = rng.uniform_int(-2, 2);
    ASSERT_GE(v, -2);
    ASSERT_LE(v, 2);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 5u);  // all values hit
}

TEST(Rng, GaussianMoments) {
  Rng rng(7);
  const int n = 200000;
  double sum = 0, sq = 0;
  for (int i = 0; i < n; ++i) {
    const double g = rng.gaussian();
    sum += g;
    sq += g * g;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.02);
  EXPECT_NEAR(sq / n, 1.0, 0.03);
}

TEST(Rng, GaussianShifted) {
  Rng rng(8);
  double sum = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += rng.gaussian(10.0, 2.0);
  EXPECT_NEAR(sum / n, 10.0, 0.05);
}

TEST(Rng, ExponentialMean) {
  Rng rng(9);
  double sum = 0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) sum += rng.exponential(3.0);
  EXPECT_NEAR(sum / n, 3.0, 0.1);
}

TEST(Rng, ChanceProbability) {
  Rng rng(10);
  int hits = 0;
  for (int i = 0; i < 100000; ++i) hits += rng.chance(0.25);
  EXPECT_NEAR(hits, 25000, 800);
}

TEST(Rng, WeightedPickFollowsWeights) {
  Rng rng(11);
  const double w[3] = {1.0, 2.0, 7.0};
  std::array<int, 3> counts{};
  for (int i = 0; i < 100000; ++i) counts[rng.weighted_pick(w, 3)]++;
  EXPECT_NEAR(counts[0], 10000, 700);
  EXPECT_NEAR(counts[1], 20000, 900);
  EXPECT_NEAR(counts[2], 70000, 1000);
}

TEST(Rng, WeightedPickZeroWeightNeverChosen) {
  Rng rng(12);
  const double w[3] = {0.0, 1.0, 1.0};
  for (int i = 0; i < 10000; ++i) ASSERT_NE(rng.weighted_pick(w, 3), 0u);
}

TEST(Rng, ForkIndependentStreams) {
  Rng parent(13);
  Rng a = parent.fork(1);
  Rng b = parent.fork(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) equal += (a.next() == b.next());
  EXPECT_LT(equal, 5);
}

TEST(Rng, ForkDeterministic) {
  Rng p1(14), p2(14);
  Rng a = p1.fork(9);
  Rng b = p2.fork(9);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Check, PassingCheckIsSilent) {
  EXPECT_NO_THROW(GEPETO_CHECK(1 + 1 == 2));
}

TEST(Check, FailingCheckThrowsWithLocation) {
  try {
    GEPETO_CHECK(false);
    FAIL() << "should have thrown";
  } catch (const CheckFailure& e) {
    EXPECT_NE(std::string(e.what()).find("test_common.cc"), std::string::npos);
  }
}

TEST(Check, MessageIsIncluded) {
  try {
    GEPETO_CHECK_MSG(false, "ctx " << 42);
    FAIL() << "should have thrown";
  } catch (const CheckFailure& e) {
    EXPECT_NE(std::string(e.what()).find("ctx 42"), std::string::npos);
  }
}

TEST(ThreadPool, ExecutesAllTasks) {
  ThreadPool pool(4);
  std::atomic<int> count{0};
  std::vector<std::future<void>> futs;
  for (int i = 0; i < 100; ++i)
    futs.push_back(pool.submit([&] { count.fetch_add(1); }));
  for (auto& f : futs) f.get();
  EXPECT_EQ(count.load(), 100);
}

TEST(ThreadPool, ReturnsValues) {
  ThreadPool pool(2);
  auto f = pool.submit([] { return 41 + 1; });
  EXPECT_EQ(f.get(), 42);
}

TEST(ThreadPool, PropagatesExceptions) {
  ThreadPool pool(1);
  auto f = pool.submit([]() -> int { throw std::runtime_error("boom"); });
  EXPECT_THROW(f.get(), std::runtime_error);
}

TEST(ThreadPool, DestructorDrainsQueue) {
  std::atomic<int> count{0};
  {
    ThreadPool pool(1);
    for (int i = 0; i < 50; ++i) pool.submit([&] { count.fetch_add(1); });
  }
  EXPECT_EQ(count.load(), 50);
}

TEST(Table, AlignsColumnsAndCountsRows) {
  Table t("demo");
  t.header({"a", "long-column"});
  t.row({"1", "2"});
  t.row({"333", "4"});
  EXPECT_EQ(t.num_rows(), 2u);
  std::ostringstream os;
  t.print(os);
  const std::string s = os.str();
  EXPECT_NE(s.find("== demo =="), std::string::npos);
  EXPECT_NE(s.find("long-column"), std::string::npos);
  EXPECT_NE(s.find("333"), std::string::npos);
}

TEST(Table, RowWidthMismatchThrows) {
  Table t("demo");
  t.header({"a", "b"});
  EXPECT_THROW(t.row({"only-one"}), CheckFailure);
}

TEST(Format, Bytes) {
  EXPECT_EQ(format_bytes(512), "512 B");
  EXPECT_EQ(format_bytes(2048), "2.0 KiB");
  EXPECT_EQ(format_bytes(64ull << 20), "64.0 MiB");
  EXPECT_EQ(format_bytes(3ull << 30), "3.0 GiB");
}

TEST(Format, Seconds) {
  EXPECT_EQ(format_seconds(0.5), "500.00 ms");
  EXPECT_EQ(format_seconds(2.0), "2.00 s");
  EXPECT_EQ(format_seconds(84.0), "84.00 s");
  EXPECT_EQ(format_seconds(150.0), "2 min 30 s");
}

TEST(Format, CountThousandsSeparators) {
  EXPECT_EQ(format_count(0), "0");
  EXPECT_EQ(format_count(999), "999");
  EXPECT_EQ(format_count(1000), "1,000");
  EXPECT_EQ(format_count(2033686), "2,033,686");
}

TEST(Stopwatch, MeasuresElapsedTime) {
  Stopwatch sw;
  // Burn a little CPU deterministically.
  volatile double x = 0;
  for (int i = 0; i < 100000; ++i) x = x + 1.0;
  EXPECT_GE(sw.seconds(), 0.0);
  sw.reset();
  EXPECT_LT(sw.seconds(), 1.0);
}

}  // namespace
}  // namespace gepeto
