// Tests for JobFlow (src/workflow): DAG scheduling and virtual-clock
// overlap, dataset-lineage edges, malformed-graph rejection, intermediate
// GC (keep / keep_intermediates / scratch), FlowError attribution, resume
// from the completion manifest, iterate_until edge cases, and the
// DJ-Cluster intermediate-leak regression.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/check.h"
#include "geo/generator.h"
#include "geo/geolife.h"
#include "gepeto/djcluster.h"
#include "gepeto/sampling.h"
#include "mapreduce/engine.h"
#include "workflow/flow.h"

namespace gepeto::flow {
namespace {

mr::ClusterConfig test_cluster(std::size_t chunk = 1 << 26) {
  mr::ClusterConfig c;
  c.num_worker_nodes = 4;
  c.nodes_per_rack = 2;
  c.chunk_size = chunk;
  c.execution_threads = 2;
  c.seed = 99;
  return c;
}

/// Map-only identity: copies every line, counting them.
struct EchoMapper {
  void map(std::int64_t, std::string_view line, mr::MapOnlyContext& ctx) {
    ctx.write(line);
    ctx.increment("echo.lines");
  }
};

mr::JobResult copy_job(FlowEngine& e, const std::string& name,
                       const std::string& in, const std::string& out,
                       const mr::FaultPlan& plan = {}) {
  mr::JobConfig job;
  job.name = name;
  job.input = in;
  job.output = out;
  job.fault_plan = plan;
  return mr::run_map_only_job(e.dfs(), e.cluster(), job,
                              [] { return EchoMapper{}; });
}

/// Crash every attempt of map task 0 — exhausts the default 4-attempt
/// budget, failing the job with kAttemptsExhausted.
mr::FaultPlan sink_task0() {
  mr::FaultPlan plan;
  for (int a = 0; a < 4; ++a) plan.crashes.push_back({1, 0, a});
  return plan;
}

std::string cat_dataset(const mr::Dfs& dfs, const std::string& dir) {
  std::string all;
  for (const auto& p : dfs.list(dir + "/")) all += dfs.read(p);
  return all;
}

// --- scheduling --------------------------------------------------------------

TEST(FlowScheduling, LinearChainSumsVirtualTime) {
  mr::Dfs dfs(test_cluster());
  Flow f("chain");
  f.add_native("a", [](FlowEngine& e) { e.charge_sim(1.0); });
  f.add_native("b", [](FlowEngine& e) { e.charge_sim(2.0); }).after("a");
  f.add_native("c", [](FlowEngine& e) { e.charge_sim(3.0); }).after("b");
  const auto fr = f.run(dfs, test_cluster());
  EXPECT_DOUBLE_EQ(fr.sim_seconds, 6.0);
  EXPECT_DOUBLE_EQ(fr.sim_sequential_seconds, 6.0);
  EXPECT_EQ(fr.nodes_run, 3);
  EXPECT_DOUBLE_EQ(fr.node("b")->sim_start_seconds, 1.0);
  EXPECT_DOUBLE_EQ(fr.node("c")->sim_start_seconds, 3.0);
  EXPECT_DOUBLE_EQ(fr.node("c")->sim_finish_seconds, 6.0);
}

TEST(FlowScheduling, IndependentBranchesOverlap) {
  mr::Dfs dfs(test_cluster());
  Flow f;
  f.add_native("slow", [](FlowEngine& e) { e.charge_sim(5.0); });
  f.add_native("fast", [](FlowEngine& e) { e.charge_sim(3.0); });
  const auto fr = f.run(dfs, test_cluster());
  // Both start at t=0 on the virtual clock; the makespan is the slower
  // branch, while a sequential driver would pay the sum.
  EXPECT_DOUBLE_EQ(fr.node("fast")->sim_start_seconds, 0.0);
  EXPECT_DOUBLE_EQ(fr.sim_seconds, 5.0);
  EXPECT_DOUBLE_EQ(fr.sim_sequential_seconds, 8.0);
}

TEST(FlowScheduling, DiamondJoinWaitsForSlowestBranch) {
  mr::Dfs dfs(test_cluster());
  Flow f;
  f.add_native("a", [](FlowEngine& e) { e.charge_sim(1.0); });
  f.add_native("b", [](FlowEngine& e) { e.charge_sim(2.0); }).after("a");
  f.add_native("c", [](FlowEngine& e) { e.charge_sim(4.0); }).after("a");
  f.add_native("d", [](FlowEngine& e) { e.charge_sim(1.0); })
      .after("b")
      .after("c");
  const auto fr = f.run(dfs, test_cluster());
  EXPECT_DOUBLE_EQ(fr.node("d")->sim_start_seconds, 5.0);
  EXPECT_DOUBLE_EQ(fr.sim_seconds, 6.0);
  EXPECT_DOUBLE_EQ(fr.sim_sequential_seconds, 8.0);
}

TEST(FlowScheduling, DatasetLineageOrdersJobs) {
  mr::Dfs dfs(test_cluster());
  dfs.put("/in/data", "alpha\nbravo\ncharlie\n");
  Flow f;
  // Declared consumer-first: the lineage edge /mid -> gen must still run the
  // producer before the consumer.
  f.add_map_only("use",
                 [](FlowEngine& e) { return copy_job(e, "use", "/mid", "/out"); })
      .reads("/mid")
      .keep("/out");
  f.add_map_only("gen",
                 [](FlowEngine& e) { return copy_job(e, "gen", "/in", "/mid"); })
      .reads("/in")
      .writes("/mid");
  const auto fr = f.run(dfs, test_cluster());
  EXPECT_EQ(fr.nodes[0].name, "gen");
  EXPECT_EQ(fr.nodes[1].name, "use");
  EXPECT_EQ(cat_dataset(dfs, "/out"), "alpha\nbravo\ncharlie\n");
  EXPECT_DOUBLE_EQ(fr.node("use")->sim_start_seconds,
                   fr.node("gen")->sim_finish_seconds);
  EXPECT_TRUE(fr.node("gen")->ran_jobs);
  EXPECT_EQ(fr.node("use")->job.output_records, 3u);
}

TEST(FlowScheduling, DeclarationOrderBreaksTies) {
  mr::Dfs dfs(test_cluster());
  std::vector<std::string> ran;
  Flow f;
  f.add_native("zeta", [&](FlowEngine&) { ran.push_back("zeta"); });
  f.add_native("alpha", [&](FlowEngine&) { ran.push_back("alpha"); });
  const auto fr = f.run(dfs, test_cluster());
  // Both are ready at once; the declaration order wins, not the name order.
  EXPECT_EQ(ran, (std::vector<std::string>{"zeta", "alpha"}));
  EXPECT_EQ(fr.nodes[0].name, "zeta");
}

// --- malformed graphs --------------------------------------------------------

TEST(FlowGraph, CycleIsRejected) {
  mr::Dfs dfs(test_cluster());
  Flow f;
  f.add_native("a", [](FlowEngine&) {}).reads("/y").writes("/x");
  f.add_native("b", [](FlowEngine&) {}).reads("/x").writes("/y");
  EXPECT_THROW(f.run(dfs, test_cluster()), CheckFailure);
}

TEST(FlowGraph, DuplicateDatasetWriterIsRejected) {
  mr::Dfs dfs(test_cluster());
  Flow f;
  f.add_native("a", [](FlowEngine&) {}).writes("/d");
  f.add_native("b", [](FlowEngine&) {}).writes("/d/");  // normalizes equal
  EXPECT_THROW(f.run(dfs, test_cluster()), CheckFailure);
}

TEST(FlowGraph, UnknownAfterTargetIsRejected) {
  Flow f;
  auto ref = f.add_native("a", [](FlowEngine&) {});
  EXPECT_THROW(ref.after("missing"), CheckFailure);
}

TEST(FlowGraph, DuplicateNodeNameIsRejected) {
  Flow f;
  f.add_native("a", [](FlowEngine&) {});
  EXPECT_THROW(f.add_native("a", [](FlowEngine&) {}), CheckFailure);
}

// --- garbage collection ------------------------------------------------------

TEST(FlowGc, IntermediateRemovedAfterLastConsumer) {
  mr::Dfs dfs(test_cluster());
  dfs.put("/in/data", "one\ntwo\n");
  Flow f;
  f.add_map_only("gen",
                 [](FlowEngine& e) { return copy_job(e, "gen", "/in", "/mid"); })
      .reads("/in")
      .writes("/mid");
  f.add_map_only("use",
                 [](FlowEngine& e) { return copy_job(e, "use", "/mid", "/out"); })
      .reads("/mid")
      .keep("/out");
  const auto fr = f.run(dfs, test_cluster());
  EXPECT_TRUE(dfs.list("/mid/").empty());
  EXPECT_FALSE(dfs.exists("/mid"));
  EXPECT_FALSE(dfs.list("/out/").empty());
  EXPECT_EQ(fr.gc_datasets, 1u);
  EXPECT_GT(fr.gc_bytes, 0u);
}

TEST(FlowGc, KeepPinsDataset) {
  mr::Dfs dfs(test_cluster());
  dfs.put("/in/data", "one\ntwo\n");
  Flow f;
  f.add_map_only("gen",
                 [](FlowEngine& e) { return copy_job(e, "gen", "/in", "/mid"); })
      .reads("/in")
      .keep("/mid");
  f.add_map_only("use",
                 [](FlowEngine& e) { return copy_job(e, "use", "/mid", "/out"); })
      .reads("/mid")
      .keep("/out");
  const auto fr = f.run(dfs, test_cluster());
  EXPECT_FALSE(dfs.list("/mid/").empty());
  EXPECT_EQ(fr.gc_datasets, 0u);
}

TEST(FlowGc, KeepIntermediatesOptionDisablesGc) {
  mr::Dfs dfs(test_cluster());
  dfs.put("/in/data", "one\ntwo\n");
  Flow f;
  f.add_map_only("gen",
                 [](FlowEngine& e) { return copy_job(e, "gen", "/in", "/mid"); })
      .reads("/in")
      .writes("/mid");
  f.add_map_only("use",
                 [](FlowEngine& e) { return copy_job(e, "use", "/mid", "/out"); })
      .reads("/mid")
      .keep("/out");
  FlowOptions options;
  options.keep_intermediates = true;
  const auto fr = f.run(dfs, test_cluster(), options);
  EXPECT_FALSE(dfs.list("/mid/").empty());
  EXPECT_EQ(fr.gc_datasets, 0u);
}

TEST(FlowGc, ScratchPrefixRemovedWhenNodeCompletes) {
  mr::Dfs dfs(test_cluster());
  Flow f;
  f.add_native("work",
               [](FlowEngine& e) {
                 e.dfs().put("/tmp/scratch-0", "temporary\n");
                 e.dfs().put("/tmp/scratch-1", "temporary\n");
               })
      .scratch("/tmp/scratch-");
  const auto fr = f.run(dfs, test_cluster());
  EXPECT_TRUE(dfs.list("/tmp/").empty());
  EXPECT_EQ(fr.gc_datasets, 1u);
  EXPECT_GT(fr.gc_bytes, 0u);
}

// --- failure attribution -----------------------------------------------------

TEST(FlowFailure, FlowErrorNamesNodeAndLineage) {
  mr::Dfs dfs(test_cluster());
  dfs.put("/in/data", "one\ntwo\n");
  bool down_ran = false;
  Flow f("pipeline");
  f.add_map_only("gen",
                 [](FlowEngine& e) { return copy_job(e, "gen", "/in", "/mid"); })
      .reads("/in")
      .writes("/mid");
  f.add_map_only("bad",
                 [](FlowEngine& e) {
                   return copy_job(e, "bad", "/mid", "/out", sink_task0());
                 })
      .reads("/mid")
      .writes("/out");
  f.add_native("down", [&](FlowEngine&) { down_ran = true; }).after("bad");
  try {
    f.run(dfs, test_cluster());
    ADD_FAILURE() << "expected FlowError";
  } catch (const FlowError& e) {
    EXPECT_EQ(e.node(), "bad");
    EXPECT_EQ(e.lineage(), std::vector<std::string>{"gen"});
    EXPECT_EQ(e.kind(), mr::JobError::Kind::kAttemptsExhausted);
    EXPECT_NE(std::string(e.what()).find("flow 'pipeline' node 'bad'"),
              std::string::npos);
    EXPECT_NE(std::string(e.what()).find("gen"), std::string::npos);
  }
  EXPECT_FALSE(down_ran);
}

TEST(FlowFailure, FlowErrorIsAJobError) {
  mr::Dfs dfs(test_cluster());
  dfs.put("/in/data", "one\n");
  Flow f;
  f.add_map_only("bad", [](FlowEngine& e) {
    return copy_job(e, "bad", "/in", "/out", sink_task0());
  });
  // Callers written against the PR-1 engine keep working unchanged.
  EXPECT_THROW(f.run(dfs, test_cluster()), mr::JobError);
}

// --- counters ----------------------------------------------------------------

TEST(FlowCounters, AggregateAcrossNodes) {
  mr::Dfs dfs(test_cluster());
  dfs.put("/in/data", "a\nb\nc\n");
  Flow f;
  f.add_map_only("gen",
                 [](FlowEngine& e) { return copy_job(e, "gen", "/in", "/mid"); })
      .reads("/in")
      .writes("/mid");
  f.add_map_only("use",
                 [](FlowEngine& e) { return copy_job(e, "use", "/mid", "/out"); })
      .reads("/mid")
      .keep("/out");
  const auto fr = f.run(dfs, test_cluster());
  EXPECT_EQ(fr.counters.at("echo.lines"), 6);  // 3 lines through both jobs
}

// --- resume ------------------------------------------------------------------

/// A two-job chain whose second node fails while `armed` — shared by the
/// resume tests.
Flow resumable_chain(int& gen_runs, const bool& armed) {
  Flow f("resumable");
  f.add_map_only("gen",
                 [&gen_runs](FlowEngine& e) {
                   ++gen_runs;
                   return copy_job(e, "gen", "/in", "/mid");
                 })
      .reads("/in")
      .writes("/mid");
  f.add_map_only("use",
                 [&armed](FlowEngine& e) {
                   return copy_job(e, "use", "/mid", "/out",
                                   armed ? sink_task0() : mr::FaultPlan{});
                 })
      .reads("/mid")
      .keep("/out");
  return f;
}

TEST(FlowResume, SkipsCompletedFrontier) {
  mr::Dfs dfs(test_cluster());
  dfs.put("/in/data", "one\ntwo\n");
  int gen_runs = 0;
  bool armed = true;
  Flow f = resumable_chain(gen_runs, armed);
  FlowOptions options;
  options.state_path = "/flow-state";
  EXPECT_THROW(f.run(dfs, test_cluster(), options), FlowError);
  EXPECT_EQ(gen_runs, 1);
  EXPECT_TRUE(dfs.exists("/flow-state"));

  armed = false;
  options.resume = true;
  const auto fr = f.run(dfs, test_cluster(), options);
  EXPECT_EQ(gen_runs, 1);  // the completed frontier is not re-run
  EXPECT_EQ(fr.nodes_skipped, 1);
  EXPECT_TRUE(fr.node("gen")->skipped);
  EXPECT_FALSE(fr.node("use")->skipped);
  EXPECT_EQ(cat_dataset(dfs, "/out"), "one\ntwo\n");
  EXPECT_FALSE(dfs.exists("/flow-state"));  // removed on success
}

TEST(FlowResume, RerunsCompletedNodeWhoseOutputVanished) {
  mr::Dfs dfs(test_cluster());
  dfs.put("/in/data", "one\ntwo\n");
  int gen_runs = 0;
  bool armed = true;
  Flow f = resumable_chain(gen_runs, armed);
  FlowOptions options;
  options.state_path = "/flow-state";
  EXPECT_THROW(f.run(dfs, test_cluster(), options), FlowError);

  // Lose gen's output between the crash and the resume: the manifest says
  // "done" but a pending consumer still needs /mid, so gen must re-run.
  dfs.remove_prefix("/mid/");
  armed = false;
  options.resume = true;
  const auto fr = f.run(dfs, test_cluster(), options);
  EXPECT_EQ(gen_runs, 2);
  EXPECT_EQ(fr.nodes_skipped, 0);
  EXPECT_EQ(cat_dataset(dfs, "/out"), "one\ntwo\n");
}

// --- iterate_until -----------------------------------------------------------

TEST(FlowIterate, ZeroIterationsWhenAlreadyConverged) {
  mr::Dfs dfs(test_cluster());
  int body_calls = 0;
  Flow f;
  f.add_iterate_until(
      "loop", [](FlowEngine&, int) { return true; }, /*max_iterations=*/10,
      [&](FlowEngine&, int) {
        ++body_calls;
        return mr::JobResult{};
      });
  const auto fr = f.run(dfs, test_cluster());
  EXPECT_EQ(body_calls, 0);
  EXPECT_EQ(fr.node("loop")->iterations, 0);
  EXPECT_TRUE(fr.node("loop")->converged);
}

TEST(FlowIterate, MaxIterationsCutoff) {
  mr::Dfs dfs(test_cluster());
  std::vector<int> iters;
  Flow f;
  f.add_iterate_until(
      "loop", [](FlowEngine&, int) { return false; }, /*max_iterations=*/3,
      [&](FlowEngine&, int iter) {
        iters.push_back(iter);
        return mr::JobResult{};
      });
  const auto fr = f.run(dfs, test_cluster());
  EXPECT_EQ(iters, (std::vector<int>{0, 1, 2}));
  EXPECT_EQ(fr.node("loop")->iterations, 3);
  EXPECT_FALSE(fr.node("loop")->converged);
}

TEST(FlowIterate, StopsWhenPredicateTurnsTrue) {
  mr::Dfs dfs(test_cluster());
  Flow f;
  f.add_iterate_until(
      "loop", [](FlowEngine&, int next_iter) { return next_iter >= 2; },
      /*max_iterations=*/10,
      [](FlowEngine& e, int) {
        e.charge_sim(1.0);
        return mr::JobResult{};
      });
  const auto fr = f.run(dfs, test_cluster());
  EXPECT_EQ(fr.node("loop")->iterations, 2);
  EXPECT_TRUE(fr.node("loop")->converged);
  // charge_sim() from inside the loop body bills the node.
  EXPECT_DOUBLE_EQ(fr.node("loop")->sim_seconds, 2.0);
}

TEST(FlowIterate, ResumesMidLoopAfterCrash) {
  mr::Dfs dfs(test_cluster());
  dfs.put("/in/data", "one\ntwo\n");
  std::vector<int> completed;
  bool armed = true;
  Flow f("kmeans-like");
  f.add_iterate_until(
      "loop", [](FlowEngine&, int next_iter) { return next_iter >= 4; },
      /*max_iterations=*/10,
      [&](FlowEngine& e, int iter) {
        const auto plan =
            (armed && iter == 2) ? sink_task0() : mr::FaultPlan{};
        auto jr = copy_job(e, "iter-" + std::to_string(iter), "/in",
                           "/loop/out-" + std::to_string(iter), plan);
        completed.push_back(iter);
        return jr;
      });
  FlowOptions options;
  options.state_path = "/flow-state";
  try {
    f.run(dfs, test_cluster(), options);
    ADD_FAILURE() << "expected FlowError";
  } catch (const FlowError& e) {
    EXPECT_EQ(e.node(), "loop");
  }
  EXPECT_EQ(completed, (std::vector<int>{0, 1}));

  armed = false;
  options.resume = true;
  const auto fr = f.run(dfs, test_cluster(), options);
  // The loop restarts at the recorded iteration, not from zero: each
  // iteration executes exactly once across the two runs.
  EXPECT_EQ(completed, (std::vector<int>{0, 1, 2, 3}));
  EXPECT_EQ(fr.node("loop")->iterations, 2);
  EXPECT_TRUE(fr.node("loop")->converged);
}

// --- DJ-Cluster intermediate-leak regression ---------------------------------

TEST(FlowGc, DjClusterPipelineLeavesOnlyProducts) {
  const auto synthetic = geo::generate_dataset([] {
    geo::GeneratorConfig cfg;
    cfg.num_users = 3;
    cfg.duration_days = 8;
    cfg.seed = 95;
    return cfg;
  }());
  const auto sampled = core::downsample(
      synthetic.data, {60, core::SamplingTechnique::kUpperLimit});

  mr::Dfs dfs(test_cluster());
  geo::dataset_to_dfs(dfs, "/in", sampled, 2);
  const std::uint64_t input_bytes = dfs.total_size("/in/");

  core::DjClusterConfig config;
  const auto result =
      core::run_djcluster_jobs(dfs, test_cluster(), "/in/", "/dj", config);
  EXPECT_GT(result.clusters.clustered + result.clusters.noise, 0u);

  // The pipeline's temporaries (/dj/filtered, the R-Tree entries cache) must
  // be gone: only the input and the two products remain in the DFS.
  for (const auto& path : dfs.list("/")) {
    const bool expected = path.rfind("/in/", 0) == 0 ||
                          path.rfind("/dj/preprocessed/", 0) == 0 ||
                          path.rfind("/dj/clusters/", 0) == 0;
    EXPECT_TRUE(expected) << "leaked intermediate: " << path;
  }
  EXPECT_EQ(dfs.total_size("/in/"), input_bytes);
  EXPECT_FALSE(dfs.list("/dj/preprocessed/").empty());
  EXPECT_FALSE(dfs.list("/dj/clusters/").empty());
}

}  // namespace
}  // namespace gepeto::flow
