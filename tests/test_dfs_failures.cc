// DFS failure drills beyond the basics in test_dfs.cc: cascading node
// deaths, placement on a shrinking cluster, under-replication accounting,
// and data-loss detection through ReReplicationReport.
#include <gtest/gtest.h>

#include <set>
#include <string>

#include "common/check.h"
#include "mapreduce/cluster.h"
#include "mapreduce/dfs.h"

namespace gepeto::mr {
namespace {

ClusterConfig drill_cluster(int nodes = 8, std::size_t chunk = 16,
                            int replication = 3) {
  ClusterConfig c;
  c.num_worker_nodes = nodes;
  c.nodes_per_rack = 4;
  c.chunk_size = chunk;
  c.replication = replication;
  c.seed = 4321;
  return c;
}

TEST(DfsFailures, CascadingKillsWithRecoveryNeverLoseData) {
  // Kill nodes one at a time, re-replicating in between, until only
  // `replication` nodes remain: every sweep must fully restore the factor
  // and report zero lost chunks.
  Dfs dfs(drill_cluster(8, 16, 3));
  const std::string payload(700, 'c');
  dfs.put("/f", payload);
  for (int n = 0; n < 5; ++n) {  // 8 - 5 = 3 survivors = replication factor
    dfs.kill_node(n);
    const auto report = dfs.re_replicate();
    ASSERT_FALSE(report.data_loss()) << "after killing node " << n;
    ASSERT_EQ(dfs.under_replicated_chunks(), 0u);
    ASSERT_EQ(dfs.read("/f"), payload);
  }
  // Every remaining replica sits on a live node.
  for (const auto& ci : dfs.chunks("/f")) {
    EXPECT_EQ(ci.replicas.size(), 3u);
    for (int n : ci.replicas) EXPECT_TRUE(dfs.node_alive(n));
  }
}

TEST(DfsFailures, PlacementNeverTargetsDeadNodes) {
  Dfs dfs(drill_cluster(8, 8));
  dfs.kill_node(2);
  dfs.kill_node(5);
  dfs.kill_node(7);
  dfs.put("/f", std::string(600, 'p'));
  for (const auto& ci : dfs.chunks("/f")) {
    for (int n : ci.replicas) {
      EXPECT_NE(n, 2);
      EXPECT_NE(n, 5);
      EXPECT_NE(n, 7);
      EXPECT_TRUE(dfs.node_alive(n));
    }
  }
}

TEST(DfsFailures, ReReplicationNeverTargetsDeadNodes) {
  // One kill per rack: with replication 3 at least one replica survives
  // every chunk, so the sweep must fully recover without touching the dead.
  Dfs dfs(drill_cluster(8, 8));
  dfs.put("/f", std::string(600, 'q'));
  dfs.kill_node(2);
  dfs.kill_node(5);
  const auto report = dfs.re_replicate();
  EXPECT_FALSE(report.data_loss());
  for (const auto& ci : dfs.chunks("/f")) {
    std::set<int> uniq(ci.replicas.begin(), ci.replicas.end());
    EXPECT_EQ(uniq.size(), ci.replicas.size()) << "duplicate replica";
    for (int n : ci.replicas) EXPECT_TRUE(dfs.node_alive(n));
  }
}

TEST(DfsFailures, UnderReplicationTargetsTheLiveClusterSize) {
  // With fewer live nodes than the replication factor, the achievable target
  // drops; a full sweep must then report nothing under-replicated.
  Dfs dfs(drill_cluster(4, 16, 3));
  dfs.put("/f", std::string(100, 'u'));
  dfs.kill_node(0);
  dfs.kill_node(1);  // 2 live nodes < replication 3
  const auto report = dfs.re_replicate();
  EXPECT_FALSE(report.data_loss());
  EXPECT_EQ(dfs.under_replicated_chunks(), 0u);
  for (const auto& ci : dfs.chunks("/f")) EXPECT_EQ(ci.replicas.size(), 2u);
}

TEST(DfsFailures, LostChunksAreReportedPerChunk) {
  auto config = drill_cluster(4, 4, 1);  // replication 1: fragile by design
  Dfs dfs(config);
  dfs.put("/f", std::string(16, 'x'));  // 4 chunks, one replica each
  const auto& chunks = dfs.chunks("/f");
  // Kill exactly the holder of chunk 0 (and any co-located chunks).
  const int victim = chunks[0].replicas.at(0);
  std::size_t expected_lost = 0;
  for (const auto& ci : chunks) expected_lost += (ci.replicas.at(0) == victim);
  dfs.kill_node(victim);
  const auto report = dfs.re_replicate();
  EXPECT_TRUE(report.data_loss());
  EXPECT_EQ(report.lost.size(), expected_lost);
  for (const auto& lost : report.lost) {
    EXPECT_EQ(lost.path, "/f");
    EXPECT_EQ(lost.bytes, 4u);
  }
  // Surviving chunks must not be misreported.
  std::set<std::size_t> lost_idx;
  for (const auto& lost : report.lost) lost_idx.insert(lost.chunk_index);
  for (std::size_t i = 0; i < chunks.size(); ++i)
    EXPECT_EQ(lost_idx.count(i) != 0, chunks[i].replicas.empty());
}

TEST(DfsFailures, SweepIsIdempotentAfterLoss) {
  // A second sweep over an already-degraded namespace reports the same lost
  // chunks (they stay lost) and creates nothing new.
  auto config = drill_cluster(4, 1024, 2);
  Dfs dfs(config);
  dfs.put("/f", "irreplaceable");
  for (int n : std::vector<int>(dfs.chunks("/f")[0].replicas))
    dfs.kill_node(n);
  const auto first = dfs.re_replicate();
  ASSERT_TRUE(first.data_loss());
  const auto second = dfs.re_replicate();
  EXPECT_EQ(second.lost.size(), first.lost.size());
  EXPECT_EQ(second.created, 0u);
  EXPECT_DOUBLE_EQ(second.sim_seconds, 0.0);
}

TEST(DfsFailures, RecoveryCostScalesWithMovedBytes) {
  Dfs dfs(drill_cluster(8, 16, 3));
  dfs.put("/small", std::string(64, 's'));
  dfs.put("/big", std::string(6400, 'b'));
  dfs.kill_node(0);
  const auto report = dfs.re_replicate();
  EXPECT_FALSE(report.data_loss());
  EXPECT_GT(report.created, 0u);
  EXPECT_GT(report.moved_bytes, 0u);
  EXPECT_GT(report.sim_seconds, 0.0);
  // The modeled time is disk + rack transfer for every moved byte.
  const auto& c = dfs.config();
  const double expected =
      static_cast<double>(report.moved_bytes) / c.disk_bandwidth_Bps +
      static_cast<double>(report.moved_bytes) / c.intra_rack_Bps;
  EXPECT_DOUBLE_EQ(report.sim_seconds, expected);
}

TEST(DfsFailures, ReviveThenReReplicateUsesTheReturningNode) {
  // 3 live nodes of 4 and replication 3: every chunk is pinned to all three
  // survivors. When the dead node returns (empty), a sweep is a no-op; but
  // after killing another holder, the revived node is the only candidate.
  Dfs dfs(drill_cluster(4, 16, 3));
  dfs.kill_node(3);
  dfs.put("/f", std::string(100, 'v'));
  dfs.revive_node(3);
  dfs.kill_node(0);
  const auto report = dfs.re_replicate();
  EXPECT_FALSE(report.data_loss());
  EXPECT_EQ(dfs.under_replicated_chunks(), 0u);
  bool revived_used = false;
  for (const auto& ci : dfs.chunks("/f"))
    for (int n : ci.replicas) revived_used |= (n == 3);
  EXPECT_TRUE(revived_used);
}

}  // namespace
}  // namespace gepeto::mr
