// Tests for the privacy attack suite (ISSUE 10 tentpole): POI-fingerprint
// re-identification (attacks/fingerprint.h) and the k-anonymous OD matrix
// (attacks/od_matrix.h) — sequential oracles, their MapReduce/JobFlow
// realizations, and the contracts the releases carry.
#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "common/check.h"
#include "geo/generator.h"
#include "geo/geolife.h"
#include "gepeto/attacks/fingerprint.h"
#include "gepeto/attacks/od_matrix.h"
#include "gepeto/sanitize.h"
#include "mapreduce/dfs.h"

namespace gepeto::core {
namespace {

mr::ClusterConfig small_cluster() {
  mr::ClusterConfig c;
  c.num_worker_nodes = 4;
  c.nodes_per_rack = 2;
  c.chunk_size = 1 << 15;
  c.execution_threads = 2;
  return c;
}

geo::SyntheticDataset make_world(int users, std::uint64_t seed) {
  geo::GeneratorConfig cfg;
  cfg.num_users = users;
  cfg.duration_days = 25;
  cfg.trajectories_per_user_min = 90;
  cfg.trajectories_per_user_max = 130;
  cfg.seed = seed;
  return geo::generate_dataset(cfg);
}

FingerprintConfig attack_config() {
  FingerprintConfig config;
  config.cluster.radius_m = 60;
  config.cluster.min_pts = 10;
  config.top_pois = 4;
  return config;
}

/// Split every trail in half: (first halves, second halves) — the classic
/// two-release setting with known ground truth.
std::pair<geo::GeolocatedDataset, geo::GeolocatedDataset> split_halves(
    const geo::GeolocatedDataset& data) {
  geo::GeolocatedDataset first, second;
  for (const auto& [uid, trail] : data) {
    const auto half = static_cast<std::ptrdiff_t>(trail.size() / 2);
    first.add_trail(uid, geo::Trail(trail.begin(), trail.begin() + half));
    second.add_trail(uid, geo::Trail(trail.begin() + half, trail.end()));
  }
  return {std::move(first), std::move(second)};
}

// --- fingerprints ------------------------------------------------------------

TEST(Fingerprint, LineCodecRoundTripsBitExactly) {
  PoiFingerprint fp;
  fp.user_id = 42;
  fp.sites = {{40.123456789012345, 116.98765432109876, 0.625},
              {-33.871234567890123, 151.20654321098765, 0.375}};
  PoiFingerprint back;
  ASSERT_TRUE(parse_fingerprint_line(format_fingerprint_line(fp), back));
  EXPECT_EQ(back.user_id, 42);
  ASSERT_EQ(back.sites.size(), 2u);
  for (std::size_t i = 0; i < 2; ++i) {
    EXPECT_EQ(back.sites[i].latitude, fp.sites[i].latitude);    // %.17g
    EXPECT_EQ(back.sites[i].longitude, fp.sites[i].longitude);  // bit-exact
    EXPECT_EQ(back.sites[i].weight, fp.sites[i].weight);
  }

  PoiFingerprint empty;
  empty.user_id = 7;
  ASSERT_TRUE(parse_fingerprint_line(format_fingerprint_line(empty), back));
  EXPECT_EQ(back.user_id, 7);
  EXPECT_TRUE(back.empty());
}

TEST(Fingerprint, ParseRejectsMalformedLines) {
  PoiFingerprint out;
  EXPECT_FALSE(parse_fingerprint_line("", out));
  EXPECT_FALSE(parse_fingerprint_line("not,a,number", out));
  EXPECT_FALSE(parse_fingerprint_line("1,2,0.5,40.0,116.0", out));  // n=2, 1 site
  EXPECT_FALSE(parse_fingerprint_line("1,999999", out));  // absurd site count
}

TEST(Fingerprint, DistanceIsSymmetricZeroOnSelfUnlinkableOnEmpty) {
  const auto world = make_world(2, 310);
  const auto config = attack_config();
  const auto a = fingerprint_of(0, world.data.trail(0), config);
  const auto b = fingerprint_of(1, world.data.trail(1), config);
  ASSERT_FALSE(a.empty());
  ASSERT_FALSE(b.empty());
  EXPECT_EQ(fingerprint_distance(a, a), 0.0);
  EXPECT_DOUBLE_EQ(fingerprint_distance(a, b), fingerprint_distance(b, a));
  EXPECT_GT(fingerprint_distance(a, b), 0.0);
  EXPECT_EQ(fingerprint_distance(PoiFingerprint{}, b), kUnlinkableDistance);
  EXPECT_EQ(fingerprint_distance(a, PoiFingerprint{}), kUnlinkableDistance);
}

TEST(FingerprintLink, TieBreaksToLowestGalleryId) {
  PoiFingerprint probe;
  probe.user_id = 100;
  probe.sites = {{40.0, 116.0, 1.0}};
  std::vector<PoiFingerprint> gallery(3, probe);
  gallery[0].user_id = 5;
  gallery[1].user_id = 7;
  gallery[2].user_id = 9;  // identical sites: all exactly equidistant
  const auto link = link_one(probe, gallery);
  EXPECT_EQ(link.gallery_id, 5);
  EXPECT_EQ(link.distance, 0.0);

  // An empty probe is unlinkable against everyone — the argmin still
  // resolves deterministically to the lowest gallery id.
  PoiFingerprint unlinkable;
  unlinkable.user_id = 101;
  const auto l = link_one(unlinkable, gallery);
  EXPECT_EQ(l.gallery_id, 5);
  EXPECT_EQ(l.distance, kUnlinkableDistance);
}

TEST(FingerprintLink, RecoversIdentityAcrossSplitHalves) {
  const auto world = make_world(6, 311);
  const auto [gallery, probes] = split_halves(world.data);
  const auto report = run_link_attack(probes, gallery, attack_config());
  EXPECT_EQ(report.probes, 6u);
  EXPECT_GE(report.reidentification_rate, 5.0 / 6.0);
}

TEST(FingerprintLink, CloakingDegradesReidentification) {
  const auto world = make_world(6, 312);
  const auto config = attack_config();
  const auto clean = run_link_attack(world.data, world.data, config);
  EXPECT_DOUBLE_EQ(clean.reidentification_rate, 1.0);

  // Heavy cloaking (k=3, 1.6 km base cells) collapses POIs onto shared cell
  // centers; the attack cannot do better than on the clean release.
  const auto cloaked = spatial_cloaking(world.data, 3, 1600.0, 2);
  const auto attacked = run_link_attack(cloaked.data, world.data, config);
  EXPECT_LE(attacked.reidentification_rate, clean.reidentification_rate);
}

TEST(FingerprintLink, FlowMatchesSequential) {
  const auto world = make_world(5, 313);
  const auto [gallery, probes] = split_halves(world.data);
  mr::Dfs dfs(small_cluster());
  geo::dataset_to_dfs(dfs, "/probe", probes, 3);
  geo::dataset_to_dfs(dfs, "/gallery", gallery, 3);
  // Compare against the sequential attack on the round-tripped datasets so
  // both paths see byte-identical inputs.
  const auto seq = run_link_attack(geo::dataset_from_dfs(dfs, "/probe/"),
                                   geo::dataset_from_dfs(dfs, "/gallery/"),
                                   attack_config());
  const auto dist = run_link_attack_flow(dfs, small_cluster(), "/probe/",
                                         "/gallery/", "/attack",
                                         attack_config());
  EXPECT_EQ(dist.report.probes, seq.probes);
  EXPECT_EQ(dist.report.correct, seq.correct);
  EXPECT_DOUBLE_EQ(dist.report.reidentification_rate,
                   seq.reidentification_rate);
  ASSERT_EQ(dist.report.links.size(), seq.links.size());
  for (std::size_t i = 0; i < seq.links.size(); ++i) {
    EXPECT_EQ(dist.report.links[i].probe_id, seq.links[i].probe_id);
    EXPECT_EQ(dist.report.links[i].gallery_id, seq.links[i].gallery_id);
    EXPECT_EQ(dist.report.links[i].distance, seq.links[i].distance);
  }
}

// --- OD matrix ---------------------------------------------------------------

TEST(OdMatrix, ExtractsTripsAndSplitsAtGaps) {
  OdConfig cfg;
  cfg.cell_m = 500.0;
  cfg.trip_gap_s = 1800;
  geo::GeolocatedDataset d;
  d.add({1, 40.0, 116.0, 0, 0});
  d.add({1, 40.01, 116.01, 0, 600});    // ~1.5 km away: a trip
  d.add({1, 40.01, 116.01, 0, 4600});   // gap 4000 s > 1800: new run
  d.add({1, 40.0, 116.0, 0, 5200});     // the return trip
  d.add({2, 40.0, 116.0, 0, 0});        // stationary run: not a trip
  d.add({2, 40.0, 116.0, 0, 300});
  d.add({3, 40.05, 116.05, 0, 0});      // single trace: not a trip
  const auto trips = extract_trips(d, cfg);
  const GridCell a = grid_cell_of(40.0, 116.0, cfg.cell_m);
  const GridCell b = grid_cell_of(40.01, 116.01, cfg.cell_m);
  ASSERT_EQ(trips.size(), 2u);
  EXPECT_EQ(trips[0], (OdTrip{1, a.cy, a.cx, b.cy, b.cx}));
  EXPECT_EQ(trips[1], (OdTrip{1, b.cy, b.cx, a.cy, a.cx}));
}

TEST(OdMatrix, SuppressesSubKPairsByDistinctUsers) {
  OdConfig cfg;
  cfg.k = 2;
  std::vector<OdTrip> trips = {
      {1, 0, 0, 1, 1}, {2, 0, 0, 1, 1}, {3, 0, 0, 1, 1},  // 3 users on A->B
      {4, 1, 1, 0, 0},                                    // 1 user on B->A
      {1, 0, 0, 1, 1},  // a repeat trip must not inflate the user count
  };
  const auto m = build_od_matrix(trips, cfg);
  ASSERT_EQ(m.entries.size(), 1u);
  EXPECT_EQ(m.entries[0].users, 3u);
  EXPECT_EQ(m.entries[0].trips, 4u);
  EXPECT_EQ(m.total_trips, 5u);
  EXPECT_EQ(m.suppressed_trips, 1u);
  EXPECT_EQ(m.suppressed_pairs, 1u);

  const auto u = od_utility(trips, m);
  EXPECT_DOUBLE_EQ(u.trip_retention, 4.0 / 5.0);       // population side
  EXPECT_DOUBLE_EQ(u.pair_retention, 1.0 / 2.0);
  EXPECT_DOUBLE_EQ(u.participant_coverage, 3.0 / 4.0);  // user 4 erased
  EXPECT_DOUBLE_EQ(u.avg_participant_retention, 3.0 / 4.0);
}

TEST(OdMatrix, ExactlyKUsersAreReleased) {
  OdConfig cfg;
  cfg.k = 2;
  const std::vector<OdTrip> trips = {{1, 0, 0, 1, 1}, {2, 0, 0, 1, 1}};
  const auto m = build_od_matrix(trips, cfg);
  ASSERT_EQ(m.entries.size(), 1u);  // count == k: released, not suppressed
  EXPECT_EQ(m.entries[0].users, 2u);
  EXPECT_EQ(m.suppressed_pairs, 0u);
}

TEST(OdMatrix, VerifierPassesOnBuiltMatrixAndCatchesCorruption) {
  // Handcrafted commute: users 1-3 share the A->B corridor (released at
  // k=2), user 4's A->C trip is sub-k (suppressed).
  OdConfig cfg;
  cfg.cell_m = 500.0;
  cfg.k = 2;
  geo::GeolocatedDataset data;
  for (std::int32_t u = 1; u <= 3; ++u) {
    data.add({u, 40.0, 116.0, 0, 0});      // A
    data.add({u, 40.05, 116.05, 0, 600});  // B
  }
  data.add({4, 40.0, 116.0, 0, 0});    // A
  data.add({4, 40.1, 116.0, 0, 600});  // C
  const auto trips = extract_trips(data, cfg);
  ASSERT_EQ(trips.size(), 4u);
  const auto matrix = build_od_matrix(trips, cfg);
  ASSERT_EQ(matrix.entries.size(), 1u);
  EXPECT_EQ(matrix.suppressed_pairs, 1u);
  const auto report = verify_od_matrix(data, matrix, cfg);
  EXPECT_TRUE(report.ok()) << report.summary();

  // Inflate one entry's user count: the k-anonymity claim is now a lie.
  auto inflated = matrix;
  ASSERT_FALSE(inflated.entries.empty());
  inflated.entries[0].users += 1;
  EXPECT_FALSE(verify_od_matrix(data, inflated, cfg).ok());

  // Drop a mandated entry.
  auto dropped = matrix;
  dropped.entries.erase(dropped.entries.begin());
  EXPECT_FALSE(verify_od_matrix(data, dropped, cfg).ok());

  // Release a pair the contract says must be suppressed (and pretend its
  // trips were never suppressed, so conservation alone cannot catch it).
  auto leaked = matrix;
  leaked.entries.push_back({123456, 123456, 654321, 654321, 1, 1});
  std::sort(leaked.entries.begin(), leaked.entries.end());
  EXPECT_FALSE(verify_od_matrix(data, leaked, cfg).ok());
}

TEST(OdMatrix, FlowMatchesSequential) {
  const auto world = make_world(5, 315);
  mr::Dfs dfs(small_cluster());
  geo::dataset_to_dfs(dfs, "/in", world.data, 3);
  OdConfig cfg;
  cfg.cell_m = 500.0;
  cfg.k = 2;
  const auto original = geo::dataset_from_dfs(dfs, "/in/");
  const auto seq = build_od_matrix(extract_trips(original, cfg), cfg);
  const auto dist =
      run_od_matrix_flow(dfs, small_cluster(), "/in/", "/od", cfg);
  EXPECT_EQ(dist.matrix.total_trips, seq.total_trips);
  EXPECT_EQ(dist.matrix.suppressed_trips, seq.suppressed_trips);
  EXPECT_EQ(dist.matrix.suppressed_pairs, seq.suppressed_pairs);
  ASSERT_EQ(dist.matrix.entries.size(), seq.entries.size());
  for (std::size_t i = 0; i < seq.entries.size(); ++i)
    EXPECT_EQ(dist.matrix.entries[i], seq.entries[i]);
  // And the MR release satisfies its own contract.
  EXPECT_TRUE(verify_od_matrix(original, dist.matrix, cfg).ok());
}

TEST(OdMatrix, FlowValidatesArguments) {
  mr::Dfs dfs(small_cluster());
  OdConfig bad;
  bad.k = 0;
  EXPECT_THROW(run_od_matrix_flow(dfs, small_cluster(), "/in/", "/od", bad),
               gepeto::CheckFailure);
}

}  // namespace
}  // namespace gepeto::core
