// Tests for distances, dataset containers, the GeoLife format, and dataset
// statistics.
#include <gtest/gtest.h>

#include "common/check.h"
#include "common/random.h"
#include "geo/distance.h"
#include "geo/geolife.h"
#include "geo/stats.h"
#include "geo/time.h"
#include "geo/trace.h"
#include "mapreduce/dfs.h"

namespace gepeto::geo {
namespace {

// --- distances ---------------------------------------------------------------

TEST(Distance, HaversineZeroForIdenticalPoints) {
  EXPECT_DOUBLE_EQ(haversine_meters(39.9, 116.4, 39.9, 116.4), 0.0);
}

TEST(Distance, HaversineKnownValues) {
  // One degree of latitude is ~111.2 km.
  EXPECT_NEAR(haversine_meters(0, 0, 1, 0), 111195, 200);
  // Paris (48.8566, 2.3522) to London (51.5074, -0.1278): ~343.5 km.
  EXPECT_NEAR(haversine_meters(48.8566, 2.3522, 51.5074, -0.1278), 343500,
              1500);
}

TEST(Distance, HaversineSymmetric) {
  gepeto::Rng rng(31);
  for (int i = 0; i < 200; ++i) {
    const double a = rng.uniform(-80, 80), b = rng.uniform(-179, 179);
    const double c = rng.uniform(-80, 80), d = rng.uniform(-179, 179);
    EXPECT_DOUBLE_EQ(haversine_meters(a, b, c, d), haversine_meters(c, d, a, b));
  }
}

TEST(Distance, HaversineTriangleInequality) {
  gepeto::Rng rng(32);
  for (int i = 0; i < 200; ++i) {
    const double alat = rng.uniform(39, 41), alon = rng.uniform(115, 118);
    const double blat = rng.uniform(39, 41), blon = rng.uniform(115, 118);
    const double clat = rng.uniform(39, 41), clon = rng.uniform(115, 118);
    const double ab = haversine_meters(alat, alon, blat, blon);
    const double bc = haversine_meters(blat, blon, clat, clon);
    const double ac = haversine_meters(alat, alon, clat, clon);
    EXPECT_LE(ac, ab + bc + 1e-6);
  }
}

TEST(Distance, SquaredEuclideanPreservesEuclideanOrder) {
  gepeto::Rng rng(33);
  for (int i = 0; i < 500; ++i) {
    const double q[2] = {rng.uniform(-10, 10), rng.uniform(-10, 10)};
    const double a[2] = {rng.uniform(-10, 10), rng.uniform(-10, 10)};
    const double b[2] = {rng.uniform(-10, 10), rng.uniform(-10, 10)};
    const bool closer_sq = squared_euclidean_deg(q[0], q[1], a[0], a[1]) <
                           squared_euclidean_deg(q[0], q[1], b[0], b[1]);
    const bool closer_eu = euclidean_deg(q[0], q[1], a[0], a[1]) <
                           euclidean_deg(q[0], q[1], b[0], b[1]);
    EXPECT_EQ(closer_sq, closer_eu);
  }
}

TEST(Distance, ManhattanDominatesEuclidean) {
  gepeto::Rng rng(34);
  for (int i = 0; i < 200; ++i) {
    const double a = rng.uniform(-5, 5), b = rng.uniform(-5, 5);
    const double c = rng.uniform(-5, 5), d = rng.uniform(-5, 5);
    EXPECT_GE(manhattan_deg(a, b, c, d) + 1e-12, euclidean_deg(a, b, c, d));
  }
}

TEST(Distance, EquirectangularMatchesHaversineAtCityScale) {
  gepeto::Rng rng(35);
  for (int i = 0; i < 200; ++i) {
    const double lat = rng.uniform(39.8, 40.0), lon = rng.uniform(116.3, 116.5);
    const double lat2 = lat + rng.uniform(-0.02, 0.02);
    const double lon2 = lon + rng.uniform(-0.02, 0.02);
    const double h = haversine_meters(lat, lon, lat2, lon2);
    const double e = equirectangular_meters(lat, lon, lat2, lon2);
    EXPECT_NEAR(e, h, std::max(1.0, 0.005 * h));
  }
}

TEST(Distance, DispatchAndNames) {
  for (auto kind :
       {DistanceKind::kSquaredEuclidean, DistanceKind::kEuclidean,
        DistanceKind::kManhattan, DistanceKind::kHaversine}) {
    EXPECT_EQ(distance_from_name(distance_name(kind)), kind);
    EXPECT_GE(distance(kind, 0, 0, 1, 1), 0.0);
  }
  EXPECT_THROW(distance_from_name("Chebyshev"), gepeto::CheckFailure);
}

// --- dataset container --------------------------------------------------------

TEST(GeolocatedDataset, AddAndQuery) {
  GeolocatedDataset ds;
  ds.add({7, 39.9, 116.4, 100, 1000});
  ds.add({7, 39.91, 116.41, 100, 1010});
  ds.add({3, 40.0, 116.0, 100, 500});
  EXPECT_EQ(ds.num_users(), 2u);
  EXPECT_EQ(ds.num_traces(), 3u);
  EXPECT_TRUE(ds.has_user(7));
  EXPECT_FALSE(ds.has_user(8));
  EXPECT_EQ(ds.trail(7).size(), 2u);
  EXPECT_EQ(ds.users(), (std::vector<std::int32_t>{3, 7}));
  EXPECT_EQ(ds.all_traces().front().user_id, 3);
}

// --- GeoLife format ------------------------------------------------------------

MobilityTrace sample_trace() {
  MobilityTrace t;
  t.user_id = 42;
  t.latitude = 39.906631;
  t.longitude = 116.385564;
  t.altitude_ft = 492;
  t.timestamp = to_unix_seconds({2008, 10, 24, 2, 49, 30});
  return t;
}

TEST(Geolife, PltLineMatchesPaperExample) {
  // Fig. 1 of the paper shows lat,lon,0,alt,daynumber,date,time.
  const std::string line = plt_line(sample_trace());
  EXPECT_EQ(line.substr(0, 29), "39.906631,116.385564,0,492,39");
  EXPECT_NE(line.find("2008-10-24,02:49:30"), std::string::npos);
}

TEST(Geolife, PltParseRoundTrip) {
  const auto t = sample_trace();
  MobilityTrace back;
  ASSERT_TRUE(parse_plt_line(plt_line(t), t.user_id, back));
  EXPECT_EQ(back.user_id, 42);
  EXPECT_NEAR(back.latitude, t.latitude, 1e-6);
  EXPECT_NEAR(back.longitude, t.longitude, 1e-6);
  EXPECT_EQ(back.timestamp, t.timestamp);
  EXPECT_DOUBLE_EQ(back.altitude_ft, 492);
}

TEST(Geolife, PltPrintParsePrintIsIdempotent) {
  gepeto::Rng rng(41);
  for (int i = 0; i < 300; ++i) {
    MobilityTrace t;
    t.user_id = 1;
    t.latitude = rng.uniform(-80, 80);
    t.longitude = rng.uniform(-179, 179);
    t.altitude_ft = std::floor(rng.uniform(-200, 10000));
    t.timestamp = rng.uniform_int(1'100'000'000, 1'400'000'000);
    const std::string once = plt_line(t);
    MobilityTrace p;
    ASSERT_TRUE(parse_plt_line(once, 1, p));
    EXPECT_EQ(plt_line(p), once);
  }
}

TEST(Geolife, DatasetLineRoundTrip) {
  const auto t = sample_trace();
  MobilityTrace back;
  ASSERT_TRUE(parse_dataset_line(dataset_line(t), back));
  EXPECT_EQ(back.user_id, 42);
  EXPECT_EQ(back.timestamp, t.timestamp);
  EXPECT_NEAR(back.latitude, t.latitude, 1e-6);
}

TEST(Geolife, ParseRejectsMalformedLines) {
  MobilityTrace t;
  EXPECT_FALSE(parse_plt_line("", 1, t));
  EXPECT_FALSE(parse_plt_line("39.9,116.4,0,492", 1, t));  // too few fields
  EXPECT_FALSE(parse_plt_line("39.9,116.4,0,492,39745.1,2008-10-24,02:49:30,extra",
                              1, t));
  EXPECT_FALSE(parse_plt_line("abc,116.4,0,492,39745.1,2008-10-24,02:49:30", 1, t));
  EXPECT_FALSE(parse_plt_line("99.9,116.4,0,492,39745.1,2008-10-24,02:49:30", 1,
                              t));  // latitude out of range
  EXPECT_FALSE(parse_dataset_line("x,39.9,116.4,0,492,39745.1,2008-10-24,02:49:30",
                                  t));
}

TEST(Geolife, MalformedDateFallsBackToDayNumber) {
  MobilityTrace t;
  ASSERT_TRUE(
      parse_plt_line("39.9,116.4,0,492,39745.1174768519,garbage,junk!!!", 1, t));
  EXPECT_EQ(t.timestamp, from_geolife_days(39745.1174768519));
}

TEST(Geolife, HeaderHasSixLines) {
  const std::string h = plt_header();
  EXPECT_EQ(std::count(h.begin(), h.end(), '\n'), 6);
  EXPECT_NE(h.find("Geolife trajectory"), std::string::npos);
}

TEST(Geolife, DfsRoundTrip) {
  mr::ClusterConfig cc;
  cc.num_worker_nodes = 4;
  cc.chunk_size = 256;  // force multiple chunks
  mr::Dfs dfs(cc);

  GeolocatedDataset ds;
  gepeto::Rng rng(42);
  for (std::int32_t uid = 0; uid < 5; ++uid) {
    Trail trail;
    std::int64_t ts = 1'222'819'200 + uid * 1000;
    for (int i = 0; i < 20; ++i) {
      MobilityTrace t;
      t.user_id = uid;
      t.latitude = 39.9 + rng.uniform(-0.1, 0.1);
      t.longitude = 116.4 + rng.uniform(-0.1, 0.1);
      t.altitude_ft = 150;
      t.timestamp = ts;
      ts += rng.uniform_int(1, 5);
      trail.push_back(t);
    }
    ds.add_trail(uid, std::move(trail));
  }

  dataset_to_dfs(dfs, "/geolife", ds, /*num_files=*/3);
  EXPECT_EQ(dfs.list("/geolife/").size(), 3u);
  EXPECT_EQ(count_dfs_records(dfs, "/geolife/"), 100u);

  const auto back = dataset_from_dfs(dfs, "/geolife/");
  EXPECT_EQ(back.num_users(), 5u);
  EXPECT_EQ(back.num_traces(), 100u);
  for (std::int32_t uid = 0; uid < 5; ++uid) {
    const auto& a = ds.trail(uid);
    const auto& b = back.trail(uid);
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
      EXPECT_EQ(a[i].timestamp, b[i].timestamp);
      EXPECT_NEAR(a[i].latitude, b[i].latitude, 1e-6);
      EXPECT_NEAR(a[i].longitude, b[i].longitude, 1e-6);
    }
  }
}

TEST(Geolife, DfsWriteWithMoreFilesThanUsers) {
  mr::ClusterConfig cc;
  cc.num_worker_nodes = 2;
  mr::Dfs dfs(cc);
  GeolocatedDataset ds;
  ds.add({0, 39.9, 116.4, 100, 1000});
  dataset_to_dfs(dfs, "/g", ds, /*num_files=*/8);
  EXPECT_EQ(dfs.list("/g/").size(), 1u);
  EXPECT_EQ(dataset_from_dfs(dfs, "/g/").num_traces(), 1u);
}

// --- stats ---------------------------------------------------------------------

TEST(Stats, EmptyDataset) {
  const auto s = compute_stats(GeolocatedDataset{});
  EXPECT_EQ(s.num_traces, 0u);
  EXPECT_EQ(s.num_users, 0u);
}

TEST(Stats, BasicAggregates) {
  GeolocatedDataset ds;
  ds.add({1, 39.0, 116.0, 0, 1000});
  ds.add({1, 39.5, 116.2, 0, 1002});
  ds.add({2, 40.0, 117.0, 0, 900});
  const auto s = compute_stats(ds);
  EXPECT_EQ(s.num_users, 2u);
  EXPECT_EQ(s.num_traces, 3u);
  EXPECT_EQ(s.earliest, 900);
  EXPECT_EQ(s.latest, 1002);
  EXPECT_DOUBLE_EQ(s.min_latitude, 39.0);
  EXPECT_DOUBLE_EQ(s.max_longitude, 117.0);
  EXPECT_DOUBLE_EQ(s.median_sample_period_s, 2.0);
  EXPECT_GT(s.total_distance_km, 50.0);  // 0.5 deg lat hop is ~58 km
  EXPECT_FALSE(describe(s).empty());
}

}  // namespace
}  // namespace gepeto::geo
