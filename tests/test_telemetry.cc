// Tests for the telemetry subsystem (src/telemetry) and its wiring through
// the engine and the flow executor: wall/sim span nesting, the sim cursor
// and parent stack, histogram bucket/quantile math, metrics exports
// (JSON + Prometheus), dual-timeline consistency against JobResult sim
// times, Chrome-trace validity for a real k-means flow, byte-identical
// exports across same-seed reruns, and the BenchReporter schema.
#include <gtest/gtest.h>

#include <cctype>
#include <cstdio>
#include <map>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "geo/generator.h"
#include "geo/geolife.h"
#include "gepeto/kmeans.h"
#include "mapreduce/engine.h"
#include "serving/packed_rtree.h"
#include "serving/query_engine.h"
#include "telemetry/bench_report.h"
#include "telemetry/json.h"
#include "telemetry/metrics.h"
#include "telemetry/telemetry.h"
#include "telemetry/trace.h"
#include "workflow/flow.h"

namespace gepeto::telemetry {
namespace {

// --- a minimal JSON validator (no third-party JSON dependency) --------------

class JsonValidator {
 public:
  explicit JsonValidator(std::string_view text) : text_(text) {}

  bool valid() {
    skip_ws();
    if (!value()) return false;
    skip_ws();
    return pos_ == text_.size();
  }

 private:
  bool value() {
    if (pos_ >= text_.size()) return false;
    switch (text_[pos_]) {
      case '{': return object();
      case '[': return array();
      case '"': return string();
      case 't': return literal("true");
      case 'f': return literal("false");
      case 'n': return literal("null");
      default: return number();
    }
  }

  bool object() {
    ++pos_;  // '{'
    skip_ws();
    if (peek() == '}') { ++pos_; return true; }
    while (true) {
      skip_ws();
      if (!string()) return false;
      skip_ws();
      if (peek() != ':') return false;
      ++pos_;
      skip_ws();
      if (!value()) return false;
      skip_ws();
      if (peek() == ',') { ++pos_; continue; }
      if (peek() == '}') { ++pos_; return true; }
      return false;
    }
  }

  bool array() {
    ++pos_;  // '['
    skip_ws();
    if (peek() == ']') { ++pos_; return true; }
    while (true) {
      skip_ws();
      if (!value()) return false;
      skip_ws();
      if (peek() == ',') { ++pos_; continue; }
      if (peek() == ']') { ++pos_; return true; }
      return false;
    }
  }

  bool string() {
    if (peek() != '"') return false;
    ++pos_;
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c == '"') { ++pos_; return true; }
      if (static_cast<unsigned char>(c) < 0x20) return false;
      if (c == '\\') {
        ++pos_;
        if (pos_ >= text_.size()) return false;
        const char e = text_[pos_];
        if (e == 'u') {
          for (int i = 0; i < 4; ++i) {
            ++pos_;
            if (pos_ >= text_.size() ||
                !std::isxdigit(static_cast<unsigned char>(text_[pos_])))
              return false;
          }
        } else if (std::string_view("\"\\/bfnrt").find(e) ==
                   std::string_view::npos) {
          return false;
        }
      }
      ++pos_;
    }
    return false;
  }

  bool number() {
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    if (!digits()) return false;
    if (peek() == '.') {
      ++pos_;
      if (!digits()) return false;
    }
    if (peek() == 'e' || peek() == 'E') {
      ++pos_;
      if (peek() == '+' || peek() == '-') ++pos_;
      if (!digits()) return false;
    }
    return pos_ > start;
  }

  bool digits() {
    const std::size_t start = pos_;
    while (pos_ < text_.size() &&
           std::isdigit(static_cast<unsigned char>(text_[pos_])))
      ++pos_;
    return pos_ > start;
  }

  bool literal(std::string_view lit) {
    if (text_.substr(pos_, lit.size()) != lit) return false;
    pos_ += lit.size();
    return true;
  }

  char peek() const { return pos_ < text_.size() ? text_[pos_] : '\0'; }
  void skip_ws() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r'))
      ++pos_;
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

bool is_valid_json(std::string_view text) {
  return JsonValidator(text).valid();
}

TEST(JsonValidatorSelfTest, AcceptsAndRejects) {
  EXPECT_TRUE(is_valid_json(R"({"a": [1, 2.5, -3e2], "b": {"c": "x\n"}})"));
  EXPECT_TRUE(is_valid_json("[]"));
  EXPECT_FALSE(is_valid_json(R"({"a": })"));
  EXPECT_FALSE(is_valid_json(R"({"a": 1,})"));
  EXPECT_FALSE(is_valid_json("{"));
  EXPECT_FALSE(is_valid_json("1 2"));
}

// --- trace recorder ----------------------------------------------------------

// The engine and the flow executor mirror their sim spans with wall spans of
// the same name, so lookups must pick a timeline.
const Span* find_span(const std::vector<Span>& spans, std::string_view name,
                      Timeline timeline = Timeline::kSim) {
  for (const auto& s : spans)
    if (s.timeline == timeline && s.name == name) return &s;
  return nullptr;
}

TEST(WallSpans, NestViaPerThreadStack) {
  TraceRecorder rec;
  {
    auto outer = rec.wall_span("outer");
    {
      auto inner = rec.wall_span("inner", "cat");
    }
  }
  const auto spans = rec.spans();
  ASSERT_EQ(spans.size(), 2u);
  const Span* outer = find_span(spans, "outer", Timeline::kWall);
  const Span* inner = find_span(spans, "inner", Timeline::kWall);
  ASSERT_NE(outer, nullptr);
  ASSERT_NE(inner, nullptr);
  EXPECT_EQ(outer->parent, TraceRecorder::kNoParent);
  EXPECT_EQ(inner->parent, outer->id);
  EXPECT_EQ(inner->category, "cat");
  EXPECT_EQ(inner->timeline, Timeline::kWall);
  EXPECT_LE(outer->start_s, inner->start_s);
  EXPECT_LE(inner->end_s, outer->end_s);
}

TEST(WallSpans, MoveAssignEndsTheSpan) {
  TraceRecorder rec;
  auto scope = rec.wall_span("a");
  scope = WallScope();  // ends "a"
  const auto spans = rec.spans();
  ASSERT_EQ(spans.size(), 1u);
  EXPECT_GE(spans[0].end_s, spans[0].start_s);
}

TEST(SimSpans, ParentStackAndCursor) {
  TraceRecorder rec;
  EXPECT_DOUBLE_EQ(rec.sim_cursor(), 0.0);
  EXPECT_EQ(rec.current_sim_parent(), TraceRecorder::kNoParent);

  const auto outer = rec.begin_sim_span("outer", "flow", 1.0);
  EXPECT_EQ(rec.current_sim_parent(), outer);
  const auto child =
      rec.add_sim_span("child", "job", 1.0, 3.0, /*node=*/2, /*slot=*/1);
  const auto explicit_root =
      rec.add_sim_span("root2", "job", 3.0, 4.0, -1, 0,
                       TraceRecorder::kNoParent);
  rec.end_sim_span(outer, 5.0);
  const auto after = rec.add_sim_span("after", "job", 5.0, 6.0);

  const auto spans = rec.spans();
  const Span* c = find_span(spans, "child");
  ASSERT_NE(c, nullptr);
  EXPECT_EQ(c->parent, outer);
  EXPECT_EQ(c->node, 2);
  EXPECT_EQ(c->slot, 1);
  EXPECT_EQ(c->id, child);
  EXPECT_EQ(find_span(spans, "root2")->parent, TraceRecorder::kNoParent);
  EXPECT_EQ(find_span(spans, "root2")->id, explicit_root);
  // Once "outer" ended, kCurrentParent resolves to no parent again.
  EXPECT_EQ(find_span(spans, "after")->parent, TraceRecorder::kNoParent);
  EXPECT_EQ(find_span(spans, "after")->id, after);
  EXPECT_EQ(find_span(spans, "outer")->end_s, 5.0);
  EXPECT_DOUBLE_EQ(rec.sim_end(), 6.0);

  rec.set_sim_cursor(42.0);
  EXPECT_DOUBLE_EQ(rec.sim_cursor(), 42.0);
}

TEST(ChromeTrace, ExportsOneTimelineWithMetadata) {
  TraceRecorder rec;
  rec.add_sim_span("task", "map", 0.0, 1.5, /*node=*/0, /*slot=*/1);
  rec.add_sim_instant("marker", "dfs", 0.5, /*node=*/0);
  {
    auto w = rec.wall_span("host-only");
  }
  const std::string sim = rec.chrome_trace_json(Timeline::kSim);
  EXPECT_TRUE(is_valid_json(sim)) << sim;
  EXPECT_NE(sim.find("\"task\""), std::string::npos);
  EXPECT_NE(sim.find("\"marker\""), std::string::npos);
  EXPECT_NE(sim.find("process_name"), std::string::npos);
  // Wall spans stay off the sim export and vice versa.
  EXPECT_EQ(sim.find("host-only"), std::string::npos);
  const std::string wall = rec.chrome_trace_json(Timeline::kWall);
  EXPECT_TRUE(is_valid_json(wall)) << wall;
  EXPECT_NE(wall.find("host-only"), std::string::npos);
  EXPECT_EQ(wall.find("\"task\""), std::string::npos);
}

// --- histogram math ----------------------------------------------------------

TEST(Histogram, BucketAssignmentAndQuantiles) {
  Histogram h({1.0, 2.0, 4.0});
  for (double v : {0.5, 1.0, 1.5, 3.0, 100.0}) h.observe(v);

  EXPECT_EQ(h.count(), 5u);
  EXPECT_DOUBLE_EQ(h.sum(), 106.0);
  // Buckets are (lo, hi]: 1.0 lands in the first bucket, 100 overflows.
  const auto counts = h.bucket_counts();
  ASSERT_EQ(counts.size(), 4u);
  EXPECT_EQ(counts[0], 2u);
  EXPECT_EQ(counts[1], 1u);
  EXPECT_EQ(counts[2], 1u);
  EXPECT_EQ(counts[3], 1u);

  // target = q * count = 2.5 -> second bucket (1, 2], halfway in.
  EXPECT_DOUBLE_EQ(h.quantile(0.5), 1.5);
  // The overflow bucket clamps to the highest finite bound.
  EXPECT_DOUBLE_EQ(h.quantile(1.0), 4.0);
  EXPECT_DOUBLE_EQ(h.quantile(0.0), 0.0);
  EXPECT_LE(h.quantile(0.25), h.quantile(0.75));
}

TEST(Histogram, EmptyQuantileIsZero) {
  Histogram h({1.0});
  EXPECT_DOUBLE_EQ(h.quantile(0.5), 0.0);
  EXPECT_EQ(h.count(), 0u);
}

// --- metrics registry --------------------------------------------------------

TEST(MetricsRegistry, ExportsJsonAndPrometheus) {
  MetricsRegistry m;
  m.counter("jobs_total", "jobs run").add(3);
  m.gauge("queue_depth").set(1.5);
  m.histogram("latency_seconds", {0.1, 1.0}, "op latency").observe(0.05);
  m.histogram("latency_seconds", {0.1, 1.0}).observe(0.5);

  EXPECT_EQ(m.find_counter("jobs_total")->value(), 3);
  EXPECT_EQ(m.find_counter("missing"), nullptr);

  const std::string json = m.to_json();
  EXPECT_TRUE(is_valid_json(json)) << json;
  EXPECT_NE(json.find("\"jobs_total\":3"), std::string::npos);
  EXPECT_NE(json.find("\"latency_seconds\""), std::string::npos);
  EXPECT_NE(json.find("\"+Inf\""), std::string::npos);

  const std::string prom = m.to_prometheus();
  EXPECT_NE(prom.find("# HELP jobs_total jobs run"), std::string::npos);
  EXPECT_NE(prom.find("# TYPE jobs_total counter"), std::string::npos);
  EXPECT_NE(prom.find("jobs_total 3\n"), std::string::npos);
  EXPECT_NE(prom.find("# TYPE queue_depth gauge"), std::string::npos);
  // Prometheus buckets are cumulative and end with +Inf == _count.
  EXPECT_NE(prom.find("latency_seconds_bucket{le=\"0.1\"} 1"),
            std::string::npos);
  EXPECT_NE(prom.find("latency_seconds_bucket{le=\"1\"} 2"),
            std::string::npos);
  EXPECT_NE(prom.find("latency_seconds_bucket{le=\"+Inf\"} 2"),
            std::string::npos);
  EXPECT_NE(prom.find("latency_seconds_count 2"), std::string::npos);
}

TEST(MetricsRegistry, ServingMetricsAreRegisteredAndExported) {
  // The serving layer's QueryEngine registers its counters/gauge/histogram
  // on construction and bumps them per query and per epoch swap; the whole
  // family must surface in both export formats.
  MetricsRegistry m;
  serving::ServingConfig config;
  config.metrics = &m;
  serving::QueryEngine engine(config);

  auto snap = std::make_shared<serving::IndexSnapshot>();
  snap->tree = serving::PackedRTree::build(
      {{39.9, 116.4, 1, 0.0, 1}, {39.95, 116.45, 2, 0.0, 1}});
  engine.publish(snap);
  engine.knn(39.9, 116.4, 2);
  engine.knn(39.9, 116.4, 2);  // cache hit
  engine.range(index::Rect::of(39.8, 116.3, 40.0, 116.5));
  engine.locate(39.9, 116.4);

  ASSERT_NE(m.find_counter("serving_queries_total"), nullptr);
  EXPECT_EQ(m.find_counter("serving_queries_total")->value(), 4);
  ASSERT_NE(m.find_counter("serving_cache_hits_total"), nullptr);
  EXPECT_EQ(m.find_counter("serving_cache_hits_total")->value(), 1);
  ASSERT_NE(m.find_counter("serving_cache_misses_total"), nullptr);
  EXPECT_EQ(m.find_counter("serving_cache_misses_total")->value(), 3);
  ASSERT_NE(m.find_counter("serving_epoch_swaps_total"), nullptr);
  EXPECT_EQ(m.find_counter("serving_epoch_swaps_total")->value(), 1);
  ASSERT_NE(m.find_gauge("serving_epoch"), nullptr);
  EXPECT_EQ(m.find_gauge("serving_epoch")->value(), 1.0);
  const Histogram* latency = m.find_histogram("serving_query_seconds");
  ASSERT_NE(latency, nullptr);
  EXPECT_EQ(latency->count(), 4u);
  EXPECT_GT(latency->quantile(0.99), 0.0);  // p99 derivable from buckets

  const std::string prom = m.to_prometheus();
  for (const char* name :
       {"serving_queries_total", "serving_cache_hits_total",
        "serving_cache_misses_total", "serving_epoch_swaps_total",
        "serving_epoch", "serving_query_seconds_bucket",
        "serving_query_seconds_count"}) {
    EXPECT_NE(prom.find(name), std::string::npos) << name;
  }
  const std::string json = m.to_json();
  EXPECT_TRUE(is_valid_json(json)) << json;
  EXPECT_NE(json.find("\"serving_queries_total\":4"), std::string::npos);
}

TEST(MetricsRegistry, ExportsAreDeterministic) {
  auto fill = [](MetricsRegistry& m) {
    m.counter("b_total").add(2);
    m.counter("a_total").add(1);
    m.histogram("h_seconds", {0.5, 5.0}).observe(0.7);
  };
  MetricsRegistry m1, m2;
  fill(m1);
  fill(m2);
  EXPECT_EQ(m1.to_json(), m2.to_json());
  EXPECT_EQ(m1.to_prometheus(), m2.to_prometheus());
}

// --- engine wiring -----------------------------------------------------------

mr::ClusterConfig test_cluster(std::size_t chunk = 64) {
  mr::ClusterConfig c;
  c.num_worker_nodes = 4;
  c.nodes_per_rack = 2;
  c.chunk_size = chunk;
  c.execution_threads = 2;
  c.seed = 99;
  // Modeled CPU time: the virtual timeline is a pure function of the input,
  // so trace exports can be compared byte for byte.
  c.modeled_seconds_per_record = 1e-5;
  return c;
}

struct EchoMapper {
  void map(std::int64_t, std::string_view line, mr::MapOnlyContext& ctx) {
    ctx.write(line);
  }
};

struct WcMapper {
  using OutKey = std::string;
  using OutValue = std::int64_t;
  void map(std::int64_t, std::string_view line,
           mr::MapContext<OutKey, OutValue>& ctx) {
    ctx.emit(std::string(line), 1);
  }
};

struct WcReducer {
  void reduce(const std::string& key, std::span<const std::int64_t> values,
              mr::ReduceContext& ctx) {
    std::int64_t sum = 0;
    for (auto v : values) sum += v;
    ctx.write(key + "\t" + std::to_string(sum));
  }
};

TEST(EngineTelemetry, JobSpansMatchJobResultSimTimes) {
  TraceRecorder rec;
  MetricsRegistry metrics;
  mr::Dfs dfs(test_cluster());
  dfs.put("/in/data", "alpha\nbravo\ncharlie\ndelta\necho\nfoxtrot\n");

  mr::JobConfig job;
  job.name = "echo";
  job.input = "/in";
  job.output = "/out";
  job.telemetry = {&rec, &metrics};
  const auto r = mr::run_map_only_job(dfs, test_cluster(), job,
                                      [] { return EchoMapper{}; });

  const auto spans = rec.spans();
  const Span* job_span = find_span(spans, "job:echo");
  ASSERT_NE(job_span, nullptr);
  EXPECT_EQ(job_span->timeline, Timeline::kSim);
  EXPECT_NEAR(job_span->end_s - job_span->start_s, r.sim_seconds, 1e-9);
  // The cursor advanced past the job: the next job lays out after it.
  EXPECT_NEAR(rec.sim_cursor(), r.sim_seconds, 1e-9);

  const Span* map_phase = find_span(spans, "map phase");
  ASSERT_NE(map_phase, nullptr);
  EXPECT_EQ(map_phase->parent, job_span->id);
  EXPECT_NEAR(map_phase->end_s - map_phase->start_s, r.sim_map_seconds, 1e-9);

  // One sim span per map attempt, each within the map phase and placed on a
  // real (node, slot) track.
  int map_attempts = 0;
  for (const auto& s : spans) {
    if (s.category != "map") continue;
    ++map_attempts;
    EXPECT_GE(s.start_s, map_phase->start_s - 1e-9);
    EXPECT_LE(s.end_s, map_phase->end_s + 1e-9);
    EXPECT_GE(s.node, 0);
    EXPECT_LT(s.node, 4);
  }
  EXPECT_EQ(map_attempts, r.num_map_tasks);

  // A matching wall-timeline span was recorded too (dual timeline).
  bool wall_job = false;
  for (const auto& s : spans)
    wall_job |= (s.timeline == Timeline::kWall && s.name == "job:echo");
  EXPECT_TRUE(wall_job);

  EXPECT_EQ(metrics.find_counter("mr_jobs_total")->value(), 1);
  EXPECT_EQ(metrics.find_counter("mr_map_tasks_total")->value(),
            r.num_map_tasks);
}

TEST(EngineTelemetry, ReducePhaseSpansForMapReduceJobs) {
  TraceRecorder rec;
  mr::Dfs dfs(test_cluster(16));
  dfs.put("/in/corpus", "a\nb\na\nc\nb\na\n");
  mr::JobConfig job;
  job.name = "wc";
  job.input = "/in";
  job.output = "/out";
  job.num_reducers = 2;
  job.telemetry = {&rec, nullptr};
  const auto r = mr::run_mapreduce_job(dfs, test_cluster(16), job,
                                       [] { return WcMapper{}; },
                                       [] { return WcReducer{}; });

  const auto spans = rec.spans();
  const Span* reduce_phase = find_span(spans, "reduce phase");
  ASSERT_NE(reduce_phase, nullptr);
  EXPECT_NEAR(reduce_phase->end_s - reduce_phase->start_s,
              r.sim_reduce_seconds, 1e-9);
  int reduce_attempts = 0;
  for (const auto& s : spans)
    if (s.category == "reduce") ++reduce_attempts;
  EXPECT_EQ(reduce_attempts, r.num_reduce_tasks);
  // Breakdown children (shuffle/sort-reduce/write) exist inside attempts.
  EXPECT_NE(find_span(spans, "shuffle"), nullptr);
}

TEST(EngineTelemetry, DisabledTelemetryRecordsNothing) {
  mr::Dfs dfs(test_cluster());
  dfs.put("/in/data", "one\ntwo\n");
  mr::JobConfig job;
  job.input = "/in";
  job.output = "/out";
  const auto r = mr::run_map_only_job(dfs, test_cluster(), job,
                                      [] { return EchoMapper{}; });
  EXPECT_GT(r.sim_seconds, 0.0);  // the job itself still runs fine
}

// --- flow wiring -------------------------------------------------------------

TEST(FlowTelemetry, NodeSpansCoverEveryNodeAndMatchMakespan) {
  TraceRecorder rec;
  MetricsRegistry metrics;
  mr::Dfs dfs(test_cluster());
  dfs.put("/in/data", "uno\ndos\ntres\n");

  flow::Flow f("pipeline");
  f.add_map_only("copy-1",
                 [](flow::FlowEngine& e) {
                   mr::JobConfig j;
                   j.name = "copy-1";
                   j.input = "/in";
                   j.output = "/mid";
                   return mr::run_map_only_job(e.dfs(), e.cluster(), j,
                                               [] { return EchoMapper{}; });
                 })
      .reads("/in")
      .writes("/mid");
  f.add_map_only("copy-2",
                 [](flow::FlowEngine& e) {
                   mr::JobConfig j;
                   j.name = "copy-2";
                   j.input = "/mid";
                   j.output = "/out";
                   return mr::run_map_only_job(e.dfs(), e.cluster(), j,
                                               [] { return EchoMapper{}; });
                 })
      .reads("/mid")
      .writes("/out");
  f.add_native("bill", [](flow::FlowEngine& e) { e.charge_sim(2.0); })
      .after("copy-2");

  flow::FlowOptions options;
  options.telemetry = {&rec, &metrics};
  const auto fr = f.run(dfs, test_cluster(), options);

  const auto spans = rec.spans();
  const Span* flow_span = find_span(spans, "flow:pipeline");
  ASSERT_NE(flow_span, nullptr);
  EXPECT_NEAR(flow_span->end_s - flow_span->start_s, fr.sim_seconds, 1e-9);

  for (const auto& nr : fr.nodes) {
    const Span* ns = find_span(spans, "node:" + nr.name);
    ASSERT_NE(ns, nullptr) << nr.name;
    EXPECT_EQ(ns->parent, flow_span->id);
    EXPECT_NEAR(ns->start_s - flow_span->start_s, nr.sim_start_seconds, 1e-9);
    EXPECT_NEAR(ns->end_s - flow_span->start_s, nr.sim_finish_seconds, 1e-9);
  }

  // Job spans nest under their node spans (ambient handle through the Dfs).
  const Span* job1 = find_span(spans, "job:copy-1");
  ASSERT_NE(job1, nullptr);
  EXPECT_EQ(job1->parent, find_span(spans, "node:copy-1")->id);

  // /mid was produced and fully consumed inside the flow: GC'd + traced.
  bool gc_instant = false;
  for (const auto& s : spans) gc_instant |= (s.name == "gc:/mid");
  EXPECT_TRUE(gc_instant);

  EXPECT_EQ(metrics.find_counter("flow_runs_total")->value(), 1);
  EXPECT_EQ(metrics.find_counter("flow_nodes_run_total")->value(), 3);
  EXPECT_EQ(metrics.find_counter("mr_jobs_total")->value(), 2);
}

TEST(FlowTelemetry, KMeansFlowTraceIsValidAndByteIdentical) {
  const auto world = geo::generate_dataset(
      geo::scaled_config(/*num_users=*/4, /*target_traces=*/2'000,
                         /*seed=*/2013));
  auto run_once = [&](TraceRecorder& rec) {
    const auto cluster = test_cluster(1 << 12);
    mr::Dfs dfs(cluster);
    geo::dataset_to_dfs(dfs, "/in", world.data, 2);
    dfs.set_telemetry({&rec, nullptr});
    core::KMeansConfig config;
    config.k = 3;
    config.seed = 7;
    config.max_iterations = 2;
    config.convergence_delta_m = 0.0;  // run exactly max_iterations
    return core::kmeans_mapreduce(dfs, cluster, "/in/", "/clusters", config);
  };

  TraceRecorder rec1, rec2;
  const auto r1 = run_once(rec1);
  const auto r2 = run_once(rec2);

  const std::string trace = rec1.chrome_trace_json(Timeline::kSim);
  EXPECT_TRUE(is_valid_json(trace));
  // Byte-identical across same-seed reruns (modeled CPU cost).
  EXPECT_EQ(trace, rec2.chrome_trace_json(Timeline::kSim));

  const auto spans = rec1.spans();
  ASSERT_NE(find_span(spans, "flow:kmeans"), nullptr);
  int job_spans = 0, map_attempts = 0;
  for (const auto& s : spans) {
    if (s.timeline != Timeline::kSim) continue;
    if (s.category == "job") ++job_spans;
    if (s.category == "map") ++map_attempts;
  }
  EXPECT_EQ(job_spans, r1.iterations);  // one MapReduce job per iteration
  EXPECT_EQ(map_attempts, r1.totals.num_map_tasks);
  // The traced makespan covers the whole flow.
  EXPECT_GE(rec1.sim_end(),
            find_span(spans, "flow:kmeans")->end_s - 1e-9);
}

// --- bench reporter ----------------------------------------------------------

TEST(BenchReporter, JsonSchemaAndAggregation) {
  BenchReporter report("unit_test", "smoke");
  report.set_param("nodes", std::int64_t{7});
  report.set_param("note", "hello \"world\"");
  report.add_row("row-a")
      .set_sim_seconds(1.5)
      .set_wall_seconds(0.25)
      .set_param("chunk_mb", std::int64_t{32})
      .add_counter("map_tasks", 4);
  report.add_row("row-b")
      .set_sim_seconds(2.5)
      .set_wall_seconds(0.75)
      .add_counter("map_tasks", 6);

  const std::string json = report.to_json();
  EXPECT_TRUE(is_valid_json(json)) << json;
  EXPECT_NE(json.find("\"name\":\"unit_test\""), std::string::npos);
  EXPECT_NE(json.find("\"scale\":\"smoke\""), std::string::npos);
  EXPECT_NE(json.find("\"sim_seconds\":4"), std::string::npos);   // summed
  EXPECT_NE(json.find("\"wall_seconds\":1"), std::string::npos);  // summed
  EXPECT_NE(json.find("\"map_tasks\":10"), std::string::npos);    // merged
  EXPECT_NE(json.find("\"row-a\""), std::string::npos);
  EXPECT_NE(json.find("\"hello \\\"world\\\"\""), std::string::npos);

  const std::string path = report.write(::testing::TempDir());
  ASSERT_FALSE(path.empty());
  EXPECT_NE(path.find("BENCH_unit_test.json"), std::string::npos);
  std::FILE* fp = std::fopen(path.c_str(), "rb");
  ASSERT_NE(fp, nullptr);
  std::string contents;
  char buf[4096];
  std::size_t n;
  while ((n = std::fread(buf, 1, sizeof buf, fp)) > 0) contents.append(buf, n);
  std::fclose(fp);
  EXPECT_EQ(contents, json + "\n");
}

TEST(TelemetryHandle, OrElseFallsBackFieldwise) {
  TraceRecorder rec;
  MetricsRegistry metrics;
  Telemetry none;
  EXPECT_FALSE(none.enabled());
  Telemetry ambient{&rec, &metrics};
  const Telemetry resolved = none.or_else(ambient);
  EXPECT_EQ(resolved.trace, &rec);
  EXPECT_EQ(resolved.metrics, &metrics);
  Telemetry trace_only{&rec, nullptr};
  const Telemetry mixed = trace_only.or_else(ambient);
  EXPECT_EQ(mixed.trace, &rec);
  EXPECT_EQ(mixed.metrics, &metrics);
}

}  // namespace
}  // namespace gepeto::telemetry
