// Tests for down-sampling (paper Section V): both representative-selection
// techniques, sequential vs MapReduce equivalence, and the Table-I-style
// reduction behaviour.
#include <gtest/gtest.h>

#include <algorithm>

#include "common/check.h"
#include "geo/generator.h"
#include "geo/geolife.h"
#include "gepeto/sampling.h"
#include "mapreduce/dfs.h"

namespace gepeto::core {
namespace {

using geo::GeolocatedDataset;
using geo::MobilityTrace;
using geo::Trail;

MobilityTrace at(std::int32_t uid, std::int64_t ts, double lat = 39.9,
                 double lon = 116.4) {
  return {uid, lat, lon, 150.0, ts};
}

mr::ClusterConfig small_cluster(std::size_t chunk = 4096) {
  mr::ClusterConfig c;
  c.num_worker_nodes = 4;
  c.nodes_per_rack = 2;
  c.chunk_size = chunk;
  c.execution_threads = 2;
  return c;
}

TEST(WindowReference, UpperLimitAndMiddle) {
  SamplingConfig upper{60, SamplingTechnique::kUpperLimit};
  SamplingConfig middle{60, SamplingTechnique::kMiddle};
  EXPECT_EQ(window_reference(upper, 0), 60);
  EXPECT_EQ(window_reference(upper, 3), 240);
  EXPECT_EQ(window_reference(middle, 0), 30);
  EXPECT_EQ(window_reference(middle, 3), 210);
}

TEST(Downsample, OneTracePerWindow) {
  GeolocatedDataset ds;
  // Windows [0,60): ts 10, 50; [60,120): ts 70; [180,240): ts 200.
  ds.add_trail(1, {at(1, 10), at(1, 50), at(1, 70), at(1, 200)});
  const auto out =
      downsample(ds, {60, SamplingTechnique::kUpperLimit});
  const auto& trail = out.trail(1);
  ASSERT_EQ(trail.size(), 3u);
  EXPECT_EQ(trail[0].timestamp, 50);   // closest to 60
  EXPECT_EQ(trail[1].timestamp, 70);
  EXPECT_EQ(trail[2].timestamp, 200);
}

TEST(Downsample, UpperLimitPicksClosestToWindowEnd) {
  GeolocatedDataset ds;
  ds.add_trail(1, {at(1, 0), at(1, 20), at(1, 59)});
  const auto out = downsample(ds, {60, SamplingTechnique::kUpperLimit});
  ASSERT_EQ(out.trail(1).size(), 1u);
  EXPECT_EQ(out.trail(1)[0].timestamp, 59);
}

TEST(Downsample, MiddlePicksClosestToWindowCenter) {
  GeolocatedDataset ds;
  ds.add_trail(1, {at(1, 0), at(1, 28), at(1, 59)});
  const auto out = downsample(ds, {60, SamplingTechnique::kMiddle});
  ASSERT_EQ(out.trail(1).size(), 1u);
  EXPECT_EQ(out.trail(1)[0].timestamp, 28);  // closest to 30
}

TEST(Downsample, TechniquesDifferOnSkewedWindows) {
  GeolocatedDataset ds;
  ds.add_trail(1, {at(1, 5), at(1, 31), at(1, 58)});
  const auto upper = downsample(ds, {60, SamplingTechnique::kUpperLimit});
  const auto middle = downsample(ds, {60, SamplingTechnique::kMiddle});
  EXPECT_EQ(upper.trail(1)[0].timestamp, 58);
  EXPECT_EQ(middle.trail(1)[0].timestamp, 31);
}

TEST(Downsample, TiesKeepEarliestTrace) {
  GeolocatedDataset ds;
  // Both 25 and 35 are 5 s from the middle reference 30.
  ds.add_trail(1, {at(1, 25), at(1, 35)});
  const auto out = downsample(ds, {60, SamplingTechnique::kMiddle});
  ASSERT_EQ(out.trail(1).size(), 1u);
  EXPECT_EQ(out.trail(1)[0].timestamp, 25);
}

TEST(Downsample, UsersAreIndependent) {
  GeolocatedDataset ds;
  ds.add_trail(1, {at(1, 10), at(1, 50)});
  ds.add_trail(2, {at(2, 10), at(2, 50)});
  const auto out = downsample(ds, {60, SamplingTechnique::kUpperLimit});
  EXPECT_EQ(out.trail(1).size(), 1u);
  EXPECT_EQ(out.trail(2).size(), 1u);
}

TEST(Downsample, WindowLargerThanTrailKeepsOne) {
  GeolocatedDataset ds;
  ds.add_trail(1, {at(1, 0), at(1, 100), at(1, 200)});
  const auto out = downsample(ds, {100000, SamplingTechnique::kUpperLimit});
  EXPECT_EQ(out.trail(1).size(), 1u);
}

TEST(Downsample, InvalidWindowThrows) {
  GeolocatedDataset ds;
  EXPECT_THROW(downsample(ds, {0, SamplingTechnique::kUpperLimit}),
               gepeto::CheckFailure);
}

TEST(Downsample, CountNonIncreasingInWindow) {
  const auto synthetic = geo::generate_dataset([] {
    geo::GeneratorConfig cfg;
    cfg.num_users = 4;
    cfg.duration_days = 10;
    cfg.seed = 77;
    return cfg;
  }());
  std::size_t prev = synthetic.data.num_traces();
  for (int window : {60, 300, 600, 3600}) {
    const auto out =
        downsample(synthetic.data, {window, SamplingTechnique::kUpperLimit});
    EXPECT_LE(out.num_traces(), prev) << "window " << window;
    prev = out.num_traces();
  }
}

TEST(Downsample, DrasticReductionOnDenseData) {
  // GeoLife-density data (1-5 s sampling): 1-minute sampling divides the
  // trace count by an order of magnitude (Table I's 2,033,686 -> 155,260).
  const auto synthetic = geo::generate_dataset([] {
    geo::GeneratorConfig cfg;
    cfg.num_users = 6;
    cfg.duration_days = 15;
    cfg.seed = 78;
    return cfg;
  }());
  const auto out =
      downsample(synthetic.data, {60, SamplingTechnique::kUpperLimit});
  const double factor = static_cast<double>(synthetic.data.num_traces()) /
                        static_cast<double>(out.num_traces());
  EXPECT_GT(factor, 8.0);
  EXPECT_LT(factor, 40.0);
}

// --- MapReduce vs sequential -----------------------------------------------

struct SamplingMrCase {
  int window_s;
  SamplingTechnique technique;
  std::size_t chunk;
};

class SamplingMr : public ::testing::TestWithParam<SamplingMrCase> {};

TEST_P(SamplingMr, MapOnlyJobMatchesSequentialWithWholeFileChunks) {
  const auto p = GetParam();
  const auto synthetic = geo::generate_dataset([] {
    geo::GeneratorConfig cfg;
    cfg.num_users = 3;
    cfg.duration_days = 8;
    cfg.seed = 79;
    return cfg;
  }());

  // Chunk large enough that every file is one chunk: the mapper sees whole
  // trails and must match the sequential result exactly.
  mr::Dfs dfs(small_cluster(1 << 26));
  geo::dataset_to_dfs(dfs, "/in", synthetic.data, 2);
  const SamplingConfig config{p.window_s, p.technique};
  run_sampling_job(dfs, small_cluster(1 << 26), "/in/", "/out", config);

  const auto got = geo::dataset_from_dfs(dfs, "/out/");
  // The reference runs on the same text representation the job read
  // (dataset lines round coordinates to 1e-6 degrees).
  const auto want = downsample(geo::dataset_from_dfs(dfs, "/in/"), config);
  ASSERT_EQ(got.num_traces(), want.num_traces());
  for (auto uid : want.users()) EXPECT_EQ(got.trail(uid), want.trail(uid));
}

INSTANTIATE_TEST_SUITE_P(
    Grid, SamplingMr,
    ::testing::Values(SamplingMrCase{60, SamplingTechnique::kUpperLimit, 0},
                      SamplingMrCase{60, SamplingTechnique::kMiddle, 0},
                      SamplingMrCase{300, SamplingTechnique::kUpperLimit, 0},
                      SamplingMrCase{300, SamplingTechnique::kMiddle, 0},
                      SamplingMrCase{600, SamplingTechnique::kUpperLimit, 0},
                      SamplingMrCase{600, SamplingTechnique::kMiddle, 0}),
    [](const auto& info) {
      return "w" + std::to_string(info.param.window_s) +
             (info.param.technique == SamplingTechnique::kUpperLimit ? "_upper"
                                                                     : "_mid");
    });

TEST(SamplingMrBoundary, SmallChunksRemainExact) {
  const auto synthetic = geo::generate_dataset([] {
    geo::GeneratorConfig cfg;
    cfg.num_users = 3;
    cfg.duration_days = 8;
    cfg.seed = 80;
    return cfg;
  }());
  const SamplingConfig config{60, SamplingTechnique::kUpperLimit};

  mr::Dfs dfs(small_cluster(8192));  // many chunks per file
  geo::dataset_to_dfs(dfs, "/in", synthetic.data, 2);
  const auto want = downsample(geo::dataset_from_dfs(dfs, "/in/"), config);
  const auto jr =
      run_sampling_job(dfs, small_cluster(8192), "/in/", "/out", config);

  // The group-aware split protocol makes the map-only job exact for any
  // chunk size: window groups straddling chunk boundaries are summarized
  // once, by the split owning their first trace.
  ASSERT_GT(jr.num_map_tasks, 2);
  EXPECT_EQ(geo::count_dfs_records(dfs, "/out/"), want.num_traces());
}

// Regression: a (user, window) group straddling a chunk boundary used to be
// summarized once per chunk — the mapper's window state restarted with every
// map task, duplicating the group's representative. One user, one window,
// a file of many tiny chunks: the output must be a single trace.
TEST(SamplingMrBoundary, GroupAcrossChunkEdgeIsExact) {
  GeolocatedDataset ds;
  Trail trail;
  for (int i = 0; i < 60; ++i) trail.push_back(at(1, i * 30));
  ds.add_trail(1, std::move(trail));  // all traces in window [0, 3600)
  const SamplingConfig config{3600, SamplingTechnique::kUpperLimit};

  mr::Dfs dfs(small_cluster(256));  // the group spans many chunks
  geo::dataset_to_dfs(dfs, "/in", ds, 1);
  ASSERT_GT(dfs.chunks("/in/points-00000").size(), 3u);
  const auto want = downsample(geo::dataset_from_dfs(dfs, "/in/"), config);
  ASSERT_EQ(want.num_traces(), 1u);

  run_sampling_job(dfs, small_cluster(256), "/in/", "/out", config);
  ASSERT_EQ(geo::count_dfs_records(dfs, "/out/"), 1u);
  EXPECT_EQ(geo::dataset_from_dfs(dfs, "/out/").trail(1), want.trail(1));
}

TEST(SamplingMrExact, MatchesSequentialForAnyChunking) {
  const auto synthetic = geo::generate_dataset([] {
    geo::GeneratorConfig cfg;
    cfg.num_users = 3;
    cfg.duration_days = 8;
    cfg.seed = 81;
    return cfg;
  }());
  const SamplingConfig config{300, SamplingTechnique::kMiddle};

  for (std::size_t chunk : {4096u, 65536u, 1u << 26}) {
    mr::Dfs dfs(small_cluster(chunk));
    geo::dataset_to_dfs(dfs, "/in", synthetic.data, 3);
    const auto want = downsample(geo::dataset_from_dfs(dfs, "/in/"), config);
    run_sampling_job_exact(dfs, small_cluster(chunk), "/in/", "/out", config,
                           3);
    auto got = geo::dataset_from_dfs(dfs, "/out/");
    ASSERT_EQ(got.num_traces(), want.num_traces()) << "chunk " << chunk;
    for (auto uid : want.users()) {
      // Reducer outputs arrive in key-hash order, not time order: sort
      // before comparing.
      auto trail = got.trail(uid);
      std::sort(trail.begin(), trail.end(),
                [](const auto& a, const auto& b) {
                  return a.timestamp < b.timestamp;
                });
      EXPECT_EQ(trail, want.trail(uid)) << "chunk " << chunk;
    }
  }
}

TEST(SamplingMr, CountersReportWindows) {
  GeolocatedDataset ds;
  ds.add_trail(1, {at(1, 10), at(1, 50), at(1, 70)});
  mr::Dfs dfs(small_cluster());
  geo::dataset_to_dfs(dfs, "/in", ds, 1);
  const auto jr = run_sampling_job(dfs, small_cluster(), "/in/", "/out",
                                   {60, SamplingTechnique::kUpperLimit});
  EXPECT_EQ(jr.counters.at("sampling.windows"), 2);
  EXPECT_EQ(jr.output_records, 2u);
  EXPECT_EQ(jr.map_input_records, 3u);
}

TEST(SamplingMr, MalformedLinesAreCountedNotFatal) {
  mr::Dfs dfs(small_cluster());
  dfs.put("/in/data",
          geo::dataset_line(at(1, 10)) + "\ngarbage line\n" +
              geo::dataset_line(at(1, 70)) + "\n");
  const auto jr = run_sampling_job(dfs, small_cluster(), "/in/", "/out",
                                   {60, SamplingTechnique::kUpperLimit});
  EXPECT_EQ(jr.counters.at("sampling.malformed_lines"), 1);
  EXPECT_EQ(jr.output_records, 2u);
}

}  // namespace
}  // namespace gepeto::core
