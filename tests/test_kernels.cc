// Tests for the batched distance kernels (geo/kernels.h): the bit-identity
// contract between the scalar and SIMD backends (including NaN/Inf inputs,
// antimeridian coordinates, and every remainder-lane count), legacy
// agreement, the lowest-index tie-break, the batch helpers' per-pair
// equality with the single-pair formulas, and byte-identical k-means output
// across backends.
#include <gtest/gtest.h>

#include <bit>
#include <cmath>
#include <cstdint>
#include <limits>
#include <string>
#include <vector>

#include "common/random.h"
#include "geo/distance.h"
#include "geo/generator.h"
#include "geo/geolife.h"
#include "geo/kernels.h"
#include "gepeto/kmeans.h"

namespace gepeto::geo {
namespace {

constexpr double kNan = std::numeric_limits<double>::quiet_NaN();
constexpr double kInf = std::numeric_limits<double>::infinity();

const DistanceKind kAllKinds[] = {
    DistanceKind::kSquaredEuclidean, DistanceKind::kEuclidean,
    DistanceKind::kManhattan, DistanceKind::kHaversine};

/// RAII: force a kernel backend (and optionally a SIMD level) for one scope.
struct BackendScope {
  explicit BackendScope(KernelBackend b) { set_kernel_backend_for_testing(b); }
  BackendScope(KernelBackend b, SimdLevel l) : BackendScope(b) {
    set_simd_level_for_testing(l);
  }
  ~BackendScope() {
    set_kernel_backend_for_testing(KernelBackend::kSimd);
    set_simd_level_for_testing(simd_level_detected);
  }
  SimdLevel simd_level_detected = simd_level();

 private:
  BackendScope(const BackendScope&) = delete;
};

std::uint64_t bits(double x) { return std::bit_cast<std::uint64_t>(x); }

struct Assignment {
  std::vector<std::uint32_t> index;
  std::vector<double> distance;
};

Assignment run_nearest(KernelBackend backend, DistanceKind kind,
                       const std::vector<double>& clat,
                       const std::vector<double>& clon,
                       const std::vector<double>& plat,
                       const std::vector<double>& plon) {
  set_kernel_backend_for_testing(backend);
  CentroidKernel kernel(kind, clat.data(), clon.data(), clat.size());
  Assignment a;
  a.index.resize(plat.size());
  a.distance.resize(plat.size());
  kernel.nearest(plat.data(), plon.data(), plat.size(), a.index.data(),
                 a.distance.data());
  return a;
}

void expect_bit_identical(const Assignment& a, const Assignment& b,
                          const std::string& label) {
  ASSERT_EQ(a.index.size(), b.index.size()) << label;
  for (std::size_t i = 0; i < a.index.size(); ++i) {
    EXPECT_EQ(a.index[i], b.index[i]) << label << " index mismatch at " << i;
    EXPECT_EQ(bits(a.distance[i]), bits(b.distance[i]))
        << label << " distance bits mismatch at " << i << ": "
        << a.distance[i] << " vs " << b.distance[i];
  }
}

/// Random coordinate streams, optionally salted with non-finite values and
/// antimeridian/pole extremes.
void fill_coords(Rng& rng, std::size_t n, bool adversarial,
                 std::vector<double>& lats, std::vector<double>& lons) {
  lats.resize(n);
  lons.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    lats[i] = -90.0 + rng.uniform() * 180.0;
    lons[i] = -180.0 + rng.uniform() * 360.0;
    if (!adversarial) continue;
    switch (rng.uniform_u64(12)) {
      case 0: lats[i] = kNan; break;
      case 1: lons[i] = -kNan; break;
      case 2: lats[i] = kInf; break;
      case 3: lons[i] = -kInf; break;
      case 4: lons[i] = 180.0; break;   // antimeridian
      case 5: lons[i] = -180.0; break;
      case 6: lats[i] = 90.0; break;    // poles
      case 7: lats[i] = -90.0; break;
      case 8: lats[i] = 0.0; break;
      default: break;                   // keep the random draw
    }
  }
}

TEST(CentroidKernel, ScalarAndSimdBitIdenticalAcrossShapes) {
  BackendScope scope(KernelBackend::kScalar);
  Rng rng(20260807);
  // k sweeps past every lane width and the 256 boundary; n sweeps every
  // remainder class mod 4 (AVX2 lanes) and mod 2 (SSE2 lanes).
  const std::size_t ks[] = {1, 2, 3, 4, 5, 8, 16, 257};
  const std::size_t ns[] = {1, 2, 3, 4, 5, 6, 7, 8, 63, 256, 1001};
  for (const bool adversarial : {false, true}) {
    for (const auto kind : kAllKinds) {
      for (const std::size_t k : ks) {
        for (const std::size_t n : ns) {
          std::vector<double> clat, clon, plat, plon;
          fill_coords(rng, k, adversarial, clat, clon);
          fill_coords(rng, n, adversarial, plat, plon);
          const auto scalar =
              run_nearest(KernelBackend::kScalar, kind, clat, clon, plat, plon);
          const auto simd =
              run_nearest(KernelBackend::kSimd, kind, clat, clon, plat, plon);
          expect_bit_identical(
              scalar, simd,
              std::string(distance_name(kind)) + " k=" + std::to_string(k) +
                  " n=" + std::to_string(n) +
                  (adversarial ? " adversarial" : ""));
          if (testing::Test::HasFailure()) return;  // don't spam the sweep
        }
      }
    }
  }
}

TEST(CentroidKernel, Sse2LevelMatchesScalarWhenForceable) {
  BackendScope scope(KernelBackend::kScalar);
  if (scope.simd_level_detected < SimdLevel::kSse2)
    GTEST_SKIP() << "no SSE2 dispatch target compiled in";
  set_simd_level_for_testing(SimdLevel::kSse2);
  Rng rng(7);
  for (const auto kind : kAllKinds) {
    std::vector<double> clat, clon, plat, plon;
    fill_coords(rng, 9, true, clat, clon);
    fill_coords(rng, 1001, true, plat, plon);
    const auto scalar =
        run_nearest(KernelBackend::kScalar, kind, clat, clon, plat, plon);
    const auto simd =
        run_nearest(KernelBackend::kSimd, kind, clat, clon, plat, plon);
    expect_bit_identical(scalar, simd,
                         std::string("sse2 ") +
                             std::string(distance_name(kind)));
  }
}

TEST(CentroidKernel, LegacyAgreesOnFiniteCoordinates) {
  // On well-formed inputs the reduced-key backends must pick the same
  // centroid as the verbatim legacy loop, and the reported winning distance
  // must be bit-identical to geo::distance() for that pair.
  BackendScope scope(KernelBackend::kScalar);
  Rng rng(99);
  for (const auto kind : kAllKinds) {
    std::vector<double> clat, clon, plat, plon;
    fill_coords(rng, 17, false, clat, clon);
    fill_coords(rng, 503, false, plat, plon);
    const auto legacy =
        run_nearest(KernelBackend::kLegacy, kind, clat, clon, plat, plon);
    const auto scalar =
        run_nearest(KernelBackend::kScalar, kind, clat, clon, plat, plon);
    expect_bit_identical(legacy, scalar,
                         std::string("legacy ") +
                             std::string(distance_name(kind)));
    for (std::size_t i = 0; i < plat.size(); ++i) {
      const std::size_t c = scalar.index[i];
      EXPECT_EQ(bits(scalar.distance[i]),
                bits(distance(kind, plat[i], plon[i], clat[c], clon[c])));
    }
  }
}

TEST(CentroidKernel, TiesGoToLowestIndexOnEveryBackend) {
  // Centroids 1 and 3 coincide; centroid 1 must win. Centroids 0 and 2 are
  // equidistant decoys further out.
  const std::vector<double> clat = {0.0, 0.5, 0.0, 0.5};
  const std::vector<double> clon = {-2.0, 0.0, 2.0, 0.0};
  const std::vector<double> plat(9, 0.5);
  const std::vector<double> plon(9, 0.0);
  for (const auto backend :
       {KernelBackend::kLegacy, KernelBackend::kScalar, KernelBackend::kSimd}) {
    BackendScope scope(backend);
    for (const auto kind : kAllKinds) {
      const auto got = run_nearest(backend, kind, clat, clon, plat, plon);
      for (const auto idx : got.index)
        EXPECT_EQ(idx, 1u) << kernel_backend_name(backend) << " "
                           << distance_name(kind);
    }
  }
}

TEST(CentroidKernel, AllNanKeysReportIndexZeroAndMaxDistance) {
  const std::vector<double> clat = {kNan, kNan, kNan};
  const std::vector<double> clon = {0.0, 1.0, 2.0};
  const std::vector<double> plat = {1.0, 2.0, 3.0, 4.0, 5.0};
  const std::vector<double> plon = {0.0, 0.0, 0.0, 0.0, 0.0};
  for (const auto backend :
       {KernelBackend::kLegacy, KernelBackend::kScalar, KernelBackend::kSimd}) {
    BackendScope scope(backend);
    const auto got = run_nearest(backend, DistanceKind::kSquaredEuclidean,
                                 clat, clon, plat, plon);
    for (std::size_t i = 0; i < plat.size(); ++i) {
      EXPECT_EQ(got.index[i], 0u);
      EXPECT_EQ(got.distance[i], std::numeric_limits<double>::max());
    }
  }
}

TEST(BatchHelpers, HaversineBatchBitIdenticalToSinglePair) {
  Rng rng(11);
  std::vector<double> lats, lons;
  fill_coords(rng, 777, true, lats, lons);
  std::vector<double> out(lats.size());
  for (const auto backend :
       {KernelBackend::kLegacy, KernelBackend::kScalar, KernelBackend::kSimd}) {
    BackendScope scope(backend);
    haversine_meters_batch(48.85, 2.35, lats.data(), lons.data(), lats.size(),
                           out.data());
    for (std::size_t i = 0; i < lats.size(); ++i)
      EXPECT_EQ(bits(out[i]), bits(haversine_meters(48.85, 2.35, lats[i],
                                                    lons[i])))
          << kernel_backend_name(backend) << " pair " << i;
  }
}

TEST(BatchHelpers, EquirectangularBatchBitIdenticalToSinglePair) {
  Rng rng(13);
  std::vector<double> lats, lons;
  fill_coords(rng, 1001, true, lats, lons);  // odd n: remainder lanes
  std::vector<double> out(lats.size());
  for (const auto backend :
       {KernelBackend::kLegacy, KernelBackend::kScalar, KernelBackend::kSimd}) {
    BackendScope scope(backend);
    equirectangular_meters_batch(39.9, 116.4, lats.data(), lons.data(),
                                 lats.size(), out.data());
    for (std::size_t i = 0; i < lats.size(); ++i)
      EXPECT_EQ(bits(out[i]), bits(equirectangular_meters(39.9, 116.4, lats[i],
                                                          lons[i])))
          << kernel_backend_name(backend) << " pair " << i;
  }
}

/// Three separated blobs, single user.
geo::GeolocatedDataset blob_dataset(int per_blob = 120) {
  Rng rng(5);
  const double centers[3][2] = {
      {39.90, 116.40}, {39.95, 116.50}, {40.00, 116.30}};
  geo::GeolocatedDataset ds;
  std::int64_t ts = 1'222'819'200;
  geo::Trail trail;
  for (int b = 0; b < 3; ++b)
    for (int i = 0; i < per_blob; ++i)
      trail.push_back({0, centers[b][0] + rng.gaussian(0, 0.001),
                       centers[b][1] + rng.gaussian(0, 0.001), 150.0, ts++});
  ds.add_trail(0, std::move(trail));
  return ds;
}

TEST(KernelBackends, KMeansOutputByteIdenticalScalarVsSimd) {
  const auto ds = blob_dataset();
  core::KMeansConfig config;
  config.k = 3;
  config.max_iterations = 25;
  const auto run = [&](KernelBackend backend) {
    BackendScope scope(backend);
    return core::kmeans_sequential(ds, config);
  };
  for (const auto kind :
       {DistanceKind::kSquaredEuclidean, DistanceKind::kHaversine}) {
    config.distance = kind;
    const auto scalar = run(KernelBackend::kScalar);
    const auto simd = run(KernelBackend::kSimd);
    const auto legacy = run(KernelBackend::kLegacy);
    ASSERT_EQ(scalar.centroids.size(), simd.centroids.size());
    EXPECT_EQ(scalar.iterations, simd.iterations);
    EXPECT_EQ(scalar.converged, simd.converged);
    EXPECT_EQ(bits(scalar.sse), bits(simd.sse));
    EXPECT_EQ(scalar.cluster_sizes, simd.cluster_sizes);
    for (std::size_t i = 0; i < scalar.centroids.size(); ++i) {
      EXPECT_EQ(bits(scalar.centroids[i].latitude),
                bits(simd.centroids[i].latitude));
      EXPECT_EQ(bits(scalar.centroids[i].longitude),
                bits(simd.centroids[i].longitude));
    }
    // Legacy agreement is not a bit-level contract (it compares full
    // distances, not reduced keys) but must hold on real data.
    EXPECT_EQ(legacy.iterations, scalar.iterations);
    EXPECT_EQ(legacy.cluster_sizes, scalar.cluster_sizes);
  }
}

TEST(KernelBackends, NamesRoundTrip) {
  EXPECT_EQ(kernel_backend_name(KernelBackend::kLegacy), "legacy");
  EXPECT_EQ(kernel_backend_name(KernelBackend::kScalar), "scalar");
  EXPECT_EQ(kernel_backend_name(KernelBackend::kSimd), "simd");
  EXPECT_EQ(simd_level_name(simd_level()),
            simd_level_name(simd_level()));  // stable
}

}  // namespace
}  // namespace gepeto::geo
