// Tests for LineRecordReader, including the exactly-once property over
// arbitrary chunkings (the Hadoop split-boundary rule).
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/random.h"
#include "mapreduce/record_io.h"

namespace gepeto::mr {
namespace {

std::vector<std::string> read_split(std::string_view file, std::uint64_t start,
                                    std::uint64_t len) {
  LineRecordReader r(file, start, len);
  std::vector<std::string> lines;
  while (r.next()) lines.emplace_back(r.value());
  return lines;
}

TEST(LineRecordReader, WholeFileSingleSplit) {
  const std::string file = "one\ntwo\nthree\n";
  const auto lines = read_split(file, 0, file.size());
  ASSERT_EQ(lines.size(), 3u);
  EXPECT_EQ(lines[0], "one");
  EXPECT_EQ(lines[1], "two");
  EXPECT_EQ(lines[2], "three");
}

TEST(LineRecordReader, MissingTrailingNewline) {
  const std::string file = "a\nb";
  const auto lines = read_split(file, 0, file.size());
  ASSERT_EQ(lines.size(), 2u);
  EXPECT_EQ(lines[1], "b");
}

TEST(LineRecordReader, EmptyFileYieldsNothing) {
  EXPECT_TRUE(read_split("", 0, 0).empty());
}

TEST(LineRecordReader, EmptyLinesArePreserved) {
  const std::string file = "a\n\nb\n";
  const auto lines = read_split(file, 0, file.size());
  ASSERT_EQ(lines.size(), 3u);
  EXPECT_EQ(lines[1], "");
}

TEST(LineRecordReader, KeyIsByteOffsetOfLine) {
  const std::string file = "aa\nbbb\nc\n";
  LineRecordReader r(file, 0, file.size());
  ASSERT_TRUE(r.next());
  EXPECT_EQ(r.key(), 0);
  ASSERT_TRUE(r.next());
  EXPECT_EQ(r.key(), 3);
  ASSERT_TRUE(r.next());
  EXPECT_EQ(r.key(), 7);
  EXPECT_FALSE(r.next());
}

TEST(LineRecordReader, SplitNotAtZeroSkipsPartialFirstLine) {
  const std::string file = "aaaa\nbbbb\ncccc\n";
  // Split starting mid-"aaaa": the partial line belongs to split 0.
  const auto lines = read_split(file, 2, file.size() - 2);
  ASSERT_EQ(lines.size(), 2u);
  EXPECT_EQ(lines[0], "bbbb");
}

TEST(LineRecordReader, SplitStartingExactlyAtLineBoundaryKeepsThatLine) {
  const std::string file = "aaaa\nbbbb\n";
  // Split starts at offset 5 = start of "bbbb"; previous byte is '\n'.
  const auto lines = read_split(file, 5, file.size() - 5);
  ASSERT_EQ(lines.size(), 1u);
  EXPECT_EQ(lines[0], "bbbb");
}

TEST(LineRecordReader, SplitReadsPastEndToFinishLastLine) {
  const std::string file = "aaaa\nbbbbbbbb\n";
  // Split [0, 7): line "bbbbbbbb" starts at 5 (inside) and must be fully read.
  const auto lines = read_split(file, 0, 7);
  ASSERT_EQ(lines.size(), 2u);
  EXPECT_EQ(lines[1], "bbbbbbbb");
  LineRecordReader r(file, 0, 7);
  while (r.next()) {
  }
  EXPECT_EQ(r.overread_bytes(), file.size() - 7);
}

TEST(LineRecordReader, LineStartingAtSplitEndBelongsToNextSplit) {
  const std::string file = "aaaa\nbbbb\n";
  // Split [0,5): owns only "aaaa". Split [5,10): owns "bbbb".
  EXPECT_EQ(read_split(file, 0, 5).size(), 1u);
  EXPECT_EQ(read_split(file, 5, 5).size(), 1u);
}

TEST(LineRecordReader, ZeroLengthSplitInsideLineYieldsNothing) {
  const std::string file = "abcdef\n";
  EXPECT_TRUE(read_split(file, 3, 0).empty());
}

// ---- property: any chunking yields each line exactly once, in order -------

struct ChunkingCase {
  std::uint64_t seed;
  std::size_t chunk_size;
};

class ChunkingProperty : public ::testing::TestWithParam<ChunkingCase> {};

TEST_P(ChunkingProperty, EveryLineExactlyOnce) {
  const auto param = GetParam();
  gepeto::Rng rng(param.seed);

  // Random file: lines of random length (possibly empty), last line possibly
  // without trailing newline.
  std::vector<std::string> expected;
  std::string file;
  const int num_lines = static_cast<int>(rng.uniform_int(1, 200));
  for (int i = 0; i < num_lines; ++i) {
    std::string line;
    const int len = static_cast<int>(rng.uniform_int(0, 30));
    for (int c = 0; c < len; ++c)
      line.push_back(static_cast<char>('a' + rng.uniform_u64(26)));
    expected.push_back(line);
    file += line;
    if (i + 1 < num_lines || rng.chance(0.7)) file.push_back('\n');
  }

  // Cut into fixed-size chunks and read each split independently.
  std::vector<std::string> got;
  for (std::uint64_t off = 0; off < file.size(); off += param.chunk_size) {
    const std::uint64_t len =
        std::min<std::uint64_t>(param.chunk_size, file.size() - off);
    for (auto& l : read_split(file, off, len)) got.push_back(std::move(l));
  }
  EXPECT_EQ(got, expected) << "chunk_size=" << param.chunk_size
                           << " seed=" << param.seed;
}

std::vector<ChunkingCase> chunking_cases() {
  std::vector<ChunkingCase> cases;
  for (std::uint64_t seed = 1; seed <= 8; ++seed)
    for (std::size_t chunk : {1, 2, 3, 5, 7, 16, 64, 1024})
      cases.push_back({seed, chunk});
  return cases;
}

INSTANTIATE_TEST_SUITE_P(AllChunkings, ChunkingProperty,
                         ::testing::ValuesIn(chunking_cases()),
                         [](const auto& info) {
                           return "seed" + std::to_string(info.param.seed) +
                                  "_chunk" +
                                  std::to_string(info.param.chunk_size);
                         });

}  // namespace
}  // namespace gepeto::mr
