// Tests for DJ-Cluster (paper Section VII): preprocessing filters,
// neighborhood/merge semantics, sequential vs MapReduce agreement, and the
// Table-IV-style behaviour on sampled synthetic data.
#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "common/check.h"
#include "common/random.h"
#include "geo/distance.h"
#include "geo/generator.h"
#include "geo/geolife.h"
#include "gepeto/djcluster.h"
#include "gepeto/sampling.h"
#include "mapreduce/dfs.h"

namespace gepeto::core {
namespace {

using geo::GeolocatedDataset;
using geo::MobilityTrace;
using geo::Trail;

mr::ClusterConfig small_cluster(std::size_t chunk = 1 << 26) {
  mr::ClusterConfig c;
  c.num_worker_nodes = 4;
  c.nodes_per_rack = 2;
  c.chunk_size = chunk;
  c.execution_threads = 2;
  return c;
}

MobilityTrace at(std::int32_t uid, std::int64_t ts, double lat, double lon) {
  return {uid, lat, lon, 150.0, ts};
}

/// Offset a base point by meters (approximate, city scale).
MobilityTrace near(std::int32_t uid, std::int64_t ts, double north_m,
                   double east_m) {
  const double lat = 39.9 + north_m / 111320.0;
  const double lon = 116.4 + east_m / (111320.0 * std::cos(39.9 * M_PI / 180));
  return at(uid, ts, lat, lon);
}

TEST(PackTraceId, RoundTrip) {
  for (std::int32_t uid : {0, 1, 177, 100000}) {
    for (std::int64_t ts : {std::int64_t{0}, std::int64_t{1'222'819'200},
                            (std::int64_t{1} << 40) - 1}) {
      std::int32_t u;
      std::int64_t t;
      unpack_trace_id(pack_trace_id(uid, ts), u, t);
      EXPECT_EQ(u, uid);
      EXPECT_EQ(t, ts);
    }
  }
}

TEST(FilterMoving, KeepsStationaryDropsMoving) {
  // Stationary at origin for 3 samples, then a fast leg, then stationary.
  Trail trail{near(1, 0, 0, 0),    near(1, 60, 1, 0),  near(1, 120, 0, 1),
              near(1, 180, 600, 0),  // 10 m/s leg midpointish
              near(1, 240, 1200, 0), near(1, 300, 1201, 0),
              near(1, 360, 1200, 1)};
  const auto kept = filter_moving(trail, 2.0);
  // Traces 0-2 are stationary; 3 and 4 are moving (symmetric difference spans
  // the fast leg); 5-6 stationary again.
  std::set<std::int64_t> ts;
  for (const auto& t : kept) ts.insert(t.timestamp);
  EXPECT_TRUE(ts.count(0));
  EXPECT_TRUE(ts.count(60));
  EXPECT_FALSE(ts.count(180));
  EXPECT_FALSE(ts.count(240));
  EXPECT_TRUE(ts.count(360));
}

TEST(FilterMoving, SingleTraceIsStationary) {
  Trail trail{near(1, 0, 0, 0)};
  EXPECT_EQ(filter_moving(trail, 2.0).size(), 1u);
}

TEST(FilterMoving, EmptyTrail) {
  EXPECT_TRUE(filter_moving({}, 2.0).empty());
}

TEST(FilterMoving, AllMovingGivesEmpty) {
  Trail trail;
  for (int i = 0; i < 10; ++i)
    trail.push_back(near(1, i * 10, i * 100.0, 0));  // 10 m/s constantly
  EXPECT_TRUE(filter_moving(trail, 2.0).empty());
}

TEST(FilterMoving, ZeroTimeGapWithDisplacementIsDiscarded) {
  Trail trail{near(1, 0, 0, 0), near(1, 0, 500, 0)};
  const auto kept = filter_moving(trail, 2.0);
  // Both traces see an infinite-speed symmetric difference.
  EXPECT_TRUE(kept.empty());
}

TEST(RemoveDuplicates, KeepsFirstOfRedundantRun) {
  Trail trail{near(1, 0, 0, 0), near(1, 60, 0.2, 0.2), near(1, 120, 0.1, 0.3),
              near(1, 180, 50, 0), near(1, 240, 50.3, 0.2)};
  const auto kept = remove_duplicates(trail, 1.0);
  ASSERT_EQ(kept.size(), 2u);
  EXPECT_EQ(kept[0].timestamp, 0);
  EXPECT_EQ(kept[1].timestamp, 180);
}

TEST(RemoveDuplicates, DistantTracesAllKept) {
  Trail trail{near(1, 0, 0, 0), near(1, 60, 10, 0), near(1, 120, 20, 0)};
  EXPECT_EQ(remove_duplicates(trail, 1.0).size(), 3u);
}

TEST(RemoveDuplicates, ComparesAgainstLastKeptNotLastSeen) {
  // Slow drift: each step 0.6 m from the last kept; after two steps the
  // drift exceeds the radius from the first kept trace.
  Trail trail{near(1, 0, 0, 0), near(1, 60, 0.6, 0), near(1, 120, 1.2, 0)};
  const auto kept = remove_duplicates(trail, 1.0);
  ASSERT_EQ(kept.size(), 2u);
  EXPECT_EQ(kept[1].timestamp, 120);
}

TEST(Preprocess, PipelineAppliesBothFilters) {
  GeolocatedDataset ds;
  ds.add_trail(1, {near(1, 0, 0, 0), near(1, 60, 0.3, 0),  // duplicate pair
                   near(1, 120, 600, 0),                   // moving
                   near(1, 180, 1200, 0)});
  const auto out = preprocess(ds, DjClusterConfig{});
  EXPECT_LT(out.trail(1).size(), 4u);
}

// --- clustering ---------------------------------------------------------------

/// Two dense sites 1 km apart plus isolated noise points.
GeolocatedDataset two_sites(int per_site, int noise,
                            std::uint64_t seed = 91) {
  gepeto::Rng rng(seed);
  GeolocatedDataset ds;
  Trail trail;
  std::int64_t ts = 1000;
  for (int i = 0; i < per_site; ++i)
    trail.push_back(near(1, ts += 60, rng.gaussian(0, 8), rng.gaussian(0, 8)));
  for (int i = 0; i < per_site; ++i)
    trail.push_back(
        near(1, ts += 60, 1000 + rng.gaussian(0, 8), rng.gaussian(0, 8)));
  for (int i = 0; i < noise; ++i)
    trail.push_back(near(1, ts += 60, 5000 + i * 900.0, 5000 + i * 700.0));
  ds.add_trail(1, std::move(trail));
  return ds;
}

TEST(DjCluster, FindsTwoDenseSites) {
  const auto ds = two_sites(30, 5);
  DjClusterConfig config;
  config.radius_m = 50;
  config.min_pts = 8;
  const auto r = dj_cluster(ds, config);
  ASSERT_EQ(r.clusters.size(), 2u);
  EXPECT_EQ(r.clusters[0].members.size(), 30u);
  EXPECT_EQ(r.clusters[1].members.size(), 30u);
  EXPECT_EQ(r.noise, 5u);
  EXPECT_EQ(r.clustered, 60u);
}

TEST(DjCluster, ClustersAreDisjointAndCoverClustered) {
  const auto ds = two_sites(25, 7, 92);
  DjClusterConfig config;
  config.radius_m = 50;
  config.min_pts = 5;
  const auto r = dj_cluster(ds, config);
  std::set<std::uint64_t> seen;
  std::uint64_t total = 0;
  for (const auto& c : r.clusters) {
    for (auto id : c.members) EXPECT_TRUE(seen.insert(id).second);
    total += c.members.size();
    EXPECT_GE(c.members.size(), static_cast<std::size_t>(config.min_pts));
  }
  EXPECT_EQ(total, r.clustered);
  EXPECT_EQ(r.clustered + r.noise, ds.num_traces());
}

TEST(DjCluster, MinPtsGovernsNoise) {
  const auto ds = two_sites(10, 0, 93);
  DjClusterConfig strict;
  strict.radius_m = 50;
  strict.min_pts = 11;  // neighborhoods have at most 10 members
  const auto r = dj_cluster(ds, strict);
  EXPECT_TRUE(r.clusters.empty());
  EXPECT_EQ(r.noise, ds.num_traces());
}

TEST(DjCluster, ChainOfNeighborhoodsMergesIntoOneCluster) {
  // Points every 30 m in a line: with r=50 each point's neighborhood chains
  // into the next, so joinable neighborhoods must merge into one cluster.
  GeolocatedDataset ds;
  Trail trail;
  for (int i = 0; i < 20; ++i) trail.push_back(near(1, 1000 + i, i * 30.0, 0));
  ds.add_trail(1, std::move(trail));
  DjClusterConfig config;
  config.radius_m = 50;
  config.min_pts = 2;
  const auto r = dj_cluster(ds, config);
  ASSERT_EQ(r.clusters.size(), 1u);
  EXPECT_EQ(r.clusters[0].members.size(), 20u);
}

TEST(DjCluster, CentroidNearSiteCenter) {
  const auto ds = two_sites(40, 0, 94);
  DjClusterConfig config;
  config.radius_m = 60;
  config.min_pts = 10;
  const auto r = dj_cluster(ds, config);
  ASSERT_EQ(r.clusters.size(), 2u);
  // Site A is centered at (39.9, 116.4).
  const double d = geo::haversine_meters(r.clusters[0].centroid_lat,
                                         r.clusters[0].centroid_lon, 39.9,
                                         116.4);
  EXPECT_LT(d, 30.0);
}

TEST(DjCluster, EmptyDataset) {
  const auto r = dj_cluster(GeolocatedDataset{}, DjClusterConfig{});
  EXPECT_TRUE(r.clusters.empty());
  EXPECT_EQ(r.noise, 0u);
}

// --- MapReduce pipeline ---------------------------------------------------------

TEST(DjMapReduce, PreprocessJobsMatchSequentialWithWholeFileChunks) {
  const auto synthetic = geo::generate_dataset([] {
    geo::GeneratorConfig cfg;
    cfg.num_users = 3;
    cfg.duration_days = 8;
    cfg.seed = 95;
    return cfg;
  }());
  // 1-minute sampling first (Table IV preprocesses the sampled datasets).
  const auto sampled =
      downsample(synthetic.data, {60, SamplingTechnique::kUpperLimit});

  DjClusterConfig config;

  mr::Dfs dfs(small_cluster());
  geo::dataset_to_dfs(dfs, "/in", sampled, 2);
  // Reference runs on the same text representation the jobs read (dataset
  // lines round coordinates to 1e-6 degrees).
  const auto want = preprocess(geo::dataset_from_dfs(dfs, "/in/"), config);
  const auto stats =
      run_preprocess_jobs(dfs, small_cluster(), "/in/", "/dj", config);

  EXPECT_EQ(stats.input_traces, sampled.num_traces());
  EXPECT_EQ(stats.after_dedup, want.num_traces());
  const auto got = geo::dataset_from_dfs(dfs, "/dj/preprocessed/");
  for (auto uid : want.users()) EXPECT_EQ(got.trail(uid), want.trail(uid));
  // Filters only remove traces.
  EXPECT_LE(stats.after_filter, stats.input_traces);
  EXPECT_LE(stats.after_dedup, stats.after_filter);
}

TEST(DjMapReduce, FullPipelineMatchesSequential) {
  const auto ds = two_sites(25, 6, 96);
  DjClusterConfig config;
  config.radius_m = 50;
  config.min_pts = 5;
  // two_sites data is all stationary-ish (60 s apart): preprocessing keeps
  // nearly everything; compare MR pipeline vs sequential pipeline, both over
  // the text representation the jobs read.
  mr::Dfs dfs(small_cluster());
  geo::dataset_to_dfs(dfs, "/in", ds, 1);
  const auto seq_pre = preprocess(geo::dataset_from_dfs(dfs, "/in/"), config);
  const auto want = dj_cluster(seq_pre, config);
  const auto got =
      run_djcluster_jobs(dfs, small_cluster(), "/in/", "/dj", config);

  ASSERT_EQ(got.clusters.clusters.size(), want.clusters.size());
  for (std::size_t i = 0; i < want.clusters.size(); ++i) {
    EXPECT_EQ(got.clusters.clusters[i].members, want.clusters[i].members);
    EXPECT_NEAR(got.clusters.clusters[i].centroid_lat,
                want.clusters[i].centroid_lat, 1e-9);
    EXPECT_NEAR(got.clusters.clusters[i].centroid_lon,
                want.clusters[i].centroid_lon, 1e-9);
  }
  EXPECT_EQ(got.clusters.noise, want.noise);
  EXPECT_EQ(got.clusters.clustered, want.clustered);
}

TEST(DjMapReduce, SingleReducerIsUsed) {
  const auto ds = two_sites(20, 2, 97);
  DjClusterConfig config;
  config.radius_m = 50;
  config.min_pts = 5;
  mr::Dfs dfs(small_cluster());
  geo::dataset_to_dfs(dfs, "/in", ds, 1);
  const auto got =
      run_djcluster_jobs(dfs, small_cluster(), "/in/", "/dj", config);
  EXPECT_EQ(got.cluster_job.num_reduce_tasks, 1);
  EXPECT_GT(got.cluster_job.counters.at("dj.core_traces"), 0);
}

TEST(DjMapReduce, TableIvShapeOnSyntheticGeoLife) {
  // Table IV (1-min sampling): moving-trace filter removes ~44% of traces;
  // duplicate removal then removes under 5%.
  const auto synthetic = geo::generate_dataset([] {
    geo::GeneratorConfig cfg;
    cfg.num_users = 6;
    cfg.duration_days = 12;
    cfg.seed = 98;
    return cfg;
  }());
  const auto sampled =
      downsample(synthetic.data, {60, SamplingTechnique::kUpperLimit});
  mr::Dfs dfs(small_cluster());
  geo::dataset_to_dfs(dfs, "/in", sampled, 2);
  const auto stats = run_preprocess_jobs(dfs, small_cluster(), "/in/", "/dj",
                                         DjClusterConfig{});
  const double kept = static_cast<double>(stats.after_filter) /
                      static_cast<double>(stats.input_traces);
  EXPECT_GT(kept, 0.35);
  EXPECT_LT(kept, 0.80);
  const double dedup_removed =
      1.0 - static_cast<double>(stats.after_dedup) /
                static_cast<double>(stats.after_filter);
  EXPECT_LT(dedup_removed, 0.10);
}

}  // namespace
}  // namespace gepeto::core
