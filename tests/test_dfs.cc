// Tests for the HDFS-like DFS: chunking, rack-aware replica placement,
// listing, failure handling and re-replication invariants.
#include <gtest/gtest.h>

#include <set>
#include <string>

#include "common/check.h"
#include "mapreduce/cluster.h"
#include "mapreduce/dfs.h"

namespace gepeto::mr {
namespace {

ClusterConfig small_cluster(int nodes = 8, std::size_t chunk = 16) {
  ClusterConfig c;
  c.num_worker_nodes = nodes;
  c.nodes_per_rack = 4;
  c.chunk_size = chunk;
  c.replication = 3;
  c.seed = 1234;
  return c;
}

TEST(Dfs, PutAndReadRoundTrip) {
  Dfs dfs(small_cluster());
  dfs.put("/a", "hello world");
  EXPECT_TRUE(dfs.exists("/a"));
  EXPECT_EQ(dfs.read("/a"), "hello world");
  EXPECT_EQ(dfs.file_size("/a"), 11u);
}

TEST(Dfs, MissingFileThrows) {
  Dfs dfs(small_cluster());
  EXPECT_THROW(dfs.read("/nope"), CheckFailure);
  EXPECT_THROW(dfs.file_size("/nope"), CheckFailure);
  EXPECT_THROW((void)dfs.chunks("/nope"), CheckFailure);
}

TEST(Dfs, ChunkingCoversFileExactly) {
  Dfs dfs(small_cluster(8, 16));
  const std::string data(100, 'x');
  dfs.put("/f", data);
  const auto& chunks = dfs.chunks("/f");
  EXPECT_EQ(chunks.size(), 7u);  // ceil(100/16)
  std::uint64_t covered = 0;
  for (std::size_t i = 0; i < chunks.size(); ++i) {
    EXPECT_EQ(chunks[i].offset, covered);
    covered += chunks[i].size;
    EXPECT_LE(chunks[i].size, 16u);
  }
  EXPECT_EQ(covered, 100u);
  EXPECT_EQ(chunks.back().size, 100u % 16u);
}

TEST(Dfs, ChunkDataMatchesSlices) {
  Dfs dfs(small_cluster(8, 10));
  std::string data;
  for (int i = 0; i < 45; ++i) data.push_back(static_cast<char>('a' + i % 26));
  dfs.put("/f", data);
  const auto& chunks = dfs.chunks("/f");
  for (std::size_t i = 0; i < chunks.size(); ++i) {
    EXPECT_EQ(dfs.chunk_data("/f", i),
              std::string_view(data).substr(chunks[i].offset, chunks[i].size));
  }
}

TEST(Dfs, EveryChunkHasReplicationFactorReplicas) {
  Dfs dfs(small_cluster(8, 8));
  dfs.put("/f", std::string(100, 'y'));
  for (const auto& ci : dfs.chunks("/f")) {
    EXPECT_EQ(ci.replicas.size(), 3u);
    std::set<int> uniq(ci.replicas.begin(), ci.replicas.end());
    EXPECT_EQ(uniq.size(), 3u) << "replicas must be distinct nodes";
  }
}

TEST(Dfs, RackAwarePlacementSpansTwoRacks) {
  // 8 nodes in 2 racks: each chunk must have replicas in >= 2 racks
  // (first+second replica same rack, third in another — HDFS policy).
  auto config = small_cluster(8, 8);
  Dfs dfs(config);
  dfs.put("/f", std::string(200, 'z'));
  for (const auto& ci : dfs.chunks("/f")) {
    std::set<int> racks;
    for (int n : ci.replicas) racks.insert(config.rack_of(n));
    EXPECT_GE(racks.size(), 2u);
    EXPECT_LE(racks.size(), 2u);  // exactly the HDFS 2-rack layout for r=3
  }
}

TEST(Dfs, WriterNodeGetsFirstReplica) {
  Dfs dfs(small_cluster());
  dfs.put("/f", std::string(30, 'a'), /*writer_node=*/5);
  for (const auto& ci : dfs.chunks("/f")) EXPECT_EQ(ci.replicas[0], 5);
}

TEST(Dfs, ReplicationCappedByClusterSize) {
  auto config = small_cluster(2, 8);
  Dfs dfs(config);
  dfs.put("/f", std::string(10, 'b'));
  for (const auto& ci : dfs.chunks("/f")) EXPECT_EQ(ci.replicas.size(), 2u);
}

TEST(Dfs, ListReturnsPrefixMatchesSorted) {
  Dfs dfs(small_cluster());
  dfs.put("/out/part-00002", "c");
  dfs.put("/out/part-00000", "a");
  dfs.put("/out/part-00001", "b");
  dfs.put("/other", "x");
  const auto files = dfs.list("/out/");
  ASSERT_EQ(files.size(), 3u);
  EXPECT_EQ(files[0], "/out/part-00000");
  EXPECT_EQ(files[1], "/out/part-00001");
  EXPECT_EQ(files[2], "/out/part-00002");
}

TEST(Dfs, ListPrefixIsNotConfusedBySiblings) {
  Dfs dfs(small_cluster());
  dfs.put("/out", "x");
  dfs.put("/out2/a", "y");
  const auto files = dfs.list("/out2/");
  ASSERT_EQ(files.size(), 1u);
  EXPECT_EQ(files[0], "/out2/a");
}

TEST(Dfs, RemoveAndRemovePrefix) {
  Dfs dfs(small_cluster());
  dfs.put("/d/a", "1");
  dfs.put("/d/b", "2");
  dfs.put("/e", "3");
  dfs.remove("/e");
  EXPECT_FALSE(dfs.exists("/e"));
  dfs.remove_prefix("/d/");
  EXPECT_TRUE(dfs.list("/d/").empty());
}

TEST(Dfs, PutReplacesExistingFile) {
  Dfs dfs(small_cluster());
  dfs.put("/f", "old-contents");
  dfs.put("/f", "new");
  EXPECT_EQ(dfs.read("/f"), "new");
  EXPECT_EQ(dfs.stats().files, 1u);
}

TEST(Dfs, TotalSizeSumsPrefix) {
  Dfs dfs(small_cluster());
  dfs.put("/in/a", std::string(10, 'a'));
  dfs.put("/in/b", std::string(20, 'b'));
  dfs.put("/out/c", std::string(100, 'c'));
  EXPECT_EQ(dfs.total_size("/in/"), 30u);
}

TEST(Dfs, StatsAccounting) {
  Dfs dfs(small_cluster(8, 16));
  dfs.put("/f", std::string(100, 'q'));
  const auto s = dfs.stats();
  EXPECT_EQ(s.files, 1u);
  EXPECT_EQ(s.logical_bytes, 100u);
  EXPECT_EQ(s.chunks, 7u);
  EXPECT_EQ(s.stored_bytes, 300u);  // 3 replicas
  EXPECT_GT(s.sim_ingest_seconds, 0.0);
}

TEST(Dfs, EmptyFileIsStorable) {
  Dfs dfs(small_cluster());
  dfs.put("/empty", "");
  EXPECT_TRUE(dfs.exists("/empty"));
  EXPECT_EQ(dfs.read("/empty"), "");
  EXPECT_EQ(dfs.file_size("/empty"), 0u);
}

TEST(Dfs, KillNodeDropsItsReplicas) {
  Dfs dfs(small_cluster(8, 8));
  dfs.put("/f", std::string(400, 'r'));
  dfs.kill_node(0);
  EXPECT_FALSE(dfs.node_alive(0));
  for (const auto& ci : dfs.chunks("/f"))
    for (int n : ci.replicas) EXPECT_NE(n, 0);
  // Data still readable from surviving replicas.
  EXPECT_EQ(dfs.read("/f").size(), 400u);
}

TEST(Dfs, ReReplicateRestoresFactor) {
  Dfs dfs(small_cluster(8, 8));
  dfs.put("/f", std::string(400, 'r'));
  dfs.kill_node(1);
  dfs.kill_node(2);
  EXPECT_GT(dfs.under_replicated_chunks(), 0u);
  const auto report = dfs.re_replicate();
  EXPECT_GT(report.created, 0u);
  EXPECT_GT(report.moved_bytes, 0u);
  EXPECT_GT(report.sim_seconds, 0.0);
  EXPECT_FALSE(report.data_loss());
  EXPECT_EQ(dfs.under_replicated_chunks(), 0u);
  for (const auto& ci : dfs.chunks("/f")) {
    EXPECT_EQ(ci.replicas.size(), 3u);
    for (int n : ci.replicas) EXPECT_TRUE(dfs.node_alive(n));
  }
}

TEST(Dfs, ReReplicationSurvivesSequentialFailuresUpToFactorMinusOne) {
  // Kill one node at a time with re-replication in between: no data loss.
  Dfs dfs(small_cluster(8, 8));
  const std::string payload(500, 'k');
  dfs.put("/f", payload);
  for (int n = 0; n < 5; ++n) {
    dfs.kill_node(n);
    dfs.re_replicate();
    ASSERT_EQ(dfs.read("/f"), payload);
    ASSERT_EQ(dfs.under_replicated_chunks(), 0u);
  }
}

TEST(Dfs, KillingAllReplicaHoldersAtOnceIsDataLoss) {
  auto config = small_cluster(4, 1024);
  config.replication = 2;
  Dfs dfs(config);
  dfs.put("/f", "precious");
  const auto replicas = dfs.chunks("/f")[0].replicas;
  ASSERT_EQ(replicas.size(), 2u);
  for (int n : replicas) dfs.kill_node(n);
  const auto report = dfs.re_replicate();
  EXPECT_TRUE(report.data_loss());
  ASSERT_EQ(report.lost.size(), 1u);
  EXPECT_EQ(report.lost[0].path, "/f");
  EXPECT_EQ(report.lost[0].chunk_index, 0u);
  EXPECT_EQ(report.lost[0].bytes, 8u);  // strlen("precious")
}

TEST(Dfs, RevivedNodeReceivesNewReplicas) {
  Dfs dfs(small_cluster(4, 8));
  dfs.kill_node(3);
  dfs.put("/f", std::string(64, 'v'));
  for (const auto& ci : dfs.chunks("/f"))
    for (int n : ci.replicas) ASSERT_NE(n, 3);
  dfs.revive_node(3);
  dfs.put("/g", std::string(4096, 'w'));  // node 3 is now the least loaded
  bool used = false;
  for (const auto& ci : dfs.chunks("/g"))
    for (int n : ci.replicas) used |= (n == 3);
  EXPECT_TRUE(used);
}

TEST(Dfs, PlacementIsDeterministicForSameSeed) {
  auto run = [] {
    Dfs dfs(small_cluster(8, 8));
    dfs.put("/f", std::string(128, 'd'));
    std::vector<std::vector<int>> placement;
    for (const auto& ci : dfs.chunks("/f")) placement.push_back(ci.replicas);
    return placement;
  };
  EXPECT_EQ(run(), run());
}

TEST(Dfs, LoadBalancesAcrossNodes) {
  // Many chunks: every node should hold at least one replica.
  Dfs dfs(small_cluster(8, 4));
  dfs.put("/big", std::string(4000, 'L'));
  std::set<int> used;
  for (const auto& ci : dfs.chunks("/big"))
    for (int n : ci.replicas) used.insert(n);
  EXPECT_EQ(used.size(), 8u);
}

}  // namespace
}  // namespace gepeto::mr
