// Tests for MapReduce jobs over binary (SequenceFile-style) inputs: the
// engine's binary record reader across chunkings, and the binary sampling
// job's agreement with the text one.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>

#include "geo/generator.h"
#include "geo/geolife.h"
#include "gepeto/sampling.h"
#include "mapreduce/engine.h"

namespace gepeto::mr {
namespace {

ClusterConfig small_cluster(std::size_t chunk) {
  ClusterConfig c;
  c.num_worker_nodes = 4;
  c.nodes_per_rack = 2;
  c.chunk_size = chunk;
  c.execution_threads = 2;
  return c;
}

geo::SyntheticDataset world(std::uint64_t seed = 901) {
  geo::GeneratorConfig cfg;
  cfg.num_users = 4;
  cfg.duration_days = 8;
  cfg.trajectories_per_user_min = 12;
  cfg.trajectories_per_user_max = 18;
  cfg.seed = seed;
  return geo::generate_dataset(cfg);
}

/// Echoes every binary record back as a dataset line.
struct EchoMapper {
  void map(std::int64_t, std::string_view record, MapOnlyContext& ctx) {
    geo::MobilityTrace t;
    if (geo::trace_from_binary(record, t)) ctx.write(geo::dataset_line(t));
  }
};

TEST(BinaryJobs, EveryRecordProcessedExactlyOnceForAnyChunking) {
  const auto w = world();
  for (std::size_t chunk : {600u, 4096u, 1u << 22}) {
    Dfs dfs(small_cluster(chunk));
    geo::dataset_to_dfs_binary(dfs, "/bin", w.data, 3);
    JobConfig job;
    job.input = "/bin";
    job.output = "/echo";
    const auto jr = run_binary_map_only_job(dfs, small_cluster(chunk), job,
                                            [] { return EchoMapper{}; });
    EXPECT_EQ(jr.map_input_records, w.data.num_traces()) << "chunk " << chunk;

    auto got = geo::dataset_from_dfs(dfs, "/echo/");
    ASSERT_EQ(got.num_traces(), w.data.num_traces()) << "chunk " << chunk;
    for (auto uid : w.data.users()) {
      auto trail = got.trail(uid);
      std::sort(trail.begin(), trail.end(), [](const auto& a, const auto& b) {
        return a.timestamp < b.timestamp;
      });
      const auto& want = w.data.trail(uid);
      ASSERT_EQ(trail.size(), want.size());
      for (std::size_t i = 0; i < trail.size(); ++i)
        EXPECT_EQ(trail[i].timestamp, want[i].timestamp);
    }
  }
}

TEST(BinaryJobs, BinaryFilesAreSmallerThanText) {
  const auto w = world(902);
  Dfs dfs(small_cluster(1 << 22));
  geo::dataset_to_dfs(dfs, "/text", w.data, 2);
  geo::dataset_to_dfs_binary(dfs, "/bin", w.data, 2);
  EXPECT_LT(dfs.total_size("/bin/"), dfs.total_size("/text/") * 6 / 10);
}

TEST(BinaryJobs, BinarySamplingMatchesTextSampling) {
  const auto w = world(903);
  const core::SamplingConfig config{60, core::SamplingTechnique::kUpperLimit};

  Dfs text_dfs(small_cluster(1 << 22));
  geo::dataset_to_dfs(text_dfs, "/in", w.data, 2);
  core::run_sampling_job(text_dfs, small_cluster(1 << 22), "/in/", "/out",
                         config);
  const auto text_out = geo::dataset_from_dfs(text_dfs, "/out/");

  Dfs bin_dfs(small_cluster(1 << 22));
  geo::dataset_to_dfs_binary(bin_dfs, "/in", w.data, 2);
  core::run_sampling_job_binary(bin_dfs, small_cluster(1 << 22), "/in/",
                                "/out", config);
  const auto bin_out = geo::dataset_from_dfs(bin_dfs, "/out/");

  // Binary inputs carry full-precision doubles, text rounds to 1e-6: compare
  // the selected traces by timestamp (selection must agree; the 1e-6
  // coordinate difference cannot flip a window's representative since
  // selection is purely temporal).
  ASSERT_EQ(bin_out.num_traces(), text_out.num_traces());
  for (auto uid : text_out.users()) {
    const auto& a = text_out.trail(uid);
    const auto& b = bin_out.trail(uid);
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
      EXPECT_EQ(a[i].timestamp, b[i].timestamp);
      EXPECT_NEAR(a[i].latitude, b[i].latitude, 2e-6);
    }
  }
}

TEST(BinaryJobs, MalformedRecordsCountedNotFatal) {
  Dfs dfs(small_cluster(1 << 22));
  SeqFileWriter w;
  w.append(geo::trace_to_binary({1, 39.9, 116.4, 150, 1000}));
  w.append("garbage-record");
  w.append(geo::trace_to_binary({1, 39.9, 116.4, 150, 2000}));
  dfs.put("/bin/points-00000", std::move(w.contents()));
  core::SamplingConfig config{60, core::SamplingTechnique::kUpperLimit};
  const auto jr = core::run_sampling_job_binary(dfs, small_cluster(1 << 22),
                                                "/bin/", "/out", config);
  EXPECT_EQ(jr.counters.at("sampling.malformed_records"), 1);
  EXPECT_EQ(jr.output_records, 2u);
}

}  // namespace
}  // namespace gepeto::mr
