// Tests for the MapReduce R-Tree construction (paper Section VII-C):
// R-Tree serialization round-trips, partition-point selection, and the full
// three-phase build against a directly-built tree.
#include <gtest/gtest.h>

#include <set>

#include "common/check.h"
#include "common/random.h"
#include "geo/generator.h"
#include "geo/geolife.h"
#include "gepeto/djcluster.h"
#include "gepeto/rtree_mr.h"
#include "mapreduce/dfs.h"

namespace gepeto::core {
namespace {

mr::ClusterConfig small_cluster(std::size_t chunk = 1 << 15) {
  mr::ClusterConfig c;
  c.num_worker_nodes = 4;
  c.nodes_per_rack = 2;
  c.chunk_size = chunk;
  c.execution_threads = 2;
  return c;
}

TEST(RTreeSerialize, RoundTripEmpty) {
  index::RTree t(8);
  const auto back = index::RTree::deserialize(t.serialize());
  EXPECT_TRUE(back.empty());
  back.check_invariants();
}

TEST(RTreeSerialize, RoundTripPreservesStructureAndQueries) {
  gepeto::Rng rng(101);
  index::RTree t(8);
  for (std::uint64_t i = 0; i < 500; ++i)
    t.insert(rng.uniform(39.8, 40.0), rng.uniform(116.2, 116.6), i);
  const auto back = index::RTree::deserialize(t.serialize());
  back.check_invariants();
  EXPECT_EQ(back.size(), t.size());
  EXPECT_EQ(back.height(), t.height());
  EXPECT_EQ(back.bounds(), t.bounds());
  const index::Rect q = index::Rect::of(39.85, 116.3, 39.95, 116.5);
  auto ids = [](std::vector<index::RTreeEntry> v) {
    std::set<std::uint64_t> s;
    for (const auto& e : v) s.insert(e.id);
    return s;
  };
  EXPECT_EQ(ids(back.search(q)), ids(t.search(q)));
  // Exact serialization: serializing again yields identical bytes.
  EXPECT_EQ(back.serialize(), t.serialize());
}

TEST(RTreeSerialize, RejectsGarbage) {
  EXPECT_THROW(index::RTree::deserialize("not a tree"),
               gepeto::CheckFailure);
  EXPECT_THROW(index::RTree::deserialize("R 8 5 0 2\nL 1 2 3\nI 99"),
               gepeto::CheckFailure);
}

TEST(PartitionOfScalar, Boundaries) {
  const std::vector<std::uint64_t> b{10, 20, 30};
  EXPECT_EQ(partition_of_scalar(0, b), 0u);
  EXPECT_EQ(partition_of_scalar(10, b), 1u);  // boundary goes right
  EXPECT_EQ(partition_of_scalar(15, b), 1u);
  EXPECT_EQ(partition_of_scalar(30, b), 3u);
  EXPECT_EQ(partition_of_scalar(1000, b), 3u);
  EXPECT_EQ(partition_of_scalar(5, {}), 0u);
}

class RTreeMrBuild : public ::testing::TestWithParam<index::CurveKind> {};

TEST_P(RTreeMrBuild, IndexesEveryTraceExactlyOnce) {
  const auto synthetic = geo::generate_dataset([] {
    geo::GeneratorConfig cfg;
    cfg.num_users = 4;
    cfg.duration_days = 6;
    cfg.seed = 103;
    return cfg;
  }());
  mr::Dfs dfs(small_cluster());
  geo::dataset_to_dfs(dfs, "/in", synthetic.data, 2);

  RTreeMrConfig config;
  config.curve = GetParam();
  config.num_partitions = 4;
  const auto r = build_rtree_mapreduce(dfs, small_cluster(), "/in/", "/rtree",
                                       config);

  EXPECT_EQ(r.tree.size(), synthetic.data.num_traces());
  r.tree.check_invariants();

  // Every trace id present exactly once.
  std::set<std::uint64_t> ids;
  for (const auto& e : r.tree.entries()) EXPECT_TRUE(ids.insert(e.id).second);
  std::size_t expected = 0;
  for (const auto& [uid, trail] : synthetic.data) {
    for (const auto& t : trail) {
      EXPECT_TRUE(ids.count(pack_trace_id(t.user_id, t.timestamp)));
      ++expected;
    }
  }
  EXPECT_EQ(ids.size(), expected);

  // Partition bookkeeping.
  EXPECT_EQ(r.boundaries.size(),
            static_cast<std::size_t>(config.num_partitions - 1));
  std::uint64_t partition_total = 0;
  for (auto s : r.partition_sizes) partition_total += s;
  EXPECT_EQ(partition_total, synthetic.data.num_traces());
  EXPECT_EQ(r.phase2.num_reduce_tasks, config.num_partitions);
}

TEST_P(RTreeMrBuild, QueriesMatchDirectlyBuiltTree) {
  const auto synthetic = geo::generate_dataset([] {
    geo::GeneratorConfig cfg;
    cfg.num_users = 3;
    cfg.duration_days = 5;
    cfg.seed = 104;
    return cfg;
  }());
  mr::Dfs dfs(small_cluster());
  geo::dataset_to_dfs(dfs, "/in", synthetic.data, 2);
  RTreeMrConfig config;
  config.curve = GetParam();
  config.num_partitions = 3;
  const auto r = build_rtree_mapreduce(dfs, small_cluster(), "/in/", "/rtree",
                                       config);

  index::RTree direct(config.rtree_max_entries);
  std::vector<index::RTreeEntry> entries;
  for (const auto& [uid, trail] : synthetic.data)
    for (const auto& t : trail)
      entries.push_back(
          {t.latitude, t.longitude, pack_trace_id(t.user_id, t.timestamp)});
  direct.bulk_load_str(entries);

  gepeto::Rng rng(105);
  for (int q = 0; q < 20; ++q) {
    const double lat = rng.uniform(39.85, 39.95);
    const double lon = rng.uniform(116.3, 116.5);
    const double radius = rng.uniform(100, 3000);
    auto ids = [](std::vector<index::RTreeEntry> v) {
      std::set<std::uint64_t> s;
      for (const auto& e : v) s.insert(e.id);
      return s;
    };
    EXPECT_EQ(ids(r.tree.radius_search_meters(lat, lon, radius)),
              ids(direct.radius_search_meters(lat, lon, radius)));
  }
}

INSTANTIATE_TEST_SUITE_P(Curves, RTreeMrBuild,
                         ::testing::Values(index::CurveKind::kZOrder,
                                           index::CurveKind::kHilbert),
                         [](const auto& info) {
                           return info.param == index::CurveKind::kZOrder
                                      ? "ZOrder"
                                      : "Hilbert";
                         });

TEST(RTreeMr, SinglePartitionDegenerateCase) {
  const auto synthetic = geo::generate_dataset([] {
    geo::GeneratorConfig cfg;
    cfg.num_users = 2;
    cfg.duration_days = 4;
    cfg.seed = 106;
    return cfg;
  }());
  mr::Dfs dfs(small_cluster());
  geo::dataset_to_dfs(dfs, "/in", synthetic.data, 1);
  RTreeMrConfig config;
  config.num_partitions = 1;
  const auto r = build_rtree_mapreduce(dfs, small_cluster(), "/in/", "/rtree",
                                       config);
  EXPECT_TRUE(r.boundaries.empty());
  EXPECT_EQ(r.tree.size(), synthetic.data.num_traces());
}

TEST(RTreeMr, SfcPartitioningPreservesLocality) {
  // Points in the same small area should mostly land in the same partition:
  // count partition switches along a spatial sweep; locality-preserving
  // curves keep it far below the point count.
  const auto synthetic = geo::generate_dataset([] {
    geo::GeneratorConfig cfg;
    cfg.num_users = 4;
    cfg.duration_days = 6;
    cfg.seed = 107;
    return cfg;
  }());
  mr::Dfs dfs(small_cluster());
  geo::dataset_to_dfs(dfs, "/in", synthetic.data, 2);
  RTreeMrConfig config;
  config.curve = index::CurveKind::kHilbert;
  config.num_partitions = 4;
  const auto r = build_rtree_mapreduce(dfs, small_cluster(), "/in/", "/rtree",
                                       config);
  // Partition sizes should be roughly balanced (within 4x of each other —
  // sampling-based quantiles on skewed dwell data are approximate).
  std::uint64_t min_p = ~0ull, max_p = 0;
  for (auto s : r.partition_sizes) {
    min_p = std::min(min_p, s);
    max_p = std::max(max_p, s);
  }
  EXPECT_GT(min_p, 0u);
  EXPECT_LT(max_p, synthetic.data.num_traces());
}

TEST(RTreeMr, RejectsBadConfig) {
  mr::Dfs dfs(small_cluster());
  dfs.put("/in/x", "not,parsable\n");
  RTreeMrConfig config;
  config.num_partitions = 0;
  EXPECT_THROW(
      build_rtree_mapreduce(dfs, small_cluster(), "/in/", "/rtree", config),
      gepeto::CheckFailure);
  config.num_partitions = 4;
  EXPECT_THROW(
      build_rtree_mapreduce(dfs, small_cluster(), "/in/", "/rtree", config),
      gepeto::CheckFailure);  // no parsable traces
}

}  // namespace
}  // namespace gepeto::core
