// Tests for the binary columnar trace format (storage/colfile.h): codec
// round trips (including extreme and non-finite doubles), whole-file and
// split-tiled reads, footer stats, corruption / truncation detection as
// structured ColumnarError, and the DFS glue against the text format.
#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <limits>
#include <set>
#include <string>
#include <vector>

#include "common/random.h"
#include "geo/generator.h"
#include "geo/geolife.h"
#include "mapreduce/dfs.h"
#include "storage/colfile.h"

namespace gepeto::storage {
namespace {

using geo::MobilityTrace;

MobilityTrace tr(std::int32_t uid, double lat, double lon, std::int64_t ts,
                 double alt = 150.0) {
  return {uid, lat, lon, alt, ts};
}

std::string encode(const std::vector<MobilityTrace>& traces,
                   std::size_t block_records = 4096) {
  ColumnarWriter w({block_records});
  for (const auto& t : traces) w.add(t);
  return w.finish();
}

std::vector<MobilityTrace> decode_all(std::string_view bytes) {
  const ColumnarFile f(bytes);
  std::vector<MobilityTrace> out;
  for (std::size_t b = 0; b < f.num_blocks(); ++b)
    for (const auto& t : f.read_block(b)) out.push_back(t);
  return out;
}

// --- codecs ------------------------------------------------------------------

TEST(ColumnarCodec, VarintRoundTrip) {
  const std::uint64_t values[] = {0,
                                  1,
                                  127,
                                  128,
                                  300,
                                  (1ull << 21) - 1,
                                  1ull << 32,
                                  std::numeric_limits<std::uint64_t>::max()};
  std::string buf;
  for (std::uint64_t v : values) colenc::put_varint(buf, v);
  std::size_t pos = 0;
  for (std::uint64_t v : values) EXPECT_EQ(colenc::get_varint(buf, pos), v);
  EXPECT_EQ(pos, buf.size());
}

TEST(ColumnarCodec, VarintPastEndThrows) {
  std::string buf;
  colenc::put_varint(buf, 1ull << 40);
  buf.pop_back();  // drop the terminating byte
  std::size_t pos = 0;
  EXPECT_THROW(colenc::get_varint(buf, pos), ColumnarError);
}

TEST(ColumnarCodec, ZigzagRoundTrip) {
  const std::int64_t values[] = {0, -1, 1, -2, 63, -64,
                                 std::numeric_limits<std::int64_t>::min(),
                                 std::numeric_limits<std::int64_t>::max()};
  for (std::int64_t v : values) EXPECT_EQ(colenc::unzigzag(colenc::zigzag(v)), v);
}

TEST(ColumnarCodec, XorFpRoundTripIncludingNonFinite) {
  const double inf = std::numeric_limits<double>::infinity();
  const std::vector<double> values = {
      0.0,   -0.0, 39.984702, 39.984683,  116.318417,
      1e300, -1e-300, inf,    -inf,       std::nan(""),
      std::numeric_limits<double>::denorm_min(),
      std::numeric_limits<double>::max()};
  std::string buf;
  std::uint64_t prev = 0;
  for (double v : values) colenc::put_xorfp(buf, v, prev);
  std::size_t pos = 0;
  prev = 0;
  for (double v : values) {
    const double got = colenc::get_xorfp(buf, pos, prev);
    // Bit-exact, so -0.0 and NaN round-trip too.
    std::uint64_t a, b;
    std::memcpy(&a, &v, 8);
    std::memcpy(&b, &got, 8);
    EXPECT_EQ(a, b);
  }
  EXPECT_EQ(pos, buf.size());
}

// --- file round trips --------------------------------------------------------

TEST(ColumnarFileTest, EmptyFile) {
  const std::string bytes = encode({});
  const ColumnarFile f(bytes);
  EXPECT_EQ(f.num_blocks(), 0u);
  EXPECT_EQ(f.num_records(), 0u);
}

TEST(ColumnarFileTest, SingleRecord) {
  const std::vector<MobilityTrace> in = {tr(7, 39.984702, 116.318417, 1224730324)};
  const auto out = decode_all(encode(in));
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0], in[0]);
}

TEST(ColumnarFileTest, MultiBlockRoundTripPreservesOrder) {
  std::vector<MobilityTrace> in;
  for (int i = 0; i < 1000; ++i)
    in.push_back(tr(i / 100, 39.9 + i * 1e-4, 116.3 - i * 1e-4,
                    1'224'730'000 + i * 5, 100.0 + i));
  const std::string bytes = encode(in, /*block_records=*/64);
  const ColumnarFile f(bytes);
  EXPECT_EQ(f.num_blocks(), (1000 + 63) / 64);
  EXPECT_EQ(f.num_records(), 1000u);
  EXPECT_EQ(decode_all(bytes), in);
}

TEST(ColumnarFileTest, ExtremeAndAdversarialValuesRoundTrip) {
  const double inf = std::numeric_limits<double>::infinity();
  std::vector<MobilityTrace> in = {
      tr(std::numeric_limits<std::int32_t>::min(), -90.0, -180.0,
         std::numeric_limits<std::int64_t>::min(), -777.0),
      tr(std::numeric_limits<std::int32_t>::max(), 90.0, 180.0,
         std::numeric_limits<std::int64_t>::max(), 1e308),
      // The *format* is a faithful container even for values the parsers
      // reject: storage must never corrupt what it is given.
      tr(0, inf, -inf, 0, std::nan("")),
      tr(0, -0.0, 0.0, -1, std::numeric_limits<double>::denorm_min()),
  };
  const auto out = decode_all(encode(in, /*block_records=*/2));
  ASSERT_EQ(out.size(), in.size());
  for (std::size_t i = 0; i < in.size(); ++i) {
    EXPECT_EQ(out[i].user_id, in[i].user_id);
    EXPECT_EQ(out[i].timestamp, in[i].timestamp);
    std::uint64_t a, b;
    std::memcpy(&a, &in[i].latitude, 8);
    std::memcpy(&b, &out[i].latitude, 8);
    EXPECT_EQ(a, b) << "lat record " << i;
    std::memcpy(&a, &in[i].longitude, 8);
    std::memcpy(&b, &out[i].longitude, 8);
    EXPECT_EQ(a, b) << "lon record " << i;
    std::memcpy(&a, &in[i].altitude_ft, 8);
    std::memcpy(&b, &out[i].altitude_ft, 8);
    EXPECT_EQ(a, b) << "alt record " << i;
  }
}

TEST(ColumnarFileTest, RandomRoundTripProperty) {
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    Rng rng(seed);
    std::vector<MobilityTrace> in;
    const std::size_t n = static_cast<std::size_t>(rng.uniform_int(1, 3000));
    std::int64_t ts = static_cast<std::int64_t>(rng.uniform_u64(1ull << 40));
    for (std::size_t i = 0; i < n; ++i) {
      ts += rng.uniform_int(0, 600) - 60;
      in.push_back(tr(static_cast<std::int32_t>(rng.uniform_u64(1u << 20)),
                      rng.uniform(-90.0, 90.0), rng.uniform(-180.0, 180.0), ts,
                      rng.uniform(-777.0, 30000.0)));
    }
    const std::size_t block = static_cast<std::size_t>(rng.uniform_int(1, 512));
    EXPECT_EQ(decode_all(encode(in, block)), in) << "seed " << seed;
  }
}

TEST(ColumnarFileTest, FooterStatsCoverEveryBlock) {
  std::vector<MobilityTrace> in;
  for (int i = 0; i < 300; ++i)
    in.push_back(tr(1, 30.0 + i * 0.01, 110.0 + i * 0.02, 1000 + i * 7));
  const ColumnarFile f(encode(in, /*block_records=*/100));
  ASSERT_EQ(f.blocks().size(), 3u);
  std::size_t base = 0;
  for (const auto& b : f.blocks()) {
    ASSERT_EQ(b.records, 100u);
    double min_lat = in[base].latitude, max_lat = in[base].latitude;
    double min_lon = in[base].longitude, max_lon = in[base].longitude;
    std::int64_t min_ts = in[base].timestamp, max_ts = in[base].timestamp;
    for (std::size_t i = base; i < base + 100; ++i) {
      min_lat = std::min(min_lat, in[i].latitude);
      max_lat = std::max(max_lat, in[i].latitude);
      min_lon = std::min(min_lon, in[i].longitude);
      max_lon = std::max(max_lon, in[i].longitude);
      min_ts = std::min(min_ts, in[i].timestamp);
      max_ts = std::max(max_ts, in[i].timestamp);
    }
    EXPECT_EQ(b.min_lat, min_lat);
    EXPECT_EQ(b.max_lat, max_lat);
    EXPECT_EQ(b.min_lon, min_lon);
    EXPECT_EQ(b.max_lon, max_lon);
    EXPECT_EQ(b.min_ts, min_ts);
    EXPECT_EQ(b.max_ts, max_ts);
    base += 100;
  }
}

// --- corruption / truncation -------------------------------------------------

TEST(ColumnarCorruption, RejectsBadMagic) {
  std::string bytes = encode({tr(1, 39.9, 116.3, 1000)});
  bytes[0] ^= 0x01;
  EXPECT_THROW(ColumnarFile{bytes}, ColumnarError);
}

TEST(ColumnarCorruption, RejectsTruncationAtEveryLength) {
  const std::string bytes = encode({tr(1, 39.9, 116.3, 1000),
                                    tr(1, 39.91, 116.31, 1060)});
  // Any strict prefix must be rejected at open (trailer/footer damage) —
  // never misread as a shorter valid file.
  for (std::size_t len = 0; len < bytes.size(); ++len) {
    EXPECT_THROW(ColumnarFile{std::string_view(bytes.data(), len)},
                 ColumnarError)
        << "prefix length " << len;
  }
}

TEST(ColumnarCorruption, DetectsPayloadBitFlip) {
  std::vector<MobilityTrace> in;
  for (int i = 0; i < 50; ++i) in.push_back(tr(1, 39.9, 116.3, 1000 + i));
  std::string bytes = encode(in);
  // Flip one bit in the block payload (after the 8-byte magic).
  bytes[10] ^= 0x40;
  const ColumnarFile f(bytes);  // footer is intact, open succeeds
  EXPECT_THROW(f.read_block(0), ColumnarError);
}

TEST(ColumnarCorruption, DetectsFooterBitFlip) {
  std::string bytes = encode({tr(1, 39.9, 116.3, 1000)});
  // Flip a bit inside the footer region (just before the fixed trailer).
  constexpr std::size_t kTrailerSize = 8 + 4 + 8;
  bytes[bytes.size() - kTrailerSize - 3] ^= 0x10;
  EXPECT_THROW(ColumnarFile{bytes}, ColumnarError);
}

// --- splits ------------------------------------------------------------------

TEST(ColumnarSplits, TilingReadsEveryRecordExactlyOnce) {
  std::vector<MobilityTrace> in;
  for (int i = 0; i < 777; ++i)
    in.push_back(tr(i % 9, 39.0 + i * 1e-3, 116.0 + i * 1e-3, 5000 + i));
  const std::string bytes = encode(in, /*block_records=*/50);
  for (std::uint64_t chunk : {64ull, 255ull, 1000ull, 1ull << 20}) {
    std::vector<MobilityTrace> got;
    for (std::uint64_t off = 0; off < bytes.size(); off += chunk) {
      const std::uint64_t len =
          std::min<std::uint64_t>(chunk, bytes.size() - off);
      ColumnarSplitReader r(bytes, off, len);
      while (r.next()) got.push_back(r.trace());
    }
    EXPECT_EQ(got, in) << "chunk " << chunk;
  }
}

TEST(ColumnarSplits, SplitOutsidePayloadIsEmpty) {
  const std::string bytes = encode({tr(1, 39.9, 116.3, 1000)});
  // A split that only covers the trailer owns no blocks.
  ColumnarSplitReader r(bytes, bytes.size() - 4, 4);
  EXPECT_FALSE(r.next());
}

// --- DFS glue ----------------------------------------------------------------

mr::ClusterConfig small_cluster() {
  mr::ClusterConfig c;
  c.num_worker_nodes = 4;
  c.nodes_per_rack = 2;
  c.chunk_size = 4096;
  c.execution_threads = 2;
  return c;
}

TEST(ColumnarDfs, DatasetRoundTripMatchesTextPath) {
  const auto world = geo::generate_dataset(
      geo::scaled_config(/*num_users=*/6, /*target_traces=*/4000, /*seed=*/11));
  mr::Dfs dfs(small_cluster());
  dataset_to_dfs_columnar(dfs, "/col", world.data, /*num_files=*/3);
  geo::dataset_to_dfs(dfs, "/text", world.data, /*num_files=*/3);

  EXPECT_EQ(count_dfs_columnar_records(dfs, "/col/"), world.data.num_traces());
  const auto back = dataset_from_dfs_columnar(dfs, "/col/");
  EXPECT_EQ(back.all_traces(), world.data.all_traces());

  // Streaming pass sees the identical record stream.
  std::vector<MobilityTrace> streamed;
  for_each_dfs_columnar_trace(
      dfs, "/col/", [&](const MobilityTrace& t) { streamed.push_back(t); });
  EXPECT_EQ(streamed, world.data.all_traces());

  // Columnar storage should beat the text rendering comfortably on
  // GPS-shaped data.
  std::uint64_t text_bytes = 0, col_bytes = 0;
  for (const auto& p : dfs.list("/text/")) text_bytes += dfs.read(p).size();
  for (const auto& p : dfs.list("/col/")) col_bytes += dfs.read(p).size();
  EXPECT_LT(col_bytes, text_bytes / 2);
}

}  // namespace
}  // namespace gepeto::storage
