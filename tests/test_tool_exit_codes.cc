// The command-line tools promise distinct exit codes (common/exit_codes.h):
// 0 ok, 1 runtime error, 2 usage, 3 parse failure, 4 verification mismatch.
// These tests run the installed binaries (GEPETO_TOOL_DIR, injected by the
// build) and assert each path.
#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <string>

#include "common/exit_codes.h"
#include "geo/geolife.h"

namespace gepeto {
namespace {

namespace fs = std::filesystem;

std::string tool(const std::string& name) {
  return std::string(GEPETO_TOOL_DIR) + "/" + name;
}

int run(const std::string& cmd) {
  const int status = std::system((cmd + " > /dev/null 2>&1").c_str());
  EXPECT_NE(status, -1);
  return WEXITSTATUS(status);
}

class ToolExitCodes : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::path(::testing::TempDir()) /
           ("exit_codes_" + std::to_string(::getpid()));
    fs::create_directories(dir_);
  }
  void TearDown() override { fs::remove_all(dir_); }

  std::string path(const std::string& name) const {
    return (dir_ / name).string();
  }

  void write(const std::string& name, const std::string& contents) const {
    std::ofstream out(path(name), std::ios::binary);
    out << contents;
    ASSERT_TRUE(out.good());
  }

  /// A small valid dataset-lines file, via the canonical renderer.
  std::string valid_lines(int n = 8) const {
    std::string text;
    for (int i = 0; i < n; ++i) {
      text += geo::dataset_line(
          {i % 2, 39.9 + 0.001 * i, 116.4 + 0.001 * i, 150.0, 1222819200 + 60 * i});
      text.push_back('\n');
    }
    return text;
  }

  fs::path dir_;
};

TEST_F(ToolExitCodes, TraceConvertOkAndVerifyOk) {
  write("in.txt", valid_lines());
  EXPECT_EQ(run(tool("trace_convert") + " --to columnar --in " +
                path("in.txt") + " --out " + path("out.gpcol") + " --verify"),
            tools::kOk);
  EXPECT_EQ(run(tool("trace_convert") + " --to text --in " +
                path("out.gpcol") + " --out " + path("back.txt") + " --verify"),
            tools::kOk);
}

TEST_F(ToolExitCodes, TraceConvertUsage) {
  EXPECT_EQ(run(tool("trace_convert")), tools::kUsage);
  EXPECT_EQ(run(tool("trace_convert") + " --to nonsense --in a --out b"),
            tools::kUsage);
  EXPECT_EQ(run(tool("trace_convert") + " --bogus-flag x"), tools::kUsage);
}

TEST_F(ToolExitCodes, TraceConvertParseErrorOnMalformedLine) {
  write("bad.txt", valid_lines(2) + "0,not-a-latitude,116.4,0,150\n");
  EXPECT_EQ(run(tool("trace_convert") + " --to columnar --in " +
                path("bad.txt") + " --out " + path("out.gpcol")),
            tools::kParseError);
}

TEST_F(ToolExitCodes, TraceConvertParseErrorOnCorruptColumnarInput) {
  write("junk.gpcol", "this is not a columnar file at all");
  EXPECT_EQ(run(tool("trace_convert") + " --to text --in " +
                path("junk.gpcol") + " --out " + path("out.txt")),
            tools::kParseError);
}

TEST_F(ToolExitCodes, TraceConvertVerifyMismatchIsDistinct) {
  write("in.txt", valid_lines());
  // Corrupting a byte of the text output makes line-for-line verification
  // fail: exit 4, distinguishable from the parse failure above.
  EXPECT_EQ(run(tool("trace_convert") + " --to columnar --in " +
                path("in.txt") + " --out " + path("a.gpcol")),
            tools::kOk);
  EXPECT_EQ(run(tool("trace_convert") + " --to text --in " + path("a.gpcol") +
                " --out " + path("a.txt") + " --verify --flip-byte 3"),
            tools::kVerifyMismatch);
  // Same for the columnar direction (the flipped byte either breaks a CRC or
  // a decoded value; both are verification failures of our own output).
  EXPECT_EQ(run(tool("trace_convert") + " --to columnar --in " +
                path("in.txt") + " --out " + path("b.gpcol") +
                " --verify --flip-byte 16"),
            tools::kVerifyMismatch);
}

TEST_F(ToolExitCodes, CliUsage) {
  EXPECT_EQ(run(tool("gepeto")), tools::kUsage);
  EXPECT_EQ(run(tool("gepeto") + " frobnicate"), tools::kUsage);
  EXPECT_EQ(run(tool("gepeto") + " query"), tools::kUsage);  // missing --data
}

TEST_F(ToolExitCodes, CliQueryParseErrorVsVerifyMismatch) {
  const std::string data = path("geolife");
  ASSERT_EQ(run(tool("gepeto") + " generate --out " + data +
                " --users 2 --traces 300 --seed 7"),
            tools::kOk);
  const auto ds = geo::read_geolife_directory(data);
  ASSERT_GT(ds.num_traces(), 0u);
  const std::string n = std::to_string(ds.num_traces());

  // Malformed coordinate argument: parse error (3).
  EXPECT_EQ(run(tool("gepeto") + " query --data " + data +
                " --knn not-a-number,116.4,5"),
            tools::kParseError);
  EXPECT_EQ(run(tool("gepeto") + " query --data " + data + " --locate 39.9"),
            tools::kParseError);  // wrong arity

  // --expect against the wrong count: verification mismatch (4).
  EXPECT_EQ(run(tool("gepeto") + " query --data " + data + " --expect 1"),
            tools::kVerifyMismatch);

  // And the happy path answers queries and verifies the true count.
  EXPECT_EQ(run(tool("gepeto") + " query --data " + data +
                " --knn 39.9,116.4,5 --range 39.8,116.3,40.0,116.5"
                " --locate 39.9,116.4 --expect " + n),
            tools::kOk);

  // Boolean --pois followed by another flag must not swallow it: the POI
  // index has far fewer entries than the trace index, so --expect <traces>
  // mismatching proves --pois took effect, and a wrong-arity --locate after
  // --pois still parses (and fails) as its own flag.
  EXPECT_EQ(run(tool("gepeto") + " query --data " + data +
                " --pois --expect " + n),
            tools::kVerifyMismatch);
  EXPECT_EQ(run(tool("gepeto") + " query --data " + data +
                " --pois --locate 39.9"),
            tools::kParseError);
}

TEST_F(ToolExitCodes, CliPrivacyVerbs) {
  const std::string data = path("orig");
  ASSERT_EQ(run(tool("gepeto") + " generate --out " + data +
                " --users 3 --traces 2000 --seed 11"),
            tools::kOk);

  // sanitize with no mechanism picked: usage.
  EXPECT_EQ(run(tool("gepeto") + " sanitize --data " + data + " --out " +
                path("none")),
            tools::kUsage);

  // Cloak, then verify the release under the matching contract: ok. The raw
  // dataset is not a cloaking release — verification mismatch (4), distinct
  // from the missing-contract usage error (2).
  const std::string cloaked = path("cloaked");
  ASSERT_EQ(run(tool("gepeto") + " sanitize --data " + data + " --out " +
                cloaked + " --cloak 2 --cell 250 --doublings 3"),
            tools::kOk);
  EXPECT_EQ(run(tool("gepeto") + " verify --original " + data +
                " --sanitized " + cloaked + " --cloak 2 --cell 250 --doublings 3"),
            tools::kOk);
  EXPECT_EQ(run(tool("gepeto") + " verify --original " + data +
                " --sanitized " + data + " --cloak 2 --cell 250"),
            tools::kVerifyMismatch);
  EXPECT_EQ(run(tool("gepeto") + " verify --original " + data +
                " --sanitized " + cloaked),
            tools::kUsage);

  // Mix zones round-trip through the adversarial (no-owner-map) verifier:
  // `verify` re-derives the same automatically-placed zones from the
  // original.
  const std::string mixed = path("mixed");
  ASSERT_EQ(run(tool("gepeto") + " sanitize --data " + data + " --out " +
                mixed + " --mixzones 2 --zone-radius 300"),
            tools::kOk);
  EXPECT_EQ(run(tool("gepeto") + " verify --original " + data +
                " --sanitized " + mixed + " --mixzones 2 --zone-radius 300"),
            tools::kOk);

  // The linking attack gates on --max-reident: a budget of 1 always holds
  // (rate <= 1), a negative budget never does, and a malformed budget is a
  // parse error — three distinct exits from the same verb.
  EXPECT_EQ(run(tool("gepeto") + " attack --data " + cloaked + " --linked " +
                mixed + " --max-reident 1"),
            tools::kOk);
  EXPECT_EQ(run(tool("gepeto") + " attack --data " + cloaked + " --linked " +
                mixed + " --max-reident -0.5"),
            tools::kVerifyMismatch);
  EXPECT_EQ(run(tool("gepeto") + " attack --data " + cloaked + " --linked " +
                mixed + " --max-reident nonsense"),
            tools::kParseError);

  // odmatrix self-verifies its released matrix against the OD contract.
  EXPECT_EQ(run(tool("gepeto") + " odmatrix --data " + data +
                " --k 2 --verify"),
            tools::kOk);
}

}  // namespace
}  // namespace gepeto
