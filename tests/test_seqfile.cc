// Tests for the SequenceFile-like binary format: round trips, the
// exactly-once split property over arbitrary chunkings (the binary analogue
// of the text reader's rule), and the binary trace codec.
#include <gtest/gtest.h>

#include <set>
#include <string>
#include <vector>

#include "common/check.h"
#include "common/random.h"
#include "geo/geolife.h"
#include "mapreduce/seqfile.h"

namespace gepeto::mr {
namespace {

std::vector<std::string> read_split(std::string_view file,
                                    std::uint64_t start, std::uint64_t len) {
  SeqFileReader r(file, start, len);
  std::vector<std::string> records;
  while (r.next()) records.emplace_back(r.record());
  return records;
}

TEST(SeqFile, RoundTripWholeFile) {
  SeqFileWriter w;
  w.append("alpha");
  w.append("");
  w.append("gamma with spaces and \n newlines \0 inside");
  EXPECT_EQ(w.records_written(), 3u);
  const auto records = read_split(w.contents(), 0, w.contents().size());
  ASSERT_EQ(records.size(), 3u);
  EXPECT_EQ(records[0], "alpha");
  EXPECT_EQ(records[1], "");
  EXPECT_EQ(records[2], "gamma with spaces and \n newlines \0 inside");
}

TEST(SeqFile, EmptyFileHasNoRecords) {
  SeqFileWriter w;
  EXPECT_TRUE(read_split(w.contents(), 0, w.contents().size()).empty());
}

TEST(SeqFile, RejectsGarbageHeader) {
  EXPECT_THROW(SeqFileReader("not a seq file at all", 0, 10),
               gepeto::CheckFailure);
}

TEST(SeqFile, SyncMarkersAreInsertedPeriodically) {
  SeqFileWriter w(/*sync_seed=*/1, /*sync_interval=*/64);
  for (int i = 0; i < 100; ++i) w.append(std::string(20, 'x'));
  // 100 x 24 bytes of entries with a sync every >=64 bytes: many markers.
  const std::string_view sync(w.contents().data() + 4, kSeqSyncSize);
  std::size_t markers = 0, pos = 4 + kSeqSyncSize;
  while ((pos = w.contents().find(sync, pos)) != std::string::npos) {
    ++markers;
    pos += kSeqSyncSize;
  }
  EXPECT_GT(markers, 20u);
}

struct SeqChunkingCase {
  std::uint64_t seed;
  std::size_t chunk;
  std::size_t sync_interval;
};

class SeqChunkingProperty : public ::testing::TestWithParam<SeqChunkingCase> {};

TEST_P(SeqChunkingProperty, EveryRecordExactlyOnceInOrder) {
  const auto p = GetParam();
  gepeto::Rng rng(p.seed);
  SeqFileWriter w(p.seed, p.sync_interval);
  std::vector<std::string> expected;
  const int n = static_cast<int>(rng.uniform_int(1, 300));
  for (int i = 0; i < n; ++i) {
    std::string rec;
    const int len = static_cast<int>(rng.uniform_int(0, 50));
    for (int c = 0; c < len; ++c)
      rec.push_back(static_cast<char>(rng.uniform_u64(256)));
    w.append(rec);
    expected.push_back(std::move(rec));
  }
  const std::string& file = w.contents();
  std::vector<std::string> got;
  for (std::uint64_t off = 0; off < file.size(); off += p.chunk) {
    const std::uint64_t len =
        std::min<std::uint64_t>(p.chunk, file.size() - off);
    for (auto& r : read_split(file, off, len)) got.push_back(std::move(r));
  }
  EXPECT_EQ(got, expected) << "chunk=" << p.chunk
                           << " interval=" << p.sync_interval;
}

std::vector<SeqChunkingCase> seq_cases() {
  std::vector<SeqChunkingCase> cases;
  for (std::uint64_t seed = 1; seed <= 5; ++seed)
    for (std::size_t chunk : {8u, 33u, 128u, 1000u, 1u << 20})
      for (std::size_t interval : {1u, 100u, 5000u})
        cases.push_back({seed, chunk, interval});
  return cases;
}

INSTANTIATE_TEST_SUITE_P(AllChunkings, SeqChunkingProperty,
                         ::testing::ValuesIn(seq_cases()),
                         [](const auto& info) {
                           return "s" + std::to_string(info.param.seed) +
                                  "_c" + std::to_string(info.param.chunk) +
                                  "_i" +
                                  std::to_string(info.param.sync_interval);
                         });

TEST(BinaryTrace, RoundTripExact) {
  gepeto::Rng rng(7);
  for (int i = 0; i < 500; ++i) {
    geo::MobilityTrace t;
    t.user_id = static_cast<std::int32_t>(rng.uniform_int(0, 100000));
    t.latitude = rng.uniform(-90, 90);
    t.longitude = rng.uniform(-180, 180);
    t.altitude_ft = 150.0F;  // float-representable
    t.timestamp = rng.uniform_int(0, 2'000'000'000);
    geo::MobilityTrace back;
    ASSERT_TRUE(geo::trace_from_binary(geo::trace_to_binary(t), back));
    EXPECT_EQ(back.user_id, t.user_id);
    EXPECT_DOUBLE_EQ(back.latitude, t.latitude);   // doubles: bit-exact
    EXPECT_DOUBLE_EQ(back.longitude, t.longitude);
    EXPECT_EQ(back.timestamp, t.timestamp);
  }
}

TEST(BinaryTrace, RejectsWrongSizeAndBadCoordinates) {
  geo::MobilityTrace t;
  EXPECT_FALSE(geo::trace_from_binary("short", t));
  geo::MobilityTrace bad{1, 99.0, 116.4, 100, 1000};  // latitude out of range
  EXPECT_FALSE(geo::trace_from_binary(geo::trace_to_binary(bad), t));
}

TEST(BinaryTrace, SeqFileOfTracesRoundTrips) {
  gepeto::Rng rng(8);
  SeqFileWriter w;
  std::vector<geo::MobilityTrace> traces;
  for (int i = 0; i < 1000; ++i) {
    geo::MobilityTrace t{static_cast<std::int32_t>(i % 7),
                         rng.uniform(39.8, 40.0), rng.uniform(116.2, 116.6),
                         150.0F, 1'222'819'200 + i};
    traces.push_back(t);
    w.append(geo::trace_to_binary(t));
  }
  // Read back across 3 splits.
  const std::string& file = w.contents();
  std::vector<geo::MobilityTrace> got;
  const std::uint64_t third = file.size() / 3;
  for (std::uint64_t off : {std::uint64_t{0}, third, 2 * third}) {
    const std::uint64_t len =
        off == 2 * third ? file.size() - off : third;
    SeqFileReader r(file, off, len);
    while (r.next()) {
      geo::MobilityTrace t;
      ASSERT_TRUE(geo::trace_from_binary(r.record(), t));
      got.push_back(t);
    }
  }
  ASSERT_EQ(got.size(), traces.size());
  for (std::size_t i = 0; i < got.size(); ++i)
    EXPECT_EQ(got[i].timestamp, traces[i].timestamp);
  // Binary (36 bytes/record framed) is ~1.8x smaller than the text form.
  std::size_t text_size = 0;
  for (const auto& t : traces) text_size += geo::dataset_line(t).size() + 1;
  EXPECT_LT(file.size(), text_size * 6 / 10);
}

}  // namespace
}  // namespace gepeto::mr
