// Tests for the synthetic GeoLife generator: determinism, structural
// properties the paper's experiments rely on (many short dense trajectories,
// stationary/moving mix, POI structure), and the scaling helper.
#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "common/check.h"
#include "geo/distance.h"
#include "geo/generator.h"
#include "geo/stats.h"
#include "geo/time.h"

namespace gepeto::geo {
namespace {

GeneratorConfig tiny_config(std::uint64_t seed = 7) {
  GeneratorConfig cfg;
  cfg.num_users = 6;
  cfg.duration_days = 20;
  cfg.trajectories_per_user_min = 20;
  cfg.trajectories_per_user_max = 30;
  cfg.seed = seed;
  return cfg;
}

TEST(Generator, ProducesRequestedUsers) {
  const auto ds = generate_dataset(tiny_config());
  EXPECT_EQ(ds.data.num_users(), 6u);
  EXPECT_EQ(ds.profiles.size(), 6u);
  for (std::int32_t u = 0; u < 6; ++u) {
    EXPECT_TRUE(ds.data.has_user(u));
    EXPECT_FALSE(ds.data.trail(u).empty());
  }
}

TEST(Generator, DeterministicForSameSeed) {
  const auto a = generate_dataset(tiny_config(5));
  const auto b = generate_dataset(tiny_config(5));
  ASSERT_EQ(a.data.num_traces(), b.data.num_traces());
  for (std::int32_t u = 0; u < 6; ++u) {
    ASSERT_EQ(a.data.trail(u).size(), b.data.trail(u).size());
    EXPECT_EQ(a.data.trail(u), b.data.trail(u));
  }
}

TEST(Generator, DifferentSeedsDiffer) {
  const auto a = generate_dataset(tiny_config(5));
  const auto b = generate_dataset(tiny_config(6));
  EXPECT_NE(a.data.trail(0), b.data.trail(0));
}

TEST(Generator, TimestampsStrictlyIncreasingPerUser) {
  const auto ds = generate_dataset(tiny_config());
  for (const auto& [uid, trail] : ds.data) {
    for (std::size_t i = 1; i < trail.size(); ++i)
      ASSERT_GT(trail[i].timestamp, trail[i - 1].timestamp)
          << "user " << uid << " index " << i;
  }
}

TEST(Generator, InTrajectorySamplingPeriodWithinConfiguredRange) {
  const auto cfg = tiny_config();
  const auto ds = generate_dataset(cfg);
  const auto stats = compute_stats(ds.data);
  EXPECT_GE(stats.median_sample_period_s, cfg.sample_period_min_s);
  EXPECT_LE(stats.median_sample_period_s, cfg.sample_period_max_s);
}

TEST(Generator, TrajectoriesAreShortDenseBursts) {
  // GeoLife-like structure: trajectories last minutes, separated by gaps of
  // at least trajectory_gap_s.
  const auto cfg = tiny_config();
  const auto ds = generate_dataset(cfg);
  for (const auto& [uid, trail] : ds.data) {
    std::int64_t traj_start = trail.front().timestamp;
    for (std::size_t i = 1; i <= trail.size(); ++i) {
      const bool boundary =
          i == trail.size() ||
          trail[i].timestamp - trail[i - 1].timestamp > cfg.sample_period_max_s * 2;
      if (boundary) {
        const std::int64_t len = trail[i - 1].timestamp - traj_start;
        EXPECT_LE(len, static_cast<std::int64_t>(
                           cfg.trajectory_minutes_max * 60.0) +
                           cfg.sample_period_max_s)
            << "user " << uid;
        if (i < trail.size()) {
          EXPECT_GE(trail[i].timestamp - trail[i - 1].timestamp,
                    cfg.trajectory_gap_s);
          traj_start = trail[i].timestamp;
        }
      }
    }
  }
}

TEST(Generator, TraceCountPerTrajectoryIsGeoLifeLike) {
  // GeoLife averages ~110 traces per trajectory.
  const auto cfg = tiny_config();
  const auto ds = generate_dataset(cfg);
  std::size_t trajectories = 0;
  for (const auto& [uid, trail] : ds.data) {
    for (std::size_t i = 0; i < trail.size(); ++i) {
      if (i == 0 ||
          trail[i].timestamp - trail[i - 1].timestamp > cfg.sample_period_max_s * 2)
        ++trajectories;
    }
  }
  const double per_traj = static_cast<double>(ds.data.num_traces()) /
                          static_cast<double>(trajectories);
  EXPECT_GT(per_traj, 40.0);
  EXPECT_LT(per_traj, 250.0);
}

TEST(Generator, TracesStayNearTheCity) {
  auto cfg = tiny_config();
  const auto ds = generate_dataset(cfg);
  for (const auto& [uid, trail] : ds.data) {
    for (const auto& t : trail) {
      const double d = haversine_meters(cfg.city_latitude, cfg.city_longitude,
                                        t.latitude, t.longitude);
      ASSERT_LE(d, cfg.city_radius_km * 1000.0 * 1.2)
          << "trace strayed " << d << " m from the city";
    }
  }
}

TEST(Generator, ProfilesHaveHomeWorkAndLeisure) {
  auto cfg = tiny_config();
  const auto ds = generate_dataset(cfg);
  for (const auto& p : ds.profiles) {
    ASSERT_GE(p.pois.size(), 2u);
    EXPECT_EQ(p.pois[0].kind, PoiKind::kHome);
    EXPECT_EQ(p.pois[1].kind, PoiKind::kWork);
    for (std::size_t i = 2; i < p.pois.size(); ++i)
      EXPECT_EQ(p.pois[i].kind, PoiKind::kLeisure);
    EXPECT_GE(static_cast<int>(p.pois.size()) - 2, cfg.leisure_pois_min);
    EXPECT_LE(static_cast<int>(p.pois.size()) - 2, cfg.leisure_pois_max);
    // Home and work are a commute apart.
    EXPECT_GE(haversine_meters(p.pois[0].latitude, p.pois[0].longitude,
                               p.pois[1].latitude, p.pois[1].longitude),
              1500.0);
  }
}

TEST(Generator, TransitionsAreRowStochastic) {
  const auto ds = generate_dataset(tiny_config());
  for (const auto& p : ds.profiles) {
    ASSERT_EQ(p.transitions.size(), p.pois.size());
    for (std::size_t i = 0; i < p.transitions.size(); ++i) {
      double row = 0.0;
      for (std::size_t j = 0; j < p.transitions[i].size(); ++j) {
        EXPECT_GE(p.transitions[i][j], 0.0);
        row += p.transitions[i][j];
      }
      EXPECT_NEAR(row, 1.0, 1e-9);
      EXPECT_DOUBLE_EQ(p.transitions[i][i], 0.0) << "no self transitions";
    }
  }
}

TEST(Generator, ManyTracesNearAGroundTruthPoi) {
  // Dwell phases put a large share of traces within GPS noise of some POI —
  // the property DJ-Cluster exploits to extract POIs.
  const auto ds = generate_dataset(tiny_config());
  std::size_t near = 0, total = 0;
  for (const auto& [uid, trail] : ds.data) {
    const auto& pois = ds.profiles[static_cast<std::size_t>(uid)].pois;
    for (const auto& t : trail) {
      ++total;
      for (const auto& p : pois) {
        if (haversine_meters(t.latitude, t.longitude, p.latitude,
                             p.longitude) < 50.0) {
          ++near;
          break;
        }
      }
    }
  }
  EXPECT_GT(static_cast<double>(near) / static_cast<double>(total), 0.35);
}

TEST(Generator, StationaryShareMatchesGeoLifeRegime) {
  // Table IV: ~56% of the (1-minute-sampled) traces are stationary. The
  // full-density dwell share should be in the same band.
  const auto ds = generate_dataset(tiny_config());
  std::size_t slow = 0, total = 0;
  for (const auto& [uid, trail] : ds.data) {
    for (std::size_t i = 1; i < trail.size(); ++i) {
      const auto& a = trail[i - 1];
      const auto& b = trail[i];
      const double dt = static_cast<double>(b.timestamp - a.timestamp);
      if (dt > 60) continue;  // trajectory boundary
      const double v = equirectangular_meters(a.latitude, a.longitude,
                                              b.latitude, b.longitude) / dt;
      ++total;
      if (v < 2.0) ++slow;
    }
  }
  const double share = static_cast<double>(slow) / static_cast<double>(total);
  EXPECT_GT(share, 0.35);
  EXPECT_LT(share, 0.80);
}

TEST(Generator, ScaledConfigHitsTargetWithin25Percent) {
  const auto cfg = scaled_config(/*num_users=*/10, /*target_traces=*/60000,
                                 /*seed=*/11);
  const auto ds = generate_dataset(cfg);
  const auto n = static_cast<double>(ds.data.num_traces());
  EXPECT_GT(n, 0.75 * 60000);
  EXPECT_LT(n, 1.25 * 60000);
}

TEST(Generator, RejectsInvalidConfig) {
  auto cfg = tiny_config();
  cfg.num_users = 0;
  EXPECT_THROW(generate_dataset(cfg), gepeto::CheckFailure);
  cfg = tiny_config();
  cfg.sample_period_min_s = 0;
  EXPECT_THROW(generate_dataset(cfg), gepeto::CheckFailure);
  cfg = tiny_config();
  cfg.trajectory_minutes_max = cfg.trajectory_minutes_min / 2;
  EXPECT_THROW(generate_dataset(cfg), gepeto::CheckFailure);
  cfg = tiny_config();
  cfg.travel_start_prob = 1.5;
  EXPECT_THROW(generate_dataset(cfg), gepeto::CheckFailure);
}

}  // namespace
}  // namespace gepeto::geo
