// Tests for the R-Tree: insertion, STR bulk load, merging, queries checked
// against brute force, and structural invariants across random workloads.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "common/check.h"
#include "common/random.h"
#include "geo/distance.h"
#include "index/rtree.h"

namespace gepeto::index {
namespace {

std::vector<RTreeEntry> random_points(gepeto::Rng& rng, std::size_t n,
                                      double lat0 = 39.8, double lat1 = 40.0,
                                      double lon0 = 116.2,
                                      double lon1 = 116.6) {
  std::vector<RTreeEntry> pts;
  pts.reserve(n);
  for (std::size_t i = 0; i < n; ++i)
    pts.push_back({rng.uniform(lat0, lat1), rng.uniform(lon0, lon1), i});
  return pts;
}

std::vector<std::uint64_t> ids_of(std::vector<RTreeEntry> v) {
  std::vector<std::uint64_t> ids;
  ids.reserve(v.size());
  for (const auto& e : v) ids.push_back(e.id);
  std::sort(ids.begin(), ids.end());
  return ids;
}

std::vector<std::uint64_t> brute_force_rect(
    const std::vector<RTreeEntry>& pts, const Rect& r) {
  std::vector<std::uint64_t> ids;
  for (const auto& p : pts)
    if (r.contains(p.lat, p.lon)) ids.push_back(p.id);
  std::sort(ids.begin(), ids.end());
  return ids;
}

TEST(Rect, BasicOperations) {
  Rect r = Rect::of(0, 0, 2, 3);
  EXPECT_TRUE(r.valid());
  EXPECT_DOUBLE_EQ(r.area(), 6.0);
  EXPECT_TRUE(r.contains(1, 1));
  EXPECT_FALSE(r.contains(3, 1));
  EXPECT_TRUE(r.intersects(Rect::of(1, 1, 5, 5)));
  EXPECT_FALSE(r.intersects(Rect::of(3, 4, 5, 5)));
  EXPECT_DOUBLE_EQ(r.enlargement(Rect::point(4, 0)), 6.0);  // 4x3 - 2x3
  EXPECT_DOUBLE_EQ(r.min_dist2(0, 5), 4.0);
  EXPECT_DOUBLE_EQ(r.min_dist2(1, 1), 0.0);
}

TEST(Rect, DefaultIsInvalidAndExpandFixesIt) {
  Rect r;
  EXPECT_FALSE(r.valid());
  r.expand(Rect::point(1, 2));
  EXPECT_TRUE(r.valid());
  EXPECT_DOUBLE_EQ(r.area(), 0.0);
}

TEST(RTree, EmptyTree) {
  RTree t;
  EXPECT_TRUE(t.empty());
  EXPECT_EQ(t.height(), 0);
  EXPECT_TRUE(t.search(Rect::of(-90, -180, 90, 180)).empty());
  EXPECT_TRUE(t.knn(0, 0, 5).empty());
  t.check_invariants();
}

TEST(RTree, SingleInsert) {
  RTree t;
  t.insert(39.9, 116.4, 7);
  EXPECT_EQ(t.size(), 1u);
  EXPECT_EQ(t.height(), 1);
  const auto hits = t.search(Rect::of(39, 116, 40, 117));
  ASSERT_EQ(hits.size(), 1u);
  EXPECT_EQ(hits[0].id, 7u);
  t.check_invariants();
}

TEST(RTree, InsertBeyondCapacitySplits) {
  RTree t(4);
  gepeto::Rng rng(51);
  for (std::uint64_t i = 0; i < 100; ++i)
    t.insert(rng.uniform(0, 1), rng.uniform(0, 1), i);
  EXPECT_EQ(t.size(), 100u);
  EXPECT_GT(t.height(), 1);
  t.check_invariants();
}

TEST(RTree, SearchMatchesBruteForceAfterInserts) {
  gepeto::Rng rng(52);
  const auto pts = random_points(rng, 500);
  RTree t(8);
  for (const auto& p : pts) t.insert(p.lat, p.lon, p.id);
  t.check_invariants();
  for (int q = 0; q < 50; ++q) {
    const double lat = rng.uniform(39.8, 40.0);
    const double lon = rng.uniform(116.2, 116.6);
    const Rect r = Rect::of(lat, lon, lat + rng.uniform(0, 0.1),
                            lon + rng.uniform(0, 0.1));
    EXPECT_EQ(ids_of(t.search(r)), brute_force_rect(pts, r));
  }
}

TEST(RTree, DuplicatePointsAllRetrievable) {
  RTree t(4);
  for (std::uint64_t i = 0; i < 20; ++i) t.insert(1.0, 2.0, i);
  EXPECT_EQ(t.size(), 20u);
  EXPECT_EQ(t.search(Rect::point(1.0, 2.0)).size(), 20u);
  t.check_invariants();
}

TEST(RTree, BulkLoadStrMatchesBruteForce) {
  gepeto::Rng rng(53);
  const auto pts = random_points(rng, 700);
  RTree t(16);
  t.bulk_load_str(pts);
  EXPECT_EQ(t.size(), 700u);
  t.check_invariants();
  for (int q = 0; q < 50; ++q) {
    const double lat = rng.uniform(39.8, 40.0);
    const double lon = rng.uniform(116.2, 116.6);
    const Rect r = Rect::of(lat, lon, lat + rng.uniform(0, 0.05),
                            lon + rng.uniform(0, 0.05));
    EXPECT_EQ(ids_of(t.search(r)), brute_force_rect(pts, r));
  }
}

TEST(RTree, BulkLoadRequiresEmptyTree) {
  RTree t;
  t.insert(0, 0, 1);
  std::vector<RTreeEntry> pts{{1, 1, 2}};
  EXPECT_THROW(t.bulk_load_str(pts), gepeto::CheckFailure);
}

TEST(RTree, BulkLoadEmptyInputIsNoop) {
  RTree t;
  t.bulk_load_str({});
  EXPECT_TRUE(t.empty());
}

TEST(RTree, BulkLoadAwkwardSizes) {
  // Sizes around node-capacity boundaries (incl. the 17-leaves case that
  // would otherwise produce a single-child parent).
  for (std::size_t n : {1u, 2u, 15u, 16u, 17u, 255u, 256u, 257u, 272u, 273u}) {
    gepeto::Rng rng(54 + n);
    const auto pts = random_points(rng, n);
    RTree t(16);
    t.bulk_load_str(pts);
    EXPECT_EQ(t.size(), n);
    t.check_invariants();
    EXPECT_EQ(ids_of(t.entries()), ids_of(pts));
  }
}

TEST(RTree, KnnMatchesBruteForce) {
  gepeto::Rng rng(55);
  const auto pts = random_points(rng, 400);
  RTree t(8);
  for (const auto& p : pts) t.insert(p.lat, p.lon, p.id);
  for (int q = 0; q < 30; ++q) {
    const double lat = rng.uniform(39.8, 40.0);
    const double lon = rng.uniform(116.2, 116.6);
    const std::size_t k = 1 + rng.uniform_u64(20);
    const auto got = t.knn(lat, lon, k);
    ASSERT_EQ(got.size(), k);
    // Brute force distances.
    std::vector<double> d2;
    for (const auto& p : pts) {
      const double a = p.lat - lat, b = p.lon - lon;
      d2.push_back(a * a + b * b);
    }
    std::sort(d2.begin(), d2.end());
    for (std::size_t i = 0; i < k; ++i) {
      const double a = got[i].lat - lat, b = got[i].lon - lon;
      EXPECT_NEAR(a * a + b * b, d2[i], 1e-15);
    }
    // Nearest-first ordering.
    for (std::size_t i = 1; i < k; ++i) {
      const double a0 = got[i - 1].lat - lat, b0 = got[i - 1].lon - lon;
      const double a1 = got[i].lat - lat, b1 = got[i].lon - lon;
      EXPECT_LE(a0 * a0 + b0 * b0, a1 * a1 + b1 * b1 + 1e-15);
    }
  }
}

TEST(RTree, KnnWithKLargerThanSize) {
  RTree t;
  t.insert(0, 0, 1);
  t.insert(1, 1, 2);
  EXPECT_EQ(t.knn(0, 0, 10).size(), 2u);
}

TEST(RTree, RadiusSearchMetersMatchesHaversineBruteForce) {
  gepeto::Rng rng(56);
  const auto pts = random_points(rng, 300);
  RTree t(8);
  t.bulk_load_str(pts);
  for (int q = 0; q < 20; ++q) {
    const double lat = rng.uniform(39.85, 39.95);
    const double lon = rng.uniform(116.3, 116.5);
    const double radius = rng.uniform(50, 2000);
    std::vector<std::uint64_t> expected;
    for (const auto& p : pts)
      if (geo::haversine_meters(lat, lon, p.lat, p.lon) <= radius)
        expected.push_back(p.id);
    std::sort(expected.begin(), expected.end());
    EXPECT_EQ(ids_of(t.radius_search_meters(lat, lon, radius)), expected);
  }
}

TEST(RTree, MergeEqualHeightGrafts) {
  gepeto::Rng rng(57);
  auto a_pts = random_points(rng, 200);
  auto b_pts = random_points(rng, 200);
  for (auto& p : b_pts) p.id += 1000;
  RTree a(16), b(16);
  a.bulk_load_str(a_pts);
  b.bulk_load_str(b_pts);
  ASSERT_EQ(a.height(), b.height());
  a.merge(b);
  EXPECT_EQ(a.size(), 400u);
  a.check_invariants();
  auto all = a_pts;
  all.insert(all.end(), b_pts.begin(), b_pts.end());
  EXPECT_EQ(ids_of(a.entries()), ids_of(all));
}

TEST(RTree, MergeUnequalHeightsReinserts) {
  gepeto::Rng rng(58);
  auto big_pts = random_points(rng, 600);
  auto small_pts = random_points(rng, 5);
  for (auto& p : small_pts) p.id += 10000;
  RTree big(8), small(8);
  big.bulk_load_str(big_pts);
  small.bulk_load_str(small_pts);
  ASSERT_NE(big.height(), small.height());
  big.merge(small);
  EXPECT_EQ(big.size(), 605u);
  big.check_invariants();

  // Also merge big INTO small (the adopt-the-bigger path).
  RTree small2(8);
  small2.bulk_load_str(small_pts);
  small2.merge(big);
  EXPECT_EQ(small2.size(), 610u);  // 5 of its own + 605 now in `big`
  small2.check_invariants();
}

TEST(RTree, MergeWithEmptySides) {
  RTree a, b;
  a.merge(b);
  EXPECT_TRUE(a.empty());
  b.insert(1, 1, 1);
  a.merge(b);
  EXPECT_EQ(a.size(), 1u);
  RTree c;
  a.merge(c);
  EXPECT_EQ(a.size(), 1u);
}

TEST(RTree, MergedTreeAnswersQueries) {
  gepeto::Rng rng(59);
  const auto pts = random_points(rng, 300);
  RTree parts[3]{RTree(8), RTree(8), RTree(8)};
  std::vector<RTreeEntry> chunk[3];
  for (std::size_t i = 0; i < pts.size(); ++i)
    chunk[i % 3].push_back(pts[i]);
  for (int i = 0; i < 3; ++i) parts[i].bulk_load_str(chunk[i]);
  RTree merged = parts[0];
  merged.merge(parts[1]);
  merged.merge(parts[2]);
  EXPECT_EQ(merged.size(), 300u);
  merged.check_invariants();
  const Rect r = Rect::of(39.85, 116.3, 39.95, 116.5);
  EXPECT_EQ(ids_of(merged.search(r)), brute_force_rect(pts, r));
}

TEST(RTree, BoundsCoverEverything) {
  gepeto::Rng rng(60);
  const auto pts = random_points(rng, 100);
  RTree t;
  for (const auto& p : pts) t.insert(p.lat, p.lon, p.id);
  const Rect b = t.bounds();
  for (const auto& p : pts) EXPECT_TRUE(b.contains(p.lat, p.lon));
}

TEST(RTree, HeightGrowsLogarithmically) {
  RTree t(8);
  gepeto::Rng rng(61);
  for (std::uint64_t i = 0; i < 2000; ++i)
    t.insert(rng.uniform(0, 1), rng.uniform(0, 1), i);
  // With M=8, 2000 points should need no more than ~6 levels.
  EXPECT_LE(t.height(), 7);
  t.check_invariants();
}

struct RTreeWorkload {
  std::uint64_t seed;
  int max_entries;
  std::size_t n;
};

class RTreeProperty : public ::testing::TestWithParam<RTreeWorkload> {};

TEST_P(RTreeProperty, InvariantsAndQueriesHoldOnRandomWorkloads) {
  const auto p = GetParam();
  gepeto::Rng rng(p.seed);
  const auto pts = random_points(rng, p.n);
  RTree t(p.max_entries);
  for (const auto& e : pts) t.insert(e.lat, e.lon, e.id);
  t.check_invariants();
  EXPECT_EQ(t.size(), p.n);
  EXPECT_EQ(ids_of(t.entries()), ids_of(pts));
  const Rect r = Rect::of(39.85, 116.25, 39.95, 116.45);
  EXPECT_EQ(ids_of(t.search(r)), brute_force_rect(pts, r));
}

INSTANTIATE_TEST_SUITE_P(
    Workloads, RTreeProperty,
    ::testing::Values(RTreeWorkload{1, 4, 10}, RTreeWorkload{2, 4, 100},
                      RTreeWorkload{3, 4, 1000}, RTreeWorkload{4, 8, 333},
                      RTreeWorkload{5, 16, 1000}, RTreeWorkload{6, 32, 2000},
                      RTreeWorkload{7, 8, 1}, RTreeWorkload{8, 8, 2}),
    [](const auto& info) {
      return "seed" + std::to_string(info.param.seed) + "_M" +
             std::to_string(info.param.max_entries) + "_n" +
             std::to_string(info.param.n);
    });

}  // namespace
}  // namespace gepeto::index
