// Tests for civil/Unix/GeoLife time conversions.
#include <gtest/gtest.h>

#include "common/random.h"
#include "geo/time.h"

namespace gepeto::geo {
namespace {

TEST(CivilTime, EpochIsZero) {
  EXPECT_EQ(days_from_civil(1970, 1, 1), 0);
  EXPECT_EQ(to_unix_seconds({1970, 1, 1, 0, 0, 0}), 0);
}

TEST(CivilTime, KnownDates) {
  EXPECT_EQ(days_from_civil(2000, 3, 1), 11017);
  EXPECT_EQ(days_from_civil(1899, 12, 30), -25569);  // the OLE epoch
  // GeoLife's own example: 2008-10-24 02:49:30 has day number 39745.1177...
  const std::int64_t ts = to_unix_seconds({2008, 10, 24, 2, 49, 30});
  EXPECT_NEAR(to_geolife_days(ts), 39745.1177, 0.0005);
}

TEST(CivilTime, RoundTripDays) {
  for (std::int64_t d : {-25569, -1, 0, 1, 10000, 14000, 20000}) {
    int y, m, day;
    civil_from_days(d, y, m, day);
    EXPECT_EQ(days_from_civil(y, m, day), d);
  }
}

TEST(CivilTime, LeapYearHandling) {
  EXPECT_EQ(days_from_civil(2008, 2, 29) + 1, days_from_civil(2008, 3, 1));
  EXPECT_EQ(days_from_civil(2000, 2, 29) + 1, days_from_civil(2000, 3, 1));
  // 1900 was not a leap year.
  EXPECT_EQ(days_from_civil(1900, 2, 28) + 1, days_from_civil(1900, 3, 1));
}

TEST(CivilTime, UnixRoundTripRandom) {
  gepeto::Rng rng(21);
  for (int i = 0; i < 2000; ++i) {
    const std::int64_t ts = rng.uniform_int(0, 2'000'000'000);
    EXPECT_EQ(to_unix_seconds(from_unix_seconds(ts)), ts);
  }
}

TEST(CivilTime, NegativeTimestamps) {
  const CivilTime ct = from_unix_seconds(-1);
  EXPECT_EQ(ct.year, 1969);
  EXPECT_EQ(ct.month, 12);
  EXPECT_EQ(ct.day, 31);
  EXPECT_EQ(ct.second, 59);
}

TEST(GeolifeDays, RoundTripToTheSecond) {
  gepeto::Rng rng(22);
  for (int i = 0; i < 2000; ++i) {
    const std::int64_t ts = rng.uniform_int(1'100'000'000, 1'400'000'000);
    EXPECT_EQ(from_geolife_days(to_geolife_days(ts)), ts);
  }
}

TEST(Format, DateAndTime) {
  const CivilTime ct{2008, 10, 24, 2, 49, 30};
  EXPECT_EQ(format_date(ct), "2008-10-24");
  EXPECT_EQ(format_time(ct), "02:49:30");
}

TEST(Parse, ValidDateAndTime) {
  CivilTime ct;
  EXPECT_TRUE(parse_date("2008-10-24", ct));
  EXPECT_TRUE(parse_time("02:49:30", ct));
  EXPECT_EQ(ct, (CivilTime{2008, 10, 24, 2, 49, 30}));
}

TEST(Parse, RejectsMalformedInput) {
  CivilTime ct;
  EXPECT_FALSE(parse_date("2008/10/24", ct));
  EXPECT_FALSE(parse_date("2008-13-01", ct));
  EXPECT_FALSE(parse_date("2008-00-01", ct));
  EXPECT_FALSE(parse_date("08-10-24", ct));
  EXPECT_FALSE(parse_date("", ct));
  EXPECT_FALSE(parse_time("2:49:30", ct));
  EXPECT_FALSE(parse_time("25:00:00", ct));
  EXPECT_FALSE(parse_time("02-49-30", ct));
  EXPECT_FALSE(parse_time("02:61:30", ct));
}

TEST(Parse, FormatParseRoundTrip) {
  gepeto::Rng rng(23);
  for (int i = 0; i < 500; ++i) {
    const auto ct = from_unix_seconds(rng.uniform_int(0, 2'000'000'000));
    CivilTime back_d, back_t;
    ASSERT_TRUE(parse_date(format_date(ct), back_d));
    ASSERT_TRUE(parse_time(format_time(ct), back_t));
    EXPECT_EQ(back_d.year, ct.year);
    EXPECT_EQ(back_d.month, ct.month);
    EXPECT_EQ(back_d.day, ct.day);
    EXPECT_EQ(back_t.hour, ct.hour);
    EXPECT_EQ(back_t.minute, ct.minute);
    EXPECT_EQ(back_t.second, ct.second);
  }
}

TEST(DayOfWeek, KnownDays) {
  // 1970-01-01 was a Thursday (Monday = 0 -> 3).
  EXPECT_EQ(day_of_week(0), 3);
  // 2008-10-24 was a Friday.
  EXPECT_EQ(day_of_week(to_unix_seconds({2008, 10, 24, 12, 0, 0})), 4);
  // 2026-07-05 is a Sunday.
  EXPECT_EQ(day_of_week(to_unix_seconds({2026, 7, 5, 0, 0, 0})), 6);
}

TEST(SecondsOfDay, WrapsCorrectly) {
  EXPECT_EQ(seconds_of_day(0), 0);
  EXPECT_EQ(seconds_of_day(86399), 86399);
  EXPECT_EQ(seconds_of_day(86400), 0);
  EXPECT_EQ(seconds_of_day(-1), 86399);
}

}  // namespace
}  // namespace gepeto::geo
