// gepeto — command-line driver for the toolkit.
//
// Operates on GeoLife-layout directories (Data/<user>/Trajectory/*.plt), so
// it works on the real GeoLife download as well as on generated data.
//
//   gepeto generate --out DIR [--users N] [--traces M] [--seed S] [--friends K]
//   gepeto stats    --data DIR
//   gepeto sample   --data DIR --out DIR2 [--window SECONDS] [--technique upper|middle]
//   gepeto pois     --data DIR --user ID [--geojson FILE]
//   gepeto attack   --data DIR            (POI + home/work + de-anonymization)
//                   [--linked DIR2]       (+ POI-fingerprint linking vs DIR2)
//   gepeto social   --data DIR            (co-location link discovery)
//   gepeto sanitize --data DIR --out DIR2 (--mask METERS | --round METERS |
//                                          --cloak K | --mixzones N)
//   gepeto verify   --original DIR --sanitized DIR2 (--cloak K | --mixzones N)
//   gepeto odmatrix --data DIR [--cell M] [--gap S] [--k K]
//   gepeto heatmap  --data DIR --cell METERS --out FILE.csv
//   gepeto query    --data DIR [--pois] [--knn LAT,LON,K] [--range A,B,C,D] [--locate LAT,LON] [--expect N]
//
// Exit codes (common/exit_codes.h): 0 success, 1 runtime error, 2 usage,
// 3 unparsable input (malformed coordinate arguments, bad data), 4
// verification mismatch (--expect, --max-reident, `verify` violations).
#include <cmath>
#include <cstdint>
#include <cstring>
#include <fstream>
#include <iostream>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/exit_codes.h"
#include "common/table.h"
#include "geo/generator.h"
#include "geo/geolife.h"
#include "geo/stats.h"
#include "gepeto/attacks/fingerprint.h"
#include "gepeto/attacks/od_matrix.h"
#include "gepeto/attacks/privacy_verifier.h"
#include "gepeto/djcluster.h"
#include "gepeto/export.h"
#include "gepeto/mmc.h"
#include "gepeto/poi.h"
#include "gepeto/sampling.h"
#include "gepeto/sanitize.h"
#include "gepeto/social.h"
#include "mapreduce/job.h"
#include "serving/builders.h"
#include "serving/query_engine.h"
#include "telemetry/metrics.h"
#include "telemetry/trace.h"

namespace {

using namespace gepeto;

/// Trivial "--key value" argument map.
class Args {
 public:
  Args(int argc, char** argv) {
    for (int i = 2; i < argc; ++i) {
      if (std::strncmp(argv[i], "--", 2) != 0) {
        std::cerr << "expected --flag, got '" << argv[i] << "'\n";
        std::exit(2);
      }
      // A flag followed by another --flag (or by nothing) is boolean, e.g.
      // `query --pois --locate LAT,LON`. Values never start with "--"
      // (negative numbers are "-5", coordinates "-10.5,20").
      if (i + 1 < argc && std::strncmp(argv[i + 1], "--", 2) != 0) {
        values_[argv[i] + 2] = argv[i + 1];
        ++i;
      } else {
        values_[argv[i] + 2] = "1";
      }
    }
  }

  std::string get(const std::string& key, const std::string& fallback = "") const {
    const auto it = values_.find(key);
    return it == values_.end() ? fallback : it->second;
  }

  std::string require(const std::string& key) const {
    const auto v = get(key);
    if (v.empty()) {
      std::cerr << "missing required flag --" << key << "\n";
      std::exit(2);
    }
    return v;
  }

  long num(const std::string& key, long fallback) const {
    const auto v = get(key);
    return v.empty() ? fallback : std::stol(v);
  }

  bool has(const std::string& key) const { return values_.count(key) != 0; }

 private:
  std::map<std::string, std::string> values_;
};

/// --trace-out FILE / --metrics-out FILE: record the command's phases as
/// wall-clock spans and its volumes as metrics, written on exit. The CLI
/// runs everything in-process, so the wall timeline is the relevant one
/// (Chrome trace JSON, loadable in Perfetto); metrics are JSON, or
/// Prometheus text exposition when FILE ends in ".prom".
class TelemetrySession {
 public:
  explicit TelemetrySession(const Args& args)
      : trace_path_(args.get("trace-out")),
        metrics_path_(args.get("metrics-out")) {}

  telemetry::WallScope span(const std::string& name) {
    return trace_path_.empty() ? telemetry::WallScope()
                               : trace_.wall_span(name, "cli");
  }

  void count(const std::string& name, std::int64_t v) {
    if (!metrics_path_.empty()) metrics_.counter(name).add(v);
  }

  void flush() {
    if (!trace_path_.empty()) {
      std::ofstream out(trace_path_, std::ios::binary);
      out << trace_.chrome_trace_json(telemetry::Timeline::kWall);
      std::cout << (out.good() ? "wrote trace " : "cannot write trace ")
                << trace_path_ << "\n";
    }
    if (!metrics_path_.empty()) {
      const bool prom = metrics_path_.size() > 5 &&
                        metrics_path_.compare(metrics_path_.size() - 5, 5,
                                              ".prom") == 0;
      std::ofstream out(metrics_path_, std::ios::binary);
      out << (prom ? metrics_.to_prometheus() : metrics_.to_json());
      std::cout << (out.good() ? "wrote metrics " : "cannot write metrics ")
                << metrics_path_ << "\n";
    }
  }

 private:
  telemetry::TraceRecorder trace_;
  telemetry::MetricsRegistry metrics_;
  std::string trace_path_;
  std::string metrics_path_;
};

void write_file(const std::string& path, const std::string& contents) {
  std::ofstream out(path, std::ios::binary);
  if (!out.good()) {
    std::cerr << "cannot write " << path << "\n";
    std::exit(1);
  }
  out << contents;
  std::cout << "wrote " << path << " (" << contents.size() << " bytes)\n";
}

std::vector<double> parse_csv_numbers(const std::string& flag,
                                      const std::string& value,
                                      std::size_t expected);

int cmd_generate(const Args& args) {
  const auto out = args.require("out");
  auto cfg = geo::scaled_config(static_cast<int>(args.num("users", 20)),
                                static_cast<std::uint64_t>(args.num("traces", 200000)),
                                static_cast<std::uint64_t>(args.num("seed", 2013)));
  cfg.friends_per_user = static_cast<int>(args.num("friends", 0));
  const auto world = geo::generate_dataset(cfg);
  const auto files = geo::write_geolife_directory(world.data, out);
  std::cout << "generated " << world.data.num_users() << " users, "
            << format_count(world.data.num_traces()) << " traces into "
            << files << " PLT files under " << out << "\n";
  if (!world.friendships.empty())
    std::cout << world.friendships.size()
              << " ground-truth friendships (co-visit the shared POIs)\n";
  return 0;
}

int cmd_stats(const Args& args) {
  const auto data = geo::read_geolife_directory(args.require("data"));
  std::cout << geo::describe(geo::compute_stats(data));
  return 0;
}

int cmd_sample(const Args& args) {
  TelemetrySession tel(args);
  auto cmd_span = tel.span("sample");
  geo::GeolocatedDataset data;
  {
    auto s = tel.span("read");
    data = geo::read_geolife_directory(args.require("data"));
  }
  core::SamplingConfig config;
  config.window_s = static_cast<int>(args.num("window", 60));
  config.technique = args.get("technique", "upper") == "middle"
                         ? core::SamplingTechnique::kMiddle
                         : core::SamplingTechnique::kUpperLimit;
  geo::GeolocatedDataset sampled;
  {
    auto s = tel.span("downsample");
    sampled = core::downsample(data, config);
  }
  {
    auto s = tel.span("write");
    geo::write_geolife_directory(sampled, args.require("out"));
  }
  tel.count("cli_input_traces",
            static_cast<std::int64_t>(data.num_traces()));
  tel.count("cli_output_traces",
            static_cast<std::int64_t>(sampled.num_traces()));
  std::cout << "sampled " << format_count(data.num_traces()) << " -> "
            << format_count(sampled.num_traces()) << " traces (window "
            << config.window_s << " s)\n";
  cmd_span = telemetry::WallScope();
  tel.flush();
  return 0;
}

core::DjClusterConfig attack_config(const Args& args) {
  core::DjClusterConfig c;
  c.radius_m = static_cast<double>(args.num("radius", 60));
  c.min_pts = static_cast<int>(args.num("minpts", 10));
  return c;
}

int cmd_pois(const Args& args) {
  const auto data = geo::read_geolife_directory(args.require("data"));
  const auto uid = static_cast<std::int32_t>(args.num("user", 0));
  if (!data.has_user(uid)) {
    std::cerr << "no such user: " << uid << "\n";
    return 1;
  }
  const auto extracted = core::extract_pois(data.trail(uid), attack_config(args));
  Table t("POIs of user " + std::to_string(uid));
  t.header({"#", "lat", "lon", "traces", "night", "office", "role"});
  for (std::size_t i = 0; i < extracted.pois.size(); ++i) {
    const auto& p = extracted.pois[i];
    std::string role;
    if (static_cast<int>(i) == extracted.home_index) role = "HOME";
    if (static_cast<int>(i) == extracted.work_index) role = "WORK";
    t.row({std::to_string(i), format_double(p.latitude, 5),
           format_double(p.longitude, 5), std::to_string(p.num_traces),
           std::to_string(p.night_traces), std::to_string(p.office_traces),
           role});
  }
  t.print(std::cout);
  if (args.has("geojson"))
    write_file(args.get("geojson"), core::pois_to_geojson(extracted));
  return 0;
}

int cmd_attack(const Args& args) {
  TelemetrySession tel(args);
  auto cmd_span = tel.span("attack");
  geo::GeolocatedDataset data;
  {
    auto s = tel.span("read");
    data = geo::read_geolife_directory(args.require("data"));
  }
  const auto config = attack_config(args);
  core::MmcConfig mmc_config;
  mmc_config.clustering = config;

  Table t("inference-attack summary");
  t.header({"user", "POIs", "home?", "work?", "prediction acc"});
  std::int64_t total_pois = 0;
  {
    auto s = tel.span("poi-extraction");
    for (auto uid : data.users()) {
      const auto pois = core::extract_pois(data.trail(uid), config);
      const double acc =
          core::prediction_accuracy(data.trail(uid), mmc_config);
      total_pois += static_cast<std::int64_t>(pois.pois.size());
      t.row({std::to_string(uid), std::to_string(pois.pois.size()),
             pois.home_index >= 0 ? "yes" : "-",
             pois.work_index >= 0 ? "yes" : "-",
             acc >= 0 ? format_double(acc, 2) : "n/a"});
    }
  }
  t.print(std::cout);

  // De-anonymization on split trails.
  auto deanon_span = tel.span("de-anonymization");
  std::vector<core::MobilityMarkovChain> gallery, probes;
  std::vector<int> truth;
  for (auto uid : data.users()) {
    const auto& trail = data.trail(uid);
    if (trail.size() < 100) continue;
    const auto half = static_cast<std::ptrdiff_t>(trail.size() / 2);
    gallery.push_back(core::learn_mmc(
        geo::Trail(trail.begin(), trail.begin() + half), mmc_config));
    probes.push_back(core::learn_mmc(
        geo::Trail(trail.begin() + half, trail.end()), mmc_config));
    truth.push_back(static_cast<int>(truth.size()));
  }
  if (!probes.empty()) {
    const auto r = core::deanonymization_attack(gallery, probes, truth);
    tel.count("cli_reidentified_users", r.correct);
    std::cout << "de-anonymization: " << r.correct << "/" << probes.size()
              << " half-trails re-identified (" << 100 * r.accuracy << "%)\n";
  }
  deanon_span = telemetry::WallScope();

  // POI-fingerprint linking against a second release (--linked DIR2): the
  // trails under --data are the probes, DIR2 is the gallery. With
  // --max-reident F the command doubles as a release gate — exceeding the
  // budgeted re-identification rate exits with kVerifyMismatch, so a CI
  // pipeline can refuse to publish a release an adversary still links.
  int rc = tools::kOk;
  if (args.has("linked")) {
    auto link_span = tel.span("link-attack");
    geo::GeolocatedDataset gallery_release;
    {
      auto s = tel.span("read-linked");
      gallery_release = geo::read_geolife_directory(args.require("linked"));
    }
    core::FingerprintConfig fp_config;
    fp_config.cluster = config;
    fp_config.top_pois = static_cast<int>(args.num("top", 4));
    const auto r = core::run_link_attack(data, gallery_release, fp_config);
    tel.count("cli_linked_users", static_cast<std::int64_t>(r.correct));
    std::cout << "fingerprint linking: " << r.correct << "/" << r.probes
              << " probes re-identified (rate "
              << format_double(r.reidentification_rate, 3) << ")\n";
    if (args.has("max-reident")) {
      const double budget =
          parse_csv_numbers("max-reident", args.get("max-reident"), 1)[0];
      if (r.reidentification_rate > budget) {
        std::cerr << "verification failed: re-identification rate "
                  << format_double(r.reidentification_rate, 3)
                  << " exceeds budget " << format_double(budget, 3) << "\n";
        rc = tools::kVerifyMismatch;
      } else {
        std::cout << "verified: rate within budget "
                  << format_double(budget, 3) << "\n";
      }
    }
  }
  tel.count("cli_users", static_cast<std::int64_t>(data.num_users()));
  tel.count("cli_pois_extracted", total_pois);
  cmd_span = telemetry::WallScope();
  tel.flush();
  return rc;
}

int cmd_social(const Args& args) {
  const auto data = geo::read_geolife_directory(args.require("data"));
  core::CoLocationConfig config;
  config.radius_m = static_cast<double>(args.num("radius", 60));
  config.min_meetings = static_cast<int>(args.num("meetings", 2));
  const auto edges = core::discover_social_links(data, config);
  Table t("predicted social links");
  t.header({"a", "b", "meetings", "contact"});
  for (const auto& e : edges)
    t.row({std::to_string(e.a), std::to_string(e.b),
           std::to_string(e.meetings), format_seconds(e.contact_seconds)});
  t.print(std::cout);
  return 0;
}

int cmd_sanitize(const Args& args) {
  TelemetrySession tel(args);
  auto cmd_span = tel.span("sanitize");
  geo::GeolocatedDataset data;
  {
    auto s = tel.span("read");
    data = geo::read_geolife_directory(args.require("data"));
  }
  geo::GeolocatedDataset out;
  std::string what;
  auto mech_span = tel.span("mechanism");
  if (args.has("mask")) {
    out = core::gaussian_mask(data, static_cast<double>(args.num("mask", 100)),
                              static_cast<std::uint64_t>(args.num("seed", 1)));
    what = "gaussian mask";
  } else if (args.has("round")) {
    out = core::spatial_rounding(data,
                                 static_cast<double>(args.num("round", 250)));
    what = "spatial rounding";
  } else if (args.has("cloak")) {
    out = core::spatial_cloaking(data, static_cast<int>(args.num("cloak", 2)),
                                 static_cast<double>(args.num("cell", 200)),
                                 static_cast<int>(args.num("doublings", 6)))
              .data;
    what = "spatial cloaking";
  } else if (args.has("mixzones")) {
    const auto zones = core::pick_mix_zones(
        data, static_cast<int>(args.num("mixzones", 2)),
        static_cast<double>(args.num("zone-radius", 300)));
    const auto seed = args.has("seed")
                          ? static_cast<std::uint64_t>(args.num("seed", 1))
                          : core::kPseudonymSeed;
    auto r = core::apply_mix_zones(data, zones, seed);
    out = std::move(r.data);
    what = "mix zones (" + std::to_string(zones.size()) + " zones, " +
           std::to_string(r.pseudonym_changes) + " pseudonym changes)";
  } else {
    std::cerr << "pick one of --mask METERS | --round METERS | --cloak K | "
                 "--mixzones N\n";
    return 2;
  }
  mech_span = telemetry::WallScope();
  {
    auto s = tel.span("write");
    geo::write_geolife_directory(out, args.require("out"));
  }
  tel.count("cli_input_traces",
            static_cast<std::int64_t>(data.num_traces()));
  tel.count("cli_output_traces",
            static_cast<std::int64_t>(out.num_traces()));
  std::cout << "applied " << what << "; " << format_count(out.num_traces())
            << " traces written\n";
  cmd_span = telemetry::WallScope();
  tel.flush();
  return 0;
}

int cmd_heatmap(const Args& args) {
  const auto data = geo::read_geolife_directory(args.require("data"));
  write_file(args.require("out"),
             core::heatmap_csv(data, static_cast<double>(args.num("cell", 500))));
  return 0;
}

/// Strictly parse a comma-separated list of doubles ("LAT,LON", "A,B,C,D",
/// with an optional trailing integer for k). Unlike std::stod, trailing
/// garbage and non-finite values are parse errors (exit 3), not silently
/// accepted prefixes.
std::vector<double> parse_csv_numbers(const std::string& flag,
                                      const std::string& value,
                                      std::size_t expected) {
  std::vector<double> out;
  std::size_t start = 0;
  while (start <= value.size()) {
    std::size_t end = value.find(',', start);
    if (end == std::string::npos) end = value.size();
    const std::string field = value.substr(start, end - start);
    std::size_t used = 0;
    double v = 0;
    try {
      v = std::stod(field, &used);
    } catch (const std::exception&) {
      used = 0;
    }
    if (field.empty() || used != field.size() || !std::isfinite(v))
      throw mr::TaskError("--" + flag + ": cannot parse '" + field +
                          "' in '" + value + "'");
    out.push_back(v);
    if (end == value.size()) break;
    start = end + 1;
  }
  if (out.size() != expected)
    throw mr::TaskError("--" + flag + ": expected " + std::to_string(expected) +
                        " comma-separated numbers, got " +
                        std::to_string(out.size()));
  return out;
}

int cmd_query(const Args& args) {
  const auto data = geo::read_geolife_directory(args.require("data"));

  std::shared_ptr<const serving::IndexSnapshot> snap;
  if (args.has("pois")) {
    // Index DJ-Cluster POIs (sequential reference; the MapReduce rebuild
    // path is exercised by serving::rebuild_and_publish and its bench).
    const auto config = attack_config(args);
    const auto pre = core::preprocess(data, config);
    const auto clusters = core::dj_cluster(pre, config);
    snap = serving::snapshot_from_clusters(
        core::summarize_clusters(clusters, pre));
  } else {
    snap = serving::snapshot_from_dataset(data);
  }

  serving::QueryEngine engine;
  engine.publish(snap);
  std::cout << "indexed " << format_count(snap->tree.size()) << " entries ("
            << snap->tree.num_nodes() << " nodes, height "
            << snap->tree.height() << ", epoch " << engine.epoch() << ")\n";

  if (args.has("knn")) {
    const auto v = parse_csv_numbers("knn", args.get("knn"), 3);
    if (v[2] < 1 || v[2] != static_cast<double>(static_cast<long>(v[2])))
      throw mr::TaskError("--knn: k must be a positive integer");
    const auto r =
        engine.knn(v[0], v[1], static_cast<std::uint32_t>(v[2]));
    Table t("k-NN @ " + format_double(v[0], 5) + "," + format_double(v[1], 5));
    t.header({"rank", "id", "lat", "lon", "dist"});
    for (std::size_t i = 0; i < r.neighbors.size(); ++i) {
      const auto& n = r.neighbors[i];
      t.row({std::to_string(i), std::to_string(n.point.id),
             format_double(n.point.lat, 5), format_double(n.point.lon, 5),
             format_double(std::sqrt(n.dist2), 6)});
    }
    t.print(std::cout);
  }

  if (args.has("range")) {
    const auto v = parse_csv_numbers("range", args.get("range"), 4);
    const auto r = engine.range(index::Rect::of(v[0], v[1], v[2], v[3]));
    std::cout << "range [" << v[0] << "," << v[1] << " .. " << v[2] << ","
              << v[3] << "]: " << format_count(r.points.size())
              << " entries\n";
  }

  if (args.has("locate")) {
    const auto v = parse_csv_numbers("locate", args.get("locate"), 2);
    const auto r = engine.locate(v[0], v[1]);
    if (!r.found) {
      std::cout << "locate: index is empty\n";
    } else {
      std::cout << "locate: nearest id " << r.point.id << " at "
                << format_double(r.point.lat, 5) << ","
                << format_double(r.point.lon, 5) << " ("
                << format_double(r.distance_m, 1) << " m away"
                << (r.contained ? ", inside its radius" : "") << ")\n";
    }
  }

  if (args.has("expect")) {
    const auto want = static_cast<std::size_t>(args.num("expect", -1));
    if (snap->tree.size() != want) {
      std::cerr << "verification failed: indexed " << snap->tree.size()
                << " entries, expected " << want << "\n";
      return tools::kVerifyMismatch;
    }
    std::cout << "verified: " << want << " entries\n";
  }
  return tools::kOk;
}

/// Check a sanitized release against the privacy contract its sanitizer
/// declared. Violations print to stderr and exit with kVerifyMismatch, so
/// the command slots into release pipelines next to `query --expect`.
int cmd_verify(const Args& args) {
  const auto original = geo::read_geolife_directory(args.require("original"));
  const auto released = geo::read_geolife_directory(args.require("sanitized"));
  core::PrivacyReport report;
  if (args.has("cloak")) {
    core::CloakingContract contract;
    contract.k = static_cast<int>(args.num("cloak", 2));
    contract.base_cell_m = static_cast<double>(args.num("cell", 200));
    contract.max_doublings = static_cast<int>(args.num("doublings", 6));
    report = core::verify_cloaking(original, released, contract);
  } else if (args.has("mixzones")) {
    // The zones are re-derived from the original with the same automatic
    // placement `sanitize --mixzones` used; owners are re-derived from the
    // release itself (the adversarial, no-owner-map flavor).
    const auto zones = core::pick_mix_zones(
        original, static_cast<int>(args.num("mixzones", 2)),
        static_cast<double>(args.num("zone-radius", 300)));
    report = core::verify_mix_zones_release(original, released, zones);
  } else {
    std::cerr << "pick the contract: --cloak K [--cell M] [--doublings D] | "
                 "--mixzones N [--zone-radius M]\n";
    return 2;
  }
  std::cout << report.summary() << "\n";
  if (!report.ok()) {
    for (const auto& v : report.violations)
      std::cerr << v.contract << ": " << v.detail << "\n";
    if (report.violation_count > report.violations.size())
      std::cerr << "... and "
                << report.violation_count - report.violations.size()
                << " more violations\n";
    return tools::kVerifyMismatch;
  }
  return tools::kOk;
}

int cmd_odmatrix(const Args& args) {
  const auto data = geo::read_geolife_directory(args.require("data"));
  core::OdConfig config;
  config.cell_m = static_cast<double>(args.num("cell", 500));
  config.trip_gap_s = args.num("gap", 1800);
  config.k = static_cast<int>(args.num("k", 5));
  const auto trips = core::extract_trips(data, config);
  const auto matrix = core::build_od_matrix(trips, config);
  const auto utility = core::od_utility(trips, matrix);

  constexpr std::size_t kMaxRows = 20;
  Table t("k-anonymous OD matrix (k=" + std::to_string(config.k) + ", cell " +
          format_double(config.cell_m, 0) + " m)");
  t.header({"origin", "dest", "trips", "users"});
  for (std::size_t i = 0; i < matrix.entries.size() && i < kMaxRows; ++i) {
    const auto& e = matrix.entries[i];
    t.row({std::to_string(e.origin_cy) + "," + std::to_string(e.origin_cx),
           std::to_string(e.dest_cy) + "," + std::to_string(e.dest_cx),
           std::to_string(e.trips), std::to_string(e.users)});
  }
  t.print(std::cout);
  if (matrix.entries.size() > kMaxRows)
    std::cout << "(+" << matrix.entries.size() - kMaxRows << " more pairs)\n";
  std::cout << format_count(matrix.total_trips) << " trips, "
            << matrix.entries.size() << " released pairs, "
            << matrix.suppressed_pairs << " suppressed pairs ("
            << matrix.suppressed_trips << " trips)\n";
  std::cout << "utility: trip retention "
            << format_double(utility.trip_retention, 3) << ", pair retention "
            << format_double(utility.pair_retention, 3)
            << ", participant coverage "
            << format_double(utility.participant_coverage, 3)
            << ", avg participant retention "
            << format_double(utility.avg_participant_retention, 3) << "\n";

  if (args.has("verify")) {
    const auto report = core::verify_od_matrix(data, matrix, config);
    std::cout << report.summary() << "\n";
    if (!report.ok()) {
      for (const auto& v : report.violations)
        std::cerr << v.contract << ": " << v.detail << "\n";
      return tools::kVerifyMismatch;
    }
  }
  return tools::kOk;
}

void usage() {
  std::cerr <<
      "usage: gepeto <command> [--flag value ...]\n"
      "commands:\n"
      "  generate --out DIR [--users N] [--traces M] [--seed S] [--friends K]\n"
      "  stats    --data DIR\n"
      "  sample   --data DIR --out DIR [--window S] [--technique upper|middle]\n"
      "  pois     --data DIR --user ID [--geojson FILE] [--radius M] [--minpts N]\n"
      "  attack   --data DIR [--radius M] [--minpts N]\n"
      "           [--linked DIR2 [--top N] [--max-reident F]]\n"
      "  social   --data DIR [--radius M] [--meetings N]\n"
      "  sanitize --data DIR --out DIR (--mask M | --round M |\n"
      "           --cloak K [--cell M] [--doublings D] |\n"
      "           --mixzones N [--zone-radius M] [--seed S])\n"
      "  verify   --original DIR --sanitized DIR2\n"
      "           (--cloak K [--cell M] [--doublings D] |\n"
      "            --mixzones N [--zone-radius M])\n"
      "  odmatrix --data DIR [--cell M] [--gap S] [--k K] [--verify]\n"
      "  heatmap  --data DIR --out FILE.csv [--cell M]\n"
      "  query    --data DIR [--pois] [--knn LAT,LON,K] [--range A,B,C,D]\n"
      "           [--locate LAT,LON] [--expect N] [--radius M] [--minpts N]\n"
      "telemetry (sample | attack | sanitize):\n"
      "  --trace-out FILE    write a Chrome trace (open in Perfetto)\n"
      "  --metrics-out FILE  write metrics (JSON; Prometheus text if *.prom)\n";
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    usage();
    return tools::kUsage;
  }
  const Args args(argc, argv);
  const std::string cmd = argv[1];
  try {
    if (cmd == "generate") return cmd_generate(args);
    if (cmd == "stats") return cmd_stats(args);
    if (cmd == "sample") return cmd_sample(args);
    if (cmd == "pois") return cmd_pois(args);
    if (cmd == "attack") return cmd_attack(args);
    if (cmd == "social") return cmd_social(args);
    if (cmd == "sanitize") return cmd_sanitize(args);
    if (cmd == "verify") return cmd_verify(args);
    if (cmd == "odmatrix") return cmd_odmatrix(args);
    if (cmd == "heatmap") return cmd_heatmap(args);
    if (cmd == "query") return cmd_query(args);
  } catch (const mr::TaskError& e) {
    std::cerr << "parse error: " << e.what() << "\n";
    return tools::kParseError;
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return tools::kError;
  }
  usage();
  return tools::kUsage;
}
