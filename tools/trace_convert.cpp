// trace_convert — convert mobility-trace files between the text dataset-line
// format and the binary columnar format (storage/colfile.h).
//
//   trace_convert --to columnar --in lines.txt --out traces.gpcol [--block-records N] [--verify]
//   trace_convert --to text     --in traces.gpcol --out lines.txt [--verify]
//
// Text input is parsed strictly: a malformed line (wrong field count, NaN or
// infinite coordinate, out-of-range lat/lon) aborts the conversion with the
// offending line and field named, rather than being dropped silently.
// --verify re-reads the written output and checks it against the input
// record-for-record before exiting 0.
//
// Exit codes (common/exit_codes.h): 0 success, 1 I/O or internal error,
// 2 usage, 3 input could not be parsed/decoded, 4 --verify mismatch.
// --flip-byte N corrupts byte N of the output after writing it — a testing
// aid that makes the verify-mismatch path (exit 4) reachable on demand.
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "common/exit_codes.h"
#include "geo/geolife.h"
#include "mapreduce/job.h"
#include "storage/colfile.h"

namespace {

using namespace gepeto;

[[noreturn]] void usage() {
  std::cerr << "usage: trace_convert --to columnar|text --in FILE --out FILE"
               " [--block-records N] [--verify] [--flip-byte N]\n";
  std::exit(tools::kUsage);
}

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in.good()) {
    std::cerr << "trace_convert: cannot open " << path << "\n";
    std::exit(tools::kError);
  }
  std::ostringstream ss;
  ss << in.rdbuf();
  return std::move(ss).str();
}

void write_file(const std::string& path, const std::string& contents) {
  std::ofstream out(path, std::ios::binary);
  if (!out.good()) {
    std::cerr << "trace_convert: cannot create " << path << "\n";
    std::exit(tools::kError);
  }
  out << contents;
  if (!out.good()) {
    std::cerr << "trace_convert: short write to " << path << "\n";
    std::exit(tools::kError);
  }
}

/// Parse every dataset line of `text`, strictly. Line numbers are 1-based in
/// diagnostics.
std::vector<geo::MobilityTrace> parse_lines(const std::string& text,
                                            const std::string& path) {
  std::vector<geo::MobilityTrace> traces;
  std::size_t start = 0, line_no = 0;
  while (start < text.size()) {
    std::size_t end = text.find('\n', start);
    if (end == std::string::npos) end = text.size();
    ++line_no;
    std::string_view line(text.data() + start, end - start);
    if (!line.empty() && line.back() == '\r') line.remove_suffix(1);
    if (!line.empty()) {
      try {
        traces.push_back(geo::parse_dataset_line_or_throw(line));
      } catch (const mr::TaskError& e) {
        std::cerr << "trace_convert: " << path << ":" << line_no << ": "
                  << e.what() << "\n";
        std::exit(tools::kParseError);
      }
    }
    start = end + 1;
  }
  return traces;
}

/// Decode every trace of a columnar file, one block at a time.
std::vector<geo::MobilityTrace> decode_columnar(const std::string& bytes,
                                                const std::string& path) {
  std::vector<geo::MobilityTrace> traces;
  try {
    const storage::ColumnarFile file(bytes);
    traces.reserve(file.num_records());
    for (std::size_t b = 0; b < file.num_blocks(); ++b)
      for (const auto& t : file.read_block(b)) traces.push_back(t);
  } catch (const storage::ColumnarError& e) {
    std::cerr << "trace_convert: " << path << ": " << e.what() << "\n";
    std::exit(tools::kParseError);
  }
  return traces;
}

/// --flip-byte: XOR one byte of the just-written output file. Verification
/// must then report a mismatch (or a decode failure, for columnar output).
void flip_output_byte(const std::string& path, std::size_t offset) {
  std::string bytes = read_file(path);
  if (offset >= bytes.size()) {
    std::cerr << "trace_convert: --flip-byte " << offset << " past end of "
              << path << " (" << bytes.size() << " bytes)\n";
    std::exit(tools::kUsage);
  }
  bytes[offset] = static_cast<char>(bytes[offset] ^ 0x20);
  write_file(path, bytes);
}

bool same_trace(const geo::MobilityTrace& a, const geo::MobilityTrace& b) {
  return a.user_id == b.user_id && a.latitude == b.latitude &&
         a.longitude == b.longitude && a.timestamp == b.timestamp &&
         a.altitude_ft == b.altitude_ft;
}

}  // namespace

int main(int argc, char** argv) {
  std::string to, in_path, out_path;
  std::size_t block_records = 4096;
  bool verify = false;
  std::size_t flip_byte = 0;
  bool has_flip_byte = false;
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    auto value = [&]() -> std::string {
      if (i + 1 >= argc) usage();
      return argv[++i];
    };
    if (a == "--to") to = value();
    else if (a == "--in") in_path = value();
    else if (a == "--out") out_path = value();
    else if (a == "--block-records") block_records = std::stoull(value());
    else if (a == "--verify") verify = true;
    else if (a == "--flip-byte") {
      flip_byte = std::stoull(value());
      has_flip_byte = true;
    } else usage();
  }
  if ((to != "columnar" && to != "text") || in_path.empty() ||
      out_path.empty() || block_records == 0)
    usage();

  const std::string input = read_file(in_path);

  if (to == "columnar") {
    const auto traces = parse_lines(input, in_path);
    storage::ColumnarWriter writer({block_records});
    for (const auto& t : traces) writer.add(t);
    write_file(out_path, writer.finish());
    if (has_flip_byte) flip_output_byte(out_path, flip_byte);
    if (verify) {
      std::vector<geo::MobilityTrace> back;
      try {
        const std::string bytes = read_file(out_path);
        const storage::ColumnarFile file(bytes);
        back.reserve(file.num_records());
        for (std::size_t b = 0; b < file.num_blocks(); ++b)
          for (const auto& t : file.read_block(b)) back.push_back(t);
      } catch (const storage::ColumnarError& e) {
        // We just wrote this file: a decode failure here means the written
        // bytes do not hold the input data — a verification failure, not a
        // parse failure of some foreign input.
        std::cerr << "trace_convert: verify failed: " << out_path << ": "
                  << e.what() << "\n";
        return tools::kVerifyMismatch;
      }
      if (back.size() != traces.size()) {
        std::cerr << "trace_convert: verify failed: wrote " << traces.size()
                  << " records, read back " << back.size() << "\n";
        return tools::kVerifyMismatch;
      }
      for (std::size_t i = 0; i < traces.size(); ++i) {
        if (!same_trace(traces[i], back[i])) {
          std::cerr << "trace_convert: verify failed: record " << i
                    << " did not round-trip\n";
          return tools::kVerifyMismatch;
        }
      }
    }
    std::cerr << "trace_convert: " << traces.size() << " traces -> "
              << out_path << (verify ? " (verified)" : "") << "\n";
    return tools::kOk;
  }

  // columnar -> text
  const auto traces = decode_columnar(input, in_path);
  std::string text;
  text.reserve(traces.size() * 90);
  for (const auto& t : traces) {
    text += geo::dataset_line(t);
    text.push_back('\n');
  }
  write_file(out_path, text);
  if (has_flip_byte) flip_output_byte(out_path, flip_byte);
  if (verify) {
    // Text carries the canonical fixed-precision formatting, so the check is
    // line-for-line: each written line must be the canonical rendering of
    // the corresponding input trace.
    const std::string back = read_file(out_path);
    std::size_t start = 0, i = 0;
    bool ok = true;
    while (start < back.size() && i < traces.size()) {
      std::size_t end = back.find('\n', start);
      if (end == std::string::npos) end = back.size();
      if (std::string_view(back.data() + start, end - start) !=
          geo::dataset_line(traces[i])) {
        ok = false;
        break;
      }
      start = end + 1;
      ++i;
    }
    if (!ok || i != traces.size() || start < back.size()) {
      std::cerr << "trace_convert: verify failed at record " << i << "\n";
      return tools::kVerifyMismatch;
    }
  }
  std::cerr << "trace_convert: " << traces.size() << " traces -> " << out_path
            << (verify ? " (verified)" : "") << "\n";
  return tools::kOk;
}
