// Inference-attack scenario: what an adversary learns from a trail.
//
// For one synthetic user, runs the DJ-Cluster POI-extraction attack, labels
// home and work by time-of-day heuristics, learns a Mobility Markov Chain,
// and compares everything against the generator's ground truth — then
// demonstrates the de-anonymization attack across all users.
//
//   $ ./poi_attack
#include <iostream>

#include "geo/distance.h"
#include "geo/generator.h"
#include "gepeto/mmc.h"
#include "gepeto/poi.h"

int main() {
  using namespace gepeto;

  geo::GeneratorConfig gen;
  gen.num_users = 8;
  gen.duration_days = 30;
  gen.trajectories_per_user_min = 100;
  gen.trajectories_per_user_max = 140;
  gen.seed = 7;
  const auto world = geo::generate_dataset(gen);

  core::DjClusterConfig attack;
  attack.radius_m = 60;
  attack.min_pts = 10;

  // --- attack one user -------------------------------------------------------
  const auto& victim = world.profiles[0];
  const auto extracted = core::extract_pois(world.data.trail(0), attack);
  std::cout << "user 0: " << extracted.pois.size()
            << " POIs extracted from " << world.data.trail(0).size()
            << " traces (ground truth has " << victim.pois.size() << ")\n";
  for (std::size_t i = 0; i < extracted.pois.size(); ++i) {
    const auto& p = extracted.pois[i];
    std::cout << "  POI " << i << " at (" << p.latitude << ", " << p.longitude
              << "), " << p.num_traces << " traces, " << p.night_traces
              << " at night, " << p.office_traces << " in office hours";
    if (static_cast<int>(i) == extracted.home_index) std::cout << "  <- HOME?";
    if (static_cast<int>(i) == extracted.work_index) std::cout << "  <- WORK?";
    std::cout << "\n";
  }
  const auto score = core::score_poi_attack(extracted, victim);
  std::cout << "vs ground truth: precision " << score.precision << ", recall "
            << score.recall << "; home guess off by " << score.home_error_m
            << " m (" << (score.home_identified ? "IDENTIFIED" : "missed")
            << "), work off by " << score.work_error_m << " m ("
            << (score.work_identified ? "IDENTIFIED" : "missed") << ")\n\n";

  // --- mobility model + prediction -------------------------------------------
  core::MmcConfig mmc_config;
  mmc_config.clustering = attack;
  const auto mmc = core::learn_mmc(world.data.trail(0), mmc_config);
  std::cout << "Mobility Markov Chain: " << mmc.states.size()
            << " states; stationary distribution:";
  for (double p : mmc.stationary) std::cout << ' ' << p;
  const double acc = core::prediction_accuracy(world.data.trail(0), mmc_config);
  std::cout << "\nnext-place prediction accuracy (70/30 split): " << acc
            << "\n\n";

  // --- de-anonymization across the whole dataset ------------------------------
  std::vector<core::MobilityMarkovChain> gallery, probes;
  std::vector<int> truth;
  for (const auto& profile : world.profiles) {
    const auto& trail = world.data.trail(profile.user_id);
    const auto half = static_cast<std::ptrdiff_t>(trail.size() / 2);
    gallery.push_back(core::learn_mmc(
        geo::Trail(trail.begin(), trail.begin() + half), mmc_config));
    probes.push_back(core::learn_mmc(
        geo::Trail(trail.begin() + half, trail.end()), mmc_config));
    truth.push_back(static_cast<int>(truth.size()));
  }
  const auto deanon = core::deanonymization_attack(gallery, probes, truth);
  std::cout << "de-anonymization: re-identified " << deanon.correct << " of "
            << probes.size() << " anonymized half-trails ("
            << 100.0 * deanon.accuracy << "%)\n"
            << "-> pseudonymization alone is not protection: movement "
               "patterns are a quasi-identifier.\n";
  return 0;
}
