// Full MapReduce pipeline on the simulated cluster — the paper's workflow
// end-to-end, with the cluster mechanics made visible:
//
//   GeoLife-like data -> DFS (chunking, rack-aware replicas)
//     -> down-sampling (map-only job, Sec. V)
//     -> DJ-Cluster preprocessing (two pipelined map-only jobs, Fig. 5)
//     -> MapReduce R-Tree build (3 phases, Fig. 6)
//     -> DJ-Cluster neighborhood + merge (map + single reducer, Sec. VII)
//
//   $ ./geolife_pipeline
#include <iostream>

#include "common/table.h"
#include "geo/generator.h"
#include "geo/geolife.h"
#include "gepeto/gepeto.h"

int main() {
  using namespace gepeto;

  const auto world = geo::generate_dataset(geo::scaled_config(
      /*num_users=*/24, /*target_traces=*/250'000, /*seed=*/2013));

  mr::ClusterConfig cluster;
  cluster.num_worker_nodes = 7;
  cluster.nodes_per_rack = 4;  // two racks
  cluster.chunk_size = 2 * mr::kMiB;
  core::Gepeto gepeto(cluster);
  gepeto.load_dataset(world.data, "/geolife", 8);

  const auto dfs_stats = gepeto.dfs().stats();
  std::cout << "DFS after ingest: " << dfs_stats.files << " files, "
            << dfs_stats.chunks << " chunks, "
            << format_bytes(dfs_stats.logical_bytes) << " logical / "
            << format_bytes(dfs_stats.stored_bytes)
            << " stored (3 replicas, rack-aware); modeled ingest "
            << format_seconds(dfs_stats.sim_ingest_seconds) << "\n\n";

  Table table("pipeline jobs");
  table.header({"job", "in", "out", "maps", "reducers", "local maps",
                "shuffle", "sim time"});
  auto add = [&](const char* name, const mr::JobResult& jr) {
    table.row({name, format_count(jr.map_input_records),
               format_count(jr.output_records), std::to_string(jr.num_map_tasks),
               std::to_string(jr.num_reduce_tasks),
               std::to_string(jr.data_local_maps),
               format_bytes(jr.shuffle_bytes),
               format_seconds(jr.sim_seconds)});
  };

  const auto sampling = gepeto.sample(
      "/geolife/", "/sampled", {60, core::SamplingTechnique::kUpperLimit});
  add("sampling (60 s)", sampling);

  core::DjClusterConfig dj;
  dj.radius_m = 80;
  dj.min_pts = 8;
  const auto dj_result = gepeto.djcluster("/sampled/", "/dj", dj);
  add("dj: filter moving", dj_result.preprocess.filter_job);
  add("dj: remove duplicates", dj_result.preprocess.dedup_job);
  add("dj: neighborhood+merge", dj_result.cluster_job);

  core::RTreeMrConfig rt;
  rt.curve = index::CurveKind::kHilbert;
  rt.num_partitions = 7;
  const auto rt_result = gepeto.build_rtree("/dj/preprocessed/", "/rtree", rt);
  add("rtree: phase 1 (partition points)", rt_result.phase1);
  add("rtree: phase 2 (per-partition build)", rt_result.phase2);
  table.print(std::cout);

  std::cout << "R-Tree: " << format_count(rt_result.tree.size())
            << " entries indexed, height " << rt_result.tree.height()
            << ", merged from " << rt_result.partition_sizes.size()
            << " partition trees in "
            << format_seconds(rt_result.phase3_real_seconds) << "\n";
  std::cout << "DJ-Cluster: " << dj_result.clusters.clusters.size()
            << " clusters covering "
            << format_count(dj_result.clusters.clustered) << " traces, "
            << format_count(dj_result.clusters.noise) << " noise traces\n";

  // The biggest clusters are the city's busiest places.
  auto clusters = dj_result.clusters.clusters;
  std::sort(clusters.begin(), clusters.end(),
            [](const core::DjCluster& a, const core::DjCluster& b) {
              return a.members.size() > b.members.size();
            });
  std::cout << "largest clusters (candidate hot spots):\n";
  for (std::size_t i = 0; i < std::min<std::size_t>(5, clusters.size()); ++i) {
    const auto& c = clusters[i];
    std::cout << "  (" << c.centroid_lat << ", " << c.centroid_lon << ") x"
              << c.members.size() << "\n";
  }
  return 0;
}
