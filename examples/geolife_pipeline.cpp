// Full MapReduce pipeline on the simulated cluster — the paper's workflow
// end-to-end, expressed as ONE JobFlow DAG:
//
//   GeoLife-like data -> DFS (chunking, rack-aware replicas)
//     -> down-sampling (map-only job, Sec. V)
//     -> DJ-Cluster preprocessing (two pipelined map-only jobs, Fig. 5)
//     -> DJ-Cluster neighborhood + merge (map + single reducer, Sec. VII)
//     -> MapReduce R-Tree build (3 phases, Fig. 6) over the preprocessed
//        traces — on the virtual clock this branch overlaps the clustering
//        job, since both only depend on the preprocessing output.
//
// The flow also garbage-collects every intermediate dataset (the sampled
// traces, the filtered traces, the R-Tree caches) the moment its last
// consumer finishes, so the DFS ends up holding only the products.
//
// With a trace path the whole run is recorded on the simulated timeline and
// exported as Chrome trace-event JSON — open it in https://ui.perfetto.dev
// to see the DAG schedule, every map/reduce task on its (node, slot) track,
// and the GC instants. The CPU cost model is switched to modeled
// (per-record) time so the trace is byte-identical across runs.
//
//   $ ./geolife_pipeline [trace.json]
#include <algorithm>
#include <fstream>
#include <iostream>

#include "common/table.h"
#include "geo/generator.h"
#include "geo/geolife.h"
#include "gepeto/gepeto.h"
#include "storage/colfile.h"
#include "telemetry/metrics.h"
#include "telemetry/trace.h"

int main(int argc, char** argv) {
  using namespace gepeto;
  const char* trace_path = argc > 1 ? argv[1] : nullptr;

  const auto world = geo::generate_dataset(geo::scaled_config(
      /*num_users=*/24, /*target_traces=*/250'000, /*seed=*/2013));

  mr::ClusterConfig cluster;
  cluster.num_worker_nodes = 7;
  cluster.nodes_per_rack = 4;  // two racks
  cluster.chunk_size = 2 * mr::kMiB;
  // Deterministic CPU cost model: with the default (measured host CPU time)
  // the virtual timeline wiggles run to run; modeled per-record time makes
  // the exported trace byte-identical at a fixed seed.
  cluster.modeled_seconds_per_record = 2e-6;

  telemetry::TraceRecorder recorder;
  telemetry::MetricsRegistry metrics;
  core::Gepeto gepeto(cluster);
  if (trace_path != nullptr) {
    telemetry::Telemetry tel;
    tel.trace = &recorder;
    tel.metrics = &metrics;
    gepeto.dfs().set_telemetry(tel);
  }
  gepeto.load_dataset(world.data, "/geolife", 8);

  const auto dfs_stats = gepeto.dfs().stats();
  std::cout << "DFS after ingest: " << dfs_stats.files << " files, "
            << dfs_stats.chunks << " chunks, "
            << format_bytes(dfs_stats.logical_bytes) << " logical / "
            << format_bytes(dfs_stats.stored_bytes)
            << " stored (3 replicas, rack-aware); modeled ingest "
            << format_seconds(dfs_stats.sim_ingest_seconds) << "\n\n";

  // --- columnar sidebar: same data, binary columnar storage ----------------
  // Load the identical dataset in the columnar format, run the sampling job
  // over it, and check the output matches the text path byte for byte —
  // the storage format is a per-dataset choice, not a different pipeline.
  {
    mr::Dfs& dfs = gepeto.dfs();
    storage::dataset_to_dfs_columnar(dfs, "/geolife-col", world.data, 8);
    std::uint64_t text_bytes = 0, col_bytes = 0;
    for (const auto& p : dfs.list("/geolife/")) text_bytes += dfs.read(p).size();
    for (const auto& p : dfs.list("/geolife-col/")) col_bytes += dfs.read(p).size();

    // The exact (map+reduce) variants are byte-identical across storage
    // formats by construction; the map-only variants keep the paper's
    // once-per-chunk approximation, whose split boundaries differ per format.
    const core::SamplingConfig sconfig{60, core::SamplingTechnique::kUpperLimit};
    core::run_sampling_job_exact(dfs, cluster, "/geolife/", "/sampled-ref",
                                 sconfig);
    core::run_sampling_job_exact_columnar(dfs, cluster, "/geolife-col/",
                                          "/sampled-col", sconfig);
    std::string ref, col;
    for (const auto& p : dfs.list("/sampled-ref/")) ref += dfs.read(p);
    for (const auto& p : dfs.list("/sampled-col/")) col += dfs.read(p);
    std::cout << "columnar storage: " << format_bytes(col_bytes) << " vs "
              << format_bytes(text_bytes) << " text ("
              << static_cast<double>(text_bytes) /
                     static_cast<double>(col_bytes)
              << "x smaller); sampling output over columnar input "
            << (ref == col ? "matches the text path byte-for-byte"
                             : "MISMATCHES the text path!")
              << "\n\n";
    // Leave only the text dataset for the DAG below.
    dfs.remove_prefix("/geolife-col/");
    dfs.remove_prefix("/sampled-ref/");
    dfs.remove_prefix("/sampled-col/");
  }

  // --- declare the whole analysis as one DAG -------------------------------
  core::DjClusterConfig dj;
  dj.radius_m = 80;
  dj.min_pts = 8;
  core::RTreeMrConfig rt;
  rt.curve = index::CurveKind::kHilbert;
  rt.num_partitions = 7;

  flow::Flow f("geolife");
  f.add_map_only("sampling",
                 [](flow::FlowEngine& e) {
                   return core::run_sampling_job(
                       e.dfs(), e.cluster(), "/geolife/", "/sampled",
                       {60, core::SamplingTechnique::kUpperLimit});
                 })
      .reads("/geolife")
      .writes("/sampled");
  core::add_djcluster_nodes(f, "/sampled/", "/dj", dj);
  // Reads /dj/preprocessed: lineage makes this branch independent of the
  // dj-cluster job, so the two overlap on the simulated clock.
  const auto rt_state = core::add_rtree_nodes(f, "/dj/preprocessed/", "/rtree", rt);

  const auto fr = gepeto.run_flow(f);

  Table table("pipeline jobs");
  table.header({"job", "in", "out", "maps", "reducers", "local maps",
                "shuffle", "sim window"});
  for (const auto& nr : fr.nodes) {
    if (!nr.ran_jobs) continue;  // native driver steps run no engine job
    const auto& jr = nr.job;
    table.row({nr.name, format_count(jr.map_input_records),
               format_count(jr.output_records), std::to_string(jr.num_map_tasks),
               std::to_string(jr.num_reduce_tasks),
               std::to_string(jr.data_local_maps),
               format_bytes(jr.shuffle_bytes),
               format_seconds(nr.sim_start_seconds) + " - " +
                   format_seconds(nr.sim_finish_seconds)});
  }
  table.print(std::cout);

  std::cout << "flow '" << fr.flow_name << "': " << fr.nodes_run
            << " nodes, DAG makespan " << format_seconds(fr.sim_seconds)
            << " vs sequential " << format_seconds(fr.sim_sequential_seconds)
            << " (overlap speedup "
            << fr.sim_sequential_seconds / fr.sim_seconds << "x); GC dropped "
            << fr.gc_datasets << " intermediate datasets, "
            << format_bytes(fr.gc_bytes) << "\n";

  const auto dj_result = core::parse_djcluster_output(gepeto.dfs(), "/dj");
  std::cout << "R-Tree: " << format_count(rt_state->tree.size())
            << " entries indexed, height " << rt_state->tree.height()
            << ", merged from " << rt_state->partition_sizes.size()
            << " partition trees in "
            << format_seconds(rt_state->merge_real_seconds) << "\n";
  std::cout << "DJ-Cluster: " << dj_result.clusters.size()
            << " clusters covering " << format_count(dj_result.clustered)
            << " traces, " << format_count(dj_result.noise)
            << " noise traces\n";

  // The biggest clusters are the city's busiest places.
  auto clusters = dj_result.clusters;
  std::sort(clusters.begin(), clusters.end(),
            [](const core::DjCluster& a, const core::DjCluster& b) {
              return a.members.size() > b.members.size();
            });
  std::cout << "largest clusters (candidate hot spots):\n";
  for (std::size_t i = 0; i < std::min<std::size_t>(5, clusters.size()); ++i) {
    const auto& c = clusters[i];
    std::cout << "  (" << c.centroid_lat << ", " << c.centroid_lon << ") x"
              << c.members.size() << "\n";
  }

  if (trace_path != nullptr) {
    std::ofstream out(trace_path, std::ios::binary);
    out << recorder.chrome_trace_json(telemetry::Timeline::kSim);
    std::cout << "\nwrote " << trace_path
              << " — open in https://ui.perfetto.dev (traced makespan "
              << format_seconds(recorder.sim_end()) << ")\n";
  }
  return 0;
}
