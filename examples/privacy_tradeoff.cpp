// Sanitization scenario: a data curator tuning the privacy/utility knob.
//
// Applies each geo-sanitization mechanism at increasing strength and prints
// the trade-off frontier: how much the POI-extraction attack degrades
// (privacy gained) against how much spatial error is introduced (utility
// lost) — GEPETO's core use case.
//
//   $ ./privacy_tradeoff
#include <iostream>

#include "common/table.h"
#include "geo/generator.h"
#include "gepeto/metrics.h"
#include "gepeto/poi.h"
#include "gepeto/sanitize.h"

int main() {
  using namespace gepeto;

  geo::GeneratorConfig gen;
  gen.num_users = 8;
  gen.duration_days = 30;
  gen.trajectories_per_user_min = 90;
  gen.trajectories_per_user_max = 120;
  gen.seed = 99;
  const auto world = geo::generate_dataset(gen);

  core::DjClusterConfig attack;
  attack.radius_m = 60;
  attack.min_pts = 10;

  Table table("privacy/utility frontier");
  table.header({"mechanism", "POI recall", "home found", "mean error",
                "retention"});

  const auto baseline = core::run_poi_attack(world.data, world.profiles, attack);
  table.row({"none", format_double(baseline.avg_recall, 2),
             format_double(100 * baseline.home_identification_rate, 0) + "%",
             "0 m", "100%"});

  auto evaluate = [&](const std::string& name,
                      const geo::GeolocatedDataset& sanitized) {
    const auto atk = core::run_poi_attack(sanitized, world.profiles, attack);
    const auto util = core::location_error(world.data, sanitized);
    table.row({name, format_double(atk.avg_recall, 2),
               format_double(100 * atk.home_identification_rate, 0) + "%",
               format_double(util.mean_error_m, 0) + " m",
               format_double(100 * util.retention, 0) + "%"});
  };

  for (double sigma : {50.0, 150.0, 400.0})
    evaluate("gaussian mask " + format_double(sigma, 0) + " m",
             core::gaussian_mask(world.data, sigma, 5));
  for (double cell : {200.0, 800.0})
    evaluate("rounding " + format_double(cell, 0) + " m",
             core::spatial_rounding(world.data, cell));
  evaluate("cloaking k=4",
           core::spatial_cloaking(world.data, 4, 200.0, 5).data);
  {
    const auto zones = core::pick_mix_zones(world.data, 4, 300.0);
    evaluate("mix zones (4 x 300 m)",
             core::apply_mix_zones(world.data, zones).data);
  }
  table.print(std::cout);

  std::cout << "reading the frontier: pick the row whose attack degradation "
               "you need at the error your application tolerates.\n";
  return 0;
}
