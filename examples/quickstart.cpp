// Quickstart: the smallest useful GEPETO session.
//
// Generates a small synthetic GeoLife-like dataset, loads it into the
// simulated cluster's DFS, runs the MapReduced down-sampling and k-means
// operations, and prints what happened.
//
//   $ ./quickstart
#include <iostream>

#include "common/table.h"
#include "geo/generator.h"
#include "geo/stats.h"
#include "gepeto/gepeto.h"

int main() {
  using namespace gepeto;

  // 1. A dataset: 10 users moving around a synthetic Beijing for 3 weeks.
  geo::GeneratorConfig gen;
  gen.num_users = 10;
  gen.duration_days = 21;
  gen.seed = 42;
  const auto world = geo::generate_dataset(gen);
  std::cout << "generated:\n"
            << geo::describe(geo::compute_stats(world.data)) << "\n";

  // 2. A simulated Hadoop cluster: 7 worker nodes, 4 MiB chunks.
  mr::ClusterConfig cluster;
  cluster.num_worker_nodes = 7;
  cluster.chunk_size = 4 * mr::kMiB;
  core::Gepeto gepeto(cluster);
  gepeto.load_dataset(world.data, "/geolife", /*num_files=*/4);

  // 3. Down-sample to one trace per minute (Section V of the paper).
  const auto job = gepeto.sample("/geolife/", "/sampled",
                                 {60, core::SamplingTechnique::kUpperLimit});
  std::cout << "sampling: " << job.map_input_records << " -> "
            << job.output_records << " traces using " << job.num_map_tasks
            << " map tasks (" << job.data_local_maps << " data-local)\n"
            << "          simulated cluster time "
            << format_seconds(job.sim_seconds) << ", host time "
            << format_seconds(job.real_seconds) << "\n\n";

  // 4. Cluster the sampled traces with MapReduced k-means (Section VI).
  core::KMeansConfig km;
  km.k = 8;
  km.distance = geo::DistanceKind::kSquaredEuclidean;
  km.max_iterations = 30;
  km.seed = 1;
  const auto result = gepeto.kmeans("/sampled/", "/kmeans", km);
  std::cout << "k-means: " << result.iterations << " iterations, "
            << (result.converged ? "converged" : "hit maxIter")
            << ", SSE = " << result.sse << "\ncentroids:\n";
  for (std::size_t c = 0; c < result.centroids.size(); ++c) {
    std::cout << "  #" << c << "  (" << result.centroids[c].latitude << ", "
              << result.centroids[c].longitude << ")  "
              << result.cluster_sizes[c] << " traces\n";
  }
  return 0;
}
