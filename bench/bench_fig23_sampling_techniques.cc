// Reproduces Figures 2 and 3: the two representative-selection techniques
// of the down-sampling operation — closest to the *upper limit* of the time
// window (Fig. 2) versus closest to the *middle* (Fig. 3).
//
// Both techniques keep exactly one representative per non-empty (user,
// window) group, so they output the same number of traces; they differ in
// *which* trace represents the window. This bench quantifies that: identical
// counts, the fraction of windows whose representative differs, and the mean
// offset of the representative from the window reference point.
#include <benchmark/benchmark.h>

#include <cmath>
#include <iostream>
#include <map>

#include "bench_common.h"
#include "geo/geolife.h"
#include "gepeto/sampling.h"
#include "mapreduce/dfs.h"

namespace {

using namespace gepeto;
using namespace gepeto::bench;

void reproduce_fig23() {
  print_banner("Figures 2-3 — upper-limit vs middle representative selection",
               "both techniques summarize each window by one trace; they "
               "pick different representatives");
  const auto& world = world90();
  auto cluster = parapluie(7);

  Table table("Figs. 2-3 (window = 60 s / 300 s / 600 s)");
  table.header({"window", "windows (upper)", "windows (middle)",
                "differing representatives", "mean |ts-ref| upper",
                "mean |ts-ref| middle", "upper job sim", "middle job sim"});

  for (int window : {60, 300, 600}) {
    mr::Dfs dfs(cluster);
    geo::dataset_to_dfs(dfs, "/in", world.data, 4);
    const auto upper_job = core::run_sampling_job(
        dfs, cluster, "/in/", "/upper",
        {window, core::SamplingTechnique::kUpperLimit});
    const auto middle_job = core::run_sampling_job(
        dfs, cluster, "/in/", "/middle",
        {window, core::SamplingTechnique::kMiddle});

    const auto upper = geo::dataset_from_dfs(dfs, "/upper/");
    const auto middle = geo::dataset_from_dfs(dfs, "/middle/");

    // Compare representatives per (user, window).
    std::map<std::pair<std::int32_t, std::int64_t>, std::int64_t> upper_rep;
    for (const auto& [uid, trail] : upper)
      for (const auto& t : trail)
        upper_rep[{uid, t.timestamp / window}] = t.timestamp;
    std::uint64_t differing = 0, compared = 0;
    double upper_off = 0, middle_off = 0;
    for (const auto& [uid, trail] : middle) {
      for (const auto& t : trail) {
        const auto it = upper_rep.find({uid, t.timestamp / window});
        if (it == upper_rep.end()) continue;
        ++compared;
        differing += (it->second != t.timestamp);
        const std::int64_t w = t.timestamp / window;
        upper_off += std::llabs(it->second - (w + 1) * window);
        middle_off += std::llabs(t.timestamp - (w * window + window / 2));
      }
    }
    table.row({std::to_string(window) + " s",
               format_count(upper.num_traces()),
               format_count(middle.num_traces()),
               format_double(100.0 * static_cast<double>(differing) /
                                 static_cast<double>(std::max<std::uint64_t>(
                                     compared, 1)),
                             1) +
                   "%",
               format_double(upper_off / static_cast<double>(compared), 1) +
                   " s",
               format_double(middle_off / static_cast<double>(compared), 1) +
                   " s",
               format_seconds(upper_job.sim_seconds),
               format_seconds(middle_job.sim_seconds)});
  }
  table.print(std::cout);
  std::cout << "shape: equal window counts; the middle technique sits closer "
               "to its reference (it can be at most window/2 away).\n";
}

void BM_WindowReference(benchmark::State& state) {
  const core::SamplingConfig config{
      60, static_cast<core::SamplingTechnique>(state.range(0))};
  std::int64_t acc = 0, w = 0;
  for (auto _ : state) acc += core::window_reference(config, ++w);
  benchmark::DoNotOptimize(acc);
}
BENCHMARK(BM_WindowReference)->Arg(0)->Arg(1);

}  // namespace

int main(int argc, char** argv) {
  ::benchmark::Initialize(&argc, argv);
  reproduce_fig23();
  ::benchmark::RunSpecifiedBenchmarks();
  return 0;
}
