// Reproduces Table III: "Results of the MapReduced k-means experimentations"
// — iteration time for {66 MB / 1.05 M traces, 128 MB / 2.03 M traces} x
// {Haversine, squared Euclidean} x {chunk 32 MB, 64 MB} on the 7-node
// Parapluie deployment, plus Table II (the runtime arguments).
//
// Expected shape (who wins): squared Euclidean beats Haversine at equal
// chunk size; 32 MB chunks beat 64 MB chunks (more mappers in parallel);
// the 128 MB dataset costs more than the 66 MB one.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <bit>
#include <cstdlib>
#include <fstream>
#include <iostream>

#include "bench_common.h"
#include "common/check.h"
#include "geo/distance.h"
#include "geo/geolife.h"
#include "geo/kernels.h"
#include "gepeto/kmeans.h"
#include "mapreduce/dfs.h"
#include "storage/colfile.h"
#include "telemetry/trace.h"

namespace {

using namespace gepeto;
using namespace gepeto::bench;

struct PaperRow {
  const char* data;
  std::uint64_t paper_traces;
  geo::DistanceKind distance;
  int chunk_mb;
  int paper_iter_seconds;
  int paper_iterations;
};

// The eight rows of Table III.
constexpr PaperRow kPaperRows[] = {
    {"66 MB", 1'050'000, geo::DistanceKind::kHaversine, 64, 57, 73},
    {"66 MB", 1'050'000, geo::DistanceKind::kSquaredEuclidean, 64, 48, 72},
    {"66 MB", 1'050'000, geo::DistanceKind::kSquaredEuclidean, 32, 41, 70},
    {"66 MB", 1'050'000, geo::DistanceKind::kHaversine, 32, 45, 73},
    {"128 MB", 2'033'686, geo::DistanceKind::kSquaredEuclidean, 64, 51, 85},
    {"128 MB", 2'033'686, geo::DistanceKind::kSquaredEuclidean, 32, 45, 83},
    {"128 MB", 2'033'686, geo::DistanceKind::kHaversine, 32, 48, 89},
    {"128 MB", 2'033'686, geo::DistanceKind::kHaversine, 64, 60, 93},
};

void print_table2() {
  Table t("Table II — k-means runtime arguments");
  t.header({"argument", "role"});
  t.row({"input path", "directory containing the input files"});
  t.row({"output path", "directory the output is written to"});
  t.row({"input file", "file the initial centroids are generated from"});
  t.row({"clusters path", "directory storing the current centroids"});
  t.row({"k", "number of clusters outputted by the algorithm"});
  t.row({"distanceMeasure", "name of the metric used for measuring distance"});
  t.row({"convergencedelta", "convergence test applied after each iteration"});
  t.row({"maxIter", "maximum number of iterations"});
  t.print(std::cout);
}

/// One k-means run of the speedup comparison: a fixed-iteration Table III
/// workload under an explicit kernel backend and input format.
core::KMeansResult speedup_leg(geo::KernelBackend backend, bool columnar,
                               geo::DistanceKind kind, int iterations) {
  geo::set_kernel_backend_for_testing(backend);
  const auto& world = world90();
  const std::size_t chunk = paper_scale() ? 32 * mr::kMiB : 512 * mr::kKiB;
  auto cluster = parapluie(7, chunk);
  mr::Dfs dfs(cluster);
  if (columnar)
    storage::dataset_to_dfs_columnar(dfs, "/in", world.data, 2);
  else
    geo::dataset_to_dfs(dfs, "/in", world.data, 2);

  core::KMeansConfig config;
  config.k = 10;
  config.distance = kind;
  config.seed = 11;
  config.max_iterations = iterations;
  config.convergence_delta_m = 0.0;
  config.columnar_input = columnar;
  auto result = core::kmeans_mapreduce(dfs, cluster, "/in/", "/clusters",
                                       config);
  geo::set_kernel_backend_for_testing(geo::KernelBackend::kSimd);
  return result;
}

/// The PR 9 claim: SIMD batch kernels + the parse-free columnar map path vs
/// the pre-kernel configuration (per-pair legacy distances over text input),
/// end to end on the Table III workload. Also hard-checks the bit-identity
/// contract at job level: the scalar and SIMD backends must produce
/// byte-identical k-means results over the same columnar input.
void kernel_speedup_rows(telemetry::BenchReporter& report) {
  const int iterations = paper_scale() ? 3 : 2;

  Table table("Kernel speedup (66 MB workload, end to end)");
  table.header({"distance", "legacy+text", "simd+columnar", "speedup",
                "parse s (text)", "parse s (col)", "compute s (col)"});
  for (const auto kind :
       {geo::DistanceKind::kHaversine, geo::DistanceKind::kSquaredEuclidean}) {
    const auto before = speedup_leg(geo::KernelBackend::kLegacy,
                                    /*columnar=*/false, kind, iterations);
    const auto after = speedup_leg(geo::KernelBackend::kSimd,
                                   /*columnar=*/true, kind, iterations);
    const double speedup = before.totals.real_seconds /
                           std::max(1e-9, after.totals.real_seconds);
    const std::string distance = std::string(geo::distance_name(kind));
    bill_job(report.add_row("kernel-speedup " + distance), after.totals)
        .set_param("distance", distance)
        .set_param("legacy_text_seconds", before.totals.real_seconds)
        .set_param("simd_columnar_seconds", after.totals.real_seconds)
        .set_param("legacy_map_parse_seconds",
                   before.totals.map_parse_seconds)
        .set_param("legacy_map_compute_seconds",
                   before.totals.map_compute_seconds)
        .set_param("speedup", speedup);
    table.row({distance, format_seconds(before.totals.real_seconds),
               format_seconds(after.totals.real_seconds),
               std::to_string(speedup).substr(0, 4) + "x",
               format_seconds(before.totals.map_parse_seconds),
               format_seconds(after.totals.map_parse_seconds),
               format_seconds(after.totals.map_compute_seconds)});
  }
  table.print(std::cout);

  // Bit-identity at job level: scalar vs SIMD over identical columnar input.
  const auto scalar = speedup_leg(geo::KernelBackend::kScalar,
                                  /*columnar=*/true,
                                  geo::DistanceKind::kHaversine, iterations);
  const auto simd = speedup_leg(geo::KernelBackend::kSimd, /*columnar=*/true,
                                geo::DistanceKind::kHaversine, iterations);
  GEPETO_CHECK(scalar.centroids.size() == simd.centroids.size());
  for (std::size_t i = 0; i < scalar.centroids.size(); ++i) {
    GEPETO_CHECK_MSG(
        std::bit_cast<std::uint64_t>(scalar.centroids[i].latitude) ==
                std::bit_cast<std::uint64_t>(simd.centroids[i].latitude) &&
            std::bit_cast<std::uint64_t>(scalar.centroids[i].longitude) ==
                std::bit_cast<std::uint64_t>(simd.centroids[i].longitude),
        "scalar/SIMD centroid divergence at index " << i);
  }
  GEPETO_CHECK(scalar.cluster_sizes == simd.cluster_sizes);
  GEPETO_CHECK(std::bit_cast<std::uint64_t>(scalar.sse) ==
               std::bit_cast<std::uint64_t>(simd.sse));
  std::cout << "bit-identity: scalar and SIMD k-means outputs byte-identical "
               "over columnar input (centroids, sizes, SSE).\n"
            << "target: simd+columnar >= 1.5x over legacy+text end to end.\n";
}

void reproduce_table3() {
  print_banner("Table III — MapReduced k-means iteration time",
               "66 MB: 41-57 s/iter; 128 MB: 45-60 s/iter; sq. Euclidean < "
               "Haversine; 32 MB chunks < 64 MB chunks");
  print_table2();

  const int measured_iterations = paper_scale() ? 3 : 2;
  Table table("Table III (paper vs measured, 7 worker nodes)");
  table.header({"data", "traces", "distance", "chunk", "paper iter time",
                "sim iter time", "real iter time", "map tasks",
                "paper #iter"});

  telemetry::BenchReporter report("table3_kmeans", scale_name());
  report.set_param("nodes", std::int64_t{7});
  report.set_param("measured_iterations", std::int64_t{measured_iterations});

  // GEPETO_TRACE_OUT=<file>: record the first configuration's run and write
  // its simulated-timeline Chrome trace there (CI smoke uses this).
  const char* trace_out = std::getenv("GEPETO_TRACE_OUT");
  telemetry::TraceRecorder recorder;
  bool traced = false;

  for (const auto& row : kPaperRows) {
    const auto& world =
        row.paper_traces > 1'500'000 ? world178() : world90();
    // Scale the chunk size with the dataset so the map-task count tracks the
    // paper's chunk-count ratio even at smoke scale.
    const std::size_t chunk =
        paper_scale() ? static_cast<std::size_t>(row.chunk_mb) * mr::kMiB
                      : static_cast<std::size_t>(row.chunk_mb) * 16 * mr::kKiB;
    auto cluster = parapluie(7, chunk);
    mr::Dfs dfs(cluster);
    geo::dataset_to_dfs(dfs, "/in", world.data, 2);
    if (trace_out != nullptr && !traced) {
      telemetry::Telemetry tel;
      tel.trace = &recorder;
      dfs.set_telemetry(tel);
    }

    core::KMeansConfig config;
    config.k = 10;
    config.distance = row.distance;
    config.seed = 11;
    config.max_iterations = measured_iterations;
    config.convergence_delta_m = 0.0;  // run exactly measured_iterations
    const auto result =
        core::kmeans_mapreduce(dfs, cluster, "/in/", "/clusters", config);

    double sim = 0.0, real = 0.0;
    for (const auto& it : result.per_iteration) {
      sim += it.sim_seconds;
      real += it.real_seconds;
    }
    sim /= static_cast<double>(result.per_iteration.size());
    real /= static_cast<double>(result.per_iteration.size());

    if (trace_out != nullptr && !traced) {
      std::ofstream out(trace_out);
      out << recorder.chrome_trace_json(telemetry::Timeline::kSim);
      std::cout << "chrome trace: " << trace_out << "\n";
      traced = true;
    }

    const std::string distance = std::string(geo::distance_name(row.distance));
    const std::string label = std::string(row.data) + " " + distance + " " +
                              std::to_string(row.chunk_mb) + "MB";
    bill_job(report.add_row(label), result.totals)
        .set_param("data", row.data)
        .set_param("distance", distance)
        .set_param("chunk_mb", std::int64_t{row.chunk_mb})
        .set_param("sim_iter_seconds", sim)
        .set_param("real_iter_seconds", real)
        .set_param("paper_iter_seconds",
                   std::int64_t{row.paper_iter_seconds});

    table.row({row.data, format_count(geo::count_dfs_records(dfs, "/in/")),
               std::string(geo::distance_name(row.distance)),
               std::to_string(row.chunk_mb) + " MB",
               std::to_string(row.paper_iter_seconds) + " s",
               format_seconds(sim), format_seconds(real),
               std::to_string(result.totals.num_map_tasks /
                              result.iterations),
               std::to_string(row.paper_iterations)});
  }
  kernel_speedup_rows(report);

  table.print(std::cout);
  write_report(report);
  std::cout << "shape checks: sq. Euclidean faster than Haversine at equal "
               "config; 32 MB chunks faster than 64 MB; 128 MB slower than "
               "66 MB.\n";
}

// Micro-benchmark: the per-point cost of the two Table III metrics.
void BM_DistanceOp(benchmark::State& state) {
  const auto kind = static_cast<geo::DistanceKind>(state.range(0));
  double lat = 39.9, lon = 116.4;
  double acc = 0;
  for (auto _ : state) {
    acc += geo::distance(kind, lat, lon, 39.95, 116.5);
    lat += 1e-9;
  }
  benchmark::DoNotOptimize(acc);
}
BENCHMARK(BM_DistanceOp)
    ->Arg(static_cast<int>(geo::DistanceKind::kSquaredEuclidean))
    ->Arg(static_cast<int>(geo::DistanceKind::kHaversine))
    ->Arg(static_cast<int>(geo::DistanceKind::kManhattan));

void BM_NearestCentroid(benchmark::State& state) {
  std::vector<core::Centroid> centroids;
  for (int i = 0; i < state.range(0); ++i)
    centroids.push_back({39.8 + 0.01 * i, 116.3 + 0.02 * i});
  double lat = 39.9;
  std::size_t acc = 0;
  for (auto _ : state) {
    acc += core::nearest_centroid(centroids,
                                  geo::DistanceKind::kSquaredEuclidean, lat,
                                  116.45);
    lat += 1e-9;
  }
  benchmark::DoNotOptimize(acc);
}
BENCHMARK(BM_NearestCentroid)->Arg(5)->Arg(10)->Arg(20);

}  // namespace

int main(int argc, char** argv) {
  ::benchmark::Initialize(&argc, argv);
  reproduce_table3();
  ::benchmark::RunSpecifiedBenchmarks();
  return 0;
}
