// Extension experiments (paper Sec. VIII future work, implemented here):
// the inference attacks GEPETO's clustering feeds —
//   * POI extraction: precision/recall against the generator's ground
//     truth, plus home/work identification (Golle & Partridge style);
//   * Mobility Markov Chains: next-place prediction accuracy and the
//     de-anonymization (linking) attack ("Show me how you move and I will
//     tell you who you are", cited as [11]).
#include <benchmark/benchmark.h>

#include <iostream>

#include "bench_common.h"
#include "gepeto/mmc.h"
#include "gepeto/poi.h"
#include "gepeto/social.h"

namespace {

using namespace gepeto;
using namespace gepeto::bench;

geo::SyntheticDataset attack_world() {
  geo::GeneratorConfig cfg;
  cfg.num_users = paper_scale() ? 30 : 6;
  cfg.duration_days = 30;
  cfg.trajectories_per_user_min = 100;
  cfg.trajectories_per_user_max = 140;
  cfg.friends_per_user = 1;  // ground truth for the social-link attack
  cfg.seed = 4242;
  return geo::generate_dataset(cfg);
}

void reproduce_attacks() {
  print_banner("Extensions — inference attacks on extracted POIs (Sec. VIII)",
               "POIs reveal home/work; MMCs predict future locations and "
               "de-anonymize users");
  const auto world = attack_world();
  describe_dataset("attack corpus", world.data);

  core::DjClusterConfig attack;
  attack.radius_m = 60;
  attack.min_pts = 10;

  // --- POI extraction ----------------------------------------------------
  const auto report = core::run_poi_attack(world.data, world.profiles, attack);
  Table poi("POI-extraction attack (vs ground truth, 150 m match radius)");
  poi.header({"metric", "value"});
  poi.row({"users attacked", std::to_string(world.profiles.size())});
  poi.row({"avg precision", format_double(report.avg_precision, 3)});
  poi.row({"avg recall", format_double(report.avg_recall, 3)});
  poi.row({"avg F1", format_double(report.avg_f1, 3)});
  poi.row({"home identified", format_double(
                                  100 * report.home_identification_rate, 0) +
                                  "%"});
  poi.row({"work identified", format_double(
                                  100 * report.work_identification_rate, 0) +
                                  "%"});
  poi.print(std::cout);

  // --- MMC prediction ------------------------------------------------------
  core::MmcConfig mmc_config;
  mmc_config.clustering = attack;
  double pred_total = 0;
  int pred_users = 0;
  for (const auto& profile : world.profiles) {
    const double acc = core::prediction_accuracy(
        world.data.trail(profile.user_id), mmc_config);
    if (acc >= 0) {
      pred_total += acc;
      ++pred_users;
    }
  }

  // --- De-anonymization -----------------------------------------------------
  std::vector<core::MobilityMarkovChain> gallery, probes;
  std::vector<int> truth;
  for (const auto& profile : world.profiles) {
    const auto& trail = world.data.trail(profile.user_id);
    const std::size_t half = trail.size() / 2;
    geo::Trail first(trail.begin(),
                     trail.begin() + static_cast<std::ptrdiff_t>(half));
    geo::Trail second(trail.begin() + static_cast<std::ptrdiff_t>(half),
                      trail.end());
    gallery.push_back(core::learn_mmc(first, mmc_config));
    probes.push_back(core::learn_mmc(second, mmc_config));
    truth.push_back(static_cast<int>(truth.size()));
  }
  const auto deanon = core::deanonymization_attack(gallery, probes, truth);

  // --- social-link discovery ------------------------------------------------
  core::CoLocationConfig social;
  social.radius_m = 60;
  social.min_meetings = 2;
  social.min_contact_s = 1200;
  const auto edges = core::discover_social_links(world.data, social);
  const auto social_score = core::score_social_attack(edges, world.friendships);

  Table mmc("Mobility-Markov-Chain & co-location attacks");
  mmc.header({"attack", "result"});
  mmc.row({"next-place prediction (avg accuracy, 70/30 split)",
           pred_users > 0 ? format_double(pred_total / pred_users, 3) : "n/a"});
  mmc.row({"de-anonymization (split-trail linking)",
           format_double(100 * deanon.accuracy, 0) + "% of " +
               std::to_string(probes.size()) + " users re-identified"});
  mmc.row({"social-link discovery (co-location)",
           "precision " + format_double(social_score.precision, 2) +
               ", recall " + format_double(social_score.recall, 2) + " over " +
               std::to_string(world.friendships.size()) + " friendships"});
  mmc.print(std::cout);
  std::cout << "shape: POIs are recovered with high precision; prediction "
               "beats chance by a wide margin; most users are re-identified "
               "from half a trail — anonymization alone is not protection "
               "(the paper's Sec. II argument).\n";
}

void BM_ExtractPois(benchmark::State& state) {
  const auto world = attack_world();
  const auto uid = world.data.users().front();
  core::DjClusterConfig attack;
  attack.radius_m = 60;
  attack.min_pts = 10;
  for (auto _ : state) {
    auto pois = core::extract_pois(world.data.trail(uid), attack);
    benchmark::DoNotOptimize(pois);
  }
}
BENCHMARK(BM_ExtractPois)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  ::benchmark::Initialize(&argc, argv);
  reproduce_attacks();
  ::benchmark::RunSpecifiedBenchmarks();
  return 0;
}
