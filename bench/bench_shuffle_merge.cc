// Ablation of the shuffle rework: old path (per-pair redistribution, concat
// + stable_sort per reducer, scratch-copy value groups) vs new path
// (emit-time partitioning into spill buffers, per-spill sort + split layout,
// loser-tree k-way merge, zero-copy span groups) on the Table III k-means
// workload shape: ~10 cluster-id keys, 24-byte partial-sum values, one run
// per (map task, reducer). Both paths must produce identical reductions;
// the report records the wall-clock speedup plus the engine's own
// sort/merge breakdown from a real k-means job.
#include <benchmark/benchmark.h>

#include <cstdint>
#include <iostream>
#include <map>
#include <random>
#include <tuple>
#include <vector>

#include "bench_common.h"
#include "common/stopwatch.h"
#include "geo/distance.h"
#include "geo/geolife.h"
#include "gepeto/kmeans.h"
#include "mapreduce/dfs.h"
#include "mapreduce/engine.h"
#include "mapreduce/merge.h"

namespace {

using namespace gepeto;
using namespace gepeto::bench;

/// The k-means intermediate value: a partial centroid sum (Table III's
/// shuffle payload).
struct PointSum {
  double lat_sum = 0.0;
  double lon_sum = 0.0;
  std::uint64_t count = 0;
  std::uint64_t serialized_size() const { return 24; }
};

using Pair = std::pair<std::int32_t, PointSum>;
using Run = mr::SortedRun<std::int32_t, PointSum>;

/// Raw map outputs: one unpartitioned pair vector per map task, as mappers
/// emit them (cluster ids in [0, k), values from the generator).
std::vector<std::vector<Pair>> make_map_outputs(int num_tasks,
                                                std::size_t per_task, int k) {
  std::mt19937_64 rng(20130731);
  std::vector<std::vector<Pair>> tasks(static_cast<std::size_t>(num_tasks));
  for (auto& pairs : tasks) {
    pairs.reserve(per_task);
    for (std::size_t i = 0; i < per_task; ++i) {
      PointSum p;
      p.lat_sum = 39.0 + static_cast<double>(rng() % 1000) * 1e-3;
      p.lon_sum = 116.0 + static_cast<double>(rng() % 1000) * 1e-3;
      p.count = 1;
      pairs.emplace_back(static_cast<std::int32_t>(rng() % k), p);
    }
  }
  return tasks;
}

/// Reduction result: per cluster id, the merged centroid sum.
using Reduced = std::map<std::int32_t, std::tuple<double, double, std::uint64_t>>;

void reduce_group(Reduced& out, std::int32_t key,
                  std::span<const PointSum> values) {
  auto& [lat, lon, n] = out[key];
  for (const auto& v : values) {
    lat += v.lat_sum;
    lon += v.lon_sum;
    n += v.count;
  }
}

/// The engine's shuffle+reduce before the rework: a second pass
/// redistributes each task's pairs into R buckets (plus the byte-accounting
/// traversals the old code paid), each bucket is sorted, every reducer
/// concatenates its buckets in map-task order and stable-sorts the lot, and
/// grouping copies each group's values into a scratch vector.
Reduced old_shuffle_reduce(const std::vector<std::vector<Pair>>& tasks, int R,
                           std::uint64_t* shuffle_bytes) {
  Reduced reduced;
  *shuffle_bytes = 0;
  std::vector<std::vector<std::vector<Pair>>> buckets(tasks.size());
  for (std::size_t t = 0; t < tasks.size(); ++t) {
    std::uint64_t raw = 0;  // the old raw_bytes traversal
    for (const auto& [k, v] : tasks[t]) raw += 4 + v.serialized_size();
    benchmark::DoNotOptimize(raw);
    buckets[t].resize(static_cast<std::size_t>(R));
    for (const auto& kv : tasks[t]) {
      buckets[t][mr::detail::partition_of(kv.first, R)].push_back(kv);
    }
    for (auto& b : buckets[t]) {
      mr::detail::sort_pairs(b);
      for (const auto& [k, v] : b)  // the old per-bucket bytes traversal
        *shuffle_bytes += 4 + v.serialized_size();
    }
  }
  for (int r = 0; r < R; ++r) {
    std::vector<Pair> merged;
    std::size_t total = 0;
    for (const auto& t : buckets) total += t[static_cast<std::size_t>(r)].size();
    merged.reserve(total);
    for (auto& t : buckets) {
      auto& b = t[static_cast<std::size_t>(r)];
      std::move(b.begin(), b.end(), std::back_inserter(merged));
    }
    mr::detail::sort_pairs(merged);
    // Old grouping: copy each group's values into a scratch vector.
    std::vector<PointSum> scratch;
    std::size_t i = 0;
    while (i < merged.size()) {
      std::size_t j = i;
      while (j < merged.size() && merged[j].first == merged[i].first) ++j;
      scratch.clear();
      scratch.reserve(j - i);
      for (std::size_t x = i; x < j; ++x) scratch.push_back(merged[x].second);
      reduce_group(reduced, merged[i].first,
                   std::span<const PointSum>(scratch.data(), scratch.size()));
      i = j;
    }
  }
  return reduced;
}

/// The reworked shuffle+reduce: pairs are partitioned (and byte-accounted)
/// as they are emitted, each spill is sorted once and split into a
/// SortedRun, reducers loser-tree-merge their runs, and groups are spans
/// into the merged run.
Reduced new_shuffle_reduce(const std::vector<std::vector<Pair>>& tasks, int R,
                           std::uint64_t* shuffle_bytes) {
  Reduced reduced;
  *shuffle_bytes = 0;
  std::vector<std::vector<Run>> runs(tasks.size());
  for (std::size_t t = 0; t < tasks.size(); ++t) {
    std::vector<std::vector<Pair>> spills(static_cast<std::size_t>(R));
    for (const auto& kv : tasks[t]) {  // emit-time partition + byte account
      spills[mr::detail::partition_of(kv.first, R)].push_back(kv);
      *shuffle_bytes += 4 + kv.second.serialized_size();
    }
    runs[t].reserve(static_cast<std::size_t>(R));
    for (auto& spill : spills) {
      mr::detail::sort_pairs(spill);
      runs[t].push_back(mr::detail::split_pairs(std::move(spill)));
    }
  }
  for (int r = 0; r < R; ++r) {
    std::vector<Run*> parts;
    for (auto& t : runs) {
      auto& run = t[static_cast<std::size_t>(r)];
      if (!run.empty()) parts.push_back(&run);
    }
    const Run merged = mr::detail::merge_sorted_runs<std::int32_t, PointSum>(
        std::span<Run* const>(parts.data(), parts.size()));
    mr::detail::for_each_group(
        merged, [&](const std::int32_t& key, std::span<const PointSum> vals) {
          reduce_group(reduced, key, vals);
        });
  }
  return reduced;
}

bool same_reduction(const Reduced& a, const Reduced& b) {
  if (a.size() != b.size()) return false;
  for (const auto& [k, v] : a) {
    const auto it = b.find(k);
    if (it == b.end()) return false;
    // Both paths add in the same deterministic order, so even the floating
    // sums must match bit for bit.
    if (std::get<0>(v) != std::get<0>(it->second) ||
        std::get<1>(v) != std::get<1>(it->second) ||
        std::get<2>(v) != std::get<2>(it->second))
      return false;
  }
  return true;
}

void reproduce_ablation() {
  print_banner("Shuffle ablation — emit-time partitioning + k-way merge",
               "shuffle+reduce of one k-means iteration, old vs new path");

  telemetry::BenchReporter report("shuffle_merge", scale_name());
  const int R = 7;  // Parapluie: one reducer per worker node
  const int kClusters = 10;
  report.set_param("reducers", std::int64_t{R});
  report.set_param("k", std::int64_t{kClusters});

  struct Shape {
    const char* label;
    int tasks;
    std::size_t per_task;
  };
  // Map-task counts track Table III's 32 MB-chunk configurations; record
  // counts match the 66 MB / 128 MB trace counts at paper scale.
  const bool paper = paper_scale();
  const Shape shapes[] = {
      {"66MB_kmeans", paper ? 33 : 8,
       paper ? std::size_t{31'819} : std::size_t{2'500}},
      {"128MB_kmeans", paper ? 64 : 12,
       paper ? std::size_t{31'777} : std::size_t{3'334}},
  };

  Table table("shuffle+reduce wall time, old vs new (best of 3)");
  table.header({"workload", "records", "old", "new", "speedup"});
  const int kTrials = 3;
  for (const auto& s : shapes) {
    const auto tasks = make_map_outputs(s.tasks, s.per_task, kClusters);
    double best_old = 1e300, best_new = 1e300;
    std::uint64_t bytes_old = 0, bytes_new = 0;
    Reduced red_old, red_new;
    for (int trial = 0; trial < kTrials; ++trial) {
      {
        Stopwatch sw;
        red_old = old_shuffle_reduce(tasks, R, &bytes_old);
        best_old = std::min(best_old, sw.seconds());
      }
      {
        Stopwatch sw;
        red_new = new_shuffle_reduce(tasks, R, &bytes_new);
        best_new = std::min(best_new, sw.seconds());
      }
    }
    if (!same_reduction(red_old, red_new) || bytes_old != bytes_new) {
      std::cerr << "FATAL: old and new shuffle paths disagree on " << s.label
                << "\n";
      std::exit(1);
    }
    const double speedup = best_old / best_new;
    const std::uint64_t records =
        static_cast<std::uint64_t>(s.tasks) * s.per_task;
    table.row({s.label, format_count(records), format_seconds(best_old),
               format_seconds(best_new), format_double(speedup, 2) + "x"});
    report.add_row(s.label)
        .set_wall_seconds(best_new)
        .add_counter("records", static_cast<std::int64_t>(records))
        .add_counter("map_tasks", s.tasks)
        .add_counter("shuffle_bytes", static_cast<std::int64_t>(bytes_new))
        .set_param("old_seconds", best_old)
        .set_param("new_seconds", best_new)
        .set_param("speedup", speedup);
    std::cout << s.label << ": speedup " << speedup << "x\n";
  }
  table.print(std::cout);

  // One real k-means job through the engine, for the in-engine sort/merge
  // breakdown now surfaced in JobResult.
  auto cluster = parapluie(7, paper ? 32 * mr::kMiB : 512 * mr::kKiB);
  mr::Dfs dfs(cluster);
  geo::dataset_to_dfs(dfs, "/in", world90().data, 2);
  core::KMeansConfig config;
  config.k = kClusters;
  config.distance = geo::DistanceKind::kSquaredEuclidean;
  config.seed = 11;
  config.max_iterations = 2;
  config.convergence_delta_m = 0.0;
  const auto result =
      core::kmeans_mapreduce(dfs, cluster, "/in/", "/clusters", config);
  bill_job(report.add_row("engine_66MB_kmeans"), result.totals);
  std::cout << "engine k-means (" << result.iterations
            << " iterations): sort " << result.totals.sort_seconds
            << " s, merge " << result.totals.merge_seconds << " s, "
            << result.totals.spill_runs << " spill runs merged\n";

  write_report(report);
}

// Micro sweep: loser-tree merge vs concat + stable_sort over M sorted runs
// of the k-means value shape.
void make_runs(int num_runs, std::size_t per_run, std::vector<Run>* runs) {
  std::mt19937_64 rng(7);
  runs->clear();
  for (int m = 0; m < num_runs; ++m) {
    std::vector<Pair> pairs;
    pairs.reserve(per_run);
    for (std::size_t i = 0; i < per_run; ++i) {
      PointSum p;
      p.count = 1;
      pairs.emplace_back(static_cast<std::int32_t>(rng() % 10), p);
    }
    mr::detail::sort_pairs(pairs);
    runs->push_back(mr::detail::split_pairs(std::move(pairs)));
  }
}

void BM_LoserTreeMerge(benchmark::State& state) {
  std::vector<Run> base;
  make_runs(static_cast<int>(state.range(0)), 4096, &base);
  for (auto _ : state) {
    state.PauseTiming();
    std::vector<Run> runs = base;  // merge moves values out
    std::vector<Run*> ptrs;
    for (auto& r : runs) ptrs.push_back(&r);
    state.ResumeTiming();
    Run merged = mr::detail::merge_sorted_runs<std::int32_t, PointSum>(
        std::span<Run* const>(ptrs.data(), ptrs.size()));
    benchmark::DoNotOptimize(merged.keys.data());
  }
}
BENCHMARK(BM_LoserTreeMerge)->Arg(4)->Arg(16)->Arg(64);

void BM_ConcatStableSort(benchmark::State& state) {
  std::vector<Run> base;
  make_runs(static_cast<int>(state.range(0)), 4096, &base);
  for (auto _ : state) {
    std::vector<Pair> merged;
    for (const auto& r : base)
      for (std::size_t i = 0; i < r.size(); ++i)
        merged.emplace_back(r.keys[i], r.values[i]);
    mr::detail::sort_pairs(merged);
    benchmark::DoNotOptimize(merged.data());
  }
}
BENCHMARK(BM_ConcatStableSort)->Arg(4)->Arg(16)->Arg(64);

}  // namespace

int main(int argc, char** argv) {
  ::benchmark::Initialize(&argc, argv);
  reproduce_ablation();
  ::benchmark::RunSpecifiedBenchmarks();
  return 0;
}
