// Reproduces Figure 4: the workflow of the MapReduced k-means — one
// MapReduce job per iteration, the map phase assigning traces to centroids
// and the reduce phase recomputing centroids, iterating until convergence.
//
// The bench runs the full loop on the 66 MB dataset and prints the
// per-iteration breakdown (map / shuffle+reduce simulated time, shuffle
// volume, centroid movement) until convergence — the figure's loop made
// measurable.
#include <benchmark/benchmark.h>

#include <iostream>

#include "bench_common.h"
#include "geo/geolife.h"
#include "gepeto/kmeans.h"
#include "mapreduce/dfs.h"

namespace {

using namespace gepeto;
using namespace gepeto::bench;

void reproduce_fig4() {
  print_banner("Figure 4 — MapReduced k-means workflow",
               "init on driver; per iteration: map = assign to closest "
               "centroid, reduce = recompute centroids; loop until "
               "convergence or maxIter");
  const auto& world = world90();
  auto cluster = parapluie(7);
  mr::Dfs dfs(cluster);
  geo::dataset_to_dfs(dfs, "/in", world.data, 4);

  core::KMeansConfig config;
  config.k = 10;
  config.seed = 5;
  config.distance = geo::DistanceKind::kSquaredEuclidean;
  config.max_iterations = paper_scale() ? 12 : 8;
  config.convergence_delta_m = 25.0;
  const auto result =
      core::kmeans_mapreduce(dfs, cluster, "/in/", "/clusters", config);

  Table table("per-iteration workflow profile");
  table.header({"iteration", "sim map", "sim shuffle+reduce", "sim total",
                "shuffle", "max centroid move"});
  for (std::size_t i = 0; i < result.per_iteration.size(); ++i) {
    const auto& it = result.per_iteration[i];
    table.row({std::to_string(i + 1), format_seconds(it.sim_map_seconds),
               format_seconds(it.sim_reduce_seconds),
               format_seconds(it.sim_seconds), format_bytes(it.shuffle_bytes),
               format_double(it.max_centroid_move_m, 1) + " m"});
  }
  table.print(std::cout);
  std::cout << "converged: " << (result.converged ? "yes" : "no (hit maxIter)")
            << " after " << result.iterations
            << " iterations; final SSE = " << result.sse << "\n";
  std::cout << "cluster sizes:";
  for (auto s : result.cluster_sizes) std::cout << ' ' << format_count(s);
  std::cout << "\nshape: map dominates each iteration (full scan of the "
               "dataset); centroid movement shrinks monotonically toward "
               "the convergence threshold.\n";
}

void BM_CentroidLinesRoundTrip(benchmark::State& state) {
  std::vector<core::Centroid> centroids;
  for (int i = 0; i < state.range(0); ++i)
    centroids.push_back({39.8 + i * 0.001, 116.2 + i * 0.002});
  for (auto _ : state) {
    auto back =
        core::centroids_from_lines(core::centroids_to_lines(centroids));
    benchmark::DoNotOptimize(back);
  }
}
BENCHMARK(BM_CentroidLinesRoundTrip)->Arg(10)->Arg(100);

}  // namespace

int main(int argc, char** argv) {
  ::benchmark::Initialize(&argc, argv);
  reproduce_fig4();
  ::benchmark::RunSpecifiedBenchmarks();
  return 0;
}
