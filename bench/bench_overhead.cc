// Reproduces the Section VI deployment-overhead observation: "Our
// experiments report on the overhead brought by these initial steps
// [HDFS install, daemon startup, data upload and chunking] as being
// approximately 25 seconds", and that the background daemons add no
// overhead to job completion.
#include <benchmark/benchmark.h>

#include <iostream>

#include "bench_common.h"
#include "geo/geolife.h"
#include "gepeto/sampling.h"
#include "mapreduce/dfs.h"

namespace {

using namespace gepeto;
using namespace gepeto::bench;

void reproduce_overhead() {
  print_banner("Deployment & startup overhead (Sec. VI)",
               "HDFS deployment + data upload overhead ~= 25 s; background "
               "daemons add no per-job overhead");
  const auto& world = world178();
  auto cluster = parapluie(7);

  Table table("overhead breakdown");
  table.header({"step", "sim time", "detail"});

  mr::Dfs dfs(cluster);
  geo::dataset_to_dfs(dfs, "/geolife", world.data, 8);
  const auto stats = dfs.stats();
  table.row({"data upload into the DFS (ingest + chunking + replication)",
             format_seconds(stats.sim_ingest_seconds),
             format_bytes(stats.logical_bytes) + " logical, " +
                 format_bytes(stats.stored_bytes) + " stored (" +
                 std::to_string(stats.chunks) + " chunks x3 replicas)"});

  const auto job = core::run_sampling_job(
      dfs, cluster, "/geolife/", "/sampled",
      {60, core::SamplingTechnique::kUpperLimit});
  table.row({"job startup (submission, scheduling, task launch)",
             format_seconds(job.sim_startup_seconds),
             std::to_string(job.num_map_tasks) + " map tasks"});
  table.row({"job execution (map phase makespan)",
             format_seconds(job.sim_map_seconds), "-"});

  table.print(std::cout);

  std::cout << "paper: the combined deployment overhead is ~25 s on "
               "Parapluie; our modeled ingest + startup lands in the same "
               "tens-of-seconds regime for the 128 MB dataset.\n";

  // Second job over the same DFS: no re-ingest -> startup only.
  const auto job2 = core::run_sampling_job(
      dfs, cluster, "/geolife/", "/sampled2",
      {300, core::SamplingTechnique::kUpperLimit});
  std::cout << "second job on the warm DFS pays no ingest: startup "
            << format_seconds(job2.sim_startup_seconds) << ", total "
            << format_seconds(job2.sim_seconds) << "\n";
}

void BM_DfsPut(benchmark::State& state) {
  auto cluster = parapluie(7, 64 * mr::kKiB);
  const std::string payload(static_cast<std::size_t>(state.range(0)), 'x');
  for (auto _ : state) {
    mr::Dfs dfs(cluster);
    dfs.put("/f", payload);
    benchmark::DoNotOptimize(dfs.stats().chunks);
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_DfsPut)->Arg(1 << 16)->Arg(1 << 20)->Arg(1 << 24);

}  // namespace

int main(int argc, char** argv) {
  ::benchmark::Initialize(&argc, argv);
  reproduce_overhead();
  ::benchmark::RunSpecifiedBenchmarks();
  return 0;
}
