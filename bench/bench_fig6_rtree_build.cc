// Reproduces Figure 6 (and Algorithms 6-9): building an R-Tree with
// MapReduce — phase 1 samples objects and derives the space-filling-curve
// partition points, phase 2 builds one small R-Tree per partition, phase 3
// merges them sequentially.
//
// Both curves of the paper (Z-order, Hilbert) are compared, against a direct
// sequential STR bulk load as the baseline.
#include <benchmark/benchmark.h>

#include <iostream>

#include "bench_common.h"
#include "common/stopwatch.h"
#include "geo/geolife.h"
#include "gepeto/djcluster.h"
#include "gepeto/rtree_mr.h"
#include "gepeto/sampling.h"
#include "mapreduce/dfs.h"

namespace {

using namespace gepeto;
using namespace gepeto::bench;

void reproduce_fig6() {
  print_banner("Figure 6 — building an R-Tree with MapReduce",
               "phase 1: sample + partition points (SFC); phase 2: one small "
               "R-Tree per partition; phase 3: sequential merge");
  const auto& world = world178();
  auto cluster = parapluie(7);
  mr::Dfs dfs(cluster);
  geo::dataset_to_dfs(dfs, "/geolife", world.data, 8);
  // Index the 1-minute-sampled dataset (what DJ-Cluster consumes).
  core::run_sampling_job(dfs, cluster, "/geolife/", "/sampled",
                         {60, core::SamplingTechnique::kUpperLimit});
  const auto n = geo::count_dfs_records(dfs, "/sampled/");
  std::cout << "indexing " << format_count(n) << " traces\n";

  // Sequential baseline: direct STR bulk load on the driver.
  double seq_seconds;
  std::size_t seq_size;
  {
    const auto data = geo::dataset_from_dfs(dfs, "/sampled/");
    std::vector<index::RTreeEntry> entries;
    for (const auto& [uid, trail] : data)
      for (const auto& t : trail)
        entries.push_back({t.latitude, t.longitude,
                           core::pack_trace_id(t.user_id, t.timestamp)});
    Stopwatch sw;
    index::RTree tree(16);
    tree.bulk_load_str(entries);
    seq_seconds = sw.seconds();
    seq_size = tree.size();
  }

  Table table("3-phase MapReduce build (paper's Fig. 6) vs sequential");
  table.header({"curve", "partitions", "phase 1 sim", "phase 2 sim",
                "phase 3 real", "entries", "height",
                "partition balance (min/max)"});
  for (auto curve : {index::CurveKind::kZOrder, index::CurveKind::kHilbert}) {
    for (int partitions : {4, 8}) {
      core::RTreeMrConfig config;
      config.curve = curve;
      config.num_partitions = partitions;
      const auto r = core::build_rtree_mapreduce(dfs, cluster, "/sampled/",
                                                 "/rtree", config);
      std::uint64_t min_p = ~0ull, max_p = 0;
      for (auto s : r.partition_sizes) {
        min_p = std::min(min_p, s);
        max_p = std::max(max_p, s);
      }
      table.row({std::string(index::curve_name(curve)),
                 std::to_string(partitions),
                 format_seconds(r.phase1.sim_seconds),
                 format_seconds(r.phase2.sim_seconds),
                 format_seconds(r.phase3_real_seconds),
                 format_count(r.tree.size()), std::to_string(r.tree.height()),
                 format_count(min_p) + " / " + format_count(max_p)});
    }
  }
  table.print(std::cout);
  std::cout << "sequential STR bulk load baseline: "
            << format_seconds(seq_seconds) << " for " << format_count(seq_size)
            << " entries (single node, no cluster overhead)\n";
  std::cout << "shape: phase 2 dominates; phase 3 is cheap (\"executed "
               "sequentially by a single node due to its low computational "
               "complexity\"); Hilbert partitions are at least as balanced "
               "as Z-order.\n";
}

void BM_SfcEncode(benchmark::State& state) {
  const bool hilbert = state.range(0) == 1;
  std::uint64_t acc = 0;
  std::uint32_t x = 123, y = 45678;
  for (auto _ : state) {
    acc ^= hilbert ? index::hilbert_encode(x & 0xFFFF, y & 0xFFFF, 16)
                   : index::zorder_encode(x, y);
    ++x;
    y += 3;
  }
  benchmark::DoNotOptimize(acc);
}
BENCHMARK(BM_SfcEncode)->Arg(0)->Arg(1);

void BM_RTreeRadiusQuery(benchmark::State& state) {
  const auto& world = world90();
  std::vector<index::RTreeEntry> entries;
  const auto uid = world.data.users().front();
  for (const auto& t : world.data.trail(uid))
    entries.push_back({t.latitude, t.longitude,
                       core::pack_trace_id(t.user_id, t.timestamp)});
  index::RTree tree(16);
  tree.bulk_load_str(entries);
  std::size_t i = 0, acc = 0;
  for (auto _ : state) {
    const auto& e = entries[i++ % entries.size()];
    acc += tree.radius_search_meters(e.lat, e.lon,
                                     static_cast<double>(state.range(0)))
               .size();
  }
  benchmark::DoNotOptimize(acc);
}
BENCHMARK(BM_RTreeRadiusQuery)->Arg(50)->Arg(100)->Arg(500);

}  // namespace

int main(int argc, char** argv) {
  ::benchmark::Initialize(&argc, argv);
  reproduce_fig6();
  ::benchmark::RunSpecifiedBenchmarks();
  return 0;
}
