// Ablation: task-failure handling (Sec. III: "the jobtracker is also
// responsible for monitoring tasks and handling failures"; HDFS handles node
// failures through chunk-level replication).
//
// Injects per-attempt task failures into the sampling job and measures the
// makespan inflation from re-executed attempts (results must be unchanged),
// then drills datanode loss + re-replication on the DFS.
#include <benchmark/benchmark.h>

#include <iostream>

#include "bench_common.h"
#include "common/check.h"
#include "geo/geolife.h"
#include "gepeto/sampling.h"
#include "mapreduce/dfs.h"
#include "mapreduce/scheduler.h"

namespace {

using namespace gepeto;
using namespace gepeto::bench;

void reproduce_failure_ablation() {
  print_banner("Ablation — failure injection & recovery (Sec. III)",
               "failed task attempts are re-executed; lost replicas are "
               "restored from surviving copies");
  const auto& world = world90();

  Table table("sampling job under injected task failures (7 nodes)");
  table.header({"failure prob / attempt", "failed attempts", "sim map",
                "sim total", "output records"});

  std::uint64_t baseline_records = 0;
  for (double p : {0.0, 0.05, 0.1, 0.2, 0.4}) {
    auto cluster = parapluie(7, paper_scale() ? 4 * mr::kMiB : 64 * mr::kKiB);
    mr::Dfs dfs(cluster);
    geo::dataset_to_dfs(dfs, "/in", world.data, 4);
    mr::FailurePolicy failures;
    failures.task_failure_prob = p;
    const auto jr = core::run_sampling_job(
        dfs, cluster, "/in/", "/out",
        {60, core::SamplingTechnique::kUpperLimit}, failures);
    if (p == 0.0) baseline_records = jr.output_records;
    GEPETO_CHECK_MSG(jr.output_records == baseline_records,
                     "failure injection must not change the output");
    table.row({format_double(p, 2), std::to_string(jr.failed_task_attempts),
               format_seconds(jr.sim_map_seconds),
               format_seconds(jr.sim_seconds),
               format_count(jr.output_records)});
  }
  table.print(std::cout);

  // Seeded chaos run: deterministic attempt crashes + a datanode killed
  // mid-job. The engine really re-executes the crashed attempts (discarding
  // their partial output) and re-replicates around the dead node; the output
  // must match the fault-free baseline byte for byte.
  {
    auto cluster = parapluie(7, paper_scale() ? 4 * mr::kMiB : 64 * mr::kKiB);
    cluster.blacklist_after_failures = 3;
    mr::Dfs dfs(cluster);
    geo::dataset_to_dfs(dfs, "/in", world.data, 4);
    mr::FaultPlan chaos;
    chaos.seed = 42;
    chaos.attempt_crash_prob = 0.2;
    chaos.crashes.push_back({/*phase=*/1, /*task=*/0, /*attempt=*/0});
    chaos.node_kills.push_back({/*node=*/2, /*after_map_tasks=*/2});
    const auto jr = core::run_sampling_job(
        dfs, cluster, "/in/", "/chaos",
        {60, core::SamplingTechnique::kUpperLimit}, {}, chaos);
    GEPETO_CHECK_MSG(jr.output_records == baseline_records,
                     "chaos run must reproduce the fault-free output");
    std::cout << "chaos run (seed 42, crash prob 0.20, node 2 killed after 2 "
                 "map tasks): "
              << jr.failed_task_attempts << " attempts re-executed, "
              << jr.blacklisted_nodes << " nodes blacklisted, "
              << jr.lost_chunks << " chunks lost, recovery "
              << format_seconds(jr.sim_recovery_seconds)
              << "; output identical to the fault-free run.\n";
  }

  // Exhausting max_attempts surfaces a structured JobError (no abort).
  {
    auto cluster = parapluie(7, paper_scale() ? 4 * mr::kMiB : 64 * mr::kKiB);
    mr::Dfs dfs(cluster);
    geo::dataset_to_dfs(dfs, "/in", world.data, 4);
    mr::FaultPlan fatal;
    fatal.crashes = {{1, 0, 0}, {1, 0, 1}, {1, 0, 2}, {1, 0, 3}};
    bool raised = false;
    try {
      core::run_sampling_job(dfs, cluster, "/in/", "/doomed",
                             {60, core::SamplingTechnique::kUpperLimit}, {},
                             fatal);
    } catch (const mr::JobError& e) {
      raised = true;
      std::cout << "exhausted retries raise JobError: " << e.what() << "\n";
    }
    GEPETO_CHECK_MSG(raised, "expected a JobError after 4 crashed attempts");
  }

  // DFS node-loss drill.
  auto cluster = parapluie(7);
  mr::Dfs dfs(cluster);
  geo::dataset_to_dfs(dfs, "/in", world.data, 4);
  const auto payload_before = dfs.total_size("/in/");
  dfs.kill_node(0);
  dfs.kill_node(3);
  const auto before = dfs.under_replicated_chunks();
  const auto report = dfs.re_replicate();
  GEPETO_CHECK(!report.data_loss());
  GEPETO_CHECK(dfs.total_size("/in/") == payload_before);
  std::cout << "killed 2 of 7 datanodes: " << before
            << " under-replicated chunks; re-replication created "
            << report.created << " new replicas ("
            << format_seconds(report.sim_seconds) << " of simulated copying), "
            << dfs.under_replicated_chunks()
            << " remain under-replicated; all data still readable.\n";
  std::cout << "shape: makespan grows smoothly with the failure rate (re-"
               "executed attempts), and results are bit-identical.\n";
}


void BM_ScheduleMapPhase(benchmark::State& state) {
  auto cluster = parapluie(7);
  std::vector<mr::MapTaskCost> tasks;
  for (int i = 0; i < state.range(0); ++i) {
    mr::MapTaskCost t;
    t.input_bytes = 8 << 20;
    t.cpu_seconds = 0.5 + 0.01 * i;
    t.replica_nodes = {i % 7, (i + 2) % 7, (i + 4) % 7};
    tasks.push_back(t);
  }
  for (auto _ : state) {
    auto s = mr::schedule_map_phase(cluster, tasks);
    benchmark::DoNotOptimize(s.makespan);
  }
}
BENCHMARK(BM_ScheduleMapPhase)->Arg(32)->Arg(256);

}  // namespace

int main(int argc, char** argv) {
  ::benchmark::Initialize(&argc, argv);
  reproduce_failure_ablation();
  ::benchmark::RunSpecifiedBenchmarks();
  return 0;
}
