// Ablation: task-failure handling (Sec. III: "the jobtracker is also
// responsible for monitoring tasks and handling failures"; HDFS handles node
// failures through chunk-level replication).
//
// Injects per-attempt task failures into the sampling job and measures the
// makespan inflation from re-executed attempts (results must be unchanged),
// then drills datanode loss + re-replication on the DFS.
#include <benchmark/benchmark.h>

#include <iostream>
#include <random>

#include "bench_common.h"
#include "common/check.h"
#include "geo/geolife.h"
#include "gepeto/sampling.h"
#include "mapreduce/dfs.h"
#include "mapreduce/scheduler.h"
#include "telemetry/bench_report.h"

namespace {

using namespace gepeto;
using namespace gepeto::bench;

void reproduce_failure_ablation() {
  print_banner("Ablation — failure injection & recovery (Sec. III)",
               "failed task attempts are re-executed; lost replicas are "
               "restored from surviving copies");
  const auto& world = world90();

  Table table("sampling job under injected task failures (7 nodes)");
  table.header({"failure prob / attempt", "failed attempts", "sim map",
                "sim total", "output records"});

  std::uint64_t baseline_records = 0;
  for (double p : {0.0, 0.05, 0.1, 0.2, 0.4}) {
    auto cluster = parapluie(7, paper_scale() ? 4 * mr::kMiB : 64 * mr::kKiB);
    mr::Dfs dfs(cluster);
    geo::dataset_to_dfs(dfs, "/in", world.data, 4);
    mr::FailurePolicy failures;
    failures.task_failure_prob = p;
    const auto jr = core::run_sampling_job(
        dfs, cluster, "/in/", "/out",
        {60, core::SamplingTechnique::kUpperLimit}, failures);
    if (p == 0.0) baseline_records = jr.output_records;
    GEPETO_CHECK_MSG(jr.output_records == baseline_records,
                     "failure injection must not change the output");
    table.row({format_double(p, 2), std::to_string(jr.failed_task_attempts),
               format_seconds(jr.sim_map_seconds),
               format_seconds(jr.sim_seconds),
               format_count(jr.output_records)});
  }
  table.print(std::cout);

  // Seeded chaos run: deterministic attempt crashes + a datanode killed
  // mid-job. The engine really re-executes the crashed attempts (discarding
  // their partial output) and re-replicates around the dead node; the output
  // must match the fault-free baseline byte for byte.
  {
    auto cluster = parapluie(7, paper_scale() ? 4 * mr::kMiB : 64 * mr::kKiB);
    cluster.blacklist_after_failures = 3;
    mr::Dfs dfs(cluster);
    geo::dataset_to_dfs(dfs, "/in", world.data, 4);
    mr::FaultPlan chaos;
    chaos.seed = 42;
    chaos.attempt_crash_prob = 0.2;
    chaos.crashes.push_back({/*phase=*/1, /*task=*/0, /*attempt=*/0});
    chaos.node_kills.push_back({/*node=*/2, /*after_map_tasks=*/2});
    const auto jr = core::run_sampling_job(
        dfs, cluster, "/in/", "/chaos",
        {60, core::SamplingTechnique::kUpperLimit}, {}, chaos);
    GEPETO_CHECK_MSG(jr.output_records == baseline_records,
                     "chaos run must reproduce the fault-free output");
    std::cout << "chaos run (seed 42, crash prob 0.20, node 2 killed after 2 "
                 "map tasks): "
              << jr.failed_task_attempts << " attempts re-executed, "
              << jr.blacklisted_nodes << " nodes blacklisted, "
              << jr.lost_chunks << " chunks lost, recovery "
              << format_seconds(jr.sim_recovery_seconds)
              << "; output identical to the fault-free run.\n";
  }

  // Exhausting max_attempts surfaces a structured JobError (no abort).
  {
    auto cluster = parapluie(7, paper_scale() ? 4 * mr::kMiB : 64 * mr::kKiB);
    mr::Dfs dfs(cluster);
    geo::dataset_to_dfs(dfs, "/in", world.data, 4);
    mr::FaultPlan fatal;
    fatal.crashes = {{1, 0, 0}, {1, 0, 1}, {1, 0, 2}, {1, 0, 3}};
    bool raised = false;
    try {
      core::run_sampling_job(dfs, cluster, "/in/", "/doomed",
                             {60, core::SamplingTechnique::kUpperLimit}, {},
                             fatal);
    } catch (const mr::JobError& e) {
      raised = true;
      std::cout << "exhausted retries raise JobError: " << e.what() << "\n";
    }
    GEPETO_CHECK_MSG(raised, "expected a JobError after 4 crashed attempts");
  }

  // DFS node-loss drill.
  auto cluster = parapluie(7);
  mr::Dfs dfs(cluster);
  geo::dataset_to_dfs(dfs, "/in", world.data, 4);
  const auto payload_before = dfs.total_size("/in/");
  dfs.kill_node(0);
  dfs.kill_node(3);
  const auto before = dfs.under_replicated_chunks();
  const auto report = dfs.re_replicate();
  GEPETO_CHECK(!report.data_loss());
  GEPETO_CHECK(dfs.total_size("/in/") == payload_before);
  std::cout << "killed 2 of 7 datanodes: " << before
            << " under-replicated chunks; re-replication created "
            << report.created << " new replicas ("
            << format_seconds(report.sim_seconds) << " of simulated copying), "
            << dfs.under_replicated_chunks()
            << " remain under-replicated; all data still readable.\n";
  std::cout << "shape: makespan grows smoothly with the failure rate (re-"
               "executed attempts), and results are bit-identical.\n";
}


// Worker chaos on the process backend: the same sampling job, but every task
// attempt runs in a fork()ed tasktracker and a seeded fraction of the map
// tasks is SIGKILLed mid-record on its first attempt. The jobtracker must
// notice each death via the heartbeat/poll machinery, reap the corpse,
// respawn with backoff and re-dispatch — and still produce the fault-free
// output. Emits BENCH_worker_chaos.json: recovery latency and wall-time
// overhead as a function of the kill rate.
void reproduce_worker_chaos() {
  print_banner("Worker chaos — real SIGKILLs on the process backend",
               "tasktracker death is detected by the jobtracker, the attempt "
               "is re-executed elsewhere, and the output is unchanged");
  const auto& world = world90();

  auto process_cluster = [] {
    auto cluster = parapluie(7, paper_scale() ? 4 * mr::kMiB : 64 * mr::kKiB);
    cluster.backend = mr::ExecutionBackend::kProcess;
    cluster.process_workers = 4;
    // Aggressive liveness so the drill measures recovery, not idle waiting.
    cluster.worker_heartbeat_interval_s = 0.02;
    cluster.worker_heartbeat_timeout_s = 10.0;
    cluster.worker_respawn_backoff_base_s = 0.01;
    cluster.worker_respawn_backoff_cap_s = 0.1;
    return cluster;
  };

  auto run_once = [&](const mr::FaultPlan& plan) {
    auto cluster = process_cluster();
    mr::Dfs dfs(cluster);
    geo::dataset_to_dfs(dfs, "/in", world.data, 4);
    return core::run_sampling_job(dfs, cluster, "/in/", "/out",
                                  {60, core::SamplingTechnique::kUpperLimit},
                                  {}, plan);
  };

  telemetry::BenchReporter report("worker_chaos", scale_name());
  report.set_param("backend", "process");
  report.set_param("process_workers", std::int64_t{4});

  Table table("sampling job with SIGKILLed tasktrackers (process backend)");
  table.header({"kill rate", "worker deaths", "respawns", "mean recovery",
                "wall time", "overhead", "output records"});

  // Fault-free process-backend baseline: gives the map-task count the kill
  // sweep draws from and the wall time the overhead column is relative to.
  const auto baseline = run_once({});
  const double baseline_wall = baseline.real_seconds;
  GEPETO_CHECK(baseline.num_map_tasks > 0);

  for (double kill_rate : {0.0, 0.1, 0.25, 0.5}) {
    mr::FaultPlan chaos;
    chaos.seed = 42;
    // Seeded Bernoulli draw per map task: SIGKILL the worker mid-record on
    // the task's first attempt; the retry must land on a fresh process.
    std::mt19937_64 rng(0x9E3779B97F4A7C15ULL);
    std::uniform_real_distribution<double> coin(0.0, 1.0);
    for (int t = 0; t < baseline.num_map_tasks; ++t) {
      if (coin(rng) < kill_rate) {
        chaos.process_faults.push_back(
            {/*phase=*/1, /*task=*/t, /*attempt=*/0,
             mr::FaultPlan::ProcessFault::Kind::kSigkillAtRecord,
             /*record=*/1 + t % 5});
      }
    }

    const auto jr = kill_rate == 0.0 ? baseline : run_once(chaos);
    GEPETO_CHECK_MSG(jr.output_records == baseline.output_records,
                     "real kills must not change the output");
    const double mean_recovery =
        jr.worker_deaths > 0 ? jr.worker_recovery_seconds / jr.worker_deaths
                             : 0.0;
    const double overhead =
        baseline_wall > 0.0 ? jr.real_seconds / baseline_wall : 1.0;
    table.row({format_double(kill_rate, 2), std::to_string(jr.worker_deaths),
               std::to_string(jr.worker_respawns),
               format_seconds(mean_recovery), format_seconds(jr.real_seconds),
               format_double(overhead, 2) + "x",
               format_count(jr.output_records)});

    auto& row = report.add_row("kill_rate=" + format_double(kill_rate, 2));
    bill_job(row, jr)
        .set_param("kill_rate", kill_rate)
        .set_param("planned_kills",
                   static_cast<std::int64_t>(chaos.process_faults.size()))
        .set_param("mean_recovery_seconds", mean_recovery)
        .set_param("wall_overhead", overhead)
        .add_counter("worker_deaths", jr.worker_deaths)
        .add_counter("worker_respawns", jr.worker_respawns);
  }
  table.print(std::cout);
  write_report(report);
  std::cout << "shape: recovery latency stays flat (heartbeat poll + respawn "
               "backoff) while wall-time overhead grows with the kill rate; "
               "output is bit-identical throughout.\n";
}

void BM_ScheduleMapPhase(benchmark::State& state) {
  auto cluster = parapluie(7);
  std::vector<mr::MapTaskCost> tasks;
  for (int i = 0; i < state.range(0); ++i) {
    mr::MapTaskCost t;
    t.input_bytes = 8 << 20;
    t.cpu_seconds = 0.5 + 0.01 * i;
    t.replica_nodes = {i % 7, (i + 2) % 7, (i + 4) % 7};
    tasks.push_back(t);
  }
  for (auto _ : state) {
    auto s = mr::schedule_map_phase(cluster, tasks);
    benchmark::DoNotOptimize(s.makespan);
  }
}
BENCHMARK(BM_ScheduleMapPhase)->Arg(32)->Arg(256);

}  // namespace

int main(int argc, char** argv) {
  ::benchmark::Initialize(&argc, argv);
  reproduce_failure_ablation();
  reproduce_worker_chaos();
  ::benchmark::RunSpecifiedBenchmarks();
  return 0;
}
