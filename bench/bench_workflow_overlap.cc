// JobFlow ablation: DAG-overlapped vs sequential execution of two
// independent analysis pipelines on one simulated cluster.
//
// The paper's experiments run each analysis as a chain of jobs, one at a
// time. JobFlow schedules independent branches concurrently on the virtual
// cluster clock, so a privacy analyst running two unrelated studies (here:
// DJ-Cluster POI extraction on one dataset and a distributed R-Tree build
// on another) pays the makespan of the slower pipeline, not the sum. This
// bench runs the same two pipelines both ways and verifies the overlapped
// schedule produces byte-identical outputs.
#include <benchmark/benchmark.h>

#include <iostream>
#include <string>

#include "bench_common.h"
#include "common/check.h"
#include "geo/geolife.h"
#include "gepeto/djcluster.h"
#include "gepeto/rtree_mr.h"
#include "gepeto/sampling.h"
#include "mapreduce/dfs.h"
#include "workflow/flow.h"

namespace {

using namespace gepeto;
using namespace gepeto::bench;

std::string cat_dataset(const mr::Dfs& dfs, const std::string& dir) {
  std::string all;
  for (const auto& p : dfs.list(dir)) all += dfs.read(p);
  return all;
}

/// Two independent pipelines in one flow:
///   A: /a -> sample-a -> DJ-Cluster (filter, dedup, entries, cluster)
///   B: /b -> sample-b -> R-Tree build (bounds, phase1, boundaries, phase2,
///      merge)
/// `chained` serializes them (B starts after A's last job), reproducing the
/// one-job-at-a-time driver the paper's experiments used.
flow::Flow build_two_pipelines(bool chained) {
  core::DjClusterConfig dj;
  dj.radius_m = 80;
  dj.min_pts = 8;
  core::RTreeMrConfig rt;
  rt.curve = index::CurveKind::kHilbert;
  rt.num_partitions = 7;

  flow::Flow f(chained ? "sequential" : "overlapped");
  f.add_map_only("sample-a",
                 [](flow::FlowEngine& e) {
                   return core::run_sampling_job(
                       e.dfs(), e.cluster(), "/a/", "/a-sampled",
                       {60, core::SamplingTechnique::kUpperLimit});
                 })
      .reads("/a")
      .writes("/a-sampled");
  core::add_djcluster_nodes(f, "/a-sampled/", "/dja", dj);

  auto sample_b =
      f.add_map_only("sample-b",
                     [](flow::FlowEngine& e) {
                       return core::run_sampling_job(
                           e.dfs(), e.cluster(), "/b/", "/b-sampled",
                           {60, core::SamplingTechnique::kUpperLimit});
                     })
          .reads("/b")
          .writes("/b-sampled");
  if (chained) sample_b.after("dj-cluster");
  core::add_rtree_nodes(f, "/b-sampled/", "/rtree", rt);
  return f;
}

struct RunOutcome {
  flow::FlowResult fr;
  std::string clusters;  // DJ product, for the identical-output check
};

RunOutcome run_two_pipelines(bool chained) {
  auto cluster = parapluie(7, paper_scale() ? 16 * mr::kMiB : 64 * mr::kKiB);
  mr::Dfs dfs(cluster);
  geo::dataset_to_dfs(dfs, "/a", world90().data, 4);
  geo::dataset_to_dfs(dfs, "/b", world178().data, 4);
  flow::Flow f = build_two_pipelines(chained);
  RunOutcome out{f.run(dfs, cluster), cat_dataset(dfs, "/dja/clusters/")};
  return out;
}

void reproduce_workflow_overlap() {
  print_banner(
      "JobFlow — DAG overlap vs sequential job chaining",
      "each analysis is a multi-job workflow; a DAG scheduler overlaps "
      "independent pipelines on the cluster");

  const auto seq = run_two_pipelines(/*chained=*/true);
  const auto dag = run_two_pipelines(/*chained=*/false);

  Table table("overlapped schedule (DJ-Cluster on /a x R-Tree build on /b)");
  table.header({"node", "sim start", "sim finish", "sim time"});
  for (const auto& nr : dag.fr.nodes) {
    table.row({nr.name, format_seconds(nr.sim_start_seconds),
               format_seconds(nr.sim_finish_seconds),
               format_seconds(nr.sim_seconds)});
  }
  table.print(std::cout);

  std::cout << "sequential chain makespan: "
            << format_seconds(seq.fr.sim_seconds) << "\n"
            << "DAG-overlapped makespan:   "
            << format_seconds(dag.fr.sim_seconds) << " (per-node sum "
            << format_seconds(dag.fr.sim_sequential_seconds) << ")\n"
            << "overlap speedup:           "
            << seq.fr.sim_seconds / dag.fr.sim_seconds << "x\n"
            << "GC: " << dag.fr.gc_datasets << " intermediate datasets, "
            << format_bytes(dag.fr.gc_bytes) << " reclaimed\n";

  telemetry::BenchReporter report("workflow_overlap", scale_name());
  report.set_param("nodes", std::int64_t{7});
  for (const auto* run : {&seq, &dag}) {
    auto& r = report.add_row(run->fr.flow_name);
    r.set_sim_seconds(run->fr.sim_seconds)
        .set_wall_seconds(run->fr.real_seconds)
        .set_param("sim_sequential_seconds", run->fr.sim_sequential_seconds)
        .set_param("nodes_run", std::int64_t{run->fr.nodes_run})
        .add_counter("gc_datasets",
                     static_cast<std::int64_t>(run->fr.gc_datasets))
        .add_counter("gc_bytes", static_cast<std::int64_t>(run->fr.gc_bytes));
  }
  report.set_param("overlap_speedup", seq.fr.sim_seconds / dag.fr.sim_seconds);
  write_report(report);

  GEPETO_CHECK_MSG(dag.fr.sim_seconds < seq.fr.sim_seconds,
                   "overlapping independent pipelines must beat the chain");
  GEPETO_CHECK_MSG(!dag.clusters.empty() && dag.clusters == seq.clusters,
                   "the schedule must not change the analysis output");
  std::cout << "outputs: DJ cluster files byte-identical under both "
               "schedules.\n";
  std::cout << "shape: the R-Tree pipeline hides almost entirely behind the "
               "DJ-Cluster one; speedup approaches (A+B)/max(A,B).\n";
}

// Executor overhead: a pure-native chain measures what JobFlow itself costs
// per node (graph analysis, virtual-clock bookkeeping, GC scans).
void BM_FlowExecutorOverhead(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  auto cluster = parapluie(7);
  for (auto _ : state) {
    mr::Dfs dfs(cluster);
    flow::Flow f("overhead");
    std::string prev;
    for (int i = 0; i < n; ++i) {
      std::string name = "n";
      name += std::to_string(i);
      auto ref = f.add_native(name,
                              [](flow::FlowEngine& e) { e.charge_sim(1.0); });
      if (i > 0) ref.after(prev);
      prev = std::move(name);
    }
    const auto fr = f.run(dfs, cluster);
    benchmark::DoNotOptimize(fr.sim_seconds);
  }
}
BENCHMARK(BM_FlowExecutorOverhead)->Arg(8)->Arg(64);

}  // namespace

int main(int argc, char** argv) {
  ::benchmark::Initialize(&argc, argv);
  reproduce_workflow_overlap();
  ::benchmark::RunSpecifiedBenchmarks();
  return 0;
}
