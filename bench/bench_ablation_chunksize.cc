// Ablation: chunk size (Sec. VI: "a crucial parameter having a big
// influence on the computational time is the chunk size ... a smaller chunk
// size leads to a larger number of chunks, which in turn generates more map
// tasks ... a higher number of mappers working in parallel will improve the
// computational time").
//
// Sweeps the chunk size well beyond the paper's two values (32/64 MB) to
// expose both ends: too-large chunks underuse the slots; too-small chunks
// drown in per-task startup.
#include <benchmark/benchmark.h>

#include <iostream>

#include "bench_common.h"
#include "geo/geolife.h"
#include "gepeto/kmeans.h"
#include "mapreduce/dfs.h"
#include "mapreduce/scheduler.h"

namespace {

using namespace gepeto;
using namespace gepeto::bench;

void reproduce_chunksize_ablation() {
  print_banner("Ablation — chunk size (Sec. VI)",
               "32 MB chunks beat 64 MB on the 66/128 MB datasets: more map "
               "tasks, better slot utilization");
  const auto& world = world178();

  Table table("one k-means iteration vs chunk size (7 nodes, 28 map slots... 14)");
  table.header({"chunk size", "map tasks", "sim map", "sim total",
                "data-local maps", "startup share"});

  const std::size_t scale_div = paper_scale() ? 1 : 64;
  for (std::size_t mb : {4, 8, 16, 32, 64, 128}) {
    const std::size_t chunk = mb * mr::kMiB / scale_div;
    auto cluster = parapluie(7, chunk);
    mr::Dfs dfs(cluster);
    geo::dataset_to_dfs(dfs, "/in", world.data, 2);

    core::KMeansConfig config;
    config.k = 10;
    config.seed = 31;
    config.max_iterations = 1;
    config.convergence_delta_m = 0.0;
    const auto r =
        core::kmeans_mapreduce(dfs, cluster, "/in/", "/clusters", config);
    const auto& jr = r.totals;
    const double startup_share =
        cluster.task_startup_seconds * jr.num_map_tasks /
        static_cast<double>(cluster.total_map_slots()) / jr.sim_map_seconds;
    table.row({format_bytes(chunk), std::to_string(jr.num_map_tasks),
               format_seconds(jr.sim_map_seconds),
               format_seconds(jr.sim_seconds),
               std::to_string(jr.data_local_maps),
               format_double(100.0 * startup_share, 0) + "%"});
  }
  table.print(std::cout);
  std::cout << "shape: a sweet spot below 64 MB (the paper saw 32 MB < 64 "
               "MB); very small chunks pay startup per task.\n";
}


void BM_ScheduleMapPhase(benchmark::State& state) {
  auto cluster = parapluie(7);
  std::vector<mr::MapTaskCost> tasks;
  for (int i = 0; i < state.range(0); ++i) {
    mr::MapTaskCost t;
    t.input_bytes = 8 << 20;
    t.cpu_seconds = 0.5 + 0.01 * i;
    t.replica_nodes = {i % 7, (i + 2) % 7, (i + 4) % 7};
    tasks.push_back(t);
  }
  for (auto _ : state) {
    auto s = mr::schedule_map_phase(cluster, tasks);
    benchmark::DoNotOptimize(s.makespan);
  }
}
BENCHMARK(BM_ScheduleMapPhase)->Arg(32)->Arg(256);

}  // namespace

int main(int argc, char** argv) {
  ::benchmark::Initialize(&argc, argv);
  reproduce_chunksize_ablation();
  ::benchmark::RunSpecifiedBenchmarks();
  return 0;
}
