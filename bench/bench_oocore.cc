// Out-of-core shuffle at "millions of traces" scale: a Table-III-style
// k-means iteration over columnar GeoLife-scale inputs replicated x1 / x10 /
// x100 (fresh user ids per replica), run with and without a sort memory
// budget (mr::JobConfig::sort_memory_budget_bytes).
//
// Expected shape: at every scale the budgeted run spills sorted runs to
// scratch disk and external-merges them, its peak RSS stays bounded while
// the in-memory run's grows with the data, and the output centroids are
// byte-identical across budgets and across the thread / process backends
// (the x1 rows check that literally).
//
// Peak RSS is measured per configuration via Linux's /proc/self/clear_refs
// "5" reset of the VmHWM high-water mark; where that is unavailable the
// column degrades to the process-lifetime maximum (monotonic across rows).
#include <benchmark/benchmark.h>

#include <cstdint>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "bench_common.h"
#include "common/stopwatch.h"
#include "geo/geolife.h"
#include "gepeto/kmeans.h"
#include "mapreduce/dfs.h"
#include "storage/colfile.h"

namespace {

using namespace gepeto;
using namespace gepeto::bench;

// --- peak RSS ---------------------------------------------------------------

/// VmHWM from /proc/self/status, in bytes (0 if unreadable).
std::uint64_t peak_rss_bytes() {
  std::ifstream in("/proc/self/status");
  std::string line;
  while (std::getline(in, line)) {
    if (line.rfind("VmHWM:", 0) == 0) {
      std::istringstream fields(line.substr(6));
      std::uint64_t kb = 0;
      fields >> kb;
      return kb * 1024;
    }
  }
  return 0;
}

/// Reset the high-water mark to the current RSS. Returns false where the
/// kernel does not support it (the measurement then stays monotonic).
bool reset_peak_rss() {
  std::ofstream out("/proc/self/clear_refs");
  if (!out.good()) return false;
  out << "5";
  return out.good();
}

// --- replicated columnar ingest ---------------------------------------------

/// Write `replicas` id-shifted copies of the base dataset under `prefix`,
/// one columnar file per replica — only one encoder block is ever resident,
/// so ingest memory does not scale with the replica count.
std::uint64_t ingest_replicated(mr::Dfs& dfs, const std::string& prefix,
                                const geo::GeolocatedDataset& base,
                                int replicas) {
  std::uint64_t traces = 0;
  for (int r = 0; r < replicas; ++r) {
    storage::ColumnarWriter writer;
    for (const auto& [uid, trail] : base) {
      for (geo::MobilityTrace t : trail) {
        t.user_id = uid + r * 1'000'000;
        writer.add(t);
      }
    }
    traces += writer.records_added();
    char name[32];
    std::snprintf(name, sizeof(name), "/points-%05d", r);
    dfs.put(prefix + name, writer.finish());
  }
  return traces;
}

// --- the experiment ----------------------------------------------------------

struct RunOutcome {
  core::KMeansResult result;
  double wall_seconds = 0.0;
  std::uint64_t peak_rss = 0;
  std::string centroid_lines;
};

RunOutcome run_iteration(mr::Dfs& dfs, const mr::ClusterConfig& cluster,
                         std::uint64_t budget) {
  core::KMeansConfig config;
  config.k = 10;
  config.seed = 11;
  config.max_iterations = 1;
  config.convergence_delta_m = 0.0;  // exactly one iteration
  config.columnar_input = true;      // streaming init + SSE: bounded driver RSS
  config.sort_memory_budget_bytes = budget;

  RunOutcome out;
  const bool hwm_reset = reset_peak_rss();
  Stopwatch sw;
  out.result = core::kmeans_mapreduce(dfs, cluster, "/in/", "/clusters", config);
  out.wall_seconds = sw.seconds();
  out.peak_rss = hwm_reset ? peak_rss_bytes() : 0;
  out.centroid_lines = core::centroids_to_lines(out.result.centroids);
  dfs.remove_prefix("/clusters/");
  return out;
}

/// Returns false if any byte-identity check fails (the CI smoke run treats
/// that as a hard failure, not just a "NO!" cell in the table).
bool reproduce_oocore() {
  print_banner(
      "Out-of-core shuffle — Table III k-means beyond RAM",
      "x100 GeoLife-scale iteration under a sort budget far below the "
      "shuffle volume; bytes identical to the in-memory run");

  const bool paper = paper_scale();
  // Base dataset: the paper's 90-user / "66 MB" GeoLife at paper scale.
  const auto base = geo::generate_dataset(geo::scaled_config(
      paper ? 90 : 9, paper ? 1'050'000ULL : 20'000ULL, 2013));
  // Per-map-task shuffle buffer: far below any scale's intermediate data.
  const std::uint64_t budget = paper ? 8ull * mr::kMiB : 256ull * mr::kKiB;
  const std::size_t chunk = paper ? 32 * mr::kMiB : 256 * mr::kKiB;

  telemetry::BenchReporter report("oocore", scale_name());
  report.set_param("budget_bytes", static_cast<std::int64_t>(budget));

  Table table("k-means iteration, columnar input, x1/x10/x100");
  table.header({"scale", "traces", "input", "shuffle", "budget", "spill runs",
                "spilled", "ext merge", "wall", "peak RSS", "identical"});

  bool all_identical = true;
  std::string x1_reference;  // unbudgeted x1 centroids, the identity anchor
  for (const int scale : {1, 10, 100}) {
    auto cluster = parapluie(7, chunk);
    mr::Dfs dfs(cluster);
    const std::uint64_t traces =
        ingest_replicated(dfs, "/in", base.data, scale);
    std::uint64_t input_bytes = 0;
    for (const auto& p : dfs.list("/in/")) input_bytes += dfs.read(p).size();

    // The unbudgeted reference run: only at x1 (its whole point is to hold
    // the shuffle in memory; at x100 that is the configuration this
    // subsystem exists to avoid). Identity at larger scales follows from the
    // merge-order invariant, re-checked per commit by test_oocore_spill.
    std::string reference;
    if (scale == 1) {
      const auto ref = run_iteration(dfs, cluster, /*budget=*/0);
      reference = ref.centroid_lines;
      x1_reference = reference;
      table.row({"x1 (no budget)", format_count(traces),
                 format_bytes(input_bytes),
                 format_bytes(ref.result.totals.shuffle_bytes), "-", "0", "0 B",
                 "-", format_seconds(ref.wall_seconds),
                 ref.peak_rss ? format_bytes(ref.peak_rss) : "n/a", "-"});
      bill_job(report.add_row("x1-nobudget"), ref.result.totals)
          .set_param("scale", std::int64_t{1})
          .set_param("budget", std::int64_t{0})
          .set_param("bench_wall_seconds", ref.wall_seconds)
          .add_counter("peak_rss_bytes",
                       static_cast<std::int64_t>(ref.peak_rss));
    }

    const auto budgeted = run_iteration(dfs, cluster, budget);
    const auto& jr = budgeted.result.totals;
    const bool identical =
        scale == 1 ? budgeted.centroid_lines == reference : true;
    table.row(
        {"x" + std::to_string(scale), format_count(traces),
         format_bytes(input_bytes), format_bytes(jr.shuffle_bytes),
         format_bytes(budget), std::to_string(jr.disk_spill_runs),
         format_bytes(jr.disk_spill_bytes),
         format_seconds(jr.external_merge_seconds),
         format_seconds(budgeted.wall_seconds),
         budgeted.peak_rss ? format_bytes(budgeted.peak_rss) : "n/a",
         scale == 1 ? (identical ? "yes" : "NO!") : "(tested)"});
    if (scale == 1 && !identical) {
      all_identical = false;
      std::cerr << "ERROR: budgeted x1 centroids diverge from the in-memory "
                   "run\n";
    }
    bill_job(report.add_row("x" + std::to_string(scale)), jr)
        .set_param("scale", std::int64_t{scale})
        .set_param("budget", static_cast<std::int64_t>(budget))
        .set_param("bench_wall_seconds", budgeted.wall_seconds)
        .set_param("external_merge_seconds", jr.external_merge_seconds)
        .add_counter("traces", static_cast<std::int64_t>(traces))
        .add_counter("disk_spill_runs",
                     static_cast<std::int64_t>(jr.disk_spill_runs))
        .add_counter("disk_spill_bytes",
                     static_cast<std::int64_t>(jr.disk_spill_bytes))
        .add_counter("peak_rss_bytes",
                     static_cast<std::int64_t>(budgeted.peak_rss));
  }
  table.print(std::cout);

  // The same budgeted x1 run through the process backend: real fork()ed
  // workers, spill files handed over the wire by path, same bytes.
  {
    auto cluster = parapluie(7, chunk);
    cluster.backend = mr::ExecutionBackend::kProcess;
    cluster.process_workers = 4;
    mr::Dfs dfs(cluster);
    ingest_replicated(dfs, "/in", base.data, 1);
    const auto proc = run_iteration(dfs, cluster, budget);
    const bool identical = proc.centroid_lines == x1_reference;
    std::cout << "process backend, x1 budgeted: "
              << (identical ? "centroids byte-identical to the in-memory "
                              "thread-backend run"
                            : "CENTROIDS DIVERGE from the thread backend!")
              << " (" << proc.result.totals.disk_spill_runs
              << " disk runs spilled)\n";
    bill_job(report.add_row("x1-process"), proc.result.totals)
        .set_param("scale", std::int64_t{1})
        .set_param("budget", static_cast<std::int64_t>(budget))
        .set_param("identical", identical ? "yes" : "no")
        .set_param("bench_wall_seconds", proc.wall_seconds);
    if (!identical) {
      all_identical = false;
      std::cerr << "ERROR: process-backend centroids diverge\n";
    }
  }
  write_report(report);
  std::cout << "shape checks: spilled bytes ~= shuffle bytes at every scale; "
               "budgeted peak RSS grows with the *input* (in-memory DFS), "
               "not the shuffle; x1 centroids identical across budgets and "
               "backends.\n";
  return all_identical;
}

// Micro-benchmark: spill-file append + cursor-stream round trip throughput.
void BM_ColumnarEncodeDecode(benchmark::State& state) {
  const auto world = geo::generate_dataset(geo::scaled_config(4, 20'000, 7));
  const auto traces = world.data.all_traces();
  for (auto _ : state) {
    storage::ColumnarWriter writer;
    for (const auto& t : traces) writer.add(t);
    const std::string bytes = writer.finish();
    storage::ColumnarFile file(bytes);
    std::uint64_t n = 0;
    for (std::size_t b = 0; b < file.num_blocks(); ++b)
      n += file.read_block(b).size();
    benchmark::DoNotOptimize(n);
    state.SetBytesProcessed(state.bytes_processed() +
                            static_cast<std::int64_t>(bytes.size()));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(traces.size()));
}
BENCHMARK(BM_ColumnarEncodeDecode)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  ::benchmark::Initialize(&argc, argv);
  const bool ok = reproduce_oocore();
  ::benchmark::RunSpecifiedBenchmarks();
  return ok ? 0 : 1;
}
