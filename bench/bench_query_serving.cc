// Query-serving load bench: concurrent Zipf-skewed k-NN / range / locate
// traffic against the packed STR index, at several index sizes and thread
// counts, with live epoch swaps under load.
//
// Three experiments:
//   1. Size sweep (single thread): STR bulk-load throughput and query QPS
//      as the index grows to GeoLife scale (1 M points at paper scale).
//   2. Thread sweep on the largest index: QPS from 1..8 threads. A sampled
//      brute-force oracle hard-checks every verified answer byte-for-byte
//      (hex-float serialization, so bit-identical or fail).
//   3. Live rebuild: 8 reader threads under load while a swapper publishes
//      3 new snapshots. Every answer carries its epoch and is verified
//      against the snapshot of that epoch; zero failed or misrouted
//      queries allowed.
//
// Hard checks (exit 1 on violation): any oracle mismatch, a swap run with
// fewer than 3 swaps or any verification failure. The 1->N thread QPS
// scaling check (> 1x) only applies when the host actually has multiple
// cores.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cinttypes>
#include <cmath>
#include <cstdio>
#include <functional>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "common/random.h"
#include "common/stopwatch.h"
#include "serving/packed_rtree.h"
#include "serving/query_engine.h"
#include "telemetry/metrics.h"

namespace {

using namespace gepeto;
using namespace gepeto::bench;
using serving::IndexSnapshot;
using serving::PackedRTree;
using serving::QueryEngine;
using serving::ServingPoint;

// --- workload ---------------------------------------------------------------

constexpr int kHotspots = 64;
constexpr double kZipfS = 1.1;
constexpr std::uint32_t kKnnK = 8;
// Queries jitter on a quantized grid around their hotspot so a fraction of
// the Zipf-skewed stream repeats exactly — that is what exercises the cache.
constexpr int kJitterCells = 24;

struct Hotspots {
  std::vector<double> lat, lon, cdf;
};

Hotspots make_hotspots(std::uint64_t seed) {
  Rng rng(seed);
  Hotspots h;
  double total = 0;
  for (int i = 0; i < kHotspots; ++i) {
    h.lat.push_back(rng.uniform(39.2, 40.6));
    h.lon.push_back(rng.uniform(115.8, 117.2));
    total += 1.0 / std::pow(static_cast<double>(i + 1), kZipfS);
    h.cdf.push_back(total);
  }
  for (double& c : h.cdf) c /= total;
  return h;
}

int pick_hotspot(const Hotspots& h, Rng& rng) {
  const double u = rng.uniform();
  return static_cast<int>(
      std::lower_bound(h.cdf.begin(), h.cdf.end(), u) - h.cdf.begin());
}

/// Points cluster around the hotspots (80%) with a uniform background, so
/// the skewed queries hit populated regions.
std::vector<ServingPoint> make_points(std::size_t n, const Hotspots& h,
                                      std::uint64_t seed) {
  Rng rng(seed);
  std::vector<ServingPoint> pts;
  pts.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    double lat, lon;
    if (rng.uniform() < 0.8) {
      const int s = static_cast<int>(rng.uniform_u64(kHotspots));
      lat = h.lat[s] + rng.uniform(-0.03, 0.03);
      lon = h.lon[s] + rng.uniform(-0.03, 0.03);
    } else {
      lat = rng.uniform(39.0, 40.8);
      lon = rng.uniform(115.5, 117.5);
    }
    pts.push_back({lat, lon, static_cast<std::uint64_t>(i), 0.0, 1});
  }
  return pts;
}

struct Query {
  int kind = 0;  // 0 knn, 1 range, 2 locate
  double lat = 0, lon = 0;
  index::Rect box;
};

Query gen_query(const Hotspots& h, Rng& rng) {
  Query q;
  const int s = pick_hotspot(h, rng);
  // Quantized jitter: cell centers repeat, so hot queries recur exactly.
  const auto cx = static_cast<double>(rng.uniform_u64(kJitterCells));
  const auto cy = static_cast<double>(rng.uniform_u64(kJitterCells));
  q.lat = h.lat[s] + (cx / kJitterCells - 0.5) * 0.04;
  q.lon = h.lon[s] + (cy / kJitterCells - 0.5) * 0.04;
  const double mix = rng.uniform();
  if (mix < 0.5) {
    q.kind = 0;  // 50% knn
  } else if (mix < 0.8) {
    q.kind = 1;  // 30% range
    q.box = index::Rect::of(q.lat, q.lon, q.lat + 0.01, q.lon + 0.01);
  } else {
    q.kind = 2;  // 20% locate
  }
  return q;
}

// --- brute-force oracle -----------------------------------------------------

bool neighbor_less(const PackedRTree::Neighbor& a,
                   const PackedRTree::Neighbor& b) {
  if (a.dist2 != b.dist2) return a.dist2 < b.dist2;
  if (a.point.id != b.point.id) return a.point.id < b.point.id;
  if (a.point.lat != b.point.lat) return a.point.lat < b.point.lat;
  return a.point.lon < b.point.lon;
}

/// Hex-float serialization: two answers compare equal iff they are
/// bit-identical, which is the bench's byte-identity oracle check.
std::string serialize_neighbors(
    const std::vector<PackedRTree::Neighbor>& ns) {
  std::string out;
  char buf[80];
  for (const auto& n : ns) {
    std::snprintf(buf, sizeof(buf), "%" PRIu64 ":%a;", n.point.id, n.dist2);
    out += buf;
  }
  return out;
}

std::string serialize_points(const std::vector<ServingPoint>& ps) {
  std::string out;
  char buf[96];
  for (const auto& p : ps) {
    std::snprintf(buf, sizeof(buf), "%" PRIu64 ":%a:%a;", p.id, p.lat, p.lon);
    out += buf;
  }
  return out;
}

std::string oracle_knn(const IndexSnapshot& snap, double lat, double lon,
                       std::uint32_t k) {
  std::vector<PackedRTree::Neighbor> all;
  all.reserve(snap.tree.size());
  for (const auto& p : snap.tree.points()) {
    const double dlat = p.lat - lat, dlon = p.lon - lon;
    all.push_back({dlat * dlat + dlon * dlon, p});
  }
  std::sort(all.begin(), all.end(), neighbor_less);
  if (all.size() > k) all.resize(k);
  return serialize_neighbors(all);
}

std::string oracle_range(const IndexSnapshot& snap, const index::Rect& box) {
  std::vector<ServingPoint> hit;
  for (const auto& p : snap.tree.points())
    if (box.contains(p.lat, p.lon)) hit.push_back(p);
  std::sort(hit.begin(), hit.end(),
            [](const ServingPoint& a, const ServingPoint& b) {
              if (a.id != b.id) return a.id < b.id;
              if (a.lat != b.lat) return a.lat < b.lat;
              return a.lon < b.lon;
            });
  return serialize_points(hit);
}

// --- load run ---------------------------------------------------------------

struct LoadStats {
  std::uint64_t queries = 0;
  std::uint64_t verified = 0;
  std::uint64_t mismatches = 0;
  std::uint64_t cache_hits = 0;
  double wall_seconds = 0.0;
  double p50_us = 0.0, p99_us = 0.0;
  double qps() const {
    return wall_seconds > 0 ? static_cast<double>(queries) / wall_seconds : 0;
  }
};

/// Drive `queries_per_thread` queries from each of `threads` workers.
/// `snapshots[e - 1]` is the oracle for epoch e; roughly every
/// `verify_stride`-th query is checked against it. When `swapper` is set it
/// runs concurrently with the readers (the live-rebuild experiment).
LoadStats run_load(
    QueryEngine& engine,
    const std::vector<std::shared_ptr<const IndexSnapshot>>& snapshots,
    const Hotspots& hotspots, int threads, std::uint64_t queries_per_thread,
    std::uint64_t verify_stride, std::uint64_t seed,
    const std::function<void()>& swapper = {}) {
  std::atomic<std::uint64_t> mismatches{0};
  std::atomic<std::uint64_t> verified{0};
  std::atomic<std::uint64_t> cache_hits{0};
  std::vector<std::vector<double>> latencies(
      static_cast<std::size_t>(threads));

  Stopwatch wall;
  std::vector<std::thread> workers;
  for (int t = 0; t < threads; ++t) {
    workers.emplace_back([&, t] {
      Rng rng(seed + static_cast<std::uint64_t>(t) * 7919);
      auto& local = latencies[static_cast<std::size_t>(t)];
      local.reserve(queries_per_thread);
      for (std::uint64_t i = 0; i < queries_per_thread; ++i) {
        const Query q = gen_query(hotspots, rng);
        const bool verify = verify_stride > 0 && i % verify_stride == 0;
        Stopwatch sw;
        if (q.kind == 0) {
          const auto r = engine.knn(q.lat, q.lon, kKnnK);
          local.push_back(sw.seconds());
          if (r.cache_hit) cache_hits.fetch_add(1);
          if (verify) {
            verified.fetch_add(1);
            if (r.epoch == 0 || r.epoch > snapshots.size() ||
                serialize_neighbors(r.neighbors) !=
                    oracle_knn(*snapshots[r.epoch - 1], q.lat, q.lon, kKnnK))
              mismatches.fetch_add(1);
          }
        } else if (q.kind == 1) {
          const auto r = engine.range(q.box);
          local.push_back(sw.seconds());
          if (r.cache_hit) cache_hits.fetch_add(1);
          if (verify) {
            verified.fetch_add(1);
            if (r.epoch == 0 || r.epoch > snapshots.size() ||
                serialize_points(r.points) !=
                    oracle_range(*snapshots[r.epoch - 1], q.box))
              mismatches.fetch_add(1);
          }
        } else {
          const auto r = engine.locate(q.lat, q.lon);
          local.push_back(sw.seconds());
          if (r.cache_hit) cache_hits.fetch_add(1);
          if (verify) {
            verified.fetch_add(1);
            // locate == knn with k=1 plus haversine decoration; check the
            // nearest id against the oracle's first neighbor.
            const std::string want =
                oracle_knn(*snapshots[r.epoch - 1], q.lat, q.lon, 1);
            char buf[80];
            std::snprintf(buf, sizeof(buf), "%" PRIu64 ":", r.point.id);
            if (r.epoch == 0 || r.epoch > snapshots.size() || !r.found ||
                want.rfind(buf, 0) != 0)
              mismatches.fetch_add(1);
          }
        }
      }
    });
  }
  if (swapper) swapper();
  for (auto& w : workers) w.join();

  LoadStats stats;
  stats.wall_seconds = wall.seconds();
  stats.queries =
      static_cast<std::uint64_t>(threads) * queries_per_thread;
  stats.verified = verified.load();
  stats.mismatches = mismatches.load();
  stats.cache_hits = cache_hits.load();
  std::vector<double> all;
  for (auto& l : latencies) all.insert(all.end(), l.begin(), l.end());
  if (!all.empty()) {
    std::sort(all.begin(), all.end());
    stats.p50_us = all[all.size() / 2] * 1e6;
    stats.p99_us = all[std::min(all.size() - 1, all.size() * 99 / 100)] * 1e6;
  }
  return stats;
}

/// verify_stride targeting ~`target` verified queries per worker stream.
std::uint64_t stride_for(std::uint64_t queries_per_thread,
                         std::uint64_t target) {
  return std::max<std::uint64_t>(1, queries_per_thread / target);
}

// --- the experiment ---------------------------------------------------------

bool reproduce_query_serving() {
  print_banner(
      "Geo-query serving layer — concurrent k-NN/range/locate + epoch swap",
      "immutable STR-packed index served lock-free to N threads, "
      "byte-identical to brute force, swapped live without failed queries");

  const bool paper = paper_scale();
  const std::vector<std::size_t> sizes =
      paper ? std::vector<std::size_t>{10'000, 100'000, 1'000'000}
            : std::vector<std::size_t>{2'000, 10'000};
  const std::uint64_t queries_per_thread = paper ? 20'000 : 4'000;
  const int max_threads = 8;
  const unsigned hw = std::thread::hardware_concurrency();

  const Hotspots hotspots = make_hotspots(2013);
  telemetry::BenchReporter report("query_serving", scale_name());
  report.set_param("knn_k", static_cast<std::int64_t>(kKnnK));
  report.set_param("hotspots", static_cast<std::int64_t>(kHotspots));
  report.set_param("zipf_s", kZipfS);
  report.set_param("hardware_threads", static_cast<std::int64_t>(hw));

  bool ok = true;

  // -- 1. size sweep, single thread -----------------------------------------
  Table sizes_table("index size sweep (1 thread, Zipf mix 50/30/20)");
  sizes_table.header({"points", "build", "pts/s", "height", "QPS", "p50",
                      "p99", "hit rate", "verified", "oracle"});
  std::shared_ptr<const IndexSnapshot> largest;
  for (const std::size_t n : sizes) {
    auto snap = std::make_shared<IndexSnapshot>();
    Stopwatch build_sw;
    snap->tree = PackedRTree::build(make_points(n, hotspots, 4242 + n));
    const double build_s = build_sw.seconds();
    snap->tree.check_invariants();
    snap->source = "bench:" + std::to_string(n);

    telemetry::MetricsRegistry metrics;
    serving::ServingConfig config;
    config.metrics = &metrics;
    QueryEngine engine(config);
    engine.publish(snap);
    const std::vector<std::shared_ptr<const IndexSnapshot>> snaps{snap};
    const auto stats =
        run_load(engine, snaps, hotspots, 1, queries_per_thread,
                 stride_for(queries_per_thread, paper ? 150 : 400), 99 + n);
    ok = ok && stats.mismatches == 0;
    const double hit_rate =
        static_cast<double>(stats.cache_hits) /
        static_cast<double>(std::max<std::uint64_t>(1, stats.queries));
    sizes_table.row(
        {format_count(n), format_seconds(build_s),
         format_count(static_cast<std::uint64_t>(
             static_cast<double>(n) / std::max(build_s, 1e-9))),
         std::to_string(snap->tree.height()),
         format_count(static_cast<std::uint64_t>(stats.qps())),
         format_double(stats.p50_us, 1) + " us",
         format_double(stats.p99_us, 1) + " us",
         format_double(100 * hit_rate, 1) + "%",
         format_count(stats.verified),
         stats.mismatches == 0 ? "ok" : "MISMATCH"});
    report.add_row("size_" + std::to_string(n))
        .set_param("points", static_cast<std::int64_t>(n))
        .set_param("threads", static_cast<std::int64_t>(1))
        .set_param("build_seconds", build_s)
        .set_param("qps", stats.qps())
        .set_param("p50_us", stats.p50_us)
        .set_param("p99_us", stats.p99_us)
        .set_param("cache_hit_rate", hit_rate)
        .set_wall_seconds(stats.wall_seconds)
        .add_counter("queries", static_cast<std::int64_t>(stats.queries))
        .add_counter("verified", static_cast<std::int64_t>(stats.verified))
        .add_counter("oracle_mismatches",
                     static_cast<std::int64_t>(stats.mismatches));
    largest = snap;
  }
  sizes_table.print(std::cout);

  // -- 2. thread sweep on the largest index ----------------------------------
  Table threads_table("thread sweep, " + format_count(largest->tree.size()) +
                      " points");
  threads_table.header(
      {"threads", "QPS", "speedup", "p50", "p99", "hit rate", "oracle"});
  double qps1 = 0;
  double qps_max = 0;
  for (int threads = 1; threads <= max_threads; threads *= 2) {
    QueryEngine engine;
    engine.publish(largest);
    const std::vector<std::shared_ptr<const IndexSnapshot>> snaps{largest};
    const auto stats =
        run_load(engine, snaps, hotspots, threads, queries_per_thread,
                 stride_for(queries_per_thread, paper ? 40 : 100),
                 7'000 + static_cast<std::uint64_t>(threads));
    ok = ok && stats.mismatches == 0;
    if (threads == 1) qps1 = stats.qps();
    qps_max = stats.qps();
    const double hit_rate =
        static_cast<double>(stats.cache_hits) /
        static_cast<double>(std::max<std::uint64_t>(1, stats.queries));
    threads_table.row(
        {std::to_string(threads),
         format_count(static_cast<std::uint64_t>(stats.qps())),
         format_double(stats.qps() / std::max(qps1, 1e-9), 2) + "x",
         format_double(stats.p50_us, 1) + " us",
         format_double(stats.p99_us, 1) + " us",
         format_double(100 * hit_rate, 1) + "%",
         stats.mismatches == 0 ? "ok" : "MISMATCH"});
    report.add_row("threads_" + std::to_string(threads))
        .set_param("points",
                   static_cast<std::int64_t>(largest->tree.size()))
        .set_param("threads", static_cast<std::int64_t>(threads))
        .set_param("qps", stats.qps())
        .set_param("p50_us", stats.p50_us)
        .set_param("p99_us", stats.p99_us)
        .set_param("cache_hit_rate", hit_rate)
        .set_wall_seconds(stats.wall_seconds)
        .add_counter("queries", static_cast<std::int64_t>(stats.queries))
        .add_counter("verified", static_cast<std::int64_t>(stats.verified))
        .add_counter("oracle_mismatches",
                     static_cast<std::int64_t>(stats.mismatches));
  }
  threads_table.print(std::cout);
  if (hw > 1) {
    if (qps_max <= qps1) {
      std::cerr << "HARD CHECK FAILED: QPS did not scale 1 -> " << max_threads
                << " threads (" << qps1 << " -> " << qps_max << ")\n";
      ok = false;
    }
  } else {
    std::cout << "(single-core host: 1 -> " << max_threads
              << " thread QPS scaling reported, not enforced)\n";
  }

  // -- 3. live epoch swaps under load ----------------------------------------
  const std::size_t swap_size = sizes.back();
  std::vector<std::shared_ptr<const IndexSnapshot>> generations;
  for (int e = 0; e < 4; ++e) {
    auto s = std::make_shared<IndexSnapshot>();
    s->tree = PackedRTree::build(
        make_points(swap_size, hotspots, 31'000 + static_cast<std::size_t>(e)));
    s->source = "gen" + std::to_string(e);
    generations.push_back(std::move(s));
  }
  telemetry::MetricsRegistry swap_metrics;
  serving::ServingConfig swap_config;
  swap_config.metrics = &swap_metrics;
  QueryEngine engine(swap_config);
  engine.publish(generations[0]);

  const auto swapper = [&] {
    for (std::size_t e = 1; e < generations.size(); ++e) {
      std::this_thread::sleep_for(std::chrono::milliseconds(25));
      engine.publish(generations[e]);
    }
  };
  const auto stats = run_load(
      engine, generations, hotspots, max_threads, queries_per_thread,
      stride_for(queries_per_thread, paper ? 30 : 60), 555, swapper);
  const std::uint64_t swaps =
      static_cast<std::uint64_t>(engine.epoch()) - 1;

  Table swap_table("live rebuild: " + std::to_string(max_threads) +
                   " readers, " + std::to_string(swaps) + " swaps mid-load");
  swap_table.header(
      {"queries", "QPS", "p99", "swaps", "verified", "failed"});
  swap_table.row({format_count(stats.queries),
                  format_count(static_cast<std::uint64_t>(stats.qps())),
                  format_double(stats.p99_us, 1) + " us",
                  std::to_string(swaps), format_count(stats.verified),
                  std::to_string(stats.mismatches)});
  swap_table.print(std::cout);
  report.add_row("epoch_swaps")
      .set_param("threads", static_cast<std::int64_t>(max_threads))
      .set_param("qps", stats.qps())
      .set_param("p99_us", stats.p99_us)
      .set_wall_seconds(stats.wall_seconds)
      .add_counter("queries", static_cast<std::int64_t>(stats.queries))
      .add_counter("verified", static_cast<std::int64_t>(stats.verified))
      .add_counter("oracle_mismatches",
                   static_cast<std::int64_t>(stats.mismatches))
      .add_counter("epoch_swaps", static_cast<std::int64_t>(swaps));
  if (swaps < 3) {
    std::cerr << "HARD CHECK FAILED: only " << swaps
              << " epoch swaps happened under load (need >= 3)\n";
    ok = false;
  }
  if (stats.mismatches != 0) {
    std::cerr << "HARD CHECK FAILED: " << stats.mismatches
              << " queries failed verification during live swaps\n";
    ok = false;
  }
  // The engine's own telemetry must agree it answered everything.
  const auto* q_total = swap_metrics.find_counter("serving_queries_total");
  ok = ok && q_total != nullptr &&
       q_total->value() >= static_cast<std::int64_t>(stats.queries);

  write_report(report);
  std::cout << (ok ? "ALL ORACLE CHECKS PASSED\n"
                   : "ORACLE CHECKS FAILED\n");
  return ok;
}

// --- micro sweeps -----------------------------------------------------------

void BM_PackedKnn(benchmark::State& state) {
  const Hotspots h = make_hotspots(2013);
  const auto n = static_cast<std::size_t>(state.range(0));
  const PackedRTree tree = PackedRTree::build(make_points(n, h, 1));
  Rng rng(9);
  for (auto _ : state) {
    const Query q = gen_query(h, rng);
    benchmark::DoNotOptimize(tree.knn(q.lat, q.lon, kKnnK));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_PackedKnn)->Arg(10'000)->Arg(100'000)->Unit(benchmark::kMicrosecond);

void BM_StrBulkLoad(benchmark::State& state) {
  const Hotspots h = make_hotspots(2013);
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto pts = make_points(n, h, 2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(PackedRTree::build(pts));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}
BENCHMARK(BM_StrBulkLoad)->Arg(10'000)->Arg(100'000)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  ::benchmark::Initialize(&argc, argv);
  const bool ok = reproduce_query_serving();
  ::benchmark::RunSpecifiedBenchmarks();
  return ok ? 0 : 1;
}
