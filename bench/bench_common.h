// Shared helpers for the benchmark harness.
//
// Every bench binary reproduces one table or figure of the paper. Scale is
// controlled by the GEPETO_SCALE environment variable:
//   * "paper" (default) — the paper's dataset sizes: a 178-user synthetic
//     GeoLife of ~2,033,686 traces ("128 MB" dataset) and a 90-user subset
//     of ~1,050,000 traces ("66 MB" dataset);
//   * "smoke"           — ~50x smaller, for quick iteration.
//
// The modeled cluster defaults to the paper's testbed: the Parapluie
// deployment with 7 worker nodes (1.7 GHz 2013-era cores -> compute_scale
// maps host CPU seconds to modeled node seconds).
#pragma once

#include <cstdlib>
#include <cstring>
#include <iostream>
#include <string>

#include "common/table.h"
#include "geo/generator.h"
#include "geo/stats.h"
#include "mapreduce/cluster.h"

namespace gepeto::bench {

inline bool paper_scale() {
  const char* env = std::getenv("GEPETO_SCALE");
  return env == nullptr || std::strcmp(env, "paper") == 0;
}

/// The "128 MB" dataset: 178 users, ~2.03 M traces at paper scale.
inline const geo::SyntheticDataset& world178() {
  static const geo::SyntheticDataset world = [] {
    const bool paper = paper_scale();
    return geo::generate_dataset(geo::scaled_config(
        paper ? 178 : 18, paper ? 2'033'686ULL : 40'000ULL, 2013));
  }();
  return world;
}

/// The "66 MB" dataset: 90 users, ~1.05 M traces at paper scale.
inline const geo::SyntheticDataset& world90() {
  static const geo::SyntheticDataset world = [] {
    const bool paper = paper_scale();
    return geo::generate_dataset(geo::scaled_config(
        paper ? 90 : 9, paper ? 1'050'000ULL : 20'000ULL, 2013));
  }();
  return world;
}

/// The paper's Hadoop deployment on the Parapluie cluster: dedicated
/// namenode + jobtracker (implicit) and `nodes` datanode/tasktracker
/// machines (7 in the k-means experiments, up to 30 for sampling).
inline mr::ClusterConfig parapluie(int nodes = 7,
                                   std::size_t chunk = 64 * mr::kMiB) {
  mr::ClusterConfig c;
  c.num_worker_nodes = nodes;
  c.nodes_per_rack = 16;  // Parapluie nodes sit in a few dense racks
  c.map_slots_per_node = 2;
  c.reduce_slots_per_node = 2;
  c.chunk_size = chunk;
  c.replication = 3;
  // 2013 commodity hardware: SATA disks, 1 GbE intra-rack.
  c.disk_bandwidth_Bps = 90e6;
  c.intra_rack_Bps = 110e6;
  c.inter_rack_Bps = 45e6;
  c.task_startup_seconds = 1.0;  // JVM startup per task attempt
  c.job_startup_seconds = 4.0;   // job submission + scheduling
  // Models the per-record cost of the 2013 Hadoop/JVM stack (record
  // readers, Writable (de)serialization, interpreted hot paths: tens of
  // microseconds per text record) relative to this native engine
  // (sub-microsecond), on a 1.7 GHz 2010 Opteron core.
  c.compute_scale = 60.0;
  c.seed = 0xC0FFEE;
  return c;
}

inline void print_banner(const std::string& title,
                         const std::string& paper_claim) {
  std::cout << "\n################################################################\n"
            << "# " << title << "\n"
            << "# paper: " << paper_claim << "\n"
            << "# scale: " << (paper_scale() ? "paper" : "smoke")
            << "  (set GEPETO_SCALE=smoke for a quick run)\n"
            << "################################################################\n";
}

inline void describe_dataset(const char* name,
                             const geo::GeolocatedDataset& data) {
  std::cout << "dataset " << name << ": "
            << geo::describe(geo::compute_stats(data));
}

}  // namespace gepeto::bench
