// Shared helpers for the benchmark harness.
//
// Every bench binary reproduces one table or figure of the paper. Scale is
// controlled by the GEPETO_SCALE environment variable:
//   * "paper" (default) — the paper's dataset sizes: a 178-user synthetic
//     GeoLife of ~2,033,686 traces ("128 MB" dataset) and a 90-user subset
//     of ~1,050,000 traces ("66 MB" dataset);
//   * "smoke"           — ~50x smaller, for quick iteration.
//
// The modeled cluster defaults to the paper's testbed: the Parapluie
// deployment with 7 worker nodes (1.7 GHz 2013-era cores -> compute_scale
// maps host CPU seconds to modeled node seconds).
#pragma once

#include <cstdlib>
#include <cstring>
#include <iostream>
#include <string>

#include "common/table.h"
#include "geo/generator.h"
#include "geo/stats.h"
#include "mapreduce/cluster.h"
#include "mapreduce/job.h"
#include "telemetry/bench_report.h"

namespace gepeto::bench {

/// True at paper scale, false at smoke scale. Anything other than "paper",
/// "smoke", or unset/empty (= paper) is a hard error: a typo like
/// GEPETO_SCALE=Smoke silently running the multi-minute paper configuration
/// is exactly the kind of wasted benchmark run this refuses to start.
inline bool paper_scale() {
  const char* env = std::getenv("GEPETO_SCALE");
  if (env == nullptr || *env == '\0' || std::strcmp(env, "paper") == 0)
    return true;
  if (std::strcmp(env, "smoke") == 0) return false;
  std::cerr << "GEPETO_SCALE='" << env
            << "' is not a known scale; use 'paper' or 'smoke'.\n";
  std::exit(2);
}

inline const char* scale_name() { return paper_scale() ? "paper" : "smoke"; }

/// The "128 MB" dataset: 178 users, ~2.03 M traces at paper scale.
inline const geo::SyntheticDataset& world178() {
  static const geo::SyntheticDataset world = [] {
    const bool paper = paper_scale();
    return geo::generate_dataset(geo::scaled_config(
        paper ? 178 : 18, paper ? 2'033'686ULL : 40'000ULL, 2013));
  }();
  return world;
}

/// The "66 MB" dataset: 90 users, ~1.05 M traces at paper scale.
inline const geo::SyntheticDataset& world90() {
  static const geo::SyntheticDataset world = [] {
    const bool paper = paper_scale();
    return geo::generate_dataset(geo::scaled_config(
        paper ? 90 : 9, paper ? 1'050'000ULL : 20'000ULL, 2013));
  }();
  return world;
}

/// The paper's Hadoop deployment on the Parapluie cluster: dedicated
/// namenode + jobtracker (implicit) and `nodes` datanode/tasktracker
/// machines (7 in the k-means experiments, up to 30 for sampling).
inline mr::ClusterConfig parapluie(int nodes = 7,
                                   std::size_t chunk = 64 * mr::kMiB) {
  mr::ClusterConfig c;
  c.num_worker_nodes = nodes;
  c.nodes_per_rack = 16;  // Parapluie nodes sit in a few dense racks
  c.map_slots_per_node = 2;
  c.reduce_slots_per_node = 2;
  c.chunk_size = chunk;
  c.replication = 3;
  // 2013 commodity hardware: SATA disks, 1 GbE intra-rack.
  c.disk_bandwidth_Bps = 90e6;
  c.intra_rack_Bps = 110e6;
  c.inter_rack_Bps = 45e6;
  c.task_startup_seconds = 1.0;  // JVM startup per task attempt
  c.job_startup_seconds = 4.0;   // job submission + scheduling
  // Models the per-record cost of the 2013 Hadoop/JVM stack (record
  // readers, Writable (de)serialization, interpreted hot paths: tens of
  // microseconds per text record) relative to this native engine
  // (sub-microsecond), on a 1.7 GHz 2010 Opteron core.
  c.compute_scale = 60.0;
  c.seed = 0xC0FFEE;
  return c;
}

inline void print_banner(const std::string& title,
                         const std::string& paper_claim) {
  std::cout << "\n################################################################\n"
            << "# " << title << "\n"
            << "# paper: " << paper_claim << "\n"
            << "# scale: " << (paper_scale() ? "paper" : "smoke")
            << "  (set GEPETO_SCALE=smoke for a quick run)\n"
            << "################################################################\n";
}

inline void describe_dataset(const char* name,
                             const geo::GeolocatedDataset& data) {
  std::cout << "dataset " << name << ": "
            << geo::describe(geo::compute_stats(data));
}

/// Fill a BENCH_*.json row from one job's outcome (sim/wall seconds plus
/// the volume counters every table cares about).
inline telemetry::BenchReporter::Row& bill_job(
    telemetry::BenchReporter::Row& row, const mr::JobResult& jr) {
  row.set_sim_seconds(jr.sim_seconds)
      .set_wall_seconds(jr.real_seconds)
      .add_counter("map_tasks", jr.num_map_tasks)
      .add_counter("reduce_tasks", jr.num_reduce_tasks)
      .add_counter("input_bytes", static_cast<std::int64_t>(jr.input_bytes))
      .add_counter("shuffle_bytes",
                   static_cast<std::int64_t>(jr.shuffle_bytes))
      .add_counter("output_records",
                   static_cast<std::int64_t>(jr.output_records))
      .add_counter("output_bytes", static_cast<std::int64_t>(jr.output_bytes));
  if (jr.failed_task_attempts > 0)
    row.add_counter("failed_task_attempts", jr.failed_task_attempts);
  if (jr.spill_runs > 0) {
    // Shuffle breakdown: sorted runs merged and the wall time spent on the
    // map-side sort and the reduce-side k-way merge.
    row.add_counter("spill_runs", static_cast<std::int64_t>(jr.spill_runs))
        .set_param("sort_seconds", jr.sort_seconds)
        .set_param("merge_seconds", jr.merge_seconds);
  }
  if (jr.map_parse_seconds > 0.0 || jr.map_compute_seconds > 0.0) {
    // Map-loop attribution: record decode/parse vs batch-kernel compute
    // (engine.h stripe timing) — proves where a map-phase win came from.
    row.set_param("map_parse_seconds", jr.map_parse_seconds)
        .set_param("map_compute_seconds", jr.map_compute_seconds);
  }
  return row;
}

/// Write the report and tell the reader where it landed.
inline void write_report(const telemetry::BenchReporter& report) {
  const std::string path = report.write();
  if (path.empty())
    std::cerr << "warning: could not write bench report\n";
  else
    std::cout << "bench report: " << path << "\n";
}

}  // namespace gepeto::bench
