// The privacy frontier: sanitizer strength vs what an adversary still
// learns, measured by the attack suite (ISSUE 10 tentpole bench).
//
// The "66 MB" world (~1.05 M traces at paper scale) is sanitized on the
// MapReduce engine under a sweep of mechanism strengths — spatial cloaking
// k in {2, 5, 10} and mix zones n in {2, 5, 8} — and every release is
//   * certified: the privacy-contract verifier must report zero violations
//     (a violation aborts the bench — a release that breaks its own
//     contract makes the frontier meaningless);
//   * attacked: the POI-fingerprint linking attack re-identifies the
//     release against a clean auxiliary release of the same population
//     (run_link_attack_flow, the JobFlow DAG), scored with generator
//     ground truth;
//   * priced: utility as mean location error and trace retention.
//
// The second attack, the k-anonymous OD matrix, sweeps its own k and
// reports the participant-vs-population utility split (od_utility): trip
// retention can look fine while avg participant retention collapses.
//
// Output: human tables plus BENCH_privacy_frontier.json with one row per
// sanitizer config carrying reidentification_rate and the utility columns.
#include <benchmark/benchmark.h>

#include <cstdlib>
#include <iostream>
#include <map>
#include <string>
#include <vector>

#include "bench_common.h"
#include "geo/geolife.h"
#include "gepeto/attacks/fingerprint.h"
#include "gepeto/attacks/od_matrix.h"
#include "gepeto/attacks/privacy_verifier.h"
#include "gepeto/metrics.h"
#include "gepeto/sanitize.h"
#include "mapreduce/dfs.h"

namespace {

using namespace gepeto;
using namespace gepeto::bench;

core::FingerprintConfig frontier_attack() {
  core::FingerprintConfig config;
  config.cluster.radius_m = 60;
  config.cluster.min_pts = 10;
  config.top_pois = 4;
  return config;
}

/// A contract violation invalidates every number downstream: abort loudly.
void require_clean(const core::PrivacyReport& report, const std::string& what) {
  if (report.ok()) return;
  std::cerr << "privacy contract violated by " << what << ": "
            << report.summary() << "\n";
  std::exit(1);
}

double sim_sum(std::initializer_list<const mr::JobResult*> jobs) {
  double s = 0;
  for (const auto* j : jobs) s += j->sim_seconds;
  return s;
}

void reproduce_frontier() {
  print_banner("Privacy frontier — sanitizer strength vs attack success",
               "\"evaluate the resulting trade-off between privacy and "
               "utility\" (Sec. VIII), at millions-of-traces scale (Sec. I)");
  const auto& world = world90();
  describe_dataset("66MB", world.data);

  const auto cluster = parapluie(7, 8 * mr::kMiB);
  mr::Dfs dfs(cluster);
  geo::dataset_to_dfs(dfs, "/orig", world.data, 3 * cluster.num_worker_nodes);
  // The release codec rounds to the 1e-6 degree grid; all ground truth
  // below uses the round-tripped dataset so error/retention measure the
  // sanitizer, not the codec.
  const auto original = geo::dataset_from_dfs(dfs, "/orig/");

  telemetry::BenchReporter report("privacy_frontier", scale_name());
  report.set_param("traces", static_cast<std::int64_t>(original.num_traces()));
  report.set_param("users", static_cast<std::int64_t>(original.num_users()));

  Table link_table("POI-fingerprint linking vs sanitizer strength");
  link_table.header({"release", "re-identified", "rate", "mean error",
                     "retention", "contract"});

  const auto fp_config = frontier_attack();
  auto attack_release =
      [&](const std::string& label, const std::string& probe_path,
          const geo::GeolocatedDataset& released, double sanitize_sim,
          const std::map<std::int32_t, std::int32_t>& probe_owner,
          std::uint64_t verifier_checks) {
        const auto atk =
            core::run_link_attack_flow(dfs, cluster, probe_path, "/orig/",
                                       "/atk/" + label, fp_config,
                                       probe_owner);
        const auto util = core::location_error(original, released);
        link_table.row(
            {label,
             std::to_string(atk.report.correct) + "/" +
                 std::to_string(atk.report.probes),
             format_double(atk.report.reidentification_rate, 3),
             format_double(util.mean_error_m, 0) + " m",
             format_double(100 * util.retention, 0) + "%",
             std::to_string(verifier_checks) + " checks ok"});
        bill_job(report.add_row(label)
                     .set_param("reidentification_rate",
                                atk.report.reidentification_rate)
                     .set_param("reidentified",
                                static_cast<std::int64_t>(atk.report.correct))
                     .set_param("probes",
                                static_cast<std::int64_t>(atk.report.probes))
                     .set_param("mean_error_m", util.mean_error_m)
                     .set_param("retention", util.retention)
                     .set_param("verifier_checks",
                                static_cast<std::int64_t>(verifier_checks)),
                 atk.link_job)
            .set_sim_seconds(sanitize_sim +
                             sim_sum({&atk.probe_fp_job, &atk.gallery_fp_job,
                                      &atk.link_job}));
      };

  // Baseline: the adversary links the clean release against itself — the
  // ceiling every sanitizer is measured against.
  attack_release("baseline", "/orig/", original, 0.0, {}, 0);

  for (const int k : {2, 5, 10}) {
    const std::string label = "cloak_k" + std::to_string(k);
    const double base_cell_m = 200.0;
    const int doublings = 5;
    const auto r = core::run_cloaking_jobs(dfs, cluster, "/orig/",
                                           "/" + label, k, base_cell_m,
                                           doublings);
    const auto released = geo::dataset_from_dfs(dfs, "/" + label + "/cloaked/");
    const auto verdict = core::verify_cloaking(
        original, released, core::CloakingContract{k, base_cell_m, doublings});
    require_clean(verdict, label);
    attack_release(label, "/" + label + "/cloaked/", released,
                   sim_sum({&r.census_job, &r.apply_job}), {}, verdict.checks);
  }

  for (const int n : {2, 5, 8}) {
    const std::string label = "mixzones_n" + std::to_string(n);
    const auto zones = core::pick_mix_zones(original, n, 300.0);
    // The sequential oracle supplies the evaluation-only pseudonym->owner
    // map (byte-identical to the jobs' release, see differential_privacy).
    const auto seq = core::apply_mix_zones(original, zones);
    const auto r =
        core::run_mix_zone_jobs(dfs, cluster, "/orig/", "/" + label, zones);
    const auto released = geo::dataset_from_dfs(dfs, "/" + label + "/mixed/");
    const auto verdict = core::verify_mix_zones_release(original, released,
                                                        zones);
    require_clean(verdict, label);
    attack_release(label, "/" + label + "/mixed/", released,
                   sim_sum({&r.census_job, &r.apply_job}),
                   std::map<std::int32_t, std::int32_t>(
                       seq.pseudonym_owner.begin(), seq.pseudonym_owner.end()),
                   verdict.checks);
  }
  link_table.print(std::cout);
  std::cout << "shape: re-identification falls monotonically with sanitizer "
               "strength while location error (cloaking) or trail "
               "fragmentation (mix zones) rises — the privacy frontier.\n";

  Table od_table("k-anonymous OD matrix — population vs participant utility");
  od_table.header({"k", "pairs", "trip ret", "pair ret", "participant cov",
                   "avg participant ret", "contract"});
  for (const int k : {2, 5, 10}) {
    core::OdConfig config;
    config.k = k;
    // OD zones coarse enough that distinct users actually share cell pairs
    // (district-sized, as aggregate mobility releases do); at fine grids the
    // matrix is all-suppressed at every k and the table reads 0 everywhere.
    config.cell_m = paper_scale() ? 2000.0 : 5000.0;
    const auto r = core::run_od_matrix_flow(dfs, cluster, "/orig/",
                                            "/od_k" + std::to_string(k),
                                            config);
    const auto verdict = core::verify_od_matrix(original, r.matrix, config);
    require_clean(verdict, "od_k" + std::to_string(k));
    const auto util =
        core::od_utility(core::extract_trips(original, config), r.matrix);
    od_table.row({std::to_string(k), std::to_string(r.matrix.entries.size()),
                  format_double(util.trip_retention, 3),
                  format_double(util.pair_retention, 3),
                  format_double(util.participant_coverage, 3),
                  format_double(util.avg_participant_retention, 3),
                  std::to_string(verdict.checks) + " checks ok"});
    bill_job(report.add_row("od_k" + std::to_string(k))
                 .set_param("od_k", static_cast<std::int64_t>(k))
                 .set_param("released_pairs",
                            static_cast<std::int64_t>(r.matrix.entries.size()))
                 .set_param("trip_retention", util.trip_retention)
                 .set_param("pair_retention", util.pair_retention)
                 .set_param("participant_coverage", util.participant_coverage)
                 .set_param("avg_participant_retention",
                            util.avg_participant_retention)
                 .set_param("verifier_checks",
                            static_cast<std::int64_t>(verdict.checks)),
             r.pairs_job)
        .set_sim_seconds(sim_sum({&r.trips_job, &r.pairs_job}));
  }
  od_table.print(std::cout);
  std::cout << "shape: population-side utility (trip retention) degrades "
               "slowly with k while participant-side utility collapses — "
               "the aggregate hides how unevenly suppression is paid.\n";

  write_report(report);
}

void BM_FingerprintDataset(benchmark::State& state) {
  const auto& world = world90();
  const auto config = frontier_attack();
  for (auto _ : state) {
    auto fps = core::fingerprint_dataset(world.data, config);
    benchmark::DoNotOptimize(fps);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(world.data.num_traces()));
}
BENCHMARK(BM_FingerprintDataset)->Unit(benchmark::kMillisecond);

void BM_ExtractTrips(benchmark::State& state) {
  const auto& world = world90();
  core::OdConfig config;
  config.k = static_cast<int>(state.range(0));
  for (auto _ : state) {
    auto matrix =
        core::build_od_matrix(core::extract_trips(world.data, config), config);
    benchmark::DoNotOptimize(matrix);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(world.data.num_traces()));
}
BENCHMARK(BM_ExtractTrips)->Arg(2)->Arg(10)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  ::benchmark::Initialize(&argc, argv);
  reproduce_frontier();
  ::benchmark::RunSpecifiedBenchmarks();
  return 0;
}
