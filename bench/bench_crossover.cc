// Crossover analysis: single-node GEPETO vs MapReduced GEPETO.
//
// The paper's motivation (Sec. II): "performing inference attacks on large
// geolocated datasets is generally a long, costly and resource-consuming
// task ... These two observations motivate the need for parallel and
// distributed approaches". This bench quantifies where distribution starts
// paying off: on the simulated cluster clock, a small dataset is dominated
// by job/task startup and the sequential version wins; as the trace count
// grows, the 7-node MapReduce version overtakes it.
#include <benchmark/benchmark.h>

#include <iostream>

#include "bench_common.h"
#include "common/stopwatch.h"
#include "geo/geolife.h"
#include "gepeto/kmeans.h"
#include "gepeto/sampling.h"
#include "mapreduce/dfs.h"
#include "mapreduce/scheduler.h"

namespace {

using namespace gepeto;
using namespace gepeto::bench;

/// Modeled single-node time: one sequential pass reading the file from the
/// local disk plus the measured CPU time scaled to the modeled node.
double sequential_sim_seconds(const mr::ClusterConfig& cluster,
                              std::uint64_t bytes, double cpu_seconds) {
  return static_cast<double>(bytes) / cluster.disk_bandwidth_Bps +
         cpu_seconds * cluster.compute_scale;
}

void reproduce_crossover() {
  print_banner("Crossover — sequential GEPETO vs MapReduced GEPETO",
               "distribution pays off on large datasets; startup overheads "
               "dominate small ones (the paper's motivation, Sec. II)");

  Table table("one k-means iteration (k=10), sequential vs 7-node MapReduce");
  table.header({"traces", "dataset size", "sequential sim", "mapreduce sim",
                "winner", "mr map tasks"});

  const std::uint64_t full = paper_scale() ? 2'000'000 : 40'000;
  for (std::uint64_t target :
       {full / 100, full / 20, full / 4, full}) {
    const auto world = geo::generate_dataset(
        geo::scaled_config(/*num_users=*/paper_scale() ? 64 : 8, target, 7));

    auto cluster = parapluie(7, paper_scale() ? 8 * mr::kMiB : 64 * mr::kKiB);
    mr::Dfs dfs(cluster);
    geo::dataset_to_dfs(dfs, "/in", world.data, 4);
    const std::uint64_t bytes = dfs.total_size("/in/");

    // Sequential: the single-node tool also has to read and parse the file
    // before iterating — measure the host CPU of both, then model it.
    core::KMeansConfig config;
    config.k = 10;
    config.seed = 17;
    config.max_iterations = 1;
    config.convergence_delta_m = 0.0;
    CpuStopwatch cpu;
    const auto parsed = geo::dataset_from_dfs(dfs, "/in/");
    const auto seq = core::kmeans_sequential(parsed, config);
    const double seq_sim =
        sequential_sim_seconds(cluster, bytes, cpu.seconds());
    benchmark::DoNotOptimize(seq.sse);

    const auto mr_result =
        core::kmeans_mapreduce(dfs, cluster, "/in/", "/clusters", config);
    const double mr_sim = mr_result.per_iteration.front().sim_seconds;

    table.row({format_count(world.data.num_traces()), format_bytes(bytes),
               format_seconds(seq_sim), format_seconds(mr_sim),
               mr_sim < seq_sim ? "MapReduce" : "sequential",
               std::to_string(mr_result.totals.num_map_tasks)});
  }
  table.print(std::cout);
  std::cout << "shape: sequential wins on small inputs (startup dominates); "
               "MapReduce wins at millions of traces — the paper's thesis.\n";
}


void BM_ScheduleMapPhase(benchmark::State& state) {
  auto cluster = parapluie(7);
  std::vector<mr::MapTaskCost> tasks;
  for (int i = 0; i < state.range(0); ++i) {
    mr::MapTaskCost t;
    t.input_bytes = 8 << 20;
    t.cpu_seconds = 0.5 + 0.01 * i;
    t.replica_nodes = {i % 7, (i + 2) % 7, (i + 4) % 7};
    tasks.push_back(t);
  }
  for (auto _ : state) {
    auto s = mr::schedule_map_phase(cluster, tasks);
    benchmark::DoNotOptimize(s.makespan);
  }
}
BENCHMARK(BM_ScheduleMapPhase)->Arg(32)->Arg(256);

}  // namespace

int main(int argc, char** argv) {
  ::benchmark::Initialize(&argc, argv);
  reproduce_crossover();
  ::benchmark::RunSpecifiedBenchmarks();
  return 0;
}
