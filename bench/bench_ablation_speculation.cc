// Ablation: speculative execution on a heterogeneous cluster. Hadoop (the
// paper's substrate) launches backup copies of straggling attempts once no
// tasks are pending; the task completes when either copy does. This bench
// makes one node progressively slower and measures how much of the lost
// makespan speculation recovers.
#include <benchmark/benchmark.h>

#include <iostream>

#include "bench_common.h"
#include "geo/geolife.h"
#include "gepeto/sampling.h"
#include "mapreduce/dfs.h"
#include "mapreduce/scheduler.h"

namespace {

using namespace gepeto;
using namespace gepeto::bench;

void reproduce_speculation_ablation() {
  print_banner("Ablation — speculative execution vs stragglers",
               "Hadoop re-executes slow attempts on idle nodes; the task "
               "finishes when either copy does");
  const auto& world = world90();

  Table table("sampling job, 7 nodes, one straggler node");
  table.header({"straggler slowdown", "speculation", "sim map", "backup copies",
                "backup wins"});

  for (double slowdown : {1.0, 2.0, 4.0, 8.0}) {
    for (bool speculate : {false, true}) {
      auto cluster = parapluie(7, paper_scale() ? 4 * mr::kMiB : 64 * mr::kKiB);
      cluster.node_speed_factor.assign(7, 1.0);
      cluster.node_speed_factor[0] = slowdown;
      cluster.speculative_execution = speculate;
      mr::Dfs dfs(cluster);
      geo::dataset_to_dfs(dfs, "/in", world.data, 4);
      const auto jr = core::run_sampling_job(
          dfs, cluster, "/in/", "/out",
          {60, core::SamplingTechnique::kUpperLimit});
      table.row({format_double(slowdown, 0) + "x",
                 speculate ? "on" : "off",
                 format_seconds(jr.sim_map_seconds),
                 std::to_string(jr.speculative_copies),
                 std::to_string(jr.speculative_wins)});
    }
  }
  table.print(std::cout);
  std::cout << "shape: without speculation the straggler's slowdown leaks "
               "into the makespan; with it, backups on idle fast nodes cap "
               "the damage.\n";
}


void BM_ScheduleMapPhase(benchmark::State& state) {
  auto cluster = parapluie(7);
  std::vector<mr::MapTaskCost> tasks;
  for (int i = 0; i < state.range(0); ++i) {
    mr::MapTaskCost t;
    t.input_bytes = 8 << 20;
    t.cpu_seconds = 0.5 + 0.01 * i;
    t.replica_nodes = {i % 7, (i + 2) % 7, (i + 4) % 7};
    tasks.push_back(t);
  }
  for (auto _ : state) {
    auto s = mr::schedule_map_phase(cluster, tasks);
    benchmark::DoNotOptimize(s.makespan);
  }
}
BENCHMARK(BM_ScheduleMapPhase)->Arg(32)->Arg(256);

}  // namespace

int main(int argc, char** argv) {
  ::benchmark::Initialize(&argc, argv);
  reproduce_speculation_ablation();
  ::benchmark::RunSpecifiedBenchmarks();
  return 0;
}
