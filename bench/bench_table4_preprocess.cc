// Reproduces Table IV: "Number of traces in the sampled datasets after the
// preprocessing phase" of DJ-Cluster:
//   1 min : 155,260 -> 86,416 (filter moving) -> 85,743 (remove duplicates)
//   5 min :  41,263 -> 23,996               -> 23,894
//   10 min:  23,596 -> 14,207               -> 14,174
//
// Shape: the moving-trace filter keeps ~56-60% of the sampled traces; the
// duplicate filter then removes under 1%.
#include <benchmark/benchmark.h>

#include <iostream>

#include "bench_common.h"
#include "geo/geolife.h"
#include "gepeto/djcluster.h"
#include "gepeto/sampling.h"
#include "mapreduce/dfs.h"

namespace {

using namespace gepeto;
using namespace gepeto::bench;

struct PaperRow {
  const char* rate;
  int window_s;
  std::uint64_t paper_unfiltered;
  std::uint64_t paper_filtered;
  std::uint64_t paper_dedup;
};

constexpr PaperRow kPaperRows[] = {
    {"1 min", 60, 155'260, 86'416, 85'743},
    {"5 min", 300, 41'263, 23'996, 23'894},
    {"10 min", 600, 23'596, 14'207, 14'174},
};

void reproduce_table4() {
  print_banner("Table IV — traces after the DJ-Cluster preprocessing phase",
               "1 min: 155,260 -> 86,416 -> 85,743 (filter keeps ~56%, dedup "
               "removes <1%)");
  const auto& world = world178();
  auto cluster = parapluie(7);
  mr::Dfs dfs(cluster);
  geo::dataset_to_dfs(dfs, "/geolife", world.data, 8);

  core::DjClusterConfig config;  // 2 m/s threshold = 7.2 km/h, as the paper

  Table table("Table IV (paper vs measured)");
  table.header({"sampling rate", "unfiltered (paper/ours)",
                "filter moving (paper/ours)", "remove dup (paper/ours)",
                "kept by filter", "removed by dedup", "pipeline sim time"});

  telemetry::BenchReporter report("table4_preprocess", scale_name());
  report.set_param("nodes", std::int64_t{7});

  for (const auto& row : kPaperRows) {
    core::run_sampling_job(dfs, cluster, "/geolife/", "/sampled",
                           {row.window_s, core::SamplingTechnique::kUpperLimit});
    const auto stats = core::run_preprocess_jobs(dfs, cluster, "/sampled/",
                                                 "/dj", config);
    const double kept = 100.0 * static_cast<double>(stats.after_filter) /
                        static_cast<double>(stats.input_traces);
    const double dedup_removed =
        100.0 * (1.0 - static_cast<double>(stats.after_dedup) /
                           static_cast<double>(stats.after_filter));
    table.row({row.rate,
               format_count(row.paper_unfiltered) + " / " +
                   format_count(stats.input_traces),
               format_count(row.paper_filtered) + " / " +
                   format_count(stats.after_filter),
               format_count(row.paper_dedup) + " / " +
                   format_count(stats.after_dedup),
               format_double(kept, 1) + "%",
               format_double(dedup_removed, 2) + "%",
               format_seconds(stats.filter_job.sim_seconds +
                              stats.dedup_job.sim_seconds)});
    mr::JobResult combined = stats.filter_job;
    combined.absorb(stats.dedup_job);
    bill_job(report.add_row(row.rate), combined)
        .set_param("window_s", std::int64_t{row.window_s})
        .set_param("input_traces",
                   static_cast<std::int64_t>(stats.input_traces))
        .set_param("after_filter",
                   static_cast<std::int64_t>(stats.after_filter))
        .set_param("after_dedup",
                   static_cast<std::int64_t>(stats.after_dedup));
  }
  table.print(std::cout);
  write_report(report);
  std::cout << "paper shape: filter keeps 56-60% of sampled traces "
               "(86,416/155,260 = 55.7%), dedup removes <1%.\n";
}

// Micro-benchmark: the per-trace cost of the two preprocessing filters.
void BM_FilterMoving(benchmark::State& state) {
  const auto& world = world90();
  const auto uid = world.data.users().front();
  const auto& trail = world.data.trail(uid);
  for (auto _ : state) {
    auto kept = core::filter_moving(trail, 2.0);
    benchmark::DoNotOptimize(kept);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(trail.size()));
}
BENCHMARK(BM_FilterMoving)->Unit(benchmark::kMillisecond);

void BM_RemoveDuplicates(benchmark::State& state) {
  const auto& world = world90();
  const auto uid = world.data.users().front();
  const auto& trail = world.data.trail(uid);
  for (auto _ : state) {
    auto kept = core::remove_duplicates(trail, 1.0);
    benchmark::DoNotOptimize(kept);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(trail.size()));
}
BENCHMARK(BM_RemoveDuplicates)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  ::benchmark::Initialize(&argc, argv);
  reproduce_table4();
  ::benchmark::RunSpecifiedBenchmarks();
  return 0;
}
