// Microbenchmarks for the batch distance kernels and the record paths that
// feed them (DESIGN.md §14) — the two halves of the PR 9 claim, measured in
// isolation:
//
//   * kernel throughput — the k-means assignment kernel (CentroidKernel) at
//     k=10 under each backend (legacy per-pair geo::distance() calls, batched
//     scalar, SIMD), in points/second, for both Table III metrics;
//   * record-path cost — the price of turning stored bytes back into
//     coordinates: text dataset-line parsing vs 32-byte binary record decode
//     vs columnar block decode straight into struct-of-arrays columns
//     (read_block_columns, the parse-free shape the batch map path consumes).
//
// BENCH_kernels.json carries points/s, records/s, and the speedup ratios so
// CI can attribute the end-to-end Table III win (bench_table3_kmeans) to its
// two ingredients.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <cstring>
#include <iostream>
#include <string>
#include <vector>

#include "bench_common.h"
#include "common/check.h"
#include "common/stopwatch.h"
#include "geo/distance.h"
#include "geo/geolife.h"
#include "geo/kernels.h"
#include "gepeto/kmeans.h"
#include "storage/colfile.h"

namespace {

using namespace gepeto;
using namespace gepeto::bench;

/// The benchmark corpus: the 66 MB workload's traces in (user, time) order,
/// capped at smoke scale so a run stays quick.
const std::vector<geo::MobilityTrace>& corpus() {
  static const std::vector<geo::MobilityTrace> traces =
      world90().data.all_traces();
  return traces;
}

struct Soa {
  std::vector<double> lats;
  std::vector<double> lons;
};

const Soa& corpus_soa() {
  static const Soa soa = [] {
    Soa s;
    const auto& traces = corpus();
    s.lats.reserve(traces.size());
    s.lons.reserve(traces.size());
    for (const auto& t : traces) {
      s.lats.push_back(t.latitude);
      s.lons.push_back(t.longitude);
    }
    return s;
  }();
  return soa;
}

geo::CentroidKernel make_kernel(geo::DistanceKind kind) {
  const auto centroids = core::initial_centroids(world90().data, 10, 11);
  std::vector<double> clats, clons;
  for (const auto& c : centroids) {
    clats.push_back(c.latitude);
    clons.push_back(c.longitude);
  }
  return geo::CentroidKernel(kind, clats.data(), clons.data(),
                             centroids.size());
}

/// Kernel throughput: n points x 10 centroids under each backend. The scalar
/// and SIMD runs must agree bit-for-bit on every assignment (hard-checked
/// here on the full corpus, not just the unit-test sweeps).
void kernel_throughput(telemetry::BenchReporter& report) {
  const auto& soa = corpus_soa();
  const std::size_t n = soa.lats.size();
  const int reps = paper_scale() ? 2 : 10;

  Table table("CentroidKernel nearest(), k=10, " + format_count(n) +
              " points");
  table.header({"distance", "backend", "points/s", "speedup vs legacy"});

  std::vector<std::uint32_t> idx(n), scalar_idx;
  for (const auto kind :
       {geo::DistanceKind::kSquaredEuclidean, geo::DistanceKind::kHaversine}) {
    const std::string distance = std::string(geo::distance_name(kind));
    double legacy_rate = 0.0;
    scalar_idx.clear();
    for (const auto backend :
         {geo::KernelBackend::kLegacy, geo::KernelBackend::kScalar,
          geo::KernelBackend::kSimd}) {
      geo::set_kernel_backend_for_testing(backend);
      const auto kernel = make_kernel(kind);
      Stopwatch sw;
      for (int r = 0; r < reps; ++r)
        kernel.nearest(soa.lats.data(), soa.lons.data(), n, idx.data());
      const double seconds = sw.seconds();
      const double rate =
          static_cast<double>(n) * reps / std::max(1e-12, seconds);
      if (backend == geo::KernelBackend::kLegacy) legacy_rate = rate;
      if (backend == geo::KernelBackend::kScalar) scalar_idx = idx;
      if (backend == geo::KernelBackend::kSimd)
        GEPETO_CHECK_MSG(
            std::memcmp(scalar_idx.data(), idx.data(),
                        n * sizeof(std::uint32_t)) == 0,
            "scalar/SIMD assignment divergence on " << distance);
      const double speedup = rate / std::max(1e-12, legacy_rate);
      const std::string backend_name =
          std::string(geo::kernel_backend_name(backend));
      report.add_row("nearest " + distance + " " + backend_name)
          .set_wall_seconds(seconds)
          .set_param("distance", distance)
          .set_param("backend", backend_name)
          .set_param("points_per_second", rate)
          .set_param("speedup_vs_legacy", speedup);
      table.row({distance, backend_name, format_count(
                     static_cast<std::uint64_t>(rate)),
                 format_double(speedup, 2) + "x"});
    }
  }
  geo::set_kernel_backend_for_testing(geo::KernelBackend::kSimd);
  table.print(std::cout);
  std::cout << "simd level: "
            << geo::simd_level_name(geo::simd_level()) << "\n";
}

/// Record-path cost: decode the same traces from each storage format and
/// count records/second. The columnar column decode is the parse-free path;
/// text parsing is what the pre-PR map loop paid per record.
void record_path_cost(telemetry::BenchReporter& report) {
  const auto& traces = corpus();
  const std::size_t n = traces.size();

  // Materialize the three on-disk shapes once.
  std::vector<std::string> lines;
  lines.reserve(n);
  std::string binary;
  binary.reserve(n * geo::kBinaryTraceSize);
  storage::ColumnarWriter writer;
  for (const auto& t : traces) {
    lines.push_back(geo::dataset_line(t));
    geo::append_binary_trace(binary, t);
    writer.add(t);
  }
  const std::string colfile = writer.finish();

  Table table("Record decode cost, " + format_count(n) + " records");
  table.header({"format", "records/s", "speedup vs text"});
  double text_rate = 0.0;
  double checksum = 0.0;

  {
    geo::MobilityTrace t;
    Stopwatch sw;
    for (const auto& line : lines)
      if (geo::parse_dataset_line(line, t)) checksum += t.latitude;
    const double seconds = sw.seconds();
    text_rate = static_cast<double>(n) / std::max(1e-12, seconds);
    report.add_row("decode text")
        .set_wall_seconds(seconds)
        .set_param("format", "text")
        .set_param("records_per_second", text_rate);
    table.row({"text dataset lines",
               format_count(static_cast<std::uint64_t>(text_rate)), "1.00x"});
  }
  {
    geo::MobilityTrace t;
    Stopwatch sw;
    for (std::size_t off = 0; off < binary.size();
         off += geo::kBinaryTraceSize) {
      if (geo::trace_from_binary(
              std::string_view(binary).substr(off, geo::kBinaryTraceSize), t))
        checksum += t.latitude;
    }
    const double seconds = sw.seconds();
    const double rate = static_cast<double>(n) / std::max(1e-12, seconds);
    report.add_row("decode binary")
        .set_wall_seconds(seconds)
        .set_param("format", "binary")
        .set_param("records_per_second", rate)
        .set_param("speedup_vs_text", rate / text_rate);
    table.row({"32-byte binary records",
               format_count(static_cast<std::uint64_t>(rate)),
               format_double(rate / text_rate, 2) + "x"});
  }
  {
    const storage::ColumnarFile file(colfile);
    storage::TraceColumns cols;
    Stopwatch sw;
    for (std::size_t b = 0; b < file.num_blocks(); ++b) {
      file.read_block_columns(b, cols);
      for (const double lat : cols.lats) checksum += lat;
    }
    const double seconds = sw.seconds();
    const double rate = static_cast<double>(n) / std::max(1e-12, seconds);
    report.add_row("decode columnar")
        .set_wall_seconds(seconds)
        .set_param("format", "columnar")
        .set_param("records_per_second", rate)
        .set_param("speedup_vs_text", rate / text_rate);
    table.row({"columnar block -> SoA",
               format_count(static_cast<std::uint64_t>(rate)),
               format_double(rate / text_rate, 2) + "x"});
  }
  benchmark::DoNotOptimize(checksum);
  table.print(std::cout);
}

void reproduce() {
  print_banner("Kernel + record-path microbenchmarks",
               "attribution for the Table III map-phase speedup: batched "
               "SIMD assignment kernels x parse-free columnar input");
  telemetry::BenchReporter report("kernels", scale_name());
  report.set_param("simd_level",
                   std::string(geo::simd_level_name(geo::simd_level())));
  kernel_throughput(report);
  record_path_cost(report);
  write_report(report);
}

// Per-op micro sweep: one nearest() batch of 4096 points per iteration.
void BM_KernelNearest(benchmark::State& state) {
  const auto backend = static_cast<geo::KernelBackend>(state.range(0));
  const auto kind = static_cast<geo::DistanceKind>(state.range(1));
  geo::set_kernel_backend_for_testing(backend);
  const auto kernel = make_kernel(kind);
  const auto& soa = corpus_soa();
  const std::size_t n = std::min<std::size_t>(4096, soa.lats.size());
  std::vector<std::uint32_t> idx(n);
  for (auto _ : state)
    kernel.nearest(soa.lats.data(), soa.lons.data(), n, idx.data());
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(n));
  geo::set_kernel_backend_for_testing(geo::KernelBackend::kSimd);
}
BENCHMARK(BM_KernelNearest)
    ->ArgsProduct({{static_cast<int>(geo::KernelBackend::kLegacy),
                    static_cast<int>(geo::KernelBackend::kScalar),
                    static_cast<int>(geo::KernelBackend::kSimd)},
                   {static_cast<int>(geo::DistanceKind::kSquaredEuclidean),
                    static_cast<int>(geo::DistanceKind::kHaversine)}});

}  // namespace

int main(int argc, char** argv) {
  ::benchmark::Initialize(&argc, argv);
  reproduce();
  ::benchmark::RunSpecifiedBenchmarks();
  return 0;
}
