// Reproduces Table I: "Number of traces in the GeoLife dataset under
// different sampling conditions (no sampling, sampling rates of 1, 5 and 10
// minutes)": 2,033,686 -> 155,260 -> 41,263 -> 23,596.
//
// Also checks the Section V runtime claim: with a 60 s window, sampling the
// whole dataset takes "1 minute and 24 seconds" on the 30-node deployment
// (~124 map tasks).
#include <benchmark/benchmark.h>

#include <iostream>

#include "bench_common.h"
#include "geo/geolife.h"
#include "gepeto/sampling.h"
#include "mapreduce/dfs.h"

namespace {

using namespace gepeto;
using namespace gepeto::bench;

struct PaperRow {
  const char* label;
  int window_s;
  std::uint64_t paper_traces;
};

constexpr PaperRow kPaperRows[] = {
    {"initial dataset", 0, 2'033'686},
    {"1 min sampling", 60, 155'260},
    {"5 min sampling", 300, 41'263},
    {"10 min sampling", 600, 23'596},
};

void reproduce_table1() {
  print_banner("Table I — dataset size under down-sampling",
               "2,033,686 -> 155,260 (1 min) -> 41,263 (5 min) -> 23,596 (10 min)");
  const auto& world = world178();
  describe_dataset("synthetic GeoLife (178 users)", world.data);

  // The paper's sampling experiment ran on 30 Parapluie nodes.
  auto cluster = parapluie(30);
  mr::Dfs dfs(cluster);
  geo::dataset_to_dfs(dfs, "/geolife", world.data, 8);
  const std::uint64_t initial = geo::count_dfs_records(dfs, "/geolife/");

  Table table("Table I (paper vs measured)");
  table.header({"condition", "paper traces", "measured traces",
                "paper reduction", "measured reduction", "job real",
                "job sim (30 nodes)", "map tasks"});

  telemetry::BenchReporter report("table1_sampling", scale_name());
  report.set_param("nodes", std::int64_t{30});
  report.set_param("initial_traces", static_cast<std::int64_t>(initial));

  const double paper_initial = static_cast<double>(kPaperRows[0].paper_traces);
  for (const auto& row : kPaperRows) {
    if (row.window_s == 0) {
      table.row({row.label, format_count(row.paper_traces),
                 format_count(initial), "1.0x", "1.0x", "-", "-", "-"});
      continue;
    }
    const auto jr = core::run_sampling_job(
        dfs, cluster, "/geolife/", "/sampled",
        {row.window_s, core::SamplingTechnique::kUpperLimit});
    bill_job(report.add_row(row.label), jr)
        .set_param("window_s", std::int64_t{row.window_s})
        .set_param("paper_traces",
                   static_cast<std::int64_t>(row.paper_traces));
    table.row({row.label, format_count(row.paper_traces),
               format_count(jr.output_records),
               format_double(paper_initial /
                                 static_cast<double>(row.paper_traces),
                             1) +
                   "x",
               format_double(static_cast<double>(initial) /
                                 static_cast<double>(jr.output_records),
                             1) +
                   "x",
               format_seconds(jr.real_seconds), format_seconds(jr.sim_seconds),
               std::to_string(jr.num_map_tasks)});
  }
  table.print(std::cout);
  write_report(report);
  std::cout << "paper claim (Sec. V): 60 s window over the full dataset in "
               "1 min 24 s on 30 nodes (124 map tasks over the 1.61 GB "
               "dataset; ours is the 128 MB evaluation subset).\n";
}

// Micro-benchmark: sampling throughput per trace as the window grows.
void BM_SamplingSequential(benchmark::State& state) {
  const auto& world = world90();
  const core::SamplingConfig config{static_cast<int>(state.range(0)),
                                    core::SamplingTechnique::kUpperLimit};
  for (auto _ : state) {
    auto out = core::downsample(world.data, config);
    benchmark::DoNotOptimize(out);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(world.data.num_traces()));
}
BENCHMARK(BM_SamplingSequential)->Arg(60)->Arg(300)->Arg(600)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  ::benchmark::Initialize(&argc, argv);
  reproduce_table1();
  ::benchmark::RunSpecifiedBenchmarks();
  return 0;
}
