// Ablation: the combiner optimization for MapReduced k-means, discussed in
// the paper's related-work paragraph (Zhao, Ma & He): pre-summing points per
// map task makes the mapper->reducer communication cost (nearly) null.
//
// Expected shape: identical centroids, shuffle volume collapses from one
// record per trace to one record per (map task x cluster), and the simulated
// reduce phase gets cheaper.
#include <benchmark/benchmark.h>

#include <iostream>

#include "bench_common.h"
#include "geo/geolife.h"
#include "gepeto/kmeans.h"
#include "mapreduce/dfs.h"

namespace {

using namespace gepeto;
using namespace gepeto::bench;

void reproduce_combiner_ablation() {
  print_banner("Ablation — k-means combiner (related work, Sec. VI)",
               "the combiner computes partial sums before the shuffle, "
               "reducing mapper->reducer traffic to almost nothing");
  const auto& world = world90();

  Table table("combiner on/off (3 iterations, 7 nodes)");
  table.header({"combiner", "shuffle total", "combine output records",
                "map output records", "sim reduce", "sim total",
                "max |centroid delta|"});

  core::KMeansResult plain, combined;
  for (bool use_combiner : {false, true}) {
    auto cluster = parapluie(7, paper_scale() ? 16 * mr::kMiB : 256 * mr::kKiB);
    mr::Dfs dfs(cluster);
    geo::dataset_to_dfs(dfs, "/in", world.data, 4);
    core::KMeansConfig config;
    config.k = 10;
    config.seed = 21;
    config.max_iterations = 3;
    config.convergence_delta_m = 0.0;
    config.use_combiner = use_combiner;
    auto result =
        core::kmeans_mapreduce(dfs, cluster, "/in/", "/clusters", config);
    (use_combiner ? combined : plain) = std::move(result);
  }

  double max_delta = 0.0;
  for (std::size_t i = 0; i < plain.centroids.size(); ++i) {
    max_delta = std::max(
        max_delta, geo::haversine_meters(plain.centroids[i].latitude,
                                         plain.centroids[i].longitude,
                                         combined.centroids[i].latitude,
                                         combined.centroids[i].longitude));
  }

  auto add = [&](const char* label, const core::KMeansResult& r) {
    table.row({label, format_bytes(r.totals.shuffle_bytes),
               format_count(r.totals.combine_output_records),
               format_count(r.totals.map_output_records),
               format_seconds(r.totals.sim_reduce_seconds),
               format_seconds(r.totals.sim_seconds),
               format_double(max_delta, 6) + " m"});
  };
  add("off", plain);
  add("on", combined);
  table.print(std::cout);
  std::cout << "shape: same centroids (delta ~ float noise), shuffle shrinks "
               "by orders of magnitude with the combiner on.\n";
}

void BM_KMeansIterationSequential(benchmark::State& state) {
  const auto& world = world90();
  core::KMeansConfig config;
  config.k = static_cast<int>(state.range(0));
  config.seed = 4;
  config.max_iterations = 1;
  config.convergence_delta_m = 0.0;
  for (auto _ : state) {
    auto r = core::kmeans_sequential(world.data, config);
    benchmark::DoNotOptimize(r.sse);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(world.data.num_traces()));
}
BENCHMARK(BM_KMeansIterationSequential)->Arg(5)->Arg(10)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  ::benchmark::Initialize(&argc, argv);
  reproduce_combiner_ablation();
  ::benchmark::RunSpecifiedBenchmarks();
  return 0;
}
