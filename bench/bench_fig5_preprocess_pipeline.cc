// Reproduces Figure 5: the first phase of DJ-Cluster as two pipelined
// map-only MapReduce jobs — "Filter moving traces" feeding "Remove
// duplicates" through the DFS — including the full downstream clustering
// job (neighborhood map + single-reducer merge).
#include <benchmark/benchmark.h>

#include <iostream>

#include "bench_common.h"
#include "geo/geolife.h"
#include "gepeto/djcluster.h"
#include "gepeto/sampling.h"
#include "mapreduce/dfs.h"

namespace {

using namespace gepeto;
using namespace gepeto::bench;

void reproduce_fig5() {
  print_banner("Figure 5 — DJ-Cluster preprocessing as pipelined map-only jobs",
               "job 1 filters moving traces, job 2 removes redundant "
               "consecutive traces; output of job 1 is the input of job 2");
  const auto& world = world178();
  auto cluster = parapluie(7);
  mr::Dfs dfs(cluster);
  geo::dataset_to_dfs(dfs, "/geolife", world.data, 8);

  // Table IV preprocesses the sampled datasets; use the 10-minute one so the
  // downstream clustering job stays tractable at paper scale.
  core::run_sampling_job(dfs, cluster, "/geolife/", "/sampled",
                         {600, core::SamplingTechnique::kUpperLimit});

  core::DjClusterConfig config;
  config.radius_m = 100.0;
  config.min_pts = 8;
  const auto result =
      core::run_djcluster_jobs(dfs, cluster, "/sampled/", "/dj", config);

  Table table("pipeline profile (per job)");
  table.header({"job", "input records", "output records", "map tasks",
                "reducers", "shuffle", "sim time", "real time"});
  auto add = [&](const char* name, const mr::JobResult& jr) {
    table.row({name, format_count(jr.map_input_records),
               format_count(jr.output_records),
               std::to_string(jr.num_map_tasks),
               std::to_string(jr.num_reduce_tasks),
               format_bytes(jr.shuffle_bytes), format_seconds(jr.sim_seconds),
               format_seconds(jr.real_seconds)});
  };
  add("1. filter moving traces (map-only)", result.preprocess.filter_job);
  add("2. remove duplicates (map-only)", result.preprocess.dedup_job);
  add("3. neighborhood + merge (map + 1 reducer)", result.cluster_job);
  table.print(std::cout);

  std::cout << "clusters found: " << result.clusters.clusters.size()
            << ", clustered traces: " << format_count(result.clusters.clustered)
            << ", noise: " << format_count(result.clusters.noise) << "\n";
  std::cout << "shape: each pipelined job shrinks the data (input of job 2 = "
               "output of job 1); the final merge needs a single reducer, as "
               "in the paper.\n";
}

void BM_PackTraceId(benchmark::State& state) {
  std::uint64_t acc = 0;
  std::int64_t ts = 1'222'819'200;
  for (auto _ : state) acc ^= core::pack_trace_id(42, ++ts);
  benchmark::DoNotOptimize(acc);
}
BENCHMARK(BM_PackTraceId);

}  // namespace

int main(int argc, char** argv) {
  ::benchmark::Initialize(&argc, argv);
  reproduce_fig5();
  ::benchmark::RunSpecifiedBenchmarks();
  return 0;
}
