// Reproduces the paper's headline scaling claims (Sections I, V, VIII):
// "the MapReduced versions of the algorithms can efficiently handle millions
// of mobility traces", and the Section V data point: a 60 s sampling of the
// whole dataset completes in 1 min 24 s with ~124 map tasks on 30 nodes.
//
// The bench sweeps the worker-node count on the simulated cluster clock for
// the sampling job and for one k-means iteration, reporting makespan and
// speedup — the curve a Hadoop deployment would show.
#include <benchmark/benchmark.h>

#include <iostream>

#include "bench_common.h"
#include "geo/geolife.h"
#include "gepeto/kmeans.h"
#include "gepeto/sampling.h"
#include "mapreduce/dfs.h"

namespace {

using namespace gepeto;
using namespace gepeto::bench;

void reproduce_scaling() {
  print_banner("Scalability — node-count sweep (Sec. V claim)",
               "sampling the whole dataset with a 60 s window: 1 min 24 s on "
               "30 nodes; ~124 map tasks");
  const auto& world = world178();

  Table table("sampling job + one k-means iteration vs cluster size");
  table.header({"worker nodes", "map tasks", "sampling sim", "sampling speedup",
                "kmeans iter sim", "kmeans speedup", "data-local maps"});

  // Use chunks sized to produce a task count in the spirit of the paper's
  // deployment (many more tasks than slots at small node counts).
  const std::size_t chunk =
      paper_scale() ? 8 * mr::kMiB : 64 * mr::kKiB;

  double sampling_base = 0.0, kmeans_base = 0.0;
  for (int nodes : {1, 2, 4, 7, 15, 30}) {
    auto cluster = parapluie(nodes, chunk);
    mr::Dfs dfs(cluster);
    geo::dataset_to_dfs(dfs, "/geolife", world.data, 8);

    const auto sampling = core::run_sampling_job(
        dfs, cluster, "/geolife/", "/sampled",
        {60, core::SamplingTechnique::kUpperLimit});

    core::KMeansConfig km;
    km.k = 10;
    km.seed = 3;
    km.max_iterations = 1;
    km.convergence_delta_m = 0.0;
    const auto kmr =
        core::kmeans_mapreduce(dfs, cluster, "/sampled/", "/clusters", km);
    const double kmeans_iter = kmr.per_iteration.front().sim_seconds;

    if (nodes == 1) {
      sampling_base = sampling.sim_seconds;
      kmeans_base = kmeans_iter;
    }
    table.row({std::to_string(nodes), std::to_string(sampling.num_map_tasks),
               format_seconds(sampling.sim_seconds),
               format_double(sampling_base / sampling.sim_seconds, 2) + "x",
               format_seconds(kmeans_iter),
               format_double(kmeans_base / kmeans_iter, 2) + "x",
               format_double(100.0 *
                                 static_cast<double>(sampling.data_local_maps) /
                                 static_cast<double>(sampling.num_map_tasks),
                             0) +
                   "%"});
  }
  table.print(std::cout);
  std::cout << "shape: near-linear speedup while tasks outnumber slots, "
               "flattening once the cluster has more slots than tasks "
               "(startup + stragglers dominate).\n";
}

void BM_DatasetLineParse(benchmark::State& state) {
  const std::string line = geo::dataset_line(
      {42, 39.906631, 116.385564, 492, 1'224'816'570});
  geo::MobilityTrace t;
  for (auto _ : state) {
    benchmark::DoNotOptimize(geo::parse_dataset_line(line, t));
  }
}
BENCHMARK(BM_DatasetLineParse);

void BM_DatasetLineFormat(benchmark::State& state) {
  const geo::MobilityTrace t{42, 39.906631, 116.385564, 492, 1'224'816'570};
  for (auto _ : state) {
    auto line = geo::dataset_line(t);
    benchmark::DoNotOptimize(line);
  }
}
BENCHMARK(BM_DatasetLineFormat);

}  // namespace

int main(int argc, char** argv) {
  ::benchmark::Initialize(&argc, argv);
  reproduce_scaling();
  ::benchmark::RunSpecifiedBenchmarks();
  return 0;
}
