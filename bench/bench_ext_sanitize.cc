// Extension experiments (paper Sec. VIII future work, implemented here):
// geo-sanitization mechanisms and the privacy/utility trade-off — GEPETO's
// stated objective is to "evaluate the resulting trade-off between privacy
// and utility".
//
// Sweeps each mechanism's strength and reports, per setting:
//   * privacy — recall of the POI-extraction attack (lower = more private)
//     and home-identification rate;
//   * utility — mean location error and trace retention.
#include <benchmark/benchmark.h>

#include <iostream>

#include "bench_common.h"
#include "gepeto/metrics.h"
#include "gepeto/mmc.h"
#include "gepeto/poi.h"
#include "gepeto/sanitize.h"

namespace {

using namespace gepeto;
using namespace gepeto::bench;

geo::SyntheticDataset sanitize_world() {
  geo::GeneratorConfig cfg;
  cfg.num_users = paper_scale() ? 20 : 5;
  cfg.duration_days = 30;
  cfg.trajectories_per_user_min = 90;
  cfg.trajectories_per_user_max = 120;
  cfg.seed = 777;
  return geo::generate_dataset(cfg);
}

void reproduce_tradeoff() {
  print_banner("Extensions — geo-sanitization privacy/utility trade-off "
               "(Sec. VIII)",
               "geographical masks, aggregation, spatial cloaking and mix "
               "zones vs the POI attack");
  const auto world = sanitize_world();
  core::DjClusterConfig attack;
  attack.radius_m = 60;
  attack.min_pts = 10;

  const auto clean = core::run_poi_attack(world.data, world.profiles, attack);

  Table table("privacy (attack recall / home id) vs utility (error, retention)");
  table.header({"mechanism", "attack recall", "home identified",
                "mean error", "retention"});
  table.row({"none (baseline)", format_double(clean.avg_recall, 3),
             format_double(100 * clean.home_identification_rate, 0) + "%",
             "0 m", "100%"});

  auto add = [&](const std::string& label,
                 const geo::GeolocatedDataset& sanitized) {
    const auto atk = core::run_poi_attack(sanitized, world.profiles, attack);
    const auto util = core::location_error(world.data, sanitized);
    table.row({label, format_double(atk.avg_recall, 3),
               format_double(100 * atk.home_identification_rate, 0) + "%",
               format_double(util.mean_error_m, 0) + " m",
               format_double(100 * util.retention, 0) + "%"});
  };

  for (double sigma : {25.0, 50.0, 100.0, 200.0, 400.0})
    add("gaussian mask sigma=" + format_double(sigma, 0) + " m",
        core::gaussian_mask(world.data, sigma, 99));
  for (double cell : {100.0, 250.0, 500.0, 1000.0})
    add("spatial rounding cell=" + format_double(cell, 0) + " m",
        core::spatial_rounding(world.data, cell));
  for (int k : {2, 5, 10}) {
    const auto r = core::spatial_cloaking(world.data, k, 200.0, 5);
    add("spatial cloaking k=" + std::to_string(k) + " (avg cell " +
            format_double(r.avg_cell_m, 0) + " m)",
        r.data);
  }
  {
    const auto zones = core::pick_mix_zones(world.data, 5, 300.0);
    const auto r = core::apply_mix_zones(world.data, zones);
    // The attack runs per original user id; after mix zones each user's
    // trail is fragmented under fresh pseudonyms, so the per-user attack
    // only sees the first fragment — exactly the protection mix zones buy.
    add("mix zones (5 x 300 m, " + std::to_string(r.pseudonym_changes) +
            " pseudonym changes)",
        r.data);
  }
  table.print(std::cout);
  std::cout << "shape: a monotone frontier — stronger sanitization lowers "
               "attack recall at the price of location error (masks, "
               "rounding, cloaking) or trail fragmentation (mix zones).\n";
}

void BM_GaussianMask(benchmark::State& state) {
  const auto world = sanitize_world();
  for (auto _ : state) {
    auto masked =
        core::gaussian_mask(world.data, static_cast<double>(state.range(0)), 5);
    benchmark::DoNotOptimize(masked);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(world.data.num_traces()));
}
BENCHMARK(BM_GaussianMask)->Arg(50)->Arg(200)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  ::benchmark::Initialize(&argc, argv);
  reproduce_tradeoff();
  ::benchmark::RunSpecifiedBenchmarks();
  return 0;
}
