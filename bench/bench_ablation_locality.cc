// Ablation: locality-aware task placement (Sec. III: "one of the main
// objectives of the jobtracker is to keep the computation as close as
// possible to the data ... priority is given to neighboring nodes").
//
// Runs the same sampling job with the virtual jobtracker's locality
// preference enabled and disabled; transfer costs always apply, so blind
// placement pays cross-rack reads.
#include <benchmark/benchmark.h>

#include <iostream>

#include "bench_common.h"
#include "geo/geolife.h"
#include "gepeto/sampling.h"
#include "mapreduce/dfs.h"
#include "mapreduce/scheduler.h"

namespace {

using namespace gepeto;
using namespace gepeto::bench;

void reproduce_locality_ablation() {
  print_banner("Ablation — locality-aware scheduling (Sec. III)",
               "the jobtracker keeps computation close to the data: node-"
               "local > rack-local > remote");
  const auto& world = world178();

  // Derive real task costs from one sampling job, then replay the *same*
  // costs through the virtual jobtracker with the locality preference
  // toggled — the only variable is where each task runs. (Comparing two
  // separate executions would mostly measure host CPU jitter.)
  auto cluster = parapluie(16, paper_scale() ? 8 * mr::kMiB : 128 * mr::kKiB);
  cluster.nodes_per_rack = 8;     // two racks
  // A congested network (10 MB/s everywhere off-node) is where placement
  // matters most — this is the regime Hadoop's locality preference targets.
  cluster.intra_rack_Bps = 10e6;
  cluster.inter_rack_Bps = 5e6;
  mr::Dfs dfs(cluster);
  geo::dataset_to_dfs(dfs, "/geolife", world.data, 8);
  const auto jr = core::run_sampling_job(
      dfs, cluster, "/geolife/", "/sampled",
      {60, core::SamplingTechnique::kUpperLimit});

  // Rebuild the map-task cost vector the job ran with.
  std::vector<mr::MapTaskCost> costs;
  const double cpu_per_task =
      jr.real_seconds / std::max(1, jr.num_map_tasks);  // even split
  for (const auto& path : dfs.list("/geolife/")) {
    for (const auto& ci : dfs.chunks(path)) {
      mr::MapTaskCost t;
      t.input_bytes = ci.size;
      t.cpu_seconds = cpu_per_task;
      t.replica_nodes = ci.replicas;
      costs.push_back(t);
    }
  }

  Table table("identical task costs, 16 nodes in 2 racks (deterministic replay)");
  table.header({"scheduling", "data-local", "rack-local", "remote",
                "map makespan"});
  for (bool locality : {true, false}) {
    cluster.locality_aware_scheduling = locality;
    const auto sched = mr::schedule_map_phase(cluster, costs);
    table.row({locality ? "locality-aware (Hadoop)" : "blind (ablation)",
               std::to_string(sched.data_local),
               std::to_string(sched.rack_local),
               std::to_string(sched.remote),
               format_seconds(sched.makespan)});
  }
  table.print(std::cout);
  std::cout << "shape: on identical costs, locality-aware placement makes "
               "nearly every map data-local and avoids the cross-node "
               "transfer penalty that blind placement pays.\n";
}


void BM_ScheduleMapPhase(benchmark::State& state) {
  auto cluster = parapluie(7);
  std::vector<mr::MapTaskCost> tasks;
  for (int i = 0; i < state.range(0); ++i) {
    mr::MapTaskCost t;
    t.input_bytes = 8 << 20;
    t.cpu_seconds = 0.5 + 0.01 * i;
    t.replica_nodes = {i % 7, (i + 2) % 7, (i + 4) % 7};
    tasks.push_back(t);
  }
  for (auto _ : state) {
    auto s = mr::schedule_map_phase(cluster, tasks);
    benchmark::DoNotOptimize(s.makespan);
  }
}
BENCHMARK(BM_ScheduleMapPhase)->Arg(32)->Arg(256);

}  // namespace

int main(int argc, char** argv) {
  ::benchmark::Initialize(&argc, argv);
  reproduce_locality_ablation();
  ::benchmark::RunSpecifiedBenchmarks();
  return 0;
}
