// Immutable, cache-friendly packed R-Tree for the geo-query serving layer
// (ROADMAP item 3).
//
// The incremental `index::RTree` is a *build-time* structure: Guttman
// insertion, per-node child vectors, merge() for the MapReduce construction.
// Serving heavy read traffic wants the opposite trade-off — no pointers, no
// per-node allocations, nodes laid out contiguously so a query touches a
// handful of cache lines — and never mutates, so any number of threads can
// query one tree without synchronization.
//
// Construction is Sort-Tile-Recursive (STR) bulk loading, applied at every
// level: points are sorted into ~sqrt(L) longitude slices and by latitude
// within a slice, packed into full leaves, and each upper level re-tiles the
// level below by node centers. The result is a single `std::vector<Node>`
// (leaves first, root last) over a single `std::vector<ServingPoint>` in
// leaf order; a node's children are a contiguous [first, first+count) range,
// so traversal is index arithmetic.
//
// Every query has a deterministic result order (ties broken by id, then
// coordinates), which is what lets the serving bench compare results
// byte-for-byte against a brute-force oracle.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "index/bbox.h"

namespace gepeto::serving {

/// One indexed object: a raw trace point (radius 0, weight 1) or a
/// cluster/POI summary (centroid, containment radius, member count).
struct ServingPoint {
  double lat = 0.0;
  double lon = 0.0;
  std::uint64_t id = 0;      ///< packed trace id or cluster id
  double radius_m = 0.0;     ///< containment radius (0 for raw points)
  std::uint32_t weight = 1;  ///< cluster size (1 for raw points)

  friend bool operator==(const ServingPoint&, const ServingPoint&) = default;
};

class PackedRTree {
 public:
  /// A kNN hit: squared degree-space distance plus the point itself.
  struct Neighbor {
    double dist2 = 0.0;
    ServingPoint point;

    friend bool operator==(const Neighbor&, const Neighbor&) = default;
  };

  PackedRTree() = default;  ///< empty tree; every query returns nothing

  /// STR bulk load. Throws CheckFailure on non-finite coordinates or a
  /// negative/non-finite radius — the serving layer refuses to index
  /// garbage rather than letting NaN poison every comparison downstream.
  static PackedRTree build(std::vector<ServingPoint> points,
                           int node_capacity = 16);

  /// All points inside `box` (inclusive), ordered by (id, lat, lon).
  std::vector<ServingPoint> range(const index::Rect& box) const;

  /// The k nearest points to (lat, lon) by degree-space squared Euclidean
  /// distance, best-first traversal with a bounded priority queue. Ordered
  /// ascending by (dist2, id, lat, lon); fewer than k when size() < k.
  std::vector<Neighbor> knn(double lat, double lon, std::size_t k) const;

  /// The single nearest point (ties by id), or nullptr when empty. The
  /// returned pointer lives as long as the tree.
  const ServingPoint* nearest(double lat, double lon) const;

  std::size_t size() const { return points_.size(); }
  bool empty() const { return points_.empty(); }
  int height() const { return height_; }
  std::size_t num_nodes() const { return nodes_.size(); }
  int node_capacity() const { return capacity_; }

  /// Bounding box of everything stored (invalid Rect when empty).
  index::Rect bounds() const;

  /// Every stored point, in leaf (STR) order.
  std::span<const ServingPoint> points() const { return points_; }

  /// Bytes of the node + point arrays (the serving memory footprint).
  std::size_t memory_bytes() const;

  /// Structural invariants, asserted by tests: leaf ranges tile the point
  /// array, child counts within [1, capacity], parent boxes cover children,
  /// root covers everything. Throws CheckFailure on violation.
  void check_invariants() const;

 private:
  struct Node {
    index::Rect box;
    std::uint32_t first = 0;  ///< first point (leaf) or first child node
    std::uint32_t count = 0;
    bool leaf = false;
  };

  void collect_range(std::uint32_t node, const index::Rect& box,
                     std::vector<ServingPoint>& out) const;

  std::vector<ServingPoint> points_;  ///< leaf order
  std::vector<Node> nodes_;           ///< leaves first, root last
  std::uint32_t root_ = 0;            ///< index into nodes_ (valid if !empty)
  int height_ = 0;
  int capacity_ = 16;
};

}  // namespace gepeto::serving
