#include "serving/query_engine.h"

#include <bit>
#include <cmath>

#include "common/check.h"
#include "common/stopwatch.h"
#include "geo/distance.h"

namespace gepeto::serving {

namespace {

std::uint64_t bits(double v) { return std::bit_cast<std::uint64_t>(v); }

std::uint64_t next_engine_id() {
  static std::atomic<std::uint64_t> counter{0};
  return counter.fetch_add(1, std::memory_order_relaxed) + 1;
}

/// Thread-local snapshot cache: one slot per thread. Holds the snapshot a
/// thread last used, keyed by (engine id, epoch); refreshed under the
/// engine's mutex only when the epoch moved. The slot keeps the previous
/// epoch's snapshot alive until this thread's next query after a swap —
/// that is the "in-flight queries finish on the old epoch" guarantee.
struct TlsSlot {
  std::uint64_t engine = 0;
  std::uint64_t epoch = 0;
  std::shared_ptr<const IndexSnapshot> snapshot;
};
thread_local TlsSlot tls_slot;

}  // namespace

std::size_t QueryEngine::CacheKeyHash::operator()(const CacheKey& k) const {
  // FNV-1a over the key fields; good enough to spread shards and buckets.
  std::uint64_t h = 1469598103934665603ULL;
  const auto mix = [&h](std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      h ^= (v >> (8 * i)) & 0xFF;
      h *= 1099511628211ULL;
    }
  };
  h ^= k.kind;
  h *= 1099511628211ULL;
  mix(k.a);
  mix(k.b);
  mix(k.c);
  mix(k.d);
  return static_cast<std::size_t>(h);
}

QueryEngine::QueryEngine(ServingConfig config) : id_(next_engine_id()) {
  GEPETO_CHECK(config.cache_shards >= 1);
  if (config.cache_capacity > 0) {
    const auto shards = static_cast<std::size_t>(config.cache_shards);
    per_shard_capacity_ =
        std::max<std::size_t>(1, config.cache_capacity / shards);
    shards_.reserve(shards);
    for (std::size_t i = 0; i < shards; ++i)
      shards_.push_back(std::make_unique<Shard>());
  }
  if (config.metrics != nullptr) {
    auto& m = *config.metrics;
    queries_total_ =
        &m.counter("serving_queries_total", "queries answered by the engine");
    cache_hits_ = &m.counter("serving_cache_hits_total",
                             "queries answered from the result cache");
    cache_misses_ = &m.counter("serving_cache_misses_total",
                               "queries that had to traverse the index");
    epoch_swaps_ = &m.counter("serving_epoch_swaps_total",
                              "snapshots published (index rebuilds)");
    epoch_gauge_ = &m.gauge("serving_epoch", "current snapshot generation");
    latency_ = &m.histogram("serving_query_seconds",
                            telemetry::default_latency_buckets(),
                            "per-query wall latency");
  }
}

std::uint64_t QueryEngine::publish(
    std::shared_ptr<const IndexSnapshot> snapshot) {
  GEPETO_CHECK_MSG(snapshot != nullptr, "cannot publish a null snapshot");
  std::uint64_t e;
  {
    std::lock_guard<std::mutex> lock(mu_);
    current_ = std::move(snapshot);
    e = epoch_.load(std::memory_order_relaxed) + 1;
    epoch_.store(e, std::memory_order_release);
  }
  if (epoch_swaps_ != nullptr) epoch_swaps_->inc();
  if (epoch_gauge_ != nullptr) epoch_gauge_->set(static_cast<double>(e));
  return e;
}

std::shared_ptr<const IndexSnapshot> QueryEngine::snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  return current_;
}

QueryEngine::Acquired QueryEngine::acquire() const {
  const std::uint64_t e = epoch_.load(std::memory_order_acquire);
  if (tls_slot.engine == id_ && tls_slot.epoch == e)
    return {tls_slot.snapshot, e};
  std::lock_guard<std::mutex> lock(mu_);
  // Re-read under the lock: epoch and snapshot must match as a pair.
  tls_slot.engine = id_;
  tls_slot.epoch = epoch_.load(std::memory_order_relaxed);
  tls_slot.snapshot = current_;
  return {tls_slot.snapshot, tls_slot.epoch};
}

QueryEngine::Shard& QueryEngine::shard_for(const CacheKey& key) const {
  return *shards_[CacheKeyHash{}(key) % shards_.size()];
}

std::shared_ptr<const QueryEngine::CacheValue> QueryEngine::cache_get(
    const CacheKey& key, std::uint64_t epoch) const {
  Shard& s = shard_for(key);
  std::lock_guard<std::mutex> lock(s.mu);
  const auto it = s.map.find(key);
  if (it == s.map.end()) return nullptr;
  if (it->second.value->epoch != epoch) {
    // Stale epoch: drop it now rather than letting dead answers age out.
    s.lru.erase(it->second.pos);
    s.map.erase(it);
    return nullptr;
  }
  s.lru.splice(s.lru.begin(), s.lru, it->second.pos);
  return it->second.value;
}

void QueryEngine::cache_put(const CacheKey& key,
                            std::shared_ptr<const CacheValue> value) const {
  Shard& s = shard_for(key);
  std::lock_guard<std::mutex> lock(s.mu);
  const auto it = s.map.find(key);
  if (it != s.map.end()) {
    it->second.value = std::move(value);
    s.lru.splice(s.lru.begin(), s.lru, it->second.pos);
    return;
  }
  s.lru.push_front(key);
  s.map.emplace(key, Shard::Slot{std::move(value), s.lru.begin()});
  if (s.map.size() > per_shard_capacity_) {
    s.map.erase(s.lru.back());
    s.lru.pop_back();
  }
}

void QueryEngine::count_query(double seconds, bool hit) const {
  if (queries_total_ != nullptr) queries_total_->inc();
  if (cache_enabled()) {
    if (hit) {
      if (cache_hits_ != nullptr) cache_hits_->inc();
    } else {
      if (cache_misses_ != nullptr) cache_misses_->inc();
    }
  }
  if (latency_ != nullptr) latency_->observe(seconds);
}

KnnResult QueryEngine::knn(double lat, double lon, std::uint32_t k) const {
  Stopwatch sw;
  const Acquired a = acquire();
  KnnResult r;
  r.epoch = a.epoch;
  if (a.snapshot == nullptr) {
    count_query(sw.seconds(), false);
    return r;
  }
  const CacheKey key{0, bits(lat), bits(lon), k, 0};
  if (cache_enabled()) {
    if (const auto hit = cache_get(key, a.epoch)) {
      r.cache_hit = true;
      r.neighbors = hit->neighbors;
      count_query(sw.seconds(), true);
      return r;
    }
  }
  r.neighbors = a.snapshot->tree.knn(lat, lon, k);
  if (cache_enabled()) {
    auto v = std::make_shared<CacheValue>();
    v->epoch = a.epoch;
    v->neighbors = r.neighbors;
    cache_put(key, std::move(v));
  }
  count_query(sw.seconds(), false);
  return r;
}

RangeResult QueryEngine::range(const index::Rect& box) const {
  Stopwatch sw;
  const Acquired a = acquire();
  RangeResult r;
  r.epoch = a.epoch;
  if (a.snapshot == nullptr) {
    count_query(sw.seconds(), false);
    return r;
  }
  const CacheKey key{1, bits(box.min_lat), bits(box.min_lon),
                     bits(box.max_lat), bits(box.max_lon)};
  if (cache_enabled()) {
    if (const auto hit = cache_get(key, a.epoch)) {
      r.cache_hit = true;
      r.points = hit->points;
      count_query(sw.seconds(), true);
      return r;
    }
  }
  r.points = a.snapshot->tree.range(box);
  if (cache_enabled()) {
    auto v = std::make_shared<CacheValue>();
    v->epoch = a.epoch;
    v->points = r.points;
    cache_put(key, std::move(v));
  }
  count_query(sw.seconds(), false);
  return r;
}

LocateResult QueryEngine::locate(double lat, double lon) const {
  Stopwatch sw;
  const Acquired a = acquire();
  LocateResult r;
  r.epoch = a.epoch;
  if (a.snapshot == nullptr) {
    count_query(sw.seconds(), false);
    return r;
  }
  const CacheKey key{2, bits(lat), bits(lon), 0, 0};
  if (cache_enabled()) {
    if (const auto hit = cache_get(key, a.epoch)) {
      r = hit->locate;
      r.epoch = a.epoch;
      r.cache_hit = true;
      count_query(sw.seconds(), true);
      return r;
    }
  }
  if (const ServingPoint* p = a.snapshot->tree.nearest(lat, lon)) {
    r.found = true;
    r.point = *p;
    r.distance_m = geo::haversine_meters(lat, lon, p->lat, p->lon);
    r.contained = p->radius_m > 0.0 && r.distance_m <= p->radius_m;
  }
  if (cache_enabled()) {
    auto v = std::make_shared<CacheValue>();
    v->epoch = a.epoch;
    v->locate = r;
    cache_put(key, std::move(v));
  }
  count_query(sw.seconds(), false);
  return r;
}

}  // namespace gepeto::serving
