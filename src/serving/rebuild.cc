#include "serving/rebuild.h"

#include <memory>
#include <utility>

#include "common/check.h"
#include "geo/geolife.h"
#include "mapreduce/dfs.h"
#include "serving/builders.h"

namespace gepeto::serving {

RebuildResult rebuild_and_publish(mr::Dfs& dfs,
                                  const mr::ClusterConfig& cluster,
                                  const std::string& input,
                                  const std::string& work_prefix,
                                  const RebuildConfig& config,
                                  QueryEngine& engine) {
  RebuildResult out;
  flow::Flow f("serving-rebuild");

  if (config.kind == SnapshotKind::kPoints) {
    f.add_native("publish-points", [&](flow::FlowEngine& e) {
       const auto dataset = geo::dataset_from_dfs(e.dfs(), input);
       auto snap = snapshot_from_dataset(dataset, config.node_capacity);
       out.entries = snap->tree.size();
       out.epoch = engine.publish(std::move(snap));
     }).reads(input);
  } else {
    core::DjClusterConfig dj = config.djcluster;
    dj.keep_intermediates = config.keep_intermediates;
    core::add_djcluster_nodes(f, input, work_prefix, dj);
    f.add_native("publish-clusters", [&, work_prefix](flow::FlowEngine& e) {
       const core::DjClusterResult result =
           core::parse_djcluster_output(e.dfs(), work_prefix);
       const auto preprocessed =
           geo::dataset_from_dfs(e.dfs(), work_prefix + "/preprocessed/");
       const auto summaries = core::summarize_clusters(result, preprocessed);
       auto snap = snapshot_from_clusters(summaries, config.node_capacity);
       out.entries = snap->tree.size();
       out.epoch = engine.publish(std::move(snap));
     })
        .reads(work_prefix + "/clusters")
        .reads(work_prefix + "/preprocessed");
  }

  flow::FlowOptions options;
  options.keep_intermediates = config.keep_intermediates;
  out.flow = f.run(dfs, cluster, options);
  GEPETO_CHECK_MSG(out.epoch > 0, "rebuild flow finished without publishing");
  return out;
}

}  // namespace gepeto::serving
