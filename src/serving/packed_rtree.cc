#include "serving/packed_rtree.h"

#include <algorithm>
#include <cmath>
#include <queue>

#include "common/check.h"

namespace gepeto::serving {

namespace {

/// Full deterministic order for selection ties: (dist2, id, lat, lon).
bool better(double d2a, const ServingPoint& a, double d2b,
            const ServingPoint& b) {
  if (d2a != d2b) return d2a < d2b;
  if (a.id != b.id) return a.id < b.id;
  if (a.lat != b.lat) return a.lat < b.lat;
  return a.lon < b.lon;
}

std::size_t ceil_div(std::size_t a, std::size_t b) { return (a + b - 1) / b; }

}  // namespace

PackedRTree PackedRTree::build(std::vector<ServingPoint> points,
                               int node_capacity) {
  GEPETO_CHECK(node_capacity >= 2);
  for (const auto& p : points) {
    GEPETO_CHECK_MSG(std::isfinite(p.lat) && std::isfinite(p.lon),
                     "non-finite coordinate in serving index");
    GEPETO_CHECK_MSG(std::isfinite(p.radius_m) && p.radius_m >= 0.0,
                     "bad containment radius in serving index");
  }

  PackedRTree t;
  t.capacity_ = node_capacity;
  if (points.empty()) return t;

  // STR at the point level: sort by longitude, cut into ~sqrt(leaves)
  // vertical slices, sort each slice by latitude, pack runs of `capacity`.
  const std::size_t n = points.size();
  const auto m = static_cast<std::size_t>(node_capacity);
  const std::size_t num_leaves = ceil_div(n, m);
  const auto num_slices = static_cast<std::size_t>(
      std::ceil(std::sqrt(static_cast<double>(num_leaves))));
  const std::size_t slice_points = ceil_div(n, num_slices);

  const auto by_lon = [](const ServingPoint& a, const ServingPoint& b) {
    if (a.lon != b.lon) return a.lon < b.lon;
    if (a.lat != b.lat) return a.lat < b.lat;
    return a.id < b.id;
  };
  const auto by_lat = [](const ServingPoint& a, const ServingPoint& b) {
    if (a.lat != b.lat) return a.lat < b.lat;
    if (a.lon != b.lon) return a.lon < b.lon;
    return a.id < b.id;
  };
  std::sort(points.begin(), points.end(), by_lon);
  for (std::size_t s = 0; s < n; s += slice_points) {
    const std::size_t end = std::min(n, s + slice_points);
    std::sort(points.begin() + static_cast<std::ptrdiff_t>(s),
              points.begin() + static_cast<std::ptrdiff_t>(end), by_lat);
  }
  t.points_ = std::move(points);

  // Leaf level: one node per run of `capacity` points.
  std::vector<Node> level;
  level.reserve(num_leaves);
  for (std::size_t i = 0; i < n; i += m) {
    Node leaf;
    leaf.leaf = true;
    leaf.first = static_cast<std::uint32_t>(i);
    leaf.count = static_cast<std::uint32_t>(std::min(m, n - i));
    for (std::uint32_t j = 0; j < leaf.count; ++j) {
      const auto& p = t.points_[i + j];
      leaf.box.expand(index::Rect::point(p.lat, p.lon));
    }
    level.push_back(leaf);
  }

  // Re-tile each level by node centers (STR applied recursively), append it
  // to the flat array, then pack runs of `capacity` children into parents.
  // Children stay contiguous because the level is sorted *before* appending.
  const auto str_sort_level = [m](std::vector<Node>& nodes) {
    const std::size_t count = nodes.size();
    const std::size_t parents = ceil_div(count, m);
    const auto slices = static_cast<std::size_t>(
        std::ceil(std::sqrt(static_cast<double>(parents))));
    const std::size_t per_slice = ceil_div(count, slices);
    const auto by_clon = [](const Node& a, const Node& b) {
      if (a.box.center_lon() != b.box.center_lon())
        return a.box.center_lon() < b.box.center_lon();
      if (a.box.center_lat() != b.box.center_lat())
        return a.box.center_lat() < b.box.center_lat();
      return a.first < b.first;
    };
    const auto by_clat = [](const Node& a, const Node& b) {
      if (a.box.center_lat() != b.box.center_lat())
        return a.box.center_lat() < b.box.center_lat();
      if (a.box.center_lon() != b.box.center_lon())
        return a.box.center_lon() < b.box.center_lon();
      return a.first < b.first;
    };
    std::sort(nodes.begin(), nodes.end(), by_clon);
    for (std::size_t s = 0; s < count; s += per_slice) {
      const std::size_t end = std::min(count, s + per_slice);
      std::sort(nodes.begin() + static_cast<std::ptrdiff_t>(s),
                nodes.begin() + static_cast<std::ptrdiff_t>(end), by_clat);
    }
  };

  for (;;) {
    if (level.size() > 1) str_sort_level(level);
    const auto base = static_cast<std::uint32_t>(t.nodes_.size());
    t.nodes_.insert(t.nodes_.end(), level.begin(), level.end());
    ++t.height_;
    if (level.size() == 1) {
      t.root_ = base;
      break;
    }
    std::vector<Node> parents;
    parents.reserve(ceil_div(level.size(), m));
    for (std::size_t j = 0; j < level.size(); j += m) {
      Node p;
      p.leaf = false;
      p.first = base + static_cast<std::uint32_t>(j);
      p.count = static_cast<std::uint32_t>(std::min(m, level.size() - j));
      for (std::uint32_t c = 0; c < p.count; ++c)
        p.box.expand(level[j + c].box);
      parents.push_back(p);
    }
    level = std::move(parents);
  }
  return t;
}

index::Rect PackedRTree::bounds() const {
  return empty() ? index::Rect{} : nodes_[root_].box;
}

std::size_t PackedRTree::memory_bytes() const {
  return nodes_.size() * sizeof(Node) + points_.size() * sizeof(ServingPoint);
}

void PackedRTree::collect_range(std::uint32_t node, const index::Rect& box,
                                std::vector<ServingPoint>& out) const {
  const Node& n = nodes_[node];
  if (!n.box.intersects(box)) return;
  if (n.leaf) {
    for (std::uint32_t i = 0; i < n.count; ++i) {
      const auto& p = points_[n.first + i];
      if (box.contains(p.lat, p.lon)) out.push_back(p);
    }
    return;
  }
  for (std::uint32_t c = 0; c < n.count; ++c)
    collect_range(n.first + c, box, out);
}

std::vector<ServingPoint> PackedRTree::range(const index::Rect& box) const {
  std::vector<ServingPoint> out;
  if (!empty() && box.valid()) collect_range(root_, box, out);
  std::sort(out.begin(), out.end(),
            [](const ServingPoint& a, const ServingPoint& b) {
              if (a.id != b.id) return a.id < b.id;
              if (a.lat != b.lat) return a.lat < b.lat;
              return a.lon < b.lon;
            });
  return out;
}

std::vector<PackedRTree::Neighbor> PackedRTree::knn(double lat, double lon,
                                                    std::size_t k) const {
  std::vector<Neighbor> result;
  if (empty() || k == 0) return result;

  // Best-first traversal: a min-heap of subtrees keyed by box distance, and
  // a bounded max-heap of the k best points seen so far. A subtree is only
  // expanded while it could still beat (or tie) the current k-th best.
  struct Cand {
    double dist2;
    std::uint32_t node;
  };
  const auto worse_cand = [](const Cand& a, const Cand& b) {
    if (a.dist2 != b.dist2) return a.dist2 > b.dist2;
    return a.node > b.node;  // deterministic expansion order
  };
  std::priority_queue<Cand, std::vector<Cand>, decltype(worse_cand)> frontier(
      worse_cand);
  frontier.push({nodes_[root_].box.min_dist2(lat, lon), root_});

  // Max-heap by (dist2, id, lat, lon): top = worst of the current k best.
  const auto heap_less = [](const Neighbor& a, const Neighbor& b) {
    return better(a.dist2, a.point, b.dist2, b.point);
  };
  std::priority_queue<Neighbor, std::vector<Neighbor>, decltype(heap_less)>
      best(heap_less);

  while (!frontier.empty()) {
    const Cand cand = frontier.top();
    frontier.pop();
    // Strictly worse than a full result set: nothing below can help. Equal
    // distances must still be expanded (a smaller id wins the tie).
    if (best.size() == k && cand.dist2 > best.top().dist2) break;
    const Node& n = nodes_[cand.node];
    if (n.leaf) {
      for (std::uint32_t i = 0; i < n.count; ++i) {
        const auto& p = points_[n.first + i];
        const double dlat = p.lat - lat, dlon = p.lon - lon;
        const double d2 = dlat * dlat + dlon * dlon;
        if (best.size() < k) {
          best.push({d2, p});
        } else if (better(d2, p, best.top().dist2, best.top().point)) {
          best.pop();
          best.push({d2, p});
        }
      }
    } else {
      for (std::uint32_t c = 0; c < n.count; ++c) {
        const std::uint32_t child = n.first + c;
        const double d2 = nodes_[child].box.min_dist2(lat, lon);
        if (best.size() < k || d2 <= best.top().dist2)
          frontier.push({d2, child});
      }
    }
  }

  result.reserve(best.size());
  while (!best.empty()) {
    result.push_back(best.top());
    best.pop();
  }
  std::reverse(result.begin(), result.end());  // nearest first
  return result;
}

const ServingPoint* PackedRTree::nearest(double lat, double lon) const {
  if (empty()) return nullptr;
  struct Cand {
    double dist2;
    std::uint32_t node;
  };
  const auto worse_cand = [](const Cand& a, const Cand& b) {
    if (a.dist2 != b.dist2) return a.dist2 > b.dist2;
    return a.node > b.node;
  };
  std::priority_queue<Cand, std::vector<Cand>, decltype(worse_cand)> frontier(
      worse_cand);
  frontier.push({nodes_[root_].box.min_dist2(lat, lon), root_});
  const ServingPoint* best = nullptr;
  double best_d2 = 0.0;
  while (!frontier.empty()) {
    const Cand cand = frontier.top();
    frontier.pop();
    if (best != nullptr && cand.dist2 > best_d2) break;
    const Node& n = nodes_[cand.node];
    if (n.leaf) {
      for (std::uint32_t i = 0; i < n.count; ++i) {
        const auto& p = points_[n.first + i];
        const double dlat = p.lat - lat, dlon = p.lon - lon;
        const double d2 = dlat * dlat + dlon * dlon;
        if (best == nullptr || better(d2, p, best_d2, *best)) {
          best = &p;
          best_d2 = d2;
        }
      }
    } else {
      for (std::uint32_t c = 0; c < n.count; ++c) {
        const std::uint32_t child = n.first + c;
        const double d2 = nodes_[child].box.min_dist2(lat, lon);
        if (best == nullptr || d2 <= best_d2) frontier.push({d2, child});
      }
    }
  }
  return best;
}

void PackedRTree::check_invariants() const {
  if (empty()) {
    GEPETO_CHECK(nodes_.empty() && height_ == 0);
    return;
  }
  GEPETO_CHECK(root_ == nodes_.size() - 1);
  std::vector<bool> covered(points_.size(), false);
  std::vector<bool> visited(nodes_.size(), false);
  // Walk from the root; every node must be reachable exactly once and every
  // point covered exactly once.
  std::vector<std::uint32_t> stack = {root_};
  while (!stack.empty()) {
    const std::uint32_t id = stack.back();
    stack.pop_back();
    GEPETO_CHECK(id < nodes_.size() && !visited[id]);
    visited[id] = true;
    const Node& n = nodes_[id];
    GEPETO_CHECK(n.count >= 1 &&
                 n.count <= static_cast<std::uint32_t>(capacity_));
    GEPETO_CHECK(n.box.valid());
    if (n.leaf) {
      for (std::uint32_t i = 0; i < n.count; ++i) {
        const std::uint32_t pi = n.first + i;
        GEPETO_CHECK(pi < points_.size() && !covered[pi]);
        covered[pi] = true;
        GEPETO_CHECK(n.box.contains(points_[pi].lat, points_[pi].lon));
      }
    } else {
      for (std::uint32_t c = 0; c < n.count; ++c) {
        const std::uint32_t child = n.first + c;
        GEPETO_CHECK(child < nodes_.size());
        GEPETO_CHECK(n.box.contains(nodes_[child].box));
        stack.push_back(child);
      }
    }
  }
  for (bool v : visited) GEPETO_CHECK(v);
  for (bool c : covered) GEPETO_CHECK(c);
}

}  // namespace gepeto::serving
