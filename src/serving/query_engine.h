// QueryEngine — the concurrent read path of the geo-query serving layer.
//
// Wraps an immutable IndexSnapshot (a packed STR R-Tree plus provenance)
// behind three query kinds — k-NN, bounding-box range, and
// point-in-cluster / nearest-POI lookup — callable from any number of
// threads. The design goals, in order:
//
//   * Lock-free steady-state reads. A query acquires the current snapshot
//     through a thread-local cache keyed by a generation (epoch) counter:
//     one acquire-load of an atomic, no reference-count traffic, no mutex.
//     Only the first query a thread issues after an epoch swap takes the
//     publish mutex to refresh its cached std::shared_ptr.
//
//   * Epoch-based swap. publish() installs a new snapshot and bumps the
//     epoch; in-flight queries keep using the snapshot they acquired (their
//     thread-local shared_ptr keeps it alive), so a rebuild never blocks or
//     breaks readers. Every result carries the epoch it was answered from,
//     which is what lets a load generator verify each answer against the
//     matching oracle even while snapshots are being swapped under it.
//
//   * Result caching for hot regions. A sharded LRU cache keyed by the exact
//     query signature (kind + coordinate bits + k) serves repeated queries
//     — the common case under Zipf-skewed traffic — without touching the
//     tree. Entries are tagged with their epoch; a hit from a previous epoch
//     is treated as a miss and replaced, so cached answers are always
//     byte-identical to a fresh traversal of the current snapshot.
//
//   * Telemetry. With a MetricsRegistry attached, the engine exports
//     serving_queries_total, serving_cache_{hits,misses}_total,
//     serving_epoch_swaps_total, a serving_epoch gauge, and a fixed-bucket
//     serving_query_seconds histogram (p99 via Histogram::quantile). The
//     histogram is the one mutex on the query path; run without metrics for
//     a fully lock-free read path.
#pragma once

#include <atomic>
#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "index/bbox.h"
#include "serving/packed_rtree.h"
#include "telemetry/metrics.h"

namespace gepeto::serving {

/// What publish() installs: the packed tree plus provenance. Immutable once
/// published (the engine only ever hands out shared_ptr<const>).
struct IndexSnapshot {
  PackedRTree tree;
  std::string source;  ///< e.g. "points:/in" or "djcluster:/work"
};

struct ServingConfig {
  /// Cached query results across all shards; 0 disables the cache.
  std::size_t cache_capacity = 4096;
  int cache_shards = 8;
  /// Optional: serving_* counters/gauge/histogram are registered here.
  telemetry::MetricsRegistry* metrics = nullptr;
};

struct KnnResult {
  std::uint64_t epoch = 0;  ///< snapshot generation that answered the query
  bool cache_hit = false;
  std::vector<PackedRTree::Neighbor> neighbors;
};

struct RangeResult {
  std::uint64_t epoch = 0;
  bool cache_hit = false;
  std::vector<ServingPoint> points;
};

struct LocateResult {
  std::uint64_t epoch = 0;
  bool cache_hit = false;
  bool found = false;      ///< the snapshot had at least one point
  bool contained = false;  ///< haversine(query, point) <= point.radius_m
  ServingPoint point;      ///< the nearest indexed point
  double distance_m = 0.0; ///< haversine distance to it
};

class QueryEngine {
 public:
  explicit QueryEngine(ServingConfig config = {});
  QueryEngine(const QueryEngine&) = delete;
  QueryEngine& operator=(const QueryEngine&) = delete;

  /// Atomically install `snapshot` as the new current epoch. Readers that
  /// already acquired the previous snapshot finish on it. Returns the new
  /// epoch (1 for the first publish).
  std::uint64_t publish(std::shared_ptr<const IndexSnapshot> snapshot);

  /// Current epoch: 0 until the first publish.
  std::uint64_t epoch() const {
    return epoch_.load(std::memory_order_acquire);
  }

  /// The current snapshot (nullptr before the first publish).
  std::shared_ptr<const IndexSnapshot> snapshot() const;

  /// k nearest points to (lat, lon); empty before the first publish.
  KnnResult knn(double lat, double lon, std::uint32_t k) const;

  /// Points inside `box`, ordered by (id, lat, lon).
  RangeResult range(const index::Rect& box) const;

  /// Nearest point / containing cluster: the nearest indexed point by
  /// degree-space distance, its haversine distance in meters, and whether
  /// the query point falls within its containment radius.
  LocateResult locate(double lat, double lon) const;

 private:
  struct CacheKey {
    std::uint8_t kind = 0;  // 0 = knn, 1 = range, 2 = locate
    std::uint64_t a = 0, b = 0, c = 0, d = 0;
    friend bool operator==(const CacheKey&, const CacheKey&) = default;
  };
  struct CacheKeyHash {
    std::size_t operator()(const CacheKey& k) const;
  };
  /// One cached answer; which fields are meaningful depends on the kind.
  struct CacheValue {
    std::uint64_t epoch = 0;
    std::vector<PackedRTree::Neighbor> neighbors;
    std::vector<ServingPoint> points;
    LocateResult locate;
  };
  struct Shard {
    std::mutex mu;
    std::list<CacheKey> lru;  ///< front = most recently used
    struct Slot {
      std::shared_ptr<const CacheValue> value;
      std::list<CacheKey>::iterator pos;
    };
    std::unordered_map<CacheKey, Slot, CacheKeyHash> map;
  };

  /// Snapshot + the epoch it belongs to, consistent as a pair.
  struct Acquired {
    std::shared_ptr<const IndexSnapshot> snapshot;
    std::uint64_t epoch = 0;
  };
  Acquired acquire() const;

  bool cache_enabled() const { return per_shard_capacity_ > 0; }
  Shard& shard_for(const CacheKey& key) const;
  /// nullptr on miss or on an entry from a different epoch (evicted).
  std::shared_ptr<const CacheValue> cache_get(const CacheKey& key,
                                              std::uint64_t epoch) const;
  void cache_put(const CacheKey& key,
                 std::shared_ptr<const CacheValue> value) const;
  void count_query(double seconds, bool hit) const;

  const std::uint64_t id_;  ///< distinguishes engines in the thread cache
  mutable std::mutex mu_;   ///< guards current_; held briefly by publish +
                            ///< first post-swap acquire per thread
  std::shared_ptr<const IndexSnapshot> current_;
  std::atomic<std::uint64_t> epoch_{0};

  std::size_t per_shard_capacity_ = 0;
  mutable std::vector<std::unique_ptr<Shard>> shards_;

  telemetry::Counter* queries_total_ = nullptr;
  telemetry::Counter* cache_hits_ = nullptr;
  telemetry::Counter* cache_misses_ = nullptr;
  telemetry::Counter* epoch_swaps_ = nullptr;
  telemetry::Gauge* epoch_gauge_ = nullptr;
  telemetry::Histogram* latency_ = nullptr;
};

}  // namespace gepeto::serving
