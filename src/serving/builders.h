// Snapshot builders: turn the repo's data products — in-memory datasets,
// DJ-Cluster output, columnar DFS files — into IndexSnapshots the
// QueryEngine can publish.
//
// The columnar builder is where the serving layer meets the storage layer:
// it prunes whole blocks with the footer's min/max lat/lon stats before
// decoding anything, so building a regional snapshot over a large columnar
// dataset touches only the blocks that can intersect the region.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>

#include "gepeto/djcluster.h"
#include "geo/trace.h"
#include "index/bbox.h"
#include "serving/query_engine.h"

namespace gepeto::mr {
class Dfs;
}

namespace gepeto::serving {

/// Index every trace of `dataset` as a point (id = pack_trace_id(user, ts),
/// no containment radius, weight 1).
std::shared_ptr<const IndexSnapshot> snapshot_from_dataset(
    const geo::GeolocatedDataset& dataset, int node_capacity = 16);

/// Index DJ-Cluster summaries as POIs: one point per cluster centroid with
/// the cluster's containment radius and size, so locate() answers
/// point-in-cluster and knn() answers nearest-POI.
std::shared_ptr<const IndexSnapshot> snapshot_from_clusters(
    const std::vector<core::ClusterSummary>& clusters, int node_capacity = 16);

/// What the columnar builder skipped and kept.
struct ColumnarScanStats {
  std::uint64_t blocks_total = 0;
  std::uint64_t blocks_pruned = 0;  ///< skipped via footer min/max stats
  std::uint64_t records = 0;        ///< records indexed (post region filter)
};

/// Index the traces stored under a columnar DFS prefix
/// (storage::dataset_to_dfs_columnar layout). With `region` set, footer
/// stats prune non-intersecting blocks without decoding them and surviving
/// records are filtered exactly; `stats` (optional) reports the pruning.
std::shared_ptr<const IndexSnapshot> snapshot_from_columnar(
    const mr::Dfs& dfs, const std::string& prefix,
    std::optional<index::Rect> region = std::nullopt, int node_capacity = 16,
    ColumnarScanStats* stats = nullptr);

}  // namespace gepeto::serving
