// Live index rebuild: run the build pipeline as a JobFlow and publish the
// resulting snapshot into a QueryEngine — the write path of the serving
// layer. Readers keep answering from the previous epoch for the whole
// rebuild; the swap is the one publish() call at the end of the flow.
#pragma once

#include <cstdint>
#include <string>

#include "gepeto/djcluster.h"
#include "serving/query_engine.h"
#include "workflow/flow.h"

namespace gepeto::mr {
class Dfs;
}

namespace gepeto::serving {

enum class SnapshotKind {
  kPoints,    ///< index every trace of the input dataset
  kClusters,  ///< run DJ-Cluster and index the cluster summaries as POIs
};

struct RebuildConfig {
  SnapshotKind kind = SnapshotKind::kPoints;
  /// Clustering parameters (kClusters only).
  core::DjClusterConfig djcluster;
  int node_capacity = 16;
  /// Pin the flow's intermediate datasets instead of garbage-collecting.
  bool keep_intermediates = false;
};

struct RebuildResult {
  std::uint64_t epoch = 0;    ///< the epoch the new snapshot was published as
  std::uint64_t entries = 0;  ///< points in the published index
  flow::FlowResult flow;
};

/// Build a snapshot from the dataset under `input` (geo::dataset_to_dfs
/// layout) via a JobFlow and publish it into `engine`. kPoints is a single
/// native node; kClusters appends the full DJ-Cluster pipeline
/// (add_djcluster_nodes) and a publish node that summarizes
/// `work_prefix`/clusters against `work_prefix`/preprocessed. The publish
/// happens inside the flow, so flow-level fault tolerance covers it: a
/// failed rebuild leaves the engine on its previous epoch.
RebuildResult rebuild_and_publish(mr::Dfs& dfs,
                                  const mr::ClusterConfig& cluster,
                                  const std::string& input,
                                  const std::string& work_prefix,
                                  const RebuildConfig& config,
                                  QueryEngine& engine);

}  // namespace gepeto::serving
