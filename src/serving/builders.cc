#include "serving/builders.h"

#include <utility>
#include <vector>

#include "mapreduce/dfs.h"
#include "storage/colfile.h"

namespace gepeto::serving {

namespace {

std::shared_ptr<const IndexSnapshot> make_snapshot(
    std::vector<ServingPoint> points, int node_capacity, std::string source) {
  auto snap = std::make_shared<IndexSnapshot>();
  snap->tree = PackedRTree::build(std::move(points), node_capacity);
  snap->source = std::move(source);
  return snap;
}

}  // namespace

std::shared_ptr<const IndexSnapshot> snapshot_from_dataset(
    const geo::GeolocatedDataset& dataset, int node_capacity) {
  std::vector<ServingPoint> points;
  points.reserve(dataset.num_traces());
  for (const std::int32_t user : dataset.users()) {
    for (const geo::MobilityTrace& t : dataset.trail(user)) {
      points.push_back({t.latitude, t.longitude,
                        core::pack_trace_id(t.user_id, t.timestamp), 0.0, 1});
    }
  }
  return make_snapshot(std::move(points), node_capacity, "points:dataset");
}

std::shared_ptr<const IndexSnapshot> snapshot_from_clusters(
    const std::vector<core::ClusterSummary>& clusters, int node_capacity) {
  std::vector<ServingPoint> points;
  points.reserve(clusters.size());
  for (const core::ClusterSummary& c : clusters) {
    points.push_back(
        {c.centroid_lat, c.centroid_lon, c.cluster_id, c.radius_m, c.size});
  }
  return make_snapshot(std::move(points), node_capacity, "djcluster:summaries");
}

std::shared_ptr<const IndexSnapshot> snapshot_from_columnar(
    const mr::Dfs& dfs, const std::string& prefix,
    std::optional<index::Rect> region, int node_capacity,
    ColumnarScanStats* stats) {
  ColumnarScanStats local;
  std::vector<ServingPoint> points;
  for (const std::string& path : dfs.list(prefix)) {
    const storage::ColumnarFile file(dfs.read(path));
    for (std::size_t b = 0; b < file.num_blocks(); ++b) {
      local.blocks_total++;
      if (region.has_value()) {
        const storage::ColumnarBlockInfo& info = file.blocks()[b];
        const index::Rect block_box = index::Rect::of(
            info.min_lat, info.min_lon, info.max_lat, info.max_lon);
        if (!region->intersects(block_box)) {
          local.blocks_pruned++;
          continue;  // footer stats say nothing here can match
        }
      }
      for (const geo::MobilityTrace& t : file.read_block(b)) {
        if (region.has_value() &&
            !region->contains(t.latitude, t.longitude)) {
          continue;
        }
        points.push_back({t.latitude, t.longitude,
                          core::pack_trace_id(t.user_id, t.timestamp), 0.0, 1});
      }
    }
  }
  local.records = points.size();
  if (stats != nullptr) *stats = local;
  return make_snapshot(std::move(points), node_capacity,
                       "columnar:" + prefix);
}

}  // namespace gepeto::serving
