#include "ipc/worker_pool.h"

#include <fcntl.h>
#include <poll.h>
#include <signal.h>
#include <sys/socket.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdlib>
#include <filesystem>

#include "common/check.h"
#include "ipc/frame.h"
#include "ipc/wire.h"
#include "telemetry/metrics.h"
#include "telemetry/trace.h"

namespace gepeto::ipc {
namespace {

namespace fs = std::filesystem;
using Clock = std::chrono::steady_clock;

double seconds_between(Clock::time_point a, Clock::time_point b) {
  return std::chrono::duration<double>(b - a).count();
}

std::string serialize_request(const TaskRequest& req) {
  std::string out;
  wire::put_i64(out, req.phase);
  wire::put_i64(out, req.task);
  wire::put_i64(out, req.attempt);
  wire::put_u32(out, req.inject_crash ? 1 : 0);
  wire::put_u32(out, static_cast<std::uint32_t>(req.fault));
  wire::put_i64(out, req.fault_record);
  wire::put_vec(out, req.skip);
  wire::put_str(out, req.payload);
  return out;
}

TaskRequest parse_request(std::string_view payload) {
  wire::Reader r(payload);
  TaskRequest req;
  req.phase = static_cast<int>(r.get_i64());
  req.task = static_cast<int>(r.get_i64());
  req.attempt = static_cast<int>(r.get_i64());
  req.inject_crash = r.get_u32() != 0;
  req.fault = static_cast<ProcFaultKind>(r.get_u32());
  req.fault_record = r.get_i64();
  req.skip = wire::get_vec<std::int64_t>(r);
  req.payload = r.get_str();
  return req;
}

std::string default_scratch_root(const std::string& name) {
  const char* env = std::getenv("GEPETO_SCRATCH_DIR");
  fs::path base = env != nullptr && *env != '\0'
                      ? fs::path(env)
                      : fs::temp_directory_path();
  return (base / ("gepeto-" + name + "-" + std::to_string(::getpid())))
      .string();
}

std::string worker_dir(const std::string& root, pid_t pid) {
  return root + "/worker-" + std::to_string(pid);
}

void remove_tree(const std::string& path) {
  if (path.empty()) return;
  std::error_code ec;
  fs::remove_all(path, ec);  // best effort: abort paths must not throw
}

/// waitpid with a grace period: poll WNOHANG, then SIGKILL and reap for
/// real. Handles the "hangs after final flush" worker — one that delivered
/// its result but never exits. Returns the wait status, or -1 when the pid
/// was already reaped.
int wait_with_grace(pid_t pid, double grace_s) {
  const Clock::time_point deadline =
      Clock::now() + std::chrono::duration_cast<Clock::duration>(
                         std::chrono::duration<double>(grace_s));
  int status = 0;
  for (;;) {
    const pid_t r = ::waitpid(pid, &status, WNOHANG);
    if (r == pid) return status;
    if (r < 0) {
      if (errno == EINTR) continue;
      return -1;  // ECHILD: reaped elsewhere — caller treats as no-op
    }
    if (Clock::now() >= deadline) {
      ::kill(pid, SIGKILL);
      while (::waitpid(pid, &status, 0) < 0 && errno == EINTR) {
      }
      return status;
    }
    ::usleep(2000);
  }
}

}  // namespace

const char* exit_category_name(ExitCategory c) {
  switch (c) {
    case ExitCategory::kClean:
      return "clean";
    case ExitCategory::kTaskError:
      return "task_error";
    case ExitCategory::kSignal:
      return "signal";
    case ExitCategory::kTimeout:
      return "timeout";
    case ExitCategory::kGarbled:
      return "garbled";
    case ExitCategory::kProtocol:
      return "protocol";
  }
  return "unknown";
}

// --- child side --------------------------------------------------------------

void WorkerTaskContext::progress(std::int64_t record) {
  if (fault_ == ProcFaultKind::kSigkillAtRecord && record >= fault_record_ &&
      fault_record_ >= 0) {
    ::kill(::getpid(), SIGKILL);  // real chaos: die exactly here, no cleanup
  }
  const Clock::time_point now = Clock::now();
  if (seconds_between(last_heartbeat_, now) >= heartbeat_interval_s_) {
    write_frame(fd_, FrameType::kHeartbeat, {});
    last_heartbeat_ = now;
  }
}

const std::string& WorkerTaskContext::scratch_dir() {
  if (attempt_dir_.empty()) {
    std::error_code ec;
    fs::create_directories(attempt_stem_, ec);
    attempt_dir_ = attempt_stem_;
  }
  return attempt_dir_;
}

void WorkerPool::worker_main(int fd) {
  // This function never returns: the child must _exit so it cannot fall back
  // into gtest / atexit machinery inherited from the jobtracker.
  const std::string my_scratch = worker_dir(scratch_root_, ::getpid());
  for (;;) {
    Frame frame;
    const FrameStatus status = read_frame(fd, frame);
    if (status != FrameStatus::kOk) ::_exit(0);  // jobtracker gone
    if (frame.type == FrameType::kShutdown) {
      remove_tree(my_scratch);
      ::_exit(0);
    }
    if (frame.type != FrameType::kTask) ::_exit(3);

    TaskRequest req;
    try {
      req = parse_request(frame.payload);
    } catch (...) {
      ::_exit(3);
    }

    if (req.fault == ProcFaultKind::kHangBeforeHeartbeat) {
      // Hang before the first heartbeat: the parent's deadline machinery —
      // not anything this process does — must end the attempt.
      for (;;) ::pause();
    }

    WorkerTaskContext ctx;
    ctx.fd_ = fd;
    ctx.heartbeat_interval_s_ = options_.heartbeat_interval_s;
    ctx.fault_ = req.fault;
    ctx.fault_record_ = req.fault_record;
    ctx.attempt_stem_ = my_scratch + "/attempt-" + std::to_string(req.phase) +
                        "-" + std::to_string(req.task) + "-" +
                        std::to_string(req.attempt);
    ctx.last_heartbeat_ = Clock::now();
    write_frame(fd, FrameType::kHeartbeat, {});  // alive before first record

    TaskOutcome out;
    try {
      out = runner_(req, ctx);
    } catch (...) {
      // The runner reports task-level failures through TaskOutcome; anything
      // escaping it is a programming error. Exit with the TaskError code so
      // the jobtracker's exit taxonomy sees it instead of masking the bug as
      // a retryable record failure.
      ::_exit(3);
    }
    remove_tree(ctx.attempt_dir_);

    bool sent;
    if (out.ok) {
      sent = write_frame(fd, FrameType::kResult, out.payload,
                         /*corrupt_crc=*/req.fault ==
                             ProcFaultKind::kGarbledFrame);
    } else {
      std::string payload;
      wire::put_i64(payload, out.failed_record);
      wire::put_str(payload, out.error);
      sent = write_frame(fd, FrameType::kTaskFailed, payload);
    }
    if (!sent) ::_exit(0);
  }
}

// --- parent side -------------------------------------------------------------

WorkerPool::WorkerPool(WorkerPoolOptions options, TaskRunner runner)
    : options_(std::move(options)),
      runner_(std::move(runner)),
      jitter_rng_(options_.seed ^ 0x5c7a7cb5u) {
  GEPETO_CHECK_MSG(options_.num_workers >= 1,
                   "WorkerPool needs at least one worker");
  GEPETO_CHECK(runner_ != nullptr);
  scratch_root_ = options_.scratch_root.empty()
                      ? default_scratch_root(options_.name)
                      : options_.scratch_root;
  {
    std::error_code ec;
    fs::create_directories(scratch_root_, ec);
  }
  GEPETO_CHECK_MSG(::pipe2(wake_pipe_, O_CLOEXEC | O_NONBLOCK) == 0,
                   "WorkerPool: pipe2 failed");
  workers_.resize(static_cast<std::size_t>(options_.num_workers));
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (int i = 0; i < options_.num_workers; ++i) spawn_worker(i);
  }
  dispatcher_ = std::thread([this] { dispatch_loop(); });
}

void WorkerPool::spawn_worker(int index) {
  Worker& w = workers_[static_cast<std::size_t>(index)];
  int sv[2];
  GEPETO_CHECK_MSG(::socketpair(AF_UNIX, SOCK_STREAM, 0, sv) == 0,
                   "WorkerPool: socketpair failed");
  const pid_t pid = ::fork();
  GEPETO_CHECK_MSG(pid >= 0, "WorkerPool: fork failed");
  if (pid == 0) {
    // Child: drop every jobtracker-side fd we inherited, then serve tasks.
    ::close(sv[0]);
    ::close(wake_pipe_[0]);
    ::close(wake_pipe_[1]);
    for (const Worker& other : workers_)
      if (other.fd >= 0) ::close(other.fd);
    worker_main(sv[1]);  // noreturn
  }
  ::close(sv[1]);
  // Mid-frame-hang safety net: poll() gates reads on readability, but a
  // worker that stalls after sending half a frame would otherwise pin the
  // dispatcher forever.
  struct timeval tv;
  const double rcv_timeout_s = std::max(1.0, options_.heartbeat_timeout_s);
  tv.tv_sec = static_cast<time_t>(rcv_timeout_s);
  tv.tv_usec = static_cast<suseconds_t>((rcv_timeout_s - static_cast<double>(
                                             tv.tv_sec)) * 1e6);
  ::setsockopt(sv[0], SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));

  const bool is_respawn = stats_.spawns > index || w.consecutive_deaths > 0;
  w.pid = pid;
  w.fd = sv[0];
  w.busy = false;
  w.timed_out = false;
  w.garbled = false;
  ++stats_.spawns;
  if (is_respawn) {
    ++stats_.respawns;
    const double recovery = seconds_between(w.death_detected, Clock::now());
    stats_.total_recovery_s += recovery;
    ++stats_.recoveries;
    if (auto* m = options_.telemetry.metrics)
      m->counter("mr_worker_respawns_total", "worker processes respawned")
          .inc();
    note_event("worker_respawn", index, std::to_string(pid));
  } else {
    if (auto* m = options_.telemetry.metrics)
      m->counter("mr_worker_spawns_total", "worker processes forked").inc();
    note_event("worker_spawn", index, std::to_string(pid));
  }
}

WorkerPool::~WorkerPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutting_down_ = true;
  }
  wake_dispatcher();
  dispatcher_.join();

  std::lock_guard<std::mutex> lock(mu_);
  while (!pending_.empty()) {
    pending_.front().promise.set_value(
        ExecResult{false, {}, ExitCategory::kProtocol, "pool shut down"});
    pending_.pop_front();
  }
  for (std::size_t i = 0; i < workers_.size(); ++i) {
    Worker& w = workers_[i];
    if (w.pid < 0) continue;
    write_frame(w.fd, FrameType::kShutdown, {});
  }
  for (std::size_t i = 0; i < workers_.size(); ++i) {
    Worker& w = workers_[i];
    if (w.pid < 0) continue;
    const int status = wait_with_grace(w.pid, /*grace_s=*/1.0);
    const ExitCategory category = categorize_exit(w, status);
    count_death(category);
    ++stats_.reaps;
    if (w.busy)
      fail_inflight(w, category, "pool shut down while attempt in flight");
    remove_tree(worker_dir(scratch_root_, w.pid));
    ::close(w.fd);
    w.fd = -1;
    w.pid = -1;
  }
  ::close(wake_pipe_[0]);
  ::close(wake_pipe_[1]);
  remove_tree(scratch_root_);
}

ExecResult WorkerPool::execute(TaskRequest request) {
  std::future<ExecResult> future;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (shutting_down_)
      return ExecResult{false, {}, ExitCategory::kProtocol, "pool shut down"};
    Pending pending;
    pending.request = std::move(request);
    future = pending.promise.get_future();
    pending_.push_back(std::move(pending));
  }
  wake_dispatcher();
  return future.get();
}

WorkerPoolStats WorkerPool::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

int WorkerPool::live_workers() const {
  std::lock_guard<std::mutex> lock(mu_);
  int live = 0;
  for (const Worker& w : workers_)
    if (w.pid > 0) ++live;
  return live;
}

std::vector<pid_t> WorkerPool::worker_pids() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<pid_t> pids;
  for (const Worker& w : workers_)
    if (w.pid > 0) pids.push_back(w.pid);
  return pids;
}

void WorkerPool::kill_worker(int index, int sig) {
  std::lock_guard<std::mutex> lock(mu_);
  const auto i = static_cast<std::size_t>(index);
  if (i < workers_.size() && workers_[i].pid > 0)
    ::kill(workers_[i].pid, sig);
}

bool WorkerPool::debug_reap(int index) {
  bool reaped = false;
  {
    std::lock_guard<std::mutex> lock(mu_);
    const auto i = static_cast<std::size_t>(index);
    if (i >= workers_.size()) return false;
    Worker& w = workers_[i];
    if (w.pid < 0) return false;  // double reap: idempotent no-op
    ::kill(w.pid, SIGKILL);
    reaped = reap_locked(index, ExitCategory::kSignal, "debug_reap");
  }
  wake_dispatcher();
  return reaped;
}

void WorkerPool::wake_dispatcher() {
  const char byte = 'w';
  while (::write(wake_pipe_[1], &byte, 1) < 0 && errno == EINTR) {
  }
}

void WorkerPool::count_death(ExitCategory category) {
  switch (category) {
    case ExitCategory::kClean:
      ++stats_.deaths_clean;
      break;
    case ExitCategory::kTaskError:
      ++stats_.deaths_task_error;
      break;
    case ExitCategory::kSignal:
      ++stats_.deaths_signal;
      break;
    case ExitCategory::kTimeout:
      ++stats_.deaths_timeout;
      break;
    case ExitCategory::kGarbled:
      ++stats_.deaths_garbled;
      break;
    case ExitCategory::kProtocol:
      ++stats_.deaths_protocol;
      break;
  }
  if (auto* m = options_.telemetry.metrics) {
    m->counter("mr_worker_deaths_total", "worker process deaths").inc();
    m->counter(std::string("mr_worker_deaths_") + exit_category_name(category) +
                   "_total",
               "worker deaths by exit category")
        .inc();
  }
}

void WorkerPool::note_event(const char* name, int index,
                            const std::string& detail) {
  if (auto* t = options_.telemetry.trace)
    t->wall_instant(name, "worker",
                    {{"worker", std::to_string(index)}, {"detail", detail}});
}

ExitCategory WorkerPool::categorize_exit(const Worker& w,
                                         int wait_status) const {
  // Parent-imposed endings outrank the raw wait status: the SIGKILL the
  // parent sent after a missed heartbeat must not read as generic "signal".
  if (w.timed_out) return ExitCategory::kTimeout;
  if (w.garbled) return ExitCategory::kGarbled;
  if (wait_status < 0) return ExitCategory::kProtocol;
  if (WIFSIGNALED(wait_status)) return ExitCategory::kSignal;
  if (WIFEXITED(wait_status)) {
    const int code = WEXITSTATUS(wait_status);
    if (code == 0) return ExitCategory::kClean;
    if (code == 3) return ExitCategory::kTaskError;
  }
  return ExitCategory::kProtocol;
}

void WorkerPool::fail_inflight(Worker& w, ExitCategory category,
                               const std::string& detail) {
  if (!w.busy) return;
  w.busy = false;
  ++stats_.tasks_failed;
  ExecResult result;
  result.worker_ok = false;
  result.category = category;
  result.error = std::string("worker died (") + exit_category_name(category) +
                 "): " + detail;
  w.inflight.set_value(std::move(result));
}

bool WorkerPool::reap_locked(int index, ExitCategory category,
                             const std::string& detail) {
  Worker& w = workers_[static_cast<std::size_t>(index)];
  if (w.pid < 0) return false;  // already reaped: idempotent
  const pid_t pid = w.pid;
  const int status = wait_with_grace(pid, /*grace_s=*/2.0);
  const ExitCategory final_category =
      category == ExitCategory::kProtocol && status >= 0
          ? categorize_exit(w, status)
          : category;
  ++stats_.reaps;
  count_death(final_category);
  fail_inflight(w, final_category, detail);
  ::close(w.fd);
  w.fd = -1;
  w.pid = -1;
  w.timed_out = false;
  w.garbled = false;
  remove_tree(worker_dir(scratch_root_, pid));
  note_event("worker_death", index,
             std::string(exit_category_name(final_category)) + ": " + detail);

  // Schedule the replacement with exponential backoff + seeded jitter so a
  // crash-looping worker cannot turn the dispatcher into a fork bomb.
  ++w.consecutive_deaths;
  const int exponent = std::min(w.consecutive_deaths - 1, 20);
  double backoff = std::min(options_.respawn_backoff_cap_s,
                            options_.respawn_backoff_base_s *
                                static_cast<double>(1u << exponent));
  backoff *= 0.5 + 0.5 * jitter_rng_.uniform();
  stats_.max_backoff_s = std::max(stats_.max_backoff_s, backoff);
  stats_.total_backoff_s += backoff;
  w.death_detected = Clock::now();
  w.respawn_at = Clock::now() + std::chrono::duration_cast<Clock::duration>(
                                    std::chrono::duration<double>(backoff));
  return true;
}

void WorkerPool::on_worker_death(int index, ExitCategory category,
                                 const std::string& detail) {
  Worker& w = workers_[static_cast<std::size_t>(index)];
  if (w.pid < 0) return;
  if (category == ExitCategory::kTimeout) {
    w.timed_out = true;
    ::kill(w.pid, SIGKILL);
  } else if (category == ExitCategory::kGarbled) {
    w.garbled = true;
    ::kill(w.pid, SIGKILL);
  }
  reap_locked(index, category, detail);
}

void WorkerPool::assign_pending_locked() {
  while (!pending_.empty()) {
    Worker* idle = nullptr;
    int idle_index = -1;
    for (std::size_t i = 0; i < workers_.size(); ++i) {
      if (workers_[i].pid > 0 && !workers_[i].busy) {
        idle = &workers_[i];
        idle_index = static_cast<int>(i);
        break;
      }
    }
    if (idle == nullptr) return;  // degraded: requests wait for a respawn

    Pending pending = std::move(pending_.front());
    pending_.pop_front();
    const std::string payload = serialize_request(pending.request);
    if (!write_frame(idle->fd, FrameType::kTask, payload)) {
      // The worker died between poll rounds; fail it over and retry the
      // request on the next idle worker.
      pending_.push_front(std::move(pending));
      on_worker_death(idle_index, ExitCategory::kProtocol,
                      "task dispatch write failed");
      continue;
    }
    idle->busy = true;
    idle->inflight = std::move(pending.promise);
    idle->heartbeat_deadline =
        Clock::now() + std::chrono::duration_cast<Clock::duration>(
                           std::chrono::duration<double>(
                               options_.heartbeat_timeout_s));
    ++stats_.tasks_dispatched;
    if (auto* m = options_.telemetry.metrics)
      m->counter("mr_worker_tasks_dispatched_total",
                 "task attempts shipped to worker processes")
          .inc();
  }
}

void WorkerPool::handle_worker_frame(int index) {
  Worker& w = workers_[static_cast<std::size_t>(index)];
  if (w.pid < 0 || w.fd < 0) return;  // raced with a reap
  Frame frame;
  const FrameStatus status = read_frame(w.fd, frame);
  switch (status) {
    case FrameStatus::kOk:
      break;
    case FrameStatus::kEof:
      on_worker_death(index, ExitCategory::kProtocol, "worker stream EOF");
      return;
    case FrameStatus::kTimeout:
      on_worker_death(index, ExitCategory::kTimeout,
                      "worker stalled mid-frame");
      return;
    case FrameStatus::kGarbled:
      on_worker_death(index, ExitCategory::kGarbled,
                      "frame failed CRC / bad magic");
      return;
    case FrameStatus::kError:
      on_worker_death(index, ExitCategory::kProtocol, "worker stream error");
      return;
  }

  switch (frame.type) {
    case FrameType::kHeartbeat: {
      ++stats_.heartbeats;
      if (auto* m = options_.telemetry.metrics)
        m->counter("mr_worker_heartbeats_total", "worker heartbeats received")
            .inc();
      w.heartbeat_deadline =
          Clock::now() + std::chrono::duration_cast<Clock::duration>(
                             std::chrono::duration<double>(
                                 options_.heartbeat_timeout_s));
      return;
    }
    case FrameType::kResult: {
      if (!w.busy) {
        on_worker_death(index, ExitCategory::kProtocol,
                        "result frame from idle worker");
        return;
      }
      w.busy = false;
      w.consecutive_deaths = 0;
      ++stats_.tasks_completed;
      ExecResult result;
      result.worker_ok = true;
      result.outcome.ok = true;
      result.outcome.payload = std::move(frame.payload);
      w.inflight.set_value(std::move(result));
      return;
    }
    case FrameType::kTaskFailed: {
      if (!w.busy) {
        on_worker_death(index, ExitCategory::kProtocol,
                        "failure frame from idle worker");
        return;
      }
      ExecResult result;
      result.worker_ok = true;
      result.outcome.ok = false;
      try {
        wire::Reader r(frame.payload);
        result.outcome.failed_record = r.get_i64();
        result.outcome.error = r.get_str();
      } catch (const wire::WireError& e) {
        on_worker_death(index, ExitCategory::kGarbled, e.what());
        return;
      }
      w.busy = false;
      w.consecutive_deaths = 0;
      ++stats_.tasks_completed;
      w.inflight.set_value(std::move(result));
      return;
    }
    default:
      on_worker_death(index, ExitCategory::kProtocol,
                      "unexpected frame type from worker");
      return;
  }
}

void WorkerPool::dispatch_loop() {
  std::vector<pollfd> fds;
  std::vector<int> fd_worker;  // pollfd index - 1 -> worker index
  for (;;) {
    Clock::time_point next_deadline = Clock::now() + std::chrono::seconds(1);
    fds.clear();
    fd_worker.clear();
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (shutting_down_) return;
      assign_pending_locked();
      const Clock::time_point now = Clock::now();
      for (std::size_t i = 0; i < workers_.size(); ++i) {
        Worker& w = workers_[i];
        if (w.pid > 0 && w.busy && w.heartbeat_deadline <= now) {
          ++stats_.heartbeat_timeouts;
          if (auto* m = options_.telemetry.metrics)
            m->counter("mr_worker_heartbeat_timeouts_total",
                       "worker heartbeat deadlines missed")
                .inc();
          on_worker_death(static_cast<int>(i), ExitCategory::kTimeout,
                          "heartbeat deadline missed");
        }
      }
      for (std::size_t i = 0; i < workers_.size(); ++i) {
        Worker& w = workers_[i];
        if (w.pid > 0) {
          fds.push_back(pollfd{w.fd, POLLIN, 0});
          fd_worker.push_back(static_cast<int>(i));
          if (w.busy && w.heartbeat_deadline < next_deadline)
            next_deadline = w.heartbeat_deadline;
        } else {
          if (w.respawn_at <= now) {
            spawn_worker(static_cast<int>(i));
            fds.push_back(pollfd{w.fd, POLLIN, 0});
            fd_worker.push_back(static_cast<int>(i));
          } else if (w.respawn_at < next_deadline) {
            next_deadline = w.respawn_at;
          }
        }
      }
      assign_pending_locked();
    }
    fds.push_back(pollfd{wake_pipe_[0], POLLIN, 0});

    const double until_s =
        std::max(0.0, seconds_between(Clock::now(), next_deadline));
    const int timeout_ms =
        std::clamp(static_cast<int>(until_s * 1000.0) + 1, 1, 1000);
    const int ready = ::poll(fds.data(), fds.size(), timeout_ms);
    if (ready < 0) {
      if (errno == EINTR) continue;
      return;  // poll broken beyond repair; dtor still reaps everyone
    }

    if ((fds.back().revents & POLLIN) != 0) {
      char buf[64];
      while (::read(wake_pipe_[0], buf, sizeof(buf)) > 0) {
      }
    }
    std::lock_guard<std::mutex> lock(mu_);
    if (shutting_down_) return;
    for (std::size_t k = 0; k + 1 < fds.size(); ++k) {
      if ((fds[k].revents & (POLLIN | POLLHUP | POLLERR)) != 0)
        handle_worker_frame(fd_worker[k]);
    }
    assign_pending_locked();
  }
}

}  // namespace gepeto::ipc
