// WorkerPool: a pool of real child-process tasktrackers.
//
// The thread backend runs every "node" inside the jobtracker's own address
// space, so PR 1's fault tolerance has only ever been exercised against
// simulated failures. This pool makes tasktrackers actual processes: each
// worker is fork()ed with a socketpair back to the jobtracker, pulls task
// descriptors framed with a CRC (ipc/frame.h), streams results back over the
// wire, and sends periodic heartbeats while a task is running. Because task
// bodies are templated C++ closures that cannot be exec'd, workers inherit
// the type-erased TaskRunner (and the in-memory DFS) by copy-on-write at
// fork time; a pool is therefore created per job, after the runner exists.
//
// The jobtracker side is a single dispatcher thread multiplexing all worker
// sockets with poll(): it hands queued requests to idle workers, refreshes
// heartbeat deadlines, and turns every way a worker can die — clean exit,
// TaskError exit, signal (real SIGKILL chaos), heartbeat timeout, garbled
// frame — into a structured ExitCategory that the engine maps onto its
// existing retry / blacklist / max_failed_task_fraction logic. Dead workers
// are reaped exactly once (waitpid; reaping is idempotent) and respawned
// with exponential backoff plus seeded jitter; the pool degrades gracefully
// to fewer live workers mid-job rather than failing the job.
//
// Thread-safety: execute() may be called concurrently from many engine
// threads; each call blocks until its task completes (or its worker dies)
// while the dispatcher interleaves all in-flight tasks.
#pragma once

#include <sys/types.h>

#include <chrono>
#include <cstdint>
#include <deque>
#include <functional>
#include <future>
#include <map>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/random.h"
#include "telemetry/telemetry.h"

namespace gepeto::ipc {

/// Process-level faults a TaskRequest can carry (FaultPlan::ProcessFault,
/// resolved per attempt by the engine). The child honors them; the parent
/// must survive them.
enum class ProcFaultKind : std::uint32_t {
  kNone = 0,
  kSigkillAtRecord = 1,      ///< raise(SIGKILL) when progress hits a record
  kHangBeforeHeartbeat = 2,  ///< hang at task start, before any heartbeat
  kGarbledFrame = 3,         ///< corrupt the CRC on the result frame
};

/// One task attempt shipped to a worker. `payload` is opaque to the ipc
/// layer — the engine's process backend owns its schema.
struct TaskRequest {
  int phase = 0;
  int task = 0;
  int attempt = 0;
  bool inject_crash = false;            ///< simulated in-process crash
  std::vector<std::int64_t> skip;       ///< records to skip (Hadoop skip mode)
  ProcFaultKind fault = ProcFaultKind::kNone;
  std::int64_t fault_record = -1;
  std::string payload;
};

/// What the task body reported (only meaningful when the worker survived).
struct TaskOutcome {
  bool ok = false;
  std::int64_t failed_record = -1;  ///< AttemptFailure record on !ok
  std::string error;
  std::string payload;
};

/// How a worker left the world, mapped from waitpid status plus parent-side
/// context. DESIGN.md §11 documents the taxonomy.
enum class ExitCategory {
  kClean,     ///< exit(0): shutdown request honored
  kTaskError, ///< exit(3): worker-internal error outside the task protocol
  kSignal,    ///< killed by a signal (real chaos, OOM, operator kill -9)
  kTimeout,   ///< parent SIGKILLed it after a missed heartbeat deadline
  kGarbled,   ///< its stream failed CRC; parent killed the untrustable pipe
  kProtocol,  ///< unexpected frame / early EOF without a signal
};

const char* exit_category_name(ExitCategory c);

/// Result of execute(): either the worker survived and `outcome` is its
/// report, or the worker died mid-attempt and `category`/`error` say how.
struct ExecResult {
  bool worker_ok = false;
  TaskOutcome outcome;
  ExitCategory category = ExitCategory::kClean;
  std::string error;
};

/// Child-side handle passed to the TaskRunner. progress() is the task body's
/// heartbeat hook: call it once per record; it emits a heartbeat frame when
/// the interval has elapsed and applies record-indexed process faults.
class WorkerTaskContext {
 public:
  void progress(std::int64_t record);
  /// Per-attempt scratch directory, created lazily, removed after the
  /// attempt (and by the parent when the worker is reaped).
  const std::string& scratch_dir();

 private:
  friend class WorkerPool;
  int fd_ = -1;
  double heartbeat_interval_s_ = 0.5;
  ProcFaultKind fault_ = ProcFaultKind::kNone;
  std::int64_t fault_record_ = -1;
  std::string attempt_dir_;   // "" until first scratch_dir() call
  std::string attempt_stem_;  // worker scratch dir + attempt coordinates
  std::chrono::steady_clock::time_point last_heartbeat_;
};

using TaskRunner =
    std::function<TaskOutcome(const TaskRequest&, WorkerTaskContext&)>;

struct WorkerPoolOptions {
  int num_workers = 2;
  double heartbeat_interval_s = 0.2;
  double heartbeat_timeout_s = 5.0;
  double respawn_backoff_base_s = 0.05;
  double respawn_backoff_cap_s = 2.0;
  std::uint64_t seed = 0;       ///< jitter seed (deterministic chaos)
  std::string scratch_root;     ///< "" = $GEPETO_SCRATCH_DIR or system tmp
  std::string name = "pool";    ///< scratch-dir + telemetry label
  telemetry::Telemetry telemetry;
};

/// Monotonic pool counters, snapshot via stats(). Sums over the pool's whole
/// life, including workers long since reaped.
struct WorkerPoolStats {
  std::int64_t spawns = 0;
  std::int64_t respawns = 0;
  std::int64_t deaths_clean = 0;
  std::int64_t deaths_task_error = 0;
  std::int64_t deaths_signal = 0;
  std::int64_t deaths_timeout = 0;
  std::int64_t deaths_garbled = 0;
  std::int64_t deaths_protocol = 0;
  std::int64_t heartbeats = 0;
  std::int64_t heartbeat_timeouts = 0;
  std::int64_t reaps = 0;
  std::int64_t tasks_dispatched = 0;
  std::int64_t tasks_completed = 0;
  std::int64_t tasks_failed = 0;  ///< attempts lost to a worker death
  double max_backoff_s = 0.0;
  double total_backoff_s = 0.0;
  double total_recovery_s = 0.0;  ///< death detected -> replacement live
  std::int64_t recoveries = 0;

  std::int64_t deaths() const {
    return deaths_clean + deaths_task_error + deaths_signal + deaths_timeout +
           deaths_garbled + deaths_protocol;
  }
};

class WorkerPool {
 public:
  WorkerPool(WorkerPoolOptions options, TaskRunner runner);
  ~WorkerPool();
  WorkerPool(const WorkerPool&) = delete;
  WorkerPool& operator=(const WorkerPool&) = delete;

  /// Run one task attempt on some worker. Blocks until the attempt finishes
  /// or the worker assigned to it dies; safe to call from many threads.
  ExecResult execute(TaskRequest request);

  WorkerPoolStats stats() const;
  int live_workers() const;
  std::vector<pid_t> worker_pids() const;
  const std::string& scratch_root() const { return scratch_root_; }

  /// Test hooks. kill_worker sends `sig` to the index-th live worker (the
  /// dispatcher then observes the death like any real one). debug_reap
  /// force-reaps a worker slot; returns false when the slot was already
  /// reaped — double reaps must be no-ops.
  void kill_worker(int index, int sig);
  bool debug_reap(int index);

 private:
  struct Worker {
    pid_t pid = -1;                ///< -1 = reaped, awaiting respawn
    int fd = -1;
    bool busy = false;
    bool timed_out = false;        ///< parent imposed SIGKILL (taxonomy)
    bool garbled = false;          ///< parent killed a CRC-failing stream
    int consecutive_deaths = 0;    ///< backoff exponent
    std::chrono::steady_clock::time_point heartbeat_deadline{};
    std::chrono::steady_clock::time_point respawn_at{};
    std::chrono::steady_clock::time_point death_detected{};
    std::promise<ExecResult> inflight;  ///< valid only while busy
  };

  struct Pending {
    TaskRequest request;
    std::promise<ExecResult> promise;
  };

  void spawn_worker(int index);
  [[noreturn]] void worker_main(int fd);
  void dispatch_loop();
  void assign_pending_locked();
  void handle_worker_frame(int index);
  void on_worker_death(int index, ExitCategory category,
                       const std::string& detail);
  ExitCategory categorize_exit(const Worker& w, int wait_status) const;
  bool reap_locked(int index, ExitCategory category,
                   const std::string& detail);
  void fail_inflight(Worker& w, ExitCategory category,
                     const std::string& detail);
  void wake_dispatcher();
  void count_death(ExitCategory category);
  void note_event(const char* name, int index, const std::string& detail);

  WorkerPoolOptions options_;
  TaskRunner runner_;
  std::string scratch_root_;

  mutable std::mutex mu_;
  std::vector<Worker> workers_;
  std::deque<Pending> pending_;
  WorkerPoolStats stats_;
  Rng jitter_rng_;
  bool shutting_down_ = false;

  int wake_pipe_[2] = {-1, -1};
  std::thread dispatcher_;
};

}  // namespace gepeto::ipc
