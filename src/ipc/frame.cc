#include "ipc/frame.h"

#include <sys/socket.h>

#include <array>
#include <cerrno>
#include <cstring>

namespace gepeto::ipc {
namespace {

std::array<std::uint32_t, 256> make_crc_table() {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int k = 0; k < 8; ++k)
      c = (c & 1) != 0 ? 0xEDB88320u ^ (c >> 1) : c >> 1;
    table[i] = c;
  }
  return table;
}

// Header layout (little-endian, 20 bytes): magic, type, payload_len (u64),
// crc32(payload).
constexpr std::size_t kHeaderSize = 20;
// A worker never legitimately ships more than one task's shuffle output per
// frame; anything past this is a corrupted length field, and trusting it
// would make read_frame allocate unboundedly.
constexpr std::uint64_t kMaxPayload = 1ull << 34;  // 16 GiB

bool send_all(int fd, const void* data, std::size_t n) {
  const char* p = static_cast<const char*>(data);
  while (n > 0) {
    const ssize_t sent = ::send(fd, p, n, MSG_NOSIGNAL);
    if (sent < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    p += sent;
    n -= static_cast<std::size_t>(sent);
  }
  return true;
}

enum class RecvStatus { kOk, kEof, kTimeout, kError };

RecvStatus recv_all(int fd, void* data, std::size_t n) {
  char* p = static_cast<char*>(data);
  while (n > 0) {
    const ssize_t got = ::recv(fd, p, n, 0);
    if (got < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) return RecvStatus::kTimeout;
      return RecvStatus::kError;
    }
    if (got == 0) return RecvStatus::kEof;
    p += got;
    n -= static_cast<std::size_t>(got);
  }
  return RecvStatus::kOk;
}

}  // namespace

std::uint32_t crc32(const void* data, std::size_t n) {
  static const std::array<std::uint32_t, 256> table = make_crc_table();
  std::uint32_t c = 0xFFFFFFFFu;
  const auto* p = static_cast<const unsigned char*>(data);
  for (std::size_t i = 0; i < n; ++i) c = table[(c ^ p[i]) & 0xFF] ^ (c >> 8);
  return c ^ 0xFFFFFFFFu;
}

bool write_frame(int fd, FrameType type, std::string_view payload,
                 bool corrupt_crc) {
  char header[kHeaderSize];
  const std::uint32_t magic = kFrameMagic;
  const std::uint32_t type_u32 = static_cast<std::uint32_t>(type);
  const std::uint64_t len = payload.size();
  std::uint32_t crc = crc32(payload.data(), payload.size());
  if (corrupt_crc) crc ^= 0xDEADBEEFu;
  std::memcpy(header, &magic, 4);
  std::memcpy(header + 4, &type_u32, 4);
  std::memcpy(header + 8, &len, 8);
  std::memcpy(header + 16, &crc, 4);
  if (!send_all(fd, header, kHeaderSize)) return false;
  return payload.empty() || send_all(fd, payload.data(), payload.size());
}

FrameStatus read_frame(int fd, Frame& out) {
  char header[kHeaderSize];
  switch (recv_all(fd, header, kHeaderSize)) {
    case RecvStatus::kOk:
      break;
    case RecvStatus::kEof:
      return FrameStatus::kEof;
    case RecvStatus::kTimeout:
      return FrameStatus::kTimeout;
    case RecvStatus::kError:
      return FrameStatus::kError;
  }
  std::uint32_t magic = 0, type_u32 = 0, crc = 0;
  std::uint64_t len = 0;
  std::memcpy(&magic, header, 4);
  std::memcpy(&type_u32, header + 4, 4);
  std::memcpy(&len, header + 8, 8);
  std::memcpy(&crc, header + 16, 4);
  if (magic != kFrameMagic || len > kMaxPayload) return FrameStatus::kGarbled;
  out.type = static_cast<FrameType>(type_u32);
  out.payload.resize(static_cast<std::size_t>(len));
  if (len > 0) {
    switch (recv_all(fd, out.payload.data(), out.payload.size())) {
      case RecvStatus::kOk:
        break;
      case RecvStatus::kEof:
        return FrameStatus::kEof;
      case RecvStatus::kTimeout:
        return FrameStatus::kTimeout;
      case RecvStatus::kError:
        return FrameStatus::kError;
    }
  }
  if (crc32(out.payload.data(), out.payload.size()) != crc)
    return FrameStatus::kGarbled;
  return FrameStatus::kOk;
}

}  // namespace gepeto::ipc
