// Length-prefixed message framing over a local stream socket.
//
// Every message between the jobtracker and a tasktracker process is one
// frame: a fixed header (magic, type, payload length, CRC-32 of the payload)
// followed by the payload bytes. The CRC is what turns a worker crashing
// mid-write — or deliberately corrupting its output under the chaos
// harness's garbled-frame fault — into a detectable, attributable failure
// instead of a silently wrong shuffle.
//
// All writes go through send(MSG_NOSIGNAL): a peer that died takes the
// write down with EPIPE, never with SIGPIPE — a dying reader must not be
// able to kill the jobtracker.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>

namespace gepeto::ipc {

enum class FrameType : std::uint32_t {
  kTask = 1,       ///< jobtracker -> worker: run one task attempt
  kResult = 2,     ///< worker -> jobtracker: attempt succeeded (payload)
  kTaskFailed = 3, ///< worker -> jobtracker: attempt failed (record, message)
  kHeartbeat = 4,  ///< worker -> jobtracker: still alive, making progress
  kShutdown = 5,   ///< jobtracker -> worker: exit cleanly
};

inline constexpr std::uint32_t kFrameMagic = 0x47455031;  // "GEP1"

/// CRC-32 (IEEE 802.3 polynomial) of `data`.
std::uint32_t crc32(const void* data, std::size_t n);

/// Outcome of reading one frame.
enum class FrameStatus {
  kOk,
  kEof,       ///< peer closed the stream (worker died / jobtracker gone)
  kTimeout,   ///< receive timed out (SO_RCVTIMEO on the jobtracker side)
  kGarbled,   ///< bad magic or CRC mismatch: the stream cannot be trusted
  kError,     ///< I/O error
};

struct Frame {
  FrameType type = FrameType::kHeartbeat;
  std::string payload;
};

/// Write one frame; returns false on any error (EPIPE included).
/// `corrupt_crc` deliberately garbles the header CRC — the chaos harness's
/// garbled-frame fault, exercised from the worker side.
bool write_frame(int fd, FrameType type, std::string_view payload,
                 bool corrupt_crc = false);

/// Read one complete frame (blocking; honors any SO_RCVTIMEO on `fd`).
FrameStatus read_frame(int fd, Frame& out);

}  // namespace gepeto::ipc
