// Wire serialization for the process worker backend.
//
// Fixed-width little-endian scalars, length-prefixed strings, and vector
// codecs with a memcpy fast path for trivially copyable element types.
// Parsing is bounds-checked against the payload end and raises WireError —
// a garbled or truncated frame from a crashing worker must surface as a
// structured failure on the jobtracker side, never as UB.
//
// Custom intermediate key/value types that are not trivially copyable opt in
// by providing two members:
//
//   void wire_append(std::string& out) const;
//   static T wire_parse(gepeto::ipc::wire::Reader& r);
#pragma once

#include <cstdint>
#include <cstring>
#include <map>
#include <stdexcept>
#include <string>
#include <string_view>
#include <type_traits>
#include <vector>

namespace gepeto::ipc::wire {

/// A frame payload failed to parse (truncated, or lengths inconsistent).
class WireError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

// --- writing -----------------------------------------------------------------

inline void put_raw(std::string& out, const void* data, std::size_t n) {
  out.append(static_cast<const char*>(data), n);
}

inline void put_u32(std::string& out, std::uint32_t v) { put_raw(out, &v, 4); }
inline void put_u64(std::string& out, std::uint64_t v) { put_raw(out, &v, 8); }
inline void put_i64(std::string& out, std::int64_t v) { put_raw(out, &v, 8); }
inline void put_f64(std::string& out, double v) { put_raw(out, &v, 8); }

inline void put_str(std::string& out, std::string_view s) {
  put_u64(out, s.size());
  out.append(s);
}

// --- reading -----------------------------------------------------------------

class Reader {
 public:
  explicit Reader(std::string_view data) : data_(data) {}

  std::uint32_t get_u32() { return get_scalar<std::uint32_t>(); }
  std::uint64_t get_u64() { return get_scalar<std::uint64_t>(); }
  std::int64_t get_i64() { return get_scalar<std::int64_t>(); }
  double get_f64() { return get_scalar<double>(); }

  std::string_view get_bytes(std::size_t n) {
    require(n);
    const std::string_view out = data_.substr(pos_, n);
    pos_ += n;
    return out;
  }

  std::string get_str() {
    const std::uint64_t n = get_u64();
    if (n > remaining())
      throw WireError("string length exceeds payload: " + std::to_string(n));
    return std::string(get_bytes(static_cast<std::size_t>(n)));
  }

  std::size_t remaining() const { return data_.size() - pos_; }
  bool done() const { return pos_ == data_.size(); }

 private:
  template <typename T>
  T get_scalar() {
    require(sizeof(T));
    T v;
    std::memcpy(&v, data_.data() + pos_, sizeof(T));
    pos_ += sizeof(T);
    return v;
  }

  void require(std::size_t n) const {
    if (n > remaining())
      throw WireError("truncated payload: need " + std::to_string(n) +
                      " bytes, have " + std::to_string(remaining()));
  }

  std::string_view data_;
  std::size_t pos_ = 0;
};

// --- element / vector codecs -------------------------------------------------

template <typename T>
concept WireMembers = requires(const T& t, std::string& out, Reader& r) {
  t.wire_append(out);
  { T::wire_parse(r) } -> std::same_as<T>;
};

template <typename T>
concept WireSerializable = std::is_trivially_copyable_v<T> ||
                           WireMembers<T> || std::same_as<T, std::string>;

template <typename T>
  requires WireSerializable<T>
void put_value(std::string& out, const T& v) {
  if constexpr (std::same_as<T, std::string>) {
    put_str(out, v);
  } else if constexpr (WireMembers<T>) {
    v.wire_append(out);
  } else {
    put_raw(out, &v, sizeof(T));
  }
}

template <typename T>
  requires WireSerializable<T>
T get_value(Reader& r) {
  if constexpr (std::same_as<T, std::string>) {
    return r.get_str();
  } else if constexpr (WireMembers<T>) {
    return T::wire_parse(r);
  } else {
    T v;
    std::memcpy(&v, r.get_bytes(sizeof(T)).data(), sizeof(T));
    return v;
  }
}

template <typename T>
  requires WireSerializable<T>
void put_vec(std::string& out, const std::vector<T>& v) {
  put_u64(out, v.size());
  if constexpr (std::is_trivially_copyable_v<T>) {
    put_raw(out, v.data(), v.size() * sizeof(T));
  } else {
    for (const auto& x : v) put_value(out, x);
  }
}

template <typename T>
  requires WireSerializable<T>
std::vector<T> get_vec(Reader& r) {
  const std::uint64_t n = r.get_u64();
  std::vector<T> v;
  if constexpr (std::is_trivially_copyable_v<T>) {
    if (n > r.remaining() / sizeof(T))
      throw WireError("vector length exceeds payload: " + std::to_string(n));
    v.resize(static_cast<std::size_t>(n));
    if (n > 0)
      std::memcpy(v.data(), r.get_bytes(v.size() * sizeof(T)).data(),
                  v.size() * sizeof(T));
  } else {
    v.reserve(static_cast<std::size_t>(n));
    for (std::uint64_t i = 0; i < n; ++i) v.push_back(get_value<T>(r));
  }
  return v;
}

inline void put_counters(std::string& out,
                         const std::map<std::string, std::int64_t>& counters) {
  put_u64(out, counters.size());
  for (const auto& [k, v] : counters) {
    put_str(out, k);
    put_i64(out, v);
  }
}

inline std::map<std::string, std::int64_t> get_counters(Reader& r) {
  std::map<std::string, std::int64_t> counters;
  const std::uint64_t n = r.get_u64();
  for (std::uint64_t i = 0; i < n; ++i) {
    std::string k = r.get_str();
    counters[std::move(k)] = r.get_i64();
  }
  return counters;
}

}  // namespace gepeto::ipc::wire
