#include "gepeto/mmc.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/check.h"
#include "geo/distance.h"
#include "geo/kernels.h"

namespace gepeto::core {

namespace {

/// Stationary distribution by power iteration on the *lazy* chain
/// (I + M) / 2 — same stationary distribution, but convergent even when M
/// is (nearly) periodic, which home<->work commuting chains are.
std::vector<double> stationary_distribution(
    const std::vector<std::vector<double>>& m) {
  const std::size_t n = m.size();
  std::vector<double> pi(n, n > 0 ? 1.0 / static_cast<double>(n) : 0.0);
  std::vector<double> next(n, 0.0);
  for (int iter = 0; iter < 2000; ++iter) {
    std::fill(next.begin(), next.end(), 0.0);
    for (std::size_t i = 0; i < n; ++i)
      for (std::size_t j = 0; j < n; ++j) next[j] += pi[i] * m[i][j];
    double delta = 0.0;
    for (std::size_t j = 0; j < n; ++j) {
      next[j] = 0.5 * (next[j] + pi[j]);  // lazy step
      delta += std::fabs(next[j] - pi[j]);
    }
    pi.swap(next);
    if (delta < 1e-13) break;
  }
  return pi;
}

}  // namespace

std::vector<int> visit_sequence(const geo::Trail& trail,
                                const std::vector<PoiCandidate>& states,
                                double attach_radius_m) {
  std::vector<int> visits;
  // Batched distances (kernels.h): states snapshotted as struct-of-arrays
  // once, one haversine_meters_batch call per trail point. The fold below is
  // unchanged — in particular its <= keeps the LAST (highest-index) state
  // among equals, which the argmin kernel's strict < would flip.
  const std::size_t n = states.size();
  std::vector<double> slats(n), slons(n), dist(n);
  for (std::size_t s = 0; s < n; ++s) {
    slats[s] = states[s].latitude;
    slons[s] = states[s].longitude;
  }
  int prev = -1;
  for (const auto& t : trail) {
    geo::haversine_meters_batch(t.latitude, t.longitude, slats.data(),
                                slons.data(), n, dist.data());
    int best = -1;
    double best_d = attach_radius_m;
    for (std::size_t s = 0; s < n; ++s) {
      if (dist[s] <= best_d) {
        best_d = dist[s];
        best = static_cast<int>(s);
      }
    }
    if (best < 0) continue;          // between POIs
    if (best == prev) continue;      // still at the same POI
    visits.push_back(best);
    prev = best;
  }
  return visits;
}

MobilityMarkovChain learn_mmc(const geo::Trail& trail,
                              const MmcConfig& config) {
  MobilityMarkovChain mmc;
  const auto extracted = extract_pois(trail, config.clustering);
  mmc.states = extracted.pois;
  const std::size_t n = mmc.states.size();
  if (n == 0) return mmc;

  mmc.transitions.assign(n, std::vector<double>(n, config.smoothing));
  // No self transitions (visits collapse consecutive duplicates).
  for (std::size_t i = 0; i < n; ++i) mmc.transitions[i][i] = 0.0;

  const auto visits =
      visit_sequence(trail, mmc.states, config.attach_radius_m);
  for (std::size_t v = 1; v < visits.size(); ++v)
    mmc.transitions[static_cast<std::size_t>(visits[v - 1])]
                   [static_cast<std::size_t>(visits[v])] += 1.0;

  for (std::size_t i = 0; i < n; ++i) {
    auto& row = mmc.transitions[i];
    double sum = 0.0;
    for (double x : row) sum += x;
    if (sum <= 0.0) {
      // Isolated state (n == 1, or smoothing disabled with no transitions):
      // uniform over the other states, or a degenerate self-loop if alone.
      if (n == 1) {
        row[0] = 1.0;
      } else {
        for (std::size_t j = 0; j < n; ++j)
          row[j] = (j == i) ? 0.0 : 1.0 / static_cast<double>(n - 1);
      }
      continue;
    }
    for (double& x : row) x /= sum;
  }
  mmc.stationary = stationary_distribution(mmc.transitions);
  return mmc;
}

int predict_next(const MobilityMarkovChain& mmc, int state) {
  if (state < 0 ||
      static_cast<std::size_t>(state) >= mmc.transitions.size())
    return -1;
  const auto& row = mmc.transitions[static_cast<std::size_t>(state)];
  int best = -1;
  double best_p = -1.0;
  for (std::size_t j = 0; j < row.size(); ++j) {
    if (row[j] > best_p) {
      best_p = row[j];
      best = static_cast<int>(j);
    }
  }
  return best;
}

double prediction_accuracy(const geo::Trail& trail, const MmcConfig& config,
                           double train_fraction) {
  GEPETO_CHECK(train_fraction > 0.0 && train_fraction < 1.0);
  // Learn states from the full trail (the attacker's cluster model), but
  // count transitions only on the training prefix.
  const auto extracted = extract_pois(trail, config.clustering);
  if (extracted.pois.empty()) return -1.0;
  const auto visits =
      visit_sequence(trail, extracted.pois, config.attach_radius_m);
  if (visits.size() < 6) return -1.0;
  const std::size_t split =
      static_cast<std::size_t>(static_cast<double>(visits.size()) *
                               train_fraction);
  if (split < 2 || visits.size() - split < 3) return -1.0;

  const std::size_t n = extracted.pois.size();
  MobilityMarkovChain mmc;
  mmc.states = extracted.pois;
  mmc.transitions.assign(n, std::vector<double>(n, config.smoothing));
  for (std::size_t i = 0; i < n; ++i) mmc.transitions[i][i] = 0.0;
  for (std::size_t v = 1; v < split; ++v)
    mmc.transitions[static_cast<std::size_t>(visits[v - 1])]
                   [static_cast<std::size_t>(visits[v])] += 1.0;
  for (auto& row : mmc.transitions) {
    double sum = 0.0;
    for (double x : row) sum += x;
    if (sum > 0)
      for (double& x : row) x /= sum;
  }

  std::size_t correct = 0, total = 0;
  for (std::size_t v = split; v < visits.size(); ++v) {
    const int predicted = predict_next(mmc, visits[v - 1]);
    ++total;
    correct += (predicted == visits[v]);
  }
  return total == 0 ? -1.0
                    : static_cast<double>(correct) / static_cast<double>(total);
}

double mmc_distance(const MobilityMarkovChain& a,
                    const MobilityMarkovChain& b) {
  if (a.states.empty() || b.states.empty())
    return std::numeric_limits<double>::max();
  // Stationary-weighted cost of explaining each of a's states with b's
  // nearest state, symmetrized. Distances in meters.
  auto one_way = [](const MobilityMarkovChain& x,
                    const MobilityMarkovChain& y) {
    // Batched per x-state (kernels.h); the std::min fold over the buffer is
    // the original reduction, value-identical per pair.
    const std::size_t ny = y.states.size();
    std::vector<double> ylats(ny), ylons(ny), dist(ny);
    for (std::size_t j = 0; j < ny; ++j) {
      ylats[j] = y.states[j].latitude;
      ylons[j] = y.states[j].longitude;
    }
    double cost = 0.0;
    for (std::size_t i = 0; i < x.states.size(); ++i) {
      geo::haversine_meters_batch(x.states[i].latitude, x.states[i].longitude,
                                  ylats.data(), ylons.data(), ny, dist.data());
      double best = std::numeric_limits<double>::max();
      for (std::size_t j = 0; j < ny; ++j) best = std::min(best, dist[j]);
      cost += x.stationary[i] * best;
    }
    return cost;
  };
  return one_way(a, b) + one_way(b, a);
}

DeanonymizationResult deanonymization_attack(
    const std::vector<MobilityMarkovChain>& gallery,
    const std::vector<MobilityMarkovChain>& probes,
    const std::vector<int>& truth) {
  GEPETO_CHECK(probes.size() == truth.size());
  DeanonymizationResult result;
  result.predicted.reserve(probes.size());
  for (std::size_t p = 0; p < probes.size(); ++p) {
    int best = -1;
    double best_d = std::numeric_limits<double>::max();
    for (std::size_t g = 0; g < gallery.size(); ++g) {
      const double d = mmc_distance(probes[p], gallery[g]);
      // Strict <: equidistant gallery MMCs resolve to the lowest index, the
      // documented tie-break contract (see mmc.h).
      if (d < best_d) {
        best_d = d;
        best = static_cast<int>(g);
      }
    }
    result.predicted.push_back(best);
    if (best == truth[p]) ++result.correct;
  }
  result.accuracy = probes.empty()
                        ? 0.0
                        : static_cast<double>(result.correct) /
                              static_cast<double>(probes.size());
  return result;
}

}  // namespace gepeto::core
