#include "gepeto/sampling.h"

#include <cmath>
#include <cstdlib>

#include "common/check.h"
#include "geo/geolife.h"
#include "mapreduce/engine.h"
#include "storage/columnar_jobs.h"

namespace gepeto::core {

namespace {

std::int64_t window_of(std::int64_t ts, int window_s) {
  // Floor division (timestamps in our datasets are positive, but be safe).
  std::int64_t w = ts / window_s;
  if (ts % window_s < 0) --w;
  return w;
}

/// |ts - reference| for the representative choice.
std::int64_t reference_distance(const SamplingConfig& config, std::int64_t ts) {
  const std::int64_t ref =
      window_reference(config, window_of(ts, config.window_s));
  return std::llabs(ts - ref);
}

/// Streaming representative picker shared by the sequential implementation
/// and the map-only mapper: feed (user, time)-ordered traces, it emits the
/// representative of each completed (user, window) group.
class WindowFolder {
 public:
  explicit WindowFolder(const SamplingConfig& config) : config_(config) {}

  template <typename Sink>
  void feed(const geo::MobilityTrace& t, Sink&& sink) {
    const std::int64_t w = window_of(t.timestamp, config_.window_s);
    if (!have_ || t.user_id != best_.user_id || w != window_) {
      flush(sink);
      best_ = t;
      best_dist_ = reference_distance(config_, t.timestamp);
      window_ = w;
      have_ = true;
      return;
    }
    const std::int64_t d = reference_distance(config_, t.timestamp);
    if (d < best_dist_) {  // strict: ties keep the earliest trace
      best_ = t;
      best_dist_ = d;
    }
  }

  template <typename Sink>
  void flush(Sink&& sink) {
    if (have_) sink(best_);
    have_ = false;
  }

 private:
  SamplingConfig config_;
  bool have_ = false;
  geo::MobilityTrace best_{};
  std::int64_t best_dist_ = 0;
  std::int64_t window_ = 0;
};

struct SamplingMapper {
  SamplingConfig config;
  WindowFolder folder{config};

  /// Group-aware split protocol (mr::detail::GroupAwareMapper): consecutive
  /// lines of one (user, window) group must be seen by a single map task,
  /// or a group straddling a chunk boundary would emit one representative
  /// per chunk. Malformed lines never extend a group.
  bool same_group(std::string_view prev, std::string_view line) const {
    geo::MobilityTrace a, b;
    if (!geo::parse_dataset_line(prev, a)) return false;
    if (!geo::parse_dataset_line(line, b)) return false;
    return a.user_id == b.user_id &&
           window_of(a.timestamp, config.window_s) ==
               window_of(b.timestamp, config.window_s);
  }

  void map(std::int64_t, std::string_view line, mr::MapOnlyContext& ctx) {
    geo::MobilityTrace t;
    if (!geo::parse_dataset_line(line, t)) {
      ctx.increment("sampling.malformed_lines");
      return;
    }
    folder.feed(t, [&](const geo::MobilityTrace& rep) {
      ctx.write(geo::dataset_line(rep));
      ctx.increment("sampling.windows");
    });
  }

  void cleanup(mr::MapOnlyContext& ctx) {
    folder.flush([&](const geo::MobilityTrace& rep) {
      ctx.write(geo::dataset_line(rep));
      ctx.increment("sampling.windows");
    });
  }
};

/// Binary-input twin of SamplingMapper: records are 32-byte binary traces.
struct BinarySamplingMapper {
  SamplingConfig config;
  WindowFolder folder{config};

  void map(std::int64_t, std::string_view record, mr::MapOnlyContext& ctx) {
    geo::MobilityTrace t;
    if (!geo::trace_from_binary(record, t)) {
      ctx.increment("sampling.malformed_records");
      return;
    }
    folder.feed(t, [&](const geo::MobilityTrace& rep) {
      ctx.write(geo::dataset_line(rep));
      ctx.increment("sampling.windows");
    });
  }

  void cleanup(mr::MapOnlyContext& ctx) {
    folder.flush([&](const geo::MobilityTrace& rep) {
      ctx.write(geo::dataset_line(rep));
      ctx.increment("sampling.windows");
    });
  }
};

/// Key for the exact variant: one (user, window) group.
struct UserWindowKey {
  std::int32_t user_id = 0;
  std::int64_t window = 0;

  friend auto operator<=>(const UserWindowKey&, const UserWindowKey&) = default;
  std::uint64_t partition_hash() const {
    return static_cast<std::uint64_t>(user_id) * 0x9e3779b97f4a7c15ULL +
           static_cast<std::uint64_t>(window);
  }
  std::uint64_t serialized_size() const { return 12; }
};

struct TraceValue {
  geo::MobilityTrace trace;
  std::uint64_t serialized_size() const { return 36; }
};

struct ExactSamplingMapper {
  using OutKey = UserWindowKey;
  using OutValue = TraceValue;
  SamplingConfig config;

  void map(std::int64_t, std::string_view line,
           mr::MapContext<OutKey, OutValue>& ctx) {
    geo::MobilityTrace t;
    if (!geo::parse_dataset_line(line, t)) {
      ctx.increment("sampling.malformed_lines");
      return;
    }
    ctx.emit({t.user_id, window_of(t.timestamp, config.window_s)}, {t});
  }
};

/// Binary-record twin of ExactSamplingMapper (columnar splits hand the
/// mapper 32-byte binary traces).
struct BinaryExactSamplingMapper {
  using OutKey = UserWindowKey;
  using OutValue = TraceValue;
  SamplingConfig config;

  void map(std::int64_t, std::string_view record,
           mr::MapContext<OutKey, OutValue>& ctx) {
    geo::MobilityTrace t;
    if (!geo::trace_from_binary(record, t)) {
      ctx.increment("sampling.malformed_records");
      return;
    }
    ctx.emit({t.user_id, window_of(t.timestamp, config.window_s)}, {t});
  }
};

struct ExactSamplingReducer {
  SamplingConfig config;

  void reduce(const UserWindowKey&, std::span<const TraceValue> values,
              mr::ReduceContext& ctx) {
    GEPETO_DCHECK(!values.empty());
    const geo::MobilityTrace* best = &values.front().trace;
    std::int64_t best_dist = reference_distance(config, best->timestamp);
    for (const auto& v : values.subspan(1)) {
      const std::int64_t d = reference_distance(config, v.trace.timestamp);
      // Ties keep the earliest trace; values arrive in emission order, which
      // is time order within a (user, window) group.
      if (d < best_dist ||
          (d == best_dist && v.trace.timestamp < best->timestamp)) {
        best = &v.trace;
        best_dist = d;
      }
    }
    ctx.write(geo::dataset_line(*best));
  }
};

}  // namespace

std::int64_t window_reference(const SamplingConfig& config,
                              std::int64_t window_index) {
  GEPETO_CHECK(config.window_s > 0);
  switch (config.technique) {
    case SamplingTechnique::kUpperLimit:
      return (window_index + 1) * config.window_s;
    case SamplingTechnique::kMiddle:
      return window_index * config.window_s + config.window_s / 2;
  }
  GEPETO_FAIL("unknown SamplingTechnique");
}

geo::GeolocatedDataset downsample(const geo::GeolocatedDataset& dataset,
                                  const SamplingConfig& config) {
  GEPETO_CHECK(config.window_s > 0);
  geo::GeolocatedDataset out;
  for (const auto& [uid, trail] : dataset) {
    WindowFolder folder(config);
    geo::Trail sampled;
    for (const auto& t : trail)
      folder.feed(t, [&](const geo::MobilityTrace& rep) {
        sampled.push_back(rep);
      });
    folder.flush([&](const geo::MobilityTrace& rep) { sampled.push_back(rep); });
    out.add_trail(uid, std::move(sampled));
  }
  return out;
}

mr::JobResult run_sampling_job(mr::Dfs& dfs, const mr::ClusterConfig& cluster,
                               const std::string& input,
                               const std::string& output,
                               const SamplingConfig& config,
                               const mr::FailurePolicy& failures,
                               const mr::FaultPlan& fault_plan) {
  GEPETO_CHECK(config.window_s > 0);
  mr::JobConfig job;
  job.name = "sampling";
  job.input = input;
  job.output = output;
  job.failures = failures;
  job.fault_plan = fault_plan;
  return mr::run_map_only_job(dfs, cluster, job,
                              [config] { return SamplingMapper{config}; });
}

mr::JobResult run_sampling_job_binary(mr::Dfs& dfs,
                                      const mr::ClusterConfig& cluster,
                                      const std::string& input,
                                      const std::string& output,
                                      const SamplingConfig& config) {
  GEPETO_CHECK(config.window_s > 0);
  mr::JobConfig job;
  job.name = "sampling-binary";
  job.input = input;
  job.output = output;
  return mr::run_binary_map_only_job(
      dfs, cluster, job, [config] { return BinarySamplingMapper{config}; });
}

mr::JobResult run_sampling_job_columnar(mr::Dfs& dfs,
                                        const mr::ClusterConfig& cluster,
                                        const std::string& input,
                                        const std::string& output,
                                        const SamplingConfig& config) {
  GEPETO_CHECK(config.window_s > 0);
  mr::JobConfig job;
  job.name = "sampling-columnar";
  job.input = input;
  job.output = output;
  return storage::run_columnar_map_only_job(
      dfs, cluster, job, [config] { return BinarySamplingMapper{config}; });
}

mr::JobResult run_sampling_job_exact(
    mr::Dfs& dfs, const mr::ClusterConfig& cluster, const std::string& input,
    const std::string& output, const SamplingConfig& config, int num_reducers,
    const mr::FailurePolicy& failures, const mr::FaultPlan& fault_plan,
    std::uint64_t sort_memory_budget_bytes) {
  GEPETO_CHECK(config.window_s > 0);
  mr::JobConfig job;
  job.name = "sampling-exact";
  job.input = input;
  job.output = output;
  job.num_reducers = num_reducers;
  job.failures = failures;
  job.fault_plan = fault_plan;
  job.sort_memory_budget_bytes = sort_memory_budget_bytes;
  return mr::run_mapreduce_job(
      dfs, cluster, job, [config] { return ExactSamplingMapper{config}; },
      [config] { return ExactSamplingReducer{config}; });
}

mr::JobResult run_sampling_job_exact_columnar(
    mr::Dfs& dfs, const mr::ClusterConfig& cluster, const std::string& input,
    const std::string& output, const SamplingConfig& config, int num_reducers,
    const mr::FailurePolicy& failures, const mr::FaultPlan& fault_plan,
    std::uint64_t sort_memory_budget_bytes) {
  GEPETO_CHECK(config.window_s > 0);
  mr::JobConfig job;
  job.name = "sampling-exact-columnar";
  job.input = input;
  job.output = output;
  job.num_reducers = num_reducers;
  job.failures = failures;
  job.fault_plan = fault_plan;
  job.sort_memory_budget_bytes = sort_memory_budget_bytes;
  return storage::run_columnar_mapreduce_job(
      dfs, cluster, job,
      [config] { return BinaryExactSamplingMapper{config}; },
      [config] { return ExactSamplingReducer{config}; });
}

}  // namespace gepeto::core
