// Geo-sanitization mechanisms — the paper's announced extensions
// (Section VIII): "geographical masks that modify the spatial coordinate of
// a mobility trace by adding some random noise or aggregate several mobility
// traces into a single spatial coordinate. More sophisticated geo-
// sanitization methods ... such as spatial cloaking techniques and mix
// zones".
//
// Four mechanisms:
//   * gaussian_mask     — perturb each trace by N(0, sigma) meters;
//   * spatial_rounding  — snap coordinates to a grid (aggregation);
//   * spatial_cloaking  — enlarge each trace's cell until at least k users
//                         share it (k-anonymity-style generalization);
//   * mix zones         — suppress traces inside the zones and change the
//                         pseudonym of every user crossing one.
//
// All four are also provided as MapReduce jobs (mask/rounding as map-only
// jobs with per-line deterministic noise; cloaking and mix zones as JobFlow
// pipelines), following the paper's plan to "design MapReduced versions of
// geo-sanitization mechanisms".
//
// The privacy contracts these mechanisms declare (cloaked cell ≥ k distinct
// users, in-zone traces suppressed, pseudonyms collision-free) are checked
// directly by attacks/privacy_verifier.h; the contracts below are written to
// be *verifiable from the release*, which pins down two details that a
// mechanically-correct implementation can still get wrong:
//
//   * Cloaking/rounding cells are a **pure function of the cell**, not of
//     the trace: the longitude step is computed at the latitude of the cell
//     row's center, so every trace in a cell is released at the bit-identical
//     cell center. (Deriving the step from each trace's own latitude — the
//     obvious implementation — makes the released "aggregated" coordinate a
//     near-unique fingerprint of the original point, silently voiding the
//     k-anonymity the census proved.)
//   * Mix-zone pseudonyms are allocated by a seeded hash, not a counter:
//     no pseudonym collides with any live user id or other pseudonym, and
//     the numeric value leaks neither the original id (counter start) nor
//     the allocation order (counter sequence).
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "geo/trace.h"
#include "mapreduce/cluster.h"
#include "mapreduce/job.h"

namespace gepeto::mr {
class Dfs;
}

namespace gepeto::core {

// --- the sanitization grid ---------------------------------------------------

/// One square grid cell: `level` doublings above the base cell size, with a
/// row index (cy, from latitude) and a column index (cx, from longitude).
struct GridCell {
  int level = 0;
  std::int64_t cy = 0;
  std::int64_t cx = 0;

  friend auto operator<=>(const GridCell&, const GridCell&) = default;
};

/// The cell containing (lat, lon) at `base_cell_m * 2^level` meters. The
/// column width is evaluated at the latitude of the cell row's *center*, so
/// the mapping point -> cell -> center is a pure function of the cell.
GridCell grid_cell_of(double lat, double lon, double base_cell_m,
                      int level = 0);

/// Center coordinate of a cell — the released value for every trace in it.
void grid_cell_center(const GridCell& cell, double base_cell_m,
                      double& latitude, double& longitude);

// --- mechanisms --------------------------------------------------------------

/// Gaussian geographical mask (deterministic: the noise of a trace depends
/// only on seed, user id and timestamp, so the MR and sequential paths
/// produce identical output).
geo::GeolocatedDataset gaussian_mask(const geo::GeolocatedDataset& dataset,
                                     double sigma_m, std::uint64_t seed);

/// Snap every coordinate to the center of a square grid cell of side
/// `cell_m` meters (spatial aggregation). Traces sharing a cell are released
/// at the bit-identical center.
geo::GeolocatedDataset spatial_rounding(const geo::GeolocatedDataset& dataset,
                                        double cell_m);

struct CloakingResult {
  geo::GeolocatedDataset data;
  double avg_cell_m = 0.0;      ///< average cell size traces ended up in
  std::uint64_t suppressed = 0; ///< traces that never reached k users
};

/// Spatial cloaking: per trace, grow the cell (doubling from `base_cell_m`,
/// at most `max_doublings` times) until at least `k` *distinct users* have
/// traces in it; the trace is reported at the cell center. Traces that never
/// reach k users are suppressed; a user whose every trace is suppressed is
/// absent from the release (an empty trail would leak their existence).
CloakingResult spatial_cloaking(const geo::GeolocatedDataset& dataset, int k,
                                double base_cell_m, int max_doublings = 6);

struct MixZone {
  double latitude = 0.0;
  double longitude = 0.0;
  double radius_m = 0.0;
};

/// Batched point-in-any-zone test: one haversine kernel call per trace over
/// the zone centers (kernels.h), then a per-zone radius compare. A trace at
/// exactly the boundary distance (== radius_m) is *inside*. Not thread-safe
/// (reuses a distance scratch buffer); make one per thread.
class ZoneIndex {
 public:
  explicit ZoneIndex(std::vector<MixZone> zones);
  bool contains(const geo::MobilityTrace& trace) const;
  const std::vector<MixZone>& zones() const { return zones_; }

 private:
  std::vector<MixZone> zones_;
  std::vector<double> zlats_, zlons_;
  mutable std::vector<double> zdist_;
};

struct MixZoneResult {
  geo::GeolocatedDataset data;
  std::uint64_t suppressed_traces = 0;
  std::uint64_t pseudonym_changes = 0;
  /// For evaluation only: new pseudonym -> original user id.
  std::vector<std::pair<std::int32_t, std::int32_t>> pseudonym_owner;
};

/// Default seed of the pseudonym hash ("mixzones" in ASCII).
inline constexpr std::uint64_t kPseudonymSeed = 0x6D69787A6F6E6573ULL;

/// Number of zone crossings per user, uid-ascending — one entry for *every*
/// user of the dataset (zero-crossing users matter: their ids are live and
/// must not be reissued as pseudonyms). A crossing is an inside->outside
/// transition followed by at least one released trace.
std::vector<std::pair<std::int32_t, int>> count_zone_crossings(
    const geo::GeolocatedDataset& dataset, const std::vector<MixZone>& zones);

/// Seeded, collision-free pseudonym allocation: (user, crossing index) ->
/// fresh pseudonym. Pseudonyms are drawn from a per-(user, crossing) seeded
/// hash stream (31-bit non-negative ids) and probed against the set of every
/// original user id and every already-allocated pseudonym, so no pseudonym
/// equals any live id of another user. The result depends only on the
/// crossing multiset and the seed — not on iteration order, chunking, or
/// backend — and the numeric values carry no allocation-order signal.
std::map<std::pair<std::int32_t, std::int32_t>, std::int32_t>
allocate_pseudonyms(
    const std::vector<std::pair<std::int32_t, int>>& crossings_per_user,
    std::uint64_t seed);

/// Apply mix zones: traces inside any zone (boundary inclusive) are
/// suppressed; each time a user exits a zone they continue under a fresh
/// pseudonym from allocate_pseudonyms(seed).
MixZoneResult apply_mix_zones(const geo::GeolocatedDataset& dataset,
                              const std::vector<MixZone>& zones,
                              std::uint64_t seed = kPseudonymSeed);

/// Pick the `count` busiest grid cells (by distinct users) as mix zones —
/// a simple automatic placement.
std::vector<MixZone> pick_mix_zones(const geo::GeolocatedDataset& dataset,
                                    int count, double radius_m);

// --- MapReduce realizations --------------------------------------------------

/// Map-only MapReduce jobs over dataset lines.
mr::JobResult run_gaussian_mask_job(mr::Dfs& dfs,
                                    const mr::ClusterConfig& cluster,
                                    const std::string& input,
                                    const std::string& output, double sigma_m,
                                    std::uint64_t seed);

mr::JobResult run_rounding_job(mr::Dfs& dfs, const mr::ClusterConfig& cluster,
                               const std::string& input,
                               const std::string& output, double cell_m);

/// Spatial cloaking as a two-job MapReduce pipeline:
///   job 1 (census): mappers emit (level, cell) -> user per trace; a
///   combiner dedupes locally; reducers count distinct users per cell and
///   write the census;
///   job 2 (apply, map-only): mappers load the census from the distributed
///   cache and generalize each trace to the smallest cell with >= k users
///   (suppressing traces that never reach k).
/// Semantically identical to spatial_cloaking() (tested).
struct CloakingMrResult {
  mr::JobResult census_job;
  mr::JobResult apply_job;
  std::uint64_t suppressed = 0;
};

CloakingMrResult run_cloaking_jobs(mr::Dfs& dfs,
                                   const mr::ClusterConfig& cluster,
                                   const std::string& input,
                                   const std::string& work_prefix, int k,
                                   double base_cell_m, int max_doublings = 6);

/// Mix zones as a JobFlow pipeline mirroring the cloaking shape:
///   job 1 (crossings, group-aware map-only): each user's whole run is seen
///   by one task, which counts inside->outside crossings and writes
///   "uid,crossings" — including zero-crossing users (their ids are live);
///   native node: consolidates the crossing census, runs the same
///   allocate_pseudonyms() as the sequential path, and writes the
///   "uid,crossing,pseudonym" table into the distributed cache;
///   job 2 (apply, group-aware map-only): suppresses in-zone traces and
///   rewrites pseudonyms from the cached table.
/// Output lines are byte-identical to apply_mix_zones() with the same zones
/// and seed, for any chunking and on both worker backends (tested by the
/// differential_privacy sweep).
struct MixZoneMrResult {
  mr::JobResult census_job;
  mr::JobResult apply_job;
  std::uint64_t suppressed_traces = 0;
  std::uint64_t pseudonym_changes = 0;
};

MixZoneMrResult run_mix_zone_jobs(mr::Dfs& dfs,
                                  const mr::ClusterConfig& cluster,
                                  const std::string& input,
                                  const std::string& work_prefix,
                                  const std::vector<MixZone>& zones,
                                  std::uint64_t seed = kPseudonymSeed);

}  // namespace gepeto::core
