// Geo-sanitization mechanisms — the paper's announced extensions
// (Section VIII): "geographical masks that modify the spatial coordinate of
// a mobility trace by adding some random noise or aggregate several mobility
// traces into a single spatial coordinate. More sophisticated geo-
// sanitization methods ... such as spatial cloaking techniques and mix
// zones".
//
// Four mechanisms:
//   * gaussian_mask     — perturb each trace by N(0, sigma) meters;
//   * spatial_rounding  — snap coordinates to a grid (aggregation);
//   * spatial_cloaking  — enlarge each trace's cell until at least k users
//                         share it (k-anonymity-style generalization);
//   * mix zones         — suppress traces inside the zones and change the
//                         pseudonym of every user crossing one.
//
// The first two are also provided as map-only MapReduce jobs (per-line
// deterministic noise), following the paper's plan to "design MapReduced
// versions of geo-sanitization mechanisms".
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "geo/trace.h"
#include "mapreduce/cluster.h"
#include "mapreduce/job.h"

namespace gepeto::mr {
class Dfs;
}

namespace gepeto::core {

/// Gaussian geographical mask (deterministic: the noise of a trace depends
/// only on seed, user id and timestamp, so the MR and sequential paths
/// produce identical output).
geo::GeolocatedDataset gaussian_mask(const geo::GeolocatedDataset& dataset,
                                     double sigma_m, std::uint64_t seed);

/// Snap every coordinate to the center of a square grid cell of side
/// `cell_m` meters (spatial aggregation).
geo::GeolocatedDataset spatial_rounding(const geo::GeolocatedDataset& dataset,
                                        double cell_m);

struct CloakingResult {
  geo::GeolocatedDataset data;
  double avg_cell_m = 0.0;      ///< average cell size traces ended up in
  std::uint64_t suppressed = 0; ///< traces that never reached k users
};

/// Spatial cloaking: per trace, grow the cell (doubling from `base_cell_m`,
/// at most `max_doublings` times) until at least `k` distinct users have
/// traces in it; the trace is reported at the cell center. Traces that never
/// reach k users are suppressed.
CloakingResult spatial_cloaking(const geo::GeolocatedDataset& dataset, int k,
                                double base_cell_m, int max_doublings = 6);

struct MixZone {
  double latitude = 0.0;
  double longitude = 0.0;
  double radius_m = 0.0;
};

struct MixZoneResult {
  geo::GeolocatedDataset data;
  std::uint64_t suppressed_traces = 0;
  std::uint64_t pseudonym_changes = 0;
  /// For evaluation only: new pseudonym -> original user id.
  std::vector<std::pair<std::int32_t, std::int32_t>> pseudonym_owner;
};

/// Apply mix zones: traces inside any zone are suppressed; each time a user
/// exits a zone they continue under a fresh pseudonym.
MixZoneResult apply_mix_zones(const geo::GeolocatedDataset& dataset,
                              const std::vector<MixZone>& zones);

/// Pick the `count` busiest grid cells (by distinct users) as mix zones —
/// a simple automatic placement.
std::vector<MixZone> pick_mix_zones(const geo::GeolocatedDataset& dataset,
                                    int count, double radius_m);

/// Map-only MapReduce jobs over dataset lines.
mr::JobResult run_gaussian_mask_job(mr::Dfs& dfs,
                                    const mr::ClusterConfig& cluster,
                                    const std::string& input,
                                    const std::string& output, double sigma_m,
                                    std::uint64_t seed);

mr::JobResult run_rounding_job(mr::Dfs& dfs, const mr::ClusterConfig& cluster,
                               const std::string& input,
                               const std::string& output, double cell_m);

/// Spatial cloaking as a two-job MapReduce pipeline:
///   job 1 (census): mappers emit (level, cell) -> user per trace; a
///   combiner dedupes locally; reducers count distinct users per cell and
///   write the census;
///   job 2 (apply, map-only): mappers load the census from the distributed
///   cache and generalize each trace to the smallest cell with >= k users
///   (suppressing traces that never reach k).
/// Semantically identical to spatial_cloaking() (tested).
struct CloakingMrResult {
  mr::JobResult census_job;
  mr::JobResult apply_job;
  std::uint64_t suppressed = 0;
};

CloakingMrResult run_cloaking_jobs(mr::Dfs& dfs,
                                   const mr::ClusterConfig& cluster,
                                   const std::string& input,
                                   const std::string& work_prefix, int k,
                                   double base_cell_m, int max_doublings = 6);

}  // namespace gepeto::core
