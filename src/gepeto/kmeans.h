// k-means clustering (paper Section VI, Fig. 4, Tables II-III).
//
// The MapReduce realization follows the paper exactly: the initialization
// phase randomly picks k traces as centroids on a single node (the driver);
// each iteration is one MapReduce job whose map phase assigns every trace to
// the closest centroid (centroids read from the current clusters file via
// the distributed cache) and whose reduce phase averages each cluster's
// points into the new centroid. An optional combiner pre-sums points per map
// task (the Zhao/Ma/He optimization discussed in the paper's related work),
// collapsing shuffle traffic from one record per trace to one record per
// (map task, cluster).
//
// Runtime arguments mirror Table II: input path, output/clusters path, k,
// distanceMeasure, convergencedelta, maxIter.
#pragma once

#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "geo/distance.h"
#include "geo/trace.h"
#include "mapreduce/cluster.h"
#include "mapreduce/job.h"

namespace gepeto::mr {
class Dfs;
}

namespace gepeto::core {

struct Centroid {
  double latitude = 0.0;
  double longitude = 0.0;
};

struct KMeansConfig {
  int k = 10;                                 ///< number of clusters
  geo::DistanceKind distance = geo::DistanceKind::kSquaredEuclidean;
  /// Converged when every centroid moved less than this many meters between
  /// iterations (Table II's "convergencedelta", expressed in meters so it is
  /// metric-independent).
  double convergence_delta_m = 10.0;
  int max_iterations = 150;                   ///< Table II's "maxIter"
  std::uint64_t seed = 1;                     ///< initial-centroid selection
  bool use_combiner = false;
  bool kmeanspp_init = false;                 ///< k-means++ instead of uniform
  /// Treat `input` as columnar trace files (storage::dataset_to_dfs_columnar)
  /// instead of text dataset lines. Initialization and the final SSE pass
  /// then stream block-by-block rather than materializing the dataset.
  bool columnar_input = false;
  /// Per-map-task shuffle memory budget for every iteration job
  /// (mr::JobConfig::sort_memory_budget_bytes); 0 = fully in-memory. Output
  /// centroids are byte-identical at any budget.
  std::uint64_t sort_memory_budget_bytes = 0;

  // --- fault tolerance (MapReduce path only) -------------------------------
  /// Failure policy applied to every iteration job.
  mr::FailurePolicy failures;
  /// Chaos plan for iteration jobs (see mr::FaultPlan).
  mr::FaultPlan fault_plan;
  /// Apply `fault_plan` only to this iteration (0-based); -1 = every
  /// iteration. Lets a test crash iteration N, then resume past it.
  int fault_iteration = -1;
  /// Resume from the latest `clusters_path + "/iter-NNN"` checkpoint instead
  /// of re-initializing — the driver persists centroids every iteration, so
  /// after a JobError the caller can retry with `resume = true` and only the
  /// failed iteration (and later ones) re-run.
  bool resume = false;
  /// Debugging: keep the per-iteration reducer outputs
  /// (`clusters_path/out-NNN`). By default the flow drops them once the run
  /// finished — the `iter-NNN` centroid checkpoints are the product and
  /// always persist.
  bool keep_intermediates = false;
};

struct IterationStats {
  double real_seconds = 0.0;        ///< wall time of this iteration's job
  double sim_seconds = 0.0;         ///< simulated cluster time
  double sim_map_seconds = 0.0;
  double sim_reduce_seconds = 0.0;
  std::uint64_t shuffle_bytes = 0;
  double max_centroid_move_m = 0.0;
};

struct KMeansResult {
  std::vector<Centroid> centroids;
  std::vector<std::uint64_t> cluster_sizes;
  int iterations = 0;  ///< iterations executed by this call (resume excluded)
  bool converged = false;
  double sse = 0.0;  ///< sum of squared (degree-space) distances to centroids
  std::vector<IterationStats> per_iteration;  ///< MapReduce runs only
  mr::JobResult totals;                       ///< MapReduce runs only
};

/// Deterministic initial centroids: reservoir-sample k traces from the
/// dataset in (user, time) order — the same traces the DFS files hold, so
/// the sequential and MapReduce paths start identically.
std::vector<Centroid> initial_centroids(const geo::GeolocatedDataset& dataset,
                                        int k, std::uint64_t seed);

/// k-means++ seeding over the in-memory dataset (extension; the paper uses
/// uniform random initialization).
std::vector<Centroid> kmeanspp_centroids(const geo::GeolocatedDataset& dataset,
                                         int k, std::uint64_t seed);

/// Index of the centroid closest to (lat, lon) under `kind`; ties resolve to
/// the lowest index (shared by both implementations).
std::size_t nearest_centroid(const std::vector<Centroid>& centroids,
                             geo::DistanceKind kind, double lat, double lon);

/// Sequential reference implementation.
KMeansResult kmeans_sequential(const geo::GeolocatedDataset& dataset,
                               const KMeansConfig& config);

/// MapReduce implementation: input is a DFS prefix of dataset lines;
/// `clusters_path` receives one centroids file per iteration
/// (clusters_path + "/iter-NNN"), mirroring the paper's "outputting a new
/// directory clusters-i containing the clusters files for the i-th
/// iteration".
KMeansResult kmeans_mapreduce(mr::Dfs& dfs, const mr::ClusterConfig& cluster,
                              const std::string& input,
                              const std::string& clusters_path,
                              const KMeansConfig& config);

/// Serialize / parse a centroids file ("index,lat,lon" per line).
std::string centroids_to_lines(const std::vector<Centroid>& centroids);
std::vector<Centroid> centroids_from_lines(std::string_view lines);

/// Non-throwing variant for inputs that may be corrupt (a checkpoint written
/// by a driver that crashed mid-write, a damaged cache file): returns
/// std::nullopt on malformed, truncated (no trailing newline) or incomplete
/// (missing index) input and describes the defect in `*error`.
/// `centroids_from_lines` wraps this and CHECK-fails, for callers whose
/// input is an invariant rather than external data.
std::optional<std::vector<Centroid>> try_centroids_from_lines(
    std::string_view lines, std::string* error = nullptr);

}  // namespace gepeto::core
