#include "gepeto/djcluster.h"

#include <algorithm>
#include <charconv>
#include <cmath>
#include <limits>
#include <map>
#include <unordered_map>

#include "common/check.h"
#include "geo/distance.h"
#include "geo/geolife.h"
#include "geo/kernels.h"
#include "index/rtree.h"
#include "mapreduce/engine.h"

namespace gepeto::core {

namespace {

constexpr int kTimestampBits = 40;

/// Speed of `cur` given optional neighbors (paper: distance between the
/// previous and next traces over the time difference; one-sided at trail
/// ends; isolated traces are stationary).
double trace_speed_ms(const geo::MobilityTrace* prev,
                      const geo::MobilityTrace& cur,
                      const geo::MobilityTrace* next) {
  const geo::MobilityTrace* a = prev ? prev : &cur;
  const geo::MobilityTrace* b = next ? next : &cur;
  if (a == b) return 0.0;  // isolated trace: stationary by definition
  const double dist = geo::equirectangular_meters(a->latitude, a->longitude,
                                                  b->latitude, b->longitude);
  const double dt = static_cast<double>(b->timestamp - a->timestamp);
  if (dt <= 0.0) {
    // Co-timestamped traces that moved are instantaneous teleports: treat as
    // (infinitely) moving so they are filtered out.
    return dist == 0.0 ? 0.0 : std::numeric_limits<double>::infinity();
  }
  return dist / dt;
}

/// Streaming stationary filter shared by the sequential path and the mapper:
/// feed (user, time)-ordered traces; emits kept traces via the sink.
class SpeedFilterFolder {
 public:
  explicit SpeedFilterFolder(double threshold) : threshold_(threshold) {}

  template <typename Sink>
  void feed(const geo::MobilityTrace& next, Sink&& sink) {
    if (have_cur_ && next.user_id != cur_.user_id) {
      finalize(nullptr, sink);  // last trace of the previous user
      have_cur_ = false;
      have_prev_ = false;
    }
    if (!have_cur_) {
      cur_ = next;
      have_cur_ = true;
      return;
    }
    finalize(&next, sink);
    prev_ = cur_;
    have_prev_ = true;
    cur_ = next;
  }

  template <typename Sink>
  void flush(Sink&& sink) {
    if (have_cur_) finalize(nullptr, sink);
    have_cur_ = have_prev_ = false;
  }

 private:
  template <typename Sink>
  void finalize(const geo::MobilityTrace* next, Sink&& sink) {
    const double v =
        trace_speed_ms(have_prev_ ? &prev_ : nullptr, cur_, next);
    if (v < threshold_) sink(cur_);
  }

  double threshold_;
  geo::MobilityTrace prev_{}, cur_{};
  bool have_prev_ = false, have_cur_ = false;
};

/// Streaming duplicate remover: keeps the first trace of each redundant run.
class DedupFolder {
 public:
  explicit DedupFolder(double radius_m) : radius_m_(radius_m) {}

  template <typename Sink>
  void feed(const geo::MobilityTrace& t, Sink&& sink) {
    if (have_ && t.user_id == last_kept_.user_id &&
        geo::equirectangular_meters(last_kept_.latitude, last_kept_.longitude,
                                    t.latitude, t.longitude) < radius_m_) {
      return;  // redundant with the last kept trace
    }
    last_kept_ = t;
    have_ = true;
    sink(t);
  }

 private:
  double radius_m_;
  geo::MobilityTrace last_kept_{};
  bool have_ = false;
};

// --- MapReduce mappers ---------------------------------------------------------

struct FilterMovingMapper {
  double threshold_ms;
  SpeedFilterFolder folder{threshold_ms};

  void map(std::int64_t, std::string_view line, mr::MapOnlyContext& ctx) {
    geo::MobilityTrace t;
    if (!geo::parse_dataset_line(line, t)) {
      ctx.increment("dj.malformed_lines");
      return;
    }
    folder.feed(t, [&](const geo::MobilityTrace& kept) {
      ctx.write(geo::dataset_line(kept));
    });
  }

  void cleanup(mr::MapOnlyContext& ctx) {
    folder.flush([&](const geo::MobilityTrace& kept) {
      ctx.write(geo::dataset_line(kept));
    });
  }
};

struct DedupMapper {
  double radius_m;
  DedupFolder folder{radius_m};

  void map(std::int64_t, std::string_view line, mr::MapOnlyContext& ctx) {
    geo::MobilityTrace t;
    if (!geo::parse_dataset_line(line, t)) {
      ctx.increment("dj.malformed_lines");
      return;
    }
    folder.feed(t, [&](const geo::MobilityTrace& kept) {
      ctx.write(geo::dataset_line(kept));
    });
  }
};

/// The value shuffled from the neighborhood mappers to the single reducer:
/// one core trace's neighborhood, as packed trace ids (coordinates are
/// recovered from the distributed-cache entries file, which keeps the
/// shuffle small — ids only, not points).
struct IdList {
  std::vector<std::uint64_t> ids;
  std::uint64_t serialized_size() const { return 8 * ids.size() + 8; }

  // Wire hooks (ipc::wire::WireMembers) so the job also runs under the
  // process worker backend, where intermediate values cross a real socket.
  void wire_append(std::string& out) const { ipc::wire::put_vec(out, ids); }
  static IdList wire_parse(ipc::wire::Reader& r) {
    return IdList{ipc::wire::get_vec<std::uint64_t>(r)};
  }
};

/// Entries-file line: "id,lat,lon".
std::string entries_to_lines(const std::vector<index::RTreeEntry>& entries) {
  std::string out;
  out.reserve(entries.size() * 48);
  char buf[96];
  for (const auto& e : entries) {
    std::snprintf(buf, sizeof(buf), "%llu,%.10f,%.10f\n",
                  static_cast<unsigned long long>(e.id), e.lat, e.lon);
    out += buf;
  }
  return out;
}

std::vector<index::RTreeEntry> entries_from_lines(std::string_view data) {
  std::vector<index::RTreeEntry> out;
  std::size_t start = 0;
  while (start < data.size()) {
    std::size_t end = data.find('\n', start);
    if (end == std::string_view::npos) end = data.size();
    const std::string_view line = data.substr(start, end - start);
    if (!line.empty()) {
      index::RTreeEntry e;
      const char* p = line.data();
      const char* ed = line.data() + line.size();
      auto r1 = std::from_chars(p, ed, e.id);
      GEPETO_CHECK_MSG(r1.ec == std::errc() && r1.ptr != ed && *r1.ptr == ',',
                       "bad entries line: " << line);
      auto r2 = std::from_chars(r1.ptr + 1, ed, e.lat);
      GEPETO_CHECK_MSG(r2.ec == std::errc() && r2.ptr != ed && *r2.ptr == ',',
                       "bad entries line: " << line);
      auto r3 = std::from_chars(r2.ptr + 1, ed, e.lon);
      GEPETO_CHECK_MSG(r3.ec == std::errc() && r3.ptr == ed,
                       "bad entries line: " << line);
      out.push_back(e);
    }
    start = end + 1;
  }
  return out;
}

struct NeighborhoodMapper {
  using OutKey = std::int32_t;  // constant: all pairs go to one reducer
  using OutValue = IdList;

  std::string entries_file;
  double radius_m;
  int min_pts;
  index::RTree tree{16};

  void setup(mr::TaskContext& ctx) {
    // "a mapper first loads the R-Tree from the distributed cache while
    // executing its setup method"
    const auto entries = entries_from_lines(ctx.cache_file(entries_file));
    tree.bulk_load_str(entries);
  }

  void map(std::int64_t, std::string_view line,
           mr::MapContext<OutKey, OutValue>& ctx) {
    geo::MobilityTrace t;
    if (!geo::parse_dataset_line(line, t)) {
      ctx.increment("dj.malformed_lines");
      return;
    }
    const auto neighborhood =
        tree.radius_search_meters(t.latitude, t.longitude, radius_m);
    if (neighborhood.size() < static_cast<std::size_t>(min_pts)) {
      ctx.increment("dj.noise_candidates");
      return;  // markAsNoise
    }
    IdList list;
    list.ids.reserve(neighborhood.size());
    for (const auto& e : neighborhood) list.ids.push_back(e.id);
    std::sort(list.ids.begin(), list.ids.end());
    ctx.emit(0, std::move(list));
    ctx.increment("dj.core_traces");
  }
};

/// Union-find over packed trace ids.
class UnionFind {
 public:
  std::uint64_t find(std::uint64_t x) {
    auto it = parent_.find(x);
    if (it == parent_.end()) {
      parent_.emplace(x, x);
      return x;
    }
    // Path compression (iterative).
    std::uint64_t root = x;
    while (parent_[root] != root) root = parent_[root];
    while (parent_[x] != root) {
      const std::uint64_t next = parent_[x];
      parent_[x] = root;
      x = next;
    }
    return root;
  }

  void unite(std::uint64_t a, std::uint64_t b) {
    const std::uint64_t ra = find(a), rb = find(b);
    if (ra == rb) return;
    // Deterministic: smaller id becomes the root.
    if (ra < rb)
      parent_[rb] = ra;
    else
      parent_[ra] = rb;
  }

  const std::unordered_map<std::uint64_t, std::uint64_t>& raw() const {
    return parent_;
  }

 private:
  std::unordered_map<std::uint64_t, std::uint64_t> parent_;
};

/// Shared by the sequential implementation and the reducer: merge
/// neighborhoods into clusters and compute centroids. `coords` maps packed
/// id -> (lat, lon); `total` is the number of preprocessed traces.
DjClusterResult merge_neighborhoods(
    const std::vector<std::vector<std::uint64_t>>& neighborhoods,
    const std::unordered_map<std::uint64_t, std::pair<double, double>>& coords,
    std::uint64_t total) {
  UnionFind uf;
  for (const auto& n : neighborhoods) {
    GEPETO_DCHECK(!n.empty());
    for (std::size_t i = 1; i < n.size(); ++i) uf.unite(n[0], n[i]);
    uf.find(n[0]);  // ensure singleton neighborhoods are registered
  }

  // Group members by root, deterministically (ids in ascending order).
  std::map<std::uint64_t, std::vector<std::uint64_t>> groups;
  {
    std::vector<std::uint64_t> ids;
    ids.reserve(uf.raw().size());
    for (const auto& [id, p] : uf.raw()) ids.push_back(id);
    std::sort(ids.begin(), ids.end());
    for (std::uint64_t id : ids) groups[uf.find(id)].push_back(id);
  }

  DjClusterResult result;
  for (auto& [root, members] : groups) {
    std::sort(members.begin(), members.end());
    DjCluster c;
    double lat = 0, lon = 0;
    for (std::uint64_t id : members) {
      const auto it = coords.find(id);
      GEPETO_CHECK_MSG(it != coords.end(), "unknown trace id in cluster");
      lat += it->second.first;
      lon += it->second.second;
    }
    c.centroid_lat = lat / static_cast<double>(members.size());
    c.centroid_lon = lon / static_cast<double>(members.size());
    c.members = std::move(members);
    result.clustered += c.members.size();
    result.clusters.push_back(std::move(c));
  }
  // groups is ordered by root = smallest member id: already sorted.
  GEPETO_CHECK(total >= result.clustered);
  result.noise = total - result.clustered;
  return result;
}

struct MergeReducer {
  std::string entries_file;

  std::unordered_map<std::uint64_t, std::pair<double, double>> coords;
  std::uint64_t total = 0;

  void setup(mr::TaskContext& ctx) {
    for (const auto& e : entries_from_lines(ctx.cache_file(entries_file))) {
      coords.emplace(e.id, std::make_pair(e.lat, e.lon));
      ++total;
    }
  }

  void reduce(const std::int32_t&, std::span<const IdList> values,
              mr::ReduceContext& ctx) {
    std::vector<std::vector<std::uint64_t>> neighborhoods;
    neighborhoods.reserve(values.size());
    for (const auto& v : values) neighborhoods.push_back(v.ids);
    // Deterministic merge order regardless of shuffle arrival order.
    std::sort(neighborhoods.begin(), neighborhoods.end());
    const auto result = merge_neighborhoods(neighborhoods, coords, total);

    char buf[128];
    for (std::size_t i = 0; i < result.clusters.size(); ++i) {
      const auto& c = result.clusters[i];
      std::snprintf(buf, sizeof(buf), "cluster,%zu,%zu,%.10f,%.10f,", i,
                    c.members.size(), c.centroid_lat, c.centroid_lon);
      std::string line = buf;
      for (std::size_t m = 0; m < c.members.size(); ++m) {
        if (m) line.push_back(' ');
        line += std::to_string(c.members[m]);
      }
      ctx.write(line);
    }
    std::snprintf(buf, sizeof(buf), "noise,%llu",
                  static_cast<unsigned long long>(result.noise));
    ctx.write(buf);
    ctx.increment("dj.clusters",
                  static_cast<std::int64_t>(result.clusters.size()));
  }
};

}  // namespace

std::uint64_t pack_trace_id(std::int32_t user_id, std::int64_t timestamp) {
  GEPETO_DCHECK(user_id >= 0);
  GEPETO_DCHECK(timestamp >= 0 && timestamp < (std::int64_t{1} << kTimestampBits));
  return (static_cast<std::uint64_t>(user_id) << kTimestampBits) |
         static_cast<std::uint64_t>(timestamp);
}

void unpack_trace_id(std::uint64_t id, std::int32_t& user_id,
                     std::int64_t& timestamp) {
  user_id = static_cast<std::int32_t>(id >> kTimestampBits);
  timestamp =
      static_cast<std::int64_t>(id & ((std::uint64_t{1} << kTimestampBits) - 1));
}

std::vector<ClusterSummary> summarize_clusters(
    const DjClusterResult& result, const geo::GeolocatedDataset& preprocessed) {
  std::vector<ClusterSummary> out;
  out.reserve(result.clusters.size());
  for (std::size_t i = 0; i < result.clusters.size(); ++i) {
    const DjCluster& c = result.clusters[i];
    ClusterSummary s;
    s.cluster_id = static_cast<std::uint64_t>(i);
    s.centroid_lat = c.centroid_lat;
    s.centroid_lon = c.centroid_lon;
    s.size = static_cast<std::uint32_t>(c.members.size());
    // Resolve all member coordinates first, then take the radius as one
    // batched haversine pass (kernels.h) + the original max fold.
    std::vector<double> mlats, mlons;
    mlats.reserve(c.members.size());
    mlons.reserve(c.members.size());
    for (const std::uint64_t member : c.members) {
      std::int32_t user_id;
      std::int64_t timestamp;
      unpack_trace_id(member, user_id, timestamp);
      GEPETO_CHECK_MSG(preprocessed.has_user(user_id),
                       "cluster member references an unknown user");
      const geo::Trail& trail = preprocessed.trail(user_id);
      // Timestamps are strictly increasing per user after preprocessing.
      const auto it = std::lower_bound(
          trail.begin(), trail.end(), timestamp,
          [](const geo::MobilityTrace& t, std::int64_t ts) {
            return t.timestamp < ts;
          });
      GEPETO_CHECK_MSG(it != trail.end() && it->timestamp == timestamp,
                       "cluster member references an unknown trace");
      mlats.push_back(it->latitude);
      mlons.push_back(it->longitude);
    }
    std::vector<double> dist(mlats.size());
    geo::haversine_meters_batch(s.centroid_lat, s.centroid_lon, mlats.data(),
                                mlons.data(), mlats.size(), dist.data());
    for (const double d : dist) s.radius_m = std::max(s.radius_m, d);
    out.push_back(s);
  }
  return out;
}

geo::Trail filter_moving(const geo::Trail& trail, double speed_threshold_ms) {
  SpeedFilterFolder folder(speed_threshold_ms);
  geo::Trail out;
  for (const auto& t : trail)
    folder.feed(t, [&](const geo::MobilityTrace& k) { out.push_back(k); });
  folder.flush([&](const geo::MobilityTrace& k) { out.push_back(k); });
  return out;
}

geo::Trail remove_duplicates(const geo::Trail& trail,
                             double duplicate_radius_m) {
  DedupFolder folder(duplicate_radius_m);
  geo::Trail out;
  for (const auto& t : trail)
    folder.feed(t, [&](const geo::MobilityTrace& k) { out.push_back(k); });
  return out;
}

geo::GeolocatedDataset preprocess(const geo::GeolocatedDataset& dataset,
                                  const DjClusterConfig& config) {
  geo::GeolocatedDataset out;
  for (const auto& [uid, trail] : dataset) {
    out.add_trail(uid,
                  remove_duplicates(
                      filter_moving(trail, config.speed_threshold_ms),
                      config.duplicate_radius_m));
  }
  return out;
}

DjClusterResult dj_cluster(const geo::GeolocatedDataset& preprocessed,
                           const DjClusterConfig& config) {
  // Build the R-Tree over every preprocessed trace.
  std::vector<index::RTreeEntry> entries;
  std::unordered_map<std::uint64_t, std::pair<double, double>> coords;
  entries.reserve(preprocessed.num_traces());
  for (const auto& [uid, trail] : preprocessed) {
    for (const auto& t : trail) {
      const auto id = pack_trace_id(t.user_id, t.timestamp);
      entries.push_back({t.latitude, t.longitude, id});
      coords.emplace(id, std::make_pair(t.latitude, t.longitude));
    }
  }
  index::RTree tree(16);
  tree.bulk_load_str(entries);

  std::vector<std::vector<std::uint64_t>> neighborhoods;
  for (const auto& e : entries) {
    const auto n = tree.radius_search_meters(e.lat, e.lon, config.radius_m);
    if (n.size() < static_cast<std::size_t>(config.min_pts)) continue;
    std::vector<std::uint64_t> ids;
    ids.reserve(n.size());
    for (const auto& x : n) ids.push_back(x.id);
    std::sort(ids.begin(), ids.end());
    neighborhoods.push_back(std::move(ids));
  }
  std::sort(neighborhoods.begin(), neighborhoods.end());
  return merge_neighborhoods(neighborhoods, coords, entries.size());
}

void add_preprocess_nodes(flow::Flow& f, const std::string& input,
                          const std::string& work_prefix,
                          const DjClusterConfig& config) {
  const std::string filtered = work_prefix + "/filtered";
  const std::string preprocessed = work_prefix + "/preprocessed";
  const mr::FailurePolicy failures = config.failures;

  const double threshold = config.speed_threshold_ms;
  const mr::FaultPlan fault_plan = config.fault_plan;
  f.add_map_only("dj-filter-moving",
                 [input, filtered, failures, fault_plan,
                  threshold](flow::FlowEngine& e) {
                   mr::JobConfig job;
                   job.name = "dj-filter-moving";
                   job.input = input;
                   job.output = filtered;
                   job.failures = failures;
                   job.fault_plan = fault_plan;
                   return mr::run_map_only_job(
                       e.dfs(), e.cluster(), job,
                       [threshold] { return FilterMovingMapper{threshold}; });
                 })
      .reads(input)
      .writes(filtered);

  const double dup_radius = config.duplicate_radius_m;
  f.add_map_only("dj-remove-duplicates",
                 [filtered, preprocessed, failures,
                  dup_radius](flow::FlowEngine& e) {
                   mr::JobConfig job;
                   job.name = "dj-remove-duplicates";
                   job.input = filtered;
                   job.output = preprocessed;
                   job.failures = failures;
                   return mr::run_map_only_job(
                       e.dfs(), e.cluster(), job,
                       [dup_radius] { return DedupMapper{dup_radius}; });
                 })
      .reads(filtered)
      .keep(preprocessed);
}

void add_djcluster_nodes(flow::Flow& f, const std::string& input,
                         const std::string& work_prefix,
                         const DjClusterConfig& config) {
  add_preprocess_nodes(f, input, work_prefix, config);

  const std::string preprocessed = work_prefix + "/preprocessed";
  const std::string entries_file = work_prefix + "/rtree-entries";
  const std::string clusters = work_prefix + "/clusters";

  // The driver serializes the preprocessed traces as R-Tree entries into the
  // distributed cache; every mapper bulk-loads its own R-Tree from it
  // (construction of the tree itself via MapReduce is exercised separately
  // in rtree_mr).
  f.add_native("dj-build-entries",
               [preprocessed, entries_file](flow::FlowEngine& e) {
                 const auto dataset =
                     geo::dataset_from_dfs(e.dfs(), preprocessed + "/");
                 std::vector<index::RTreeEntry> entries;
                 entries.reserve(dataset.num_traces());
                 for (const auto& [uid, trail] : dataset)
                   for (const auto& t : trail)
                     entries.push_back({t.latitude, t.longitude,
                                        pack_trace_id(t.user_id, t.timestamp)});
                 e.dfs().put(entries_file, entries_to_lines(entries));
               })
      .reads(preprocessed)
      .writes(entries_file);

  const mr::FailurePolicy failures = config.failures;
  const double radius = config.radius_m;
  const int min_pts = config.min_pts;
  f.add_mapreduce("dj-cluster",
                  [preprocessed, entries_file, clusters, failures, radius,
                   min_pts](flow::FlowEngine& e) {
                    mr::JobConfig job;
                    job.name = "dj-cluster";
                    job.input = preprocessed;
                    job.output = clusters;
                    job.num_reducers = 1;  // single merge reducer (Sec. VII)
                    job.failures = failures;
                    job.cache_files = {entries_file};
                    return mr::run_mapreduce_job(
                        e.dfs(), e.cluster(), job,
                        [entries_file, radius, min_pts] {
                          return NeighborhoodMapper{entries_file, radius,
                                                    min_pts, index::RTree(16)};
                        },
                        [entries_file] {
                          return MergeReducer{entries_file, {}, 0};
                        });
                  })
      .reads(preprocessed)
      .reads(entries_file)
      .keep(clusters);
}

DjPreprocessStats run_preprocess_jobs(mr::Dfs& dfs,
                                      const mr::ClusterConfig& cluster,
                                      const std::string& input,
                                      const std::string& work_prefix,
                                      const DjClusterConfig& config) {
  DjPreprocessStats stats;
  stats.input_traces = geo::count_dfs_records(dfs, input);

  flow::Flow f("dj-preprocess");
  add_preprocess_nodes(f, input, work_prefix, config);
  flow::FlowOptions options;
  options.keep_intermediates = config.keep_intermediates;
  const auto fr = f.run(dfs, cluster, options);

  stats.filter_job = fr.node("dj-filter-moving")->job;
  stats.dedup_job = fr.node("dj-remove-duplicates")->job;
  stats.after_filter = stats.filter_job.output_records;
  stats.after_dedup = stats.dedup_job.output_records;
  return stats;
}

DjMapReduceResult run_djcluster_jobs(mr::Dfs& dfs,
                                     const mr::ClusterConfig& cluster,
                                     const std::string& input,
                                     const std::string& work_prefix,
                                     const DjClusterConfig& config) {
  DjMapReduceResult result;
  result.preprocess.input_traces = geo::count_dfs_records(dfs, input);

  flow::Flow f("dj-cluster");
  add_djcluster_nodes(f, input, work_prefix, config);
  flow::FlowOptions options;
  options.keep_intermediates = config.keep_intermediates;
  const auto fr = f.run(dfs, cluster, options);

  result.preprocess.filter_job = fr.node("dj-filter-moving")->job;
  result.preprocess.dedup_job = fr.node("dj-remove-duplicates")->job;
  result.preprocess.after_filter = result.preprocess.filter_job.output_records;
  result.preprocess.after_dedup = result.preprocess.dedup_job.output_records;
  result.cluster_job = fr.node("dj-cluster")->job;
  result.clusters = parse_djcluster_output(dfs, work_prefix);
  return result;
}

DjClusterResult parse_djcluster_output(const mr::Dfs& dfs,
                                       const std::string& work_prefix) {
  DjClusterResult result;
  for (const auto& part : dfs.list(work_prefix + "/clusters/")) {
    const std::string_view data = dfs.read(part);
    std::size_t start = 0;
    while (start < data.size()) {
      std::size_t end = data.find('\n', start);
      if (end == std::string_view::npos) end = data.size();
      const std::string_view line = data.substr(start, end - start);
      if (line.rfind("cluster,", 0) == 0) {
        DjCluster c;
        // cluster,<idx>,<size>,<lat>,<lon>,<ids...>
        std::size_t field = 0, pos = 8;
        std::size_t size_field = 0;
        while (field < 4) {
          const std::size_t comma = line.find(',', pos);
          GEPETO_CHECK(comma != std::string_view::npos);
          const std::string_view f = line.substr(pos, comma - pos);
          const char* fp = f.data();
          if (field == 1) {
            std::from_chars(fp, fp + f.size(), size_field);
          } else if (field == 2) {
            std::from_chars(fp, fp + f.size(), c.centroid_lat);
          } else if (field == 3) {
            std::from_chars(fp, fp + f.size(), c.centroid_lon);
          }
          pos = comma + 1;
          ++field;
        }
        // Remaining: space-separated member ids.
        while (pos < line.size()) {
          std::size_t space = line.find(' ', pos);
          if (space == std::string_view::npos) space = line.size();
          std::uint64_t id = 0;
          const std::string_view f = line.substr(pos, space - pos);
          std::from_chars(f.data(), f.data() + f.size(), id);
          c.members.push_back(id);
          pos = space + 1;
        }
        GEPETO_CHECK(c.members.size() == size_field);
        result.clustered += c.members.size();
        result.clusters.push_back(std::move(c));
      } else if (line.rfind("noise,", 0) == 0) {
        std::uint64_t n = 0;
        const std::string_view f = line.substr(6);
        std::from_chars(f.data(), f.data() + f.size(), n);
        result.noise = n;
      }
      start = end + 1;
    }
  }
  return result;
}

}  // namespace gepeto::core
