// Down-sampling (paper Section V, Figs. 2-3, Table I).
//
// Temporal aggregation: all mobility traces of a user that fall in the same
// time window are summarized by a single *representative* trace. Two
// representative-selection techniques, as in the paper:
//   * kUpperLimit — the trace closest to the upper limit of the window
//     (Fig. 2);
//   * kMiddle — the trace closest to the middle of the window (Fig. 3).
//
// Windows are aligned to absolute time (window w covers
// [w * window_s, (w+1) * window_s)), per user.
//
// Two MapReduce realizations are provided:
//   * run_sampling_job — map-only, exactly the paper's design ("consisting
//     only of map phases. The reduce phase is not necessary"). The mapper
//     implements the engine's group-aware split protocol
//     (mr::detail::GroupAwareMapper): a (user, window) group straddling a
//     chunk boundary is owned by the split holding its first trace, which
//     reads past its split end to finish the group — so the output matches
//     the sequential implementation exactly for any chunk size. Groups never
//     straddle *files* (dataset_to_dfs splits at user boundaries); the
//     binary-input variant keeps the paper's once-per-chunk approximation
//     (SequenceFile records carry no lookback).
//   * run_sampling_job_exact — map + reduce variant (key = user/window),
//     exact by construction; used as an independent realization in the
//     differential tests and when inputs are not (user, time)-sorted.
#pragma once

#include <string>

#include "geo/trace.h"
#include "mapreduce/cluster.h"
#include "mapreduce/job.h"

namespace gepeto::mr {
class Dfs;
}

namespace gepeto::core {

enum class SamplingTechnique { kUpperLimit, kMiddle };

struct SamplingConfig {
  int window_s = 60;
  SamplingTechnique technique = SamplingTechnique::kUpperLimit;
};

/// Reference timestamp of a window under the chosen technique.
std::int64_t window_reference(const SamplingConfig& config,
                              std::int64_t window_index);

/// Sequential reference implementation over an in-memory dataset.
geo::GeolocatedDataset downsample(const geo::GeolocatedDataset& dataset,
                                  const SamplingConfig& config);

/// Map-only MapReduce job over dataset lines (input: DFS prefix of files of
/// dataset lines sorted by (user, time); output: dataset lines). `failures`
/// optionally injects per-attempt task failures (re-executed by the
/// jobtracker; the output is unaffected). `fault_plan` deterministically
/// crashes chosen attempts and kills datanodes mid-job (see mr::FaultPlan).
mr::JobResult run_sampling_job(mr::Dfs& dfs, const mr::ClusterConfig& cluster,
                               const std::string& input,
                               const std::string& output,
                               const SamplingConfig& config,
                               const mr::FailurePolicy& failures = {},
                               const mr::FaultPlan& fault_plan = {});

/// Map-only sampling over SequenceFile-style *binary* inputs
/// (geo::dataset_to_dfs_binary); output is dataset lines, so this job also
/// acts as the binary-to-text conversion step of a pipeline (the Mahout
/// SequenceFile workflow the paper's related work describes, in reverse).
mr::JobResult run_sampling_job_binary(mr::Dfs& dfs,
                                      const mr::ClusterConfig& cluster,
                                      const std::string& input,
                                      const std::string& output,
                                      const SamplingConfig& config);

/// Map-only sampling over *columnar* inputs (storage::dataset_to_dfs_columnar
/// blocks); output is dataset lines. The columnar twin of
/// run_sampling_job_binary.
mr::JobResult run_sampling_job_columnar(mr::Dfs& dfs,
                                        const mr::ClusterConfig& cluster,
                                        const std::string& input,
                                        const std::string& output,
                                        const SamplingConfig& config);

/// Exact map+reduce variant (shuffles one record per kept trace).
/// `sort_memory_budget_bytes` caps each map task's in-memory shuffle buffer;
/// past it, sorted runs spill to scratch disk and reducers external-merge
/// them (0 = fully in-memory). The output is byte-identical at any budget.
mr::JobResult run_sampling_job_exact(mr::Dfs& dfs,
                                     const mr::ClusterConfig& cluster,
                                     const std::string& input,
                                     const std::string& output,
                                     const SamplingConfig& config,
                                     int num_reducers = 4,
                                     const mr::FailurePolicy& failures = {},
                                     const mr::FaultPlan& fault_plan = {},
                                     std::uint64_t sort_memory_budget_bytes = 0);

/// Exact map+reduce variant over columnar inputs — the shuffle (and its
/// memory budget) behave exactly as in run_sampling_job_exact.
mr::JobResult run_sampling_job_exact_columnar(
    mr::Dfs& dfs, const mr::ClusterConfig& cluster, const std::string& input,
    const std::string& output, const SamplingConfig& config,
    int num_reducers = 4, const mr::FailurePolicy& failures = {},
    const mr::FaultPlan& fault_plan = {},
    std::uint64_t sort_memory_budget_bytes = 0);

}  // namespace gepeto::core
