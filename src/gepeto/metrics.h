// Privacy and utility metrics — GEPETO's purpose is to let a data curator
// "evaluate the resulting trade-off between privacy and utility". Utility is
// measured as the spatial error a sanitization mechanism introduces; privacy
// as the degradation it causes to inference attacks (POI extraction,
// de-anonymization — see poi.h / mmc.h).
#pragma once

#include <cstdint>

#include "geo/generator.h"
#include "geo/trace.h"
#include "gepeto/djcluster.h"

namespace gepeto::core {

struct UtilityMetrics {
  std::uint64_t paired_traces = 0;     ///< traces present in both datasets
  std::uint64_t dropped_traces = 0;    ///< present in original only
  double retention = 0.0;              ///< paired / original
  double mean_error_m = 0.0;
  double median_error_m = 0.0;
  double p95_error_m = 0.0;
  double max_error_m = 0.0;
};

/// Pair traces by (user id, timestamp) and measure displacement. Sanitized
/// traces with no counterpart (e.g. pseudonym changes) count as dropped.
UtilityMetrics location_error(const geo::GeolocatedDataset& original,
                              const geo::GeolocatedDataset& sanitized);

/// Fraction of ground-truth POIs still recoverable from the sanitized data
/// by the DJ-Cluster POI attack (averaged recall over users).
double poi_preservation(const geo::GeolocatedDataset& sanitized,
                        const std::vector<geo::UserProfile>& truth,
                        const DjClusterConfig& config,
                        double match_radius_m = 150.0);

}  // namespace gepeto::core
