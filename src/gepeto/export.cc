#include "gepeto/export.h"

#include <cmath>
#include <cstdio>
#include <map>
#include <numbers>

#include "common/check.h"

namespace gepeto::core {

namespace {

void append_coord(std::string& out, double lon, double lat) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "[%.6f,%.6f]", lon, lat);
  out += buf;
}

/// Open/close a FeatureCollection around a comma-joined feature list.
std::string collection(std::string features) {
  return "{\"type\":\"FeatureCollection\",\"features\":[" +
         std::move(features) + "]}";
}

std::string point_feature(double lat, double lon,
                          const std::string& properties) {
  std::string out = "{\"type\":\"Feature\",\"geometry\":{\"type\":\"Point\","
                    "\"coordinates\":";
  append_coord(out, lon, lat);
  out += "},\"properties\":{" + properties + "}}";
  return out;
}

}  // namespace

std::string dataset_to_geojson(const geo::GeolocatedDataset& dataset,
                               const GeoJsonOptions& options) {
  std::string features;
  bool first_user = true;
  for (const auto& [uid, trail] : dataset) {
    if (!first_user) features += ",";
    first_user = false;
    features +=
        "{\"type\":\"Feature\",\"geometry\":{\"type\":\"MultiLineString\","
        "\"coordinates\":[";
    bool first_segment = true;
    std::size_t start = 0;
    while (start < trail.size()) {
      std::size_t end = start + 1;
      while (end < trail.size() &&
             trail[end].timestamp - trail[end - 1].timestamp <=
                 options.trajectory_gap_s)
        ++end;
      if (!first_segment) features += ",";
      first_segment = false;
      features += "[";
      const std::size_t count = end - start;
      const std::size_t limit = options.max_points_per_segment;
      const std::size_t step =
          (limit == 0 || count <= limit) ? 1 : (count + limit - 1) / limit;
      bool first_pt = true;
      for (std::size_t i = start; i < end; i += step) {
        if (!first_pt) features += ",";
        first_pt = false;
        append_coord(features, trail[i].longitude, trail[i].latitude);
      }
      // A LineString needs at least two positions: repeat lone points.
      if (count == 1 || (step >= count && count > 0)) {
        features += ",";
        append_coord(features, trail[start].longitude, trail[start].latitude);
      }
      features += "]";
      start = end;
    }
    features += "]},\"properties\":{\"user\":" + std::to_string(uid) + "}}";
  }
  return collection(std::move(features));
}

std::string clusters_to_geojson(const DjClusterResult& clusters) {
  std::string features;
  for (std::size_t i = 0; i < clusters.clusters.size(); ++i) {
    const auto& c = clusters.clusters[i];
    if (i) features += ",";
    features += point_feature(
        c.centroid_lat, c.centroid_lon,
        "\"cluster\":" + std::to_string(i) +
            ",\"size\":" + std::to_string(c.members.size()));
  }
  return collection(std::move(features));
}

std::string pois_to_geojson(const ExtractedPois& pois) {
  std::string features;
  for (std::size_t i = 0; i < pois.pois.size(); ++i) {
    const auto& p = pois.pois[i];
    if (i) features += ",";
    std::string role = "poi";
    if (static_cast<int>(i) == pois.home_index) role = "home";
    if (static_cast<int>(i) == pois.work_index) role = "work";
    features += point_feature(
        p.latitude, p.longitude,
        "\"role\":\"" + role +
            "\",\"traces\":" + std::to_string(p.num_traces) +
            ",\"night\":" + std::to_string(p.night_traces) +
            ",\"office\":" + std::to_string(p.office_traces));
  }
  return collection(std::move(features));
}

std::string ground_truth_to_geojson(
    const std::vector<geo::UserProfile>& profiles) {
  std::string features;
  bool first = true;
  for (const auto& profile : profiles) {
    for (const auto& p : profile.pois) {
      if (!first) features += ",";
      first = false;
      const char* kind = p.kind == geo::PoiKind::kHome     ? "home"
                         : p.kind == geo::PoiKind::kWork   ? "work"
                                                           : "leisure";
      features += point_feature(
          p.latitude, p.longitude,
          "\"user\":" + std::to_string(profile.user_id) + ",\"kind\":\"" +
              kind + "\"");
    }
  }
  return collection(std::move(features));
}

std::string zones_to_geojson(const std::vector<MixZone>& zones) {
  std::string features;
  for (std::size_t z = 0; z < zones.size(); ++z) {
    if (z) features += ",";
    const auto& zone = zones[z];
    features += "{\"type\":\"Feature\",\"geometry\":{\"type\":\"Polygon\","
                "\"coordinates\":[[";
    constexpr int kSides = 24;
    const double dlat = zone.radius_m / 111320.0;
    const double dlon =
        zone.radius_m /
        (111320.0 * std::cos(zone.latitude * std::numbers::pi / 180.0));
    for (int i = 0; i <= kSides; ++i) {  // closed ring: repeat first vertex
      if (i) features += ",";
      const double a =
          2.0 * std::numbers::pi * static_cast<double>(i % kSides) / kSides;
      append_coord(features, zone.longitude + dlon * std::cos(a),
                   zone.latitude + dlat * std::sin(a));
    }
    features += "]]},\"properties\":{\"radius_m\":" +
                std::to_string(zone.radius_m) + "}}";
  }
  return collection(std::move(features));
}

std::string social_links_to_geojson(
    const std::vector<SocialEdge>& edges,
    const std::vector<geo::UserProfile>& profiles) {
  auto anchor = [&](std::int32_t uid) -> const geo::Poi* {
    for (const auto& p : profiles)
      if (p.user_id == uid && !p.pois.empty()) return &p.pois.front();
    return nullptr;
  };
  std::string features;
  bool first = true;
  for (const auto& e : edges) {
    const geo::Poi* a = anchor(e.a);
    const geo::Poi* b = anchor(e.b);
    if (a == nullptr || b == nullptr) continue;
    if (!first) features += ",";
    first = false;
    features += "{\"type\":\"Feature\",\"geometry\":{\"type\":\"LineString\","
                "\"coordinates\":[";
    append_coord(features, a->longitude, a->latitude);
    features += ",";
    append_coord(features, b->longitude, b->latitude);
    features += "]},\"properties\":{\"a\":" + std::to_string(e.a) +
                ",\"b\":" + std::to_string(e.b) +
                ",\"meetings\":" + std::to_string(e.meetings) + "}}";
  }
  return collection(std::move(features));
}

std::string heatmap_csv(const geo::GeolocatedDataset& dataset, double cell_m) {
  GEPETO_CHECK(cell_m > 0.0);
  const double dlat = cell_m / 111320.0;
  std::map<std::pair<std::int64_t, std::int64_t>, std::uint64_t> cells;
  for (const auto& [uid, trail] : dataset) {
    for (const auto& t : trail) {
      const double dlon =
          cell_m /
          (111320.0 * std::cos(t.latitude * std::numbers::pi / 180.0));
      cells[{static_cast<std::int64_t>(std::floor(t.latitude / dlat)),
             static_cast<std::int64_t>(std::floor(t.longitude / dlon))}]++;
    }
  }
  std::string out = "lat,lon,count\n";
  char buf[96];
  for (const auto& [cell, count] : cells) {
    const double lat = (static_cast<double>(cell.first) + 0.5) * dlat;
    const double dlon =
        cell_m / (111320.0 * std::cos(lat * std::numbers::pi / 180.0));
    const double lon = (static_cast<double>(cell.second) + 0.5) * dlon;
    std::snprintf(buf, sizeof(buf), "%.6f,%.6f,%llu\n", lat, lon,
                  static_cast<unsigned long long>(count));
    out += buf;
  }
  return out;
}

}  // namespace gepeto::core
