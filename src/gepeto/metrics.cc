#include "gepeto/metrics.h"

#include <algorithm>
#include <unordered_map>
#include <vector>

#include "geo/distance.h"
#include "gepeto/poi.h"

namespace gepeto::core {

UtilityMetrics location_error(const geo::GeolocatedDataset& original,
                              const geo::GeolocatedDataset& sanitized) {
  UtilityMetrics m;
  // Index sanitized traces by (uid, ts).
  std::unordered_map<std::uint64_t, const geo::MobilityTrace*> index;
  for (const auto& [uid, trail] : sanitized)
    for (const auto& t : trail)
      index.emplace(pack_trace_id(t.user_id, t.timestamp), &t);

  std::vector<double> errors;
  std::uint64_t original_count = 0;
  for (const auto& [uid, trail] : original) {
    for (const auto& t : trail) {
      ++original_count;
      const auto it = index.find(pack_trace_id(t.user_id, t.timestamp));
      if (it == index.end()) {
        ++m.dropped_traces;
        continue;
      }
      errors.push_back(geo::haversine_meters(t.latitude, t.longitude,
                                             it->second->latitude,
                                             it->second->longitude));
    }
  }
  m.paired_traces = errors.size();
  m.retention = original_count == 0
                    ? 0.0
                    : static_cast<double>(m.paired_traces) /
                          static_cast<double>(original_count);
  if (!errors.empty()) {
    double sum = 0.0;
    for (double e : errors) {
      sum += e;
      m.max_error_m = std::max(m.max_error_m, e);
    }
    m.mean_error_m = sum / static_cast<double>(errors.size());
    std::sort(errors.begin(), errors.end());
    m.median_error_m = errors[errors.size() / 2];
    m.p95_error_m = errors[static_cast<std::size_t>(
        0.95 * static_cast<double>(errors.size() - 1))];
  }
  return m;
}

double poi_preservation(const geo::GeolocatedDataset& sanitized,
                        const std::vector<geo::UserProfile>& truth,
                        const DjClusterConfig& config,
                        double match_radius_m) {
  const auto report = run_poi_attack(sanitized, truth, config, match_radius_m);
  return report.avg_recall;
}

}  // namespace gepeto::core
