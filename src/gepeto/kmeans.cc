#include "gepeto/kmeans.h"

#include <charconv>
#include <cmath>
#include <limits>
#include <memory>
#include <optional>

#include "common/check.h"
#include "common/random.h"
#include "common/stopwatch.h"
#include "geo/geolife.h"
#include "geo/kernels.h"
#include "mapreduce/engine.h"
#include "storage/columnar_jobs.h"
#include "workflow/flow.h"

namespace gepeto::core {

namespace {

/// Partial sum of points assigned to one cluster (the combiner/reducer
/// value).
struct PointSum {
  double lat_sum = 0.0;
  double lon_sum = 0.0;
  std::int64_t count = 0;

  std::uint64_t serialized_size() const { return 24; }
};

/// The cache file is external data (a checkpoint may have been written by
/// a driver that crashed mid-write): a parse failure is a task failure,
/// surfaced as JobError once attempts are exhausted — not a CHECK crash.
std::vector<Centroid> load_centroids_cache(mr::TaskContext& ctx,
                                           const std::string& clusters_file) {
  std::string err;
  auto parsed = try_centroids_from_lines(ctx.cache_file(clusters_file), &err);
  if (!parsed)
    throw mr::TaskError("bad centroids cache file '" + clusters_file +
                        "': " + err);
  if (parsed->empty())
    throw mr::TaskError("empty centroids cache file '" + clusters_file + "'");
  return std::move(*parsed);
}

/// Snapshot a centroid vector into the batched assignment kernel's
/// struct-of-arrays form.
geo::CentroidKernel make_assignment_kernel(
    const std::vector<Centroid>& centroids, geo::DistanceKind kind) {
  std::vector<double> lats;
  std::vector<double> lons;
  lats.reserve(centroids.size());
  lons.reserve(centroids.size());
  for (const auto& c : centroids) {
    lats.push_back(c.latitude);
    lons.push_back(c.longitude);
  }
  return geo::CentroidKernel(kind, lats.data(), lons.data(), centroids.size());
}

struct KMeansMapper {
  using OutKey = std::int32_t;
  using OutValue = PointSum;

  /// Points buffered between kernel flushes. Small enough to stay in L1/L2
  /// alongside the centroids; flushes preserve record order, so emission
  /// order — and with it every spill/shuffle byte — is identical to the
  /// unbuffered per-record loop.
  static constexpr std::size_t kPointBatch = 256;

  std::string clusters_file;
  geo::DistanceKind kind{};
  std::optional<geo::CentroidKernel> kernel;
  std::vector<double> lats;
  std::vector<double> lons;
  std::vector<std::uint32_t> idx;

  void setup(mr::TaskContext& ctx) {
    kernel.emplace(
        make_assignment_kernel(load_centroids_cache(ctx, clusters_file), kind));
    lats.reserve(kPointBatch);
    lons.reserve(kPointBatch);
  }

  void map(std::int64_t, std::string_view line,
           mr::MapContext<OutKey, OutValue>& ctx) {
    geo::MobilityTrace t;
    if (!geo::parse_dataset_line(line, t)) {
      ctx.increment("kmeans.malformed_lines");
      return;
    }
    lats.push_back(t.latitude);
    lons.push_back(t.longitude);
    if (lats.size() >= kPointBatch) flush(ctx);
  }

  void cleanup(mr::MapContext<OutKey, OutValue>& ctx) { flush(ctx); }

 private:
  void flush(mr::MapContext<OutKey, OutValue>& ctx) {
    if (lats.empty()) return;
    idx.resize(lats.size());
    Stopwatch sw;
    kernel->nearest(lats.data(), lons.data(), lats.size(), idx.data());
    ctx.add_compute_seconds(sw.seconds());
    for (std::size_t i = 0; i < lats.size(); ++i)
      ctx.emit(static_cast<std::int32_t>(idx[i]), {lats[i], lons[i], 1});
    lats.clear();
    lons.clear();
  }
};

/// Binary-record twin of KMeansMapper (columnar splits hand the mapper
/// 32-byte binary traces), plus the parse-free block path: when the engine's
/// batch fast path is engaged, whole decoded blocks arrive as
/// struct-of-arrays column spans and never round-trip through record bytes.
struct BinaryKMeansMapper {
  using OutKey = std::int32_t;
  using OutValue = PointSum;

  std::string clusters_file;
  geo::DistanceKind kind{};
  std::optional<geo::CentroidKernel> kernel;
  std::vector<double> lats;
  std::vector<double> lons;
  std::vector<std::uint32_t> idx;

  void setup(mr::TaskContext& ctx) {
    kernel.emplace(
        make_assignment_kernel(load_centroids_cache(ctx, clusters_file), kind));
  }

  /// Record-at-a-time path: kept for the chaos modes (skip mode, fault
  /// plans) that need per-record granularity.
  void map(std::int64_t, std::string_view record,
           mr::MapContext<OutKey, OutValue>& ctx) {
    geo::MobilityTrace t;
    if (!geo::trace_from_binary(record, t)) {
      ctx.increment("kmeans.malformed_records");
      return;
    }
    assign_and_emit(&t.latitude, &t.longitude, 1, ctx);
  }

  /// Block-batched path. The coordinate filter mirrors trace_from_binary()
  /// exactly (the 32-byte length check always holds for decoded blocks), and
  /// valid points keep their record order, so the shuffle stream is
  /// byte-identical to the record path.
  void map_batch(std::int64_t, const storage::TraceColumns& cols,
                 mr::MapContext<OutKey, OutValue>& ctx) {
    lats.clear();
    lons.clear();
    std::int64_t bad = 0;
    for (std::size_t i = 0; i < cols.size(); ++i) {
      const double lat = cols.lats[i];
      const double lon = cols.lons[i];
      if (!(lat >= -90.0 && lat <= 90.0) || !(lon >= -180.0 && lon <= 180.0)) {
        ++bad;
        continue;
      }
      lats.push_back(lat);
      lons.push_back(lon);
    }
    if (bad > 0) ctx.increment("kmeans.malformed_records", bad);
    assign_and_emit(lats.data(), lons.data(), lats.size(), ctx);
  }

 private:
  void assign_and_emit(const double* plat, const double* plon, std::size_t n,
                       mr::MapContext<OutKey, OutValue>& ctx) {
    if (n == 0) return;
    idx.resize(n);
    Stopwatch sw;
    kernel->nearest(plat, plon, n, idx.data());
    ctx.add_compute_seconds(sw.seconds());
    for (std::size_t i = 0; i < n; ++i)
      ctx.emit(static_cast<std::int32_t>(idx[i]), {plat[i], plon[i], 1});
  }
};

struct KMeansCombiner {
  void combine(const std::int32_t& key, std::span<const PointSum> values,
               mr::MapContext<std::int32_t, PointSum>& ctx) {
    PointSum total;
    for (const auto& v : values) {
      total.lat_sum += v.lat_sum;
      total.lon_sum += v.lon_sum;
      total.count += v.count;
    }
    ctx.emit(key, total);
  }
};

struct KMeansReducer {
  std::string clusters_file;
  std::int32_t k = 0;
  std::vector<Centroid> previous;
  std::vector<bool> seen;

  void setup(mr::TaskContext& ctx) {
    std::string err;
    auto parsed =
        try_centroids_from_lines(ctx.cache_file(clusters_file), &err);
    if (!parsed)
      throw mr::TaskError("bad centroids cache file '" + clusters_file +
                          "': " + err);
    if (static_cast<std::int32_t>(parsed->size()) != k)
      throw mr::TaskError("centroids cache file '" + clusters_file +
                          "' holds " + std::to_string(parsed->size()) +
                          " centroids, expected " + std::to_string(k));
    previous = std::move(*parsed);
    seen.assign(static_cast<std::size_t>(k), false);
  }

  void reduce(const std::int32_t& key, std::span<const PointSum> values,
              mr::ReduceContext& ctx) {
    PointSum total;
    for (const auto& v : values) {
      total.lat_sum += v.lat_sum;
      total.lon_sum += v.lon_sum;
      total.count += v.count;
    }
    if (key >= 0 && key < k) seen[static_cast<std::size_t>(key)] = true;
    if (total.count <= 0) {  // defensive: treat like an unseen cluster
      carry_forward(key, ctx);
      return;
    }
    char buf[96];
    std::snprintf(buf, sizeof(buf), "%d,%.10f,%.10f,%lld", key,
                  total.lat_sum / static_cast<double>(total.count),
                  total.lon_sum / static_cast<double>(total.count),
                  static_cast<long long>(total.count));
    ctx.write(buf);
  }

  void cleanup(mr::ReduceContext& ctx) {
    // A centroid that received no point this iteration has no reduce group
    // at all; without this pass its line would vanish from the clusters
    // file and the next iteration would silently run with k-1 centroids.
    // Carry the previous centroid forward (count 0) for every unseen index
    // this reduce partition owns — the same rule the sequential
    // implementation applies to empty clusters.
    const int num_reducers = ctx.job().num_reducers;
    for (std::int32_t i = 0; i < k; ++i) {
      if (seen[static_cast<std::size_t>(i)]) continue;
      if (mr::detail::partition_of(i, num_reducers) !=
          static_cast<std::uint64_t>(ctx.task_index()))
        continue;
      carry_forward(i, ctx);
    }
  }

 private:
  void carry_forward(std::int32_t idx, mr::ReduceContext& ctx) {
    if (idx < 0 || idx >= static_cast<std::int32_t>(previous.size())) return;
    ctx.increment("kmeans.empty_clusters");
    char buf[96];
    std::snprintf(buf, sizeof(buf), "%d,%.10f,%.10f,0", idx,
                  previous[static_cast<std::size_t>(idx)].latitude,
                  previous[static_cast<std::size_t>(idx)].longitude);
    ctx.write(buf);
  }
};

double centroid_move_m(const Centroid& a, const Centroid& b) {
  return geo::haversine_meters(a.latitude, a.longitude, b.latitude,
                               b.longitude);
}

/// Streaming reservoir sample of k (lat, lon) points in feed order —
/// deterministic, identical to the order of dataset lines in the DFS. Shared
/// by the in-memory init and the columnar block-streaming init, so both pick
/// the same centroids for the same trace stream.
class CentroidReservoir {
 public:
  CentroidReservoir(int k, std::uint64_t seed)
      : k_(static_cast<std::size_t>(k)), rng_(seed ^ 0xC3A5'7E1Dull) {
    reservoir_.reserve(k_);
  }

  void feed(double lat, double lon) {
    ++seen_;
    if (reservoir_.size() < k_) {
      reservoir_.push_back({lat, lon});
    } else {
      const std::uint64_t j = rng_.uniform_u64(seen_);
      if (j < static_cast<std::uint64_t>(k_)) reservoir_[j] = {lat, lon};
    }
  }

  std::uint64_t seen() const { return seen_; }
  std::vector<Centroid> take() && { return std::move(reservoir_); }

 private:
  std::size_t k_;
  Rng rng_;
  std::uint64_t seen_ = 0;
  std::vector<Centroid> reservoir_;
};

/// Parse a reducer output line "index,lat,lon,count".
bool parse_cluster_line(std::string_view line, std::int32_t& idx, Centroid& c,
                        std::uint64_t& count) {
  const char* p = line.data();
  const char* end = line.data() + line.size();
  auto r1 = std::from_chars(p, end, idx);
  if (r1.ec != std::errc() || r1.ptr == end || *r1.ptr != ',') return false;
  auto r2 = std::from_chars(r1.ptr + 1, end, c.latitude);
  if (r2.ec != std::errc() || r2.ptr == end || *r2.ptr != ',') return false;
  auto r3 = std::from_chars(r2.ptr + 1, end, c.longitude);
  if (r3.ec != std::errc() || r3.ptr == end || *r3.ptr != ',') return false;
  auto r4 = std::from_chars(r3.ptr + 1, end, count);
  return r4.ec == std::errc() && r4.ptr == end;
}

}  // namespace

std::vector<Centroid> initial_centroids(const geo::GeolocatedDataset& dataset,
                                        int k, std::uint64_t seed) {
  GEPETO_CHECK(k > 0);
  GEPETO_CHECK_MSG(dataset.num_traces() >= static_cast<std::size_t>(k),
                   "fewer traces than clusters");
  CentroidReservoir res(k, seed);
  for (const auto& [uid, trail] : dataset)
    for (const auto& t : trail) res.feed(t.latitude, t.longitude);
  return std::move(res).take();
}

std::vector<Centroid> kmeanspp_centroids(const geo::GeolocatedDataset& dataset,
                                         int k, std::uint64_t seed) {
  GEPETO_CHECK(k > 0);
  const auto traces = dataset.all_traces();
  GEPETO_CHECK_MSG(traces.size() >= static_cast<std::size_t>(k),
                   "fewer traces than clusters");
  Rng rng(seed ^ 0x5EED'11EEull);
  std::vector<Centroid> centers;
  centers.push_back({traces[rng.uniform_u64(traces.size())].latitude,
                     traces[rng.uniform_u64(traces.size())].longitude});
  std::vector<double> d2(traces.size(),
                         std::numeric_limits<double>::max());
  while (centers.size() < static_cast<std::size_t>(k)) {
    double total = 0.0;
    for (std::size_t i = 0; i < traces.size(); ++i) {
      const double d = geo::squared_euclidean_deg(
          traces[i].latitude, traces[i].longitude, centers.back().latitude,
          centers.back().longitude);
      d2[i] = std::min(d2[i], d);
      total += d2[i];
    }
    if (total <= 0.0) {
      // All remaining points coincide with centers: fill uniformly.
      centers.push_back({traces[rng.uniform_u64(traces.size())].latitude,
                         traces[rng.uniform_u64(traces.size())].longitude});
      continue;
    }
    double x = rng.uniform() * total;
    std::size_t pick = traces.size() - 1;
    for (std::size_t i = 0; i < traces.size(); ++i) {
      x -= d2[i];
      if (x < 0.0) {
        pick = i;
        break;
      }
    }
    centers.push_back({traces[pick].latitude, traces[pick].longitude});
  }
  return centers;
}

std::size_t nearest_centroid(const std::vector<Centroid>& centroids,
                             geo::DistanceKind kind, double lat, double lon) {
  GEPETO_DCHECK(!centroids.empty());
  // Tie-break contract: the strict < keeps the FIRST (lowest-index) centroid
  // among exact-equal distances. geo::CentroidKernel::nearest reproduces this
  // on every backend (tests/test_kernels.cc asserts both); changing either
  // silently reshuffles cluster assignments on symmetric inputs.
  std::size_t best = 0;
  double best_d = std::numeric_limits<double>::max();
  for (std::size_t i = 0; i < centroids.size(); ++i) {
    const double d = geo::distance(kind, lat, lon, centroids[i].latitude,
                                   centroids[i].longitude);
    if (d < best_d) {
      best_d = d;
      best = i;
    }
  }
  return best;
}

std::string centroids_to_lines(const std::vector<Centroid>& centroids) {
  std::string out;
  out.reserve(centroids.size() * 48);
  char buf[96];
  for (std::size_t i = 0; i < centroids.size(); ++i) {
    std::snprintf(buf, sizeof(buf), "%zu,%.10f,%.10f\n", i,
                  centroids[i].latitude, centroids[i].longitude);
    out += buf;
  }
  return out;
}

std::optional<std::vector<Centroid>> try_centroids_from_lines(
    std::string_view lines, std::string* error) {
  const auto fail = [&](const std::string& what) {
    if (error != nullptr) *error = what;
    return std::nullopt;
  };
  std::vector<Centroid> out;
  std::vector<bool> filled;
  std::size_t start = 0;
  std::size_t line_no = 0;
  while (start < lines.size()) {
    std::size_t end = lines.find('\n', start);
    // Our writer terminates every line: a missing final newline means the
    // write was cut short, possibly mid-number — where the digits that made
    // it out would still parse, to a wrong value.
    if (end == std::string_view::npos)
      return fail("truncated centroids file (no trailing newline)");
    const std::string_view line = lines.substr(start, end - start);
    ++line_no;
    if (!line.empty()) {
      std::size_t idx = 0;
      Centroid c;
      const char* p = line.data();
      const char* e = line.data() + line.size();
      auto r1 = std::from_chars(p, e, idx);
      if (r1.ec != std::errc() || r1.ptr == e || *r1.ptr != ',')
        return fail("bad centroid line " + std::to_string(line_no) + ": '" +
                    std::string(line) + "'");
      auto r2 = std::from_chars(r1.ptr + 1, e, c.latitude);
      if (r2.ec != std::errc() || r2.ptr == e || *r2.ptr != ',')
        return fail("bad centroid line " + std::to_string(line_no) + ": '" +
                    std::string(line) + "'");
      auto r3 = std::from_chars(r2.ptr + 1, e, c.longitude);
      if (r3.ec != std::errc() || r3.ptr != e)
        return fail("bad centroid line " + std::to_string(line_no) + ": '" +
                    std::string(line) + "'");
      if (out.size() <= idx) {
        out.resize(idx + 1);
        filled.resize(idx + 1, false);
      }
      if (filled[idx])
        return fail("duplicate centroid index " + std::to_string(idx));
      out[idx] = c;
      filled[idx] = true;
    }
    start = end + 1;
  }
  for (std::size_t i = 0; i < filled.size(); ++i)
    if (!filled[i]) return fail("missing centroid index " + std::to_string(i));
  return out;
}

std::vector<Centroid> centroids_from_lines(std::string_view lines) {
  std::string err;
  auto parsed = try_centroids_from_lines(lines, &err);
  GEPETO_CHECK_MSG(parsed.has_value(), "bad centroids file: " << err);
  return std::move(*parsed);
}

KMeansResult kmeans_sequential(const geo::GeolocatedDataset& dataset,
                               const KMeansConfig& config) {
  GEPETO_CHECK(config.k > 0 && config.max_iterations > 0);
  KMeansResult result;
  result.centroids =
      config.kmeanspp_init
          ? kmeanspp_centroids(dataset, config.k, config.seed)
          : initial_centroids(dataset, config.k, config.seed);

  const auto traces = dataset.all_traces();
  // Struct-of-arrays snapshot of the points, built once: every iteration's
  // assignment pass runs the batched kernel over it instead of per-point
  // geo::distance() dispatch. Accumulation stays in trace order, so the
  // floating-point sums match the unbatched loop exactly.
  std::vector<double> plats(traces.size());
  std::vector<double> plons(traces.size());
  for (std::size_t i = 0; i < traces.size(); ++i) {
    plats[i] = traces[i].latitude;
    plons[i] = traces[i].longitude;
  }
  std::vector<std::uint32_t> assign(traces.size());
  std::vector<double> lat_sum(static_cast<std::size_t>(config.k));
  std::vector<double> lon_sum(static_cast<std::size_t>(config.k));
  std::vector<std::uint64_t> counts(static_cast<std::size_t>(config.k));

  for (int iter = 0; iter < config.max_iterations; ++iter) {
    std::fill(lat_sum.begin(), lat_sum.end(), 0.0);
    std::fill(lon_sum.begin(), lon_sum.end(), 0.0);
    std::fill(counts.begin(), counts.end(), 0);
    const auto kernel =
        make_assignment_kernel(result.centroids, config.distance);
    kernel.nearest(plats.data(), plons.data(), traces.size(), assign.data());
    for (std::size_t i = 0; i < traces.size(); ++i) {
      const auto c = assign[i];
      lat_sum[c] += plats[i];
      lon_sum[c] += plons[i];
      ++counts[c];
    }
    double max_move = 0.0;
    for (std::size_t c = 0; c < result.centroids.size(); ++c) {
      if (counts[c] == 0) continue;  // empty cluster keeps its centroid
      const Centroid next{lat_sum[c] / static_cast<double>(counts[c]),
                          lon_sum[c] / static_cast<double>(counts[c])};
      max_move = std::max(max_move, centroid_move_m(result.centroids[c], next));
      result.centroids[c] = next;
    }
    ++result.iterations;
    if (max_move < config.convergence_delta_m) {
      result.converged = true;
      break;
    }
  }

  // Final assignment for sizes and SSE (batched, accumulated in trace order
  // like the loop above).
  result.cluster_sizes.assign(static_cast<std::size_t>(config.k), 0);
  const auto kernel = make_assignment_kernel(result.centroids, config.distance);
  kernel.nearest(plats.data(), plons.data(), traces.size(), assign.data());
  for (std::size_t i = 0; i < traces.size(); ++i) {
    const auto c = assign[i];
    ++result.cluster_sizes[c];
    result.sse += geo::squared_euclidean_deg(plats[i], plons[i],
                                             result.centroids[c].latitude,
                                             result.centroids[c].longitude);
  }
  return result;
}

namespace {

std::string iter_checkpoint(const std::string& clusters_path, int iter) {
  char buf[24];
  std::snprintf(buf, sizeof(buf), "/iter-%03d", iter);
  return clusters_path + buf;
}

std::string iter_output(const std::string& clusters_path, int iter) {
  char buf[24];
  std::snprintf(buf, sizeof(buf), "/out-%03d", iter);
  return clusters_path + buf;
}

/// Driver state threaded through the k-means flow nodes. `next_iter` is the
/// absolute iteration index (resume starts it past 0).
struct KMeansFlowState {
  KMeansResult result;
  int next_iter = 0;
  bool converged = false;
  bool first_job = true;
};

}  // namespace

KMeansResult kmeans_mapreduce(mr::Dfs& dfs, const mr::ClusterConfig& cluster,
                              const std::string& input,
                              const std::string& clusters_path,
                              const KMeansConfig& config) {
  GEPETO_CHECK(config.k > 0 && config.max_iterations > 0);

  auto st = std::make_shared<KMeansFlowState>();
  flow::Flow f("kmeans");

  f.add_native("kmeans-init", [st, &config, input,
                               clusters_path](flow::FlowEngine& e) {
        mr::Dfs& dfs = e.dfs();
        if (config.resume) {
          // Resume from the latest *valid* persisted centroid checkpoint:
          // iter-NNN holds the centroids entering iteration NNN, so a job
          // that died during iteration NNN re-runs exactly that iteration.
          // A driver that crashed mid-write leaves its newest checkpoint
          // truncated — fall back to the previous one (re-running an extra
          // iteration is correct, just slower). Only when *no* checkpoint
          // parses is the resume unrecoverable: surface that as a JobError
          // rather than silently re-initializing and discarding the run.
          const auto checkpoints = dfs.list(clusters_path + "/iter-");
          std::string corrupt_detail;
          for (auto it = checkpoints.rbegin(); it != checkpoints.rend();
               ++it) {  // zero-padded names: reverse-lexicographic = newest
            const std::string& path = *it;
            const std::size_t dash = path.rfind('-');
            GEPETO_CHECK(dash != std::string::npos);
            int n = -1;
            const auto r = std::from_chars(path.data() + dash + 1,
                                           path.data() + path.size(), n);
            GEPETO_CHECK_MSG(r.ec == std::errc() && n >= 0,
                             "unparsable checkpoint name: " << path);
            std::string err;
            auto parsed = try_centroids_from_lines(dfs.read(path), &err);
            if (parsed &&
                static_cast<int>(parsed->size()) != config.k)
              err = "holds " + std::to_string(parsed->size()) +
                    " centroids, config.k = " + std::to_string(config.k);
            if (!parsed ||
                static_cast<int>(parsed->size()) != config.k) {
              if (!corrupt_detail.empty()) corrupt_detail += "; ";
              corrupt_detail += path + ": " + err;
              continue;
            }
            st->next_iter = n;
            st->result.centroids = std::move(*parsed);
            break;
          }
          if (st->result.centroids.empty() && !corrupt_detail.empty())
            throw mr::JobError(mr::JobError::Kind::kCorruptCheckpoint,
                               "kmeans", /*phase=*/0, /*task_index=*/-1,
                               /*attempts=*/0, corrupt_detail);
        }
        if (st->result.centroids.empty()) {
          // Initialization phase: "randomly picks k mobility traces as
          // initial centroids ... performed by a single node" — the driver
          // reads the input and reservoir-samples, then writes the
          // iteration-0 clusters file. Columnar inputs stream the sample
          // one decoded block at a time: at millions-of-traces scale the
          // driver never holds the dataset (k-means++ is the exception, as
          // its seeding is inherently multi-pass over all traces).
          if (config.columnar_input && !config.kmeanspp_init) {
            CentroidReservoir res(config.k, config.seed);
            storage::for_each_dfs_columnar_trace(
                dfs, input, [&](const geo::MobilityTrace& t) {
                  res.feed(t.latitude, t.longitude);
                });
            GEPETO_CHECK_MSG(
                res.seen() >= static_cast<std::uint64_t>(config.k),
                "fewer traces than clusters");
            st->result.centroids = std::move(res).take();
          } else {
            const auto dataset =
                config.columnar_input
                    ? storage::dataset_from_dfs_columnar(dfs, input)
                    : geo::dataset_from_dfs(dfs, input);
            st->result.centroids =
                config.kmeanspp_init
                    ? kmeanspp_centroids(dataset, config.k, config.seed)
                    : initial_centroids(dataset, config.k, config.seed);
          }
          dfs.put(iter_checkpoint(clusters_path, 0),
                  centroids_to_lines(st->result.centroids));
        }
      })
      .reads(input)
      .keep(clusters_path);

  f.add_iterate_until(
       "kmeans-iterate",
       [st, &config](flow::FlowEngine&, int) {
         return st->converged || st->next_iter >= config.max_iterations;
       },
       config.max_iterations,
       [st, &config, input, clusters_path](flow::FlowEngine& e,
                                           int) -> mr::JobResult {
         mr::Dfs& dfs = e.dfs();
         const int iter = st->next_iter;
         const std::string clusters_file = iter_checkpoint(clusters_path, iter);

         mr::JobConfig job;
         job.name = "kmeans-iter";
         job.input = input;
         job.output = iter_output(clusters_path, iter);
         job.num_reducers =
             std::min(config.k, e.cluster().total_reduce_slots());
         job.use_combiner = config.use_combiner;
         job.cache_files = {clusters_file};
         job.failures = config.failures;
         job.sort_memory_budget_bytes = config.sort_memory_budget_bytes;
         if (config.fault_iteration < 0 || config.fault_iteration == iter)
           job.fault_plan = config.fault_plan;

         const geo::DistanceKind kind = config.distance;
         const std::int32_t k = config.k;
         const auto make_reducer = [clusters_file, k] {
           return KMeansReducer{clusters_file, k, {}, {}};
         };
         const auto make_combiner = [] { return KMeansCombiner{}; };
         const auto jr =
             config.columnar_input
                 ? storage::run_columnar_mapreduce_job(
                       dfs, e.cluster(), job,
                       [clusters_file, kind] {
                         BinaryKMeansMapper m;
                         m.clusters_file = clusters_file;
                         m.kind = kind;
                         return m;
                       },
                       make_reducer, make_combiner)
                 : mr::run_mapreduce_job(
                       dfs, e.cluster(), job,
                       [clusters_file, kind] {
                         KMeansMapper m;
                         m.clusters_file = clusters_file;
                         m.kind = kind;
                         return m;
                       },
                       make_reducer, make_combiner);

         // Collect the new centroids from the reducer output.
         std::vector<Centroid> next = st->result.centroids;
         std::vector<std::uint64_t> sizes(static_cast<std::size_t>(config.k),
                                          0);
         for (const auto& part : dfs.list(job.output + "/")) {
           const std::string_view data = dfs.read(part);
           std::size_t start = 0;
           while (start < data.size()) {
             std::size_t end = data.find('\n', start);
             if (end == std::string_view::npos) end = data.size();
             const std::string_view line = data.substr(start, end - start);
             if (!line.empty()) {
               std::int32_t idx = 0;
               Centroid c;
               std::uint64_t count = 0;
               GEPETO_CHECK_MSG(parse_cluster_line(line, idx, c, count),
                                "bad cluster line: " << line);
               GEPETO_CHECK(idx >= 0 && idx < config.k);
               next[static_cast<std::size_t>(idx)] = c;
               sizes[static_cast<std::size_t>(idx)] = count;
             }
             start = end + 1;
           }
         }

         double max_move = 0.0;
         for (int c = 0; c < config.k; ++c)
           max_move = std::max(
               max_move,
               centroid_move_m(
                   st->result.centroids[static_cast<std::size_t>(c)],
                   next[static_cast<std::size_t>(c)]));
         st->result.centroids = std::move(next);
         st->result.cluster_sizes = std::move(sizes);
         ++st->result.iterations;

         IterationStats is;
         is.real_seconds = jr.real_seconds;
         is.sim_seconds = jr.sim_seconds;
         is.sim_map_seconds = jr.sim_map_seconds;
         is.sim_reduce_seconds = jr.sim_reduce_seconds;
         is.shuffle_bytes = jr.shuffle_bytes;
         is.max_centroid_move_m = max_move;
         st->result.per_iteration.push_back(is);
         if (st->first_job) {
           st->result.totals = jr;
           st->first_job = false;
         } else {
           st->result.totals.absorb(jr);
         }

         dfs.put(iter_checkpoint(clusters_path, iter + 1),
                 centroids_to_lines(st->result.centroids));
         st->next_iter = iter + 1;
         if (max_move < config.convergence_delta_m) {
           st->converged = true;
           st->result.converged = true;
         }
         return jr;
       })
      .reads(clusters_path)
      .scratch(clusters_path + "/out-");

  // SSE from a final read of the input against the final centroids. Points
  // are buffered and assigned through the batch kernel; the SSE sum still
  // accumulates in stream order, matching the per-point loop bit for bit.
  f.add_native("kmeans-sse", [st, &config, input](flow::FlowEngine& e) {
        const auto kernel =
            make_assignment_kernel(st->result.centroids, config.distance);
        std::vector<double> blats;
        std::vector<double> blons;
        std::vector<std::uint32_t> bidx;
        const auto flush = [&] {
          if (blats.empty()) return;
          bidx.resize(blats.size());
          kernel.nearest(blats.data(), blons.data(), blats.size(),
                         bidx.data());
          for (std::size_t i = 0; i < blats.size(); ++i) {
            const auto& c = st->result.centroids[bidx[i]];
            st->result.sse += geo::squared_euclidean_deg(
                blats[i], blons[i], c.latitude, c.longitude);
          }
          blats.clear();
          blons.clear();
        };
        const auto accumulate = [&](const geo::MobilityTrace& t) {
          blats.push_back(t.latitude);
          blons.push_back(t.longitude);
          if (blats.size() >= 4096) flush();
        };
        if (config.columnar_input) {
          // One decoded block resident at a time, like the init pass.
          storage::for_each_dfs_columnar_trace(e.dfs(), input, accumulate);
          flush();
          return;
        }
        const auto dataset = geo::dataset_from_dfs(e.dfs(), input);
        for (const auto& [uid, trail] : dataset)
          for (const auto& t : trail) accumulate(t);
        flush();
      })
      .reads(input)
      .after("kmeans-iterate");

  flow::FlowOptions options;
  options.keep_intermediates = config.keep_intermediates;
  f.run(dfs, cluster, options);
  return std::move(st->result);
}

}  // namespace gepeto::core
