// Visualization exports — GEPETO is "a flexible software that can be used
// to *visualize*, sanitize, perform inference attacks and measure the
// utility of a particular geolocated dataset". This module renders every
// analysis artifact as GeoJSON (drop it on geojson.io / QGIS / Leaflet) and
// as a grid-density CSV for heatmap plotting.
#pragma once

#include <string>
#include <vector>

#include "geo/generator.h"
#include "geo/trace.h"
#include "gepeto/djcluster.h"
#include "gepeto/poi.h"
#include "gepeto/sanitize.h"
#include "gepeto/social.h"

namespace gepeto::core {

struct GeoJsonOptions {
  /// Split a trail into LineString segments at time gaps above this.
  int trajectory_gap_s = 600;
  /// Keep at most this many coordinates per LineString (uniform thinning;
  /// 0 = no limit). Viewers choke on millions of points.
  std::size_t max_points_per_segment = 500;
};

/// Trails as one MultiLineString feature per user.
std::string dataset_to_geojson(const geo::GeolocatedDataset& dataset,
                               const GeoJsonOptions& options = {});

/// DJ-Cluster output as one Point feature per cluster (property: size).
std::string clusters_to_geojson(const DjClusterResult& clusters);

/// Extracted POIs as Point features with visit statistics; the labeled home
/// and work POIs carry a "role" property.
std::string pois_to_geojson(const ExtractedPois& pois);

/// Ground-truth POIs of user profiles (kind as property).
std::string ground_truth_to_geojson(const std::vector<geo::UserProfile>& profiles);

/// Mix zones as circle-approximating Polygon features.
std::string zones_to_geojson(const std::vector<MixZone>& zones);

/// Social links as LineString features between the two users' top POIs.
std::string social_links_to_geojson(
    const std::vector<SocialEdge>& edges,
    const std::vector<geo::UserProfile>& profiles);

/// Grid-density heatmap: "lat,lon,count" per non-empty cell of side
/// `cell_m`, header included. Feed to any plotting tool.
std::string heatmap_csv(const geo::GeolocatedDataset& dataset, double cell_m);

}  // namespace gepeto::core
