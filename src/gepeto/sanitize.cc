#include "gepeto/sanitize.h"

#include <algorithm>
#include <charconv>
#include <cmath>
#include <limits>
#include <map>
#include <numbers>
#include <set>
#include <tuple>
#include <unordered_map>

#include "common/check.h"
#include "workflow/flow.h"
#include "common/random.h"
#include "geo/distance.h"
#include "geo/geolife.h"
#include "geo/kernels.h"
#include "mapreduce/engine.h"
#include "mapreduce/lines.h"

namespace gepeto::core {

namespace {

constexpr double kMetersPerDegLat = 111320.0;

double deg_lat(double m) { return m / kMetersPerDegLat; }
double deg_lon(double m, double at_lat) {
  return m / (kMetersPerDegLat *
              std::cos(at_lat * std::numbers::pi / 180.0));
}

/// Longitude-step latitude for a cell row: the row's center latitude,
/// clamped away from the poles where cos() degenerates. Pure function of
/// the row, never of an individual trace.
double row_center_lat(std::int64_t cy, double dlat) {
  const double center = (static_cast<double>(cy) + 0.5) * dlat;
  return std::clamp(center, -89.9, 89.9);
}

/// Per-trace deterministic Gaussian noise shared by the sequential and MR
/// paths.
geo::MobilityTrace masked_trace(const geo::MobilityTrace& t, double sigma_m,
                                std::uint64_t seed) {
  Rng rng(seed ^ (static_cast<std::uint64_t>(t.user_id) * 0x9E3779B97F4A7C15ULL) ^
          (static_cast<std::uint64_t>(t.timestamp) * 0xA24BAED4963EE407ULL));
  geo::MobilityTrace out = t;
  out.latitude += deg_lat(rng.gaussian(0.0, sigma_m));
  out.longitude += deg_lon(rng.gaussian(0.0, sigma_m), t.latitude);
  return out;
}

/// Snap a trace to the center of its cell. Every trace in a cell gets the
/// bit-identical released coordinate (the k-anonymity of cloaking rests on
/// this: a center derived from the trace's own latitude would fingerprint
/// the original point).
geo::MobilityTrace rounded_trace(const geo::MobilityTrace& t, double cell_m) {
  const GridCell cell = grid_cell_of(t.latitude, t.longitude, cell_m);
  geo::MobilityTrace out = t;
  grid_cell_center(cell, cell_m, out.latitude, out.longitude);
  return out;
}

struct GaussianMaskMapper {
  double sigma_m;
  std::uint64_t seed;

  void map(std::int64_t, std::string_view line, mr::MapOnlyContext& ctx) {
    geo::MobilityTrace t;
    if (!geo::parse_dataset_line(line, t)) {
      ctx.increment("sanitize.malformed_lines");
      return;
    }
    ctx.write(geo::dataset_line(masked_trace(t, sigma_m, seed)));
  }
};

struct RoundingMapper {
  double cell_m;

  void map(std::int64_t, std::string_view line, mr::MapOnlyContext& ctx) {
    geo::MobilityTrace t;
    if (!geo::parse_dataset_line(line, t)) {
      ctx.increment("sanitize.malformed_lines");
      return;
    }
    ctx.write(geo::dataset_line(rounded_trace(t, cell_m)));
  }
};

/// Census key: one grid cell at one doubling level.
struct CellKey {
  std::int32_t level = 0;
  std::int64_t cy = 0;
  std::int64_t cx = 0;

  friend auto operator<=>(const CellKey&, const CellKey&) = default;
  std::uint64_t partition_hash() const {
    std::uint64_t h = static_cast<std::uint64_t>(level) * 0x9E3779B97F4A7C15ULL;
    h ^= static_cast<std::uint64_t>(cy) * 0xA24BAED4963EE407ULL;
    h ^= static_cast<std::uint64_t>(cx) * 0x9FB21C651E98DF25ULL;
    return h;
  }
  std::uint64_t serialized_size() const { return 20; }
};

struct UserIdValue {
  std::int32_t user = 0;
  std::uint64_t serialized_size() const { return 4; }
};

struct CensusMapper {
  using OutKey = CellKey;
  using OutValue = UserIdValue;

  double base_cell_m;
  int max_doublings;

  void map(std::int64_t, std::string_view line,
           mr::MapContext<OutKey, OutValue>& ctx) {
    geo::MobilityTrace t;
    if (!geo::parse_dataset_line(line, t)) {
      ctx.increment("cloak.malformed_lines");
      return;
    }
    for (int l = 0; l <= max_doublings; ++l) {
      const GridCell c = grid_cell_of(t.latitude, t.longitude, base_cell_m, l);
      ctx.emit(CellKey{l, c.cy, c.cx}, UserIdValue{t.user_id});
    }
  }
};

/// Local dedup: one record per (cell, user) leaves each map task.
struct CensusCombiner {
  void combine(const CellKey& key, std::span<const UserIdValue> values,
               mr::MapContext<CellKey, UserIdValue>& ctx) {
    std::set<std::int32_t> users;
    for (const auto& v : values) users.insert(v.user);
    for (std::int32_t u : users) ctx.emit(key, UserIdValue{u});
  }
};

struct CensusReducer {
  void reduce(const CellKey& key, std::span<const UserIdValue> values,
              mr::ReduceContext& ctx) {
    std::set<std::int32_t> users;
    for (const auto& v : values) users.insert(v.user);
    char buf[96];
    std::snprintf(buf, sizeof(buf), "%d,%lld,%lld,%zu", key.level,
                  static_cast<long long>(key.cy),
                  static_cast<long long>(key.cx), users.size());
    ctx.write(buf);
  }
};

struct ApplyCloakingMapper {
  std::string census_file;
  int k;
  double base_cell_m;
  int max_doublings;

  /// (level, cy, cx) -> distinct user count, loaded from the census.
  std::map<std::tuple<int, std::int64_t, std::int64_t>, std::size_t> census;

  void setup(mr::TaskContext& ctx) {
    mr::for_each_line(ctx.cache_file(census_file), [&](std::string_view line) {
      int level = 0;
      std::int64_t cy = 0, cx = 0;
      std::size_t count = 0;
      const char* p = line.data();
      const char* e = line.data() + line.size();
      auto r1 = std::from_chars(p, e, level);
      GEPETO_CHECK(r1.ec == std::errc() && r1.ptr != e && *r1.ptr == ',');
      auto r2 = std::from_chars(r1.ptr + 1, e, cy);
      GEPETO_CHECK(r2.ec == std::errc() && r2.ptr != e && *r2.ptr == ',');
      auto r3 = std::from_chars(r2.ptr + 1, e, cx);
      GEPETO_CHECK(r3.ec == std::errc() && r3.ptr != e && *r3.ptr == ',');
      auto r4 = std::from_chars(r3.ptr + 1, e, count);
      GEPETO_CHECK(r4.ec == std::errc() && r4.ptr == e);
      census.emplace(std::make_tuple(level, cy, cx), count);
    });
  }

  void map(std::int64_t, std::string_view line, mr::MapOnlyContext& ctx) {
    geo::MobilityTrace t;
    if (!geo::parse_dataset_line(line, t)) {
      ctx.increment("cloak.malformed_lines");
      return;
    }
    for (int l = 0; l <= max_doublings; ++l) {
      const GridCell c = grid_cell_of(t.latitude, t.longitude, base_cell_m, l);
      const auto it = census.find(std::make_tuple(l, c.cy, c.cx));
      GEPETO_CHECK_MSG(it != census.end(), "census miss: stale cache?");
      if (static_cast<int>(it->second) >= k) {
        ctx.write(
            geo::dataset_line(rounded_trace(t, std::ldexp(base_cell_m, l))));
        return;
      }
    }
    ctx.increment("cloak.suppressed");
  }
};

// --- mix-zone MapReduce mappers ----------------------------------------------

/// Group-aware split protocol: all lines of one user stay in one map task
/// (dataset files are (user, time) ordered), so per-user crossing state
/// never straddles a split. Malformed lines never extend a group.
bool same_user_lines(std::string_view prev, std::string_view line) {
  geo::MobilityTrace a, b;
  if (!geo::parse_dataset_line(prev, a)) return false;
  if (!geo::parse_dataset_line(line, b)) return false;
  return a.user_id == b.user_id;
}

/// Job 1: per-user zone-crossing census ("uid,crossings" lines, including
/// zero-crossing users — every live id matters to the allocator).
struct MixCensusMapper {
  std::vector<MixZone> zones;
  ZoneIndex index{zones};

  bool have_user = false;
  std::int32_t uid = 0;
  bool inside = false;
  int crossings = 0;

  bool same_group(std::string_view prev, std::string_view line) const {
    return same_user_lines(prev, line);
  }

  void flush(mr::MapOnlyContext& ctx) {
    if (!have_user) return;
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%d,%d", uid, crossings);
    ctx.write(buf);
    have_user = false;
  }

  void map(std::int64_t, std::string_view line, mr::MapOnlyContext& ctx) {
    geo::MobilityTrace t;
    if (!geo::parse_dataset_line(line, t)) {
      ctx.increment("mixzone.malformed_lines");
      return;
    }
    if (!have_user || t.user_id != uid) {
      flush(ctx);
      have_user = true;
      uid = t.user_id;
      inside = false;
      crossings = 0;
    }
    if (index.contains(t)) {
      inside = true;
    } else if (inside) {
      ++crossings;
      inside = false;
    }
  }

  void cleanup(mr::MapOnlyContext& ctx) { flush(ctx); }
};

/// Job 2: suppress in-zone traces, rewrite pseudonyms from the cached
/// allocation table.
struct MixApplyMapper {
  std::string alloc_file;
  std::vector<MixZone> zones;
  ZoneIndex index{zones};

  /// (uid, crossing index) -> pseudonym, from the native allocation node.
  std::map<std::pair<std::int32_t, std::int32_t>, std::int32_t> alloc{};

  bool have_user = false;
  std::int32_t uid = 0;
  std::int32_t current_id = 0;
  std::int32_t crossing = 0;
  bool inside = false;

  void setup(mr::TaskContext& ctx) {
    mr::for_each_line(ctx.cache_file(alloc_file), [&](std::string_view line) {
      std::int32_t user = 0, index_ = 0, pseudonym = 0;
      const char* p = line.data();
      const char* e = line.data() + line.size();
      auto r1 = std::from_chars(p, e, user);
      GEPETO_CHECK(r1.ec == std::errc() && r1.ptr != e && *r1.ptr == ',');
      auto r2 = std::from_chars(r1.ptr + 1, e, index_);
      GEPETO_CHECK(r2.ec == std::errc() && r2.ptr != e && *r2.ptr == ',');
      auto r3 = std::from_chars(r2.ptr + 1, e, pseudonym);
      GEPETO_CHECK(r3.ec == std::errc() && r3.ptr == e);
      alloc.emplace(std::make_pair(user, index_), pseudonym);
    });
  }

  bool same_group(std::string_view prev, std::string_view line) const {
    return same_user_lines(prev, line);
  }

  void map(std::int64_t, std::string_view line, mr::MapOnlyContext& ctx) {
    geo::MobilityTrace t;
    if (!geo::parse_dataset_line(line, t)) {
      ctx.increment("mixzone.malformed_lines");
      return;
    }
    if (!have_user || t.user_id != uid) {
      have_user = true;
      uid = t.user_id;
      current_id = uid;
      crossing = 0;
      inside = false;
    }
    if (index.contains(t)) {
      inside = true;
      ctx.increment("mixzone.suppressed");
      return;
    }
    if (inside) {
      const auto it = alloc.find(std::make_pair(uid, crossing));
      GEPETO_CHECK_MSG(it != alloc.end(), "pseudonym miss: stale cache?");
      current_id = it->second;
      ++crossing;
      ctx.increment("mixzone.changes");
      inside = false;
    }
    geo::MobilityTrace out = t;
    out.user_id = current_id;
    ctx.write(geo::dataset_line(out));
  }
};

}  // namespace

GridCell grid_cell_of(double lat, double lon, double base_cell_m, int level) {
  const double cell_m = std::ldexp(base_cell_m, level);
  const double dlat = deg_lat(cell_m);
  const auto cy = static_cast<std::int64_t>(std::floor(lat / dlat));
  const double dlon = deg_lon(cell_m, row_center_lat(cy, dlat));
  const auto cx = static_cast<std::int64_t>(std::floor(lon / dlon));
  return GridCell{level, cy, cx};
}

void grid_cell_center(const GridCell& cell, double base_cell_m,
                      double& latitude, double& longitude) {
  const double cell_m = std::ldexp(base_cell_m, cell.level);
  const double dlat = deg_lat(cell_m);
  latitude = (static_cast<double>(cell.cy) + 0.5) * dlat;
  const double dlon = deg_lon(cell_m, row_center_lat(cell.cy, dlat));
  longitude = (static_cast<double>(cell.cx) + 0.5) * dlon;
}

geo::GeolocatedDataset gaussian_mask(const geo::GeolocatedDataset& dataset,
                                     double sigma_m, std::uint64_t seed) {
  GEPETO_CHECK(sigma_m >= 0.0);
  geo::GeolocatedDataset out;
  for (const auto& [uid, trail] : dataset) {
    geo::Trail masked;
    masked.reserve(trail.size());
    for (const auto& t : trail) masked.push_back(masked_trace(t, sigma_m, seed));
    out.add_trail(uid, std::move(masked));
  }
  return out;
}

geo::GeolocatedDataset spatial_rounding(const geo::GeolocatedDataset& dataset,
                                        double cell_m) {
  GEPETO_CHECK(cell_m > 0.0);
  geo::GeolocatedDataset out;
  for (const auto& [uid, trail] : dataset) {
    geo::Trail rounded;
    rounded.reserve(trail.size());
    for (const auto& t : trail) rounded.push_back(rounded_trace(t, cell_m));
    out.add_trail(uid, std::move(rounded));
  }
  return out;
}

CloakingResult spatial_cloaking(const geo::GeolocatedDataset& dataset, int k,
                                double base_cell_m, int max_doublings) {
  GEPETO_CHECK(k >= 1 && base_cell_m > 0.0 && max_doublings >= 0);
  // Distinct-user sets per cell at each level (sets, not trace counts: one
  // chatty user must not satisfy k-anonymity by themselves).
  std::vector<std::map<std::pair<std::int64_t, std::int64_t>,
                       std::set<std::int32_t>>>
      levels(static_cast<std::size_t>(max_doublings) + 1);
  for (const auto& [uid, trail] : dataset) {
    for (const auto& t : trail) {
      for (int l = 0; l <= max_doublings; ++l) {
        const GridCell c = grid_cell_of(t.latitude, t.longitude, base_cell_m, l);
        levels[static_cast<std::size_t>(l)][{c.cy, c.cx}].insert(uid);
      }
    }
  }

  CloakingResult result;
  double cell_sum = 0.0;
  std::uint64_t kept = 0;
  for (const auto& [uid, trail] : dataset) {
    geo::Trail cloaked;
    for (const auto& t : trail) {
      bool placed = false;
      for (int l = 0; l <= max_doublings; ++l) {
        const GridCell c = grid_cell_of(t.latitude, t.longitude, base_cell_m, l);
        const auto& users =
            levels[static_cast<std::size_t>(l)].at({c.cy, c.cx});
        if (static_cast<int>(users.size()) >= k) {
          const double cell_m = std::ldexp(base_cell_m, l);
          cloaked.push_back(rounded_trace(t, cell_m));
          cell_sum += cell_m;
          ++kept;
          placed = true;
          break;
        }
      }
      if (!placed) ++result.suppressed;
    }
    // A fully-suppressed user is absent from the release: an empty trail
    // would reveal the user existed (and the MR path never writes one).
    if (!cloaked.empty()) result.data.add_trail(uid, std::move(cloaked));
  }
  result.avg_cell_m = kept > 0 ? cell_sum / static_cast<double>(kept) : 0.0;
  return result;
}

ZoneIndex::ZoneIndex(std::vector<MixZone> zones)
    : zones_(std::move(zones)),
      zlats_(zones_.size()),
      zlons_(zones_.size()),
      zdist_(zones_.size()) {
  for (std::size_t z = 0; z < zones_.size(); ++z) {
    zlats_[z] = zones_[z].latitude;
    zlons_[z] = zones_[z].longitude;
  }
}

bool ZoneIndex::contains(const geo::MobilityTrace& t) const {
  if (zones_.empty()) return false;
  geo::haversine_meters_batch(t.latitude, t.longitude, zlats_.data(),
                              zlons_.data(), zones_.size(), zdist_.data());
  for (std::size_t z = 0; z < zones_.size(); ++z) {
    if (zdist_[z] <= zones_[z].radius_m) return true;
  }
  return false;
}

std::vector<std::pair<std::int32_t, int>> count_zone_crossings(
    const geo::GeolocatedDataset& dataset, const std::vector<MixZone>& zones) {
  const ZoneIndex index(zones);
  std::vector<std::pair<std::int32_t, int>> out;
  out.reserve(dataset.num_users());
  for (const auto& [uid, trail] : dataset) {
    int crossings = 0;
    bool inside = false;
    for (const auto& t : trail) {
      if (index.contains(t)) {
        inside = true;
      } else if (inside) {
        ++crossings;
        inside = false;
      }
    }
    out.emplace_back(uid, crossings);
  }
  return out;
}

std::map<std::pair<std::int32_t, std::int32_t>, std::int32_t>
allocate_pseudonyms(
    const std::vector<std::pair<std::int32_t, int>>& crossings_per_user,
    std::uint64_t seed) {
  // Every original id is live for the whole release (a user keeps their id
  // until their first crossing, and zone-free users keep it throughout), so
  // the probe set starts as all of them.
  std::set<std::int32_t> used;
  for (const auto& [uid, n] : crossings_per_user) used.insert(uid);

  // Deterministic order: sorted by (uid, crossing), independent of how the
  // census was gathered.
  std::vector<std::pair<std::int32_t, int>> sorted = crossings_per_user;
  std::sort(sorted.begin(), sorted.end());

  std::map<std::pair<std::int32_t, std::int32_t>, std::int32_t> alloc;
  for (const auto& [uid, n] : sorted) {
    for (std::int32_t c = 0; c < n; ++c) {
      // Per-(user, crossing) hash stream; successive draws are the probe
      // sequence on collision. 31-bit mask keeps ids non-negative without
      // any risk of signed overflow (the old `max(uid) + 1` counter is UB
      // when a dataset contains INT32_MAX, and its sequential values leak
      // the allocation order).
      SplitMix64 sm(seed ^
                    (static_cast<std::uint64_t>(static_cast<std::uint32_t>(uid))
                     << 32) ^
                    static_cast<std::uint64_t>(static_cast<std::uint32_t>(c)));
      std::int32_t pseudonym;
      do {
        pseudonym = static_cast<std::int32_t>(sm.next() & 0x7FFFFFFFULL);
      } while (!used.insert(pseudonym).second);
      alloc.emplace(std::make_pair(uid, c), pseudonym);
    }
  }
  return alloc;
}

MixZoneResult apply_mix_zones(const geo::GeolocatedDataset& dataset,
                              const std::vector<MixZone>& zones,
                              std::uint64_t seed) {
  MixZoneResult result;
  const ZoneIndex index(zones);
  const auto alloc = allocate_pseudonyms(count_zone_crossings(dataset, zones),
                                         seed);

  for (const auto& [uid, trail] : dataset) {
    std::int32_t current_id = uid;
    std::int32_t crossing = 0;
    bool inside = false;
    geo::Trail out;
    result.pseudonym_owner.emplace_back(uid, uid);
    for (const auto& t : trail) {
      if (index.contains(t)) {
        inside = true;
        ++result.suppressed_traces;
        continue;
      }
      if (inside) {
        // Exiting a zone: continue under a fresh pseudonym.
        current_id = alloc.at(std::make_pair(uid, crossing));
        ++crossing;
        ++result.pseudonym_changes;
        result.pseudonym_owner.emplace_back(current_id, uid);
        inside = false;
      }
      geo::MobilityTrace copy = t;
      copy.user_id = current_id;
      out.push_back(copy);
    }
    // Split the trail by pseudonym into separate trails.
    for (const auto& t : out) result.data.add(t);
  }
  return result;
}

std::vector<MixZone> pick_mix_zones(const geo::GeolocatedDataset& dataset,
                                    int count, double radius_m) {
  GEPETO_CHECK(count >= 0 && radius_m > 0);
  // Busiest cells (side = 2 * radius) by distinct users.
  std::map<std::pair<std::int64_t, std::int64_t>, std::set<std::int32_t>>
      cells;
  for (const auto& [uid, trail] : dataset)
    for (const auto& t : trail) {
      const GridCell c = grid_cell_of(t.latitude, t.longitude, 2 * radius_m);
      cells[{c.cy, c.cx}].insert(uid);
    }

  std::vector<std::pair<std::size_t, std::pair<std::int64_t, std::int64_t>>>
      ranked;
  for (const auto& [cell, users] : cells) ranked.push_back({users.size(), cell});
  std::sort(ranked.begin(), ranked.end(), [](const auto& a, const auto& b) {
    if (a.first != b.first) return a.first > b.first;
    return a.second < b.second;  // deterministic tie-break
  });

  std::vector<MixZone> zones;
  for (int i = 0; i < count && i < static_cast<int>(ranked.size()); ++i) {
    const auto& cell = ranked[static_cast<std::size_t>(i)].second;
    MixZone z;
    grid_cell_center(GridCell{0, cell.first, cell.second}, 2 * radius_m,
                     z.latitude, z.longitude);
    z.radius_m = radius_m;
    zones.push_back(z);
  }
  return zones;
}

mr::JobResult run_gaussian_mask_job(mr::Dfs& dfs,
                                    const mr::ClusterConfig& cluster,
                                    const std::string& input,
                                    const std::string& output, double sigma_m,
                                    std::uint64_t seed) {
  GEPETO_CHECK(sigma_m >= 0.0);
  mr::JobConfig job;
  job.name = "gaussian-mask";
  job.input = input;
  job.output = output;
  return mr::run_map_only_job(dfs, cluster, job, [sigma_m, seed] {
    return GaussianMaskMapper{sigma_m, seed};
  });
}

mr::JobResult run_rounding_job(mr::Dfs& dfs, const mr::ClusterConfig& cluster,
                               const std::string& input,
                               const std::string& output, double cell_m) {
  GEPETO_CHECK(cell_m > 0.0);
  mr::JobConfig job;
  job.name = "spatial-rounding";
  job.input = input;
  job.output = output;
  return mr::run_map_only_job(dfs, cluster, job,
                              [cell_m] { return RoundingMapper{cell_m}; });
}

CloakingMrResult run_cloaking_jobs(mr::Dfs& dfs,
                                   const mr::ClusterConfig& cluster,
                                   const std::string& input,
                                   const std::string& work_prefix, int k,
                                   double base_cell_m, int max_doublings) {
  GEPETO_CHECK(k >= 1 && base_cell_m > 0.0 && max_doublings >= 0);
  const std::string census_out = work_prefix + "/census";
  const std::string census_file = work_prefix + "/census-cache";
  const std::string cloaked = work_prefix + "/cloaked";

  flow::Flow f("cloaking");

  // Job 1: the distinct-user census per (level, cell).
  f.add_mapreduce("cloaking-census",
                  [input, census_out, base_cell_m,
                   max_doublings](flow::FlowEngine& e) {
                    mr::JobConfig census;
                    census.name = "cloaking-census";
                    census.input = input;
                    census.output = census_out;
                    census.num_reducers =
                        std::max(1, e.cluster().total_reduce_slots() / 2);
                    census.use_combiner = true;
                    return mr::run_mapreduce_job(
                        e.dfs(), e.cluster(), census,
                        [base_cell_m, max_doublings] {
                          return CensusMapper{base_cell_m, max_doublings};
                        },
                        [] { return CensusReducer{}; },
                        [] { return CensusCombiner{}; });
                  })
      .reads(input)
      .writes(census_out);

  // Consolidate the census parts into one distributed-cache file.
  f.add_native("cloaking-cache",
               [census_out, census_file](flow::FlowEngine& e) {
                 e.dfs().put(census_file,
                             mr::concat_dfs_files(e.dfs(), census_out + "/"));
               })
      .reads(census_out)
      .writes(census_file);

  // Job 2: apply the generalization (map-only).
  f.add_map_only("cloaking-apply",
                 [input, census_file, cloaked, k, base_cell_m,
                  max_doublings](flow::FlowEngine& e) {
                   mr::JobConfig apply;
                   apply.name = "cloaking-apply";
                   apply.input = input;
                   apply.output = cloaked;
                   apply.cache_files = {census_file};
                   return mr::run_map_only_job(
                       e.dfs(), e.cluster(), apply,
                       [census_file, k, base_cell_m, max_doublings] {
                         return ApplyCloakingMapper{census_file, k, base_cell_m,
                                                    max_doublings, {}};
                       });
                 })
      .reads(input)
      .reads(census_file)
      .keep(cloaked);

  // The census dataset and its cache consolidation are garbage-collected the
  // moment the apply job consumed them.
  const auto fr = f.run(dfs, cluster);

  CloakingMrResult result;
  result.census_job = fr.node("cloaking-census")->job;
  result.apply_job = fr.node("cloaking-apply")->job;
  const auto it = result.apply_job.counters.find("cloak.suppressed");
  result.suppressed = it == result.apply_job.counters.end()
                          ? 0
                          : static_cast<std::uint64_t>(it->second);
  return result;
}

MixZoneMrResult run_mix_zone_jobs(mr::Dfs& dfs,
                                  const mr::ClusterConfig& cluster,
                                  const std::string& input,
                                  const std::string& work_prefix,
                                  const std::vector<MixZone>& zones,
                                  std::uint64_t seed) {
  const std::string census_out = work_prefix + "/crossings";
  const std::string alloc_file = work_prefix + "/pseudonym-cache";
  const std::string mixed = work_prefix + "/mixed";

  flow::Flow f("mix-zones");

  // Job 1: per-user crossing census (group-aware map-only: one task sees a
  // user's whole run, so crossing state never straddles a split).
  f.add_map_only("mixzone-census",
                 [input, census_out, zones](flow::FlowEngine& e) {
                   mr::JobConfig census;
                   census.name = "mixzone-census";
                   census.input = input;
                   census.output = census_out;
                   return mr::run_map_only_job(
                       e.dfs(), e.cluster(), census,
                       [zones] { return MixCensusMapper{zones}; });
                 })
      .reads(input)
      .writes(census_out);

  // Native node: the same seeded allocation as the sequential path, written
  // as a "uid,crossing,pseudonym" table into the distributed cache.
  f.add_native("mixzone-alloc",
               [census_out, alloc_file, seed](flow::FlowEngine& e) {
                 std::vector<std::pair<std::int32_t, int>> crossings;
                 mr::for_each_dfs_line(
                     e.dfs(), census_out + "/", [&](std::string_view line) {
                       std::int32_t uid = 0;
                       int n = 0;
                       const char* p = line.data();
                       const char* le = line.data() + line.size();
                       auto r1 = std::from_chars(p, le, uid);
                       GEPETO_CHECK(r1.ec == std::errc() && r1.ptr != le &&
                                    *r1.ptr == ',');
                       auto r2 = std::from_chars(r1.ptr + 1, le, n);
                       GEPETO_CHECK(r2.ec == std::errc() && r2.ptr == le);
                       crossings.emplace_back(uid, n);
                     });
                 std::string table;
                 for (const auto& [key, pseudonym] :
                      allocate_pseudonyms(crossings, seed)) {
                   char buf[48];
                   std::snprintf(buf, sizeof(buf), "%d,%d,%d\n", key.first,
                                 key.second, pseudonym);
                   table += buf;
                 }
                 e.dfs().put(alloc_file, std::move(table));
               })
      .reads(census_out)
      .writes(alloc_file);

  // Job 2: apply suppression + reassignment (group-aware map-only).
  f.add_map_only("mixzone-apply",
                 [input, alloc_file, mixed, zones](flow::FlowEngine& e) {
                   mr::JobConfig apply;
                   apply.name = "mixzone-apply";
                   apply.input = input;
                   apply.output = mixed;
                   apply.cache_files = {alloc_file};
                   return mr::run_map_only_job(
                       e.dfs(), e.cluster(), apply, [alloc_file, zones] {
                         return MixApplyMapper{alloc_file, zones};
                       });
                 })
      .reads(input)
      .reads(alloc_file)
      .keep(mixed);

  const auto fr = f.run(dfs, cluster);

  MixZoneMrResult result;
  result.census_job = fr.node("mixzone-census")->job;
  result.apply_job = fr.node("mixzone-apply")->job;
  const auto counter = [&](const char* name) -> std::uint64_t {
    const auto it = result.apply_job.counters.find(name);
    return it == result.apply_job.counters.end()
               ? 0
               : static_cast<std::uint64_t>(it->second);
  };
  result.suppressed_traces = counter("mixzone.suppressed");
  result.pseudonym_changes = counter("mixzone.changes");
  return result;
}

}  // namespace gepeto::core
