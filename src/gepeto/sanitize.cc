#include "gepeto/sanitize.h"

#include <charconv>
#include <cmath>
#include <limits>
#include <map>
#include <numbers>
#include <set>
#include <tuple>
#include <unordered_map>

#include "common/check.h"
#include "workflow/flow.h"
#include "common/random.h"
#include "geo/distance.h"
#include "geo/geolife.h"
#include "geo/kernels.h"
#include "mapreduce/engine.h"

namespace gepeto::core {

namespace {

constexpr double kMetersPerDegLat = 111320.0;

double deg_lat(double m) { return m / kMetersPerDegLat; }
double deg_lon(double m, double at_lat) {
  return m / (kMetersPerDegLat *
              std::cos(at_lat * std::numbers::pi / 180.0));
}

/// Per-trace deterministic Gaussian noise shared by the sequential and MR
/// paths.
geo::MobilityTrace masked_trace(const geo::MobilityTrace& t, double sigma_m,
                                std::uint64_t seed) {
  Rng rng(seed ^ (static_cast<std::uint64_t>(t.user_id) * 0x9E3779B97F4A7C15ULL) ^
          (static_cast<std::uint64_t>(t.timestamp) * 0xA24BAED4963EE407ULL));
  geo::MobilityTrace out = t;
  out.latitude += deg_lat(rng.gaussian(0.0, sigma_m));
  out.longitude += deg_lon(rng.gaussian(0.0, sigma_m), t.latitude);
  return out;
}

/// Grid-cell identifier at a given cell size.
std::pair<std::int64_t, std::int64_t> cell_of(double lat, double lon,
                                              double cell_m) {
  const double dlat = deg_lat(cell_m);
  const double dlon = deg_lon(cell_m, lat);
  return {static_cast<std::int64_t>(std::floor(lat / dlat)),
          static_cast<std::int64_t>(std::floor(lon / dlon))};
}

geo::MobilityTrace rounded_trace(const geo::MobilityTrace& t, double cell_m) {
  const double dlat = deg_lat(cell_m);
  const double dlon = deg_lon(cell_m, t.latitude);
  geo::MobilityTrace out = t;
  out.latitude = (std::floor(t.latitude / dlat) + 0.5) * dlat;
  out.longitude = (std::floor(t.longitude / dlon) + 0.5) * dlon;
  return out;
}

struct GaussianMaskMapper {
  double sigma_m;
  std::uint64_t seed;

  void map(std::int64_t, std::string_view line, mr::MapOnlyContext& ctx) {
    geo::MobilityTrace t;
    if (!geo::parse_dataset_line(line, t)) {
      ctx.increment("sanitize.malformed_lines");
      return;
    }
    ctx.write(geo::dataset_line(masked_trace(t, sigma_m, seed)));
  }
};

struct RoundingMapper {
  double cell_m;

  void map(std::int64_t, std::string_view line, mr::MapOnlyContext& ctx) {
    geo::MobilityTrace t;
    if (!geo::parse_dataset_line(line, t)) {
      ctx.increment("sanitize.malformed_lines");
      return;
    }
    ctx.write(geo::dataset_line(rounded_trace(t, cell_m)));
  }
};

/// Census key: one grid cell at one doubling level.
struct CellKey {
  std::int32_t level = 0;
  std::int64_t cx = 0;
  std::int64_t cy = 0;

  friend auto operator<=>(const CellKey&, const CellKey&) = default;
  std::uint64_t partition_hash() const {
    std::uint64_t h = static_cast<std::uint64_t>(level) * 0x9E3779B97F4A7C15ULL;
    h ^= static_cast<std::uint64_t>(cx) * 0xA24BAED4963EE407ULL;
    h ^= static_cast<std::uint64_t>(cy) * 0x9FB21C651E98DF25ULL;
    return h;
  }
  std::uint64_t serialized_size() const { return 20; }
};

struct UserIdValue {
  std::int32_t user = 0;
  std::uint64_t serialized_size() const { return 4; }
};

struct CensusMapper {
  using OutKey = CellKey;
  using OutValue = UserIdValue;

  double base_cell_m;
  int max_doublings;

  void map(std::int64_t, std::string_view line,
           mr::MapContext<OutKey, OutValue>& ctx) {
    geo::MobilityTrace t;
    if (!geo::parse_dataset_line(line, t)) {
      ctx.increment("cloak.malformed_lines");
      return;
    }
    double cell = base_cell_m;
    for (int l = 0; l <= max_doublings; ++l, cell *= 2) {
      const auto [cx, cy] = cell_of(t.latitude, t.longitude, cell);
      ctx.emit(CellKey{l, cx, cy}, UserIdValue{t.user_id});
    }
  }
};

/// Local dedup: one record per (cell, user) leaves each map task.
struct CensusCombiner {
  void combine(const CellKey& key, std::span<const UserIdValue> values,
               mr::MapContext<CellKey, UserIdValue>& ctx) {
    std::set<std::int32_t> users;
    for (const auto& v : values) users.insert(v.user);
    for (std::int32_t u : users) ctx.emit(key, UserIdValue{u});
  }
};

struct CensusReducer {
  void reduce(const CellKey& key, std::span<const UserIdValue> values,
              mr::ReduceContext& ctx) {
    std::set<std::int32_t> users;
    for (const auto& v : values) users.insert(v.user);
    char buf[96];
    std::snprintf(buf, sizeof(buf), "%d,%lld,%lld,%zu", key.level,
                  static_cast<long long>(key.cx),
                  static_cast<long long>(key.cy), users.size());
    ctx.write(buf);
  }
};

struct ApplyCloakingMapper {
  std::string census_file;
  int k;
  double base_cell_m;
  int max_doublings;

  /// (level, cx, cy) -> distinct user count, loaded from the census.
  std::map<std::tuple<int, std::int64_t, std::int64_t>, std::size_t> census;

  void setup(mr::TaskContext& ctx) {
    const std::string_view data = ctx.cache_file(census_file);
    std::size_t start = 0;
    while (start < data.size()) {
      std::size_t end = data.find('\n', start);
      if (end == std::string_view::npos) end = data.size();
      const std::string_view line = data.substr(start, end - start);
      if (!line.empty()) {
        int level = 0;
        std::int64_t cx = 0, cy = 0;
        std::size_t count = 0;
        const char* p = line.data();
        const char* e = line.data() + line.size();
        auto r1 = std::from_chars(p, e, level);
        GEPETO_CHECK(r1.ec == std::errc() && r1.ptr != e && *r1.ptr == ',');
        auto r2 = std::from_chars(r1.ptr + 1, e, cx);
        GEPETO_CHECK(r2.ec == std::errc() && r2.ptr != e && *r2.ptr == ',');
        auto r3 = std::from_chars(r2.ptr + 1, e, cy);
        GEPETO_CHECK(r3.ec == std::errc() && r3.ptr != e && *r3.ptr == ',');
        auto r4 = std::from_chars(r3.ptr + 1, e, count);
        GEPETO_CHECK(r4.ec == std::errc() && r4.ptr == e);
        census.emplace(std::make_tuple(level, cx, cy), count);
      }
      start = end + 1;
    }
  }

  void map(std::int64_t, std::string_view line, mr::MapOnlyContext& ctx) {
    geo::MobilityTrace t;
    if (!geo::parse_dataset_line(line, t)) {
      ctx.increment("cloak.malformed_lines");
      return;
    }
    double cell = base_cell_m;
    for (int l = 0; l <= max_doublings; ++l, cell *= 2) {
      const auto [cx, cy] = cell_of(t.latitude, t.longitude, cell);
      const auto it = census.find(std::make_tuple(l, cx, cy));
      GEPETO_CHECK_MSG(it != census.end(), "census miss: stale cache?");
      if (static_cast<int>(it->second) >= k) {
        ctx.write(geo::dataset_line(rounded_trace(t, cell)));
        return;
      }
    }
    ctx.increment("cloak.suppressed");
  }
};

}  // namespace

geo::GeolocatedDataset gaussian_mask(const geo::GeolocatedDataset& dataset,
                                     double sigma_m, std::uint64_t seed) {
  GEPETO_CHECK(sigma_m >= 0.0);
  geo::GeolocatedDataset out;
  for (const auto& [uid, trail] : dataset) {
    geo::Trail masked;
    masked.reserve(trail.size());
    for (const auto& t : trail) masked.push_back(masked_trace(t, sigma_m, seed));
    out.add_trail(uid, std::move(masked));
  }
  return out;
}

geo::GeolocatedDataset spatial_rounding(const geo::GeolocatedDataset& dataset,
                                        double cell_m) {
  GEPETO_CHECK(cell_m > 0.0);
  geo::GeolocatedDataset out;
  for (const auto& [uid, trail] : dataset) {
    geo::Trail rounded;
    rounded.reserve(trail.size());
    for (const auto& t : trail) rounded.push_back(rounded_trace(t, cell_m));
    out.add_trail(uid, std::move(rounded));
  }
  return out;
}

CloakingResult spatial_cloaking(const geo::GeolocatedDataset& dataset, int k,
                                double base_cell_m, int max_doublings) {
  GEPETO_CHECK(k >= 1 && base_cell_m > 0.0 && max_doublings >= 0);
  // Distinct-user counts per cell at each level.
  std::vector<std::map<std::pair<std::int64_t, std::int64_t>,
                       std::set<std::int32_t>>>
      levels(static_cast<std::size_t>(max_doublings) + 1);
  for (const auto& [uid, trail] : dataset) {
    for (const auto& t : trail) {
      double cell = base_cell_m;
      for (int l = 0; l <= max_doublings; ++l, cell *= 2) {
        levels[static_cast<std::size_t>(l)][cell_of(t.latitude, t.longitude,
                                                    cell)]
            .insert(uid);
      }
    }
  }

  CloakingResult result;
  double cell_sum = 0.0;
  std::uint64_t kept = 0;
  for (const auto& [uid, trail] : dataset) {
    geo::Trail cloaked;
    for (const auto& t : trail) {
      double cell = base_cell_m;
      bool placed = false;
      for (int l = 0; l <= max_doublings; ++l, cell *= 2) {
        const auto& users = levels[static_cast<std::size_t>(l)].at(
            cell_of(t.latitude, t.longitude, cell));
        if (static_cast<int>(users.size()) >= k) {
          cloaked.push_back(rounded_trace(t, cell));
          cell_sum += cell;
          ++kept;
          placed = true;
          break;
        }
      }
      if (!placed) ++result.suppressed;
    }
    result.data.add_trail(uid, std::move(cloaked));
  }
  result.avg_cell_m = kept > 0 ? cell_sum / static_cast<double>(kept) : 0.0;
  return result;
}

MixZoneResult apply_mix_zones(const geo::GeolocatedDataset& dataset,
                              const std::vector<MixZone>& zones) {
  MixZoneResult result;
  // Fresh pseudonyms start above every existing id.
  std::int32_t next_pseudonym = 0;
  for (const auto& [uid, trail] : dataset)
    next_pseudonym = std::max(next_pseudonym, uid + 1);

  // Zone centers snapshotted as struct-of-arrays once; each membership test
  // is one batched haversine call (kernels.h) followed by the original
  // per-zone radius compare (each zone has its own radius, so this is a
  // filter over the distance buffer, not an argmin).
  std::vector<double> zlats(zones.size()), zlons(zones.size());
  std::vector<double> zdist(zones.size());
  for (std::size_t z = 0; z < zones.size(); ++z) {
    zlats[z] = zones[z].latitude;
    zlons[z] = zones[z].longitude;
  }
  auto in_zone = [&](const geo::MobilityTrace& t) {
    geo::haversine_meters_batch(t.latitude, t.longitude, zlats.data(),
                                zlons.data(), zones.size(), zdist.data());
    for (std::size_t z = 0; z < zones.size(); ++z) {
      if (zdist[z] <= zones[z].radius_m) return true;
    }
    return false;
  };

  for (const auto& [uid, trail] : dataset) {
    std::int32_t current_id = uid;
    bool inside = false;
    geo::Trail out;
    result.pseudonym_owner.emplace_back(uid, uid);
    for (const auto& t : trail) {
      if (in_zone(t)) {
        inside = true;
        ++result.suppressed_traces;
        continue;
      }
      if (inside) {
        // Exiting a zone: continue under a fresh pseudonym.
        current_id = next_pseudonym++;
        ++result.pseudonym_changes;
        result.pseudonym_owner.emplace_back(current_id, uid);
        inside = false;
      }
      geo::MobilityTrace copy = t;
      copy.user_id = current_id;
      out.push_back(copy);
    }
    // Split the trail by pseudonym into separate trails.
    for (const auto& t : out) result.data.add(t);
  }
  return result;
}

std::vector<MixZone> pick_mix_zones(const geo::GeolocatedDataset& dataset,
                                    int count, double radius_m) {
  GEPETO_CHECK(count >= 0 && radius_m > 0);
  // Busiest cells (side = 2 * radius) by distinct users.
  std::map<std::pair<std::int64_t, std::int64_t>, std::set<std::int32_t>>
      cells;
  for (const auto& [uid, trail] : dataset)
    for (const auto& t : trail)
      cells[cell_of(t.latitude, t.longitude, 2 * radius_m)].insert(uid);

  std::vector<std::pair<std::size_t, std::pair<std::int64_t, std::int64_t>>>
      ranked;
  for (const auto& [cell, users] : cells) ranked.push_back({users.size(), cell});
  std::sort(ranked.begin(), ranked.end(), [](const auto& a, const auto& b) {
    if (a.first != b.first) return a.first > b.first;
    return a.second < b.second;  // deterministic tie-break
  });

  std::vector<MixZone> zones;
  const double dlat = deg_lat(2 * radius_m);
  for (int i = 0; i < count && i < static_cast<int>(ranked.size()); ++i) {
    const auto& cell = ranked[static_cast<std::size_t>(i)].second;
    MixZone z;
    z.latitude = (static_cast<double>(cell.first) + 0.5) * dlat;
    const double dlon = deg_lon(2 * radius_m, z.latitude);
    z.longitude = (static_cast<double>(cell.second) + 0.5) * dlon;
    z.radius_m = radius_m;
    zones.push_back(z);
  }
  return zones;
}

mr::JobResult run_gaussian_mask_job(mr::Dfs& dfs,
                                    const mr::ClusterConfig& cluster,
                                    const std::string& input,
                                    const std::string& output, double sigma_m,
                                    std::uint64_t seed) {
  GEPETO_CHECK(sigma_m >= 0.0);
  mr::JobConfig job;
  job.name = "gaussian-mask";
  job.input = input;
  job.output = output;
  return mr::run_map_only_job(dfs, cluster, job, [sigma_m, seed] {
    return GaussianMaskMapper{sigma_m, seed};
  });
}

mr::JobResult run_rounding_job(mr::Dfs& dfs, const mr::ClusterConfig& cluster,
                               const std::string& input,
                               const std::string& output, double cell_m) {
  GEPETO_CHECK(cell_m > 0.0);
  mr::JobConfig job;
  job.name = "spatial-rounding";
  job.input = input;
  job.output = output;
  return mr::run_map_only_job(dfs, cluster, job,
                              [cell_m] { return RoundingMapper{cell_m}; });
}

CloakingMrResult run_cloaking_jobs(mr::Dfs& dfs,
                                   const mr::ClusterConfig& cluster,
                                   const std::string& input,
                                   const std::string& work_prefix, int k,
                                   double base_cell_m, int max_doublings) {
  GEPETO_CHECK(k >= 1 && base_cell_m > 0.0 && max_doublings >= 0);
  const std::string census_out = work_prefix + "/census";
  const std::string census_file = work_prefix + "/census-cache";
  const std::string cloaked = work_prefix + "/cloaked";

  flow::Flow f("cloaking");

  // Job 1: the distinct-user census per (level, cell).
  f.add_mapreduce("cloaking-census",
                  [input, census_out, base_cell_m,
                   max_doublings](flow::FlowEngine& e) {
                    mr::JobConfig census;
                    census.name = "cloaking-census";
                    census.input = input;
                    census.output = census_out;
                    census.num_reducers =
                        std::max(1, e.cluster().total_reduce_slots() / 2);
                    census.use_combiner = true;
                    return mr::run_mapreduce_job(
                        e.dfs(), e.cluster(), census,
                        [base_cell_m, max_doublings] {
                          return CensusMapper{base_cell_m, max_doublings};
                        },
                        [] { return CensusReducer{}; },
                        [] { return CensusCombiner{}; });
                  })
      .reads(input)
      .writes(census_out);

  // Consolidate the census parts into one distributed-cache file.
  f.add_native("cloaking-cache",
               [census_out, census_file](flow::FlowEngine& e) {
                 std::string census_lines;
                 for (const auto& part : e.dfs().list(census_out + "/"))
                   census_lines += e.dfs().read(part);
                 e.dfs().put(census_file, std::move(census_lines));
               })
      .reads(census_out)
      .writes(census_file);

  // Job 2: apply the generalization (map-only).
  f.add_map_only("cloaking-apply",
                 [input, census_file, cloaked, k, base_cell_m,
                  max_doublings](flow::FlowEngine& e) {
                   mr::JobConfig apply;
                   apply.name = "cloaking-apply";
                   apply.input = input;
                   apply.output = cloaked;
                   apply.cache_files = {census_file};
                   return mr::run_map_only_job(
                       e.dfs(), e.cluster(), apply,
                       [census_file, k, base_cell_m, max_doublings] {
                         return ApplyCloakingMapper{census_file, k, base_cell_m,
                                                    max_doublings, {}};
                       });
                 })
      .reads(input)
      .reads(census_file)
      .keep(cloaked);

  // The census dataset and its cache consolidation are garbage-collected the
  // moment the apply job consumed them.
  const auto fr = f.run(dfs, cluster);

  CloakingMrResult result;
  result.census_job = fr.node("cloaking-census")->job;
  result.apply_job = fr.node("cloaking-apply")->job;
  const auto it = result.apply_job.counters.find("cloak.suppressed");
  result.suppressed = it == result.apply_job.counters.end()
                          ? 0
                          : static_cast<std::uint64_t>(it->second);
  return result;
}

}  // namespace gepeto::core
