// Social-link discovery — one of the inference-attack goals the paper lists
// (Section II): "Discover social relations between individuals, by
// considering that two individuals that are in contact during a
// non-negligible amount of time share some kind of social link (false
// positive may happen)".
//
// The attack finds co-locations: pairs of users with traces within
// `radius_m` of each other inside the same time bucket. Consecutive
// co-located buckets merge into one *meeting*; a pair becomes a predicted
// social link once it accumulates enough meetings and enough total contact
// time. A MapReduce realization is provided alongside the sequential one:
// mappers key traces by (grid cell, time bucket), reducers emit the
// co-located pairs per bucket, and the driver aggregates pairs into links.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "geo/trace.h"
#include "mapreduce/cluster.h"
#include "mapreduce/job.h"

namespace gepeto::mr {
class Dfs;
}

namespace gepeto::core {

struct CoLocationConfig {
  double radius_m = 50.0;     ///< two traces this close are "in contact"
  int time_bucket_s = 300;    ///< temporal resolution of co-location
  int min_meetings = 3;       ///< distinct meetings required for a link
  double min_contact_s = 900; ///< total contact time required ("non-negligible")
};

struct SocialEdge {
  std::int32_t a = 0;  ///< a < b
  std::int32_t b = 0;
  std::uint32_t meetings = 0;
  double contact_seconds = 0.0;

  friend bool operator==(const SocialEdge&, const SocialEdge&) = default;
};

/// Sequential attack. Edges sorted by (a, b).
std::vector<SocialEdge> discover_social_links(
    const geo::GeolocatedDataset& dataset, const CoLocationConfig& config);

/// Evaluation against ground-truth friendships (pairs with a < b).
struct SocialAttackScore {
  double precision = 0.0;
  double recall = 0.0;
  double f1 = 0.0;
  std::size_t predicted = 0;
  std::size_t truth = 0;
  std::size_t correct = 0;
};

SocialAttackScore score_social_attack(
    const std::vector<SocialEdge>& edges,
    const std::vector<std::pair<std::int32_t, std::int32_t>>& truth);

/// MapReduce realization over dataset lines: map keys each trace by
/// (cell, bucket), reducers emit co-located pairs per bucket, the driver
/// merges buckets into meetings. Output lines: "a,b,meetings,contact_s".
struct SocialMrResult {
  std::vector<SocialEdge> edges;
  mr::JobResult job;
};

SocialMrResult run_colocation_job(mr::Dfs& dfs,
                                  const mr::ClusterConfig& cluster,
                                  const std::string& input,
                                  const std::string& output,
                                  const CoLocationConfig& config);

}  // namespace gepeto::core
