#include "gepeto/gepeto.h"

#include "geo/geolife.h"

namespace gepeto::core {

void Gepeto::load_dataset(const geo::GeolocatedDataset& dataset,
                          const std::string& path, int num_files) {
  geo::dataset_to_dfs(*dfs_, path, dataset, num_files);
}

geo::GeolocatedDataset Gepeto::read_dataset(const std::string& prefix) const {
  return geo::dataset_from_dfs(*dfs_, prefix);
}

std::uint64_t Gepeto::count_records(const std::string& prefix) const {
  return geo::count_dfs_records(*dfs_, prefix);
}

mr::JobResult Gepeto::sample(const std::string& input,
                             const std::string& output,
                             const SamplingConfig& config) {
  return run_sampling_job(*dfs_, cluster_, input, output, config);
}

KMeansResult Gepeto::kmeans(const std::string& input,
                            const std::string& clusters_path,
                            const KMeansConfig& config) {
  return kmeans_mapreduce(*dfs_, cluster_, input, clusters_path, config);
}

DjMapReduceResult Gepeto::djcluster(const std::string& input,
                                    const std::string& work_prefix,
                                    const DjClusterConfig& config) {
  return run_djcluster_jobs(*dfs_, cluster_, input, work_prefix, config);
}

RTreeMrResult Gepeto::build_rtree(const std::string& input,
                                  const std::string& work_prefix,
                                  const RTreeMrConfig& config) {
  return build_rtree_mapreduce(*dfs_, cluster_, input, work_prefix, config);
}

mr::JobResult Gepeto::mask(const std::string& input, const std::string& output,
                           double sigma_m, std::uint64_t seed) {
  return run_gaussian_mask_job(*dfs_, cluster_, input, output, sigma_m, seed);
}

mr::JobResult Gepeto::round(const std::string& input,
                            const std::string& output, double cell_m) {
  return run_rounding_job(*dfs_, cluster_, input, output, cell_m);
}

CloakingMrResult Gepeto::cloak(const std::string& input,
                               const std::string& work_prefix, int k,
                               double base_cell_m, int max_doublings) {
  return run_cloaking_jobs(*dfs_, cluster_, input, work_prefix, k, base_cell_m,
                           max_doublings);
}

MixZoneMrResult Gepeto::mix_zones(const std::string& input,
                                  const std::string& work_prefix,
                                  const std::vector<MixZone>& zones,
                                  std::uint64_t seed) {
  return run_mix_zone_jobs(*dfs_, cluster_, input, work_prefix, zones, seed);
}

LinkAttackMrResult Gepeto::link_attack(
    const std::string& probe_input, const std::string& gallery_input,
    const std::string& work_prefix, const FingerprintConfig& config,
    const std::map<std::int32_t, std::int32_t>& probe_owner,
    const std::map<std::int32_t, std::int32_t>& gallery_owner) {
  return run_link_attack_flow(*dfs_, cluster_, probe_input, gallery_input,
                              work_prefix, config, probe_owner, gallery_owner);
}

OdMatrixMrResult Gepeto::od_matrix(const std::string& input,
                                   const std::string& work_prefix,
                                   const OdConfig& config) {
  return run_od_matrix_flow(*dfs_, cluster_, input, work_prefix, config);
}

flow::FlowResult Gepeto::run_flow(flow::Flow& f,
                                  const flow::FlowOptions& options) {
  return f.run(*dfs_, cluster_, options);
}

}  // namespace gepeto::core
