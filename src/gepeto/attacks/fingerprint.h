// POI-fingerprint re-identification attack (the tentpole linking attack).
//
// The adversary holds two differently-sanitized releases of the same
// population — say, last year's release cloaked at k=5 and this year's with
// three mix zones. For each released identifier they extract a *POI
// fingerprint*: the user's top clusters of stay points (poi.h / djcluster.h),
// weighted by visit share. Homes and workplaces survive most sanitizers, so
// the fingerprint is a quasi-identifier: linking each probe fingerprint to
// its nearest gallery fingerprint re-identifies users across releases
// (Mishra et al. re-identified 100K real-user trajectories this way). The
// re-identification rate — scored against generator ground truth — is the
// empirical privacy loss a sanitizer config leaves on the table, and the
// y-axis of bench_privacy_frontier.
//
// Both a sequential path (the oracle the differential tests compare against)
// and a JobFlow pipeline (two parallel fingerprint-extraction MapReduce
// branches, a gallery distributed-cache join, a map-only linking job — the
// "two-release self-join") are provided; they produce identical links.
//
// Tie-break contract: when two gallery fingerprints are equidistant from a
// probe, the *lowest gallery user id* wins — the same lowest-index argmin
// contract as deanonymization_attack (mmc.h) and the SIMD kernels, so attack
// success rates are bit-reproducible across GEPETO_KERNEL backends.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "geo/trace.h"
#include "gepeto/djcluster.h"
#include "mapreduce/cluster.h"
#include "mapreduce/job.h"

namespace gepeto::mr {
class Dfs;
}

namespace gepeto::core {

struct FingerprintConfig {
  /// Clustering used to extract stay points from a released trail.
  DjClusterConfig cluster;
  /// Keep the top-N POIs (by visit count) as the fingerprint.
  int top_pois = 4;
};

/// One weighted site of a fingerprint.
struct FingerprintSite {
  double latitude = 0.0;
  double longitude = 0.0;
  double weight = 0.0;  ///< share of the user's POI visits at this site
};

/// The quasi-identifier of one released identity: its top POI sites,
/// weight-descending (ties by latitude, longitude — deterministic).
struct PoiFingerprint {
  std::int32_t user_id = 0;
  std::vector<FingerprintSite> sites;  ///< empty when no POI was extractable

  bool empty() const { return sites.empty(); }
};

/// Extract the fingerprint of one released trail.
PoiFingerprint fingerprint_of(std::int32_t user_id, const geo::Trail& trail,
                              const FingerprintConfig& config);

/// Fingerprint every released identity, user-id ascending. Identities whose
/// trail yields no POI keep an empty fingerprint (they stay in the gallery:
/// an adversary cannot link them, which the rate must reflect).
std::vector<PoiFingerprint> fingerprint_dataset(
    const geo::GeolocatedDataset& dataset, const FingerprintConfig& config);

/// Sentinel distance of an unlinkable pair (either fingerprint empty).
/// A large *finite* value — exactly representable and text-round-trippable,
/// so the sequential and MapReduce link outputs stay byte-identical.
inline constexpr double kUnlinkableDistance = 1e18;

/// Distance between two fingerprints: symmetric weighted chamfer distance in
/// meters (each site matched to the other side's nearest site, weighted by
/// visit share, averaged over both directions). kUnlinkableDistance when
/// either side is empty — an empty fingerprint carries no linkable
/// information.
double fingerprint_distance(const PoiFingerprint& a, const PoiFingerprint& b);

/// Text codec for fingerprint lines ("uid,n,w,lat,lon,...") — the MapReduce
/// pipeline's intermediate format. parse returns false on malformed input.
std::string format_fingerprint_line(const PoiFingerprint& fp);
bool parse_fingerprint_line(std::string_view line, PoiFingerprint& out);

/// One probe linked to its nearest gallery identity.
struct LinkedPair {
  std::int32_t probe_id = 0;
  std::int32_t gallery_id = 0;  ///< lowest gallery user id on ties
  double distance = 0.0;
};

/// Link one probe against a gallery sorted by user_id ascending. Strict-<
/// argmin: the lowest gallery user id wins ties (see file header).
LinkedPair link_one(const PoiFingerprint& probe,
                    const std::vector<PoiFingerprint>& gallery);

struct LinkReport {
  std::vector<LinkedPair> links;  ///< probe-id ascending
  std::uint64_t probes = 0;
  std::uint64_t correct = 0;
  double reidentification_rate = 0.0;  ///< correct / probes
};

/// Link every probe and score against ground truth. The owner maps translate
/// a *released* id back to the true user (mix zones release pseudonyms); an
/// id absent from its map is its own owner (cloaking keeps ids). A link is
/// correct when both sides resolve to the same true user.
LinkReport link_fingerprints(
    const std::vector<PoiFingerprint>& probes,
    const std::vector<PoiFingerprint>& gallery,
    const std::map<std::int32_t, std::int32_t>& probe_owner = {},
    const std::map<std::int32_t, std::int32_t>& gallery_owner = {});

/// The full sequential attack: fingerprint both releases, link, score.
LinkReport run_link_attack(
    const geo::GeolocatedDataset& probe_release,
    const geo::GeolocatedDataset& gallery_release,
    const FingerprintConfig& config,
    const std::map<std::int32_t, std::int32_t>& probe_owner = {},
    const std::map<std::int32_t, std::int32_t>& gallery_owner = {});

/// The MapReduce realization, as a JobFlow DAG:
///
///   fp-probe (MapReduce)     fp-gallery (MapReduce)     — parallel branches:
///        |                        |                       map = line -> (uid,
///        |                   gallery-cache (native)       trace); reduce =
///        |                        |                       trail -> fingerprint
///        +----------+-------------+                       line
///                   |
///              link (map-only): each probe fingerprint line is linked
///              against the cached gallery (the distributed-cache join);
///              writes "probe,gallery,distance" lines
///                   |
///              link-score (native): parses the links and scores them
///              against the owner maps.
///
/// Byte-identical to run_link_attack() on any chunking and both backends.
struct LinkAttackMrResult {
  mr::JobResult probe_fp_job;
  mr::JobResult gallery_fp_job;
  mr::JobResult link_job;
  LinkReport report;
};

LinkAttackMrResult run_link_attack_flow(
    mr::Dfs& dfs, const mr::ClusterConfig& cluster,
    const std::string& probe_input, const std::string& gallery_input,
    const std::string& work_prefix, const FingerprintConfig& config,
    const std::map<std::int32_t, std::int32_t>& probe_owner = {},
    const std::map<std::int32_t, std::int32_t>& gallery_owner = {});

}  // namespace gepeto::core
