// Privacy-contract verifier: checks a sanitized release against the
// *declared* privacy semantics of the mechanism that produced it, given the
// original dataset as ground truth. This is the adversarial-oracle half of
// the attack suite: the attacks (fingerprint.h, od_matrix.h) measure how much
// an adversary still learns, while the verifier proves the mechanism kept
// its stated promises at all. Both extend the differential-harness
// philosophy (tests/differential) from execution semantics — "the MapReduce
// job equals the sequential oracle" — to privacy semantics — "the release
// satisfies the contract the sanitizer declared".
//
// Contracts checked:
//   * spatial cloaking — every released coordinate is the center of a real
//     grid cell, exactly on the 1e-6 degree release-codec grid (in-memory
//     releases are bit-identical); that cell contains >= k distinct users of
//     the original dataset; the cell level is the smallest that reaches k
//     for that trace; every trace the contract says must be suppressed is
//     absent, everything else present; no fabricated traces or users.
//   * mix zones — no released trace inside any zone (boundary inclusive);
//     every out-of-zone original trace is released exactly once; pseudonyms
//     are consistent (each maps to one owner, covers one contiguous
//     crossing segment, is never reused across crossings) and collision-free
//     against every original user id and every other pseudonym.
//
// Verification works from the release itself wherever possible; the
// mix-zone check comes in two flavors — against a MixZoneResult (uses the
// evaluation-only pseudonym_owner map) and against a bare released dataset
// (owners re-derived by exact trace matching, the adversarial setting the
// `gepeto verify` CLI uses).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "geo/trace.h"
#include "gepeto/sanitize.h"

namespace gepeto::core {

struct ContractViolation {
  std::string contract;  ///< e.g. "cloak.k_anonymity"
  std::string detail;
};

struct PrivacyReport {
  std::uint64_t checks = 0;           ///< individual contract checks run
  std::uint64_t violation_count = 0;  ///< total violations (beyond the cap)
  /// First kMaxRecordedViolations violations, for diagnostics.
  std::vector<ContractViolation> violations;

  static constexpr std::size_t kMaxRecordedViolations = 32;

  bool ok() const { return violation_count == 0; }
  void add_violation(std::string contract, std::string detail);
  void merge(const PrivacyReport& other);
  /// One-line human summary ("12034 checks, 0 violations" or the first
  /// violation's contract + detail).
  std::string summary() const;
};

/// The promise a spatial-cloaking release was produced under.
struct CloakingContract {
  int k = 2;
  double base_cell_m = 250.0;
  int max_doublings = 6;
};

/// Verify `released` against `original` under the cloaking contract.
PrivacyReport verify_cloaking(const geo::GeolocatedDataset& original,
                              const geo::GeolocatedDataset& released,
                              const CloakingContract& contract);

/// Verify a mix-zone release using the evaluation-only pseudonym_owner map.
PrivacyReport verify_mix_zones(const geo::GeolocatedDataset& original,
                               const MixZoneResult& result,
                               const std::vector<MixZone>& zones);

/// Verify a bare mix-zone release (no owner map): owners are re-derived by
/// exact (timestamp, coordinate) matching against the original — mix zones
/// never alter coordinates, only suppress and rename. Traces whose owner is
/// ambiguous (several users share identical observations) are reported as
/// unverifiable violations rather than guessed.
PrivacyReport verify_mix_zones_release(const geo::GeolocatedDataset& original,
                                       const geo::GeolocatedDataset& released,
                                       const std::vector<MixZone>& zones);

}  // namespace gepeto::core
