#include "gepeto/attacks/od_matrix.h"

#include <algorithm>
#include <charconv>
#include <cstdio>
#include <map>
#include <set>
#include <span>
#include <tuple>

#include "common/check.h"
#include "geo/geolife.h"
#include "mapreduce/engine.h"
#include "mapreduce/lines.h"
#include "workflow/flow.h"

namespace gepeto::core {

namespace {

using PairKey = std::tuple<std::int64_t, std::int64_t, std::int64_t,
                           std::int64_t>;

PairKey pair_key(const OdTrip& t) {
  return {t.origin_cy, t.origin_cx, t.dest_cy, t.dest_cx};
}

/// Streaming trip folder shared verbatim by the sequential path and the MR
/// mapper, so both extract the identical trip multiset.
struct TripFolder {
  const OdConfig& config;

  bool active = false;
  std::int32_t uid = 0;
  std::int64_t prev_ts = 0;
  std::size_t seg_traces = 0;
  std::int64_t first_cy = 0, first_cx = 0;
  std::int64_t last_cy = 0, last_cx = 0;

  template <typename Emit>
  void close_segment(Emit&& emit) {
    if (seg_traces >= 2 && (first_cy != last_cy || first_cx != last_cx))
      emit(OdTrip{uid, first_cy, first_cx, last_cy, last_cx});
    seg_traces = 0;
  }

  template <typename Emit>
  void feed(const geo::MobilityTrace& t, Emit&& emit) {
    const GridCell cell =
        grid_cell_of(t.latitude, t.longitude, config.cell_m);
    if (!active || t.user_id != uid ||
        t.timestamp - prev_ts > config.trip_gap_s) {
      if (active) close_segment(emit);
      active = true;
      uid = t.user_id;
      first_cy = cell.cy;
      first_cx = cell.cx;
    }
    last_cy = cell.cy;
    last_cx = cell.cx;
    prev_ts = t.timestamp;
    ++seg_traces;
  }

  template <typename Emit>
  void finish(Emit&& emit) {
    if (active) close_segment(emit);
    active = false;
  }
};

std::string trip_line(const OdTrip& t) {
  char buf[128];
  std::snprintf(buf, sizeof(buf), "%d,%lld,%lld,%lld,%lld", t.user_id,
                static_cast<long long>(t.origin_cy),
                static_cast<long long>(t.origin_cx),
                static_cast<long long>(t.dest_cy),
                static_cast<long long>(t.dest_cx));
  return buf;
}

bool parse_i64_list(std::string_view line, std::int64_t* out, int n) {
  const char* p = line.data();
  const char* e = line.data() + line.size();
  for (int i = 0; i < n; ++i) {
    if (i > 0) {
      if (p == e || *p != ',') return false;
      ++p;
    }
    const auto r = std::from_chars(p, e, out[i]);
    if (r.ec != std::errc()) return false;
    p = r.ptr;
  }
  return p == e;
}

// --- MapReduce pieces --------------------------------------------------------

bool same_user_lines(std::string_view prev, std::string_view line) {
  geo::MobilityTrace a, b;
  if (!geo::parse_dataset_line(prev, a)) return false;
  if (!geo::parse_dataset_line(line, b)) return false;
  return a.user_id == b.user_id;
}

/// Job 1: group-aware trip extraction (a user's whole trail in one task, so
/// a trip never straddles a split).
struct TripsMapper {
  OdConfig config;
  TripFolder folder{config};

  bool same_group(std::string_view prev, std::string_view line) const {
    return same_user_lines(prev, line);
  }

  void map(std::int64_t, std::string_view line, mr::MapOnlyContext& ctx) {
    geo::MobilityTrace t;
    if (!geo::parse_dataset_line(line, t)) {
      ctx.increment("od.malformed_lines");
      return;
    }
    folder.feed(t, [&](const OdTrip& trip) {
      ctx.increment("od.trips");
      ctx.write(trip_line(trip));
    });
  }

  void cleanup(mr::MapOnlyContext& ctx) {
    folder.finish([&](const OdTrip& trip) {
      ctx.increment("od.trips");
      ctx.write(trip_line(trip));
    });
  }
};

/// Shuffle key of job 2: the cell pair.
struct OdPairKey {
  std::int64_t ocy = 0, ocx = 0, dcy = 0, dcx = 0;

  friend auto operator<=>(const OdPairKey&, const OdPairKey&) = default;
  std::uint64_t partition_hash() const {
    std::uint64_t h = static_cast<std::uint64_t>(ocy) * 0x9E3779B97F4A7C15ULL;
    h ^= static_cast<std::uint64_t>(ocx) * 0xA24BAED4963EE407ULL;
    h ^= static_cast<std::uint64_t>(dcy) * 0x9FB21C651E98DF25ULL;
    h ^= static_cast<std::uint64_t>(dcx) * 0xD1B54A32D192ED03ULL;
    return h;
  }
  std::uint64_t serialized_size() const { return 32; }
};

struct OdUserValue {
  std::int32_t user = 0;
  std::uint64_t serialized_size() const { return 4; }
};

struct OdPairsMapper {
  using OutKey = OdPairKey;
  using OutValue = OdUserValue;

  void map(std::int64_t, std::string_view line,
           mr::MapContext<OutKey, OutValue>& ctx) {
    std::int64_t v[5];
    if (!parse_i64_list(line, v, 5)) {
      ctx.increment("od.malformed_trip_lines");
      return;
    }
    ctx.emit(OdPairKey{v[1], v[2], v[3], v[4]},
             OdUserValue{static_cast<std::int32_t>(v[0])});
  }
};

/// Job 2 reduce: count trips + distinct users per pair; sub-k pairs are
/// suppressed into counters instead of the release.
struct OdPairsReducer {
  int k = 5;

  void reduce(const OdPairKey& key, std::span<const OdUserValue> values,
              mr::ReduceContext& ctx) {
    std::set<std::int32_t> users;
    for (const auto& v : values) users.insert(v.user);
    if (static_cast<int>(users.size()) >= k) {
      char buf[160];
      std::snprintf(buf, sizeof(buf), "%lld,%lld,%lld,%lld,%zu,%zu",
                    static_cast<long long>(key.ocy),
                    static_cast<long long>(key.ocx),
                    static_cast<long long>(key.dcy),
                    static_cast<long long>(key.dcx), values.size(),
                    users.size());
      ctx.write(buf);
    } else {
      ctx.increment("od.suppressed_pairs");
      ctx.increment("od.suppressed_trips",
                    static_cast<std::int64_t>(values.size()));
    }
  }
};

}  // namespace

std::vector<OdTrip> extract_trips(const geo::GeolocatedDataset& dataset,
                                  const OdConfig& config) {
  GEPETO_CHECK(config.cell_m > 0.0 && config.trip_gap_s > 0);
  std::vector<OdTrip> trips;
  TripFolder folder{config};
  const auto emit = [&](const OdTrip& t) { trips.push_back(t); };
  for (const auto& [uid, trail] : dataset)
    for (const auto& t : trail) folder.feed(t, emit);
  folder.finish(emit);
  return trips;
}

OdMatrix build_od_matrix(const std::vector<OdTrip>& trips,
                         const OdConfig& config) {
  GEPETO_CHECK(config.k >= 1);
  std::map<PairKey, std::pair<std::uint64_t, std::set<std::int32_t>>> agg;
  for (const auto& t : trips) {
    auto& [count, users] = agg[pair_key(t)];
    ++count;
    users.insert(t.user_id);
  }
  OdMatrix matrix;
  matrix.total_trips = trips.size();
  for (const auto& [key, cell] : agg) {
    const auto& [count, users] = cell;
    if (static_cast<int>(users.size()) >= config.k) {
      matrix.entries.push_back(OdEntry{std::get<0>(key), std::get<1>(key),
                                       std::get<2>(key), std::get<3>(key),
                                       count, users.size()});
    } else {
      ++matrix.suppressed_pairs;
      matrix.suppressed_trips += count;
    }
  }
  return matrix;
}

OdUtility od_utility(const std::vector<OdTrip>& trips, const OdMatrix& matrix) {
  OdUtility u;
  if (trips.empty()) return u;

  std::set<PairKey> released;
  for (const auto& e : matrix.entries)
    released.insert({e.origin_cy, e.origin_cx, e.dest_cy, e.dest_cx});

  std::set<PairKey> all_pairs;
  std::map<std::int32_t, std::pair<std::uint64_t, std::uint64_t>>
      per_user;  // user -> (trips, released trips)
  std::uint64_t released_trips = 0;
  for (const auto& t : trips) {
    all_pairs.insert(pair_key(t));
    auto& [total, kept] = per_user[t.user_id];
    ++total;
    if (released.count(pair_key(t)) > 0) {
      ++kept;
      ++released_trips;
    }
  }

  u.trip_retention =
      static_cast<double>(released_trips) / static_cast<double>(trips.size());
  u.pair_retention = all_pairs.empty()
                         ? 0.0
                         : static_cast<double>(released.size()) /
                               static_cast<double>(all_pairs.size());
  std::uint64_t covered = 0;
  double retention_sum = 0.0;
  for (const auto& [uid, counts] : per_user) {
    const auto& [total, kept] = counts;
    if (kept > 0) ++covered;
    retention_sum += static_cast<double>(kept) / static_cast<double>(total);
  }
  u.participant_coverage =
      static_cast<double>(covered) / static_cast<double>(per_user.size());
  u.avg_participant_retention =
      retention_sum / static_cast<double>(per_user.size());
  return u;
}

PrivacyReport verify_od_matrix(const geo::GeolocatedDataset& original,
                               const OdMatrix& matrix, const OdConfig& config) {
  PrivacyReport report;
  const std::vector<OdTrip> trips = extract_trips(original, config);
  const OdMatrix expected = build_od_matrix(trips, config);

  const auto tag = [](const OdEntry& e) {
    char buf[160];
    std::snprintf(buf, sizeof(buf), "pair (%lld,%lld)->(%lld,%lld)",
                  static_cast<long long>(e.origin_cy),
                  static_cast<long long>(e.origin_cx),
                  static_cast<long long>(e.dest_cy),
                  static_cast<long long>(e.dest_cx));
    return std::string(buf);
  };
  const auto key_of = [](const OdEntry& e) {
    return PairKey{e.origin_cy, e.origin_cx, e.dest_cy, e.dest_cx};
  };

  auto ei = expected.entries.begin();
  auto gi = matrix.entries.begin();
  while (ei != expected.entries.end() || gi != matrix.entries.end()) {
    ++report.checks;
    if (gi == matrix.entries.end() ||
        (ei != expected.entries.end() && key_of(*ei) < key_of(*gi))) {
      report.add_violation("od.missing",
                           tag(*ei) + " has >= k users but was not released");
      ++ei;
      continue;
    }
    if (ei == expected.entries.end() || key_of(*gi) < key_of(*ei)) {
      report.add_violation("od.suppression",
                           tag(*gi) + " released despite < k distinct users");
      ++gi;
      continue;
    }
    if (gi->users != ei->users ||
        static_cast<int>(gi->users) < config.k)
      report.add_violation("od.k_anonymity",
                           tag(*gi) + " claims " + std::to_string(gi->users) +
                               " users, original has " +
                               std::to_string(ei->users));
    else if (gi->trips != ei->trips)
      report.add_violation("od.trip_count",
                           tag(*gi) + " claims " + std::to_string(gi->trips) +
                               " trips, original has " +
                               std::to_string(ei->trips));
    ++ei;
    ++gi;
  }

  ++report.checks;
  std::uint64_t released_trips = 0;
  for (const auto& e : matrix.entries) released_trips += e.trips;
  if (released_trips + matrix.suppressed_trips != trips.size() ||
      matrix.total_trips != trips.size())
    report.add_violation(
        "od.conservation",
        std::to_string(released_trips) + " released + " +
            std::to_string(matrix.suppressed_trips) + " suppressed trips != " +
            std::to_string(trips.size()) + " original trips");
  return report;
}

OdMatrixMrResult run_od_matrix_flow(mr::Dfs& dfs,
                                    const mr::ClusterConfig& cluster,
                                    const std::string& input,
                                    const std::string& work_prefix,
                                    const OdConfig& config) {
  GEPETO_CHECK(config.cell_m > 0.0 && config.trip_gap_s > 0 && config.k >= 1);
  const std::string trips_out = work_prefix + "/trips";
  const std::string pairs_out = work_prefix + "/pairs";

  flow::Flow f("od-matrix");

  f.add_map_only("od-trips",
                 [input, trips_out, config](flow::FlowEngine& e) {
                   mr::JobConfig job;
                   job.name = "od-trips";
                   job.input = input;
                   job.output = trips_out;
                   return mr::run_map_only_job(
                       e.dfs(), e.cluster(), job,
                       [config] { return TripsMapper{config}; });
                 })
      .reads(input)
      .writes(trips_out);

  f.add_mapreduce("od-pairs",
                  [trips_out, pairs_out, config](flow::FlowEngine& e) {
                    mr::JobConfig job;
                    job.name = "od-pairs";
                    job.input = trips_out;
                    job.output = pairs_out;
                    job.num_reducers =
                        std::max(1, e.cluster().total_reduce_slots() / 2);
                    return mr::run_mapreduce_job(
                        e.dfs(), e.cluster(), job,
                        [] { return OdPairsMapper{}; },
                        [config] { return OdPairsReducer{config.k}; });
                  })
      .reads(trips_out)
      .keep(pairs_out);

  OdMatrixMrResult result;
  f.add_native("od-collect",
               [pairs_out, &result](flow::FlowEngine& e) {
                 mr::for_each_dfs_line(
                     e.dfs(), pairs_out + "/", [&](std::string_view l) {
                       std::int64_t v[6];
                       GEPETO_CHECK_MSG(parse_i64_list(l, v, 6),
                                        "malformed od pair line");
                       result.matrix.entries.push_back(OdEntry{
                           v[0], v[1], v[2], v[3],
                           static_cast<std::uint64_t>(v[4]),
                           static_cast<std::uint64_t>(v[5])});
                     });
                 std::sort(result.matrix.entries.begin(),
                           result.matrix.entries.end());
               })
      .reads(pairs_out);

  const auto fr = f.run(dfs, cluster);
  result.trips_job = fr.node("od-trips")->job;
  result.pairs_job = fr.node("od-pairs")->job;
  const auto counter = [](const mr::JobResult& jr,
                          const char* name) -> std::uint64_t {
    const auto it = jr.counters.find(name);
    return it == jr.counters.end() ? 0
                                   : static_cast<std::uint64_t>(it->second);
  };
  result.matrix.total_trips = counter(result.trips_job, "od.trips");
  result.matrix.suppressed_pairs =
      counter(result.pairs_job, "od.suppressed_pairs");
  result.matrix.suppressed_trips =
      counter(result.pairs_job, "od.suppressed_trips");
  return result;
}

}  // namespace gepeto::core
