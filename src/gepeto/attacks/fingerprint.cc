#include "gepeto/attacks/fingerprint.h"

#include <algorithm>
#include <charconv>
#include <cstdio>
#include <span>

#include "common/check.h"
#include "geo/distance.h"
#include "geo/geolife.h"
#include "gepeto/poi.h"
#include "mapreduce/engine.h"
#include "mapreduce/lines.h"
#include "workflow/flow.h"

namespace gepeto::core {

namespace {

bool parse_double(const char*& p, const char* e, double& out) {
  const auto r = std::from_chars(p, e, out);
  if (r.ec != std::errc()) return false;
  p = r.ptr;
  return true;
}

bool skip_comma(const char*& p, const char* e) {
  if (p == e || *p != ',') return false;
  ++p;
  return true;
}

void append_double(std::string& s, double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  s += buf;
}

/// One-way weighted chamfer: each site of `a` to its nearest site of `b`.
double one_way_chamfer(const PoiFingerprint& a, const PoiFingerprint& b) {
  double sum = 0.0, weight = 0.0;
  for (const auto& sa : a.sites) {
    double best = kUnlinkableDistance;
    for (const auto& sb : b.sites)
      best = std::min(best, geo::haversine_meters(sa.latitude, sa.longitude,
                                                  sb.latitude, sb.longitude));
    sum += sa.weight * best;
    weight += sa.weight;
  }
  return weight > 0.0 ? sum / weight : kUnlinkableDistance;
}

// --- MapReduce pieces --------------------------------------------------------

/// Intermediate value of the fingerprint job: one trace, keyed by the
/// released user id. Trivially copyable (process-backend wire).
struct TraceWire {
  double lat = 0.0;
  double lon = 0.0;
  std::int64_t ts = 0;

  std::uint64_t serialized_size() const { return 24; }
};

/// Map: dataset line -> (released id, trace).
struct FingerprintMapper {
  using OutKey = std::int32_t;
  using OutValue = TraceWire;

  void map(std::int64_t, std::string_view line,
           mr::MapContext<OutKey, OutValue>& ctx) {
    geo::MobilityTrace t;
    if (!geo::parse_dataset_line(line, t)) {
      ctx.increment("fingerprint.malformed_lines");
      return;
    }
    ctx.emit(t.user_id, TraceWire{t.latitude, t.longitude, t.timestamp});
  }
};

/// Reduce: one released identity's traces -> its fingerprint line. Values
/// are sorted here (time, then coordinates), so the output is independent of
/// shuffle arrival order, chunking, and backend.
struct FingerprintReducer {
  FingerprintConfig config;

  void reduce(const std::int32_t& uid, std::span<const TraceWire> values,
              mr::ReduceContext& ctx) {
    std::vector<TraceWire> sorted(values.begin(), values.end());
    std::sort(sorted.begin(), sorted.end(),
              [](const TraceWire& a, const TraceWire& b) {
                return std::tie(a.ts, a.lat, a.lon) <
                       std::tie(b.ts, b.lat, b.lon);
              });
    geo::Trail trail;
    trail.reserve(sorted.size());
    for (const auto& v : sorted)
      trail.push_back(geo::MobilityTrace{uid, v.lat, v.lon, 0.0, v.ts});
    const PoiFingerprint fp = fingerprint_of(uid, trail, config);
    if (fp.empty()) ctx.increment("fingerprint.empty");
    ctx.write(format_fingerprint_line(fp));
  }
};

/// Map-only linking job: probe fingerprint lines against the cached gallery
/// (the distributed-cache realization of the two-release self-join).
struct LinkMapper {
  std::string gallery_file;
  std::vector<PoiFingerprint> gallery{};

  void setup(mr::TaskContext& ctx) {
    mr::for_each_line(ctx.cache_file(gallery_file), [&](std::string_view l) {
      PoiFingerprint fp;
      GEPETO_CHECK_MSG(parse_fingerprint_line(l, fp),
                       "malformed gallery fingerprint line");
      gallery.push_back(std::move(fp));
    });
    std::sort(gallery.begin(), gallery.end(),
              [](const PoiFingerprint& a, const PoiFingerprint& b) {
                return a.user_id < b.user_id;
              });
  }

  void map(std::int64_t, std::string_view line, mr::MapOnlyContext& ctx) {
    PoiFingerprint probe;
    if (!parse_fingerprint_line(line, probe)) {
      ctx.increment("link.malformed_lines");
      return;
    }
    const LinkedPair link = link_one(probe, gallery);
    std::string out;
    out += std::to_string(link.probe_id);
    out += ',';
    out += std::to_string(link.gallery_id);
    out += ',';
    append_double(out, link.distance);
    ctx.write(out);
  }
};

std::int32_t resolve_owner(std::int32_t id,
                           const std::map<std::int32_t, std::int32_t>& owner) {
  const auto it = owner.find(id);
  return it == owner.end() ? id : it->second;
}

LinkReport score_links(std::vector<LinkedPair> links,
                       const std::map<std::int32_t, std::int32_t>& probe_owner,
                       const std::map<std::int32_t, std::int32_t>& gallery_owner) {
  std::sort(links.begin(), links.end(),
            [](const LinkedPair& a, const LinkedPair& b) {
              return a.probe_id < b.probe_id;
            });
  LinkReport report;
  report.links = std::move(links);
  report.probes = report.links.size();
  for (const auto& link : report.links)
    if (resolve_owner(link.probe_id, probe_owner) ==
        resolve_owner(link.gallery_id, gallery_owner))
      ++report.correct;
  report.reidentification_rate =
      report.probes > 0 ? static_cast<double>(report.correct) /
                              static_cast<double>(report.probes)
                        : 0.0;
  return report;
}

}  // namespace

PoiFingerprint fingerprint_of(std::int32_t user_id, const geo::Trail& trail,
                              const FingerprintConfig& config) {
  PoiFingerprint fp;
  fp.user_id = user_id;
  const ExtractedPois extracted = extract_pois(trail, config.cluster);
  std::size_t total = 0;
  for (const auto& poi : extracted.pois) total += poi.num_traces;
  if (total == 0) return fp;
  const int n = std::min<int>(config.top_pois,
                              static_cast<int>(extracted.pois.size()));
  for (int i = 0; i < n; ++i) {
    const auto& poi = extracted.pois[static_cast<std::size_t>(i)];
    fp.sites.push_back(FingerprintSite{
        poi.latitude, poi.longitude,
        static_cast<double>(poi.num_traces) / static_cast<double>(total)});
  }
  // extract_pois orders by num_traces desc; break its ties spatially so the
  // fingerprint is a deterministic function of the trail alone.
  std::sort(fp.sites.begin(), fp.sites.end(),
            [](const FingerprintSite& a, const FingerprintSite& b) {
              return std::tie(b.weight, a.latitude, a.longitude) <
                     std::tie(a.weight, b.latitude, b.longitude);
            });
  return fp;
}

std::vector<PoiFingerprint> fingerprint_dataset(
    const geo::GeolocatedDataset& dataset, const FingerprintConfig& config) {
  std::vector<PoiFingerprint> out;
  out.reserve(dataset.num_users());
  for (const auto& [uid, trail] : dataset)
    out.push_back(fingerprint_of(uid, trail, config));
  return out;
}

double fingerprint_distance(const PoiFingerprint& a, const PoiFingerprint& b) {
  if (a.empty() || b.empty()) return kUnlinkableDistance;
  return 0.5 * (one_way_chamfer(a, b) + one_way_chamfer(b, a));
}

std::string format_fingerprint_line(const PoiFingerprint& fp) {
  std::string line = std::to_string(fp.user_id);
  line += ',';
  line += std::to_string(fp.sites.size());
  for (const auto& site : fp.sites) {
    line += ',';
    append_double(line, site.weight);
    line += ',';
    append_double(line, site.latitude);
    line += ',';
    append_double(line, site.longitude);
  }
  return line;
}

bool parse_fingerprint_line(std::string_view line, PoiFingerprint& out) {
  const char* p = line.data();
  const char* e = line.data() + line.size();
  PoiFingerprint fp;
  auto r = std::from_chars(p, e, fp.user_id);
  if (r.ec != std::errc()) return false;
  p = r.ptr;
  std::size_t n = 0;
  if (!skip_comma(p, e)) return false;
  r = std::from_chars(p, e, n);
  if (r.ec != std::errc() || n > 1024) return false;
  p = r.ptr;
  fp.sites.resize(n);
  for (auto& site : fp.sites) {
    if (!skip_comma(p, e) || !parse_double(p, e, site.weight)) return false;
    if (!skip_comma(p, e) || !parse_double(p, e, site.latitude)) return false;
    if (!skip_comma(p, e) || !parse_double(p, e, site.longitude)) return false;
  }
  if (p != e) return false;
  out = std::move(fp);
  return true;
}

LinkedPair link_one(const PoiFingerprint& probe,
                    const std::vector<PoiFingerprint>& gallery) {
  GEPETO_CHECK_MSG(!gallery.empty(), "cannot link against an empty gallery");
  LinkedPair best;
  best.probe_id = probe.user_id;
  best.gallery_id = gallery.front().user_id;
  best.distance = fingerprint_distance(probe, gallery.front());
  for (std::size_t i = 1; i < gallery.size(); ++i) {
    const double d = fingerprint_distance(probe, gallery[i]);
    // Strict <: on ties the earlier (lowest-id) gallery entry keeps the win,
    // matching the deanonymization_attack / kernel argmin contract.
    if (d < best.distance) {
      best.distance = d;
      best.gallery_id = gallery[i].user_id;
    }
  }
  return best;
}

LinkReport link_fingerprints(
    const std::vector<PoiFingerprint>& probes,
    const std::vector<PoiFingerprint>& gallery,
    const std::map<std::int32_t, std::int32_t>& probe_owner,
    const std::map<std::int32_t, std::int32_t>& gallery_owner) {
  std::vector<PoiFingerprint> sorted_gallery = gallery;
  std::sort(sorted_gallery.begin(), sorted_gallery.end(),
            [](const PoiFingerprint& a, const PoiFingerprint& b) {
              return a.user_id < b.user_id;
            });
  std::vector<LinkedPair> links;
  links.reserve(probes.size());
  for (const auto& probe : probes)
    links.push_back(link_one(probe, sorted_gallery));
  return score_links(std::move(links), probe_owner, gallery_owner);
}

LinkReport run_link_attack(
    const geo::GeolocatedDataset& probe_release,
    const geo::GeolocatedDataset& gallery_release,
    const FingerprintConfig& config,
    const std::map<std::int32_t, std::int32_t>& probe_owner,
    const std::map<std::int32_t, std::int32_t>& gallery_owner) {
  return link_fingerprints(fingerprint_dataset(probe_release, config),
                           fingerprint_dataset(gallery_release, config),
                           probe_owner, gallery_owner);
}

LinkAttackMrResult run_link_attack_flow(
    mr::Dfs& dfs, const mr::ClusterConfig& cluster,
    const std::string& probe_input, const std::string& gallery_input,
    const std::string& work_prefix, const FingerprintConfig& config,
    const std::map<std::int32_t, std::int32_t>& probe_owner,
    const std::map<std::int32_t, std::int32_t>& gallery_owner) {
  const std::string probe_fp = work_prefix + "/probe-fp";
  const std::string gallery_fp = work_prefix + "/gallery-fp";
  const std::string gallery_cache = work_prefix + "/gallery-cache";
  const std::string links_out = work_prefix + "/links";

  flow::Flow f("link-attack");

  const auto fingerprint_node = [&](const std::string& name,
                                    const std::string& input,
                                    const std::string& output) {
    f.add_mapreduce(name,
                    [name, input, output, config](flow::FlowEngine& e) {
                      mr::JobConfig job;
                      job.name = name;
                      job.input = input;
                      job.output = output;
                      job.num_reducers =
                          std::max(1, e.cluster().total_reduce_slots() / 2);
                      return mr::run_mapreduce_job(
                          e.dfs(), e.cluster(), job,
                          [] { return FingerprintMapper{}; },
                          [config] { return FingerprintReducer{config}; });
                    })
        .reads(input)
        .writes(output);
  };
  fingerprint_node("fp-probe", probe_input, probe_fp);
  fingerprint_node("fp-gallery", gallery_input, gallery_fp);

  f.add_native("gallery-cache",
               [gallery_fp, gallery_cache](flow::FlowEngine& e) {
                 e.dfs().put(gallery_cache,
                             mr::concat_dfs_files(e.dfs(), gallery_fp + "/"));
               })
      .reads(gallery_fp)
      .writes(gallery_cache);

  f.add_map_only("link",
                 [probe_fp, gallery_cache, links_out](flow::FlowEngine& e) {
                   mr::JobConfig job;
                   job.name = "link";
                   job.input = probe_fp;
                   job.output = links_out;
                   job.cache_files = {gallery_cache};
                   return mr::run_map_only_job(
                       e.dfs(), e.cluster(), job, [gallery_cache] {
                         return LinkMapper{gallery_cache};
                       });
                 })
      .reads(probe_fp)
      .reads(gallery_cache)
      .keep(links_out);

  LinkAttackMrResult result;
  f.add_native("link-score",
               [links_out, probe_owner, gallery_owner,
                &result](flow::FlowEngine& e) {
                 std::vector<LinkedPair> links;
                 mr::for_each_dfs_line(
                     e.dfs(), links_out + "/", [&](std::string_view l) {
                       LinkedPair link;
                       const char* p = l.data();
                       const char* le = l.data() + l.size();
                       auto r1 = std::from_chars(p, le, link.probe_id);
                       GEPETO_CHECK(r1.ec == std::errc());
                       p = r1.ptr;
                       GEPETO_CHECK(skip_comma(p, le));
                       auto r2 = std::from_chars(p, le, link.gallery_id);
                       GEPETO_CHECK(r2.ec == std::errc());
                       p = r2.ptr;
                       GEPETO_CHECK(skip_comma(p, le) &&
                                    parse_double(p, le, link.distance) &&
                                    p == le);
                       links.push_back(link);
                     });
                 result.report = score_links(std::move(links), probe_owner,
                                             gallery_owner);
               })
      .reads(links_out);

  const auto fr = f.run(dfs, cluster);
  result.probe_fp_job = fr.node("fp-probe")->job;
  result.gallery_fp_job = fr.node("fp-gallery")->job;
  result.link_job = fr.node("link")->job;
  return result;
}

}  // namespace gepeto::core
