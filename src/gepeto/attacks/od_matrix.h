// k-anonymous origin–destination matrix (Armenante-style aggregate release).
//
// The second tentpole pipeline publishes an *aggregate* of the dataset
// instead of per-user traces: trips are extracted from every trail (split at
// temporal gaps), mapped to origin/destination grid cells, and the resulting
// OD matrix is released with k-anonymity suppression — a cell pair appears
// only if at least k *distinct users* traveled it. Utility is reported from
// both sides of the aggregation, following the participant-vs-population
// framing: population utility (how much of the total flow survives) can look
// excellent while participant utility (how much of each individual's
// mobility is represented) collapses, and the gap between the two is itself
// a finding of the frontier bench.
//
// Sequential oracle + a two-job JobFlow DAG (group-aware trip extraction,
// then a distinct-user reduce over cell pairs); byte-identical outputs. The
// released matrix carries a declared contract — every released pair backed
// by >= k distinct users, every sub-k pair suppressed, flow conservation —
// checked by verify_od_matrix() against the original dataset.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "geo/trace.h"
#include "gepeto/attacks/privacy_verifier.h"
#include "gepeto/sanitize.h"
#include "mapreduce/cluster.h"
#include "mapreduce/job.h"

namespace gepeto::mr {
class Dfs;
}

namespace gepeto::core {

struct OdConfig {
  double cell_m = 500.0;        ///< OD zone granularity (level-0 grid cells)
  std::int64_t trip_gap_s = 1800;  ///< split trips at gaps > this
  int k = 5;                    ///< suppress pairs with < k distinct users
};

/// One extracted trip: a maximal gap-free run of >= 2 traces whose endpoints
/// fall in different cells (stationary runs are not trips).
struct OdTrip {
  std::int32_t user_id = 0;
  std::int64_t origin_cy = 0, origin_cx = 0;
  std::int64_t dest_cy = 0, dest_cx = 0;

  friend auto operator<=>(const OdTrip&, const OdTrip&) = default;
};

/// One released OD pair.
struct OdEntry {
  std::int64_t origin_cy = 0, origin_cx = 0;
  std::int64_t dest_cy = 0, dest_cx = 0;
  std::uint64_t trips = 0;
  std::uint64_t users = 0;  ///< distinct users, >= k by contract

  friend auto operator<=>(const OdEntry&, const OdEntry&) = default;
};

struct OdMatrix {
  std::vector<OdEntry> entries;  ///< cell-pair ascending (deterministic)
  std::uint64_t total_trips = 0;
  std::uint64_t suppressed_trips = 0;
  std::uint64_t suppressed_pairs = 0;
};

std::vector<OdTrip> extract_trips(const geo::GeolocatedDataset& dataset,
                                  const OdConfig& config);

OdMatrix build_od_matrix(const std::vector<OdTrip>& trips,
                         const OdConfig& config);

/// Participant-vs-population utility of a released matrix.
struct OdUtility {
  double trip_retention = 0.0;    ///< population: released / total trips
  double pair_retention = 0.0;    ///< released / total distinct pairs
  double participant_coverage = 0.0;  ///< travelers with >= 1 released trip
  /// Mean over travelers of (their released trips / their trips) — the
  /// participant-side utility that suppression hits hardest.
  double avg_participant_retention = 0.0;
};

OdUtility od_utility(const std::vector<OdTrip>& trips, const OdMatrix& matrix);

/// Verify a released matrix against the original dataset: every entry's
/// user count is genuine and >= k, no sub-k pair released, no >= k pair
/// missing, trip counts exact, and released + suppressed == total trips.
PrivacyReport verify_od_matrix(const geo::GeolocatedDataset& original,
                               const OdMatrix& matrix, const OdConfig& config);

/// The JobFlow realization:
///   od-trips (group-aware map-only): each user's whole trail in one task;
///     writes one line per trip;
///   od-pairs (MapReduce): trips keyed by cell pair; reducers count trips +
///     distinct users and suppress sub-k pairs (counters carry the losses);
///   od-collect (native): parses the released pairs into an OdMatrix.
/// Byte-identical to build_od_matrix(extract_trips(...)) on any chunking and
/// both worker backends.
struct OdMatrixMrResult {
  mr::JobResult trips_job;
  mr::JobResult pairs_job;
  OdMatrix matrix;
};

OdMatrixMrResult run_od_matrix_flow(mr::Dfs& dfs,
                                    const mr::ClusterConfig& cluster,
                                    const std::string& input,
                                    const std::string& work_prefix,
                                    const OdConfig& config);

}  // namespace gepeto::core
